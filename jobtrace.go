package sparkxd

import (
	"sort"

	"sparkxd/internal/tracing"
)

// TraceSpan is one finished span of a job's distributed trace — see
// internal/tracing.SpanData for the field contract. Spans are emitted
// by every process that touched the job (the coordinator, plus any
// fleet workers) and assembled by the coordinator when the job reaches
// a terminal state.
type TraceSpan = tracing.SpanData

// JobTraceVersion is the schema version of persisted JobTrace payloads.
const JobTraceVersion = 1

// JobTrace is the assembled distributed trace of one job: every span
// the coordinator collected, from submission to terminal state, across
// every process that executed part of the work. It is persisted as a
// content-addressed KindJobTrace artifact and served from
// GET /v1/jobs/{id}/trace.
//
// Unlike every other artifact, a trace is observational: its payload
// carries wall-clock timings, so re-running the same job produces a
// different trace (and a different trace key). Trace context therefore
// never participates in job identity — job IDs hash only the JobSpec.
type JobTrace struct {
	// Version is JobTraceVersion at write time.
	Version int `json:"version"`
	// TraceID is the 32-hex-char W3C trace ID the job ran under.
	TraceID string `json:"trace_id"`
	// JobID is the deterministic spec hash the trace belongs to.
	JobID string `json:"job_id"`
	// State is the terminal state the trace was assembled at.
	State JobState `json:"state"`
	// Spans is every collected span, sorted by start time then span ID.
	Spans []TraceSpan `json:"spans"`
}

// Sort orders the spans canonically: by start time, then span ID.
func (t *JobTrace) Sort() {
	sort.SliceStable(t.Spans, func(a, b int) bool {
		if t.Spans[a].StartUnixNano != t.Spans[b].StartUnixNano {
			return t.Spans[a].StartUnixNano < t.Spans[b].StartUnixNano
		}
		return t.Spans[a].SpanID < t.Spans[b].SpanID
	})
}

// Span returns the first span with the given name, or nil.
func (t *JobTrace) Span(name string) *TraceSpan {
	for i := range t.Spans {
		if t.Spans[i].Name == name {
			return &t.Spans[i]
		}
	}
	return nil
}

// Processes returns the distinct span-emitting process names, sorted.
func (t *JobTrace) Processes() []string {
	seen := make(map[string]bool)
	var out []string
	for _, sp := range t.Spans {
		if !seen[sp.Process] {
			seen[sp.Process] = true
			out = append(out, sp.Process)
		}
	}
	sort.Strings(out)
	return out
}
