// Tests of the real-dataset wiring: a configured data directory (option
// or SPARKXD_DATA_DIR) replaces the synthetic generator when it holds a
// complete IDX file set, and surfaces load failures through Train.
package sparkxd_test

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"sparkxd"
	"sparkxd/internal/dataset"
)

// writeIDXDir writes a complete, valid 4-file MNIST-format fixture set.
func writeIDXDir(t *testing.T, dir string, trainN, testN int) {
	t.Helper()
	pairs := []struct {
		img, lbl string
		n        int
	}{
		{"train-images-idx3-ubyte", "train-labels-idx1-ubyte", trainN},
		{"t10k-images-idx3-ubyte", "t10k-labels-idx1-ubyte", testN},
	}
	for _, p := range pairs {
		images := make([][]byte, p.n)
		labels := make([]uint8, p.n)
		for i := range images {
			img := make([]byte, dataset.Pixels)
			img[i%dataset.Pixels] = byte(50 + i%200)
			images[i] = img
			labels[i] = uint8(i % dataset.NumClasses)
		}
		var imgBuf, lblBuf bytes.Buffer
		if err := dataset.WriteIDXImages(&imgBuf, images); err != nil {
			t.Fatal(err)
		}
		if err := dataset.WriteIDXLabels(&lblBuf, labels); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, p.img), imgBuf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, p.lbl), lblBuf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

func TestWithDataDirLoadsIDXFiles(t *testing.T) {
	if testing.Short() {
		t.Skip("training skipped in -short mode")
	}
	dir := t.TempDir()
	writeIDXDir(t, dir, 90, 50)
	sys := tinySystem(t, sparkxd.WithDataDir(dir))
	m, err := sys.Pipeline().Train(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// Budgets still apply: the fixture's 90/50 samples truncate to the
	// configured 80/40.
	if m.TrainSamples != 80 || m.TestSamples != 40 {
		t.Errorf("sample budgets = %d/%d, want 80/40", m.TrainSamples, m.TestSamples)
	}
}

func TestWithDataDirCorruptSetSurfacesError(t *testing.T) {
	dir := t.TempDir()
	writeIDXDir(t, dir, 5, 3)
	// Remove one file: a partial set must fail loudly, never silently
	// fall back to synthetic data.
	if err := os.Remove(filepath.Join(dir, "t10k-labels-idx1-ubyte")); err != nil {
		t.Fatal(err)
	}
	sys := tinySystem(t, sparkxd.WithDataDir(dir))
	_, err := sys.Pipeline().Train(context.Background())
	if err == nil || !strings.Contains(err.Error(), "missing t10k-labels-idx1-ubyte") {
		t.Fatalf("err = %v, want dataset load error", err)
	}
}

func TestDataDirEnvFallback(t *testing.T) {
	dir := t.TempDir()
	writeIDXDir(t, dir, 5, 3)
	if err := os.Remove(filepath.Join(dir, "train-images-idx3-ubyte")); err != nil {
		t.Fatal(err)
	}
	t.Setenv("SPARKXD_DATA_DIR", dir)
	sys := tinySystem(t) // no WithDataDir: env var must apply
	_, err := sys.Pipeline().Train(context.Background())
	if err == nil || !strings.Contains(err.Error(), dir) {
		t.Fatalf("err = %v, want load error mentioning %s", err, dir)
	}
}

func TestDataDirAbsentFallsBackToSynthetic(t *testing.T) {
	if testing.Short() {
		t.Skip("training skipped in -short mode")
	}
	sys := tinySystem(t, sparkxd.WithDataDir(t.TempDir()))
	if _, err := sys.Pipeline().Train(context.Background()); err != nil {
		t.Fatalf("empty data dir must fall back to synthetic: %v", err)
	}
}
