// Tests of the job-spec identity scheme: normalization fills defaults,
// equivalent specs hash to the same deterministic ID, and invalid specs
// are rejected with ErrInvalidJobSpec.
package sparkxd_test

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"sparkxd"
)

func TestJobSpecIDDeterministic(t *testing.T) {
	spec := sparkxd.JobSpec{Kind: sparkxd.JobPipeline, Config: sparkxd.ConfigSpec{Neurons: 100}}
	id1, err := spec.ID()
	if err != nil {
		t.Fatal(err)
	}
	id2, err := spec.ID()
	if err != nil {
		t.Fatal(err)
	}
	if id1 != id2 {
		t.Fatalf("same spec, different IDs: %s vs %s", id1, id2)
	}
	if len(id1) != 32 {
		t.Errorf("ID %q is not 32 hex chars", id1)
	}
}

// Specs that resolve to the same work must share an ID: explicit
// defaults, omitted defaults, and case variants of enum names all
// normalize to one canonical form.
func TestJobSpecIDNormalization(t *testing.T) {
	base := sparkxd.JobSpec{Kind: sparkxd.JobPipeline, Config: sparkxd.ConfigSpec{Neurons: 400}}
	variants := []sparkxd.JobSpec{
		{Kind: sparkxd.JobPipeline, Config: sparkxd.ConfigSpec{}}, // 400 is the default
		{Kind: sparkxd.JobPipeline, Stage: "energy", // "" means the full pipeline
			Config: sparkxd.ConfigSpec{Neurons: 400, Dataset: "MNIST"}}, // case-insensitive
		{Kind: sparkxd.JobPipeline,
			Config: sparkxd.ConfigSpec{Neurons: 400, ErrorModel: "Uniform", Quantization: "FP32"}},
	}
	want, err := base.ID()
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range variants {
		got, err := v.ID()
		if err != nil {
			t.Fatalf("variant %d: %v", i, err)
		}
		if got != want {
			t.Errorf("variant %d: ID %s != base %s (equivalent specs must dedup)", i, got, want)
		}
	}

	// A genuinely different spec must not collide.
	other := sparkxd.JobSpec{Kind: sparkxd.JobPipeline, Config: sparkxd.ConfigSpec{Neurons: 200}}
	otherID, err := other.ID()
	if err != nil {
		t.Fatal(err)
	}
	if otherID == want {
		t.Error("different neuron counts produced the same job ID")
	}
	stage := sparkxd.JobSpec{Kind: sparkxd.JobPipeline, Stage: "train", Config: sparkxd.ConfigSpec{Neurons: 400}}
	stageID, err := stage.ID()
	if err != nil {
		t.Fatal(err)
	}
	if stageID == want {
		t.Error("different stages produced the same job ID")
	}
}

// Sweep axes are normalized against the configuration exactly as
// Pipeline.Sweep resolves them, so an explicit default axis and an
// omitted one name the same job. Workers never affect identity.
func TestJobSpecSweepNormalization(t *testing.T) {
	implicit := sparkxd.JobSpec{Kind: sparkxd.JobSweep,
		Config: sparkxd.ConfigSpec{Voltage: 1.1, BERSchedule: []float64{1e-5, 1e-4}}}
	explicit := sparkxd.JobSpec{Kind: sparkxd.JobSweep,
		Config: sparkxd.ConfigSpec{Voltage: 1.1, BERSchedule: []float64{1e-5, 1e-4}},
		Sweep: &sparkxd.SweepSpec{
			Voltages:    []float64{1.1},
			BERs:        []float64{1e-5, 1e-4},
			ErrorModels: []sparkxd.ErrorModel{sparkxd.ErrorModelUniform},
			Policies:    []sparkxd.Policy{"SparkXD"}, // case-normalized
			Workers:     7,                           // execution detail, not identity
		}}
	a, err := implicit.ID()
	if err != nil {
		t.Fatal(err)
	}
	b, err := explicit.ID()
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("implicit (%s) and explicit-default (%s) sweep specs must share an ID", a, b)
	}

	norm, err := explicit.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	if norm.Sweep.Workers != 0 {
		t.Errorf("normalized spec kept Workers = %d", norm.Sweep.Workers)
	}
	if len(norm.Sweep.Policies) != 1 || norm.Sweep.Policies[0] != sparkxd.PolicySparkXD {
		t.Errorf("normalized policies = %v", norm.Sweep.Policies)
	}
}

func TestJobSpecInvalid(t *testing.T) {
	bad := []sparkxd.JobSpec{
		{},                // no kind
		{Kind: "compile"}, // unknown kind
		{Kind: sparkxd.JobPipeline, Stage: "deploy"},                                          // unknown stage
		{Kind: sparkxd.JobPipeline, Sweep: &sparkxd.SweepSpec{}},                              // sweep grid on a pipeline job
		{Kind: sparkxd.JobSweep, Stage: "train"},                                              // stage on a sweep job
		{Kind: sparkxd.JobSweep, Config: sparkxd.ConfigSpec{Dataset: "imagenet"}},             // bad dataset
		{Kind: sparkxd.JobPipeline, Config: sparkxd.ConfigSpec{ErrorModel: "gauss"}},          // bad model
		{Kind: sparkxd.JobSweep, Sweep: &sparkxd.SweepSpec{Policies: []sparkxd.Policy{"rr"}}}, // bad policy
		{Kind: sparkxd.JobPipeline, Priority: sparkxd.MaxPriority + 1},                        // priority above range
		{Kind: sparkxd.JobPipeline, Priority: sparkxd.MinPriority - 1},                        // priority below range
	}
	for i, spec := range bad {
		if _, err := spec.Normalized(); !errors.Is(err, sparkxd.ErrInvalidJobSpec) {
			t.Errorf("spec %d: want ErrInvalidJobSpec, got %v", i, err)
		}
		if _, err := spec.ID(); err == nil {
			t.Errorf("spec %d: ID() must fail for an invalid spec", i)
		}
	}
}

// Priority is part of the job's identity — except priority 0, whose
// omitempty serialization keeps pre-priority specs (and every job ID
// minted before the field existed) byte-for-byte unchanged.
func TestJobSpecPriorityIdentity(t *testing.T) {
	base := sparkxd.JobSpec{Kind: sparkxd.JobPipeline}
	zero := sparkxd.JobSpec{Kind: sparkxd.JobPipeline, Priority: 0}
	high := sparkxd.JobSpec{Kind: sparkxd.JobPipeline, Priority: 10}
	baseID, err := base.ID()
	if err != nil {
		t.Fatal(err)
	}
	zeroID, err := zero.ID()
	if err != nil {
		t.Fatal(err)
	}
	if zeroID != baseID {
		t.Errorf("explicit priority 0 changed the job ID: %s vs %s", zeroID, baseID)
	}
	highID, err := high.ID()
	if err != nil {
		t.Fatal(err)
	}
	if highID == baseID {
		t.Error("nonzero priority did not change the job ID")
	}
	norm, err := high.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	if norm.Priority != 10 {
		t.Errorf("normalization changed priority to %d", norm.Priority)
	}
}

// Equal configurations share a fingerprint (and thus a warm System on
// the server); different ones do not.
func TestConfigFingerprint(t *testing.T) {
	a, err := sparkxd.ConfigSpec{Neurons: 400, Dataset: "MNIST"}.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	b, err := sparkxd.ConfigSpec{Dataset: "mnist"}.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("equivalent configs fingerprint differently: %s vs %s", a, b)
	}
	c, err := sparkxd.ConfigSpec{Neurons: 200}.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if c == a {
		t.Error("different configs share a fingerprint")
	}
}

// A pipeline job and a sweep job over the same configuration share the
// engine fingerprint but never the job ID.
func TestJobKindsDistinct(t *testing.T) {
	p := sparkxd.JobSpec{Kind: sparkxd.JobPipeline}
	s := sparkxd.JobSpec{Kind: sparkxd.JobSweep}
	pid, err := p.ID()
	if err != nil {
		t.Fatal(err)
	}
	sid, err := s.ID()
	if err != nil {
		t.Fatal(err)
	}
	if pid == sid {
		t.Error("pipeline and sweep jobs share an ID")
	}
}

// goldenJobSpecs reconstructs the exact specs whose IDs were captured in
// testdata/golden/job_ids.json before the N-axis refactor. Their IDs
// must never change: job identity is the dedup key of the whole fleet.
func goldenJobSpecs() map[string]sparkxd.JobSpec {
	return map[string]sparkxd.JobSpec{
		"pipeline-default": {Kind: sparkxd.JobPipeline},
		"pipeline-train": {Kind: sparkxd.JobPipeline, Stage: "train",
			Config: sparkxd.ConfigSpec{Neurons: 100}},
		"sweep-default": {Kind: sparkxd.JobSweep},
		"sweep-explicit": {Kind: sparkxd.JobSweep,
			Config: sparkxd.ConfigSpec{Voltage: 1.1, BERSchedule: []float64{1e-5, 1e-4}},
			Sweep: &sparkxd.SweepSpec{
				Voltages:    []float64{1.1},
				BERs:        []float64{1e-5, 1e-4},
				ErrorModels: []sparkxd.ErrorModel{sparkxd.ErrorModelUniform},
				Policies:    []sparkxd.Policy{sparkxd.PolicySparkXD},
			}},
		"sweep-grid": {Kind: sparkxd.JobSweep,
			Config: sparkxd.ConfigSpec{Neurons: 50},
			Sweep: &sparkxd.SweepSpec{
				Voltages:    []float64{1.1, 1.025},
				BERs:        []float64{1e-6, 1e-5, 1e-4},
				ErrorModels: []sparkxd.ErrorModel{sparkxd.ErrorModelUniform, sparkxd.ErrorModelDataDependent},
				Policies:    []sparkxd.Policy{sparkxd.PolicyBaseline, sparkxd.PolicySparkXD},
			}},
	}
}

func TestJobSpecGoldenIDs(t *testing.T) {
	raw, err := os.ReadFile(filepath.Join("testdata", "golden", "job_ids.json"))
	if err != nil {
		t.Fatal(err)
	}
	var golden map[string]string
	if err := json.Unmarshal(raw, &golden); err != nil {
		t.Fatal(err)
	}
	specs := goldenJobSpecs()
	if len(golden) != len(specs) {
		t.Fatalf("golden file has %d entries, test reconstructs %d", len(golden), len(specs))
	}
	for name, spec := range specs {
		want, ok := golden[name]
		if !ok {
			t.Errorf("%s: missing from golden file", name)
			continue
		}
		id, err := spec.ID()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if id != want {
			t.Errorf("%s: job ID drifted: got %s, golden %s", name, id, want)
		}
	}
}

func TestJobSpecExtendedAxisDefaultElision(t *testing.T) {
	// Spelling out the default value of every extended axis must elide
	// back to the omitted form: identical job ID, identical normalized
	// spec.
	base := sparkxd.JobSpec{Kind: sparkxd.JobSweep}
	spelled := sparkxd.JobSpec{Kind: sparkxd.JobSweep, Sweep: &sparkxd.SweepSpec{
		Bitwidths:   []int{32}, // default config quantization is fp32
		PruneLevels: []float64{0},
		Encoders:    []sparkxd.Encoder{sparkxd.EncoderRate},
	}}
	baseID, err := base.ID()
	if err != nil {
		t.Fatal(err)
	}
	spelledID, err := spelled.ID()
	if err != nil {
		t.Fatal(err)
	}
	if spelledID != baseID {
		t.Errorf("spelled-out default axes changed the job ID: %s vs %s", spelledID, baseID)
	}
	norm, err := spelled.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	if norm.Sweep.Bitwidths != nil || norm.Sweep.PruneLevels != nil || norm.Sweep.Encoders != nil {
		t.Errorf("default axes survived normalization: %+v", norm.Sweep)
	}

	// Case-insensitive encoder aliases canonicalize to one identity.
	alias := sparkxd.JobSpec{Kind: sparkxd.JobSweep, Sweep: &sparkxd.SweepSpec{
		Encoders: []sparkxd.Encoder{"Time-To-First-Spike", "BURST"},
	}}
	canon := sparkxd.JobSpec{Kind: sparkxd.JobSweep, Sweep: &sparkxd.SweepSpec{
		Encoders: []sparkxd.Encoder{sparkxd.EncoderTTFS, sparkxd.EncoderBurst},
	}}
	aliasID, err := alias.ID()
	if err != nil {
		t.Fatal(err)
	}
	canonID, err := canon.ID()
	if err != nil {
		t.Fatal(err)
	}
	if aliasID != canonID {
		t.Errorf("encoder alias spelling changed the job ID: %s vs %s", aliasID, canonID)
	}
	if aliasID == baseID {
		t.Error("non-default encoder axis did not change the job ID")
	}

	// A non-default bitwidth under a non-default quantization elides too:
	// fp16 config + [16] axis is the default again.
	fp16Base := sparkxd.JobSpec{Kind: sparkxd.JobSweep,
		Config: sparkxd.ConfigSpec{Quantization: "fp16"}}
	fp16Spelled := sparkxd.JobSpec{Kind: sparkxd.JobSweep,
		Config: sparkxd.ConfigSpec{Quantization: "fp16"},
		Sweep:  &sparkxd.SweepSpec{Bitwidths: []int{16}}}
	fp16BaseID, err := fp16Base.ID()
	if err != nil {
		t.Fatal(err)
	}
	fp16SpelledID, err := fp16Spelled.ID()
	if err != nil {
		t.Fatal(err)
	}
	if fp16SpelledID != fp16BaseID {
		t.Errorf("bitwidth 16 under fp16 config changed the job ID: %s vs %s", fp16SpelledID, fp16BaseID)
	}
}

func TestJobSpecExtendedAxisInvalid(t *testing.T) {
	cases := []struct {
		name string
		sw   sparkxd.SweepSpec
	}{
		{"bitwidth 8", sparkxd.SweepSpec{Bitwidths: []int{8}}},
		{"prune 1.0", sparkxd.SweepSpec{PruneLevels: []float64{1.0}}},
		{"prune negative", sparkxd.SweepSpec{PruneLevels: []float64{-0.1}}},
		{"unknown encoder", sparkxd.SweepSpec{Encoders: []sparkxd.Encoder{"morse"}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sw := tc.sw
			spec := sparkxd.JobSpec{Kind: sparkxd.JobSweep, Sweep: &sw}
			if _, err := spec.Normalized(); !errors.Is(err, sparkxd.ErrInvalidJobSpec) {
				t.Errorf("err = %v, want ErrInvalidJobSpec", err)
			}
		})
	}
}
