package sparkxd

import (
	"context"
	"fmt"
	"os"
	"sync"

	"sparkxd/internal/core"
	"sparkxd/internal/dram"
	"sparkxd/internal/engine"
	"sparkxd/internal/errmodel"
	"sparkxd/internal/memctrl"
	"sparkxd/internal/power"
	"sparkxd/internal/rng"
	"sparkxd/internal/voltscale"
)

// Supply voltages of the paper's characterization (volts). VNominal is
// accurate DRAM; V1025 is the most aggressive approximate point.
const (
	VNominal = voltscale.VNominal
	V1100    = voltscale.V1100
	V1025    = voltscale.V1025
)

// PaperVoltages returns the supply voltages the paper evaluates,
// nominal first.
func PaperVoltages() []float64 { return voltscale.PaperVoltages() }

// ReducedVoltages returns the approximate-DRAM voltages (nominal
// excluded), highest first.
func ReducedVoltages() []float64 { return voltscale.ReducedVoltages() }

// Event is one structured progress notification; Observer receives them.
// See WithObserver.
type (
	Event    = core.Event
	Observer = core.Observer
)

// RatePoint is one (BER, accuracy) observation of a tolerance curve.
type RatePoint = core.RatePoint

// DeviceProfile is the per-subarray bit-error-rate characterization of
// one simulated device at one supply voltage. It serializes losslessly
// through encoding/json and offers MeanBER, MaxBER, SafeCount, and
// SafeSubarrays for inspection.
type DeviceProfile = errmodel.Profile

// System is a configured SparkXD instance: the simulated DRAM device,
// its circuit/power models, and the pipeline parameters. Create with
// New; a System is immutable after construction and safe for concurrent
// use by independent Pipelines.
type System struct {
	cfg config
	fw  *core.Framework

	// Datasets are deterministic in the immutable config; generate them
	// once and share across pipelines and System-level evaluations.
	dataOnce sync.Once
	dsTrain  *datasetT
	dsTest   *datasetT
	dsErr    error

	// The scenario-sweep engine is created on first use and shared by
	// every pipeline of the system, so repeated sweeps reuse the derived
	// device profiles and prepared placements.
	engOnce sync.Once
	eng     *engine.Engine
}

// New builds a System from the paper's defaults plus the given options.
func New(opts ...Option) (*System, error) {
	cfg := defaultConfig()
	for _, opt := range opts {
		if err := opt(&cfg); err != nil {
			return nil, fmt.Errorf("sparkxd: %w", err)
		}
	}
	if err := cfg.validate(); err != nil {
		return nil, fmt.Errorf("sparkxd: %w", err)
	}
	if cfg.dataDir == "" {
		cfg.dataDir = os.Getenv("SPARKXD_DATA_DIR")
	}
	fw := core.NewFramework()
	fw.ErrKind = cfg.errKind
	fw.Spread = cfg.spread
	fw.DeviceSeed = cfg.deviceSeed
	fw.Format = cfg.format
	// The sweep worker budget also parallelizes within single accuracy
	// evaluations (pipeline stages, tolerance analysis) — accuracy is
	// bit-identical for any value, so this only changes speed.
	fw.EvalWorkers = cfg.sweepWorkers
	fw.Observer = cfg.observer
	if err := fw.Validate(); err != nil {
		return nil, fmt.Errorf("sparkxd: %w", err)
	}
	return &System{cfg: cfg, fw: fw}, nil
}

// notify delivers an SDK-level event to the configured observer.
func (s *System) notify(ev Event) {
	if s.cfg.observer != nil {
		s.cfg.observer(ev)
	}
}

// Pipeline returns a fresh pipeline over this system with no artifacts
// populated. Assign persisted artifacts to its fields to resume from a
// checkpoint instead of recomputing earlier stages.
func (s *System) Pipeline() *Pipeline { return &Pipeline{sys: s} }

// sweepEngine returns the system's shared scenario-sweep engine.
func (s *System) sweepEngine() *engine.Engine {
	s.engOnce.Do(func() { s.eng = engine.New(s.fw) })
	return s.eng
}

// SweepCacheStats returns the cumulative hit/miss counts of the sweep
// engine's device-profile cache. Profiles are derived once per distinct
// (voltage, error model) device point: after one Sweep over an N-scenario
// grid with D distinct device points, misses == D and hits == N − D.
func (s *System) SweepCacheStats() (hits, misses uint64) {
	return s.sweepEngine().ProfileCacheStats()
}

// DeviceProfile characterizes the simulated device at a supply voltage:
// per-subarray BERs drawn with the system's spread and device seed.
func (s *System) DeviceProfile(v float64) (*DeviceProfile, error) {
	p, err := s.fw.ProfileAt(v)
	if err != nil {
		return nil, wrapStage("profile", err)
	}
	return p, nil
}

// OperatingPoint is the circuit/power characterization of one supply
// voltage (the data behind the paper's Fig. 6 and Table I).
type OperatingPoint struct {
	Voltage float64 `json:"voltage"`
	// Row timings in nanoseconds (stretched as voltage drops).
	TRCDns float64 `json:"trcd_ns"`
	TRASns float64 `json:"tras_ns"`
	TRPns  float64 `json:"trp_ns"`
	// RawBER is the device bit error rate before subarray spread.
	RawBER float64 `json:"raw_ber"`
	// Per-access energies by row-buffer condition, in nanojoules.
	HitEnergyNJ      float64 `json:"hit_energy_nj"`
	MissEnergyNJ     float64 `json:"miss_energy_nj"`
	ConflictEnergyNJ float64 `json:"conflict_energy_nj"`
}

// Characterize returns the operating point of the device at a supply
// voltage.
func (s *System) Characterize(v float64) OperatingPoint {
	return OperatingPoint{
		Voltage:          v,
		TRCDns:           s.fw.Circuit.TRCD(v),
		TRASns:           s.fw.Circuit.TRAS(v),
		TRPns:            s.fw.Circuit.TRP(v),
		RawBER:           s.fw.Circuit.BER(v),
		HitEnergyNJ:      s.fw.Power.AccessEnergyNJ(dram.AccessHit, v),
		MissEnergyNJ:     s.fw.Power.AccessEnergyNJ(dram.AccessMiss, v),
		ConflictEnergyNJ: s.fw.Power.AccessEnergyNJ(dram.AccessConflict, v),
	}
}

// EvaluateModelAtBER measures a trained model's accuracy when its
// weights pass through approximate DRAM with a uniform bit error rate
// (baseline mapping, the system's fixed weak cells). Pass the same
// evalSeed across calls for paired evaluation on identical spike trains.
func (s *System) EvaluateModelAtBER(ctx context.Context, m *TrainedModel,
	ber float64, injectSeed, evalSeed uint64) (float64, error) {
	if m == nil || m.net == nil {
		return 0, missingArtifact("EvaluateModelAtBER", "a trained model", "run Train or load a checkpoint")
	}
	test, err := s.testSet()
	if err != nil {
		return 0, wrapStage("evaluate", err)
	}
	layout, err := s.fw.LayoutFor(m.net, nil)
	if err != nil {
		return 0, wrapStage("evaluate", err)
	}
	profile, err := errmodel.UniformProfile(s.fw.Geom, ber, s.fw.DeviceSeed)
	if err != nil {
		return 0, wrapStage("evaluate", err)
	}
	acc, err := s.fw.EvaluateUnderErrorsCtx(ctx, m.net, test, layout, profile, injectSeed, evalSeed)
	if err != nil {
		return 0, wrapStage("evaluate", err)
	}
	return acc, nil
}

// Policy selects a weight-to-DRAM mapping policy.
type Policy string

const (
	// PolicyBaseline places units sequentially (row-major fill).
	PolicyBaseline Policy = "baseline"
	// PolicySparkXD places units with Algorithm 2: safe subarrays only,
	// row-hit maximizing, bank interleaved.
	PolicySparkXD Policy = "sparkxd"
)

// TraceCommand is one DRAM command of a replayed access stream, as
// delivered to StreamRequest.OnCommand.
type TraceCommand struct {
	AtNs float64
	Kind string // ACT, PRE, RD, REF, ...
	Bank string
	Row  int
	Col  int
}

// StreamRequest parameterizes StreamEnergy: place a weight image of
// WeightCount weights with Policy, replay one inference weight-streaming
// pass at Voltage, and integrate DRAM energy. For PolicySparkXD, BERth
// is the tolerance threshold; it is relaxed (doubled) as needed until
// the safe subarrays can hold the image.
type StreamRequest struct {
	WeightCount int
	Policy      Policy
	Voltage     float64
	BERth       float64
	// OnCommand, when non-nil, receives every DRAM command of the replay
	// in issue order.
	OnCommand func(TraceCommand)
}

// StreamStats is the outcome of one StreamEnergy replay: the access
// census, command tally, timing, and DRAMPower-style energy breakdown.
type StreamStats struct {
	Voltage        float64 `json:"voltage"`
	Policy         Policy  `json:"policy"`
	EffectiveBERth float64 `json:"effective_ber_th,omitempty"`

	Accesses  int64 `json:"accesses"`
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Conflicts int64 `json:"conflicts"`

	NACT int64 `json:"n_act"`
	NPRE int64 `json:"n_pre"`
	NRD  int64 `json:"n_rd"`
	NREF int64 `json:"n_ref"`

	MakespanNs     float64 `json:"makespan_ns"`
	BusUtilization float64 `json:"bus_utilization"`
	HitRate        float64 `json:"hit_rate"`

	BanksUsed     int `json:"banks_used"`
	SubarraysUsed int `json:"subarrays_used"`

	Energy EnergyBreakdown `json:"energy"`
}

// EnergyBreakdown itemizes DRAM energy by command class, in nanojoules,
// with TotalNJ/TotalMJ helpers.
type EnergyBreakdown = power.Breakdown

// StreamEnergy runs a standalone approximate-DRAM simulation of one
// inference weight-streaming pass (the cmd/dramsim workload). It needs
// no trained model — only an image size and a policy.
func (s *System) StreamEnergy(ctx context.Context, req StreamRequest) (*StreamStats, error) {
	if err := ctx.Err(); err != nil {
		return nil, wrapStage("stream", err)
	}
	if req.WeightCount <= 0 {
		return nil, wrapStage("stream", fmt.Errorf("weight count must be positive, got %d", req.WeightCount))
	}
	var (
		layout *layoutT
		effTh  float64
		err    error
	)
	switch req.Policy {
	case PolicyBaseline, "":
		layout, err = s.fw.LayoutForWeights(req.WeightCount, nil)
	case PolicySparkXD:
		layout, _, effTh, err = s.fw.MapWeightsAdaptive(req.WeightCount, req.Voltage, req.BERth)
	default:
		err = fmt.Errorf("unknown policy %q", req.Policy)
	}
	if err != nil {
		return nil, wrapStage("stream", err)
	}
	ctl, err := memctrl.New(s.fw.Geom, s.fw.Circuit.Timing(req.Voltage))
	if err != nil {
		return nil, wrapStage("stream", err)
	}
	if req.OnCommand != nil {
		ctl.OnCommand = func(cmd dram.Command, atNs float64) {
			req.OnCommand(TraceCommand{
				AtNs: atNs,
				Kind: cmd.Kind.String(),
				Bank: fmt.Sprintf("%v", cmd.Bank),
				Row:  cmd.Row,
				Col:  cmd.Col,
			})
		}
	}
	stats := ctl.ReplayReads(layout.AccessStream())
	return &StreamStats{
		Voltage:        req.Voltage,
		Policy:         Policy(layout.Policy),
		EffectiveBERth: effTh,
		Accesses:       stats.Accesses(),
		Hits:           stats.Hits,
		Misses:         stats.Misses,
		Conflicts:      stats.Conflicts,
		NACT:           stats.Tally.NACT,
		NPRE:           stats.Tally.NPRE,
		NRD:            stats.Tally.NRD,
		NREF:           stats.Tally.NREF,
		MakespanNs:     stats.TotalNs,
		BusUtilization: stats.BusUtilization(),
		HitRate:        stats.HitRate(),
		BanksUsed:      layout.BanksUsed(),
		SubarraysUsed:  layout.SubarraysUsed(),
		Energy:         s.fw.Power.Energy(stats.Tally, req.Voltage),
	}, nil
}

// testSet regenerates the system's test dataset (deterministic in the
// configuration, so resumed pipelines see the same samples).
func (s *System) testSet() (*datasetT, error) {
	_, test, err := s.datasets()
	return test, err
}

// newRNG derives a fresh stream from the system seed (exposed for the
// pipeline stages).
func (s *System) newRNG() *rng.Stream { return rng.New(s.cfg.seed) }
