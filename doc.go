// Package sparkxd is the public SDK of a from-scratch Go reproduction
// of "SparkXD: A Framework for Resilient and Energy-Efficient Spiking
// Neural Network Inference using Approximate DRAM" (Putra, Hanif,
// Shafique — DAC 2021).
//
// Build a System with New and functional options, then drive the staged
// Pipeline: Train -> ImproveTolerance (Algorithm 1) -> AnalyzeTolerance
// (the maximum-tolerable-BER search) -> Map (Algorithm 2) ->
// EvaluateUnderErrors -> EnergyReport. Every stage takes a
// context.Context (cancellation is checked inside the epoch and sample
// loops), returns a typed artifact that round-trips through JSON
// (TrainedModel, ToleranceReport, Placement, Evaluation), and can be run
// independently, composed by Pipeline.Run, or resumed from a persisted
// artifact. Progress arrives as structured events through WithObserver
// instead of polling.
//
//	sys, _ := sparkxd.New(sparkxd.WithNeurons(400), sparkxd.WithVoltage(sparkxd.V1025))
//	p := sys.Pipeline()
//	res, err := p.Run(ctx)
//
// Artifacts persist in content-addressed stores (OpenStore,
// PutArtifact, Get*): every value is wrapped in a typed envelope and
// addressed by "<kind>/<sha256-of-canonical-json>", so writes are
// idempotent and reads integrity-checked. The same scheme gives jobs
// deterministic identities: a JobSpec (pipeline stage or sweep grid
// plus a ConfigSpec) hashes to its job ID, which the `sparkxd serve`
// HTTP service and the sparkxd/client package use for idempotent
// submit/poll/stream execution against shared warm engines (DESIGN.md
// §8).
//
// See the package Example for the staged save/resume flow. The
// algorithmic kernel lives under internal/ (DESIGN.md has the system
// inventory), runnable binaries under cmd/, usage examples under
// examples/, and the per-figure benchmark harness in bench_test.go.
package sparkxd
