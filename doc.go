// Package sparkxd is a from-scratch Go reproduction of "SparkXD: A
// Framework for Resilient and Energy-Efficient Spiking Neural Network
// Inference using Approximate DRAM" (Putra, Hanif, Shafique — DAC 2021).
//
// The implementation lives under internal/ (see DESIGN.md for the system
// inventory), runnable binaries under cmd/, usage examples under
// examples/, and the per-figure benchmark harness in bench_test.go.
package sparkxd
