// Faultaware: demonstrates what the paper's Algorithm 1 buys, using the
// staged public API.
//
// It runs the Train and ImproveTolerance stages separately, then
// evaluates the naive and the fault-aware model under approximate-DRAM
// bit errors across a BER sweep, printing the Fig. 11-style comparison:
// the naive model degrades as the error rate grows, the fault-aware
// model stays near the error-free baseline.
//
//	go run ./examples/faultaware
//	go run ./examples/faultaware -tiny   # CI smoke budget
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	"sparkxd"
	"sparkxd/internal/report"
)

func main() {
	tiny := flag.Bool("tiny", false, "shrink budgets for a seconds-long smoke run")
	flag.Parse()

	neurons, trainN, testN := 150, 250, 120
	if *tiny {
		neurons, trainN, testN = 40, 60, 30
	}

	sys, err := sparkxd.New(
		sparkxd.WithNeurons(neurons),
		sparkxd.WithSampleBudget(trainN, testN),
		sparkxd.WithBaseEpochs(2),
		sparkxd.WithBERSchedule(1e-7, 1e-5, 1e-3),
	)
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()

	// Stage 1: error-free baseline training.
	p := sys.Pipeline()
	naive, err := p.Train(ctx)
	if err != nil {
		log.Fatal(err)
	}
	// Stage 2: Algorithm 1 fault-aware training on top of the baseline.
	aware, err := p.ImproveTolerance(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("error-free baseline accuracy: %.1f%%\n\n", aware.BaselineAcc*100)

	tb := report.NewTable("accuracy under approximate-DRAM bit errors",
		"BER", "naive model", "fault-aware model (SparkXD)")
	for i, ber := range []float64{1e-9, 1e-7, 1e-5, 1e-3, 1e-2} {
		// The shared evalSeed pairs both evaluations on identical spike
		// trains, removing encoder noise from the comparison.
		accNaive, err := sys.EvaluateModelAtBER(ctx, naive, ber, uint64(40+i), 99)
		if err != nil {
			log.Fatal(err)
		}
		accAware, err := sys.EvaluateModelAtBER(ctx, aware, ber, uint64(40+i), 99)
		if err != nil {
			log.Fatal(err)
		}
		tb.AddRow(fmt.Sprintf("%.0e", ber), report.Pct(accNaive), report.Pct(accAware))
	}
	tb.Render(log.Writer())
}
