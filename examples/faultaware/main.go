// Faultaware: demonstrates what the paper's Algorithm 1 buys.
//
// It trains one SNN normally and one with fault-aware training, then
// evaluates both under approximate-DRAM bit errors across the BER sweep,
// printing the Fig. 11-style comparison: the naive model degrades as the
// error rate grows, the fault-aware model stays near the error-free
// baseline.
//
//	go run ./examples/faultaware
package main

import (
	"fmt"
	"log"

	"sparkxd/internal/core"
	"sparkxd/internal/dataset"
	"sparkxd/internal/errmodel"
	"sparkxd/internal/report"
	"sparkxd/internal/rng"
	"sparkxd/internal/snn"
)

func main() {
	const neurons = 150
	f := core.NewFramework()

	dcfg := dataset.DefaultConfig(dataset.MNISTLike)
	dcfg.Train, dcfg.Test = 250, 120
	train, test, err := dataset.Generate(dcfg)
	if err != nil {
		log.Fatal(err)
	}

	// Baseline: trained without any DRAM errors.
	baseline, err := snn.New(snn.DefaultConfig(neurons), rng.New(1))
	if err != nil {
		log.Fatal(err)
	}
	for e := 0; e < 2; e++ {
		baseline.TrainEpoch(train, rng.New(uint64(10+e)))
	}
	baseline.AssignLabels(train, rng.New(20))

	// Improved: Algorithm 1 fault-aware training on top of the baseline.
	tcfg := core.DefaultTrainConfig()
	tcfg.Rates = []float64{1e-7, 1e-5, 1e-3}
	res, err := f.ImproveErrorTolerance(baseline, train, test, tcfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("error-free baseline accuracy: %.1f%%\n\n", res.BaselineAcc*100)

	layout, err := f.LayoutFor(baseline, nil)
	if err != nil {
		log.Fatal(err)
	}
	tb := report.NewTable("accuracy under approximate-DRAM bit errors",
		"BER", "naive model", "fault-aware model (SparkXD)")
	for i, ber := range []float64{1e-9, 1e-7, 1e-5, 1e-3, 1e-2} {
		profile, err := errmodel.UniformProfile(f.Geom, ber, f.DeviceSeed)
		if err != nil {
			log.Fatal(err)
		}
		accNaive := f.EvaluateUnderErrors(baseline, test, layout, profile, uint64(40+i), 99)
		accAware := f.EvaluateUnderErrors(res.Model, test, layout, profile, uint64(40+i), 99)
		tb.AddRow(fmt.Sprintf("%.0e", ber), report.Pct(accNaive), report.Pct(accAware))
	}
	tb.Render(log.Writer())
}
