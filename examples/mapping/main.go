// Mapping: explores the paper's Algorithm 2 DRAM mapping.
//
// It characterizes an approximate-DRAM device at a reduced voltage,
// partitions subarrays into safe/unsafe at a BER threshold, places a
// weight image with both the baseline and the SparkXD policy, and replays
// the inference stream through the memory controller to show where the
// row-buffer hits and the multi-bank overlap come from.
//
//	go run ./examples/mapping
package main

import (
	"fmt"
	"log"
	"os"

	"sparkxd/internal/core"
	"sparkxd/internal/report"
	"sparkxd/internal/voltscale"
)

func main() {
	f := core.NewFramework()
	const weights = 784 * 900 // the paper's N900 network
	const voltage = voltscale.V1100
	const berTh = 1e-4

	profile, err := f.ProfileAt(voltage)
	if err != nil {
		log.Fatal(err)
	}
	safe := profile.SafeCount(berTh)
	fmt.Printf("device at %.3f V: mean BER %.2e, worst subarray %.2e\n",
		voltage, profile.MeanBER(), profile.MaxBER())
	fmt.Printf("safe subarrays at BERth=%.0e: %d of %d\n\n",
		berTh, safe, len(profile.SubarrayBER))

	baseline, err := f.LayoutForWeights(weights, nil)
	if err != nil {
		log.Fatal(err)
	}
	spark, _, effTh, err := f.MapWeightsAdaptive(weights, voltage, berTh)
	if err != nil {
		log.Fatal(err)
	}
	if effTh != berTh {
		fmt.Printf("note: threshold relaxed to %.0e to fit the image\n", effTh)
	}

	tb := report.NewTable("mapping comparison (N900 weights, 1.100 V)",
		"metric", "baseline", "SparkXD (Algorithm 2)")
	eb, err := f.EvaluateEnergy(baseline, voltage)
	if err != nil {
		log.Fatal(err)
	}
	es, err := f.EvaluateEnergy(spark, voltage)
	if err != nil {
		log.Fatal(err)
	}
	tb.AddRow("banks used", baseline.BanksUsed(), spark.BanksUsed())
	tb.AddRow("subarrays used", baseline.SubarraysUsed(), spark.SubarraysUsed())
	tb.AddRow("row-buffer hit rate", report.Pct(eb.Stats.HitRate()), report.Pct(es.Stats.HitRate()))
	tb.AddRow("makespan [us]", eb.Stats.TotalNs/1000, es.Stats.TotalNs/1000)
	tb.AddRow("bus utilization", report.Pct(eb.Stats.BusUtilization()), report.Pct(es.Stats.BusUtilization()))
	tb.AddRow("DRAM energy [mJ]", eb.TotalMJ(), es.TotalMJ())
	tb.Render(os.Stdout)

	fmt.Printf("\nspeed-up from bank-interleaved, safe-subarray mapping: %.3fx\n",
		eb.Stats.TotalNs/es.Stats.TotalNs)
}
