// Mapping: explores the paper's Algorithm 2 DRAM mapping through the
// public SDK.
//
// It characterizes an approximate-DRAM device at a reduced voltage,
// partitions subarrays into safe/unsafe at a BER threshold, places a
// weight image with both the baseline and the SparkXD policy, and
// replays the inference stream through the memory controller to show
// where the row-buffer hits and the multi-bank overlap come from.
//
//	go run ./examples/mapping
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"sparkxd"
	"sparkxd/internal/report"
)

func main() {
	const weights = 784 * 900 // the paper's N900 network
	const voltage = sparkxd.V1100
	const berTh = 1e-4

	sys, err := sparkxd.New()
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()

	profile, err := sys.DeviceProfile(voltage)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("device at %.3f V: mean BER %.2e, worst subarray %.2e\n",
		voltage, profile.MeanBER(), profile.MaxBER())
	fmt.Printf("safe subarrays at BERth=%.0e: %d of %d\n\n",
		berTh, profile.SafeCount(berTh), len(profile.SubarrayBER))

	base, err := sys.StreamEnergy(ctx, sparkxd.StreamRequest{
		WeightCount: weights, Policy: sparkxd.PolicyBaseline, Voltage: voltage})
	if err != nil {
		log.Fatal(err)
	}
	spark, err := sys.StreamEnergy(ctx, sparkxd.StreamRequest{
		WeightCount: weights, Policy: sparkxd.PolicySparkXD, Voltage: voltage, BERth: berTh})
	if err != nil {
		log.Fatal(err)
	}
	if spark.EffectiveBERth != berTh {
		fmt.Printf("note: threshold relaxed to %.0e to fit the image\n", spark.EffectiveBERth)
	}

	tb := report.NewTable("mapping comparison (N900 weights, 1.100 V)",
		"metric", "baseline", "SparkXD (Algorithm 2)")
	tb.AddRow("banks used", base.BanksUsed, spark.BanksUsed)
	tb.AddRow("subarrays used", base.SubarraysUsed, spark.SubarraysUsed)
	tb.AddRow("row-buffer hit rate", report.Pct(base.HitRate), report.Pct(spark.HitRate))
	tb.AddRow("makespan [us]", base.MakespanNs/1000, spark.MakespanNs/1000)
	tb.AddRow("bus utilization", report.Pct(base.BusUtilization), report.Pct(spark.BusUtilization))
	tb.AddRow("DRAM energy [mJ]", base.Energy.TotalMJ(), spark.Energy.TotalMJ())
	tb.Render(os.Stdout)

	fmt.Printf("\nspeed-up from bank-interleaved, safe-subarray mapping: %.3fx\n",
		base.MakespanNs/spark.MakespanNs)
}
