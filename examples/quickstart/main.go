// Quickstart: the smallest end-to-end SparkXD run.
//
// It trains a small unsupervised SNN on the synthetic MNIST flavour,
// applies fault-aware training against approximate-DRAM bit errors,
// finds the maximum tolerable BER, maps the weights into safe DRAM
// subarrays, and prints the accuracy/energy outcome.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"sparkxd/internal/core"
)

func main() {
	f := core.NewFramework()

	cfg := core.DefaultRunConfig(100) // 100 excitatory neurons: runs in seconds
	cfg.TrainN, cfg.TestN = 200, 100
	cfg.BaseEpochs = 2

	res, err := f.Run(cfg)
	if err != nil {
		log.Fatalf("quickstart: %v", err)
	}

	fmt.Println("SparkXD quickstart")
	fmt.Printf("  baseline accuracy (accurate DRAM @1.350V): %5.1f%%\n", res.BaselineAcc*100)
	fmt.Printf("  improved accuracy (approx   DRAM @1.025V): %5.1f%%\n", res.ImprovedAcc*100)
	fmt.Printf("  maximum tolerable BER:                     %.0e\n", res.BERth)
	fmt.Printf("  DRAM energy baseline:                      %.4f mJ\n", res.EnergyBaseline.TotalMJ())
	fmt.Printf("  DRAM energy SparkXD:                       %.4f mJ\n", res.EnergySparkXD.TotalMJ())
	fmt.Printf("  DRAM energy savings:                       %5.1f%%\n", res.EnergySavings()*100)
	fmt.Printf("  throughput (mapping speed-up):             %.3fx\n", res.Speedup)
}
