// Quickstart: the smallest end-to-end SparkXD run through the public
// SDK.
//
// It builds a System with functional options, runs the staged pipeline
// (baseline training, fault-aware training against approximate-DRAM bit
// errors, maximum-tolerable-BER search, safe-subarray mapping), and
// prints the accuracy/energy outcome.
//
//	go run ./examples/quickstart
//	go run ./examples/quickstart -tiny   # CI smoke budget, a few seconds
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	"sparkxd"
)

func main() {
	tiny := flag.Bool("tiny", false, "shrink budgets for a seconds-long smoke run")
	flag.Parse()

	neurons, trainN, testN := 100, 200, 100
	rates := []float64{1e-9, 1e-8, 1e-7, 1e-6, 1e-5, 1e-4, 1e-3}
	if *tiny {
		neurons, trainN, testN = 40, 60, 30
		rates = []float64{1e-5, 1e-3}
	}

	sys, err := sparkxd.New(
		sparkxd.WithNeurons(neurons),
		sparkxd.WithSampleBudget(trainN, testN),
		sparkxd.WithBaseEpochs(2),
		sparkxd.WithBERSchedule(rates...),
		sparkxd.WithVoltage(sparkxd.V1025),
	)
	if err != nil {
		log.Fatalf("quickstart: %v", err)
	}

	res, err := sys.Pipeline().Run(context.Background())
	if err != nil {
		log.Fatalf("quickstart: %v", err)
	}

	fmt.Println("SparkXD quickstart")
	fmt.Printf("  baseline accuracy (accurate DRAM @1.350V): %5.1f%%\n", res.Improved.BaselineAcc*100)
	fmt.Printf("  improved accuracy (approx   DRAM @1.025V): %5.1f%%\n", res.Evaluation.Accuracy*100)
	fmt.Printf("  maximum tolerable BER:                     %.0e\n", res.Tolerance.BERth)
	fmt.Printf("  DRAM energy baseline:                      %.4f mJ\n", res.Energy.Baseline.TotalMJ)
	fmt.Printf("  DRAM energy SparkXD:                       %.4f mJ\n", res.Energy.SparkXD.TotalMJ)
	fmt.Printf("  DRAM energy savings:                       %5.1f%%\n", res.Energy.Savings*100)
	fmt.Printf("  throughput (mapping speed-up):             %.3fx\n", res.Energy.Speedup)
}
