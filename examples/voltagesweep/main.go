// Voltagesweep: the approximate-DRAM characterization study.
//
// For each supply voltage the paper evaluates, it prints the circuit
// model's timing parameters, the raw bit error rate, the per-access
// energies by row-buffer condition, and the end-to-end DRAM energy of
// streaming an N900 weight image — the data behind Figs. 2(b), 2(c), 6,
// and Table I.
//
//	go run ./examples/voltagesweep
package main

import (
	"fmt"
	"log"
	"os"

	"sparkxd/internal/core"
	"sparkxd/internal/dram"
	"sparkxd/internal/report"
	"sparkxd/internal/voltscale"
)

func main() {
	f := core.NewFramework()
	const weights = 784 * 900

	tb := report.NewTable("approximate DRAM characterization (LPDDR3-1600 4Gb)",
		"Vsupply", "tRCD [ns]", "tRAS [ns]", "tRP [ns]", "BER",
		"hit [nJ]", "conflict [nJ]", "stream energy [mJ]", "saving")
	var baseMJ float64
	for _, v := range voltscale.PaperVoltages() {
		layout, _, _, err := f.MapWeightsAdaptive(weights, v, 1e-3)
		if err != nil {
			log.Fatal(err)
		}
		e, err := f.EvaluateEnergy(layout, v)
		if err != nil {
			log.Fatal(err)
		}
		if baseMJ == 0 {
			baseMJ = e.TotalMJ()
		}
		tb.AddRow(
			fmt.Sprintf("%.3f", v),
			f.Circuit.TRCD(v),
			f.Circuit.TRAS(v),
			f.Circuit.TRP(v),
			fmt.Sprintf("%.1e", f.Circuit.BER(v)),
			f.Power.AccessEnergyNJ(dram.AccessHit, v),
			f.Power.AccessEnergyNJ(dram.AccessConflict, v),
			e.TotalMJ(),
			report.Pct(1-e.TotalMJ()/baseMJ),
		)
	}
	tb.Render(os.Stdout)
	fmt.Println("\nlower voltage -> lower energy per access, longer row timings, higher BER;")
	fmt.Println("SparkXD's fault-aware training + safe-subarray mapping make the trade usable.")
}
