// Voltagesweep: the approximate-DRAM characterization study, through
// the public SDK.
//
// For each supply voltage the paper evaluates, it prints the circuit
// model's timing parameters, the raw bit error rate, the per-access
// energies by row-buffer condition, and the end-to-end DRAM energy of
// streaming an N900 weight image — the data behind Figs. 2(b), 2(c), 6,
// and Table I.
//
//	go run ./examples/voltagesweep
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"sparkxd"
	"sparkxd/internal/report"
)

func main() {
	const weights = 784 * 900

	sys, err := sparkxd.New()
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()

	tb := report.NewTable("approximate DRAM characterization (LPDDR3-1600 4Gb)",
		"Vsupply", "tRCD [ns]", "tRAS [ns]", "tRP [ns]", "BER",
		"hit [nJ]", "conflict [nJ]", "stream energy [mJ]", "saving")
	var baseMJ float64
	for _, v := range sparkxd.PaperVoltages() {
		op := sys.Characterize(v)
		stats, err := sys.StreamEnergy(ctx, sparkxd.StreamRequest{
			WeightCount: weights, Policy: sparkxd.PolicySparkXD, Voltage: v, BERth: 1e-3})
		if err != nil {
			log.Fatal(err)
		}
		mj := stats.Energy.TotalMJ()
		if baseMJ == 0 {
			baseMJ = mj
		}
		tb.AddRow(
			fmt.Sprintf("%.3f", v),
			op.TRCDns,
			op.TRASns,
			op.TRPns,
			fmt.Sprintf("%.1e", op.RawBER),
			op.HitEnergyNJ,
			op.ConflictEnergyNJ,
			mj,
			report.Pct(1-mj/baseMJ),
		)
	}
	tb.Render(os.Stdout)
	fmt.Println("\nlower voltage -> lower energy per access, longer row timings, higher BER;")
	fmt.Println("SparkXD's fault-aware training + safe-subarray mapping make the trade usable.")
}
