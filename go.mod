module sparkxd

go 1.22
