package sparkxd

import (
	"context"
	"errors"
	"fmt"

	"sparkxd/internal/mapping"
)

// Sentinel errors of the public API. Wrapped causes stay inspectable:
// errors.Is(err, ErrCancelled) and errors.Is(err, context.Canceled) are
// both true for a cancelled stage, and ErrNoSafeSubarrays carries the
// internal mapping diagnosis beneath it.
var (
	// ErrCancelled marks a pipeline stage that stopped because its
	// context was cancelled or timed out.
	ErrCancelled = errors.New("sparkxd: cancelled")

	// ErrNoSafeSubarrays is returned by Map when the subarrays whose BER
	// stays below the tolerance threshold cannot hold the weight image at
	// the requested voltage. MapAdaptive relaxes the threshold instead.
	ErrNoSafeSubarrays = errors.New("sparkxd: safe subarrays cannot hold the model")

	// ErrMissingArtifact is returned by a pipeline stage whose input
	// artifact is absent — run the producing stage first, or assign a
	// persisted artifact to the pipeline before resuming.
	ErrMissingArtifact = errors.New("sparkxd: required pipeline artifact missing")

	// ErrInvalidSweep is returned by Pipeline.Sweep when the SweepSpec
	// does not describe a runnable grid (empty axis after defaulting,
	// out-of-range BER, unknown policy or error model, or axis values
	// that collide at scenario-key precision).
	ErrInvalidSweep = errors.New("sparkxd: invalid sweep spec")

	// ErrCorruptArtifact is returned by the artifact loaders and typed
	// store getters when the stored bytes cannot be trusted: truncated or
	// malformed JSON, an envelope whose kind disagrees with the requested
	// artifact type, or a payload that fails integrity checks. The
	// underlying cause (e.g. a *json.SyntaxError) stays inspectable with
	// errors.As.
	ErrCorruptArtifact = errors.New("sparkxd: corrupt artifact")

	// ErrInvalidJobSpec is returned when a JobSpec cannot be normalized
	// into a runnable job (unknown kind, stage, dataset, error model, or
	// policy).
	ErrInvalidJobSpec = errors.New("sparkxd: invalid job spec")
)

// wrapStage normalizes an error escaping a pipeline stage: cancellation
// and capacity failures are tagged with their public sentinels, and every
// error is prefixed with the stage that produced it.
func wrapStage(stage string, err error) error {
	if err == nil {
		return nil
	}
	switch {
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return fmt.Errorf("sparkxd: %s: %w: %w", stage, ErrCancelled, err)
	case errors.Is(err, mapping.ErrInsufficientSafeCapacity):
		return fmt.Errorf("sparkxd: %s: %w: %w", stage, ErrNoSafeSubarrays, err)
	default:
		return fmt.Errorf("sparkxd: %s: %w", stage, err)
	}
}

// invalidSweep tags a sweep-spec validation failure with its sentinel.
func invalidSweep(err error) error {
	return fmt.Errorf("sparkxd: sweep: %w: %w", ErrInvalidSweep, err)
}

// missingArtifact builds an ErrMissingArtifact with stage guidance.
func missingArtifact(stage, want, hint string) error {
	return fmt.Errorf("%w: %s needs %s (%s)", ErrMissingArtifact, stage, want, hint)
}
