#!/usr/bin/env bash
# serve-smoke: end-to-end determinism check of the sparkxd job service.
#
# 1. Run a tiny sweep in process (`sparkxd sweep -json`).
# 2. Start `sparkxd serve` on a random port over a filesystem store.
# 3. Submit the same sweep as a job through the Go client — twice, and
#    require both submissions to return the same deterministic job ID.
# 4. Poll the job to completion and fetch the sweep artifact payload.
# 5. `cmp` the fetched payload against the in-process report: the job
#    service must reproduce the direct run byte for byte.
set -euo pipefail

workdir="$(mktemp -d)"
server_pid=""
cleanup() {
	[ -n "$server_pid" ] && kill "$server_pid" 2>/dev/null || true
	rm -rf "$workdir"
}
trap cleanup EXIT

echo "serve-smoke: building sparkxd"
go build -o "$workdir/sparkxd" ./cmd/sparkxd

tiny=(-neurons 40 -train 60 -test 30 -epochs 1)
grid=(-voltages 1.1 -bers 1e-5,1e-4 -models uniform -policies sparkxd)

echo "serve-smoke: in-process sweep"
"$workdir/sparkxd" sweep "${tiny[@]}" "${grid[@]}" -workers 2 -json -quiet \
	> "$workdir/direct.json"

echo "serve-smoke: starting job server"
"$workdir/sparkxd" serve -addr 127.0.0.1:0 -store "$workdir/store" -workers 2 \
	> "$workdir/serve.out" 2> "$workdir/serve.err" &
server_pid=$!

addr=""
for _ in $(seq 1 50); do
	addr="$(awk '/^listening on /{print $3}' "$workdir/serve.out" 2>/dev/null || true)"
	[ -n "$addr" ] && break
	sleep 0.2
done
if [ -z "$addr" ]; then
	echo "serve-smoke: server did not report an address" >&2
	cat "$workdir/serve.err" >&2 || true
	exit 1
fi
echo "serve-smoke: server at $addr"

cat > "$workdir/spec.json" <<'SPEC'
{
  "kind": "sweep",
  "config": {
    "neurons": 40,
    "dataset": "mnist",
    "train_samples": 60,
    "test_samples": 30,
    "base_epochs": 1
  },
  "sweep": {
    "voltages": [1.1],
    "bers": [1e-5, 1e-4],
    "error_models": ["uniform"],
    "policies": ["sparkxd"]
  }
}
SPEC

id1="$("$workdir/sparkxd" job submit -addr "$addr" -spec "$workdir/spec.json" -id-only)"
id2="$("$workdir/sparkxd" job submit -addr "$addr" -spec "$workdir/spec.json" -id-only)"
echo "serve-smoke: job id $id1"
if [ "$id1" != "$id2" ]; then
	echo "serve-smoke: resubmission changed the job ID ($id1 vs $id2)" >&2
	exit 1
fi

"$workdir/sparkxd" job wait -addr "$addr" -id "$id1" -artifact sweep \
	> "$workdir/served.json"

cmp "$workdir/direct.json" "$workdir/served.json"
echo "serve-smoke: served artifact is byte-identical to the in-process sweep"
