#!/usr/bin/env bash
# federation-smoke: end-to-end check of federated coordinators sharing
# one remote artifact store.
#
# 1. Run the tiny sweep in process (`sparkxd sweep -json`) per seed as
#    the oracle.
# 2. Start `sparkxd store serve` — the shared remote artifact store.
# 3. Start two sharded coordinators (`serve -shard 1/2` and `-shard
#    2/2`, static -peers) over that store URL.
# 4. Submit a mixed batch (seeds whose job IDs hash to both shards)
#    through coordinator A only: the CLI transparently follows the 421
#    Misdirected Request to the owner for foreign IDs.
# 5. kill -9 coordinator B while its jobs are still queued, then start
#    a replacement on the same port: it must restore the queued jobs
#    from the durable job records in the shared store.
# 6. Join one worker per coordinator (uploading straight to the store
#    URL), wait for every job through coordinator A (again following
#    redirects), and `cmp` each artifact against the in-process oracle.
set -euo pipefail

workdir="$(mktemp -d)"
store_pid=""
coord_a_pid=""
coord_b_pid=""
worker_a_pid=""
worker_b_pid=""
cleanup() {
	for pid in "$worker_a_pid" "$worker_b_pid" "$coord_a_pid" "$coord_b_pid" "$store_pid"; do
		[ -n "$pid" ] && kill "$pid" 2>/dev/null || true
	done
	rm -rf "$workdir"
}
trap cleanup EXIT

echo "federation-smoke: building sparkxd"
go build -o "$workdir/sparkxd" ./cmd/sparkxd

tiny=(-neurons 40 -train 60 -test 30 -epochs 1)
grid=(-voltages 1.1 -bers 1e-5,1e-4 -models uniform -policies sparkxd)
# Seed 2 hashes into shard 1's slice of the job-ID space; seeds 1 and 3
# into shard 2's. Deterministic forever (job IDs are content hashes) —
# the ownership check below fails loudly if that ever drifts.
seeds_a=(2)
seeds_b=(1 3)
seeds=(1 2 3)

echo "federation-smoke: in-process sweeps (oracle)"
for seed in "${seeds[@]}"; do
	"$workdir/sparkxd" sweep "${tiny[@]}" "${grid[@]}" -seed "$seed" \
		-workers 2 -json -quiet > "$workdir/direct-$seed.json"
done

echo "federation-smoke: starting the shared artifact store"
"$workdir/sparkxd" store serve -addr 127.0.0.1:0 -store "$workdir/store" -quiet \
	> "$workdir/store.out" 2> "$workdir/store.err" &
store_pid=$!
store_url=""
for _ in $(seq 1 50); do
	store_url="$(awk '/^listening on /{print $3}' "$workdir/store.out" 2>/dev/null || true)"
	[ -n "$store_url" ] && break
	sleep 0.2
done
if [ -z "$store_url" ]; then
	echo "federation-smoke: store server did not report an address" >&2
	cat "$workdir/store.err" >&2 || true
	exit 1
fi
echo "federation-smoke: store at $store_url"

# The coordinators need each other's address up front (-peers is
# static), so pre-pick two free ports instead of binding port 0.
cat > "$workdir/freeports.go" <<'EOF'
package main

import (
	"fmt"
	"net"
)

func main() {
	for i := 0; i < 2; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			panic(err)
		}
		defer ln.Close()
		fmt.Println(ln.Addr().(*net.TCPAddr).Port)
	}
}
EOF
mapfile -t ports < <(go run "$workdir/freeports.go")
addr_a="http://127.0.0.1:${ports[0]}"
addr_b="http://127.0.0.1:${ports[1]}"
peers="$addr_a,$addr_b"

start_coord() { # $1 = shard index, $2 = listen port, $3 = log prefix
	"$workdir/sparkxd" serve -addr "127.0.0.1:$2" -store "$store_url" \
		-dispatch fleet -shard "$1/2" -peers "$peers" \
		-lease-ttl 2s -drain-timeout 10s -quiet \
		> "$workdir/$3.out" 2> "$workdir/$3.err" &
}

echo "federation-smoke: starting sharded coordinators A=$addr_a B=$addr_b"
start_coord 1 "${ports[0]}" coord-a
coord_a_pid=$!
start_coord 2 "${ports[1]}" coord-b
coord_b_pid=$!
for coord in a b; do
	up=""
	for _ in $(seq 1 50); do
		if grep -q '^listening on ' "$workdir/coord-$coord.out" 2>/dev/null; then
			up=1
			break
		fi
		sleep 0.2
	done
	if [ -z "$up" ]; then
		echo "federation-smoke: coordinator $coord did not come up" >&2
		cat "$workdir/coord-$coord.err" >&2 || true
		exit 1
	fi
done

spec_for() { # $1 = seed
	cat > "$workdir/spec-$1.json" <<SPEC
{
  "kind": "sweep",
  "config": {
    "neurons": 40,
    "dataset": "mnist",
    "train_samples": 60,
    "test_samples": 30,
    "base_epochs": 1,
    "seed": $1
  },
  "sweep": {
    "voltages": [1.1],
    "bers": [1e-5, 1e-4],
    "error_models": ["uniform"],
    "policies": ["sparkxd"]
  }
}
SPEC
}

echo "federation-smoke: submitting the mixed batch through coordinator A only"
declare -A job_id
for seed in "${seeds[@]}"; do
	spec_for "$seed"
	job_id[$seed]="$("$workdir/sparkxd" job submit -addr "$addr_a" \
		-spec "$workdir/spec-$seed.json" -id-only)"
	echo "federation-smoke: seed $seed -> job ${job_id[$seed]}"
done

# Each job must live on its owning shard only: status against the owner
# succeeds directly, and the non-owner's log shows the misdirects it
# bounced. (The submit path above already followed 421s silently.)
owned_state() { # $1 = coordinator addr, $2 = job id
	"$workdir/sparkxd" job status -addr "$1" -id "$2" \
		| sed -n 's/.*"state": "\([a-z]*\)".*/\1/p' | head -1
}
for seed in "${seeds_a[@]}"; do
	state="$(owned_state "$addr_a" "${job_id[$seed]}")"
	[ "$state" = "queued" ] || {
		echo "federation-smoke: seed $seed not queued on shard 1 (got '$state')" >&2
		exit 1
	}
done
for seed in "${seeds_b[@]}"; do
	state="$(owned_state "$addr_b" "${job_id[$seed]}")"
	[ "$state" = "queued" ] || {
		echo "federation-smoke: seed $seed not queued on shard 2 (got '$state')" >&2
		exit 1
	}
done
echo "federation-smoke: batch split across both shards as expected"

echo "federation-smoke: kill -9 coordinator B with ${#seeds_b[@]} jobs still queued"
kill -9 "$coord_b_pid" 2>/dev/null || true
wait "$coord_b_pid" 2>/dev/null || true
coord_b_pid=""

echo "federation-smoke: starting replacement coordinator B on the same port"
start_coord 2 "${ports[1]}" coord-b2
coord_b_pid=$!
for _ in $(seq 1 50); do
	grep -q '^listening on ' "$workdir/coord-b2.out" 2>/dev/null && break
	sleep 0.2
done

# The replacement must have restored the queued jobs from the durable
# records in the shared store — before any worker exists.
for seed in "${seeds_b[@]}"; do
	state="$(owned_state "$addr_b" "${job_id[$seed]}")"
	[ "$state" = "queued" ] || {
		echo "federation-smoke: replacement did not restore seed $seed (got '$state')" >&2
		cat "$workdir/coord-b2.err" >&2 || true
		exit 1
	}
done
echo "federation-smoke: replacement restored the queued jobs from the store"

echo "federation-smoke: joining one worker per coordinator (direct-to-store uploads)"
"$workdir/sparkxd" worker -join "$addr_a" -store "$store_url" -workers 2 \
	-name fed-wa -poll 100ms > /dev/null 2> "$workdir/worker-a.err" &
worker_a_pid=$!
"$workdir/sparkxd" worker -join "$addr_b" -store "$store_url" -workers 2 \
	-name fed-wb -poll 100ms > /dev/null 2> "$workdir/worker-b.err" &
worker_b_pid=$!

echo "federation-smoke: waiting for the whole batch through coordinator A"
for seed in "${seeds[@]}"; do
	"$workdir/sparkxd" job wait -addr "$addr_a" -id "${job_id[$seed]}" -artifact sweep \
		> "$workdir/served-$seed.json"
	cmp "$workdir/direct-$seed.json" "$workdir/served-$seed.json"
done
echo "federation-smoke: all artifacts byte-identical to the in-process sweeps"
