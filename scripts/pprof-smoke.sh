#!/usr/bin/env bash
# pprof-smoke: the serving binaries' diagnostics surfaces.
#
# 1. Start `sparkxd serve -debug-addr`, `sparkxd worker -debug-addr`,
#    and `sparkxd store serve -debug-addr`, each with the debug listener
#    on a random port.
# 2. Hit every debug listener: the pprof index, a heap profile, and the
#    /debug/vars runtime snapshot (goroutine count must be positive and
#    the version string present).
# 3. Submit a tiny job and assert the coordinator's stderr carries
#    structured JSON log lines keyed by the job ID — the slog pipeline,
#    end to end.
set -euo pipefail

workdir="$(mktemp -d)"
server_pid=""
worker_pid=""
store_pid=""
cleanup() {
	for pid in "$worker_pid" "$store_pid" "$server_pid"; do
		[ -n "$pid" ] && kill "$pid" 2>/dev/null || true
	done
	rm -rf "$workdir"
}
trap cleanup EXIT

echo "pprof-smoke: building sparkxd"
go build -o "$workdir/sparkxd" ./cmd/sparkxd

# wait_line FILE PREFIX -> the first line starting with PREFIX, polled.
wait_line() {
	local file="$1" prefix="$2" line=""
	for _ in $(seq 1 50); do
		line="$(grep -m1 "^$prefix" "$file" 2>/dev/null || true)"
		[ -n "$line" ] && break
		sleep 0.2
	done
	if [ -z "$line" ]; then
		echo "pprof-smoke: no \"$prefix\" line in $file" >&2
		cat "$file" >&2 || true
		exit 1
	fi
	echo "$line"
}

echo "pprof-smoke: starting coordinator, worker, and store server with debug listeners"
"$workdir/sparkxd" serve -addr 127.0.0.1:0 -dispatch hybrid -workers 2 \
	-debug-addr 127.0.0.1:0 \
	> "$workdir/serve.out" 2> "$workdir/serve.err" &
server_pid=$!
addr="$(wait_line "$workdir/serve.out" "listening on " | awk '{print $3}')"
serve_debug="$(wait_line "$workdir/serve.out" "debug on " | awk '{print $3}')"

"$workdir/sparkxd" worker -join "$addr" -workers 1 -name pprof-w1 \
	-debug-addr 127.0.0.1:0 \
	> "$workdir/worker.out" 2> "$workdir/worker.err" &
worker_pid=$!
worker_debug="$(wait_line "$workdir/worker.out" "debug on " | awk '{print $3}')"

"$workdir/sparkxd" store serve -addr 127.0.0.1:0 -debug-addr 127.0.0.1:0 \
	> "$workdir/store.out" 2> "$workdir/store.err" &
store_pid=$!
store_debug="$(wait_line "$workdir/store.out" "debug on " | awk '{print $3}')"

for debug in "$serve_debug" "$worker_debug" "$store_debug"; do
	base="${debug%/debug/pprof/}"
	echo "pprof-smoke: probing $base"
	curl -fsS "$base/debug/pprof/" > /dev/null
	curl -fsS "$base/debug/pprof/heap?debug=1" | head -1 | grep -q "heap profile"
	curl -fsS "$base/debug/vars" > "$workdir/vars.json"
	jq -e '(.goroutines > 0) and (.version | length > 0) and (.heap_alloc > 0)' \
		"$workdir/vars.json" > /dev/null
done
echo "pprof-smoke: all three debug listeners serve pprof and runtime vars"

cat > "$workdir/spec.json" <<'SPEC'
{
  "kind": "sweep",
  "config": {
    "neurons": 40,
    "dataset": "mnist",
    "train_samples": 60,
    "test_samples": 30,
    "base_epochs": 1
  },
  "sweep": {
    "voltages": [1.1],
    "bers": [1e-5],
    "error_models": ["uniform"],
    "policies": ["sparkxd"]
  }
}
SPEC
id="$("$workdir/sparkxd" job submit -addr "$addr" -spec "$workdir/spec.json" -id-only)"
"$workdir/sparkxd" job wait -addr "$addr" -id "$id" > /dev/null
echo "pprof-smoke: job $id done"

# Structured logging: the coordinator's stderr is JSON lines, and the
# job's lifecycle lines carry the job ID as an attribute.
if ! grep -q '"job":"'"$id"'"' "$workdir/serve.err"; then
	echo "pprof-smoke: no structured log line keyed by the job ID:" >&2
	cat "$workdir/serve.err" >&2
	exit 1
fi
head -1 "$workdir/serve.err" | jq -e '.time and .level and .msg' > /dev/null
echo "pprof-smoke: coordinator logs structured JSON keyed by job ID"

# `sparkxd version` prints the same version /v1/healthz reports.
cli_version="$("$workdir/sparkxd" version | awk '{$1=""; sub(/^ /,""); print}')"
hz_version="$(curl -fsS "$addr/v1/healthz" | jq -r '.version')"
if [ "$cli_version" != "$hz_version" ]; then
	echo "pprof-smoke: version mismatch: CLI \"$cli_version\" vs healthz \"$hz_version\"" >&2
	exit 1
fi
echo "pprof-smoke: CLI and healthz agree on version $hz_version"
