#!/usr/bin/env bash
# sweep-smoke: run a tiny multi-axis scenario grid through the CLI and
# cross-check that workers=2 and workers=1 produce byte-identical JSON
# (the determinism contract of DESIGN.md §7, extended to the bitwidth,
# pruning, and encoder axes of §12).
#
# The grid is 2 voltages x 2 BERs x 2 error models x 2 policies
# x 2 bitwidths x 2 prune levels x 2 encoders = 128 scenarios, kept
# cheap with a 40-neuron network and a 60/30 sample budget.
set -euo pipefail
cd "$(dirname "$0")/.."

out="${TMPDIR:-/tmp}"
grid=(
  -neurons 40 -train 60 -test 30 -epochs 1
  -voltages 1.1,1.025 -bers 1e-5,1e-4
  -models uniform,data-dependent -policies baseline,sparkxd
  -bitwidths 32,16 -prune 0,0.5 -encoders rate,ttfs
  -json
)

go run ./cmd/sparkxd sweep "${grid[@]}" -workers 2 > "$out/sparkxd-sweep-w2.json"
go run ./cmd/sparkxd sweep "${grid[@]}" -workers 1 > "$out/sparkxd-sweep-w1.json"
cmp "$out/sparkxd-sweep-w1.json" "$out/sparkxd-sweep-w2.json"
echo "sweep-smoke: multi-axis grid deterministic across workers"
