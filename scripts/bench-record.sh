#!/usr/bin/env bash
# bench-record: run the kernel benchmarks (scripts/bench-run.sh) and
# normalize the result into the committed baseline BENCH_kernel.json
# (min-of-runs ns/op, B/op, allocs/op per benchmark).
#
# Run this on a quiet machine when a PR intentionally changes kernel
# performance, review the diff, and commit the updated baseline. CI's
# bench job compares every build against the committed file with
# scripts/bench-check.sh.
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_kernel.json}"
./scripts/bench-run.sh | tee /dev/stderr | go run ./cmd/benchtool record -o "$out"
