#!/usr/bin/env bash
# fleet-smoke: end-to-end check of the distributed worker fleet.
#
# 1. Run a tiny sweep in process (`sparkxd sweep -json`) as the oracle.
# 2. Start a coordinator (`sparkxd serve -dispatch fleet`) over a
#    filesystem store with a short lease TTL.
# 3. Join worker 1, submit the sweep job, and kill -9 the worker as
#    soon as it holds the job — a real crash, mid-lease.
# 4. Join worker 2: the expired lease requeues the job (crashed worker
#    excluded) and worker 2 completes it.
# 5. `cmp` the fetched artifact payload against the in-process report:
#    the re-executed job must reproduce the direct run byte for byte.
# 6. Drain the coordinator (SIGTERM), restart it on the same store with
#    no workers at all, resubmit the same spec — the job must be served
#    `done` instantly from the persisted job record, and the artifact
#    must still `cmp` clean.
set -euo pipefail

workdir="$(mktemp -d)"
server_pid=""
worker1_pid=""
worker2_pid=""
cleanup() {
	for pid in "$worker1_pid" "$worker2_pid" "$server_pid"; do
		[ -n "$pid" ] && kill "$pid" 2>/dev/null || true
	done
	rm -rf "$workdir"
}
trap cleanup EXIT

echo "fleet-smoke: building sparkxd"
go build -o "$workdir/sparkxd" ./cmd/sparkxd

tiny=(-neurons 40 -train 60 -test 30 -epochs 1)
grid=(-voltages 1.1 -bers 1e-5,1e-4 -models uniform -policies sparkxd)

echo "fleet-smoke: in-process sweep (oracle)"
"$workdir/sparkxd" sweep "${tiny[@]}" "${grid[@]}" -workers 2 -json -quiet \
	> "$workdir/direct.json"

start_server() {
	"$workdir/sparkxd" serve -addr 127.0.0.1:0 -store "$workdir/store" \
		-dispatch fleet -lease-ttl 2s -drain-timeout 10s -workers 2 \
		> "$workdir/serve.out" 2> "$workdir/serve.err" &
	server_pid=$!
	addr=""
	for _ in $(seq 1 50); do
		addr="$(awk '/^listening on /{print $3}' "$workdir/serve.out" 2>/dev/null || true)"
		[ -n "$addr" ] && break
		sleep 0.2
	done
	if [ -z "$addr" ]; then
		echo "fleet-smoke: coordinator did not report an address" >&2
		cat "$workdir/serve.err" >&2 || true
		exit 1
	fi
}

start_server
echo "fleet-smoke: coordinator at $addr"

cat > "$workdir/spec.json" <<'SPEC'
{
  "kind": "sweep",
  "config": {
    "neurons": 40,
    "dataset": "mnist",
    "train_samples": 60,
    "test_samples": 30,
    "base_epochs": 1
  },
  "sweep": {
    "voltages": [1.1],
    "bers": [1e-5, 1e-4],
    "error_models": ["uniform"],
    "policies": ["sparkxd"]
  }
}
SPEC

echo "fleet-smoke: joining worker 1 (the one we will crash)"
"$workdir/sparkxd" worker -join "$addr" -workers 2 -name smoke-w1 -poll 100ms \
	> /dev/null 2> "$workdir/worker1.err" &
worker1_pid=$!

id="$("$workdir/sparkxd" job submit -addr "$addr" -spec "$workdir/spec.json" -id-only)"
echo "fleet-smoke: job id $id"

# Wait until worker 1 holds the lease, then crash it hard.
for _ in $(seq 1 100); do
	state="$("$workdir/sparkxd" job status -addr "$addr" -id "$id" \
		| sed -n 's/.*"state": "\([a-z]*\)".*/\1/p' | head -1)"
	[ "$state" = "running" ] && break
	[ "$state" = "done" ] && break
	sleep 0.1
done
if [ "$state" = "running" ]; then
	echo "fleet-smoke: killing worker 1 mid-job (kill -9)"
	kill -9 "$worker1_pid" 2>/dev/null || true
	wait "$worker1_pid" 2>/dev/null || true
	worker1_pid=""
else
	echo "fleet-smoke: job already $state before the crash window (machine too fast); continuing"
fi

echo "fleet-smoke: joining worker 2 (the one that finishes the job)"
"$workdir/sparkxd" worker -join "$addr" -workers 2 -name smoke-w2 -poll 100ms \
	> /dev/null 2> "$workdir/worker2.err" &
worker2_pid=$!

"$workdir/sparkxd" job wait -addr "$addr" -id "$id" -artifact sweep \
	> "$workdir/served.json"
cmp "$workdir/direct.json" "$workdir/served.json"
echo "fleet-smoke: fleet artifact is byte-identical to the in-process sweep"

# The live coordinator must expose the fleet's activity on /metrics:
# lease grants and completed-job latency observations are both nonzero
# after the job above ran through a worker.
curl -fsS "$addr/metrics" > "$workdir/metrics.out"
for series in 'sparkxd_leases_total{op="grant"}' 'sparkxd_job_latency_seconds_count'; do
	if ! awk -v p="$series" 'index($0, p) == 1 && $NF + 0 > 0 { found = 1 }
		END { exit !found }' "$workdir/metrics.out"; then
		echo "fleet-smoke: /metrics has no nonzero series for $series:" >&2
		grep -F "${series%%\{*}" "$workdir/metrics.out" >&2 || true
		exit 1
	fi
done
echo "fleet-smoke: /metrics shows nonzero lease and job-latency series"

# The completed job must have an assembled distributed trace with spans
# from at least two processes (the coordinator and a worker), and the
# spans must nest: queue-wait and lease under the "job" root, the
# worker's execute envelope under a lease span, and at least one
# pipeline stage span under an execute span.
echo "fleet-smoke: fetching the job's distributed trace"
"$workdir/sparkxd" trace -addr "$addr" -json "$id" > "$workdir/trace.json"
"$workdir/sparkxd" trace -addr "$addr" "$id"
if ! jq -e '
	[.spans[] | select(.name == "job") | .span_id] as $roots |
	[.spans[] | select(.name == "lease") | .span_id] as $leases |
	[.spans[] | select(.name == "execute")
		| select([.parent_span_id] | inside($leases)) | .span_id] as $execs |
	((.spans | map(.process) | unique | length) >= 2) and
	(($roots | length) == 1) and
	(([.spans[] | select(.name == "queue-wait")
		| select([.parent_span_id] | inside($roots))] | length) >= 1) and
	(([.spans[] | select(.name == "lease")
		| select([.parent_span_id] | inside($roots))] | length) >= 1) and
	(($execs | length) >= 1) and
	(([.spans[] | select(.name | startswith("stage:"))
		| select([.parent_span_id] | inside($execs))] | length) >= 1)
' "$workdir/trace.json" > /dev/null; then
	echo "fleet-smoke: trace is missing multi-process or nested spans:" >&2
	cat "$workdir/trace.json" >&2
	exit 1
fi
echo "fleet-smoke: trace spans two processes with queue -> lease -> stage nesting"

echo "fleet-smoke: draining the coordinator and workers"
kill "$worker2_pid" 2>/dev/null || true
wait "$worker2_pid" 2>/dev/null || true
worker2_pid=""
kill -TERM "$server_pid"
wait "$server_pid" || true
server_pid=""

echo "fleet-smoke: restarting the coordinator on the same store (no workers)"
start_server
echo "fleet-smoke: coordinator back at $addr"

status="$("$workdir/sparkxd" job submit -addr "$addr" -spec "$workdir/spec.json")"
if ! echo "$status" | grep -q '"state": "done"'; then
	echo "fleet-smoke: resubmission was not served from the persisted job record:" >&2
	echo "$status" >&2
	exit 1
fi
"$workdir/sparkxd" job wait -addr "$addr" -id "$id" -artifact sweep \
	> "$workdir/cached.json"
cmp "$workdir/direct.json" "$workdir/cached.json"
echo "fleet-smoke: restart served the job from the durable record, byte-identical"

# The trace key rides the durable job record, so the replacement
# coordinator still serves the trace assembled before the restart.
"$workdir/sparkxd" trace -addr "$addr" -json "$id" \
	| jq -e --arg id "$id" '.job_id == $id and (.spans | length) > 0' > /dev/null
echo "fleet-smoke: restarted coordinator still serves the persisted trace"
