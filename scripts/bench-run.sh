#!/usr/bin/env bash
# bench-run: measure the hot-kernel benchmarks with fixed iteration
# counts and emit raw `go test -bench` output on stdout.
#
# Fixed -benchtime=Nx (not wall-clock auto-tuning) keeps the measured
# work identical across machines and commits, and -count=3 gives the
# min-of-runs aggregation in benchtool something to minimize over.
# bench-record.sh and bench-check.sh consume this output.
set -euo pipefail
cd "$(dirname "$0")/.."

run() { # bench-regex iterations
  go test -run='^$' -bench="$1" -benchtime="$2" -count=3 -benchmem .
}

run '^BenchmarkLIFStep$' 2000x
run '^BenchmarkEvaluate$' 20x
run '^BenchmarkSweepScenario$' 20x
run '^BenchmarkSweepScenarioMultiAxis$' 20x
run '^BenchmarkInject(Wordline)?$' 200x
