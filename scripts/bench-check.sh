#!/usr/bin/env bash
# bench-check: run the kernel benchmarks and gate against the committed
# baseline BENCH_kernel.json. Fails when any tracked benchmark's ns/op
# regressed more than the tolerance (default 25%; override with
# BENCH_TOLERANCE, a fraction, e.g. BENCH_TOLERANCE=0.40).
#
# Only slowdowns fail: improvements pass and should be captured by
# re-running scripts/bench-record.sh in the PR that earns them.
set -euo pipefail
cd "$(dirname "$0")/.."

baseline="${1:-BENCH_kernel.json}"
./scripts/bench-run.sh | tee /dev/stderr | go run ./cmd/benchtool check -baseline "$baseline"
