#!/usr/bin/env bash
# loadgen-smoke: end-to-end check of observability + admission control.
#
# 1. Start a coordinator (`sparkxd serve -dispatch fleet`) with tight
#    per-submitter admission control (-rate 1 -burst 1) and a bounded
#    warm-System cache, plus two workers serving /metrics.
# 2. Run `sparkxd loadgen` against it: concurrent closed-loop clients,
#    a single:sweep mix, and two priority classes.
# 3. Assert the report parses under the sparkxd-loadgen/v1 schema with
#    zero failed jobs — and, because admission is tight, a nonzero 429
#    count: every throttle was absorbed by client retry, none leaked
#    into a failure.
# 4. Scrape the coordinator and worker /metrics endpoints: lease
#    grants, job latency observations, and the warm-System cache bound
#    must all be visible.
#
# The JSON report is left at ${LOADGEN_REPORT:-$workdir/report.json}
# so CI can upload it as a build artifact.
set -euo pipefail

workdir="$(mktemp -d)"
report="${LOADGEN_REPORT:-$workdir/report.json}"
server_pid=""
worker1_pid=""
worker2_pid=""
cleanup() {
	for pid in "$worker1_pid" "$worker2_pid" "$server_pid"; do
		[ -n "$pid" ] && kill "$pid" 2>/dev/null || true
	done
	rm -rf "$workdir"
}
trap cleanup EXIT

echo "loadgen-smoke: building sparkxd"
go build -o "$workdir/sparkxd" ./cmd/sparkxd

echo "loadgen-smoke: starting coordinator (rate 1/s, burst 1 per submitter)"
"$workdir/sparkxd" serve -addr 127.0.0.1:0 -store "$workdir/store" \
	-dispatch fleet -rate 1 -burst 1 -max-warm-systems 2 -quiet \
	> "$workdir/serve.out" 2> "$workdir/serve.err" &
server_pid=$!
addr=""
for _ in $(seq 1 50); do
	addr="$(awk '/^listening on /{print $3}' "$workdir/serve.out" 2>/dev/null || true)"
	[ -n "$addr" ] && break
	sleep 0.2
done
if [ -z "$addr" ]; then
	echo "loadgen-smoke: coordinator did not report an address" >&2
	cat "$workdir/serve.err" >&2 || true
	exit 1
fi
echo "loadgen-smoke: coordinator at $addr"

start_worker() { # $1: name, $2: stdout file
	"$workdir/sparkxd" worker -join "$addr" -workers 2 -name "$1" \
		-poll 100ms -metrics 127.0.0.1:0 -max-warm-systems 2 -quiet \
		> "$2" 2>&1 &
}
start_worker smoke-w1 "$workdir/worker1.out"
worker1_pid=$!
start_worker smoke-w2 "$workdir/worker2.out"
worker2_pid=$!

echo "loadgen-smoke: running loadgen (3 clients, 6s, mix 3:1, priorities 0,10)"
"$workdir/sparkxd" loadgen -addr "$addr" -clients 3 -duration 6s \
	-mix 3:1 -priorities 0,10 > "$report" 2> "$workdir/loadgen.err"
cat "$workdir/loadgen.err"

echo "loadgen-smoke: validating the report schema"
jq -e '
	.schema == "sparkxd-loadgen/v1"
	and .clients == 3
	and .submitted > 0
	and .done == .submitted
	and .failed == 0
	and .throughput_jobs_per_s > 0
	and (.latency_ms | has("p50") and has("p95") and has("p99"))
	and .latency_ms.p50 >= 0 and .latency_ms.p99 >= .latency_ms.p50
	and (.per_priority | length) == 2
	and ([.per_priority[].priority] == [0, 10])
	and ([.per_priority[].failed] | add) == 0
' "$report" > /dev/null || {
	echo "loadgen-smoke: report failed schema validation:" >&2
	cat "$report" >&2
	exit 1
}

throttled="$(jq -r '.throttled_429' "$report")"
if [ "$throttled" -le 0 ]; then
	echo "loadgen-smoke: expected 429s under -rate 1 -burst 1, saw none" >&2
	cat "$report" >&2
	exit 1
fi
echo "loadgen-smoke: $throttled throttles (429), all retried to completion, 0 failed"

echo "loadgen-smoke: scraping coordinator /metrics"
curl -fsS "$addr/metrics" > "$workdir/coord.metrics"
check_nonzero() { # $1: metrics file, $2: series prefix
	awk -v p="$2" 'index($0, p) == 1 && $NF + 0 > 0 { found = 1 }
		END { exit !found }' "$1" || {
		echo "loadgen-smoke: no nonzero series for $2 in $1:" >&2
		grep -F "${2%%\{*}" "$1" >&2 || true
		exit 1
	}
}
check_nonzero "$workdir/coord.metrics" 'sparkxd_leases_total{op="grant"}'
check_nonzero "$workdir/coord.metrics" 'sparkxd_job_latency_seconds_count'
check_nonzero "$workdir/coord.metrics" 'sparkxd_jobs_submitted_total{result="throttled"}'
echo "loadgen-smoke: coordinator shows lease grants, job latency, and throttles"

echo "loadgen-smoke: scraping worker /metrics"
fleet_done=0
for out in "$workdir/worker1.out" "$workdir/worker2.out"; do
	maddr=""
	for _ in $(seq 1 50); do
		maddr="$(awk '/^metrics on /{print $3}' "$out" 2>/dev/null || true)"
		[ -n "$maddr" ] && break
		sleep 0.2
	done
	if [ -z "$maddr" ]; then
		echo "loadgen-smoke: worker did not report a metrics address ($out)" >&2
		cat "$out" >&2
		exit 1
	fi
	curl -fsS "$maddr" > "$workdir/worker.metrics"
	done_jobs="$(awk '/^sparkxd_worker_jobs_total\{outcome="done"\}/ { print int($2) }' "$workdir/worker.metrics")"
	fleet_done=$((fleet_done + ${done_jobs:-0}))
	warm="$(awk '$1 == "sparkxd_warm_systems" { print $2 }' "$workdir/worker.metrics")"
	if [ -z "$warm" ] || [ "$warm" -gt 2 ]; then
		echo "loadgen-smoke: worker warm-System cache (${warm:-missing}) exceeds -max-warm-systems 2" >&2
		exit 1
	fi
	echo "loadgen-smoke: worker $maddr healthy (${done_jobs:-0} jobs done, warm systems $warm <= 2)"
done
if [ "$fleet_done" -le 0 ]; then
	echo "loadgen-smoke: no worker reported a completed job" >&2
	exit 1
fi

echo "loadgen-smoke: report at $report"
echo "loadgen-smoke: PASS"
