// Kernel benchmarks backing the committed BENCH_kernel.json baseline
// (DESIGN.md §10). These four-plus benchmarks measure the per-scenario
// hot path every layer above (sweep engine, job server, worker fleet)
// bottoms out in:
//
//	BenchmarkLIFStep        one Pool.Step over an N3600 population
//	BenchmarkEvaluate       one corrupted-weight-image evaluation, the
//	                        steady-state per-scenario cost inside a sweep
//	BenchmarkInject         one Model-0 error-injection pass (paper default)
//	BenchmarkInjectWordline one Model-2 (wordline-clustered) injection pass
//	BenchmarkSweepScenario  one full scenario through internal/engine
//	                        (inject + evaluate), caches warm
//
// `scripts/bench-record.sh` runs them with fixed iteration counts and
// -count=3, normalizes the minimum of the runs into BENCH_kernel.json,
// and CI gates regressions against the committed baseline. Keep names
// and workload shapes stable across PRs: the baseline is only
// comparable to itself.
package sparkxd_test

import (
	"context"
	"testing"

	"sparkxd/internal/coding"
	"sparkxd/internal/core"
	"sparkxd/internal/dataset"
	"sparkxd/internal/engine"
	"sparkxd/internal/errmodel"
	"sparkxd/internal/neuron"
	"sparkxd/internal/quant"
	"sparkxd/internal/rng"
	"sparkxd/internal/snn"
)

// benchTestSet generates the deterministic evaluation set shared by the
// evaluate-shaped kernel benchmarks.
func benchTestSet(b *testing.B, n int) *dataset.Dataset {
	b.Helper()
	cfg := dataset.DefaultConfig(dataset.MNISTLike)
	cfg.Train, cfg.Test = n, 1
	train, _, err := dataset.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	return train
}

// BenchmarkLIFStep measures one timestep of an N3600 LIF population (the
// paper's largest network) with a realistic sparse drive: a fraction of
// the neurons receive suprathreshold input so the spike/reset/refractory
// paths are exercised, not just the leak.
func BenchmarkLIFStep(b *testing.B) {
	const n = 3600
	pool, err := neuron.NewPool(neuron.DefaultLIF(n))
	if err != nil {
		b.Fatal(err)
	}
	// A few distinct drive vectors so the branch pattern is not constant.
	r := rng.New(42)
	drives := make([][]float32, 4)
	for d := range drives {
		drives[d] = make([]float32, n)
		for j := range drives[d] {
			v := r.Float32()
			if v > 0.97 { // ~3% of neurons near threshold per step
				drives[d][j] = 12
			} else {
				drives[d][j] = v
			}
		}
	}
	spikes := make([]int32, 0, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		spikes = pool.Step(drives[i&3], spikes)
	}
	_ = spikes
}

// BenchmarkEvaluate measures the steady-state per-scenario evaluation
// cost of the sweep engine: loading one corrupted weight image into a
// reusable snn.Evaluator and classifying the full test set. The spike
// trains are paired (same eval stream every call), matching how every
// scenario of a sweep evaluates.
func BenchmarkEvaluate(b *testing.B) {
	net, err := snn.New(snn.DefaultConfig(400), rng.New(1))
	if err != nil {
		b.Fatal(err)
	}
	test := benchTestSet(b, 64)
	ev := snn.NewEvaluator(net)
	w := net.WeightsFlat()
	// Perturb a few weights so the image is not the pristine one.
	pr := rng.New(9)
	for k := 0; k < 64; k++ {
		w[pr.Intn(len(w))] *= -1
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ev.EvaluateWeights(context.Background(), test, w, rng.New(7)); err != nil {
			b.Fatal(err)
		}
	}
}

// benchInjector builds a prepared injector over an N900 FP32 weight
// image placed with the baseline policy, returning the injector, the
// layout, and a serialized image buffer.
func benchInjector(b *testing.B, kind errmodel.Kind, ber float64) (*errmodel.Injector, errmodel.Placement, []byte) {
	b.Helper()
	f := core.NewFramework()
	layout, err := f.LayoutForWeights(784*900, nil)
	if err != nil {
		b.Fatal(err)
	}
	profile, err := errmodel.UniformProfile(f.Geom, ber, f.DeviceSeed)
	if err != nil {
		b.Fatal(err)
	}
	w := make([]float32, 784*900)
	r := rng.New(1)
	for i := range w {
		w[i] = r.Float32()
	}
	img := make([]byte, quant.FP32.ImageSize(len(w), layout.UnitBytes()))
	if err := quant.Serialize(w, quant.FP32, img); err != nil {
		b.Fatal(err)
	}
	inj := errmodel.NewInjector(kind, profile)
	inj.Prepare(layout)
	return inj, layout, img
}

// BenchmarkInject measures one Model-0 (uniform, the paper default)
// injection pass over a prepared N900 FP32 image at BER 1e-3.
func BenchmarkInject(b *testing.B) {
	inj, layout, img := benchInjector(b, errmodel.Model0, 1e-3)
	b.SetBytes(int64(len(img)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = inj.Inject(img, layout, rng.New(uint64(i)))
	}
}

// BenchmarkInjectWordline measures one Model-2 (wordline-clustered)
// injection pass — the model whose flips land in dense per-unit runs,
// the word-at-a-time mask path.
func BenchmarkInjectWordline(b *testing.B) {
	inj, layout, img := benchInjector(b, errmodel.Model2, 1e-3)
	b.SetBytes(int64(len(img)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = inj.Inject(img, layout, rng.New(uint64(i)))
	}
}

// BenchmarkSweepScenario measures one full scenario through the sweep
// engine — serialize, inject, deserialize, evaluate — with the engine's
// profile/layout/injector caches warm: the marginal cost of one more
// grid point, i.e. the kernel the fleet fan-out multiplies.
func BenchmarkSweepScenario(b *testing.B) {
	net, err := snn.New(snn.DefaultConfig(400), rng.New(1))
	if err != nil {
		b.Fatal(err)
	}
	test := benchTestSet(b, 64)
	eng := engine.New(core.NewFramework())
	spec := engine.Spec{
		BERs:     []float64{1e-4},
		Kinds:    []errmodel.Kind{errmodel.Model0},
		Policies: []string{engine.PolicyBaseline},
		Uniform:  true,
		Seed:     11,
		EvalSeed: 7,
		Workers:  4,
	}
	// Warm the caches so the measured iterations see the steady state.
	if _, err := eng.Run(context.Background(), net, test, spec); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Run(context.Background(), net, test, spec); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSweepScenarioMultiAxis measures one all-non-default scenario
// through the sweep engine — FP16 bitwidth, 50% magnitude pruning, TTFS
// encoding — with caches warm. Against BenchmarkSweepScenario it prices
// the marginal cost the extended axes add per grid point (re-encode into
// the per-encoder set is cached; pruning re-copies the weight image).
func BenchmarkSweepScenarioMultiAxis(b *testing.B) {
	net, err := snn.New(snn.DefaultConfig(400), rng.New(1))
	if err != nil {
		b.Fatal(err)
	}
	test := benchTestSet(b, 64)
	eng := engine.New(core.NewFramework())
	spec := engine.Spec{
		BERs:        []float64{1e-4},
		Kinds:       []errmodel.Kind{errmodel.Model0},
		Policies:    []string{engine.PolicyBaseline},
		Bitwidths:   []int{16},
		PruneLevels: []float64{0.5},
		Encoders:    []engine.EncoderAxis{{Name: "ttfs", Coder: coding.TTFS{}}},
		Uniform:     true,
		Seed:        11,
		EvalSeed:    7,
		Workers:     4,
	}
	// Warm the caches so the measured iterations see the steady state.
	if _, err := eng.Run(context.Background(), net, test, spec); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Run(context.Background(), net, test, spec); err != nil {
			b.Fatal(err)
		}
	}
}
