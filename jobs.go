package sparkxd

import (
	"fmt"

	"sparkxd/internal/store"
)

// Job kinds accepted by JobSpec.Kind.
const (
	// JobPipeline runs the staged pipeline up to (and including)
	// JobSpec.Stage.
	JobPipeline = "pipeline"
	// JobSweep trains the fault-aware improved model and evaluates it
	// over the JobSpec.Sweep scenario grid.
	JobSweep = "sweep"
)

// Pipeline stage names accepted by JobSpec.Stage, in execution order.
var PipelineStages = []string{"train", "improve", "analyze", "map", "evaluate", "energy"}

// ConfigSpec is the JSON-serializable system configuration of a job: the
// wire form of the functional options New takes. Zero-valued fields mean
// "the paper default" (they are filled in by normalization, so two specs
// that resolve to the same configuration hash to the same job ID).
type ConfigSpec struct {
	Neurons      int    `json:"neurons,omitempty"`
	Dataset      string `json:"dataset,omitempty"`
	TrainSamples int    `json:"train_samples,omitempty"`
	TestSamples  int    `json:"test_samples,omitempty"`
	// BaseEpochs is the error-free training epoch count (0 = default).
	BaseEpochs int     `json:"base_epochs,omitempty"`
	Voltage    float64 `json:"voltage,omitempty"`
	// BERSchedule replaces the progressive fault-aware training schedule.
	BERSchedule []float64 `json:"ber_schedule,omitempty"`
	// AccBound is the tolerated accuracy drop (0 = default 1%).
	AccBound   float64 `json:"acc_bound,omitempty"`
	Seed       uint64  `json:"seed,omitempty"`
	TrainSeed  uint64  `json:"train_seed,omitempty"`
	DeviceSeed uint64  `json:"device_seed,omitempty"`
	// ErrorModel names the EDEN error model ("uniform", "bitline",
	// "wordline", "data-dependent").
	ErrorModel string `json:"error_model,omitempty"`
	// Quantization names the stored weight format ("fp32", "fp16",
	// "q8.8").
	Quantization string `json:"quantization,omitempty"`
}

// normalized fills every zero-valued field with the paper default and
// canonicalizes enum names, so the spec hash is independent of how the
// caller spelled an equivalent configuration.
func (c ConfigSpec) normalized() (ConfigSpec, error) {
	def := defaultConfig()
	if c.Neurons == 0 {
		c.Neurons = def.neurons
	}
	if c.Dataset == "" {
		c.Dataset = MNIST.String()
	}
	d, err := ParseDataset(c.Dataset)
	if err != nil {
		return c, err
	}
	c.Dataset = d.String()
	if c.TrainSamples == 0 {
		c.TrainSamples = def.trainN
	}
	if c.TestSamples == 0 {
		c.TestSamples = def.testN
	}
	if c.BaseEpochs == 0 {
		c.BaseEpochs = def.baseEpochs
	}
	if c.Voltage == 0 {
		c.Voltage = def.voltage
	}
	if len(c.BERSchedule) == 0 {
		c.BERSchedule = append([]float64(nil), def.rates...)
	}
	if c.AccBound == 0 {
		c.AccBound = def.accBound
	}
	if c.Seed == 0 {
		c.Seed = def.seed
	}
	if c.TrainSeed == 0 {
		c.TrainSeed = def.trainSeed
	}
	if c.DeviceSeed == 0 {
		c.DeviceSeed = def.deviceSeed
	}
	if c.ErrorModel == "" {
		c.ErrorModel = ErrorModelUniform.String()
	}
	em, err := ParseErrorModel(c.ErrorModel)
	if err != nil {
		return c, err
	}
	c.ErrorModel = em.String()
	if c.Quantization == "" {
		c.Quantization = FP32.String()
	}
	q, err := ParseQuantization(c.Quantization)
	if err != nil {
		return c, err
	}
	c.Quantization = q.String()
	return c, nil
}

// Options translates the spec into the functional options New takes.
func (c ConfigSpec) Options() ([]Option, error) {
	n, err := c.normalized()
	if err != nil {
		return nil, err
	}
	d, _ := ParseDataset(n.Dataset)
	em, _ := ParseErrorModel(n.ErrorModel)
	q, _ := ParseQuantization(n.Quantization)
	return []Option{
		WithNeurons(n.Neurons),
		WithDataset(d),
		WithSampleBudget(n.TrainSamples, n.TestSamples),
		WithBaseEpochs(n.BaseEpochs),
		WithVoltage(n.Voltage),
		WithBERSchedule(n.BERSchedule...),
		WithAccuracyBound(n.AccBound),
		WithSeed(n.Seed),
		WithTrainSeed(n.TrainSeed),
		WithDeviceSeed(n.DeviceSeed),
		WithErrorModel(em),
		WithQuantization(q),
	}, nil
}

// Fingerprint is the content hash of the normalized configuration: jobs
// with equal fingerprints can share one warm System (datasets, device
// profiles, sweep caches).
func (c ConfigSpec) Fingerprint() (string, error) {
	n, err := c.normalized()
	if err != nil {
		return "", err
	}
	key, err := store.KeyFor("system-config", n)
	if err != nil {
		return "", err
	}
	return key.Hash()[:32], nil
}

// JobSpec declares one unit of service work: a pipeline-stage run or a
// scenario sweep over one system configuration. Its normalized canonical
// JSON is the job's identity — see ID.
type JobSpec struct {
	// Kind is JobPipeline or JobSweep.
	Kind string `json:"kind"`
	// Config is the system configuration the job runs under.
	Config ConfigSpec `json:"config"`
	// Stage, for pipeline jobs, is the last stage to execute ("train",
	// "improve", "analyze", "map", "evaluate", "energy"; empty = the full
	// pipeline, i.e. "energy"). Must be empty for sweep jobs.
	Stage string `json:"stage,omitempty"`
	// Sweep, for sweep jobs, is the scenario grid (nil axes fall back to
	// the configuration, exactly as Pipeline.Sweep resolves them).
	Sweep *SweepSpec `json:"sweep,omitempty"`
	// Priority orders dispatch: higher runs first, within
	// [MinPriority, MaxPriority]; 0 is the default. The queue ages
	// waiting jobs upward so low priorities cannot starve. omitempty
	// keeps priority-0 specs byte-identical to pre-priority specs, so
	// their job IDs are unchanged.
	Priority int `json:"priority,omitempty"`
}

// Priority bounds accepted by JobSpec.Priority. The range is validated,
// not clamped: clamping would silently merge jobs whose specs differ
// only in an out-of-range priority into one content-addressed ID.
const (
	MinPriority = -100
	MaxPriority = 100
)

// Normalized validates the spec and fills every defaulted field,
// returning the canonical form the job ID is derived from. Failures
// satisfy errors.Is(err, ErrInvalidJobSpec).
func (s JobSpec) Normalized() (JobSpec, error) {
	cfg, err := s.Config.normalized()
	if err != nil {
		return s, fmt.Errorf("%w: %w", ErrInvalidJobSpec, err)
	}
	s.Config = cfg
	if s.Priority < MinPriority || s.Priority > MaxPriority {
		return s, fmt.Errorf("%w: priority %d outside [%d, %d]", ErrInvalidJobSpec, s.Priority, MinPriority, MaxPriority)
	}
	switch s.Kind {
	case JobPipeline:
		if s.Sweep != nil {
			return s, fmt.Errorf("%w: pipeline job must not carry a sweep grid", ErrInvalidJobSpec)
		}
		if s.Stage == "" {
			s.Stage = "energy"
		}
		if StageRank(s.Stage) < 0 {
			return s, fmt.Errorf("%w: unknown stage %q (valid: %v)", ErrInvalidJobSpec, s.Stage, PipelineStages)
		}
	case JobSweep:
		if s.Stage != "" {
			return s, fmt.Errorf("%w: sweep job must not set a stage", ErrInvalidJobSpec)
		}
		sw, err := s.normalizedSweep()
		if err != nil {
			return s, err
		}
		s.Sweep = sw
	case "":
		return s, fmt.Errorf("%w: missing kind (valid: %s, %s)", ErrInvalidJobSpec, JobPipeline, JobSweep)
	default:
		return s, fmt.Errorf("%w: unknown kind %q (valid: %s, %s)", ErrInvalidJobSpec, s.Kind, JobPipeline, JobSweep)
	}
	return s, nil
}

// normalizedSweep resolves the sweep grid's defaulted axes against the
// (already normalized) configuration, mirroring how Pipeline.Sweep
// resolves a zero-valued axis at run time.
func (s JobSpec) normalizedSweep() (*SweepSpec, error) {
	var sw SweepSpec
	if s.Sweep != nil {
		sw = *s.Sweep
	}
	sw.Workers = 0 // execution detail, never part of the job identity
	if len(sw.Voltages) == 0 {
		sw.Voltages = []float64{s.Config.Voltage}
	} else {
		sw.Voltages = append([]float64(nil), sw.Voltages...)
	}
	if len(sw.BERs) == 0 {
		sw.BERs = append([]float64(nil), s.Config.BERSchedule...)
	} else {
		sw.BERs = append([]float64(nil), sw.BERs...)
	}
	if len(sw.ErrorModels) == 0 {
		em, err := ParseErrorModel(s.Config.ErrorModel)
		if err != nil {
			return nil, fmt.Errorf("%w: %w", ErrInvalidJobSpec, err)
		}
		sw.ErrorModels = []ErrorModel{em}
	} else {
		sw.ErrorModels = append([]ErrorModel(nil), sw.ErrorModels...)
	}
	if len(sw.Policies) == 0 {
		sw.Policies = []Policy{PolicySparkXD}
	} else {
		canon := make([]Policy, len(sw.Policies))
		for i, pol := range sw.Policies {
			p, err := ParsePolicy(string(pol))
			if err != nil {
				return nil, fmt.Errorf("%w: %w", ErrInvalidJobSpec, err)
			}
			canon[i] = p
		}
		sw.Policies = canon
	}
	// The extended axes normalize the other way: an omitted axis stays
	// nil (omitempty), and a spelled-out single-element axis equal to the
	// configured default elides back to nil, so both spellings hash to
	// the job ID a pre-N-axis spec produced.
	q, err := ParseQuantization(s.Config.Quantization)
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrInvalidJobSpec, err)
	}
	def, err := q.format()
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrInvalidJobSpec, err)
	}
	if sw.Bitwidths, err = canonBitwidthAxis(sw.Bitwidths, def); err != nil {
		return nil, fmt.Errorf("%w: %w", ErrInvalidJobSpec, err)
	}
	if sw.PruneLevels, err = canonPruneAxis(sw.PruneLevels); err != nil {
		return nil, fmt.Errorf("%w: %w", ErrInvalidJobSpec, err)
	}
	if sw.Encoders, err = canonEncoderAxis(sw.Encoders); err != nil {
		return nil, fmt.Errorf("%w: %w", ErrInvalidJobSpec, err)
	}
	return &sw, nil
}

// ID derives the job's deterministic identity: the hex-truncated SHA-256
// of the normalized spec's canonical JSON. Submitting an identical spec
// therefore always addresses the same job — idempotent submission and
// free dedup fall out of content addressing.
func (s JobSpec) ID() (string, error) {
	n, err := s.Normalized()
	if err != nil {
		return "", err
	}
	key, err := store.KeyFor("job", n)
	if err != nil {
		return "", err
	}
	return key.Hash()[:32], nil
}

// JobRecordVersion is the schema version of persisted JobRecord
// payloads; loaders reject records written by a future layout.
const JobRecordVersion = 1

// JobRecord is the durable trace of one job: the persisted
// `jobID → spec (+ artifact keys)` entry that lets a restarted server
// (or a whole fleet sharing one store) serve a repeat submission from
// the store instead of re-executing it, and lets a replacement
// coordinator requeue work that was accepted but never finished.
// Records are stored like any other artifact (KindJobRecord,
// content-addressed), and because execution is deterministic in the
// spec, a re-executed job re-derives the identical record — persisting
// it twice is a no-op.
type JobRecord struct {
	// Version is JobRecordVersion at write time.
	Version int `json:"version"`
	// JobID is the deterministic spec hash the record belongs to.
	JobID string `json:"job_id"`
	// State is the record's snapshot of the job lifecycle: JobQueued
	// when the spec was accepted (persisted at admission so a failover
	// coordinator can requeue unfinished work) and JobDone when the job
	// completed with artifacts.
	State JobState `json:"state"`
	// Spec is the normalized spec the job executed.
	Spec JobSpec `json:"spec"`
	// Artifacts maps result roles to their content-addressed keys.
	Artifacts map[string]ArtifactKey `json:"artifacts,omitempty"`
	// TraceID is the trace the job ran under, when tracing recorded one.
	// Trace context lives here — on the record, out-of-band — and never
	// inside Spec, so job identity is byte-identical with tracing on or
	// off.
	TraceID string `json:"trace_id,omitempty"`
	// TraceKey is the content address of the job's assembled KindJobTrace
	// artifact (done/failed records only). Unlike Artifacts, the trace
	// payload carries wall-clock timings, so the key differs between
	// re-executions of the same job.
	TraceKey ArtifactKey `json:"trace_key,omitempty"`
}

// StageRank returns a pipeline stage's position in PipelineStages, or
// -1 for an unknown stage.
func StageRank(stage string) int {
	for i, s := range PipelineStages {
		if s == stage {
			return i
		}
	}
	return -1
}

// JobState is the lifecycle state of a submitted job.
type JobState string

const (
	// JobQueued: accepted, waiting for a worker.
	JobQueued JobState = "queued"
	// JobRunning: executing on the scheduler pool.
	JobRunning JobState = "running"
	// JobDone: finished; Artifacts holds the result keys.
	JobDone JobState = "done"
	// JobFailed: finished with an error.
	JobFailed JobState = "failed"
)

// Terminal reports whether the state is final.
func (s JobState) Terminal() bool { return s == JobDone || s == JobFailed }

// JobStatus is the service's view of one job, as served by
// GET /v1/jobs/{id}.
type JobStatus struct {
	ID    string   `json:"id"`
	State JobState `json:"state"`
	Spec  JobSpec  `json:"spec"`
	// Error is the failure message of a JobFailed job.
	Error string `json:"error,omitempty"`
	// Artifacts maps result roles ("baseline", "improved", "tolerance",
	// "placement", "evaluation", "energy", "sweep") to their
	// content-addressed store keys.
	Artifacts map[string]ArtifactKey `json:"artifacts,omitempty"`
	// TraceID is the W3C trace ID the job's lifecycle is being recorded
	// under. It is service-side state (out-of-band), never part of the
	// spec or the job's identity; `sparkxd trace <jobID>` renders the
	// assembled trace once the job is terminal.
	TraceID string `json:"trace_id,omitempty"`
}
