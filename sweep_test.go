package sparkxd_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"sparkxd"
)

// sweepGrid is a 24-scenario grid (2 voltages x 3 BERs x 2 error models
// x 2 policies) with 4 distinct device points.
func sweepGrid(workers int) sparkxd.SweepSpec {
	return sparkxd.SweepSpec{
		Voltages:    []float64{sparkxd.V1100, sparkxd.V1025},
		BERs:        []float64{1e-6, 1e-5, 1e-4},
		ErrorModels: []sparkxd.ErrorModel{sparkxd.ErrorModelUniform, sparkxd.ErrorModelDataDependent},
		Policies:    []sparkxd.Policy{sparkxd.PolicyBaseline, sparkxd.PolicySparkXD},
		Workers:     workers,
	}
}

// trainedPipeline returns a pipeline with a trained baseline model on
// the given system.
func trainedPipeline(t testing.TB, sys *sparkxd.System) *sparkxd.Pipeline {
	t.Helper()
	p := sys.Pipeline()
	if _, err := p.Train(context.Background()); err != nil {
		t.Fatal(err)
	}
	return p
}

// TestSweepDeterministicAcrossWorkers is the acceptance check of the
// sweep engine at SDK level: a >= 24-scenario grid produces byte-
// identical JSON at workers=1 and workers=8.
func TestSweepDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("training skipped in -short mode")
	}
	ctx := context.Background()
	p1 := trainedPipeline(t, tinySystem(t))
	r1, err := p1.Sweep(ctx, sweepGrid(1))
	if err != nil {
		t.Fatal(err)
	}
	p8 := trainedPipeline(t, tinySystem(t))
	r8, err := p8.Sweep(ctx, sweepGrid(8))
	if err != nil {
		t.Fatal(err)
	}

	j1, err := json.MarshalIndent(r1, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	j8, err := json.MarshalIndent(r8, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if string(j1) != string(j8) {
		t.Fatalf("workers=1 and workers=8 sweep reports diverge:\n%s\n---\n%s", j1, j8)
	}
	if len(r1.Points) != 24 {
		t.Fatalf("got %d points, want 24", len(r1.Points))
	}
	for i := 1; i < len(r1.Points); i++ {
		if r1.Points[i-1].Key >= r1.Points[i].Key {
			t.Fatalf("points not sorted by key: %q >= %q", r1.Points[i-1].Key, r1.Points[i].Key)
		}
	}
}

// TestSweepProfileCacheStats verifies each (voltage, error model) device
// point derives its profile exactly once.
func TestSweepProfileCacheStats(t *testing.T) {
	if testing.Short() {
		t.Skip("training skipped in -short mode")
	}
	sys := tinySystem(t)
	p := trainedPipeline(t, sys)
	rep, err := p.Sweep(context.Background(), sweepGrid(8))
	if err != nil {
		t.Fatal(err)
	}
	hits, misses := sys.SweepCacheStats()
	const distinct = 4 // 2 voltages x 2 error models
	if misses != distinct {
		t.Errorf("profile derivations = %d, want %d", misses, distinct)
	}
	if want := uint64(len(rep.Points)) - distinct; hits != want {
		t.Errorf("profile cache hits = %d, want %d (scenarios - device points)", hits, want)
	}
}

// TestSweepCancelled: a pre-cancelled sweep fails with ErrCancelled at a
// scenario boundary.
func TestSweepCancelled(t *testing.T) {
	if testing.Short() {
		t.Skip("training skipped in -short mode")
	}
	p := trainedPipeline(t, tinySystem(t))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := p.Sweep(ctx, sweepGrid(2))
	if !errors.Is(err, sparkxd.ErrCancelled) {
		t.Fatalf("err = %v, want ErrCancelled", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled beneath ErrCancelled", err)
	}
}

// TestEvaluateUnderErrorsCancelledAtPointBoundary: a cancelled context
// stops EvaluateUnderErrors before the corruption pass, with the public
// sentinel.
func TestEvaluateUnderErrorsCancelledAtPointBoundary(t *testing.T) {
	if testing.Short() {
		t.Skip("training skipped in -short mode")
	}
	ctx := context.Background()
	p := trainedPipeline(t, tinySystem(t))
	if _, err := p.AnalyzeTolerance(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := p.MapAdaptive(ctx); err != nil {
		t.Fatal(err)
	}
	cctx, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := p.EvaluateUnderErrors(cctx); !errors.Is(err, sparkxd.ErrCancelled) {
		t.Fatalf("err = %v, want ErrCancelled", err)
	}
	// The same pre-cancelled context must stop AnalyzeTolerance at a BER
	// point boundary too.
	if _, err := p.AnalyzeTolerance(cctx); !errors.Is(err, sparkxd.ErrCancelled) {
		t.Fatalf("AnalyzeTolerance err = %v, want ErrCancelled", err)
	}
}

// TestSweepInvalidSpec: malformed grids fail with ErrInvalidSweep before
// any evaluation.
func TestSweepInvalidSpec(t *testing.T) {
	if testing.Short() {
		t.Skip("training skipped in -short mode")
	}
	p := trainedPipeline(t, tinySystem(t))
	cases := []struct {
		name string
		spec sparkxd.SweepSpec
	}{
		{"BER out of range", sparkxd.SweepSpec{BERs: []float64{0.9}}},
		{"negative voltage", sparkxd.SweepSpec{Voltages: []float64{-1}}},
		{"unknown policy", sparkxd.SweepSpec{Policies: []sparkxd.Policy{"mystery"}}},
	}
	for _, tc := range cases {
		if _, err := p.Sweep(context.Background(), tc.spec); !errors.Is(err, sparkxd.ErrInvalidSweep) {
			t.Errorf("%s: err = %v, want ErrInvalidSweep", tc.name, err)
		}
	}
}

// TestValidateSweep: the model-free pre-flight validator accepts the
// default grid and rejects malformed ones with the sentinel.
func TestValidateSweep(t *testing.T) {
	sys := tinySystem(t)
	if err := sys.ValidateSweep(sparkxd.SweepSpec{}); err != nil {
		t.Fatalf("default spec rejected: %v", err)
	}
	err := sys.ValidateSweep(sparkxd.SweepSpec{BERs: []float64{0.9}})
	if !errors.Is(err, sparkxd.ErrInvalidSweep) {
		t.Fatalf("err = %v, want ErrInvalidSweep", err)
	}
}

// TestSweepNeedsModel: sweeping an empty pipeline reports the missing
// artifact.
func TestSweepNeedsModel(t *testing.T) {
	p := tinySystem(t).Pipeline()
	if _, err := p.Sweep(context.Background(), sparkxd.SweepSpec{}); !errors.Is(err, sparkxd.ErrMissingArtifact) {
		t.Fatalf("err = %v, want ErrMissingArtifact", err)
	}
}

// TestSweepReportRoundTrip: the artifact survives SaveArtifact /
// LoadSweepReport losslessly.
func TestSweepReportRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("training skipped in -short mode")
	}
	p := trainedPipeline(t, tinySystem(t))
	rep, err := p.Sweep(context.Background(), sparkxd.SweepSpec{
		BERs:    []float64{1e-5, 1e-4},
		Workers: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Defaults resolved: configured voltage, error model, sparkxd policy.
	if len(rep.Voltages) != 1 || len(rep.Policies) != 1 || rep.Policies[0] != sparkxd.PolicySparkXD {
		t.Fatalf("defaults not applied: %+v", rep)
	}
	path := filepath.Join(t.TempDir(), "sweep.json")
	if err := sparkxd.SaveArtifact(path, rep); err != nil {
		t.Fatal(err)
	}
	loaded, err := sparkxd.LoadSweepReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rep, loaded) {
		t.Fatalf("round trip mismatch:\nsaved:  %+v\nloaded: %+v", rep, loaded)
	}
}

// TestSweepReportGolden byte-compares a full sweep artifact against the
// committed pre-refactor golden: the N-axis refactor must not move a
// single byte of existing reports (field order, axis echoes, point
// values, or formatting).
func TestSweepReportGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("training skipped in -short mode")
	}
	want, err := os.ReadFile(filepath.Join("testdata", "golden", "sweep_report.json"))
	if err != nil {
		t.Fatal(err)
	}
	p := trainedPipeline(t, tinySystem(t))
	rep, err := p.Sweep(context.Background(), sparkxd.SweepSpec{
		BERs:    []float64{1e-5, 1e-4},
		Workers: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')
	if !bytes.Equal(got, want) {
		t.Fatalf("sweep artifact diverged from pre-refactor golden:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// multiAxisGrid extends the legacy grid with every new axis; trimmed to
// 1 voltage x 1 BER so the cross product stays at 32 scenarios.
func multiAxisGrid(workers int) sparkxd.SweepSpec {
	spec := sweepGrid(workers)
	spec.Voltages = spec.Voltages[:1]
	spec.BERs = spec.BERs[:1]
	spec.Bitwidths = []int{32, 16}
	spec.PruneLevels = []float64{0, 0.5}
	spec.Encoders = []sparkxd.Encoder{sparkxd.EncoderRate, sparkxd.EncoderTTFS}
	return spec
}

// TestSweepMultiAxisDeterministicAcrossWorkers: the workers-1-vs-8
// byte-identity contract holds on the bitwidth, pruning, and encoder
// axes, and the report echoes the resolved axes.
func TestSweepMultiAxisDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("training skipped in -short mode")
	}
	p := trainedPipeline(t, tinySystem(t))
	one, err := p.Sweep(context.Background(), multiAxisGrid(1))
	if err != nil {
		t.Fatal(err)
	}
	many, err := p.Sweep(context.Background(), multiAxisGrid(8))
	if err != nil {
		t.Fatal(err)
	}
	a, err := json.MarshalIndent(one, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.MarshalIndent(many, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("workers=1 and workers=8 diverge on extended axes:\n%s\n---\n%s", a, b)
	}
	if len(one.Points) != 32 {
		t.Fatalf("got %d points, want 32 (4 legacy x 2 x 2 x 2)", len(one.Points))
	}
	if !reflect.DeepEqual(one.Bitwidths, []int{32, 16}) {
		t.Errorf("bitwidth echo = %v", one.Bitwidths)
	}
	if !reflect.DeepEqual(one.PruneLevels, []float64{0, 0.5}) {
		t.Errorf("prune echo = %v", one.PruneLevels)
	}
	if !reflect.DeepEqual(one.Encoders, []sparkxd.Encoder{sparkxd.EncoderRate, sparkxd.EncoderTTFS}) {
		t.Errorf("encoder echo = %v", one.Encoders)
	}
	// Per-value elision: the default bitwidth (fp32 config) and rate
	// encoder report as zero values; non-defaults echo through points.
	var sawBW16, sawTTFS, sawPruned bool
	for _, pt := range one.Points {
		switch pt.Bitwidth {
		case 0:
		case 16:
			sawBW16 = true
		default:
			t.Fatalf("point %v echoes bitwidth %d", pt, pt.Bitwidth)
		}
		if pt.Encoder == sparkxd.EncoderTTFS {
			sawTTFS = true
		}
		if pt.PruneLevel == 0.5 {
			sawPruned = true
		}
	}
	if !sawBW16 || !sawTTFS || !sawPruned {
		t.Fatalf("points missing extended-axis echoes: bw16=%v ttfs=%v pruned=%v", sawBW16, sawTTFS, sawPruned)
	}
}

// TestSweepDefaultAxisElision: spelling out the single default value of
// each new axis resolves to the identical report shape as omitting it
// (the axis echo collapses to nil).
func TestSweepDefaultAxisElision(t *testing.T) {
	sys := tinySystem(t)
	spelled := sparkxd.SweepSpec{
		Bitwidths:   []int{32},
		PruneLevels: []float64{0},
		Encoders:    []sparkxd.Encoder{sparkxd.EncoderRate},
	}
	if err := sys.ValidateSweep(spelled); err != nil {
		t.Fatalf("spelled-out defaults rejected: %v", err)
	}
	bad := sparkxd.SweepSpec{Bitwidths: []int{8}}
	if err := sys.ValidateSweep(bad); !errors.Is(err, sparkxd.ErrInvalidSweep) {
		t.Fatalf("bitwidth 8: err = %v, want ErrInvalidSweep", err)
	}
	bad = sparkxd.SweepSpec{PruneLevels: []float64{1}}
	if err := sys.ValidateSweep(bad); !errors.Is(err, sparkxd.ErrInvalidSweep) {
		t.Fatalf("prune 1.0: err = %v, want ErrInvalidSweep", err)
	}
	bad = sparkxd.SweepSpec{Encoders: []sparkxd.Encoder{"morse"}}
	if err := sys.ValidateSweep(bad); !errors.Is(err, sparkxd.ErrInvalidSweep) {
		t.Fatalf("unknown encoder: err = %v, want ErrInvalidSweep", err)
	}
}
