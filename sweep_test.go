package sparkxd_test

import (
	"context"
	"encoding/json"
	"errors"
	"path/filepath"
	"reflect"
	"testing"

	"sparkxd"
)

// sweepGrid is a 24-scenario grid (2 voltages x 3 BERs x 2 error models
// x 2 policies) with 4 distinct device points.
func sweepGrid(workers int) sparkxd.SweepSpec {
	return sparkxd.SweepSpec{
		Voltages:    []float64{sparkxd.V1100, sparkxd.V1025},
		BERs:        []float64{1e-6, 1e-5, 1e-4},
		ErrorModels: []sparkxd.ErrorModel{sparkxd.ErrorModelUniform, sparkxd.ErrorModelDataDependent},
		Policies:    []sparkxd.Policy{sparkxd.PolicyBaseline, sparkxd.PolicySparkXD},
		Workers:     workers,
	}
}

// trainedPipeline returns a pipeline with a trained baseline model on
// the given system.
func trainedPipeline(t testing.TB, sys *sparkxd.System) *sparkxd.Pipeline {
	t.Helper()
	p := sys.Pipeline()
	if _, err := p.Train(context.Background()); err != nil {
		t.Fatal(err)
	}
	return p
}

// TestSweepDeterministicAcrossWorkers is the acceptance check of the
// sweep engine at SDK level: a >= 24-scenario grid produces byte-
// identical JSON at workers=1 and workers=8.
func TestSweepDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("training skipped in -short mode")
	}
	ctx := context.Background()
	p1 := trainedPipeline(t, tinySystem(t))
	r1, err := p1.Sweep(ctx, sweepGrid(1))
	if err != nil {
		t.Fatal(err)
	}
	p8 := trainedPipeline(t, tinySystem(t))
	r8, err := p8.Sweep(ctx, sweepGrid(8))
	if err != nil {
		t.Fatal(err)
	}

	j1, err := json.MarshalIndent(r1, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	j8, err := json.MarshalIndent(r8, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if string(j1) != string(j8) {
		t.Fatalf("workers=1 and workers=8 sweep reports diverge:\n%s\n---\n%s", j1, j8)
	}
	if len(r1.Points) != 24 {
		t.Fatalf("got %d points, want 24", len(r1.Points))
	}
	for i := 1; i < len(r1.Points); i++ {
		if r1.Points[i-1].Key >= r1.Points[i].Key {
			t.Fatalf("points not sorted by key: %q >= %q", r1.Points[i-1].Key, r1.Points[i].Key)
		}
	}
}

// TestSweepProfileCacheStats verifies each (voltage, error model) device
// point derives its profile exactly once.
func TestSweepProfileCacheStats(t *testing.T) {
	if testing.Short() {
		t.Skip("training skipped in -short mode")
	}
	sys := tinySystem(t)
	p := trainedPipeline(t, sys)
	rep, err := p.Sweep(context.Background(), sweepGrid(8))
	if err != nil {
		t.Fatal(err)
	}
	hits, misses := sys.SweepCacheStats()
	const distinct = 4 // 2 voltages x 2 error models
	if misses != distinct {
		t.Errorf("profile derivations = %d, want %d", misses, distinct)
	}
	if want := uint64(len(rep.Points)) - distinct; hits != want {
		t.Errorf("profile cache hits = %d, want %d (scenarios - device points)", hits, want)
	}
}

// TestSweepCancelled: a pre-cancelled sweep fails with ErrCancelled at a
// scenario boundary.
func TestSweepCancelled(t *testing.T) {
	if testing.Short() {
		t.Skip("training skipped in -short mode")
	}
	p := trainedPipeline(t, tinySystem(t))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := p.Sweep(ctx, sweepGrid(2))
	if !errors.Is(err, sparkxd.ErrCancelled) {
		t.Fatalf("err = %v, want ErrCancelled", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled beneath ErrCancelled", err)
	}
}

// TestEvaluateUnderErrorsCancelledAtPointBoundary: a cancelled context
// stops EvaluateUnderErrors before the corruption pass, with the public
// sentinel.
func TestEvaluateUnderErrorsCancelledAtPointBoundary(t *testing.T) {
	if testing.Short() {
		t.Skip("training skipped in -short mode")
	}
	ctx := context.Background()
	p := trainedPipeline(t, tinySystem(t))
	if _, err := p.AnalyzeTolerance(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := p.MapAdaptive(ctx); err != nil {
		t.Fatal(err)
	}
	cctx, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := p.EvaluateUnderErrors(cctx); !errors.Is(err, sparkxd.ErrCancelled) {
		t.Fatalf("err = %v, want ErrCancelled", err)
	}
	// The same pre-cancelled context must stop AnalyzeTolerance at a BER
	// point boundary too.
	if _, err := p.AnalyzeTolerance(cctx); !errors.Is(err, sparkxd.ErrCancelled) {
		t.Fatalf("AnalyzeTolerance err = %v, want ErrCancelled", err)
	}
}

// TestSweepInvalidSpec: malformed grids fail with ErrInvalidSweep before
// any evaluation.
func TestSweepInvalidSpec(t *testing.T) {
	if testing.Short() {
		t.Skip("training skipped in -short mode")
	}
	p := trainedPipeline(t, tinySystem(t))
	cases := []struct {
		name string
		spec sparkxd.SweepSpec
	}{
		{"BER out of range", sparkxd.SweepSpec{BERs: []float64{0.9}}},
		{"negative voltage", sparkxd.SweepSpec{Voltages: []float64{-1}}},
		{"unknown policy", sparkxd.SweepSpec{Policies: []sparkxd.Policy{"mystery"}}},
	}
	for _, tc := range cases {
		if _, err := p.Sweep(context.Background(), tc.spec); !errors.Is(err, sparkxd.ErrInvalidSweep) {
			t.Errorf("%s: err = %v, want ErrInvalidSweep", tc.name, err)
		}
	}
}

// TestValidateSweep: the model-free pre-flight validator accepts the
// default grid and rejects malformed ones with the sentinel.
func TestValidateSweep(t *testing.T) {
	sys := tinySystem(t)
	if err := sys.ValidateSweep(sparkxd.SweepSpec{}); err != nil {
		t.Fatalf("default spec rejected: %v", err)
	}
	err := sys.ValidateSweep(sparkxd.SweepSpec{BERs: []float64{0.9}})
	if !errors.Is(err, sparkxd.ErrInvalidSweep) {
		t.Fatalf("err = %v, want ErrInvalidSweep", err)
	}
}

// TestSweepNeedsModel: sweeping an empty pipeline reports the missing
// artifact.
func TestSweepNeedsModel(t *testing.T) {
	p := tinySystem(t).Pipeline()
	if _, err := p.Sweep(context.Background(), sparkxd.SweepSpec{}); !errors.Is(err, sparkxd.ErrMissingArtifact) {
		t.Fatalf("err = %v, want ErrMissingArtifact", err)
	}
}

// TestSweepReportRoundTrip: the artifact survives SaveArtifact /
// LoadSweepReport losslessly.
func TestSweepReportRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("training skipped in -short mode")
	}
	p := trainedPipeline(t, tinySystem(t))
	rep, err := p.Sweep(context.Background(), sparkxd.SweepSpec{
		BERs:    []float64{1e-5, 1e-4},
		Workers: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Defaults resolved: configured voltage, error model, sparkxd policy.
	if len(rep.Voltages) != 1 || len(rep.Policies) != 1 || rep.Policies[0] != sparkxd.PolicySparkXD {
		t.Fatalf("defaults not applied: %+v", rep)
	}
	path := filepath.Join(t.TempDir(), "sweep.json")
	if err := sparkxd.SaveArtifact(path, rep); err != nil {
		t.Fatal(err)
	}
	loaded, err := sparkxd.LoadSweepReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rep, loaded) {
		t.Fatalf("round trip mismatch:\nsaved:  %+v\nloaded: %+v", rep, loaded)
	}
}
