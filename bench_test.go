// Benchmark harness: one benchmark per table and figure of the paper
// (see DESIGN.md §4), plus micro-benchmarks of the computational kernels
// each experiment leans on. The per-figure benchmarks run the same code
// paths as `cmd/experiments` with the minimal BenchOptions budgets, so
// `go test -bench=. -benchmem` regenerates every result shape end to end.
package sparkxd_test

import (
	"context"
	"fmt"
	"testing"

	"sparkxd"
	"sparkxd/internal/core"
	"sparkxd/internal/dataset"
	"sparkxd/internal/errmodel"
	"sparkxd/internal/experiments"
	"sparkxd/internal/mapping"
	"sparkxd/internal/memctrl"
	"sparkxd/internal/rng"
	"sparkxd/internal/sched"
	"sparkxd/internal/snn"
	"sparkxd/internal/voltscale"
)

func benchRunner() *experiments.Runner {
	return experiments.NewRunner(experiments.BenchOptions())
}

// --- one benchmark per paper table/figure --------------------------------

func BenchmarkFig1a(b *testing.B) {
	r := benchRunner()
	for i := 0; i < b.N; i++ {
		if _, err := r.Fig1a(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig1b(b *testing.B) {
	r := benchRunner()
	for i := 0; i < b.N; i++ {
		_ = r.Fig1b()
	}
}

func BenchmarkFig2a(b *testing.B) {
	r := benchRunner()
	for i := 0; i < b.N; i++ {
		if _, err := r.Fig2a(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig2b(b *testing.B) {
	r := benchRunner()
	for i := 0; i < b.N; i++ {
		_ = r.Fig2b()
	}
}

func BenchmarkFig2c(b *testing.B) {
	r := benchRunner()
	for i := 0; i < b.N; i++ {
		_ = r.Fig2c()
	}
}

func BenchmarkFig2d(b *testing.B) {
	r := benchRunner()
	for i := 0; i < b.N; i++ {
		_ = r.Fig2d()
	}
}

func BenchmarkFig6(b *testing.B) {
	r := benchRunner()
	for i := 0; i < b.N; i++ {
		_ = r.Fig6()
	}
}

func BenchmarkFig8(b *testing.B) {
	// Trained models are cached by the runner, so the steady-state
	// iteration measures the tolerance analysis itself; the first
	// iteration includes fault-aware training.
	r := benchRunner()
	for i := 0; i < b.N; i++ {
		if _, err := r.Fig8(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig11(b *testing.B) {
	r := benchRunner()
	for i := 0; i < b.N; i++ {
		if _, err := r.Fig11(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig12a(b *testing.B) {
	r := benchRunner()
	for i := 0; i < b.N; i++ {
		if _, err := r.Fig12a(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig12b(b *testing.B) {
	r := benchRunner()
	for i := 0; i < b.N; i++ {
		if _, err := r.Fig12b(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTableI(b *testing.B) {
	r := benchRunner()
	for i := 0; i < b.N; i++ {
		_ = r.TableI()
	}
}

// --- design-choice ablations (DESIGN.md §5) -------------------------------

func BenchmarkAblationMapping(b *testing.B) {
	r := benchRunner()
	for i := 0; i < b.N; i++ {
		if _, err := r.AblationMapping(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationErrModels(b *testing.B) {
	r := benchRunner()
	for i := 0; i < b.N; i++ {
		if _, err := r.AblationErrModels(1e-3); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationCoding(b *testing.B) {
	r := benchRunner()
	for i := 0; i < b.N; i++ {
		if _, err := r.AblationCoding(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- experiment scheduler (DESIGN.md §6) ----------------------------------

// BenchmarkScheduledSuite runs every registered experiment through the
// work-stealing scheduler with the minimal benchmark budgets — the same
// path as `cmd/experiments run`. Each iteration uses a fresh runner, so
// this measures the cold-cache suite makespan.
func BenchmarkScheduledSuite(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := benchRunner()
		s, err := sched.New(sched.Config{Seed: 2021, Cache: r.Cache()})
		if err != nil {
			b.Fatal(err)
		}
		if err := s.Add(r.Jobs()...); err != nil {
			b.Fatal(err)
		}
		if _, err := s.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSchedulerOverhead measures the pure scheduling cost: 256
// no-op jobs dispatched across the worker pool.
func BenchmarkSchedulerOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s, err := sched.New(sched.Config{})
		if err != nil {
			b.Fatal(err)
		}
		for j := 0; j < 256; j++ {
			if err := s.Add(sched.Job{
				Name: fmt.Sprintf("noop-%03d", j),
				Run:  func(*sched.Ctx) (any, error) { return nil, nil },
			}); err != nil {
				b.Fatal(err)
			}
		}
		if _, err := s.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- kernel micro-benchmarks ----------------------------------------------

// BenchmarkMappingBaseline places an N900-sized image sequentially.
func BenchmarkMappingBaseline(b *testing.B) {
	f := core.NewFramework()
	for i := 0; i < b.N; i++ {
		if _, err := f.LayoutForWeights(784*900, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMappingSparkXD runs Algorithm 2 with a realistic safe set.
func BenchmarkMappingSparkXD(b *testing.B) {
	f := core.NewFramework()
	profile, err := f.ProfileAt(voltscale.V1100)
	if err != nil {
		b.Fatal(err)
	}
	safe := profile.SafeSubarrays(1e-4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mapping.SparkXD(f.Geom, 784*900*4/32, safe); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkControllerReplay streams one N900 inference pass.
func BenchmarkControllerReplay(b *testing.B) {
	f := core.NewFramework()
	layout, err := f.LayoutForWeights(784*900, nil)
	if err != nil {
		b.Fatal(err)
	}
	ctl, err := memctrl.New(f.Geom, f.Circuit.Timing(voltscale.V1025))
	if err != nil {
		b.Fatal(err)
	}
	stream := layout.AccessStream()
	b.SetBytes(int64(len(stream) * f.Geom.ColumnBytes))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ctl.ReplayReads(stream)
	}
}

// BenchmarkErrorInjection corrupts an N900 FP32 weight image at BER 1e-3.
func BenchmarkErrorInjection(b *testing.B) {
	f := core.NewFramework()
	layout, err := f.LayoutForWeights(784*900, nil)
	if err != nil {
		b.Fatal(err)
	}
	profile, err := errmodel.UniformProfile(f.Geom, 1e-3, f.DeviceSeed)
	if err != nil {
		b.Fatal(err)
	}
	w := make([]float32, 784*900)
	r := rng.New(1)
	for i := range w {
		w[i] = r.Float32()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = f.CorruptWeights(w, layout, profile, rng.New(uint64(i)))
	}
}

// BenchmarkSNNInference measures one sample presentation (N400).
func BenchmarkSNNInference(b *testing.B) {
	net, err := snn.New(snn.DefaultConfig(400), rng.New(1))
	if err != nil {
		b.Fatal(err)
	}
	cfg := dataset.DefaultConfig(dataset.MNISTLike)
	cfg.Train, cfg.Test = 4, 1
	train, _, err := dataset.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = net.SpikeCounts(train.Images[i%train.Len()], rng.New(uint64(i)))
	}
}

// BenchmarkSNNTrainEpoch measures one STDP epoch over 32 samples (N400).
func BenchmarkSNNTrainEpoch(b *testing.B) {
	net, err := snn.New(snn.DefaultConfig(400), rng.New(1))
	if err != nil {
		b.Fatal(err)
	}
	cfg := dataset.DefaultConfig(dataset.MNISTLike)
	cfg.Train, cfg.Test = 32, 1
	train, _, err := dataset.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.TrainEpoch(train, rng.New(uint64(i)))
	}
}

// BenchmarkSweep measures the batched scenario-sweep engine over a
// 24-scenario grid (2 voltages x 3 BERs x 2 error models x 2 policies).
// The workers=1 case is the sequential per-scenario loop the engine
// replaces; the higher-worker cases show the fan-out speedup on the
// same byte-identical workload.
func BenchmarkSweep(b *testing.B) {
	sys, err := sparkxd.New(
		sparkxd.WithNeurons(50),
		sparkxd.WithSampleBudget(60, 30),
		sparkxd.WithBaseEpochs(1),
		sparkxd.WithBERSchedule(1e-5, 1e-3),
	)
	if err != nil {
		b.Fatal(err)
	}
	p := sys.Pipeline()
	if _, err := p.Train(context.Background()); err != nil {
		b.Fatal(err)
	}
	spec := sparkxd.SweepSpec{
		Voltages:    []float64{sparkxd.V1100, sparkxd.V1025},
		BERs:        []float64{1e-6, 1e-5, 1e-4},
		ErrorModels: []sparkxd.ErrorModel{sparkxd.ErrorModelUniform, sparkxd.ErrorModelDataDependent},
		Policies:    []sparkxd.Policy{sparkxd.PolicyBaseline, sparkxd.PolicySparkXD},
	}
	for _, workers := range []int{1, 4} {
		spec.Workers = workers
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := p.Sweep(context.Background(), spec); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEndToEndPipeline runs the complete SparkXD flow through the
// public SDK on a tiny configuration (the quickstart example's -tiny
// workload).
func BenchmarkEndToEndPipeline(b *testing.B) {
	sys, err := sparkxd.New(
		sparkxd.WithNeurons(50),
		sparkxd.WithSampleBudget(60, 30),
		sparkxd.WithBaseEpochs(1),
		sparkxd.WithBERSchedule(1e-5, 1e-3),
	)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.Pipeline().Run(context.Background()); err != nil {
			b.Fatal(err)
		}
	}
}
