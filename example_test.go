package sparkxd_test

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"sparkxd"
)

// Example walks the staged public API end to end: configure a System,
// run the training stages, persist the resumable artifacts, then resume
// mapping and evaluation from disk in a fresh pipeline — no retraining.
func Example() {
	sys, err := sparkxd.New(
		sparkxd.WithNeurons(40),
		sparkxd.WithSampleBudget(60, 30),
		sparkxd.WithBaseEpochs(1),
		sparkxd.WithBERSchedule(1e-5, 1e-3),
		sparkxd.WithVoltage(sparkxd.V1025),
	)
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()

	// Stage by stage: train, harden, analyze.
	p := sys.Pipeline()
	if _, err = p.Train(ctx); err != nil {
		log.Fatal(err)
	}
	improved, err := p.ImproveTolerance(ctx)
	if err != nil {
		log.Fatal(err)
	}
	tolerance, err := p.AnalyzeTolerance(ctx)
	if err != nil {
		log.Fatal(err)
	}

	// Persist the artifacts a deployment would ship.
	dir, err := os.MkdirTemp("", "sparkxd-example")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	modelPath := filepath.Join(dir, "improved.json")
	tolPath := filepath.Join(dir, "tolerance.json")
	if err := sparkxd.SaveArtifact(modelPath, improved); err != nil {
		log.Fatal(err)
	}
	if err := sparkxd.SaveArtifact(tolPath, tolerance); err != nil {
		log.Fatal(err)
	}

	// Resume in a fresh pipeline from the persisted artifacts: Map,
	// EvaluateUnderErrors, and EnergyReport run without any retraining.
	model, err := sparkxd.LoadTrainedModel(modelPath)
	if err != nil {
		log.Fatal(err)
	}
	tol, err := sparkxd.LoadToleranceReport(tolPath)
	if err != nil {
		log.Fatal(err)
	}
	resumed := sys.Pipeline()
	resumed.Improved = model
	resumed.Tolerance = tol
	if _, err := resumed.MapAdaptive(ctx); err != nil {
		log.Fatal(err)
	}
	ev, err := resumed.EvaluateUnderErrors(ctx)
	if err != nil {
		log.Fatal(err)
	}
	energy, err := resumed.EnergyReport(ctx)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("model stage: %s\n", model.Stage)
	fmt.Printf("tolerance found: %t\n", tol.BERth > 0)
	fmt.Printf("evaluated under errors: %t\n", ev.Accuracy >= 0 && ev.Accuracy <= 1)
	fmt.Printf("energy saved: %t\n", energy.Savings > 0)
	// Output:
	// model stage: improved
	// tolerance found: true
	// evaluated under errors: true
	// energy saved: true
}
