// Client-side trace propagation: every submit carries a W3C
// traceparent, a caller-provided span context wins, and the header
// survives 421 shard redirects so the owning federation member roots
// the job's trace under the client's trace ID.
package client_test

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"sparkxd"
	"sparkxd/client"
	"sparkxd/internal/tracing"
)

// Every submit is stamped with a traceparent; with no caller context
// the client starts a fresh trace.
func TestSubmitStampsTraceparent(t *testing.T) {
	var got string
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		got = r.Header.Get("traceparent")
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusCreated)
		json.NewEncoder(w).Encode(sparkxd.JobStatus{ID: "deadbeef", State: sparkxd.JobQueued})
	}))
	defer ts.Close()
	c, err := client.New(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Submit(context.Background(), tinySweepSpec()); err != nil {
		t.Fatal(err)
	}
	if _, err := tracing.ParseTraceparent(got); err != nil {
		t.Fatalf("submit sent traceparent %q: %v", got, err)
	}

	// A span context on ctx wins over a generated one.
	sc := tracing.NewContext()
	ctx := tracing.ContextWith(context.Background(), sc)
	if _, err := c.Submit(ctx, tinySweepSpec()); err != nil {
		t.Fatal(err)
	}
	sent, err := tracing.ParseTraceparent(got)
	if err != nil {
		t.Fatal(err)
	}
	if sent.TraceID != sc.TraceID || sent.SpanID != sc.SpanID {
		t.Errorf("submit sent %s, want the caller's context %s", got, sc.Traceparent())
	}
}

// The traceparent follows a 421 Misdirected Request to the owning
// shard: the job lands on the owner rooted under the client's trace ID,
// not a fresh trace minted by the redirect replay.
func TestTraceparentFollowsShardRedirect(t *testing.T) {
	srv1, srv2, base1 := newFederation(t)
	spec := foreignSpec(t, srv1)

	sc := tracing.NewContext()
	ctx := tracing.ContextWith(context.Background(), sc)
	c, err := client.New(base1)
	if err != nil {
		t.Fatal(err)
	}
	status, err := c.Submit(ctx, spec)
	if err != nil {
		t.Fatalf("Submit through the wrong shard: %v", err)
	}
	if status.TraceID != sc.TraceID.String() {
		t.Errorf("owner rooted trace %q, want the client's %q (traceparent lost across 421)",
			status.TraceID, sc.TraceID)
	}
	owned, ok := srv2.Job(status.ID)
	if !ok {
		t.Fatal("job did not land on the owning shard")
	}
	if owned.TraceID != sc.TraceID.String() {
		t.Errorf("owning shard's status.TraceID = %q, want %q", owned.TraceID, sc.TraceID)
	}
}
