package client

import (
	"testing"
	"time"
)

// The backoff schedule grows geometrically from the initial interval
// and saturates at the cap.
func TestWaitPlanBackoff(t *testing.T) {
	p := waitPlan{initial: 100 * time.Millisecond, max: 2 * time.Second, factor: 1.6, jitter: 0}
	var got []time.Duration
	d := p.initial
	for i := 0; i < 10; i++ {
		got = append(got, d)
		d = p.next(d)
	}
	for i := 1; i < len(got); i++ {
		if got[i] < got[i-1] {
			t.Errorf("delay shrank: %v", got)
		}
		if got[i] > p.max {
			t.Errorf("delay %v exceeds cap %v", got[i], p.max)
		}
	}
	if got[0] != p.initial {
		t.Errorf("first delay %v, want %v", got[0], p.initial)
	}
	if got[len(got)-1] != p.max {
		t.Errorf("schedule never saturated: %v", got)
	}
	// factor 1 disables growth.
	flat := waitPlan{initial: 50 * time.Millisecond, max: time.Second, factor: 1}
	if d := flat.next(flat.initial); d != flat.initial {
		t.Errorf("factor 1 grew the delay to %v", d)
	}
}

// Jitter keeps every sleep inside ±frac of the nominal delay.
func TestWaitPlanJitterBounds(t *testing.T) {
	p := waitPlan{initial: 100 * time.Millisecond, max: 2 * time.Second, factor: 1.6, jitter: 0.2}
	base := 500 * time.Millisecond
	lo := time.Duration(float64(base) * 0.8)
	hi := time.Duration(float64(base) * 1.2)
	varied := false
	for i := 0; i < 200; i++ {
		d := p.jittered(base)
		if d < lo || d > hi {
			t.Fatalf("jittered delay %v outside [%v, %v]", d, lo, hi)
		}
		if d != base {
			varied = true
		}
	}
	if !varied {
		t.Error("jitter produced no variation over 200 samples")
	}
	// Zero jitter is exact.
	p.jitter = 0
	if d := p.jittered(base); d != base {
		t.Errorf("zero jitter changed the delay: %v", d)
	}
}

// WaitOptions clamp invalid values instead of adopting them.
func TestWaitOptionsValidation(t *testing.T) {
	p := waitPlan{initial: 100 * time.Millisecond, max: 2 * time.Second, factor: 1.6, jitter: 0.2}
	for _, opt := range []WaitOption{
		WaitPollInterval(-time.Second),
		WaitMaxInterval(0),
		WaitBackoff(0.5),
		WaitJitter(-1),
		WaitJitter(1.5),
	} {
		opt(&p)
	}
	if p.initial != 100*time.Millisecond || p.max != 2*time.Second || p.factor != 1.6 || p.jitter != 0.2 {
		t.Errorf("invalid options mutated the plan: %+v", p)
	}
	WaitPollInterval(time.Second)(&p)
	WaitMaxInterval(5 * time.Second)(&p)
	WaitBackoff(2)(&p)
	WaitJitter(0)(&p)
	if p.initial != time.Second || p.max != 5*time.Second || p.factor != 2 || p.jitter != 0 {
		t.Errorf("valid options not applied: %+v", p)
	}
}
