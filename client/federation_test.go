// Federation behavior of the client: transparently following a sharded
// coordinator's 421 Misdirected Request to the owning peer, and the
// per-request timeout option.
package client_test

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"sparkxd"
	"sparkxd/client"
	"sparkxd/internal/server"
)

// newFederation builds a 2-shard coordinator pair (fleet dispatch, so
// nothing executes) where shard 1 knows shard 2's real address, and
// returns both servers plus shard 1's base URL — the "wrong door" the
// tests knock on.
func newFederation(t *testing.T) (srv1, srv2 *server.Server, base1 string) {
	t.Helper()
	// Shard 2 first: its address goes into shard 1's peer list. Its own
	// list only needs shape (it never redirects in these tests).
	srv2, err := server.New(server.Config{
		Dispatch:   server.DispatchFleet,
		ShardIndex: 2, ShardCount: 2,
		Peers: []string{"http://unused-peer-one", "http://unused-self"},
		Logf:  t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv2.Close)
	ts2 := httptest.NewServer(srv2.Handler())
	t.Cleanup(ts2.Close)

	srv1, err = server.New(server.Config{
		Dispatch:   server.DispatchFleet,
		ShardIndex: 1, ShardCount: 2,
		Peers: []string{"http://unused-self", ts2.URL},
		Logf:  t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv1.Close)
	ts1 := httptest.NewServer(srv1.Handler())
	t.Cleanup(ts1.Close)
	return srv1, srv2, ts1.URL
}

// foreignSpec hunts for a spec owned by shard 2 (i.e. one shard 1
// answers with a MisdirectError).
func foreignSpec(t *testing.T, srv1 *server.Server) sparkxd.JobSpec {
	t.Helper()
	for seed := uint64(1); seed < 200; seed++ {
		spec := tinySweepSpec()
		spec.Config.Seed = seed
		if _, _, err := srv1.Submit(spec); err != nil {
			var mis *server.MisdirectError
			if errors.As(err, &mis) {
				return spec
			}
			t.Fatal(err)
		}
	}
	t.Fatal("no seed under 200 hashes to shard 2")
	return sparkxd.JobSpec{}
}

// Submitting to the wrong federation member lands on the owner without
// the caller noticing, and status/event reads follow the same way.
func TestClientFollowsShardRedirect(t *testing.T) {
	srv1, srv2, base1 := newFederation(t)
	spec := foreignSpec(t, srv1)
	ctx := context.Background()

	c, err := client.New(base1)
	if err != nil {
		t.Fatal(err)
	}
	status, err := c.Submit(ctx, spec)
	if err != nil {
		t.Fatalf("Submit through the wrong shard: %v", err)
	}
	if status.State != sparkxd.JobQueued {
		t.Fatalf("state = %s, want queued", status.State)
	}
	// The job lives on shard 2 only.
	if _, ok := srv2.Job(status.ID); !ok {
		t.Error("job did not land on the owning shard")
	}
	if _, ok := srv1.Job(status.ID); ok {
		t.Error("job leaked onto the misdirected shard")
	}

	// Status polls against the wrong base follow too.
	got, err := c.Job(ctx, status.ID)
	if err != nil {
		t.Fatalf("Job through the wrong shard: %v", err)
	}
	if got.ID != status.ID || got.State != sparkxd.JobQueued {
		t.Errorf("Job = %+v", got)
	}

	// The SSE stream follows as well: the queued lifecycle event arrives
	// from the owner. fn aborts the stream once it has seen it.
	errSeen := errors.New("seen")
	err = c.Events(ctx, status.ID, func(ev sparkxd.Event) error {
		if ev.Stage == "job" && ev.Phase == "queued" {
			return errSeen
		}
		return nil
	})
	if !errors.Is(err, errSeen) {
		t.Errorf("Events through the wrong shard = %v, want to see the queued event", err)
	}
}

// A server that answers 421 without a usable owner must not loop.
func TestClientMisdirectWithoutOwnerFails(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusMisdirectedRequest)
		w.Write([]byte(`{"error":"not mine"}`))
	}))
	defer ts.Close()
	c, err := client.New(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Job(context.Background(), "deadbeef"); err == nil {
		t.Fatal("ownerless 421: expected error")
	}
}

// Two shards misconfigured to point at each other exhaust the hop
// bound instead of redirecting forever.
func TestClientMisdirectLoopBounded(t *testing.T) {
	var hops int
	var urlA, urlB string
	mk := func(other *string) *httptest.Server {
		return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			hops++
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusMisdirectedRequest)
			w.Write([]byte(`{"error":"not mine","owner":"` + *other + `"}`))
		}))
	}
	tsA := mk(&urlB)
	defer tsA.Close()
	tsB := mk(&urlA)
	defer tsB.Close()
	urlA, urlB = tsA.URL, tsB.URL

	c, err := client.New(urlA)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Job(context.Background(), "deadbeef"); err == nil {
		t.Fatal("redirect loop: expected error")
	}
	if hops > 10 {
		t.Errorf("client made %d hops before giving up — bound not applied", hops)
	}
}

// WithTimeout bounds one round trip without touching the caller's
// context.
func TestWithTimeoutBoundsRequests(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-release:
		case <-r.Context().Done():
		}
	}))
	defer ts.Close()
	c, err := client.New(ts.URL, client.WithTimeout(50*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, err = c.Job(context.Background(), "deadbeef")
	if err == nil {
		t.Fatal("hung server: expected timeout error")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("request took %s despite a 50ms WithTimeout", elapsed)
	}
}

// WithHTTPClient is shared verbatim, so transport-level concerns
// (here: a counting RoundTripper) apply to every request.
func TestWithHTTPClientSharesTransport(t *testing.T) {
	srv, err := server.New(server.Config{Dispatch: server.DispatchFleet})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	var count int
	hc := &http.Client{Transport: roundTripFunc(func(r *http.Request) (*http.Response, error) {
		count++
		return http.DefaultTransport.RoundTrip(r)
	})}
	c, err := client.New(ts.URL, client.WithHTTPClient(hc))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Jobs(context.Background()); err != nil {
		t.Fatal(err)
	}
	if count == 0 {
		t.Error("request bypassed the injected HTTP client")
	}
}

type roundTripFunc func(*http.Request) (*http.Response, error)

func (f roundTripFunc) RoundTrip(r *http.Request) (*http.Response, error) { return f(r) }
