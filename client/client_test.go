// End-to-end tests of the Go client against an in-process job service:
// Submit -> Wait -> typed artifact fetch, idempotent resubmission, event
// streaming, and byte-for-byte equality with a direct in-process
// Pipeline run of the same spec.
package client_test

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync/atomic"
	"testing"
	"time"

	"sparkxd"
	"sparkxd/client"
	"sparkxd/internal/server"
)

// tinySweepSpec is a laptop-fast 2-scenario sweep job.
func tinySweepSpec() sparkxd.JobSpec {
	return sparkxd.JobSpec{
		Kind: sparkxd.JobSweep,
		Config: sparkxd.ConfigSpec{
			Neurons:      40,
			TrainSamples: 50,
			TestSamples:  25,
			BaseEpochs:   1,
			BERSchedule:  []float64{1e-5, 1e-3},
		},
		Sweep: &sparkxd.SweepSpec{
			Voltages:    []float64{1.1},
			BERs:        []float64{1e-5, 1e-4},
			ErrorModels: []sparkxd.ErrorModel{sparkxd.ErrorModelUniform},
			Policies:    []sparkxd.Policy{sparkxd.PolicySparkXD},
		},
	}
}

func newClient(t *testing.T) *client.Client {
	t.Helper()
	srv, err := server.New(server.Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	c, err := client.New(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// The acceptance check of the job service: a sweep submitted through the
// client produces an artifact byte-identical to the in-process
// Pipeline.Sweep of the same spec, and resubmitting returns the same
// deterministic job ID.
func TestSubmitWaitFetchMatchesInProcessRun(t *testing.T) {
	if testing.Short() {
		t.Skip("training skipped in -short mode")
	}
	ctx := context.Background()
	c := newClient(t)
	spec := tinySweepSpec()

	status, err := c.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	wantID, err := spec.ID()
	if err != nil {
		t.Fatal(err)
	}
	if status.ID != wantID {
		t.Errorf("server assigned ID %s, spec hashes to %s", status.ID, wantID)
	}

	// Idempotent resubmission: same ID, no second job.
	again, err := c.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if again.ID != status.ID {
		t.Errorf("resubmission returned ID %s, want %s", again.ID, status.ID)
	}

	final, err := c.Wait(ctx, status.ID)
	if err != nil {
		t.Fatalf("Wait: %v (status %+v)", err, final)
	}
	key, ok := final.Artifacts["sweep"]
	if !ok {
		t.Fatalf("no sweep artifact (have %v)", final.Artifacts)
	}
	served, err := c.SweepReport(ctx, key)
	if err != nil {
		t.Fatal(err)
	}

	// Direct in-process run of the identical spec.
	opts, err := spec.Config.Options()
	if err != nil {
		t.Fatal(err)
	}
	sys, err := sparkxd.New(opts...)
	if err != nil {
		t.Fatal(err)
	}
	p := sys.Pipeline()
	if _, err := p.Train(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := p.ImproveTolerance(ctx); err != nil {
		t.Fatal(err)
	}
	direct, err := p.Sweep(ctx, *spec.Sweep)
	if err != nil {
		t.Fatal(err)
	}

	servedJSON, err := json.Marshal(served)
	if err != nil {
		t.Fatal(err)
	}
	directJSON, err := json.Marshal(direct)
	if err != nil {
		t.Fatal(err)
	}
	if string(servedJSON) != string(directJSON) {
		t.Errorf("served sweep diverges from the in-process run:\n%s\n---\n%s", servedJSON, directJSON)
	}

	// And the key is the content address of exactly those bytes.
	wantKey, err := sparkxd.PutArtifact(sparkxd.MemoryStore(), direct)
	if err != nil {
		t.Fatal(err)
	}
	if key != wantKey {
		t.Errorf("artifact key %s != content address of the direct run %s", key, wantKey)
	}
}

// Events streams the job's progress: lifecycle events arrive in order
// and the stream terminates once the job is done.
func TestEvents(t *testing.T) {
	if testing.Short() {
		t.Skip("training skipped in -short mode")
	}
	ctx := context.Background()
	c := newClient(t)
	spec := sparkxd.JobSpec{
		Kind:  sparkxd.JobPipeline,
		Stage: "train",
		Config: sparkxd.ConfigSpec{
			Neurons: 40, TrainSamples: 50, TestSamples: 25, BaseEpochs: 1,
			BERSchedule: []float64{1e-5, 1e-3},
		},
	}
	status, err := c.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	var phases []string
	err = c.Events(ctx, status.ID, func(ev sparkxd.Event) error {
		if ev.Stage == "job" {
			phases = append(phases, ev.Phase)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Events: %v", err)
	}
	if len(phases) == 0 || phases[0] != "queued" || phases[len(phases)-1] != "done" {
		t.Errorf("job lifecycle phases = %v, want queued..done", phases)
	}
}

// Events survives a dropped connection: the client reconnects once
// with Last-Event-ID and the consumer sees every event exactly once,
// in order — no loss, no duplicates.
func TestEventsResumeAfterDrop(t *testing.T) {
	all := []sparkxd.Event{
		{Stage: "job", Phase: "queued"},
		{Stage: "train", Phase: "start"},
		{Stage: "train", Phase: "progress", Epoch: 1, Epochs: 2},
		{Stage: "train", Phase: "done"},
		{Stage: "job", Phase: "done"},
	}
	var requests atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		requests.Add(1)
		start := 0
		if h := r.Header.Get("Last-Event-ID"); h != "" {
			n, err := strconv.Atoi(h)
			if err != nil {
				t.Errorf("bad Last-Event-ID %q", h)
			}
			start = n + 1
		}
		w.Header().Set("Content-Type", "text/event-stream")
		w.WriteHeader(http.StatusOK)
		for i := start; i < len(all); i++ {
			b, _ := json.Marshal(all[i])
			fmt.Fprintf(w, "id: %d\ndata: %s\n\n", i, b)
			w.(http.Flusher).Flush()
			// First connection dies mid-stream after two events.
			if requests.Load() == 1 && i == 1 {
				panic(http.ErrAbortHandler)
			}
		}
	}))
	defer ts.Close()

	c, err := client.New(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	var got []sparkxd.Event
	if err := c.Events(context.Background(), "whatever", func(ev sparkxd.Event) error {
		got = append(got, ev)
		return nil
	}); err != nil {
		t.Fatalf("Events: %v", err)
	}
	if requests.Load() != 2 {
		t.Errorf("reconnects = %d requests, want 2", requests.Load())
	}
	if len(got) != len(all) {
		t.Fatalf("got %d events, want %d (loss or duplication across reconnect): %+v", len(got), len(all), got)
	}
	for i := range all {
		if got[i] != all[i] {
			t.Errorf("event %d = %+v, want %+v", i, got[i], all[i])
		}
	}
}

// A stream that ends cleanly WITHOUT the job's terminal lifecycle
// event (e.g. the server shut down while the job was queued) must not
// read as completion: the client retries, and if the job genuinely
// never terminates, Events surfaces an error instead of returning nil.
func TestEventsCleanEOFBeforeTerminalIsNotDone(t *testing.T) {
	queued := sparkxd.Event{Stage: "job", Phase: "queued"}
	var requests atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		requests.Add(1)
		w.Header().Set("Content-Type", "text/event-stream")
		w.WriteHeader(http.StatusOK)
		if r.Header.Get("Last-Event-ID") == "" {
			b, _ := json.Marshal(queued)
			fmt.Fprintf(w, "id: 0\ndata: %s\n\n", b)
		}
		// ...and end the stream with the job still non-terminal.
	}))
	defer ts.Close()

	c, err := client.New(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	var got int
	err = c.Events(context.Background(), "job", func(sparkxd.Event) error { got++; return nil })
	if err == nil {
		t.Fatal("Events returned nil for a stream that never reached a terminal state")
	}
	if got != 1 {
		t.Errorf("delivered %d events, want 1 (no duplicates across the retry)", got)
	}
	if requests.Load() != 2 {
		t.Errorf("requests = %d, want 2 (one retry)", requests.Load())
	}
}

func TestWaitOnFailedJob(t *testing.T) {
	if testing.Short() {
		t.Skip("training skipped in -short mode")
	}
	ctx := context.Background()
	c := newClient(t)
	// An out-of-range BER axis passes spec normalization (which only
	// canonicalizes names) but fails sweep validation at execution time.
	spec := tinySweepSpec()
	spec.Sweep.BERs = []float64{0.75}
	status, err := c.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	final, err := c.Wait(ctx, status.ID)
	if !errors.Is(err, client.ErrJobFailed) {
		t.Fatalf("want ErrJobFailed, got %v", err)
	}
	if final == nil || final.State != sparkxd.JobFailed || final.Error == "" {
		t.Errorf("failed status not surfaced: %+v", final)
	}
}

func TestNotFound(t *testing.T) {
	ctx := context.Background()
	c := newClient(t)
	if _, err := c.Job(ctx, "deadbeef"); !errors.Is(err, client.ErrNotFound) {
		t.Errorf("unknown job: want ErrNotFound, got %v", err)
	}
	missing := sparkxd.ArtifactKey(sparkxd.KindSweepReport + "/0123456789abcdef0123456789abcdef0123456789abcdef0123456789abcdef")
	if _, err := c.SweepReport(ctx, missing); !errors.Is(err, client.ErrNotFound) {
		t.Errorf("unknown artifact: want ErrNotFound, got %v", err)
	}
}

func TestInvalidSpecRejected(t *testing.T) {
	ctx := context.Background()
	c := newClient(t)
	if _, err := c.Submit(ctx, sparkxd.JobSpec{Kind: "compile"}); err == nil {
		t.Error("invalid spec must be rejected")
	}
}

// A throttled submission (429 + Retry-After) is retried transparently:
// the client sleeps at least the advertised delay, reports each throttle
// through the hook, tags requests with the submitter header, and the
// call ultimately succeeds without the caller seeing the 429s.
func TestSubmitRetriesAfter429(t *testing.T) {
	var requests atomic.Int32
	status := sparkxd.JobStatus{ID: "job-1", State: sparkxd.JobQueued}
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if got := r.Header.Get("X-Sparkxd-Submitter"); got != "loadgen-7" {
			t.Errorf("submitter header = %q, want loadgen-7", got)
		}
		switch requests.Add(1) {
		case 1:
			w.Header().Set("Retry-After", "1")
			http.Error(w, `{"error":"throttled"}`, http.StatusTooManyRequests)
		case 2:
			// No Retry-After: the client falls back to its own backoff.
			http.Error(w, `{"error":"throttled"}`, http.StatusTooManyRequests)
		default:
			w.WriteHeader(http.StatusAccepted)
			json.NewEncoder(w).Encode(status)
		}
	}))
	t.Cleanup(ts.Close)

	var throttles []time.Duration
	c, err := client.New(ts.URL,
		client.WithSubmitter("loadgen-7"),
		client.WithThrottleHook(func(d time.Duration) { throttles = append(throttles, d) }))
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	got, err := c.Submit(context.Background(), tinySweepSpec())
	if err != nil {
		t.Fatalf("Submit after 429s: %v", err)
	}
	if got.ID != status.ID {
		t.Errorf("status ID = %q, want %q", got.ID, status.ID)
	}
	if n := requests.Load(); n != 3 {
		t.Errorf("server saw %d requests, want 3", n)
	}
	if len(throttles) != 2 {
		t.Fatalf("throttle hook fired %d times, want 2", len(throttles))
	}
	if throttles[0] < time.Second {
		t.Errorf("first delay %s ignored Retry-After: 1", throttles[0])
	}
	if throttles[1] <= 0 {
		t.Errorf("second delay %s not positive", throttles[1])
	}
	if elapsed := time.Since(start); elapsed < time.Second {
		t.Errorf("Submit returned after %s, before the advertised Retry-After", elapsed)
	}
}

// A context cancelled mid-throttle aborts the retry loop promptly.
func TestThrottleRetryHonorsContext(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "30")
		http.Error(w, `{"error":"throttled"}`, http.StatusTooManyRequests)
	}))
	t.Cleanup(ts.Close)
	c, err := client.New(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	start := time.Now()
	if _, err := c.Submit(ctx, tinySweepSpec()); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded, got %v", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("cancelled submit did not return promptly")
	}
}
