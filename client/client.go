// Package client is the Go client of the sparkxd job service
// (`sparkxd serve`): submit pipeline-stage and sweep jobs, poll or
// stream their progress, and fetch content-addressed result artifacts
// with end-to-end integrity verification.
//
// Typical use:
//
//	c, _ := client.New("http://127.0.0.1:8080")
//	status, _ := c.Submit(ctx, sparkxd.JobSpec{
//		Kind:   sparkxd.JobSweep,
//		Config: sparkxd.ConfigSpec{Neurons: 400},
//		Sweep:  &sparkxd.SweepSpec{Voltages: []float64{1.1, 1.025}},
//	})
//	status, _ = c.Wait(ctx, status.ID)
//	report, _ := c.SweepReport(ctx, status.Artifacts["sweep"])
//
// Submission is idempotent: the job ID is derived from the normalized
// spec, so resubmitting identical work returns the already-running (or
// already-finished) job.
package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"time"

	"sparkxd"
	"sparkxd/internal/store"
	"sparkxd/internal/tracing"
)

// Typed client failures.
var (
	// ErrJobFailed is wrapped by Wait when the awaited job reaches
	// JobFailed; the job's Error message rides along.
	ErrJobFailed = errors.New("client: job failed")
	// ErrNotFound marks a 404 from the service (unknown job or artifact).
	ErrNotFound = errors.New("client: not found")
)

// Client talks to one sparkxd job server — or to a federation of them:
// a 421 Misdirected Request from a sharded coordinator carries the
// owning peer's address, and the client transparently re-issues the
// request there, so callers address any federation member and reach the
// right shard.
type Client struct {
	base       string
	hc         *http.Client
	timeout    time.Duration
	poll       time.Duration
	submitter  string
	onThrottle func(delay time.Duration)
}

// Option configures a Client.
type Option func(*Client)

// WithHTTPClient replaces the underlying *http.Client, so the job
// client can share transport configuration (connection pools, TLS)
// with other clients of the same service — e.g. a remote store client
// (store.NewHTTP) talking to the same coordinator. Do not set the
// http.Client's own Timeout field: it would sever long-lived SSE event
// streams; use WithTimeout for per-request bounds instead.
func WithHTTPClient(hc *http.Client) Option {
	return func(c *Client) {
		if hc != nil {
			c.hc = hc
		}
	}
}

// WithTimeout bounds each non-streaming request/response round trip
// (submit, status, artifact fetch). Zero — the default — leaves
// requests bounded only by their context. Event streams are exempt: an
// SSE connection legitimately stays open for a job's whole lifetime.
func WithTimeout(d time.Duration) Option {
	return func(c *Client) {
		if d > 0 {
			c.timeout = d
		}
	}
}

// WithPollInterval sets Wait's initial poll interval (backoff grows
// from here; see Wait).
func WithPollInterval(d time.Duration) Option {
	return func(c *Client) { c.poll = d }
}

// WithSubmitter names this client for the server's per-submitter
// admission control (the X-Sparkxd-Submitter header). Unnamed clients
// are bucketed by remote IP.
func WithSubmitter(name string) Option {
	return func(c *Client) { c.submitter = name }
}

// WithThrottleHook registers fn to be called with the chosen backoff
// delay every time the server answers 429 (before the client sleeps
// and retries). Load generators use it to count throttles.
func WithThrottleHook(fn func(delay time.Duration)) Option {
	return func(c *Client) { c.onThrottle = fn }
}

// waitPlan is Wait's backoff schedule: polls start at initial and grow
// by factor up to max, each sleep jittered by ±jitter so a fleet of
// waiting clients never phase-locks onto the server.
type waitPlan struct {
	initial time.Duration
	max     time.Duration
	factor  float64
	jitter  float64
}

// next returns the delay after one that slept d.
func (p waitPlan) next(d time.Duration) time.Duration {
	d = time.Duration(float64(d) * p.factor)
	if d > p.max {
		d = p.max
	}
	if d < p.initial {
		d = p.initial
	}
	return d
}

// jittered spreads one delay across [d·(1-jitter), d·(1+jitter)].
func (p waitPlan) jittered(d time.Duration) time.Duration {
	if p.jitter <= 0 {
		return d
	}
	spread := 1 + p.jitter*(2*rand.Float64()-1)
	return time.Duration(float64(d) * spread)
}

// WaitOption tunes one Wait call's poll schedule.
type WaitOption func(*waitPlan)

// WaitPollInterval sets the first poll interval (default: the client's
// WithPollInterval, 100ms out of the box).
func WaitPollInterval(d time.Duration) WaitOption {
	return func(p *waitPlan) {
		if d > 0 {
			p.initial = d
		}
	}
}

// WaitMaxInterval caps the backed-off poll interval (default 2s).
func WaitMaxInterval(d time.Duration) WaitOption {
	return func(p *waitPlan) {
		if d > 0 {
			p.max = d
		}
	}
}

// WaitBackoff sets the multiplicative growth factor between polls
// (default 1.6; 1 disables backoff).
func WaitBackoff(factor float64) WaitOption {
	return func(p *waitPlan) {
		if factor >= 1 {
			p.factor = factor
		}
	}
}

// WaitJitter sets the ± fraction each sleep is randomized by (default
// 0.2; 0 disables jitter).
func WaitJitter(frac float64) WaitOption {
	return func(p *waitPlan) {
		if frac >= 0 && frac < 1 {
			p.jitter = frac
		}
	}
}

// New builds a client for the server at baseURL (e.g.
// "http://127.0.0.1:8080").
func New(baseURL string, opts ...Option) (*Client, error) {
	base := strings.TrimRight(baseURL, "/")
	if base == "" {
		return nil, errors.New("client: empty base URL")
	}
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	// A fresh client rather than http.DefaultClient, so per-process
	// transport tuning via WithHTTPClient never mutates shared globals.
	c := &Client{base: base, hc: &http.Client{}, poll: 100 * time.Millisecond}
	for _, opt := range opts {
		opt(c)
	}
	return c, nil
}

// Submit registers a job and returns its status. Submitting the same
// spec again returns the existing job's status (same deterministic ID).
//
// Every submission carries a W3C traceparent header, so the server-side
// job trace is rooted under this client's span: a span context placed
// in ctx (tracing.ContextWith) is propagated as-is, and without one a
// fresh trace is started per submission. The header rides out-of-band —
// never inside the spec — so the job ID is byte-identical with tracing
// on or off, and it is re-stamped on every 421 shard redirect and 429
// retry, so the trace follows the submission to the owning federation
// peer. The returned status's TraceID names the resulting trace.
func (c *Client) Submit(ctx context.Context, spec sparkxd.JobSpec) (*sparkxd.JobStatus, error) {
	body, err := json.Marshal(spec)
	if err != nil {
		return nil, fmt.Errorf("client: marshal spec: %w", err)
	}
	sc, ok := tracing.FromContext(ctx)
	if !ok {
		sc = tracing.NewContext()
	}
	hdr := make(http.Header)
	tracing.Inject(hdr, sc)
	var status sparkxd.JobStatus
	if err := c.do(ctx, http.MethodPost, "/v1/jobs", body, hdr, &status); err != nil {
		return nil, err
	}
	return &status, nil
}

// Job fetches the current status of a job.
func (c *Client) Job(ctx context.Context, id string) (*sparkxd.JobStatus, error) {
	var status sparkxd.JobStatus
	if err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id, nil, nil, &status); err != nil {
		return nil, err
	}
	return &status, nil
}

// Jobs lists every job the server knows, sorted by ID.
func (c *Client) Jobs(ctx context.Context) ([]sparkxd.JobStatus, error) {
	var out []sparkxd.JobStatus
	if err := c.do(ctx, http.MethodGet, "/v1/jobs", nil, nil, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// Trace fetches the assembled distributed trace of a terminal job:
// coordinator spans (queue wait, admission, lease lifecycle) and worker
// spans (execution envelope, warm builds, pipeline stages, artifact
// upload) in one sorted set. Traces assemble when the job reaches a
// terminal state; before that the server answers 404 (ErrNotFound).
func (c *Client) Trace(ctx context.Context, id string) (*sparkxd.JobTrace, error) {
	var tr sparkxd.JobTrace
	if err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id+"/trace", nil, nil, &tr); err != nil {
		return nil, err
	}
	return &tr, nil
}

// Wait polls until the job reaches a terminal state. A JobDone status is
// returned with a nil error; a JobFailed status is returned together
// with an error satisfying errors.Is(err, ErrJobFailed).
//
// Polling backs off exponentially with jitter (100ms → 2s by default),
// so a fleet of clients waiting on slow jobs doesn't hammer
// GET /v1/jobs/{id}; tune with WaitPollInterval, WaitMaxInterval,
// WaitBackoff, and WaitJitter.
func (c *Client) Wait(ctx context.Context, id string, opts ...WaitOption) (*sparkxd.JobStatus, error) {
	plan := waitPlan{initial: c.poll, max: 2 * time.Second, factor: 1.6, jitter: 0.2}
	if plan.initial <= 0 {
		plan.initial = 100 * time.Millisecond
	}
	for _, opt := range opts {
		opt(&plan)
	}
	if plan.max < plan.initial {
		plan.max = plan.initial
	}
	delay := plan.initial
	timer := time.NewTimer(0)
	if !timer.Stop() {
		<-timer.C
	}
	defer timer.Stop()
	for {
		status, err := c.Job(ctx, id)
		if err != nil {
			return nil, err
		}
		if status.State.Terminal() {
			if status.State == sparkxd.JobFailed {
				return status, fmt.Errorf("%w: %s: %s", ErrJobFailed, id, status.Error)
			}
			return status, nil
		}
		timer.Reset(plan.jittered(delay))
		select {
		case <-ctx.Done():
			if !timer.Stop() {
				<-timer.C
			}
			return status, ctx.Err()
		case <-timer.C:
		}
		delay = plan.next(delay)
	}
}

// Events consumes the job's server-sent event stream, invoking fn for
// every event until the stream ends (the job reached a terminal state),
// fn returns an error, or the context is cancelled.
//
// The server tags every event with its absolute index (`id:`); if the
// connection drops mid-stream, Events reconnects once per made progress
// with a Last-Event-ID header, so consumers neither lose nor duplicate
// stage events across the reconnect (e.g. while a job is handed from a
// dead worker to its replacement).
func (c *Client) Events(ctx context.Context, id string, fn func(sparkxd.Event) error) error {
	lastID := -1
	retried := false
	for {
		progressed, err := c.streamEvents(ctx, id, &lastID, fn)
		if err == nil || ctx.Err() != nil {
			return err
		}
		var netErr *streamDropped
		if !errors.As(err, &netErr) {
			return err // HTTP error, decode error, or fn's own error
		}
		// Reconnect once; fresh progress re-arms the retry so a long
		// stream survives multiple independent drops, while a dead
		// server fails after one attempt.
		if progressed {
			retried = false
		}
		if retried {
			return fmt.Errorf("client: event stream: %w", netErr.err)
		}
		retried = true
	}
}

// streamDropped wraps a mid-stream network failure (retryable).
type streamDropped struct{ err error }

func (e *streamDropped) Error() string { return e.err.Error() }
func (e *streamDropped) Unwrap() error { return e.err }

// streamEvents runs one SSE connection, resuming after *lastID and
// advancing it as events are delivered. It reports whether any event
// was delivered on this connection. Like do, it follows a sharded
// coordinator's 421 redirect to the owning peer before streaming; the
// stream itself is never bounded by WithTimeout.
func (c *Client) streamEvents(ctx context.Context, id string, lastID *int, fn func(sparkxd.Event) error) (progressed bool, err error) {
	base := c.base
	var resp *http.Response
	for hops := 0; ; {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/v1/jobs/"+id+"/events", nil)
		if err != nil {
			return false, fmt.Errorf("client: %w", err)
		}
		if *lastID >= 0 {
			req.Header.Set("Last-Event-ID", strconv.Itoa(*lastID))
		}
		resp, err = c.hc.Do(req)
		if err != nil {
			return false, &streamDropped{err}
		}
		if resp.StatusCode == http.StatusMisdirectedRequest {
			owner := misdirectOwner(resp)
			if owner != "" && hops < maxShardHops {
				hops++
				base = strings.TrimRight(owner, "/")
				continue
			}
			return false, fmt.Errorf("client: job %s routed to an unreachable shard (after %d hops)", id, hops)
		}
		break
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return false, c.errorFrom(resp)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	pendingID := -1
	sawTerminal := false
	for sc.Scan() {
		line := sc.Text()
		if idField, ok := strings.CutPrefix(line, "id: "); ok {
			if n, err := strconv.Atoi(idField); err == nil {
				pendingID = n
			}
			continue
		}
		data, ok := strings.CutPrefix(line, "data: ")
		if !ok {
			continue // blank separators, comments, other SSE fields
		}
		var ev sparkxd.Event
		if err := json.Unmarshal([]byte(data), &ev); err != nil {
			return progressed, fmt.Errorf("client: decode event: %w", err)
		}
		if pendingID >= 0 {
			*lastID = pendingID
			pendingID = -1
		} else {
			*lastID++
		}
		progressed = true
		if ev.Stage == "job" && (ev.Phase == "done" || ev.Phase == "failed") {
			sawTerminal = true
		}
		if err := fn(ev); err != nil {
			return progressed, err
		}
	}
	if err := sc.Err(); err != nil && ctx.Err() == nil {
		return progressed, &streamDropped{err}
	}
	if ctx.Err() != nil {
		return progressed, ctx.Err()
	}
	if !sawTerminal {
		// The server only ends a stream cleanly once the job is terminal;
		// a clean EOF without the terminal lifecycle event means the
		// server went away (e.g. shutdown) — retryable, never "done".
		return progressed, &streamDropped{errors.New("stream ended before the job reached a terminal state")}
	}
	return progressed, nil
}

// Artifact fetches the raw envelope of one artifact key and verifies its
// integrity: the payload must hash back to the key's content address.
func (c *Client) Artifact(ctx context.Context, key sparkxd.ArtifactKey) (*sparkxd.ArtifactEnvelope, error) {
	if err := key.Validate(); err != nil {
		return nil, fmt.Errorf("client: %w", err)
	}
	reqCtx, cancel := c.reqContext(ctx)
	defer cancel()
	req, err := http.NewRequestWithContext(reqCtx, http.MethodGet, c.base+"/v1/artifacts/"+string(key), nil)
	if err != nil {
		return nil, fmt.Errorf("client: %w", err)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, fmt.Errorf("client: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, c.errorFrom(resp)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("client: read artifact: %w", err)
	}
	env, err := store.DecodeEnvelope(key, bytes.TrimRight(b, "\n"))
	if err != nil {
		return nil, fmt.Errorf("client: %w", err)
	}
	return env, nil
}

// TrainedModel fetches and decodes a trained-model artifact.
func (c *Client) TrainedModel(ctx context.Context, key sparkxd.ArtifactKey) (*sparkxd.TrainedModel, error) {
	return fetch[sparkxd.TrainedModel](ctx, c, key, sparkxd.KindTrainedModel)
}

// ToleranceReport fetches and decodes a tolerance-report artifact.
func (c *Client) ToleranceReport(ctx context.Context, key sparkxd.ArtifactKey) (*sparkxd.ToleranceReport, error) {
	return fetch[sparkxd.ToleranceReport](ctx, c, key, sparkxd.KindToleranceReport)
}

// Placement fetches and decodes a placement artifact.
func (c *Client) Placement(ctx context.Context, key sparkxd.ArtifactKey) (*sparkxd.Placement, error) {
	return fetch[sparkxd.Placement](ctx, c, key, sparkxd.KindPlacement)
}

// Evaluation fetches and decodes an evaluation artifact.
func (c *Client) Evaluation(ctx context.Context, key sparkxd.ArtifactKey) (*sparkxd.Evaluation, error) {
	return fetch[sparkxd.Evaluation](ctx, c, key, sparkxd.KindEvaluation)
}

// EnergyReport fetches and decodes an energy-report artifact.
func (c *Client) EnergyReport(ctx context.Context, key sparkxd.ArtifactKey) (*sparkxd.EnergyReport, error) {
	return fetch[sparkxd.EnergyReport](ctx, c, key, sparkxd.KindEnergyReport)
}

// SweepReport fetches and decodes a sweep-report artifact.
func (c *Client) SweepReport(ctx context.Context, key sparkxd.ArtifactKey) (*sparkxd.SweepReport, error) {
	return fetch[sparkxd.SweepReport](ctx, c, key, sparkxd.KindSweepReport)
}

// fetch is the typed artifact getter behind the per-kind methods.
func fetch[T any](ctx context.Context, c *Client, key sparkxd.ArtifactKey, wantKind string) (*T, error) {
	env, err := c.Artifact(ctx, key)
	if err != nil {
		return nil, err
	}
	var v T
	if err := env.Decode(wantKind, &v); err != nil {
		return nil, fmt.Errorf("client: %w", err)
	}
	return &v, nil
}

// maxShardHops bounds how many 421 redirects one call follows: a sane
// federation resolves in one hop, and the bound keeps a misconfigured
// peer list (two shards pointing at each other) from looping forever.
const maxShardHops = 4

// do performs one JSON request/response round trip. A 429 answer is
// retried (not surfaced): the request is replayed after the larger of
// the server's Retry-After and the jittered exponential backoff, until
// the context is cancelled. Every request in this API is idempotent —
// submission by deterministic job ID, the rest read-only — so replaying
// is always safe. A 421 Misdirected Request is followed to the owning
// federation peer named in its body (bounded by maxShardHops). hdr, when
// non-nil, is copied onto every issued request — including 421/429
// replays, so headers like traceparent survive shard redirects.
func (c *Client) do(ctx context.Context, method, path string, body []byte, hdr http.Header, out any) error {
	plan := waitPlan{initial: 100 * time.Millisecond, max: 5 * time.Second, factor: 1.6, jitter: 0.2}
	backoff := plan.initial
	base := c.base
	hops := 0
	for {
		var rd io.Reader
		if body != nil {
			rd = bytes.NewReader(body)
		}
		reqCtx, cancel := c.reqContext(ctx)
		req, err := http.NewRequestWithContext(reqCtx, method, base+path, rd)
		if err != nil {
			cancel()
			return fmt.Errorf("client: %w", err)
		}
		if body != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		if c.submitter != "" {
			req.Header.Set("X-Sparkxd-Submitter", c.submitter)
		}
		for k, vs := range hdr {
			for _, v := range vs {
				req.Header.Set(k, v)
			}
		}
		resp, err := c.hc.Do(req)
		if err != nil {
			cancel()
			return fmt.Errorf("client: %w", err)
		}
		if resp.StatusCode == http.StatusMisdirectedRequest {
			owner := misdirectOwner(resp)
			cancel()
			if owner != "" && hops < maxShardHops {
				hops++
				base = strings.TrimRight(owner, "/")
				continue
			}
			return fmt.Errorf("client: job routed to an unreachable shard (after %d hops)", hops)
		}
		if resp.StatusCode == http.StatusTooManyRequests {
			retryAfter := parseRetryAfter(resp.Header.Get("Retry-After"))
			io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16))
			resp.Body.Close()
			cancel()
			delay := plan.jittered(backoff)
			if retryAfter > delay {
				delay = retryAfter
			}
			backoff = plan.next(backoff)
			if c.onThrottle != nil {
				c.onThrottle(delay)
			}
			timer := time.NewTimer(delay)
			select {
			case <-ctx.Done():
				timer.Stop()
				return fmt.Errorf("client: throttled by server: %w", ctx.Err())
			case <-timer.C:
			}
			continue
		}
		defer cancel()
		defer resp.Body.Close()
		if resp.StatusCode/100 != 2 {
			return c.errorFrom(resp)
		}
		if out == nil {
			return nil
		}
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return fmt.Errorf("client: decode response: %w", err)
		}
		return nil
	}
}

// reqContext bounds one non-streaming round trip by the client's
// WithTimeout; with no timeout configured the caller's context is used
// as-is (the returned cancel is then a no-op).
func (c *Client) reqContext(ctx context.Context) (context.Context, context.CancelFunc) {
	if c.timeout > 0 {
		return context.WithTimeout(ctx, c.timeout)
	}
	return ctx, func() {}
}

// misdirectOwner extracts the owning peer's address from a 421 body
// ({"error":..., "owner":...}) and closes it; "" when absent.
func misdirectOwner(resp *http.Response) string {
	defer resp.Body.Close()
	var ae struct {
		Owner string `json:"owner"`
	}
	b, err := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	if err != nil || json.Unmarshal(b, &ae) != nil {
		return ""
	}
	return strings.TrimSpace(ae.Owner)
}

// parseRetryAfter reads a Retry-After header's delay-seconds form (the
// only form the sparkxd server emits); 0 when absent or unparsable.
func parseRetryAfter(v string) time.Duration {
	if v == "" {
		return 0
	}
	secs, err := strconv.Atoi(strings.TrimSpace(v))
	if err != nil || secs < 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}

// errorFrom turns a non-2xx response into a typed error.
func (c *Client) errorFrom(resp *http.Response) error {
	var ae struct {
		Error string `json:"error"`
	}
	msg := resp.Status
	if b, err := io.ReadAll(io.LimitReader(resp.Body, 1<<16)); err == nil {
		if json.Unmarshal(b, &ae) == nil && ae.Error != "" {
			msg = ae.Error
		}
	}
	if resp.StatusCode == http.StatusNotFound {
		return fmt.Errorf("%w: %s", ErrNotFound, msg)
	}
	return fmt.Errorf("client: server returned %d: %s", resp.StatusCode, msg)
}
