package sparkxd

import (
	"encoding/json"
	"errors"
	"fmt"
	"strings"

	"sparkxd/internal/dataset"
	"sparkxd/internal/errmodel"
	"sparkxd/internal/quant"
	"sparkxd/internal/voltscale"
)

// Dataset selects the synthetic dataset flavour the pipeline trains and
// evaluates on.
type Dataset int

const (
	// MNIST generates well-separated stroke digits (the paper's primary
	// benchmark).
	MNIST Dataset = iota
	// Fashion generates overlapping textured garment-like patches (the
	// harder benchmark).
	Fashion
)

// String names the dataset.
func (d Dataset) String() string {
	if d == Fashion {
		return "fashion"
	}
	return "mnist"
}

func (d Dataset) flavor() (dataset.Flavor, error) {
	switch d {
	case MNIST:
		return dataset.MNISTLike, nil
	case Fashion:
		return dataset.FashionLike, nil
	default:
		return 0, fmt.Errorf("unknown dataset %d", int(d))
	}
}

// datasetName maps an internal flavour back to its public name.
func datasetName(fl dataset.Flavor) string {
	if fl == dataset.FashionLike {
		return Fashion.String()
	}
	return MNIST.String()
}

// DatasetNames enumerates the dataset names ParseDataset accepts.
func DatasetNames() []string { return []string{"mnist", "fashion"} }

// ParseDataset maps a CLI-style name ("mnist", "fashion") to a Dataset.
// Matching is case-insensitive ("MNIST" and "Fashion" parse too).
func ParseDataset(name string) (Dataset, error) {
	switch canonName(name) {
	case "mnist":
		return MNIST, nil
	case "fashion":
		return Fashion, nil
	default:
		return 0, fmt.Errorf("sparkxd: unknown dataset %q (valid: %s)", name, strings.Join(DatasetNames(), ", "))
	}
}

// canonName lowercases and trims a user-supplied enum name.
func canonName(name string) string {
	return strings.ToLower(strings.TrimSpace(name))
}

// ErrorModel selects the EDEN-style approximate-DRAM error model.
type ErrorModel int

const (
	// ErrorModelUniform distributes bit errors uniformly over a bank
	// (EDEN model 0, the paper's default).
	ErrorModelUniform ErrorModel = iota
	// ErrorModelBitline clusters errors on weak bitlines (model 1).
	ErrorModelBitline
	// ErrorModelWordline clusters errors on weak wordlines (model 2).
	ErrorModelWordline
	// ErrorModelDataDependent makes failure probability depend on the
	// stored bit (model 3).
	ErrorModelDataDependent
)

// String names the error model ("uniform", "bitline", "wordline",
// "data-dependent").
func (m ErrorModel) String() string {
	switch m {
	case ErrorModelUniform:
		return "uniform"
	case ErrorModelBitline:
		return "bitline"
	case ErrorModelWordline:
		return "wordline"
	case ErrorModelDataDependent:
		return "data-dependent"
	default:
		return fmt.Sprintf("ErrorModel(%d)", int(m))
	}
}

// ErrorModelNames enumerates the error-model names ParseErrorModel
// accepts (the "data" shorthand for "data-dependent" excluded).
func ErrorModelNames() []string {
	return []string{"uniform", "bitline", "wordline", "data-dependent"}
}

// ParseErrorModel maps a CLI-style name ("uniform", "bitline",
// "wordline", "data-dependent") to an ErrorModel. Matching is
// case-insensitive.
func ParseErrorModel(name string) (ErrorModel, error) {
	switch canonName(name) {
	case "uniform":
		return ErrorModelUniform, nil
	case "bitline":
		return ErrorModelBitline, nil
	case "wordline":
		return ErrorModelWordline, nil
	case "data-dependent", "data":
		return ErrorModelDataDependent, nil
	default:
		return 0, fmt.Errorf("sparkxd: unknown error model %q (valid: %s)", name, strings.Join(ErrorModelNames(), ", "))
	}
}

// MarshalJSON encodes the error model by name, so job specs and other
// JSON surfaces read "uniform" instead of an opaque integer.
func (m ErrorModel) MarshalJSON() ([]byte, error) {
	if _, err := m.kind(); err != nil {
		return nil, fmt.Errorf("sparkxd: %w", err)
	}
	return json.Marshal(m.String())
}

// UnmarshalJSON decodes an error model from its name (case-insensitive).
func (m *ErrorModel) UnmarshalJSON(b []byte) error {
	var name string
	if err := json.Unmarshal(b, &name); err != nil {
		return fmt.Errorf("sparkxd: error model: %w", err)
	}
	parsed, err := ParseErrorModel(name)
	if err != nil {
		return err
	}
	*m = parsed
	return nil
}

func (m ErrorModel) kind() (errmodel.Kind, error) {
	switch m {
	case ErrorModelUniform:
		return errmodel.Model0, nil
	case ErrorModelBitline:
		return errmodel.Model1, nil
	case ErrorModelWordline:
		return errmodel.Model2, nil
	case ErrorModelDataDependent:
		return errmodel.Model3, nil
	default:
		return 0, fmt.Errorf("unknown error model %d", int(m))
	}
}

// PolicyNames enumerates the mapping-policy names ParsePolicy accepts.
func PolicyNames() []string {
	return []string{string(PolicyBaseline), string(PolicySparkXD)}
}

// ParsePolicy maps a CLI-style name ("baseline", "sparkxd") to a mapping
// Policy. Matching is case-insensitive.
func ParsePolicy(name string) (Policy, error) {
	switch canonName(name) {
	case string(PolicyBaseline):
		return PolicyBaseline, nil
	case string(PolicySparkXD):
		return PolicySparkXD, nil
	default:
		return "", fmt.Errorf("sparkxd: unknown policy %q (valid: %s)", name, strings.Join(PolicyNames(), ", "))
	}
}

// Quantization selects the stored weight representation.
type Quantization int

const (
	// FP32 is IEEE-754 binary32 (the paper's format).
	FP32 Quantization = iota
	// FP16 is IEEE-754 binary16.
	FP16
	// Q88 is signed 8.8 fixed point.
	Q88
)

// String names the quantization ("fp32", "fp16", "q8.8").
func (q Quantization) String() string {
	switch q {
	case FP32:
		return "fp32"
	case FP16:
		return "fp16"
	case Q88:
		return "q8.8"
	default:
		return fmt.Sprintf("Quantization(%d)", int(q))
	}
}

// QuantizationNames enumerates the names ParseQuantization accepts.
func QuantizationNames() []string { return []string{"fp32", "fp16", "q8.8"} }

// ParseQuantization maps a CLI-style name ("fp32", "fp16", "q8.8") to a
// Quantization. Matching is case-insensitive.
func ParseQuantization(name string) (Quantization, error) {
	switch canonName(name) {
	case "fp32":
		return FP32, nil
	case "fp16":
		return FP16, nil
	case "q8.8", "q88":
		return Q88, nil
	default:
		return 0, fmt.Errorf("sparkxd: unknown quantization %q (valid: %s)", name, strings.Join(QuantizationNames(), ", "))
	}
}

func (q Quantization) format() (quant.Format, error) {
	switch q {
	case FP32:
		return quant.FP32, nil
	case FP16:
		return quant.FP16, nil
	case Q88:
		return quant.Q88, nil
	default:
		return 0, fmt.Errorf("unknown quantization %d", int(q))
	}
}

// config is the resolved configuration a System is built from.
type config struct {
	neurons    int
	flavor     dataset.Flavor
	trainN     int
	testN      int
	baseEpochs int

	voltage       float64
	rates         []float64
	epochsPerRate int
	accBound      float64

	seed      uint64 // network + dataset seed
	trainSeed uint64 // Algorithm 1 schedule seed

	errKind    errmodel.Kind
	spread     float64
	deviceSeed uint64
	format     quant.Format

	sweepWorkers int

	dataDir string

	observer Observer
}

// defaultConfig mirrors the paper's setup at laptop-fast budgets: the
// LPDDR3-1600 4Gb device, EDEN model 0, FP32 weights, the 1e-9..1e-3
// progressive BER schedule, and the most aggressive 1.025 V operating
// point.
func defaultConfig() config {
	return config{
		neurons:       400,
		flavor:        dataset.MNISTLike,
		trainN:        300,
		testN:         128,
		baseEpochs:    2,
		voltage:       voltscale.V1025,
		rates:         []float64{1e-9, 1e-8, 1e-7, 1e-6, 1e-5, 1e-4, 1e-3},
		epochsPerRate: 1,
		accBound:      0.01,
		seed:          1,
		trainSeed:     7,
		errKind:       errmodel.Model0,
		spread:        errmodel.DefaultSpread,
		deviceSeed:    0xD0C5EED,
		format:        quant.FP32,
	}
}

func (c *config) validate() error {
	switch {
	case c.neurons <= 0:
		return errors.New("neuron count must be positive")
	case c.trainN <= 0 || c.testN <= 0:
		return errors.New("sample budgets must be positive")
	case c.baseEpochs < 0:
		return errors.New("base epochs must be non-negative")
	case c.voltage <= 0:
		return errors.New("supply voltage must be positive")
	case len(c.rates) == 0:
		return errors.New("BER schedule must not be empty")
	case c.epochsPerRate <= 0:
		return errors.New("epochs per rate must be positive")
	case c.accBound < 0:
		return errors.New("accuracy bound must be non-negative")
	case c.spread < 0:
		return errors.New("BER spread must be non-negative")
	}
	for i := 1; i < len(c.rates); i++ {
		if c.rates[i] <= c.rates[i-1] {
			return errors.New("BER schedule must be strictly increasing")
		}
	}
	return nil
}

// Option configures a System under construction.
type Option func(*config) error

// WithNeurons sets the excitatory neuron count (the paper evaluates
// 400–3600).
func WithNeurons(n int) Option {
	return func(c *config) error { c.neurons = n; return nil }
}

// WithDataset selects the dataset flavour.
func WithDataset(d Dataset) Option {
	return func(c *config) error {
		fl, err := d.flavor()
		if err != nil {
			return err
		}
		c.flavor = fl
		return nil
	}
}

// WithSampleBudget sets the training and test sample counts.
func WithSampleBudget(train, test int) Option {
	return func(c *config) error { c.trainN, c.testN = train, test; return nil }
}

// WithBaseEpochs sets the number of error-free training epochs before
// fault-aware training starts.
func WithBaseEpochs(n int) Option {
	return func(c *config) error { c.baseEpochs = n; return nil }
}

// WithVoltage sets the approximate-DRAM supply voltage the improved
// model is mapped and evaluated at.
func WithVoltage(v float64) Option {
	return func(c *config) error { c.voltage = v; return nil }
}

// WithBERSchedule replaces Algorithm 1's increasing bit-error-rate
// schedule (also the tolerance-analysis sweep).
func WithBERSchedule(rates ...float64) Option {
	return func(c *config) error {
		c.rates = append([]float64(nil), rates...)
		return nil
	}
}

// WithEpochsPerRate sets Nepoch of Algorithm 1.
func WithEpochsPerRate(n int) Option {
	return func(c *config) error { c.epochsPerRate = n; return nil }
}

// WithAccuracyBound sets the tolerated accuracy drop versus the
// error-free baseline (the paper uses 1% = 0.01).
func WithAccuracyBound(b float64) Option {
	return func(c *config) error { c.accBound = b; return nil }
}

// WithSeed sets the seed driving network initialization and baseline
// training.
func WithSeed(seed uint64) Option {
	return func(c *config) error { c.seed = seed; return nil }
}

// WithTrainSeed sets the seed driving error injection and spike encoding
// during fault-aware training and tolerance analysis.
func WithTrainSeed(seed uint64) Option {
	return func(c *config) error { c.trainSeed = seed; return nil }
}

// WithDeviceSeed pins the weak-cell locations of the simulated device.
func WithDeviceSeed(seed uint64) Option {
	return func(c *config) error { c.deviceSeed = seed; return nil }
}

// WithErrorModel selects the EDEN error model.
func WithErrorModel(m ErrorModel) Option {
	return func(c *config) error {
		k, err := m.kind()
		if err != nil {
			return err
		}
		c.errKind = k
		return nil
	}
}

// WithBERSpread sets the per-subarray lognormal BER sigma of
// voltage-derived profiles (0 = uniform device).
func WithBERSpread(sigma float64) Option {
	return func(c *config) error { c.spread = sigma; return nil }
}

// WithQuantization selects the stored weight representation.
func WithQuantization(q Quantization) Option {
	return func(c *config) error {
		f, err := q.format()
		if err != nil {
			return err
		}
		c.format = f
		return nil
	}
}

// WithSweepWorkers sets the default worker-pool size Pipeline.Sweep
// fans scenarios out over when the SweepSpec leaves Workers unset
// (<= 0 means GOMAXPROCS). Sweep results are byte-identical for any
// worker count; this only tunes wall-clock time.
func WithSweepWorkers(n int) Option {
	return func(c *config) error { c.sweepWorkers = n; return nil }
}

// WithDataDir points the system at a directory of real MNIST-format IDX
// files (train-images-idx3-ubyte and friends, plain or gzipped, probed
// under dir/<dataset>/ then dir). When the files are present they
// replace the synthetic generator, truncated to the configured sample
// budgets; when absent the deterministic synthetic flavour is used as
// always. Unset falls back to the SPARKXD_DATA_DIR environment
// variable. The directory is an execution detail: it never enters job
// identities, so the same sweep spec hashes the same with or without it.
func WithDataDir(dir string) Option {
	return func(c *config) error { c.dataDir = dir; return nil }
}

// WithObserver subscribes a hook to the pipeline's structured progress
// events. Observers are called synchronously; keep them fast.
func WithObserver(obs Observer) Option {
	return func(c *config) error { c.observer = obs; return nil }
}
