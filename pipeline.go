package sparkxd

import (
	"context"
	"fmt"

	"sparkxd/internal/core"
	"sparkxd/internal/dataset"
	"sparkxd/internal/mapping"
	"sparkxd/internal/rng"
	"sparkxd/internal/snn"
	"sparkxd/internal/voltscale"
)

// Internal shorthands used across the SDK files.
type (
	layoutT  = mapping.Layout
	datasetT = dataset.Dataset
)

// Pipeline drives the staged SparkXD flow over one System. Each stage
// consumes the artifacts of earlier stages (from the exported fields)
// and stores its own artifact back, so stages can run one by one, be
// composed by Run, or resume from persisted artifacts: assign a loaded
// TrainedModel to Improved (and a ToleranceReport to Tolerance) and call
// Map without ever training.
//
// A Pipeline is single-goroutine; create one Pipeline per concurrent run
// (Systems are safe to share). Artifacts are not: a pipeline lazily
// annotates the artifacts assigned to it (measured baseline accuracy,
// rebuilt layouts, evaluation scratch state), so never assign the same
// artifact value to two concurrently running pipelines — load or decode
// a separate copy for each instead.
type Pipeline struct {
	sys *System

	// Artifacts, populated by the stages (or by the caller, to resume).
	Baseline   *TrainedModel
	Improved   *TrainedModel
	Tolerance  *ToleranceReport
	Placement  *Placement
	Evaluation *Evaluation
	Energy     *EnergyReport
}

// System returns the system the pipeline runs against.
func (p *Pipeline) System() *System { return p.sys }

// data returns the (train, test) datasets shared through the System.
// Generation is deterministic in the configuration, so resumed pipelines
// evaluate on exactly the samples the original run used.
func (p *Pipeline) data() (*datasetT, *datasetT, error) {
	return p.sys.datasets()
}

// datasets resolves the configured (train, test) pair once and caches
// it for the lifetime of the System: real IDX files when a data
// directory is configured and holds them, the deterministic synthetic
// generator otherwise.
func (s *System) datasets() (*datasetT, *datasetT, error) {
	s.dataOnce.Do(func() {
		if s.cfg.dataDir != "" {
			train, test, found, err := dataset.LoadIDX(s.cfg.dataDir, s.cfg.flavor)
			if err != nil {
				s.dsErr = fmt.Errorf("load %s dataset from %s: %w", s.cfg.flavor, s.cfg.dataDir, err)
				return
			}
			if found {
				s.dsTrain = train.Subset(s.cfg.trainN)
				s.dsTest = test.Subset(s.cfg.testN)
				return
			}
		}
		dcfg := dataset.DefaultConfig(s.cfg.flavor)
		dcfg.Train, dcfg.Test = s.cfg.trainN, s.cfg.testN
		train, test, err := dataset.Generate(dcfg)
		if err != nil {
			s.dsErr = fmt.Errorf("generate %s dataset: %w", s.cfg.flavor, err)
			return
		}
		s.dsTrain, s.dsTest = train, test
	})
	return s.dsTrain, s.dsTest, s.dsErr
}

// model returns the most-trained model available (improved over
// baseline).
func (p *Pipeline) model() *TrainedModel {
	if p.Improved != nil {
		return p.Improved
	}
	return p.Baseline
}

// trainCfg assembles the Algorithm 1 schedule from the configuration.
func (s *System) trainCfg() core.TrainConfig {
	return core.TrainConfig{
		Rates:         s.cfg.rates,
		EpochsPerRate: s.cfg.epochsPerRate,
		AccBound:      s.cfg.accBound,
		Seed:          s.cfg.trainSeed,
	}
}

// Train runs the error-free baseline training: a fresh SNN trained for
// the configured epochs, labels assigned. The resulting TrainedModel is
// stored in p.Baseline and returned.
func (p *Pipeline) Train(ctx context.Context) (*TrainedModel, error) {
	cfg := &p.sys.cfg
	train, _, err := p.data()
	if err != nil {
		return nil, wrapStage("train", err)
	}
	p.sys.notify(Event{Stage: "train", Phase: "start", Epochs: cfg.baseEpochs})
	baseline, err := snn.New(snn.DefaultConfig(cfg.neurons), p.sys.newRNG())
	if err != nil {
		return nil, wrapStage("train", err)
	}
	root := p.sys.newRNG().Derive("run")
	for e := 0; e < cfg.baseEpochs; e++ {
		if err := baseline.TrainEpochCtx(ctx, train, root.DeriveIndex("base-epoch", e)); err != nil {
			return nil, wrapStage("train", err)
		}
		p.sys.notify(Event{Stage: "train", Phase: "progress", Epoch: e + 1, Epochs: cfg.baseEpochs})
	}
	if err := baseline.AssignLabelsCtx(ctx, train, root.Derive("base-assign")); err != nil {
		return nil, wrapStage("train", err)
	}
	p.sys.notify(Event{Stage: "train", Phase: "done"})
	p.Baseline = &TrainedModel{
		Stage:        "baseline",
		Dataset:      datasetName(cfg.flavor),
		Neurons:      cfg.neurons,
		Seed:         cfg.seed,
		TrainSamples: cfg.trainN,
		TestSamples:  cfg.testN,
		net:          baseline,
	}
	return p.Baseline, nil
}

// ImproveTolerance runs Algorithm 1 (fault-aware training) on the
// baseline model: walk the increasing BER schedule, inject errors into
// the stored weights, retrain, and keep the last model whose accuracy
// stays within the bound. The improved TrainedModel is stored in
// p.Improved and returned; p.Baseline gains its measured error-free
// accuracy.
func (p *Pipeline) ImproveTolerance(ctx context.Context) (*TrainedModel, error) {
	if p.Baseline == nil || p.Baseline.net == nil {
		return nil, missingArtifact("ImproveTolerance", "a baseline model", "run Train first or assign Pipeline.Baseline")
	}
	train, test, err := p.data()
	if err != nil {
		return nil, wrapStage("improve", err)
	}
	tr, err := p.sys.fw.ImproveErrorTolerance(ctx, p.Baseline.net, train, test, p.sys.trainCfg())
	if err != nil {
		return nil, wrapStage("improve", err)
	}
	p.Baseline.BaselineAcc = tr.BaselineAcc
	p.Improved = &TrainedModel{
		Stage:        "improved",
		Dataset:      p.Baseline.Dataset,
		Neurons:      p.Baseline.Neurons,
		Seed:         p.Baseline.Seed,
		TrainSamples: p.Baseline.TrainSamples,
		TestSamples:  p.Baseline.TestSamples,
		BaselineAcc:  tr.BaselineAcc,
		BERth:        tr.BERth,
		Curve:        tr.PerRate,
		net:          tr.Model,
	}
	return p.Improved, nil
}

// AnalyzeTolerance runs the Sec. IV-C linear BER search on the improved
// model (falling back to the baseline if no improved model is present),
// producing the maximum tolerable BER and the tolerance curve. The
// report is stored in p.Tolerance and returned.
func (p *Pipeline) AnalyzeTolerance(ctx context.Context) (*ToleranceReport, error) {
	m := p.model()
	if m == nil || m.net == nil {
		return nil, missingArtifact("AnalyzeTolerance", "a trained model", "run Train/ImproveTolerance or assign Pipeline.Improved")
	}
	_, test, err := p.data()
	if err != nil {
		return nil, wrapStage("analyze", err)
	}
	cfg := &p.sys.cfg
	baselineAcc := m.BaselineAcc
	if baselineAcc == 0 {
		// A model persisted before ImproveTolerance has no measured
		// error-free accuracy; measure it with the schedule's eval
		// stream, matching what ImproveTolerance would have used.
		evalSeed := rng.New(cfg.trainSeed).Derive("eval").Uint64()
		baselineAcc, err = m.net.Clone().EvaluateBatch(ctx, test, rng.New(evalSeed), p.sys.fw.EvalWorkers)
		if err != nil {
			return nil, wrapStage("analyze", err)
		}
		m.BaselineAcc = baselineAcc
	}
	berTh, curve, err := p.sys.fw.AnalyzeErrorTolerance(ctx, m.net, test,
		cfg.rates, baselineAcc, cfg.accBound, cfg.trainSeed+1)
	if err != nil {
		return nil, wrapStage("analyze", err)
	}
	p.Tolerance = &ToleranceReport{
		BaselineAcc: baselineAcc,
		AccBound:    cfg.accBound,
		BERth:       berTh,
		Curve:       curve,
	}
	return p.Tolerance, nil
}

// Map places the model's weight image into the safe subarrays of the
// approximate DRAM at the configured voltage (Algorithm 2), using the
// tolerance report's BERth. It fails with ErrNoSafeSubarrays when the
// safe capacity cannot hold the image; see MapAdaptive for the relaxing
// variant. The Placement is stored in p.Placement and returned.
func (p *Pipeline) Map(ctx context.Context) (*Placement, error) {
	return p.mapModel(ctx, false)
}

// MapAdaptive is Map with threshold relaxation: the BERth is doubled
// until the safe subarrays can hold the image, mirroring what a
// deployment does when the analysis yields a threshold stricter than the
// device can satisfy.
func (p *Pipeline) MapAdaptive(ctx context.Context) (*Placement, error) {
	return p.mapModel(ctx, true)
}

func (p *Pipeline) mapModel(ctx context.Context, adaptive bool) (*Placement, error) {
	m := p.model()
	if m == nil || m.net == nil {
		return nil, missingArtifact("Map", "a trained model", "run ImproveTolerance or assign Pipeline.Improved")
	}
	if p.Tolerance == nil {
		return nil, missingArtifact("Map", "a tolerance report", "run AnalyzeTolerance or assign Pipeline.Tolerance")
	}
	if err := ctx.Err(); err != nil {
		return nil, wrapStage("map", err)
	}
	cfg := &p.sys.cfg
	berTh := p.Tolerance.BERth
	effTh := berTh
	var (
		layout  *layoutT
		profile *DeviceProfile
		err     error
	)
	if adaptive {
		layout, profile, effTh, err = p.sys.fw.MapWeightsAdaptive(m.net.WeightCount(), cfg.voltage, berTh)
	} else {
		layout, profile, err = p.sys.fw.MapModel(m.net, cfg.voltage, berTh)
	}
	if err != nil {
		return nil, wrapStage("map", err)
	}
	p.sys.notify(Event{Stage: "map", Phase: "done", BER: effTh,
		Message: fmt.Sprintf("%d units in %d subarrays", layout.Units(), layout.SubarraysUsed())})
	p.Placement = &Placement{
		Voltage:        cfg.voltage,
		RequestedBERth: berTh,
		EffectiveBERth: effTh,
		Policy:         PolicySparkXD,
		WeightCount:    m.net.WeightCount(),
		Profile:        profile,
		layout:         layout,
	}
	return p.Placement, nil
}

// layoutOf returns the placement's DRAM layout, rebuilding it from the
// persisted fields when the placement was deserialized. The rebuild is
// deterministic: the same profile, threshold, and weight count always
// produce the same layout.
func (s *System) layoutOf(pl *Placement) (*layoutT, error) {
	if pl.layout != nil {
		return pl.layout, nil
	}
	if pl.WeightCount <= 0 {
		return nil, fmt.Errorf("placement has no weight count")
	}
	var safe []bool
	if pl.Policy == PolicySparkXD {
		if pl.Profile == nil {
			return nil, fmt.Errorf("placement has no device profile")
		}
		safe = pl.Profile.SafeSubarrays(pl.EffectiveBERth)
	}
	layout, err := s.fw.LayoutForWeights(pl.WeightCount, safe)
	if err != nil {
		return nil, err
	}
	pl.layout = layout
	return layout, nil
}

// EvaluateUnderErrors measures the model's accuracy when its weights
// stream through the placed approximate DRAM: corrupt via the
// placement's profile and layout, load (sanitized), evaluate. The
// Evaluation is stored in p.Evaluation and returned.
func (p *Pipeline) EvaluateUnderErrors(ctx context.Context) (*Evaluation, error) {
	m := p.model()
	if m == nil || m.net == nil {
		return nil, missingArtifact("EvaluateUnderErrors", "a trained model", "run ImproveTolerance or assign Pipeline.Improved")
	}
	if p.Placement == nil {
		return nil, missingArtifact("EvaluateUnderErrors", "a placement", "run Map or assign Pipeline.Placement")
	}
	// Cancellation is also checked before the corruption pass (and inside
	// the sample loops) in core; checking here lets a cancelled sweep of
	// evaluations stop at a point boundary before touching the datasets.
	if err := ctx.Err(); err != nil {
		return nil, wrapStage("evaluate", err)
	}
	_, test, err := p.data()
	if err != nil {
		return nil, wrapStage("evaluate", err)
	}
	layout, err := p.sys.layoutOf(p.Placement)
	if err != nil {
		return nil, wrapStage("evaluate", err)
	}
	cfg := &p.sys.cfg
	acc, err := p.sys.fw.EvaluateUnderErrorsCtx(ctx, m.net, test, layout,
		p.Placement.Profile, cfg.trainSeed+2, cfg.trainSeed+3)
	if err != nil {
		return nil, wrapStage("evaluate", err)
	}
	p.sys.notify(Event{Stage: "evaluate", Phase: "done", Acc: acc, BER: p.Placement.EffectiveBERth})
	p.Evaluation = &Evaluation{
		Voltage:     p.Placement.Voltage,
		BERth:       p.Placement.EffectiveBERth,
		BaselineAcc: m.BaselineAcc,
		Accuracy:    acc,
	}
	return p.Evaluation, nil
}

// EnergyReport replays one inference weight-streaming pass over the
// baseline mapping at nominal voltage and over the placement at its
// reduced voltage, integrating DRAM energy for both (the Fig. 12
// comparison). The report is stored in p.Energy and returned.
func (p *Pipeline) EnergyReport(ctx context.Context) (*EnergyReport, error) {
	if p.Placement == nil {
		return nil, missingArtifact("EnergyReport", "a placement", "run Map or assign Pipeline.Placement")
	}
	if err := ctx.Err(); err != nil {
		return nil, wrapStage("energy", err)
	}
	layout, err := p.sys.layoutOf(p.Placement)
	if err != nil {
		return nil, wrapStage("energy", err)
	}
	baseLayout, err := p.sys.fw.LayoutForWeights(p.Placement.WeightCount, nil)
	if err != nil {
		return nil, wrapStage("energy", err)
	}
	eBase, err := p.sys.fw.EvaluateEnergy(baseLayout, voltscale.VNominal)
	if err != nil {
		return nil, wrapStage("energy", err)
	}
	eSpark, err := p.sys.fw.EvaluateEnergy(layout, p.Placement.Voltage)
	if err != nil {
		return nil, wrapStage("energy", err)
	}
	speedup := 1.0
	if eSpark.Stats.TotalNs > 0 {
		// Matched (nominal) timing isolates the mapping effect, as in
		// Fig. 12(b).
		eSparkNominal, err := p.sys.fw.EvaluateEnergy(layout, voltscale.VNominal)
		if err != nil {
			return nil, wrapStage("energy", err)
		}
		speedup = eBase.Stats.TotalNs / eSparkNominal.Stats.TotalNs
	}
	savings := 0.0
	if eBase.TotalMJ() > 0 {
		savings = 1 - eSpark.TotalMJ()/eBase.TotalMJ()
	}
	p.sys.notify(Event{Stage: "energy", Phase: "done",
		Message: fmt.Sprintf("%.4f mJ -> %.4f mJ", eBase.TotalMJ(), eSpark.TotalMJ())})
	p.Energy = &EnergyReport{
		Baseline: energyPoint(eBase),
		SparkXD:  energyPoint(eSpark),
		Savings:  savings,
		Speedup:  speedup,
	}
	return p.Energy, nil
}

func energyPoint(e core.EnergyResult) EnergyPoint {
	return EnergyPoint{
		Voltage:        e.Voltage,
		Policy:         Policy(e.Policy),
		TotalMJ:        e.TotalMJ(),
		HitRate:        e.Stats.HitRate(),
		MakespanNs:     e.Stats.TotalNs,
		BusUtilization: e.Stats.BusUtilization(),
	}
}

// Run executes the whole SparkXD pipeline in order — Train,
// ImproveTolerance, AnalyzeTolerance, Map, EvaluateUnderErrors,
// EnergyReport — skipping stages whose artifacts are already present
// (which is how a pipeline resumes from persisted artifacts), and
// returns every artifact.
func (p *Pipeline) Run(ctx context.Context) (*Result, error) {
	if p.Baseline == nil && p.Improved == nil {
		if _, err := p.Train(ctx); err != nil {
			return nil, err
		}
	}
	if p.Improved == nil {
		if _, err := p.ImproveTolerance(ctx); err != nil {
			return nil, err
		}
	}
	if p.Tolerance == nil {
		if _, err := p.AnalyzeTolerance(ctx); err != nil {
			return nil, err
		}
	}
	if p.Placement == nil {
		if _, err := p.Map(ctx); err != nil {
			return nil, err
		}
	}
	if p.Evaluation == nil {
		if _, err := p.EvaluateUnderErrors(ctx); err != nil {
			return nil, err
		}
	}
	if p.Energy == nil {
		if _, err := p.EnergyReport(ctx); err != nil {
			return nil, err
		}
	}
	return &Result{
		Baseline:   p.Baseline,
		Improved:   p.Improved,
		Tolerance:  p.Tolerance,
		Placement:  p.Placement,
		Evaluation: p.Evaluation,
		Energy:     p.Energy,
	}, nil
}
