// Package mapping places serialized weight images into DRAM.
//
// Two policies are implemented, matching the paper's evaluation:
//
//   - Baseline (Sec. IV-B, Step-2): weights occupy subsequent addresses in
//     a DRAM bank to exploit burst access; when a bank is full, the next
//     bank of the same chip is used. This is the layout the baseline SNN
//     and the fault-aware training error injection assume.
//
//   - SparkXD (Sec. IV-D, Algorithm 2): weights are placed only in *safe*
//     subarrays (error rate <= BERth), filling the same row index across
//     the banks of a chip first (maximizing row-buffer hits and enabling
//     the multi-bank burst overlap of Fig. 9(b)), then moving to the next
//     subarray, then the next row index, then chips, ranks, and channels.
//
// A Layout records the DRAM coordinate of every column unit of the image,
// in image order. The same Layout serves three consumers: the error
// injector (which bits live in which subarray), the memory controller
// (the access stream of one inference pass), and the energy model.
package mapping

import (
	"errors"
	"fmt"

	"sparkxd/internal/dram"
)

// Layout is the placement of an image's column units in DRAM. It
// satisfies errmodel.Placement.
type Layout struct {
	Geom      dram.Geometry
	Policy    string
	unitBytes int
	coords    []dram.Coord
}

// Units returns the number of placed column units.
func (l *Layout) Units() int { return len(l.coords) }

// UnitBytes returns the size of one column unit.
func (l *Layout) UnitBytes() int { return l.unitBytes }

// CoordOf returns the DRAM coordinate of image unit u.
func (l *Layout) CoordOf(u int) dram.Coord { return l.coords[u] }

// Coords returns the full placement in image order. The slice is shared;
// callers must not mutate it.
func (l *Layout) Coords() []dram.Coord { return l.coords }

// AccessStream returns the read access sequence of one streaming pass
// over the image (inference reads weights in image order).
func (l *Layout) AccessStream() []dram.Coord { return l.coords }

// SubarraysUsed returns how many distinct subarrays hold data.
func (l *Layout) SubarraysUsed() int {
	seen := map[dram.SubarrayID]bool{}
	for _, c := range l.coords {
		seen[c.SubarrayOf()] = true
	}
	return len(seen)
}

// BanksUsed returns how many distinct banks hold data.
func (l *Layout) BanksUsed() int {
	seen := map[dram.BankID]bool{}
	for _, c := range l.coords {
		seen[c.BankOf()] = true
	}
	return len(seen)
}

// UnitsFor returns how many column units an image of the given byte size
// occupies (rounding up to whole units).
func UnitsFor(imageBytes, unitBytes int) int {
	return (imageBytes + unitBytes - 1) / unitBytes
}

// Baseline places units in subsequent addresses of a bank (columns, then
// rows, then subarrays), moving to the next bank when one fills — the
// paper's baseline mapping. It errors if the image exceeds the device.
func Baseline(geom dram.Geometry, units int) (*Layout, error) {
	if err := geom.Validate(); err != nil {
		return nil, fmt.Errorf("mapping: geometry: %w", err)
	}
	if units < 0 {
		return nil, errors.New("mapping: negative unit count")
	}
	if int64(units) > geom.TotalColumns() {
		return nil, fmt.Errorf("mapping: image (%d units) exceeds device (%d units)",
			units, geom.TotalColumns())
	}
	coords := make([]dram.Coord, units)
	// The linear Encode order is exactly ch,ra,cp,ba,su,ro,co — i.e.
	// sequential fill within a bank, then next bank.
	for u := 0; u < units; u++ {
		coords[u] = geom.Decode(int64(u))
	}
	return &Layout{Geom: geom, Policy: "baseline", unitBytes: geom.ColumnBytes, coords: coords}, nil
}

// ErrInsufficientSafeCapacity is returned by SparkXD when the safe
// subarrays cannot hold the image; callers typically relax BERth (pick a
// lower supply voltage or re-run the tolerance analysis).
var ErrInsufficientSafeCapacity = errors.New("mapping: safe subarrays cannot hold the image")

// SparkXD implements Algorithm 2 of the paper. safe flags one entry per
// subarray (dram.SubarrayID.Linear order); units is the image size in
// column units. The loop nest follows the paper exactly:
//
//	for ch { for ra { for cp { for ro { for su { for ba {
//	    if subarray_rate[ch,ra,cp,ba,su] <= BERth {
//	        for co { DRAM[ch,ra,cp,ba,su,ro,co] <- data }
//	    }
//	}}}}}}
//
// Iterating banks innermost (before columns advance to the next subarray
// or row) interleaves consecutive image units across banks at the same
// row index, which is what maximizes row-buffer hits per bank and lets
// multi-bank bursts overlap row activations.
func SparkXD(geom dram.Geometry, units int, safe []bool) (*Layout, error) {
	if err := geom.Validate(); err != nil {
		return nil, fmt.Errorf("mapping: geometry: %w", err)
	}
	if len(safe) != geom.SubarrayCount() {
		return nil, fmt.Errorf("mapping: safe flags length %d, want %d",
			len(safe), geom.SubarrayCount())
	}
	if units < 0 {
		return nil, errors.New("mapping: negative unit count")
	}
	coords := make([]dram.Coord, 0, units)

placement:
	for ch := 0; ch < geom.Channels; ch++ {
		for ra := 0; ra < geom.Ranks; ra++ {
			for cp := 0; cp < geom.Chips; cp++ {
				for ro := 0; ro < geom.Rows; ro++ {
					for su := 0; su < geom.Subarrays; su++ {
						for ba := 0; ba < geom.Banks; ba++ {
							id := dram.SubarrayID{Channel: ch, Rank: ra, Chip: cp, Bank: ba, Subarray: su}
							if !safe[id.Linear(geom)] {
								continue
							}
							for co := 0; co < geom.Columns; co++ {
								if len(coords) == units {
									break placement
								}
								coords = append(coords, dram.Coord{
									Channel: ch, Rank: ra, Chip: cp,
									Bank: ba, Subarray: su, Row: ro, Column: co,
								})
							}
						}
					}
				}
			}
		}
	}
	if len(coords) < units {
		return nil, fmt.Errorf("%w: placed %d of %d units",
			ErrInsufficientSafeCapacity, len(coords), units)
	}
	return &Layout{Geom: geom, Policy: "sparkxd", unitBytes: geom.ColumnBytes, coords: coords}, nil
}

// AllSafe returns a safe-flag slice marking every subarray usable —
// useful for isolating the mapping-order effect from the safety filter.
func AllSafe(geom dram.Geometry) []bool {
	s := make([]bool, geom.SubarrayCount())
	for i := range s {
		s[i] = true
	}
	return s
}

// Interleaved places units round-robin across banks at sequential
// row/column positions without a safety filter. It is the classic
// bank-interleaved layout used as an ablation between Baseline and
// SparkXD (it shares SparkXD's bank overlap but not its error awareness).
func Interleaved(geom dram.Geometry, units int) (*Layout, error) {
	return SparkXD(geom, units, AllSafe(geom))
}

// Validate checks that every coordinate is inside the geometry and that
// no column unit is used twice (a layout must be an injection).
func (l *Layout) Validate() error {
	seen := make(map[int64]struct{}, len(l.coords))
	for u, c := range l.coords {
		if !c.Valid(l.Geom) {
			return fmt.Errorf("mapping: unit %d at invalid coord %v", u, c)
		}
		k := l.Geom.Encode(c)
		if _, dup := seen[k]; dup {
			return fmt.Errorf("mapping: unit %d reuses coord %v", u, c)
		}
		seen[k] = struct{}{}
	}
	return nil
}

// OccupancyBySubarray returns unit counts per linear subarray index.
func (l *Layout) OccupancyBySubarray() []int {
	occ := make([]int, l.Geom.SubarrayCount())
	for _, c := range l.coords {
		occ[c.SubarrayOf().Linear(l.Geom)]++
	}
	return occ
}
