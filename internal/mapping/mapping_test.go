package mapping

import (
	"errors"
	"testing"

	"sparkxd/internal/dram"
	"sparkxd/internal/memctrl"
)

func TestUnitsFor(t *testing.T) {
	if UnitsFor(64, 32) != 2 || UnitsFor(65, 32) != 3 || UnitsFor(1, 32) != 1 {
		t.Fatal("UnitsFor rounding wrong")
	}
}

func TestBaselineSequentialWithinBank(t *testing.T) {
	g := dram.SmallTestGeometry()
	l, err := Baseline(g, 3*g.Columns)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
	// First row fills columns 0..Columns-1 of row 0, then row 1.
	for u := 0; u < g.Columns; u++ {
		c := l.CoordOf(u)
		if c.Row != 0 || c.Column != u || c.Bank != 0 || c.Subarray != 0 {
			t.Fatalf("unit %d at %v, want su0 ro0 co%d", u, c, u)
		}
	}
	if l.CoordOf(g.Columns).Row != 1 {
		t.Fatal("baseline must advance to the next row of the same subarray")
	}
	if l.BanksUsed() != 1 {
		t.Fatal("small baseline image must stay in one bank")
	}
}

func TestBaselineSpillsToNextBank(t *testing.T) {
	g := dram.SmallTestGeometry()
	perBank := g.Subarrays * g.Rows * g.Columns
	l, err := Baseline(g, perBank+1)
	if err != nil {
		t.Fatal(err)
	}
	last := l.CoordOf(perBank)
	if last.Bank != 1 || last.Subarray != 0 || last.Row != 0 || last.Column != 0 {
		t.Fatalf("bank spill went to %v", last)
	}
}

func TestBaselineRejectsOversize(t *testing.T) {
	g := dram.SmallTestGeometry()
	if _, err := Baseline(g, int(g.TotalColumns())+1); err == nil {
		t.Fatal("oversize image must error")
	}
	if _, err := Baseline(g, -1); err == nil {
		t.Fatal("negative units must error")
	}
}

func TestSparkXDInterleavesBanks(t *testing.T) {
	g := dram.SmallTestGeometry()
	l, err := SparkXD(g, 4*g.Columns, AllSafe(g))
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
	// Units fill a full row in bank 0, then the same row in bank 1, ...
	first := l.CoordOf(0)
	second := l.CoordOf(g.Columns)
	if first.Bank != 0 || second.Bank != 1 {
		t.Fatalf("expected bank advance after one row: %v then %v", first, second)
	}
	if second.Row != first.Row || second.Subarray != first.Subarray {
		t.Fatal("bank advance must keep the same row and subarray index")
	}
	if l.BanksUsed() != 4 {
		t.Fatalf("BanksUsed = %d, want 4", l.BanksUsed())
	}
}

func TestSparkXDSkipsUnsafeSubarrays(t *testing.T) {
	g := dram.SmallTestGeometry()
	safe := AllSafe(g)
	// Mark subarray 0 of every bank of chip 0/rank 0/channel 0 unsafe.
	for ba := 0; ba < g.Banks; ba++ {
		id := dram.SubarrayID{Bank: ba, Subarray: 0}
		safe[id.Linear(g)] = false
	}
	l, err := SparkXD(g, 2*g.Columns, safe)
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < l.Units(); u++ {
		c := l.CoordOf(u)
		if c.Channel == 0 && c.Rank == 0 && c.Chip == 0 && c.Subarray == 0 {
			t.Fatalf("unit %d placed in unsafe subarray: %v", u, c)
		}
	}
}

func TestSparkXDInsufficientCapacity(t *testing.T) {
	g := dram.SmallTestGeometry()
	safe := make([]bool, g.SubarrayCount()) // nothing safe
	safe[0] = true
	oneSub := g.Rows * g.Columns
	if _, err := SparkXD(g, oneSub, safe); err != nil {
		t.Fatalf("exactly one subarray of data should fit: %v", err)
	}
	_, err := SparkXD(g, oneSub+1, safe)
	if !errors.Is(err, ErrInsufficientSafeCapacity) {
		t.Fatalf("want ErrInsufficientSafeCapacity, got %v", err)
	}
}

func TestSparkXDRejectsBadSafeLength(t *testing.T) {
	g := dram.SmallTestGeometry()
	if _, err := SparkXD(g, 1, make([]bool, 3)); err == nil {
		t.Fatal("wrong safe length must error")
	}
}

func TestLayoutValidateCatchesDuplicates(t *testing.T) {
	g := dram.SmallTestGeometry()
	l := &Layout{Geom: g, unitBytes: g.ColumnBytes,
		coords: []dram.Coord{{}, {}}}
	if l.Validate() == nil {
		t.Fatal("duplicate coords must fail validation")
	}
}

func TestOccupancyBySubarray(t *testing.T) {
	g := dram.SmallTestGeometry()
	l, _ := Baseline(g, g.Columns*2) // two rows of subarray 0
	occ := l.OccupancyBySubarray()
	if occ[0] != 2*g.Columns {
		t.Fatalf("occ[0] = %d", occ[0])
	}
	total := 0
	for _, o := range occ {
		total += o
	}
	if total != l.Units() {
		t.Fatal("occupancy must sum to unit count")
	}
}

// The headline behavioural claim: replaying the SparkXD stream achieves a
// hit rate at least as high as baseline and is not slower (Fig. 12(b)).
func TestSparkXDStreamNotSlowerThanBaseline(t *testing.T) {
	g := dram.SmallTestGeometry()
	tm := dram.NominalTiming()
	units := 6 * g.Columns * g.Banks // several rows per bank

	base, err := Baseline(g, units)
	if err != nil {
		t.Fatal(err)
	}
	spark, err := SparkXD(g, units, AllSafe(g))
	if err != nil {
		t.Fatal(err)
	}
	cb, _ := memctrl.New(g, tm)
	cs, _ := memctrl.New(g, tm)
	sb := cb.ReplayReads(base.AccessStream())
	ss := cs.ReplayReads(spark.AccessStream())

	if ss.TotalNs > sb.TotalNs {
		t.Errorf("sparkxd stream slower: %v ns vs baseline %v ns", ss.TotalNs, sb.TotalNs)
	}
	if ss.HitRate() < sb.HitRate()-1e-9 {
		t.Errorf("sparkxd hit rate %v below baseline %v", ss.HitRate(), sb.HitRate())
	}
}

func TestInterleavedEqualsSparkXDAllSafe(t *testing.T) {
	g := dram.SmallTestGeometry()
	a, err := Interleaved(g, 100)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := SparkXD(g, 100, AllSafe(g))
	for u := 0; u < 100; u++ {
		if a.CoordOf(u) != b.CoordOf(u) {
			t.Fatal("Interleaved must equal SparkXD with all subarrays safe")
		}
	}
}

func TestPolicyNames(t *testing.T) {
	g := dram.SmallTestGeometry()
	b, _ := Baseline(g, 1)
	s, _ := SparkXD(g, 1, AllSafe(g))
	if b.Policy != "baseline" || s.Policy != "sparkxd" {
		t.Fatal("policy labels wrong")
	}
}

func TestSubarraysUsed(t *testing.T) {
	g := dram.SmallTestGeometry()
	l, _ := Baseline(g, g.Columns*g.Rows+1) // just spills into subarray 1
	if l.SubarraysUsed() != 2 {
		t.Fatalf("SubarraysUsed = %d, want 2", l.SubarraysUsed())
	}
}

func TestAccessStreamSharesCoords(t *testing.T) {
	g := dram.SmallTestGeometry()
	l, _ := Baseline(g, 10)
	s := l.AccessStream()
	if len(s) != 10 || s[0] != l.CoordOf(0) {
		t.Fatal("AccessStream must be the placement in image order")
	}
}
