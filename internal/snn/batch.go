package snn

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"sparkxd/internal/coding"
	"sparkxd/internal/dataset"
	"sparkxd/internal/numeric"
	"sparkxd/internal/rng"
)

// EncodedSet is a dataset pre-encoded into spike trains with the exact
// per-sample streams EvaluateCtx would derive (r.DeriveIndex("eval", s)).
// Encoding depends only on the dataset, the encoder, the step count, and
// the stream's seed identity — not on weights or thresholds — so one
// EncodedSet is reusable across every weight image evaluated under the
// same evaluation seed, which is exactly the paired-evaluation structure
// of a sweep (every scenario shares one EvalSeed).
type EncodedSet struct {
	ds     *dataset.Dataset
	seed   [2]uint64
	steps  int
	enc    string
	trains []coding.Train
}

// Len returns the number of encoded samples.
func (es *EncodedSet) Len() int { return len(es.trains) }

// Matches reports whether es holds exactly the trains that evaluating ds
// under stream r with the given config would encode: same dataset, same
// seed identity (Derive is a pure function of the seed words, so equal
// identity means equal derived streams), same step count and encoder.
func (es *EncodedSet) Matches(cfg *Config, ds *dataset.Dataset, r *rng.Stream) bool {
	return es.MatchesFor(ds, r, cfg.Steps, cfg.Encoder.Name())
}

// MatchesFor is Matches against an explicit (steps, encoder name) pair
// instead of a network config — the sweep engine's encoder axis caches
// sets encoded with encoders other than the network's own.
func (es *EncodedSet) MatchesFor(ds *dataset.Dataset, r *rng.Stream, steps int, encName string) bool {
	return es.ds == ds &&
		es.seed == r.SeedIdentity() &&
		es.steps == steps &&
		es.enc == encName
}

// EncoderName returns the Name() of the encoder the set was built with.
func (es *EncodedSet) EncoderName() string { return es.enc }

// EncodeDataset pre-encodes every sample of ds into spike trains using
// the same per-sample derived streams as EvaluateCtx. DeriveIndex never
// advances the parent stream, so samples encode independently and the
// result is bit-identical for any worker count (workers <= 0 means
// GOMAXPROCS).
func (n *Network) EncodeDataset(ctx context.Context, ds *dataset.Dataset, r *rng.Stream, workers int) (*EncodedSet, error) {
	return n.EncodeDatasetWith(ctx, ds, nil, r, workers)
}

// EncodeDatasetWith is EncodeDataset with an explicit encoder (nil means
// the network's own). The per-sample streams are identical regardless of
// the encoder, so sets encoded from the same seed stay paired across an
// encoder sweep.
func (n *Network) EncodeDatasetWith(ctx context.Context, ds *dataset.Dataset, enc coding.Encoder, r *rng.Stream, workers int) (*EncodedSet, error) {
	if enc == nil {
		enc = n.Cfg.Encoder
	}
	es := &EncodedSet{
		ds:     ds,
		seed:   r.SeedIdentity(),
		steps:  n.Cfg.Steps,
		enc:    enc.Name(),
		trains: make([]coding.Train, ds.Len()),
	}
	total := ds.Len()
	if total == 0 {
		return es, nil
	}
	workers = clampWorkers(workers, total)
	if workers == 1 {
		for s := 0; s < total; s++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			es.trains[s] = enc.Encode(ds.Images[s], n.Cfg.Steps, r.DeriveIndex("eval", s))
		}
		return es, nil
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo, hi := chunkRange(total, workers, w)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for s := lo; s < hi; s++ {
				if ctx.Err() != nil {
					return
				}
				es.trains[s] = enc.Encode(ds.Images[s], n.Cfg.Steps, r.DeriveIndex("eval", s))
			}
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return es, nil
}

// EvaluateEncoded returns classification accuracy over a pre-encoded
// dataset. It is bit-identical to EvaluateCtx with the stream the set was
// encoded from, for any worker count: the theta-coupled neuron dynamics
// chain samples sequentially (Pool.Step mutates the adaptive thresholds
// even during inference), so parallelism is applied only to the
// per-sample synaptic-drive accumulation — a pure function of the
// weights and the spike train — while the stateful Step/Inhibit pass
// consumes the precomputed drives strictly in sample order. Every
// floating-point operation happens with the same operands in the same
// order as the scalar path.
func (n *Network) EvaluateEncoded(ctx context.Context, es *EncodedSet, workers int) (float64, error) {
	total := es.Len()
	if total == 0 {
		return 0, nil
	}
	if es.steps != n.Cfg.Steps || es.enc != n.Cfg.Encoder.Name() {
		return 0, fmt.Errorf("snn: encoded set built for steps=%d encoder=%q, network has steps=%d encoder=%q",
			es.steps, es.enc, n.Cfg.Steps, n.Cfg.Encoder.Name())
	}
	workers = clampWorkers(workers, total)
	correct := 0
	if workers == 1 {
		for s := 0; s < total; s++ {
			if err := ctx.Err(); err != nil {
				return 0, err
			}
			if n.classify(n.present(es.trains[s], false)) == int(es.ds.Labels[s]) {
				correct++
			}
		}
		return float64(correct) / float64(total), nil
	}

	steps, neurons := n.Cfg.Steps, n.Cfg.Neurons
	per := steps * neurons
	block := workers * driveBlockPerWorker
	if block > total {
		block = total
	}
	if cap(n.driveBuf) < block*per {
		n.driveBuf = make([]float32, block*per)
	}
	drives := n.driveBuf[:block*per]
	var wg sync.WaitGroup
	for lo := 0; lo < total; lo += block {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		hi := lo + block
		if hi > total {
			hi = total
		}
		// Phase A: accumulate each sample's per-step drive vectors in
		// parallel. Drive depends only on W and the train; writes are to
		// disjoint regions of the block buffer.
		for w := 0; w < workers; w++ {
			clo, chi := chunkRange(hi-lo, workers, w)
			wg.Add(1)
			go func() {
				defer wg.Done()
				for s := clo; s < chi; s++ {
					if ctx.Err() != nil {
						return
					}
					n.accumulateDrives(es.trains[lo+s], drives[s*per:(s+1)*per])
				}
			}()
		}
		wg.Wait()
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		// Phase B: theta-chained consume, strictly in sample order.
		for s := lo; s < hi; s++ {
			if n.classify(n.presentDrives(drives[(s-lo)*per:(s-lo+1)*per])) == int(es.ds.Labels[s]) {
				correct++
			}
		}
	}
	return float64(correct) / float64(total), nil
}

// driveBlockPerWorker bounds the drive-precompute window: a block holds
// workers*driveBlockPerWorker samples' drive matrices (steps x neurons
// float32 each), trading a few MB of scratch for enough parallel slack
// that Phase A keeps all cores busy while Phase B drains sequentially.
const driveBlockPerWorker = 4

// accumulateDrives writes the per-step synaptic drive of one sample into
// dst (steps consecutive neuron-length vectors), with the identical
// Fill32/AddTo sequence the scalar present path performs per step.
func (n *Network) accumulateDrives(tr coding.Train, dst []float32) {
	neurons := n.Cfg.Neurons
	for t := 0; t < len(tr); t++ {
		row := dst[t*neurons : (t+1)*neurons : (t+1)*neurons]
		numeric.Fill32(row, 0)
		for _, i := range tr[t] {
			numeric.AddTo(row, n.W.Row(int(i)))
		}
	}
}

// presentDrives replays one inference presentation whose synaptic drive
// has already been accumulated — the stateful half of present(tr, false),
// bit-identical to it because Pool.Step receives the same input values in
// the same step order.
func (n *Network) presentDrives(drives []float32) []int {
	cfg := &n.Cfg
	for j := range n.counts {
		n.counts[j] = 0
	}
	n.Pool.ResetState()
	neurons := cfg.Neurons
	for t := 0; t*neurons < len(drives); t++ {
		spikes := n.Pool.Step(drives[t*neurons:(t+1)*neurons], n.spikeBuf)
		if len(spikes) > 0 {
			n.Pool.Inhibit(spikes, cfg.Inhibition)
			for _, j := range spikes {
				n.counts[j]++
			}
		}
	}
	return n.counts
}

// EvaluateBatch is EvaluateCtx restructured as one batched job: encode
// all samples (parallel), then evaluate them with the drive-precompute
// pipeline. Bit-identical to EvaluateCtx(ctx, ds, r) for any workers.
func (n *Network) EvaluateBatch(ctx context.Context, ds *dataset.Dataset, r *rng.Stream, workers int) (float64, error) {
	es, err := n.EncodeDataset(ctx, ds, r, workers)
	if err != nil {
		return 0, err
	}
	return n.EvaluateEncoded(ctx, es, workers)
}

func clampWorkers(workers, total int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > total {
		workers = total
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// chunkRange splits [0, total) into parts contiguous chunks and returns
// the w-th; the first total%parts chunks are one element longer.
func chunkRange(total, parts, w int) (lo, hi int) {
	base := total / parts
	rem := total % parts
	lo = w*base + min(w, rem)
	hi = lo + base
	if w < rem {
		hi++
	}
	return lo, hi
}
