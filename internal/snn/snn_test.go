package snn

import (
	"math"
	"testing"

	"sparkxd/internal/coding"
	"sparkxd/internal/dataset"
	"sparkxd/internal/rng"
)

func smallNet(t *testing.T, neurons int) *Network {
	t.Helper()
	cfg := DefaultConfig(neurons)
	n, err := New(cfg, rng.New(1))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return n
}

func smallData(t *testing.T, train, test int) (*dataset.Dataset, *dataset.Dataset) {
	t.Helper()
	cfg := dataset.DefaultConfig(dataset.MNISTLike)
	cfg.Train, cfg.Test = train, test
	tr, te, err := dataset.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return tr, te
}

func TestConfigValidation(t *testing.T) {
	cfg := DefaultConfig(50)
	if err := cfg.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := DefaultConfig(50)
	bad.Encoder = nil
	if bad.Validate() == nil {
		t.Error("nil encoder must be invalid")
	}
	bad = DefaultConfig(50)
	bad.LIF.N = 10
	if bad.Validate() == nil {
		t.Error("LIF.N mismatch must be invalid")
	}
	bad = DefaultConfig(50)
	bad.NormTarget = 0
	if bad.Validate() == nil {
		t.Error("zero NormTarget must be invalid")
	}
}

func TestNewInitialization(t *testing.T) {
	n := smallNet(t, 30)
	if n.WeightCount() != dataset.Pixels*30 {
		t.Fatal("weight count wrong")
	}
	// Weights normalized per neuron.
	sums := n.W.ColumnSums()
	for j, s := range sums {
		if math.Abs(float64(s)-float64(n.Cfg.NormTarget)) > 0.1 {
			t.Fatalf("neuron %d incoming sum %v, want %v", j, s, n.Cfg.NormTarget)
		}
	}
	for _, a := range n.Assign {
		if a != -1 {
			t.Fatal("fresh network must be unassigned")
		}
	}
}

func TestDeterministicConstruction(t *testing.T) {
	a := smallNet(t, 20)
	b := smallNet(t, 20)
	for i := range a.W.Data {
		if a.W.Data[i] != b.W.Data[i] {
			t.Fatal("same seed must give identical weights")
		}
	}
}

func TestPresentProducesSpikes(t *testing.T) {
	n := smallNet(t, 30)
	train, _ := smallData(t, 10, 5)
	counts := n.SpikeCounts(train.Images[0], rng.New(3))
	total := 0
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		t.Fatal("a bright image must drive some spikes in a fresh network")
	}
}

func TestTrainingMovesWeights(t *testing.T) {
	n := smallNet(t, 30)
	train, _ := smallData(t, 20, 5)
	before := n.WeightsFlat()
	n.TrainEpoch(train, rng.New(5))
	after := n.WeightsFlat()
	diff := 0.0
	for i := range before {
		diff += math.Abs(float64(after[i] - before[i]))
	}
	if diff == 0 {
		t.Fatal("training must change weights")
	}
}

func TestTrainingPreservesNormalization(t *testing.T) {
	n := smallNet(t, 25)
	train, _ := smallData(t, 30, 5)
	n.TrainEpoch(train, rng.New(5))
	for j, s := range n.W.ColumnSums() {
		if s > n.Cfg.NormTarget*1.05 {
			t.Fatalf("neuron %d sum %v exceeds norm target after training", j, s)
		}
	}
	for _, w := range n.W.Data {
		if w < 0 || w > n.Cfg.WMax {
			t.Fatalf("weight %v outside [0, WMax]", w)
		}
	}
}

// The headline substrate test: unsupervised STDP training must reach
// far-above-chance accuracy on the synthetic MNIST flavour.
func TestUnsupervisedLearningBeatsChance(t *testing.T) {
	if testing.Short() {
		t.Skip("training smoke test skipped in -short mode")
	}
	train, test := smallData(t, 300, 100)
	n := smallNet(t, 100)
	for epoch := 0; epoch < 2; epoch++ {
		n.TrainEpoch(train, rng.New(uint64(10+epoch)))
	}
	n.AssignLabels(train, rng.New(20))
	acc := n.Evaluate(test, rng.New(30))
	t.Logf("accuracy after training: %.1f%%", acc*100)
	if acc < 0.40 {
		t.Errorf("accuracy %.1f%% below 40%% (chance is 10%%)", acc*100)
	}
}

// Larger networks should not be worse than much smaller ones (Fig. 1(a)
// direction: more neurons -> more accuracy).
func TestLargerNetworkAtLeastAsGood(t *testing.T) {
	if testing.Short() {
		t.Skip("training comparison skipped in -short mode")
	}
	train, test := smallData(t, 200, 80)
	small := smallNet(t, 20)
	large := smallNet(t, 120)
	small.TrainEpoch(train, rng.New(11))
	large.TrainEpoch(train, rng.New(11))
	small.AssignLabels(train, rng.New(12))
	large.AssignLabels(train, rng.New(12))
	accS := small.Evaluate(test, rng.New(13))
	accL := large.Evaluate(test, rng.New(13))
	t.Logf("N20: %.1f%%  N120: %.1f%%", accS*100, accL*100)
	if accL < accS-0.10 {
		t.Errorf("large net (%.1f%%) much worse than small (%.1f%%)", accL*100, accS*100)
	}
}

func TestAssignLabelsCoversClasses(t *testing.T) {
	if testing.Short() {
		t.Skip("skipped in -short mode")
	}
	train, _ := smallData(t, 200, 10)
	n := smallNet(t, 100)
	n.TrainEpoch(train, rng.New(7))
	n.AssignLabels(train, rng.New(8))
	seen := map[int]bool{}
	for _, c := range n.Assign {
		if c >= 0 {
			seen[c] = true
		}
	}
	if len(seen) < 5 {
		t.Errorf("assignments cover only %d classes", len(seen))
	}
}

func TestWeightsRoundtrip(t *testing.T) {
	n := smallNet(t, 10)
	w := n.WeightsFlat()
	w[0] = 0.123
	if err := n.SetWeightsFlat(w); err != nil {
		t.Fatal(err)
	}
	if n.W.Data[0] != 0.123 {
		t.Fatal("SetWeightsFlat must apply values")
	}
	if err := n.SetWeightsFlat(w[:5]); err == nil {
		t.Fatal("wrong length must error")
	}
}

func TestSetWeightsSanitizes(t *testing.T) {
	n := smallNet(t, 10)
	w := n.WeightsFlat()
	w[0] = float32(math.NaN())
	w[1] = float32(math.Inf(1))
	w[2] = -5
	w[3] = 99
	if err := n.SetWeightsFlat(w); err != nil {
		t.Fatal(err)
	}
	if n.W.Data[0] != 0 || n.W.Data[1] != 0 {
		t.Error("non-finite weights must become 0")
	}
	if n.W.Data[2] != -LoadClampFactor*n.Cfg.WMax {
		t.Error("very negative weights must clamp to the load floor")
	}
	if n.W.Data[3] != LoadClampFactor*n.Cfg.WMax {
		t.Error("oversized weights must clamp to the load ceiling")
	}
}

func TestCloneIndependence(t *testing.T) {
	n := smallNet(t, 10)
	n.Assign[0] = 3
	n.Pool.Theta[0] = 0.5
	c := n.Clone()
	if c.Assign[0] != 3 || c.Pool.Theta[0] != 0.5 {
		t.Fatal("clone must copy assignments and thresholds")
	}
	c.W.Data[0] = 99
	c.Assign[0] = 7
	if n.W.Data[0] == 99 || n.Assign[0] == 7 {
		t.Fatal("clone must not share storage")
	}
}

func TestEvaluateEmptyDataset(t *testing.T) {
	n := smallNet(t, 10)
	empty := &dataset.Dataset{}
	if n.Evaluate(empty, rng.New(1)) != 0 {
		t.Fatal("empty dataset accuracy must be 0")
	}
}

func TestPredictDeterministic(t *testing.T) {
	n := smallNet(t, 20)
	train, _ := smallData(t, 10, 5)
	a := n.Predict(train.Images[0], rng.New(9))
	b := n.Predict(train.Images[0], rng.New(9))
	if a != b {
		t.Fatal("prediction must be deterministic in the stream")
	}
}

func TestPaperSizes(t *testing.T) {
	sizes := PaperSizes()
	want := []int{400, 900, 1600, 2500, 3600}
	if len(sizes) != len(want) {
		t.Fatal("paper sizes wrong")
	}
	for i := range want {
		if sizes[i] != want[i] {
			t.Fatal("paper sizes wrong")
		}
	}
}

func TestAlternativeEncodersRun(t *testing.T) {
	train, _ := smallData(t, 5, 2)
	for _, enc := range []coding.Encoder{
		coding.NewDeterministicRate(),
		coding.TTFS{Threshold: 20},
		coding.NewRankOrder(),
		coding.Phase{},
		coding.NewBurst(),
	} {
		cfg := DefaultConfig(15)
		cfg.Encoder = enc
		n, err := New(cfg, rng.New(2))
		if err != nil {
			t.Fatalf("%s: %v", enc.Name(), err)
		}
		n.TrainEpoch(train, rng.New(3))
		_ = n.Evaluate(train, rng.New(4))
	}
}
