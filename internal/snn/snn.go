// Package snn implements the spiking neural network of the paper's
// evaluation (Sec. II-A, Fig. 4(a)): the state-of-the-art unsupervised
// architecture of Diehl & Cook, as used by FSpiNN (ref [7]):
//
//   - every input pixel connects to all excitatory neurons through
//     plastic synapses (the weights stored in DRAM);
//   - each excitatory spike drives lateral inhibition onto all other
//     neurons, creating winner-take-all competition;
//   - neurons are LIF with adaptive thresholds (homeostasis);
//   - learning is spike-timing-dependent plasticity (STDP) on the
//     input->excitatory synapses, with per-neuron weight normalization;
//   - after unsupervised training, each neuron is assigned the class it
//     responds to most, and inference predicts the class whose assigned
//     neurons spike most.
//
// This is the substrate that SparkXD's fault-aware training (package
// core) retrains under injected DRAM bit errors.
package snn

import (
	"context"
	"errors"
	"fmt"
	"math"

	"sparkxd/internal/coding"
	"sparkxd/internal/dataset"
	"sparkxd/internal/neuron"
	"sparkxd/internal/numeric"
	"sparkxd/internal/rng"
)

// Config parameterizes a network.
type Config struct {
	Inputs  int // input neurons (pixels)
	Neurons int // excitatory neurons
	Steps   int // timesteps per sample presentation

	LIF neuron.LIFConfig

	// STDP parameters: on a postsynaptic spike of neuron j,
	//   w[i][j] += EtaPost * (xpre[i] - XTar) * (WMax - w[i][j])
	// where xpre is the presynaptic trace (1 at a spike, exponential decay
	// with TauPre). Inputs that were recently active are potentiated;
	// silent inputs are depressed toward zero — the Diehl&Cook rule.
	WMax    float32
	EtaPost float32
	XTar    float32
	TauPre  float64 // ms

	// Inhibition is the lateral inhibition strength per winner spike.
	Inhibition float32

	// NormTarget is the per-neuron incoming weight sum enforced after
	// every training sample (synaptic scaling).
	NormTarget float32

	// Encoder converts images to spike trains.
	Encoder coding.Encoder
}

// DefaultConfig returns the tuned configuration for a network of the
// given size. Steps=60 keeps the full experiment suite laptop-fast; the
// paper's own per-sample presentation window is larger but the dynamics
// are the same.
func DefaultConfig(neurons int) Config {
	lif := neuron.DefaultLIF(neurons)
	lif.VTh = 5.0
	lif.ThetaPlus = 0.5
	return Config{
		Inputs:     dataset.Pixels,
		Neurons:    neurons,
		Steps:      60,
		LIF:        lif,
		WMax:       1.0,
		EtaPost:    0.05,
		XTar:       0.15,
		TauPre:     20.0,
		Inhibition: 3.0,
		NormTarget: 30.0,
		Encoder:    coding.NewRate(),
	}
}

// Validate reports whether the configuration is coherent.
func (c Config) Validate() error {
	switch {
	case c.Inputs <= 0 || c.Neurons <= 0:
		return errors.New("snn: sizes must be positive")
	case c.Steps <= 0:
		return errors.New("snn: steps must be positive")
	case c.WMax <= 0:
		return errors.New("snn: WMax must be positive")
	case c.EtaPost < 0 || c.XTar < 0:
		return errors.New("snn: STDP parameters must be non-negative")
	case c.TauPre <= 0:
		return errors.New("snn: TauPre must be positive")
	case c.NormTarget <= 0:
		return errors.New("snn: NormTarget must be positive")
	case c.Encoder == nil:
		return errors.New("snn: encoder required")
	case c.LIF.N != c.Neurons:
		return fmt.Errorf("snn: LIF.N (%d) must equal Neurons (%d)", c.LIF.N, c.Neurons)
	}
	return c.LIF.Validate()
}

// Network is a trained or in-training SNN. Create with New.
type Network struct {
	Cfg  Config
	W    *numeric.Matrix // Inputs x Neurons, the DRAM-resident weights
	Pool *neuron.Pool

	// Assign maps each neuron to the class it responds to (-1 before
	// AssignLabels).
	Assign []int

	xpre     []float32 // presynaptic traces
	decayPre float32
	drive    []float32
	spikeBuf []int32
	counts   []int
	driveBuf []float32 // EvaluateEncoded block scratch, reused across calls
}

// New builds a network with uniformly random initial weights, normalized
// per neuron.
func New(cfg Config, r *rng.Stream) (*Network, error) {
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("snn: config: %w", err)
	}
	pool, err := neuron.NewPool(cfg.LIF)
	if err != nil {
		return nil, fmt.Errorf("snn: neuron pool: %w", err)
	}
	n := &Network{
		Cfg:      cfg,
		W:        numeric.NewMatrix(cfg.Inputs, cfg.Neurons),
		Pool:     pool,
		Assign:   make([]int, cfg.Neurons),
		xpre:     make([]float32, cfg.Inputs),
		decayPre: float32(math.Exp(-cfg.LIF.DT / cfg.TauPre)),
		drive:    make([]float32, cfg.Neurons),
		spikeBuf: make([]int32, 0, cfg.Neurons),
		counts:   make([]int, cfg.Neurons),
	}
	for i := range n.Assign {
		n.Assign[i] = -1
	}
	wr := r.Derive("weights")
	for i := range n.W.Data {
		n.W.Data[i] = 0.2 + 0.6*wr.Float32()
	}
	n.W.NormalizeColumns(cfg.NormTarget)
	return n, nil
}

// present runs one sample through the network. If learn is true, STDP and
// normalization are applied. Spike counts per neuron accumulate into the
// returned slice (reused across calls; copy if you need to keep it).
func (n *Network) present(tr coding.Train, learn bool) []int {
	cfg := &n.Cfg
	for j := range n.counts {
		n.counts[j] = 0
	}
	if learn {
		for i := range n.xpre {
			n.xpre[i] = 0
		}
	}
	n.Pool.ResetState()

	for t := 0; t < len(tr); t++ {
		active := tr[t]
		if learn {
			// Decay and update presynaptic traces. Inference never reads
			// the traces (they only feed STDP), so the whole per-step
			// trace pass is skipped when not learning — the counts are
			// unaffected.
			for i := range n.xpre {
				n.xpre[i] *= n.decayPre
			}
			for _, i := range active {
				n.xpre[i] = 1
			}
		}

		// Synaptic drive from this step's input spikes.
		numeric.Fill32(n.drive, 0)
		for _, i := range active {
			numeric.AddTo(n.drive, n.W.Row(int(i)))
		}

		spikes := n.Pool.Step(n.drive, n.spikeBuf)
		if len(spikes) > 0 {
			n.Pool.Inhibit(spikes, cfg.Inhibition)
			for _, j := range spikes {
				n.counts[j]++
			}
			if learn {
				n.applySTDP(spikes)
			}
		}
	}
	if learn {
		n.W.NormalizeColumns(cfg.NormTarget)
		n.W.Clamp(0, cfg.WMax)
	}
	return n.counts
}

// applySTDP applies the Diehl&Cook post-spike rule to the columns of the
// spiking neurons.
func (n *Network) applySTDP(spikes []int32) {
	cfg := &n.Cfg
	cols := n.Cfg.Neurons
	for _, j := range spikes {
		col := int(j)
		for i := 0; i < cfg.Inputs; i++ {
			w := n.W.Data[i*cols+col]
			w += cfg.EtaPost * (n.xpre[i] - cfg.XTar) * (cfg.WMax - w)
			if w < 0 {
				w = 0
			} else if w > cfg.WMax {
				w = cfg.WMax
			}
			n.W.Data[i*cols+col] = w
		}
	}
}

// TrainEpoch presents every sample of the dataset once with learning
// enabled. The stream drives spike encoding.
func (n *Network) TrainEpoch(ds *dataset.Dataset, r *rng.Stream) {
	_ = n.TrainEpochCtx(context.Background(), ds, r)
}

// TrainEpochCtx is TrainEpoch with cooperative cancellation: the context
// is checked between sample presentations, so a cancelled training run
// returns promptly with ctx.Err(). RNG consumption up to the point of
// cancellation is identical to an uncancelled run, which keeps partially
// trained networks deterministic.
func (n *Network) TrainEpochCtx(ctx context.Context, ds *dataset.Dataset, r *rng.Stream) error {
	for s := 0; s < ds.Len(); s++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		tr := n.Cfg.Encoder.Encode(ds.Images[s], n.Cfg.Steps, r.DeriveIndex("enc", s))
		n.present(tr, true)
	}
	return nil
}

// SpikeCounts presents a sample without learning and returns a copy of
// the per-neuron spike counts.
func (n *Network) SpikeCounts(img []byte, r *rng.Stream) []int {
	tr := n.Cfg.Encoder.Encode(img, n.Cfg.Steps, r)
	counts := n.present(tr, false)
	out := make([]int, len(counts))
	copy(out, counts)
	return out
}

// AssignLabels assigns every neuron to the class it spikes most for,
// using the given (typically training) dataset — the unsupervised
// labeling step of Diehl&Cook.
func (n *Network) AssignLabels(ds *dataset.Dataset, r *rng.Stream) {
	_ = n.AssignLabelsCtx(context.Background(), ds, r)
}

// AssignLabelsCtx is AssignLabels with cooperative cancellation, checked
// between samples. On cancellation the existing assignments are left
// untouched (the response tally is discarded).
func (n *Network) AssignLabelsCtx(ctx context.Context, ds *dataset.Dataset, r *rng.Stream) error {
	resp := make([][dataset.NumClasses]float64, n.Cfg.Neurons)
	classN := ds.ClassCounts()
	for s := 0; s < ds.Len(); s++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		counts := n.SpikeCounts(ds.Images[s], r.DeriveIndex("assign", s))
		c := ds.Labels[s]
		for j, k := range counts {
			resp[j][c] += float64(k)
		}
	}
	for j := range resp {
		best, bestV := -1, 0.0
		for c := 0; c < dataset.NumClasses; c++ {
			v := resp[j][c]
			if classN[c] > 0 {
				v /= float64(classN[c])
			}
			if v > bestV {
				best, bestV = c, v
			}
		}
		n.Assign[j] = best // stays -1 only if the neuron never spiked
	}
	return nil
}

// Predict classifies one image using the assigned labels: the class whose
// assigned neurons produced the highest mean spike count wins.
func (n *Network) Predict(img []byte, r *rng.Stream) int {
	tr := n.Cfg.Encoder.Encode(img, n.Cfg.Steps, r)
	return n.classify(n.present(tr, false))
}

// classify scores one sample's per-neuron spike counts against the
// assigned labels — the decision half of Predict, shared with the
// batched evaluation path.
func (n *Network) classify(counts []int) int {
	var score [dataset.NumClasses]float64
	var members [dataset.NumClasses]int
	for j, c := range n.Assign {
		if c >= 0 {
			score[c] += float64(counts[j])
			members[c]++
		}
	}
	best, bestV := 0, -1.0
	for c := 0; c < dataset.NumClasses; c++ {
		if members[c] == 0 {
			continue
		}
		v := score[c] / float64(members[c])
		if v > bestV {
			best, bestV = c, v
		}
	}
	return best
}

// Evaluate returns classification accuracy on a dataset.
func (n *Network) Evaluate(ds *dataset.Dataset, r *rng.Stream) float64 {
	acc, _ := n.EvaluateCtx(context.Background(), ds, r)
	return acc
}

// EvaluateCtx is Evaluate with cooperative cancellation, checked between
// samples; a cancelled evaluation returns 0 and ctx.Err().
func (n *Network) EvaluateCtx(ctx context.Context, ds *dataset.Dataset, r *rng.Stream) (float64, error) {
	if ds.Len() == 0 {
		return 0, nil
	}
	correct := 0
	for s := 0; s < ds.Len(); s++ {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		if n.Predict(ds.Images[s], r.DeriveIndex("eval", s)) == int(ds.Labels[s]) {
			correct++
		}
	}
	return float64(correct) / float64(ds.Len()), nil
}

// WeightCount returns the number of synaptic weights (the data that
// lives in DRAM).
func (n *Network) WeightCount() int { return n.Cfg.Inputs * n.Cfg.Neurons }

// WeightsFlat returns a copy of the weights in row-major (input-major)
// order — the serialization order used for DRAM storage.
func (n *Network) WeightsFlat() []float32 {
	out := make([]float32, len(n.W.Data))
	copy(out, n.W.Data)
	return out
}

// LoadClampFactor bounds the on-load sanitization range: weights read
// back from (possibly corrupted) DRAM are clamped into
// [-LoadClampFactor*WMax, +LoadClampFactor*WMax], and non-finite values
// become zero. The range is deliberately wider than the training range
// [0, WMax]: a flipped exponent MSB cannot blow up the whole network,
// but corrupted weights still act as spurious excitation or inhibition —
// which is exactly the accuracy-degradation mechanism the paper observes
// for MSB flips (Sec. VI-A, label 2).
const LoadClampFactor = 2

// SetWeightsFlat replaces the weights (e.g. after DRAM error injection),
// applying the on-load sanitization described at LoadClampFactor.
func (n *Network) SetWeightsFlat(w []float32) error {
	if len(w) != len(n.W.Data) {
		return fmt.Errorf("snn: weight count %d, want %d", len(w), len(n.W.Data))
	}
	lo := -LoadClampFactor * n.Cfg.WMax
	hi := LoadClampFactor * n.Cfg.WMax
	copy(n.W.Data, w)
	for i, v := range n.W.Data {
		if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
			n.W.Data[i] = 0
		} else if v < lo {
			n.W.Data[i] = lo
		} else if v > hi {
			n.W.Data[i] = hi
		}
	}
	return nil
}

// Clone returns a deep copy of the network (weights, thresholds,
// assignments), sharing only the immutable config and encoder. Used to
// evaluate corrupted weight images without disturbing the original.
func (n *Network) Clone() *Network {
	pool, err := neuron.NewPool(n.Cfg.LIF)
	if err != nil {
		panic("snn: clone of invalid network: " + err.Error())
	}
	copy(pool.Theta, n.Pool.Theta)
	out := &Network{
		Cfg:      n.Cfg,
		W:        n.W.Clone(),
		Pool:     pool,
		Assign:   append([]int(nil), n.Assign...),
		xpre:     make([]float32, n.Cfg.Inputs),
		decayPre: n.decayPre,
		drive:    make([]float32, n.Cfg.Neurons),
		spikeBuf: make([]int32, 0, n.Cfg.Neurons),
		counts:   make([]int, n.Cfg.Neurons),
	}
	return out
}

// PaperSizes returns the network sizes evaluated in the paper:
// N400, N900, N1600, N2500, N3600.
func PaperSizes() []int { return []int{400, 900, 1600, 2500, 3600} }
