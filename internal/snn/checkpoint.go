package snn

import (
	"errors"
	"fmt"
	"math"

	"sparkxd/internal/coding"
	"sparkxd/internal/neuron"
	"sparkxd/internal/numeric"
)

// Checkpoint is the serializable state of a trained network: everything
// needed to rebuild it exactly — configuration, DRAM-resident weights,
// adaptive thresholds, and neuron-class assignments. All fields are plain
// values, so a checkpoint round-trips through encoding/json losslessly
// (float32 weights survive because JSON numbers carry enough decimal
// digits for an exact binary32 round-trip via float64).
type Checkpoint struct {
	Inputs  int `json:"inputs"`
	Neurons int `json:"neurons"`
	Steps   int `json:"steps"`

	LIF neuron.LIFConfig `json:"lif"`

	WMax       float32 `json:"w_max"`
	EtaPost    float32 `json:"eta_post"`
	XTar       float32 `json:"x_tar"`
	TauPre     float64 `json:"tau_pre"`
	Inhibition float32 `json:"inhibition"`
	NormTarget float32 `json:"norm_target"`

	// Encoder identifies the spike encoder ("rate" is the only encoder a
	// checkpoint can carry today; EncoderMaxProb is its parameter).
	Encoder        string  `json:"encoder"`
	EncoderMaxProb float64 `json:"encoder_max_prob"`

	Weights []float32 `json:"weights"`
	Theta   []float32 `json:"theta"`
	Assign  []int     `json:"assign"`
}

// Checkpoint captures the network's state. Only rate-coded networks (the
// paper's configuration) are checkpointable; other encoders have no
// serial form yet.
func (n *Network) Checkpoint() (*Checkpoint, error) {
	rate, ok := n.Cfg.Encoder.(coding.Rate)
	if !ok {
		return nil, fmt.Errorf("snn: encoder %q has no checkpoint form", n.Cfg.Encoder.Name())
	}
	c := &Checkpoint{
		Inputs:         n.Cfg.Inputs,
		Neurons:        n.Cfg.Neurons,
		Steps:          n.Cfg.Steps,
		LIF:            n.Cfg.LIF,
		WMax:           n.Cfg.WMax,
		EtaPost:        n.Cfg.EtaPost,
		XTar:           n.Cfg.XTar,
		TauPre:         n.Cfg.TauPre,
		Inhibition:     n.Cfg.Inhibition,
		NormTarget:     n.Cfg.NormTarget,
		Encoder:        "rate",
		EncoderMaxProb: rate.MaxProb,
		Weights:        append([]float32(nil), n.W.Data...),
		Theta:          append([]float32(nil), n.Pool.Theta...),
		Assign:         append([]int(nil), n.Assign...),
	}
	return c, nil
}

// FromCheckpoint rebuilds a network from its serialized state. The
// result is indistinguishable from the network that produced the
// checkpoint: weights, thresholds, and assignments are restored exactly.
func FromCheckpoint(c *Checkpoint) (*Network, error) {
	if c == nil {
		return nil, errors.New("snn: nil checkpoint")
	}
	if c.Encoder != "rate" {
		return nil, fmt.Errorf("snn: unknown checkpoint encoder %q", c.Encoder)
	}
	cfg := Config{
		Inputs:     c.Inputs,
		Neurons:    c.Neurons,
		Steps:      c.Steps,
		LIF:        c.LIF,
		WMax:       c.WMax,
		EtaPost:    c.EtaPost,
		XTar:       c.XTar,
		TauPre:     c.TauPre,
		Inhibition: c.Inhibition,
		NormTarget: c.NormTarget,
		Encoder:    coding.Rate{MaxProb: c.EncoderMaxProb},
	}
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("snn: invalid checkpoint config: %w", err)
	}
	if want := cfg.Inputs * cfg.Neurons; len(c.Weights) != want {
		return nil, fmt.Errorf("snn: checkpoint has %d weights, want %d", len(c.Weights), want)
	}
	if len(c.Theta) != cfg.Neurons {
		return nil, fmt.Errorf("snn: checkpoint has %d thresholds, want %d", len(c.Theta), cfg.Neurons)
	}
	if len(c.Assign) != cfg.Neurons {
		return nil, fmt.Errorf("snn: checkpoint has %d assignments, want %d", len(c.Assign), cfg.Neurons)
	}
	pool, err := neuron.NewPool(cfg.LIF)
	if err != nil {
		return nil, fmt.Errorf("snn: checkpoint LIF config: %w", err)
	}
	copy(pool.Theta, c.Theta)
	w := numeric.NewMatrix(cfg.Inputs, cfg.Neurons)
	copy(w.Data, c.Weights)
	n := &Network{
		Cfg:      cfg,
		W:        w,
		Pool:     pool,
		Assign:   append([]int(nil), c.Assign...),
		xpre:     make([]float32, cfg.Inputs),
		decayPre: float32(math.Exp(-cfg.LIF.DT / cfg.TauPre)),
		drive:    make([]float32, cfg.Neurons),
		spikeBuf: make([]int32, 0, cfg.Neurons),
		counts:   make([]int, cfg.Neurons),
	}
	return n, nil
}
