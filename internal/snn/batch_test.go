package snn

import (
	"context"
	"testing"

	"sparkxd/internal/rng"
)

// trainedNet returns a briefly trained, label-assigned network so Theta
// is non-zero and accuracy is meaningful.
func trainedNet(t *testing.T, neurons int) *Network {
	t.Helper()
	net := smallNet(t, neurons)
	train, _ := smallData(t, 6, 1)
	net.TrainEpoch(train, rng.New(4))
	net.AssignLabels(train, rng.New(5))
	return net
}

// corruptedWeights returns the network's weights with a sparse sign/scale
// corruption, standing in for a DRAM bit-error pass.
func corruptedWeights(net *Network, seed uint64) []float32 {
	w := net.WeightsFlat()
	r := rng.New(seed)
	for i := range w {
		if r.Bernoulli(0.01) {
			w[i] = -w[i] * 3
		}
	}
	return w
}

// TestEvaluateBatchMatchesScalar pins the tentpole contract: the batched
// drive-precompute evaluation path returns bit-identical accuracy to the
// scalar per-sample EvaluateCtx path, for every worker count.
func TestEvaluateBatchMatchesScalar(t *testing.T) {
	net := trainedNet(t, 15)
	_, test := smallData(t, 6, 24)
	ctx := context.Background()

	want, err := net.Clone().EvaluateCtx(ctx, test, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 3, 8} {
		got, err := net.Clone().EvaluateBatch(ctx, test, rng.New(7), workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if got != want {
			t.Fatalf("workers=%d: EvaluateBatch = %v, EvaluateCtx = %v", workers, got, want)
		}
	}
}

// TestEncodeDatasetWorkerInvariance requires the pre-encoded spike
// trains to be identical for any encode worker count (per-sample streams
// are derived, not consumed, from the parent).
func TestEncodeDatasetWorkerInvariance(t *testing.T) {
	net := smallNet(t, 12)
	_, test := smallData(t, 1, 17)
	ctx := context.Background()

	base, err := net.EncodeDataset(ctx, test, rng.New(7), 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 5, 8} {
		es, err := net.EncodeDataset(ctx, test, rng.New(7), workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(es.trains) != len(base.trains) {
			t.Fatalf("workers=%d: %d trains, want %d", workers, len(es.trains), len(base.trains))
		}
		for s := range es.trains {
			a, b := es.trains[s], base.trains[s]
			if len(a) != len(b) {
				t.Fatalf("workers=%d sample %d: %d steps, want %d", workers, s, len(a), len(b))
			}
			for st := range a {
				if len(a[st]) != len(b[st]) {
					t.Fatalf("workers=%d sample %d step %d: %d spikes, want %d", workers, s, st, len(a[st]), len(b[st]))
				}
				for k := range a[st] {
					if a[st][k] != b[st][k] {
						t.Fatalf("workers=%d sample %d step %d spike %d: %d, want %d", workers, s, st, k, a[st][k], b[st][k])
					}
				}
			}
		}
	}
}

// TestEvaluateEncodedBatchSizeInvariance sweeps dataset sizes around the
// drive-block boundary (batch 1, below, exactly, and above one block) so
// the block pipeline's edge cases are all exercised against the scalar
// path.
func TestEvaluateEncodedBatchSizeInvariance(t *testing.T) {
	net := trainedNet(t, 10)
	ctx := context.Background()
	workers := 2
	block := workers * driveBlockPerWorker
	for _, n := range []int{1, block - 1, block, block + 1, 2*block + 3} {
		_, test := smallData(t, 1, n)
		want, err := net.Clone().EvaluateCtx(ctx, test, rng.New(11))
		if err != nil {
			t.Fatal(err)
		}
		es, err := net.EncodeDataset(ctx, test, rng.New(11), workers)
		if err != nil {
			t.Fatal(err)
		}
		got, err := net.Clone().EvaluateEncoded(ctx, es, workers)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("batch=%d: EvaluateEncoded = %v, EvaluateCtx = %v", n, got, want)
		}
	}
}

// TestEvaluatorBatchMatchesFreshClone pins the evaluator's batched entry
// point (encoded-set cache + worker fan-out) against the seed path: a
// fresh Clone + SetWeightsFlat + EvaluateCtx per weight image.
func TestEvaluatorBatchMatchesFreshClone(t *testing.T) {
	net := trainedNet(t, 14)
	_, test := smallData(t, 6, 12)
	ctx := context.Background()

	imgs := [][]float32{corruptedWeights(net, 100), corruptedWeights(net, 101), corruptedWeights(net, 102)}
	want := make([]float64, len(imgs))
	for k, w := range imgs {
		clone := net.Clone()
		if err := clone.SetWeightsFlat(w); err != nil {
			t.Fatal(err)
		}
		var err error
		want[k], err = clone.EvaluateCtx(ctx, test, rng.New(7))
		if err != nil {
			t.Fatal(err)
		}
	}

	for _, workers := range []int{1, 8} {
		ev := NewEvaluatorWorkers(net, workers)
		// Two passes over the images: the second pass hits the encoded
		// cache and the restored Theta, and must not drift.
		for pass := 0; pass < 2; pass++ {
			for k, w := range imgs {
				got, err := ev.EvaluateBatch(ctx, test, w, rng.New(7))
				if err != nil {
					t.Fatal(err)
				}
				if got != want[k] {
					t.Fatalf("workers=%d pass=%d image %d: EvaluateBatch = %v, fresh clone = %v",
						workers, pass, k, got, want[k])
				}
			}
		}
	}
}

// TestEvaluateEncodedSharedSet mirrors the engine's usage: one encoded
// set shared by several evaluators (distinct clones), all bit-identical
// to the scalar path.
func TestEvaluateEncodedSharedSet(t *testing.T) {
	net := trainedNet(t, 12)
	_, test := smallData(t, 6, 10)
	ctx := context.Background()
	w := corruptedWeights(net, 200)

	clone := net.Clone()
	if err := clone.SetWeightsFlat(w); err != nil {
		t.Fatal(err)
	}
	want, err := clone.EvaluateCtx(ctx, test, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}

	es, err := net.EncodeDataset(ctx, test, rng.New(3), 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		ev := NewEvaluatorWorkers(net, i+1)
		got, err := ev.EvaluateWeightsEncoded(ctx, es, w)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("evaluator %d: %v, want %v", i, got, want)
		}
	}
}

// TestEvaluateEncodedRejectsMismatchedConfig guards the footgun of
// reusing an encoded set across incompatible network configs.
func TestEvaluateEncodedRejectsMismatchedConfig(t *testing.T) {
	net := smallNet(t, 10)
	_, test := smallData(t, 1, 4)
	ctx := context.Background()
	es, err := net.EncodeDataset(ctx, test, rng.New(1), 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(10)
	cfg.Steps = net.Cfg.Steps + 1
	other, err := New(cfg, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := other.EvaluateEncoded(ctx, es, 1); err == nil {
		t.Fatal("EvaluateEncoded accepted a set encoded with different steps")
	}
}
