package snn

import (
	"context"
	"testing"

	"sparkxd/internal/dataset"
	"sparkxd/internal/rng"
)

// TestEvaluatorMatchesFreshClone pins the Evaluator's contract: repeated
// evaluations through one Evaluator are bit-identical to evaluating a
// fresh Clone per weight image. This guards the adaptive-threshold
// restore — Pool.Step mutates Theta during inference, so a naive reused
// clone would drift with evaluation order.
func TestEvaluatorMatchesFreshClone(t *testing.T) {
	net, err := New(DefaultConfig(15), rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	cfg := dataset.DefaultConfig(dataset.MNISTLike)
	cfg.Train, cfg.Test = 4, 10
	train, test, err := dataset.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Train a little so Theta is non-zero and the restore actually
	// matters.
	net.TrainEpoch(train, rng.New(4))
	net.AssignLabels(train, rng.New(5))

	// Two corrupted weight images.
	imgs := make([][]float32, 2)
	for k := range imgs {
		w := net.WeightsFlat()
		r := rng.New(uint64(100 + k))
		for i := range w {
			if r.Bernoulli(0.01) {
				w[i] = -w[i] * 3
			}
		}
		imgs[k] = w
	}

	want := make([]float64, len(imgs))
	for k, w := range imgs {
		clone := net.Clone()
		if err := clone.SetWeightsFlat(w); err != nil {
			t.Fatal(err)
		}
		want[k], err = clone.EvaluateCtx(context.Background(), test, rng.New(7))
		if err != nil {
			t.Fatal(err)
		}
	}

	ev := NewEvaluator(net)
	// Evaluate in order, reversed, and repeated: every answer must match
	// the fresh-clone reference regardless of history.
	order := []int{0, 1, 1, 0, 0}
	for _, k := range order {
		got, err := ev.EvaluateWeights(context.Background(), test, imgs[k], rng.New(7))
		if err != nil {
			t.Fatal(err)
		}
		if got != want[k] {
			t.Fatalf("Evaluator image %d = %v, fresh clone = %v", k, got, want[k])
		}
	}
}
