package snn

import (
	"context"

	"sparkxd/internal/coding"
	"sparkxd/internal/dataset"
	"sparkxd/internal/rng"
)

// Evaluator measures one network's accuracy under many corrupted weight
// images without per-image allocation — the batched evaluate entry point
// of the scenario-sweep engine. It owns a single reusable clone of the
// source network; each evaluation restores the clone to the source
// network's adaptive-threshold state before loading the weight image, so
// repeated evaluations are bit-identical to evaluating a fresh Clone each
// time (Pool.Step mutates Theta even during inference, which would
// otherwise make results depend on evaluation order).
//
// The evaluator also keeps a single-entry cache of the last encoded
// dataset: spike trains depend only on (dataset, encoder, steps, stream
// seed identity), all of which are shared across the weight images of a
// sweep, so encoding — a large fraction of scalar evaluation time — runs
// once per evaluator instead of once per weight image.
//
// An Evaluator is single-goroutine; create one per concurrent worker.
// The workers count (NewEvaluatorWorkers) parallelizes WITHIN one
// evaluation via the drive-precompute pipeline of EvaluateEncoded;
// results are bit-identical for any value.
type Evaluator struct {
	clone   *Network
	theta   []float32 // pristine adaptive thresholds of the source network
	srcEnc  coding.Encoder
	workers int
	enc     *EncodedSet
}

// NewEvaluator returns an evaluator over a private clone of n. Later
// mutations of n do not affect the evaluator. Evaluations run
// single-threaded; use NewEvaluatorWorkers for intra-evaluation
// parallelism.
func NewEvaluator(n *Network) *Evaluator { return NewEvaluatorWorkers(n, 1) }

// NewEvaluatorWorkers is NewEvaluator with intra-evaluation parallelism:
// each evaluation encodes and accumulates synaptic drive on up to
// workers goroutines (workers <= 0 means GOMAXPROCS). Accuracy is
// bit-identical for any worker count.
func NewEvaluatorWorkers(n *Network, workers int) *Evaluator {
	c := n.Clone()
	return &Evaluator{
		clone:   c,
		theta:   append([]float32(nil), c.Pool.Theta...),
		srcEnc:  c.Cfg.Encoder,
		workers: workers,
	}
}

// SetEncoder switches the evaluator's clone to enc (nil restores the
// source network's encoder), so pre-encoded sets built with a
// non-default encoder pass EvaluateEncoded's identity check. Evaluation
// reads only the pre-encoded trains — the encoder never feeds the
// neuron-dynamics pass — so accuracy over a given EncodedSet is
// unaffected by which encoder was last set.
func (e *Evaluator) SetEncoder(enc coding.Encoder) {
	if enc == nil {
		enc = e.srcEnc
	}
	e.clone.Cfg.Encoder = enc
}

// EvaluateWeights loads the weight image w into the evaluator's clone
// (with the SetWeightsFlat on-load sanitization) and returns the clone's
// accuracy on ds. The result is identical to
// n.Clone().SetWeightsFlat(w) + EvaluateCtx on a fresh clone.
func (e *Evaluator) EvaluateWeights(ctx context.Context, ds *dataset.Dataset, w []float32, r *rng.Stream) (float64, error) {
	return e.EvaluateBatch(ctx, ds, w, r)
}

// EvaluateBatch evaluates one weight image over every sample of ds as a
// single batched job: spike trains come from the evaluator's encoded-set
// cache (rebuilt only when the dataset or stream identity changes), and
// drive accumulation fans out across the evaluator's workers while the
// theta-chained neuron updates consume in sample order. Bit-identical to
// EvaluateWeights on a fresh single-threaded evaluator.
func (e *Evaluator) EvaluateBatch(ctx context.Context, ds *dataset.Dataset, w []float32, r *rng.Stream) (float64, error) {
	es, err := e.encodedFor(ctx, ds, r)
	if err != nil {
		return 0, err
	}
	return e.EvaluateWeightsEncoded(ctx, es, w)
}

// EvaluateWeightsEncoded is EvaluateBatch against an externally built
// encoded set — e.g. one shared by every worker of a sweep, so a grid of
// hundreds of scenarios encodes the test set exactly once instead of
// once per evaluator.
func (e *Evaluator) EvaluateWeightsEncoded(ctx context.Context, es *EncodedSet, w []float32) (float64, error) {
	copy(e.clone.Pool.Theta, e.theta)
	if err := e.clone.SetWeightsFlat(w); err != nil {
		return 0, err
	}
	return e.clone.EvaluateEncoded(ctx, es, e.workers)
}

// encodedFor returns the cached encoded set if it matches (ds, r),
// otherwise encodes ds and replaces the cache. DeriveIndex is a pure
// function of the stream's seed words, so a matching seed identity
// guarantees the cached trains equal the ones r would derive.
func (e *Evaluator) encodedFor(ctx context.Context, ds *dataset.Dataset, r *rng.Stream) (*EncodedSet, error) {
	if e.enc != nil && e.enc.Matches(&e.clone.Cfg, ds, r) {
		return e.enc, nil
	}
	es, err := e.clone.EncodeDataset(ctx, ds, r, e.workers)
	if err != nil {
		return nil, err
	}
	e.enc = es
	return es, nil
}
