package snn

import (
	"context"

	"sparkxd/internal/dataset"
	"sparkxd/internal/rng"
)

// Evaluator measures one network's accuracy under many corrupted weight
// images without per-image allocation — the batched evaluate entry point
// of the scenario-sweep engine. It owns a single reusable clone of the
// source network; each EvaluateWeights call restores the clone to the
// source network's adaptive-threshold state before loading the weight
// image, so repeated evaluations are bit-identical to evaluating a fresh
// Clone each time (Pool.Step mutates Theta even during inference, which
// would otherwise make results depend on evaluation order).
//
// An Evaluator is single-goroutine; create one per concurrent worker.
type Evaluator struct {
	clone *Network
	theta []float32 // pristine adaptive thresholds of the source network
}

// NewEvaluator returns an evaluator over a private clone of n. Later
// mutations of n do not affect the evaluator.
func NewEvaluator(n *Network) *Evaluator {
	c := n.Clone()
	return &Evaluator{clone: c, theta: append([]float32(nil), c.Pool.Theta...)}
}

// EvaluateWeights loads the weight image w into the evaluator's clone
// (with the SetWeightsFlat on-load sanitization) and returns the clone's
// accuracy on ds. The result is identical to
// n.Clone().SetWeightsFlat(w) + EvaluateCtx on a fresh clone.
func (e *Evaluator) EvaluateWeights(ctx context.Context, ds *dataset.Dataset, w []float32, r *rng.Stream) (float64, error) {
	copy(e.clone.Pool.Theta, e.theta)
	if err := e.clone.SetWeightsFlat(w); err != nil {
		return 0, err
	}
	return e.clone.EvaluateCtx(ctx, ds, r)
}
