package worker

import (
	"net/http"
	"time"

	"sparkxd/internal/metrics"
	"sparkxd/internal/store"
)

// workerMetrics is the worker's instrument set, served by
// MetricsHandler on a local address (the worker has no public API; the
// endpoint exists purely for scraping). Names follow DESIGN.md §11 with
// a sparkxd_worker_ prefix for worker-specific series; the warm-System
// cache instruments reuse the coordinator's names — same cache, same
// meaning, different process.
type workerMetrics struct {
	reg *metrics.Registry

	// heartbeats counts lease renewals by outcome: ok | lost | error
	// (transport failure; the lease may still be alive).
	heartbeats *metrics.CounterVec
	// jobs counts leased executions by outcome:
	// done | failed | released | abandoned.
	jobs *metrics.CounterVec
	// uploadBytes totals artifact envelope bytes PUT to the coordinator.
	uploadBytes *metrics.Counter
	// stageDur times pipeline stages executed by this worker.
	stageDur *metrics.HistogramVec
	// queueDepth mirrors the coordinator backlog from the latest lease
	// response (a scheduling signal, not local state).
	queueDepth *metrics.Gauge
}

func newWorkerMetrics(w *Worker) *workerMetrics {
	r := metrics.NewRegistry()
	m := &workerMetrics{
		reg: r,
		heartbeats: r.NewCounterVec("sparkxd_worker_heartbeats_total",
			"Lease renewals by outcome.", "outcome"),
		jobs: r.NewCounterVec("sparkxd_worker_jobs_total",
			"Leased job executions by outcome.", "outcome"),
		uploadBytes: r.NewCounter("sparkxd_worker_upload_bytes_total",
			"Artifact envelope bytes uploaded to the coordinator."),
		stageDur: r.NewHistogramVec("sparkxd_job_stage_duration_seconds",
			"Wall time of pipeline stages executed by this worker.", metrics.DefLatencyBuckets, "stage"),
		queueDepth: r.NewGauge("sparkxd_worker_coordinator_queue_depth",
			"Coordinator queue depth reported by the latest lease response."),
	}
	r.NewGaugeFunc("sparkxd_worker_leases_held",
		"Leased jobs executing right now.",
		func() float64 { return float64(w.runningCount()) })
	r.NewGaugeFunc("sparkxd_worker_slots",
		"Configured concurrent execution slots.",
		func() float64 { return float64(w.slots) })
	r.NewGaugeFunc("sparkxd_warm_systems",
		"Warm System engines currently cached (bounded by -max-warm-systems).",
		func() float64 { return float64(w.systems.Len()) })
	r.NewCounterFunc("sparkxd_warm_systems_hits_total",
		"Warm-System cache acquisitions served by an existing engine.",
		func() uint64 { h, _, _ := w.systems.Stats(); return h })
	r.NewCounterFunc("sparkxd_warm_systems_misses_total",
		"Warm-System cache acquisitions that built a new engine.",
		func() uint64 { _, m, _ := w.systems.Stats(); return m })
	r.NewCounterFunc("sparkxd_warm_systems_evictions_total",
		"Warm System engines evicted by the LRU bound.",
		func() uint64 { _, _, e := w.systems.Stats(); return e })
	// A worker uploading through a read-through composite (remote store
	// + local cache) surfaces the cache's counters, mirroring the
	// coordinator's series names.
	if rt, ok := w.st.(*store.ReadThrough); ok {
		r.NewCounterFunc("sparkxd_store_cache_hits_total",
			"Read-through store Gets served entirely from the local cache.",
			func() uint64 { h, _, _ := rt.Stats(); return h })
		r.NewCounterFunc("sparkxd_store_cache_misses_total",
			"Read-through store Gets that consulted the remote store.",
			func() uint64 { _, m, _ := rt.Stats(); return m })
		r.NewCounterFunc("sparkxd_store_cache_fills_total",
			"Remote envelopes copied into the read-through local cache.",
			func() uint64 { _, _, f := rt.Stats(); return f })
	}
	return m
}

// observeStage is the jobrun.StageObserver of this worker's jobs.
func (m *workerMetrics) observeStage(stage string, d time.Duration) {
	m.stageDur.With(stage).Observe(d.Seconds())
}

// MetricsHandler serves the worker's Prometheus metrics; mount it on a
// local listener (`sparkxd worker -metrics`).
func (w *Worker) MetricsHandler() http.Handler { return w.metrics.reg.Handler() }
