// End-to-end tests of the fleet worker against an in-process
// coordinator: lease → execute → event bridging → upload → complete,
// plus the graceful drain path.
package worker_test

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"sparkxd"
	"sparkxd/internal/server"
	"sparkxd/internal/worker"
)

func tinyConfig() sparkxd.ConfigSpec {
	return sparkxd.ConfigSpec{
		Neurons:      40,
		TrainSamples: 50,
		TestSamples:  25,
		BaseEpochs:   1,
		BERSchedule:  []float64{1e-5, 1e-3},
	}
}

func newFleet(t *testing.T, slots int) (*server.Server, *httptest.Server, *worker.Worker, context.CancelFunc) {
	t.Helper()
	srv, err := server.New(server.Config{
		Workers:  2,
		Dispatch: server.DispatchFleet,
		LeaseTTL: time.Second,
		Logf:     t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	w, err := worker.New(worker.Config{
		Coordinator:   ts.URL,
		Name:          "test-worker",
		Slots:         slots,
		Poll:          30 * time.Millisecond,
		FlushInterval: 30 * time.Millisecond,
		DrainTimeout:  time.Minute,
		Logf:          t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { defer close(done); _ = w.Run(ctx) }()
	t.Cleanup(func() { cancel(); <-done })
	return srv, ts, w, cancel
}

func waitTerminal(t *testing.T, srv *server.Server, id string) sparkxd.JobStatus {
	t.Helper()
	deadline := time.Now().Add(3 * time.Minute)
	for time.Now().Before(deadline) {
		status, ok := srv.Job(id)
		if !ok {
			t.Fatalf("job %s vanished", id)
		}
		if status.State.Terminal() {
			return status
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish in time", id)
	return sparkxd.JobStatus{}
}

// A fleet-dispatched pipeline job is leased, executed remotely, its
// stage events are bridged into the coordinator's SSE feed, and its
// artifacts land in the coordinator's store.
func TestWorkerExecutesLeasedJob(t *testing.T) {
	if testing.Short() {
		t.Skip("training skipped in -short mode")
	}
	srv, ts, _, _ := newFleet(t, 2)
	status, _, err := srv.Submit(sparkxd.JobSpec{
		Kind: sparkxd.JobPipeline, Stage: "train", Config: tinyConfig(),
	})
	if err != nil {
		t.Fatal(err)
	}
	final := waitTerminal(t, srv, status.ID)
	if final.State != sparkxd.JobDone {
		t.Fatalf("job failed: %s", final.Error)
	}
	key, ok := final.Artifacts["baseline"]
	if !ok {
		t.Fatalf("no baseline artifact (have %v)", final.Artifacts)
	}
	m, err := sparkxd.GetTrainedModel(srv.Store(), key)
	if err != nil {
		t.Fatalf("uploaded model unreadable: %v", err)
	}
	if m.Neurons != 40 || m.WeightCount() == 0 {
		t.Errorf("uploaded model looks wrong: neurons=%d weights=%d", m.Neurons, m.WeightCount())
	}

	// The worker must have registered, and the job's event log must
	// contain bridged engine events (stage "train"), not just the
	// coordinator's own lifecycle markers.
	workers := srv.Workers()
	if len(workers) != 1 || workers[0].Name != "test-worker" {
		t.Errorf("fleet registry = %+v, want one test-worker", workers)
	}
	resp, err := http.Get(ts.URL + "/v1/jobs/" + status.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stages []string
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		data, ok := strings.CutPrefix(sc.Text(), "data: ")
		if !ok {
			continue
		}
		var ev sparkxd.Event
		if err := json.Unmarshal([]byte(data), &ev); err != nil {
			t.Fatalf("bad event %q: %v", data, err)
		}
		stages = append(stages, ev.Stage+"/"+ev.Phase)
	}
	joined := strings.Join(stages, " ")
	if !strings.Contains(joined, "job/leased") {
		t.Errorf("event log missing lease marker: %v", stages)
	}
	if !strings.Contains(joined, "train/") {
		t.Errorf("no bridged worker engine events in %v", stages)
	}
	if stages[len(stages)-1] != "job/done" {
		t.Errorf("stream did not end with job/done: %v", stages)
	}
}

// Cancelling the worker's context while a job is in flight drains: the
// job completes normally inside the drain window rather than being
// abandoned to lease expiry.
func TestWorkerDrainCompletesInFlight(t *testing.T) {
	if testing.Short() {
		t.Skip("training skipped in -short mode")
	}
	srv, _, _, stopWorker := newFleet(t, 1)
	status, _, err := srv.Submit(sparkxd.JobSpec{
		Kind: sparkxd.JobPipeline, Stage: "train", Config: tinyConfig(),
	})
	if err != nil {
		t.Fatal(err)
	}
	// Wait for the lease to be taken, then signal the worker.
	deadline := time.Now().Add(time.Minute)
	for {
		st, _ := srv.Job(status.ID)
		if st.State == sparkxd.JobRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never leased")
		}
		time.Sleep(10 * time.Millisecond)
	}
	stopWorker()
	final := waitTerminal(t, srv, status.ID)
	if final.State != sparkxd.JobDone {
		t.Fatalf("drained job state = %s (%s), want done", final.State, final.Error)
	}
}
