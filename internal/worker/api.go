package worker

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"sparkxd"
	"sparkxd/internal/fleetapi"
)

// ErrLeaseLost marks a coordinator answer of 410 Gone: the lease
// expired or was revoked, and the job must be abandoned immediately —
// another worker may already own it.
var ErrLeaseLost = errors.New("worker: lease lost")

// coordClient speaks the fleetapi lease protocol to one coordinator.
type coordClient struct {
	base string
	hc   *http.Client
}

func newCoordClient(baseURL string, hc *http.Client) (*coordClient, error) {
	base := strings.TrimRight(baseURL, "/")
	if base == "" {
		return nil, errors.New("worker: empty coordinator URL")
	}
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	if hc == nil {
		hc = &http.Client{Timeout: 30 * time.Second}
	}
	return &coordClient{base: base, hc: hc}, nil
}

// register announces the worker and returns the coordinator's lease
// parameters.
func (c *coordClient) register(ctx context.Context, name string, slots int) (fleetapi.RegisterResponse, error) {
	var resp fleetapi.RegisterResponse
	err := c.do(ctx, http.MethodPost, "/v1/workers",
		fleetapi.RegisterRequest{Name: name, Slots: slots}, &resp)
	return resp, err
}

// acquire leases up to capacity queued jobs.
func (c *coordClient) acquire(ctx context.Context, name string, capacity int) (fleetapi.LeaseResponse, error) {
	var resp fleetapi.LeaseResponse
	err := c.do(ctx, http.MethodPost, "/v1/leases",
		fleetapi.LeaseRequest{Worker: name, Capacity: capacity}, &resp)
	return resp, err
}

// renew heartbeats one lease.
func (c *coordClient) renew(ctx context.Context, leaseID string) error {
	return c.do(ctx, http.MethodPost, "/v1/leases/"+leaseID+"/renew", struct{}{}, nil)
}

// release hands a lease back for immediate requeue (graceful drain).
func (c *coordClient) release(ctx context.Context, leaseID string) error {
	return c.do(ctx, http.MethodDelete, "/v1/leases/"+leaseID, nil, nil)
}

// postEvents forwards a batch of engine events for SSE bridging.
func (c *coordClient) postEvents(ctx context.Context, leaseID string, evs []sparkxd.Event) error {
	return c.do(ctx, http.MethodPost, "/v1/leases/"+leaseID+"/events", evs, nil)
}

// complete finishes the leased job with either an uploaded artifact
// role map or a failure message, plus the worker's completion-time
// trace spans.
func (c *coordClient) complete(ctx context.Context, leaseID string, arts map[string]sparkxd.ArtifactKey, failure string, spans []sparkxd.TraceSpan) error {
	return c.do(ctx, http.MethodPost, "/v1/leases/"+leaseID+"/complete",
		fleetapi.CompleteRequest{Artifacts: arts, Error: failure, Spans: spans}, nil)
}

// putArtifact uploads one canonical envelope to the coordinator's
// store; the server re-verifies the bytes against the content address.
func (c *coordClient) putArtifact(ctx context.Context, key sparkxd.ArtifactKey, envelope []byte) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPut,
		c.base+"/v1/artifacts/"+string(key), bytes.NewReader(envelope))
	if err != nil {
		return fmt.Errorf("worker: %w", err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.hc.Do(req)
	if err != nil {
		return fmt.Errorf("worker: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return errorFrom(resp)
	}
	return nil
}

// do performs one JSON round trip. body == nil sends no body; out ==
// nil discards the response body.
func (c *coordClient) do(ctx context.Context, method, path string, body, out any) error {
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			return fmt.Errorf("worker: marshal: %w", err)
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return fmt.Errorf("worker: %w", err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return fmt.Errorf("worker: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return errorFrom(resp)
	}
	if out == nil {
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("worker: decode response: %w", err)
	}
	return nil
}

// errorFrom turns a non-2xx response into a typed error; 410 Gone maps
// to ErrLeaseLost.
func errorFrom(resp *http.Response) error {
	var ae struct {
		Error string `json:"error"`
	}
	msg := resp.Status
	if b, err := io.ReadAll(io.LimitReader(resp.Body, 1<<16)); err == nil {
		if json.Unmarshal(b, &ae) == nil && ae.Error != "" {
			msg = ae.Error
		}
	}
	if resp.StatusCode == http.StatusGone {
		return fmt.Errorf("%w: %s", ErrLeaseLost, msg)
	}
	return fmt.Errorf("worker: coordinator returned %d: %s", resp.StatusCode, msg)
}
