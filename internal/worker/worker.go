// Package worker is the fleet-execution half of the sparkxd job
// service (DESIGN.md §9): a `sparkxd worker` process joins a
// coordinator (`sparkxd serve -dispatch fleet|hybrid`), leases queued
// jobs over HTTP, executes them through the exact same engine/pipeline
// path the coordinator would use locally (internal/jobrun), streams
// stage events back for SSE bridging, uploads result envelopes into the
// coordinator's content-addressed store, and completes the lease.
//
// Liveness is lease-based: the worker heartbeats each lease a few times
// per TTL window; a worker that crashes or partitions simply goes
// silent, its leases expire, and the coordinator requeues the jobs with
// the dead worker excluded. Because job IDs are content hashes and
// execution is deterministic, the re-executed job provably reproduces
// byte-identical artifacts — requeue is always safe.
package worker

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"runtime"
	"strconv"
	"sync"
	"time"

	"sparkxd"
	"sparkxd/internal/fleetapi"
	"sparkxd/internal/jobrun"
	"sparkxd/internal/logging"
	"sparkxd/internal/store"
	"sparkxd/internal/tracing"
)

// Config parameterizes a Worker.
type Config struct {
	// Coordinator is the job server's base URL (e.g.
	// "http://127.0.0.1:8080").
	Coordinator string
	// Name identifies the worker to the coordinator (default:
	// "<hostname>-<pid>").
	Name string
	// Slots is how many leased jobs execute concurrently (<= 0:
	// GOMAXPROCS). Each job's sweep stage additionally fans out on the
	// local internal/sched pool sized by the same value.
	Slots int
	// MaxWarmSystems bounds the warm-System engine cache; 0 keeps it
	// unbounded (mirrors the coordinator's -max-warm-systems).
	MaxWarmSystems int
	// Poll is how long an idle worker waits between lease requests
	// (zero: 500ms).
	Poll time.Duration
	// DrainTimeout bounds how long a signalled worker keeps finishing
	// in-flight jobs before releasing their leases (zero: 30s).
	DrainTimeout time.Duration
	// FlushInterval batches forwarded engine events (zero: 200ms).
	FlushInterval time.Duration
	// HTTPClient overrides the coordinator transport (nil: 30s-timeout
	// default client). A remote Store opened with the same client shares
	// its connection pool.
	HTTPClient *http.Client
	// Store, when non-nil, receives result artifacts directly (e.g. the
	// federation's shared remote store, optionally wrapped read-through)
	// instead of uploading them through the coordinator's artifact
	// endpoint. The coordinator must be backed by the same store, or
	// completions will fail its artifact verification.
	Store sparkxd.ArtifactStore
	// Logger, when non-nil, receives structured logs (job/lease/trace
	// IDs as attrs). Takes precedence over Logf.
	Logger *slog.Logger
	// Logf, when non-nil and Logger is nil, receives the same records
	// flattened to single printf-style lines (legacy hook).
	Logf func(format string, args ...any)
}

// Worker leases and executes jobs from one coordinator.
type Worker struct {
	name          string
	slots         int
	poll          time.Duration
	drainTimeout  time.Duration
	flushInterval time.Duration
	log           *slog.Logger
	api           *coordClient
	st            sparkxd.ArtifactStore // nil: upload via the coordinator

	ttl time.Duration // coordinator's lease TTL (learned at register)

	metrics *workerMetrics

	mu      sync.Mutex
	running int
	systems *jobrun.Systems // shared warm engines, as on the coordinator
	byFP    map[string]map[*task]struct{}
}

// task is one in-flight leased job.
type task struct {
	grant  fleetapi.Grant
	cancel context.CancelFunc

	mu      sync.Mutex
	pending []sparkxd.Event
	lost    bool
}

func (t *task) markLost() {
	t.mu.Lock()
	t.lost = true
	t.mu.Unlock()
	t.cancel()
}

func (t *task) isLost() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.lost
}

func (t *task) append(ev sparkxd.Event) {
	t.mu.Lock()
	t.pending = append(t.pending, ev)
	t.mu.Unlock()
}

func (t *task) take() []sparkxd.Event {
	t.mu.Lock()
	evs := t.pending
	t.pending = nil
	t.mu.Unlock()
	return evs
}

// New builds a Worker (it does not contact the coordinator yet; Run
// registers and retries until the coordinator answers).
func New(cfg Config) (*Worker, error) {
	api, err := newCoordClient(cfg.Coordinator, cfg.HTTPClient)
	if err != nil {
		return nil, err
	}
	name := cfg.Name
	if name == "" {
		host, _ := os.Hostname()
		if host == "" {
			host = "worker"
		}
		name = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	slots := cfg.Slots
	if slots <= 0 {
		slots = runtime.GOMAXPROCS(0)
	}
	poll := cfg.Poll
	if poll <= 0 {
		poll = 500 * time.Millisecond
	}
	drain := cfg.DrainTimeout
	if drain <= 0 {
		drain = 30 * time.Second
	}
	flush := cfg.FlushInterval
	if flush <= 0 {
		flush = 200 * time.Millisecond
	}
	w := &Worker{
		name:          name,
		slots:         slots,
		poll:          poll,
		drainTimeout:  drain,
		flushInterval: flush,
		log:           logging.New(cfg.Logger, cfg.Logf),
		api:           api,
		st:            cfg.Store,
		byFP:          make(map[string]map[*task]struct{}),
	}
	w.systems = jobrun.NewSystems(slots, cfg.MaxWarmSystems, w.fanout)
	w.metrics = newWorkerMetrics(w)
	return w, nil
}

// Name returns the worker's fleet name.
func (w *Worker) Name() string { return w.name }

// Run registers with the coordinator and processes leased jobs until
// ctx is cancelled, then drains: in-flight jobs get up to DrainTimeout
// to finish (and complete normally); whatever is still running has its
// lease released so the coordinator requeues it immediately. Returns
// nil on a clean (possibly drained) shutdown.
func (w *Worker) Run(ctx context.Context) error {
	if err := w.register(ctx); err != nil {
		return err
	}
	if ctx.Err() != nil {
		return nil
	}

	// jobCtx outlives ctx so draining jobs keep running after the
	// shutdown signal; it is only cancelled once the drain window ends.
	jobCtx, cancelJobs := context.WithCancel(context.Background())
	defer cancelJobs()
	var wg sync.WaitGroup

	for ctx.Err() == nil {
		granted := 0
		if free := w.freeSlots(); free > 0 {
			resp, err := w.api.acquire(ctx, w.name, free)
			if err != nil {
				if ctx.Err() == nil {
					w.log.Warn("lease request failed", "err", err)
				}
			} else {
				w.metrics.queueDepth.Set(int64(resp.QueueDepth))
			}
			grants := resp.Leases
			for _, g := range grants {
				g := g
				w.addRunning(1)
				wg.Add(1)
				go func() {
					defer wg.Done()
					defer w.addRunning(-1)
					w.execute(jobCtx, g)
				}()
			}
			granted = len(grants)
		}
		if granted == 0 {
			select {
			case <-ctx.Done():
			case <-time.After(w.poll):
			}
		}
	}

	// Drain: let in-flight jobs finish inside the window.
	if n := w.runningCount(); n > 0 {
		w.log.Info("draining", "inflight", n, "timeout", w.drainTimeout)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(w.drainTimeout):
		w.log.Warn("drain timeout: releasing remaining leases")
		cancelJobs() // execute() sees jobCtx cancelled and releases the lease
		<-done
	}
	return nil
}

// register announces the worker, retrying (the coordinator may start
// after its workers) until ctx is cancelled.
func (w *Worker) register(ctx context.Context) error {
	backoff := 200 * time.Millisecond
	for {
		resp, err := w.api.register(ctx, w.name, w.slots)
		if err == nil {
			w.ttl = time.Duration(resp.LeaseTTLMillis) * time.Millisecond
			if w.ttl <= 0 {
				w.ttl = 15 * time.Second
			}
			w.log.Info("registered", "coordinator", w.api.base, "worker", w.name,
				"slots", w.slots, "lease_ttl", w.ttl, "dispatch", resp.Dispatch)
			if resp.Dispatch == "local" {
				w.log.Warn("coordinator dispatches locally only; this worker will idle")
			}
			return nil
		}
		if ctx.Err() != nil {
			return nil
		}
		w.log.Warn("register failed", "err", err, "retry_in", backoff)
		select {
		case <-ctx.Done():
			return nil
		case <-time.After(backoff):
		}
		if backoff *= 2; backoff > 2*time.Second {
			backoff = 2 * time.Second
		}
	}
}

// execute runs one leased job end to end: heartbeat + event forwarding
// in the background, the shared jobrun path in the foreground, then
// artifact upload and lease completion (or release, when cancelled by
// drain timeout).
func (w *Worker) execute(jobCtx context.Context, g fleetapi.Grant) {
	ctx, cancel := context.WithCancel(jobCtx)
	defer cancel()
	t := &task{grant: g, cancel: cancel}

	// The execution envelope span parents onto the coordinator's lease
	// span (carried by the grant's traceparent); every worker-side span
	// nests under it. A grant without a (valid) traceparent roots a
	// throwaway trace — the coordinator drops spans for untraced jobs.
	parent, _ := tracing.ParseTraceparent(g.Traceparent)
	exec := tracing.Start(parent, w.name, "execute")
	exec.SetAttr("executor", "fleet")
	exec.SetAttr("lease_id", g.LeaseID)
	failWith := func(failure string) {
		exec.SetAttr("outcome", "failed")
		w.completeWith(t, nil, failure, []sparkxd.TraceSpan{exec.End()})
	}

	fp, err := g.Spec.Config.Fingerprint()
	if err != nil {
		failWith(fmt.Sprintf("fingerprint: %v", err))
		return
	}
	w.addTask(fp, t)
	defer w.removeTask(fp, t)
	w.log.Info("executing", "job", g.JobID, "lease", g.LeaseID, "trace", exec.Context().TraceID.String())

	// The heartbeat must outlive execution: artifact uploads can take
	// many TTL windows, and a lease that expires mid-upload would throw
	// the finished result away. It is stopped only just before the
	// (single, bounded) completion round trip.
	stopHB := make(chan struct{})
	hbDone := make(chan struct{})
	go func() { defer close(hbDone); w.heartbeat(t, stopHB) }()
	var hbOnce sync.Once
	stopHeartbeat := func() {
		hbOnce.Do(func() { close(stopHB) })
		<-hbDone
	}
	defer stopHeartbeat()

	stopFlush := make(chan struct{})
	flushDone := make(chan struct{})
	go func() { defer close(flushDone); w.flushLoop(t, stopFlush) }()

	var produced map[string]any
	acqStart := time.Now()
	sys, built, release, err := w.systems.Acquire(fp, g.Spec.Config)
	if err == nil {
		if built {
			sd := tracing.Completed(exec.Context(), w.name, "warm-system-build",
				acqStart, time.Since(acqStart), map[string]string{"fingerprint": fp})
			t.append(sparkxd.Event{Span: &sd})
		}
		// Per-stage spans ride the ordinary event batches alongside the
		// engine events (the coordinator routes them into the trace).
		observe := func(stage string, d time.Duration) {
			w.metrics.observeStage(stage, d)
			sd := tracing.Completed(exec.Context(), w.name, "stage:"+stage,
				time.Now().Add(-d), d, nil)
			t.append(sparkxd.Event{Span: &sd})
		}
		func() {
			defer release()
			defer func() {
				if r := recover(); r != nil {
					err = fmt.Errorf("panic: %v", r)
				}
			}()
			produced, err = jobrun.Produce(ctx, sys, g.Spec, observe)
		}()
	} else {
		release()
	}
	close(stopFlush)
	<-flushDone
	w.flushEvents(t) // final batch, best-effort

	if t.isLost() {
		w.metrics.jobs.With("abandoned").Inc()
		w.log.Warn("lease lost, abandoning result", "job", g.JobID, "lease", g.LeaseID)
		return
	}
	if err != nil && jobCtx.Err() != nil {
		// Drain-timeout cancellation, not a real failure: hand the job
		// back so the coordinator requeues it immediately.
		stopHeartbeat()
		opCtx, opCancel := w.opContext()
		defer opCancel()
		if rerr := w.api.release(opCtx, g.LeaseID); rerr != nil && !errors.Is(rerr, ErrLeaseLost) {
			w.log.Warn("release failed", "job", g.JobID, "lease", g.LeaseID, "err", rerr)
		}
		w.metrics.jobs.With("released").Inc()
		w.log.Info("released (worker shutting down)", "job", g.JobID, "lease", g.LeaseID)
		return
	}
	if err != nil {
		stopHeartbeat()
		failWith(err.Error())
		return
	}

	// Upload every produced artifact as a canonical envelope (the
	// heartbeat keeps the lease alive throughout), then mark the job
	// complete with the role → key map. With a configured Store the
	// envelopes go there directly — the coordinator shares the store, so
	// its completion-time Stat verification still passes. The upload and
	// execution-envelope spans travel in the completion request: no
	// event batch is flushed after this point.
	uploadStart := time.Now()
	arts := make(map[string]sparkxd.ArtifactKey, len(produced))
	for role, v := range produced {
		kind, kerr := sparkxd.ArtifactKind(v)
		if kerr != nil {
			stopHeartbeat()
			failWith(fmt.Sprintf("artifact %s: %v", role, kerr))
			return
		}
		key, envelope, eerr := store.Encode(kind, v)
		if eerr != nil {
			stopHeartbeat()
			failWith(fmt.Sprintf("artifact %s: %v", role, eerr))
			return
		}
		var uerr error
		if w.st != nil {
			_, uerr = w.st.Put(kind, v)
		} else {
			opCtx, opCancel := w.opContext()
			uerr = w.api.putArtifact(opCtx, sparkxd.ArtifactKey(key), envelope)
			opCancel()
		}
		if uerr != nil {
			w.metrics.jobs.With("abandoned").Inc()
			w.log.Warn("upload failed; abandoning (lease will expire)", "job", g.JobID, "key", key, "err", uerr)
			return
		}
		w.metrics.uploadBytes.Add(uint64(len(envelope)))
		if t.isLost() {
			w.metrics.jobs.With("abandoned").Inc()
			w.log.Warn("lease lost mid-upload, abandoning result", "job", g.JobID, "lease", g.LeaseID)
			return
		}
		arts[role] = sparkxd.ArtifactKey(key)
	}
	upload := tracing.Completed(exec.Context(), w.name, "artifact-upload",
		uploadStart, time.Since(uploadStart), map[string]string{"artifacts": strconv.Itoa(len(arts))})
	exec.SetAttr("outcome", "done")
	stopHeartbeat()
	w.completeWith(t, arts, "", []sparkxd.TraceSpan{upload, exec.End()})
}

// completeWith reports a job's outcome to the coordinator, attaching
// the worker's completion-time spans to the job's trace.
func (w *Worker) completeWith(t *task, arts map[string]sparkxd.ArtifactKey, failure string, spans []sparkxd.TraceSpan) {
	opCtx, opCancel := w.opContext()
	defer opCancel()
	err := w.api.complete(opCtx, t.grant.LeaseID, arts, failure, spans)
	switch {
	case errors.Is(err, ErrLeaseLost):
		w.metrics.jobs.With("abandoned").Inc()
		w.log.Warn("lease lost before completion", "job", t.grant.JobID, "lease", t.grant.LeaseID)
	case err != nil:
		w.metrics.jobs.With("abandoned").Inc()
		w.log.Warn("complete failed; abandoning (lease will expire)", "job", t.grant.JobID, "err", err)
	case failure != "":
		w.metrics.jobs.With("failed").Inc()
		w.log.Warn("job failed", "job", t.grant.JobID, "err", failure)
	default:
		w.metrics.jobs.With("done").Inc()
		w.log.Info("job done", "job", t.grant.JobID, "artifacts", len(arts))
	}
}

// heartbeat renews the task's lease a few times per TTL window. A 410
// from the coordinator — or a transport outage longer than one TTL, by
// which time the lease has certainly expired — marks the task lost and
// cancels its execution.
func (w *Worker) heartbeat(t *task, stop <-chan struct{}) {
	interval := w.ttl / 3
	if interval < 20*time.Millisecond {
		interval = 20 * time.Millisecond
	}
	// One renew may take much longer than the cadence (a loaded
	// coordinator still refreshes the TTL on arrival), so its timeout is
	// floored independently of the interval.
	timeout := interval
	if timeout < 2*time.Second {
		timeout = 2 * time.Second
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	var failingSince time.Time
	for {
		select {
		case <-stop:
			return
		case <-tick.C:
		}
		opCtx, opCancel := context.WithTimeout(context.Background(), timeout)
		err := w.api.renew(opCtx, t.grant.LeaseID)
		opCancel()
		switch {
		case err == nil:
			w.metrics.heartbeats.With("ok").Inc()
			failingSince = time.Time{}
		case errors.Is(err, ErrLeaseLost):
			w.metrics.heartbeats.With("lost").Inc()
			w.log.Warn("heartbeat: lease lost", "job", t.grant.JobID, "lease", t.grant.LeaseID, "err", err)
			t.markLost()
			return
		default:
			w.metrics.heartbeats.With("error").Inc()
			if failingSince.IsZero() {
				failingSince = time.Now()
			}
			if time.Since(failingSince) > w.ttl {
				w.log.Warn("coordinator unreachable past the lease TTL", "job", t.grant.JobID, "err", err)
				t.markLost()
				return
			}
		}
	}
}

// flushLoop periodically forwards buffered engine events.
func (w *Worker) flushLoop(t *task, stop <-chan struct{}) {
	tick := time.NewTicker(w.flushInterval)
	defer tick.Stop()
	for {
		select {
		case <-stop:
			return
		case <-tick.C:
			w.flushEvents(t)
		}
	}
}

// flushEvents posts the task's pending events. A lost lease cancels the
// job; a transient failure puts the batch back so the next flush
// retries it (the buffer is bounded in practice by the heartbeat, which
// marks the task lost once the coordinator is silent past one TTL).
func (w *Worker) flushEvents(t *task) {
	evs := t.take()
	if len(evs) == 0 || t.isLost() {
		return
	}
	opCtx, opCancel := w.opContext()
	defer opCancel()
	if err := w.api.postEvents(opCtx, t.grant.LeaseID, evs); err != nil {
		if errors.Is(err, ErrLeaseLost) {
			t.markLost()
			return
		}
		t.mu.Lock()
		t.pending = append(evs, t.pending...)
		t.mu.Unlock()
	}
}

// fanout buffers an engine event on every task currently executing on
// that fingerprint (mirrors the coordinator's own event scoping).
func (w *Worker) fanout(fp string, ev sparkxd.Event) {
	w.mu.Lock()
	tasks := make([]*task, 0, len(w.byFP[fp]))
	for t := range w.byFP[fp] {
		tasks = append(tasks, t)
	}
	w.mu.Unlock()
	for _, t := range tasks {
		t.append(ev)
	}
}

func (w *Worker) addTask(fp string, t *task) {
	w.mu.Lock()
	defer w.mu.Unlock()
	set := w.byFP[fp]
	if set == nil {
		set = make(map[*task]struct{})
		w.byFP[fp] = set
	}
	set[t] = struct{}{}
}

func (w *Worker) removeTask(fp string, t *task) {
	w.mu.Lock()
	defer w.mu.Unlock()
	delete(w.byFP[fp], t)
}

func (w *Worker) addRunning(d int) {
	w.mu.Lock()
	w.running += d
	w.mu.Unlock()
}

func (w *Worker) runningCount() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.running
}

func (w *Worker) freeSlots() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.slots - w.running
}

// opContext bounds one coordinator round trip (independent of job
// contexts, so completions still go out during drain).
func (w *Worker) opContext() (context.Context, context.CancelFunc) {
	return context.WithTimeout(context.Background(), 30*time.Second)
}
