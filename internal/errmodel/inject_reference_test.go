package errmodel

import (
	"bytes"
	"testing"

	"sparkxd/internal/quant"
	"sparkxd/internal/rng"
	"sparkxd/internal/voltscale"
)

// injectReference is the seed repo's scan-everything Inject, rebuilt from
// the region's raw fields: per-bit index arithmetic for Models 0/3, a
// full 0..bitsPer scan against a rebuilt weak-bitline table for Model 1,
// and per-bit FlipBit calls for Model 2. It consumes Bernoulli draws in
// exactly the order the production fast path must preserve, so running
// both against the same stream must yield identical images.
func injectReference(in *Injector, img []byte, r *rng.Stream) int64 {
	var flipped int64
	actBase := 1.0 / in.Profile.WeakBoost
	for _, lin := range in.order {
		reg := in.regions[lin]
		if reg.ber <= 0 {
			continue
		}
		switch in.Kind {
		case Model0:
			for _, wb := range reg.weakBits {
				if r.Bernoulli(actBase) {
					unit := reg.unitIdx[wb/reg.bitsPer]
					quant.FlipBit(img, int64(unit)*reg.bitsPer+wb%reg.bitsPer)
					flipped++
				}
			}
		case Model3:
			for _, wb := range reg.weakBits {
				unit := reg.unitIdx[wb/reg.bitsPer]
				bit := int64(unit)*reg.bitsPer + wb%reg.bitsPer
				var pAct float64
				if quant.GetBit(img, bit) {
					pAct = actBase * in.P1 * 2 / (in.P1 + in.P0)
				} else {
					pAct = actBase * in.P0 * 2 / (in.P1 + in.P0)
				}
				if r.Bernoulli(pAct) {
					quant.FlipBit(img, bit)
					flipped++
				}
			}
		case Model1:
			// Rebuild the per-bitline weak table the seed probed per bit.
			weak := make(map[int64]bool)
			for col, offs := range reg.weakBLOf {
				for _, b := range offs {
					weak[int64(col)*reg.bitsPer+int64(b)] = true
				}
			}
			for ui := range reg.unitIdx {
				colBase := int64(reg.cols[ui]) * reg.bitsPer
				unitBase := int64(reg.unitIdx[ui]) * reg.bitsPer
				for b := int64(0); b < reg.bitsPer; b++ {
					if !weak[colBase+b] {
						continue
					}
					if r.Bernoulli(actBase) {
						quant.FlipBit(img, unitBase+b)
						flipped++
					}
				}
			}
		case Model2:
			for ui := range reg.unitIdx {
				if !reg.weakRow[reg.rows[ui]] {
					continue
				}
				unitBase := int64(reg.unitIdx[ui]) * reg.bitsPer
				for b := int64(0); b < reg.bitsPer; b++ {
					if r.Bernoulli(actBase) {
						quant.FlipBit(img, unitBase+b)
						flipped++
					}
				}
			}
		}
	}
	return flipped
}

// TestInjectMatchesScanReference pins the word-at-a-time / precomputed
// injection paths against the scan-everything reference for every model:
// same stream in, bit-identical image and flip count out.
func TestInjectMatchesScanReference(t *testing.T) {
	p := testProfile(t, voltscale.V1025, 0)
	for _, kind := range []Kind{Model0, Model1, Model2, Model3} {
		in := NewInjector(kind, p)
		pl := seqPlacement{geom: p.Geom, units: 768, ub: 32}
		in.Prepare(pl)

		// Non-uniform data so Model3 exercises both the set-bit and
		// clear-bit probability branches.
		base := make([]byte, pl.units*pl.ub)
		for i := range base {
			base[i] = byte(i * 37)
		}
		for seed := uint64(1); seed <= 5; seed++ {
			got := append([]byte(nil), base...)
			want := append([]byte(nil), base...)
			nGot := in.Inject(got, pl, rng.New(seed))
			nWant := injectReference(in, want, rng.New(seed))
			if nGot != nWant {
				t.Fatalf("%v seed %d: Inject flipped %d, reference %d", kind, seed, nGot, nWant)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("%v seed %d: injected image diverges from reference (%d bits differ)",
					kind, seed, quant.CountDiffBits(got, want))
			}
			if nGot == 0 {
				t.Fatalf("%v seed %d: expected some flips at this BER", kind, seed)
			}
		}
	}
}

// TestInjectOversizedUnitFallback forces Model2's per-bit fallback (units
// wider than the stack mask) and checks it against the same reference.
func TestInjectOversizedUnitFallback(t *testing.T) {
	p := testProfile(t, voltscale.V1025, 0)
	in := NewInjector(Model2, p)
	pl := seqPlacement{geom: p.Geom, units: 16, ub: wordlineMaskBytes * 2}
	in.Prepare(pl)
	base := make([]byte, pl.units*pl.ub)
	got := append([]byte(nil), base...)
	want := append([]byte(nil), base...)
	nGot := in.Inject(got, pl, rng.New(3))
	nWant := injectReference(in, want, rng.New(3))
	if nGot != nWant || !bytes.Equal(got, want) {
		t.Fatalf("oversized-unit fallback diverges: %d vs %d flips", nGot, nWant)
	}
}
