// Package errmodel implements the probabilistic approximate-DRAM error
// models of Koppula et al. (EDEN, MICRO 2019 — ref [15] of the paper),
// which the SparkXD paper adopts for error generation and injection
// (Sec. III):
//
//	Model 0: bit errors uniformly distributed over a bank (weak cells
//	         anywhere, each failing with some probability). This is the
//	         model the paper uses for all experiments.
//	Model 1: errors clustered on weak bitlines.
//	Model 2: errors clustered on weak wordlines.
//	Model 3: data-dependent errors — weak cells holding a 1 fail with a
//	         different probability than cells holding a 0.
//
// The key physical property all models share is that weak cells are FIXED
// for a given device and voltage: repeated reads fail at correlated
// locations. The Profile type captures this by deriving the weak-cell set
// deterministically from a device seed, while each injection pass decides
// *which* weak cells actually flip this time using the caller's stream.
//
// Per-subarray variation: real reduced-voltage DRAM shows spatial
// locality — some subarrays are much weaker than others (EDEN Sec. 3;
// also the premise of SparkXD's Algorithm 2, which needs safe and unsafe
// subarrays to exist). Profile draws each subarray's BER from a lognormal
// distribution around the device BER(V) curve of package voltscale.
package errmodel

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"sparkxd/internal/dram"
	"sparkxd/internal/quant"
	"sparkxd/internal/rng"
	"sparkxd/internal/voltscale"
)

// Kind selects one of the four EDEN error models.
type Kind uint8

const (
	Model0 Kind = iota // uniform-random over the bank (paper default)
	Model1             // bitline-clustered
	Model2             // wordline-clustered
	Model3             // data-dependent
)

// String names the model.
func (k Kind) String() string {
	switch k {
	case Model0:
		return "model0-uniform"
	case Model1:
		return "model1-bitline"
	case Model2:
		return "model2-wordline"
	case Model3:
		return "model3-data-dependent"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Profile is the weak-cell error profile of one device at one supply
// voltage: a BER per subarray, plus the seed that pins weak-cell
// locations. It plays the role of the "DRAM error profile" box in the
// paper's Fig. 7.
type Profile struct {
	Geom dram.Geometry
	// VSupply is the voltage this profile was characterized at.
	VSupply float64
	// SubarrayBER holds the raw bit error rate of every subarray, indexed
	// by dram.SubarrayID.Linear.
	SubarrayBER []float64
	// DeviceSeed pins weak-cell locations for the lifetime of the device.
	DeviceSeed uint64
	// WeakBoost is the ratio weak-cell-density / BER: a weak cell fails
	// with probability 1/WeakBoost on each access. EDEN observes weak
	// cells failing intermittently; 4 reproduces that regime.
	WeakBoost float64
}

// Spread is the default sigma of the lognormal per-subarray variation.
const DefaultSpread = 1.0

// NewProfile characterizes a device at supply voltage v: every subarray
// receives BER(v) scaled by a lognormal factor with the given sigma
// (spread = 0 gives a uniform device). The profile is deterministic in
// (geometry, v, spread, seed).
func NewProfile(geom dram.Geometry, circuit voltscale.Model, v, spread float64, seed uint64) (*Profile, error) {
	if err := geom.Validate(); err != nil {
		return nil, fmt.Errorf("errmodel: profile geometry: %w", err)
	}
	if err := circuit.Validate(); err != nil {
		return nil, fmt.Errorf("errmodel: profile circuit model: %w", err)
	}
	if spread < 0 {
		return nil, errors.New("errmodel: spread must be non-negative")
	}
	base := circuit.BER(v)
	n := geom.SubarrayCount()
	p := &Profile{
		Geom:        geom,
		VSupply:     v,
		SubarrayBER: make([]float64, n),
		DeviceSeed:  seed,
		WeakBoost:   4,
	}
	r := rng.New(seed).Derive("subarray-ber")
	for i := 0; i < n; i++ {
		if base == 0 {
			p.SubarrayBER[i] = 0
			continue
		}
		factor := math.Exp(r.Normal(0, spread) - spread*spread/2) // mean-1 lognormal
		ber := base * factor
		if ber > 0.5 {
			ber = 0.5
		}
		p.SubarrayBER[i] = ber
	}
	return p, nil
}

// UniformProfile builds a profile in which every subarray has exactly the
// given BER. This is how Algorithm 1 of the paper injects errors at a
// *chosen rate* during fault-aware training (rates, not voltages, drive
// the training schedule), and how the error-tolerance analysis sweeps BER
// values directly.
func UniformProfile(geom dram.Geometry, ber float64, seed uint64) (*Profile, error) {
	if err := geom.Validate(); err != nil {
		return nil, fmt.Errorf("errmodel: profile geometry: %w", err)
	}
	if ber < 0 || ber > 0.5 {
		return nil, errors.New("errmodel: BER must be in [0, 0.5]")
	}
	n := geom.SubarrayCount()
	p := &Profile{
		Geom:        geom,
		VSupply:     0, // not voltage-derived
		SubarrayBER: make([]float64, n),
		DeviceSeed:  seed,
		WeakBoost:   4,
	}
	for i := range p.SubarrayBER {
		p.SubarrayBER[i] = ber
	}
	return p, nil
}

// BEROf returns the subarray's raw BER.
func (p *Profile) BEROf(id dram.SubarrayID) float64 {
	return p.SubarrayBER[id.Linear(p.Geom)]
}

// MeanBER returns the average BER over all subarrays.
func (p *Profile) MeanBER() float64 {
	var s float64
	for _, b := range p.SubarrayBER {
		s += b
	}
	return s / float64(len(p.SubarrayBER))
}

// MaxBER returns the worst subarray BER.
func (p *Profile) MaxBER() float64 {
	var m float64
	for _, b := range p.SubarrayBER {
		if b > m {
			m = b
		}
	}
	return m
}

// SafeSubarrays returns, per linear subarray index, whether the subarray's
// error rate is at or below the threshold — the safe/unsafe partition of
// Fig. 9(a).
func (p *Profile) SafeSubarrays(berTh float64) []bool {
	out := make([]bool, len(p.SubarrayBER))
	for i, b := range p.SubarrayBER {
		out[i] = b <= berTh
	}
	return out
}

// SafeCount returns how many subarrays are safe at the given threshold.
func (p *Profile) SafeCount(berTh float64) int {
	n := 0
	for _, b := range p.SubarrayBER {
		if b <= berTh {
			n++
		}
	}
	return n
}

// Injector injects bit errors into a mapped weight image according to an
// EDEN error model and a device profile. Construct with NewInjector.
//
// The injector caches the weak-cell sets per subarray region after the
// first pass over a given placement, so repeated injections (every
// training epoch, every evaluation point) are fast and hit correlated
// locations — the fixed-weak-cell physics the models describe.
type Injector struct {
	Kind    Kind
	Profile *Profile
	// P1 and P0 bias data-dependent failures for Model3: a weak cell
	// holding a 1 fails with activation*P1*2/(P1+P0); holding a 0 with
	// activation*P0*2/(P1+P0). Ignored by other models.
	P1, P0 float64

	regions map[int]*region // keyed by linear subarray index
	// order is the sorted region key sequence. Inject must visit regions
	// in a fixed order: every region consumes draws from the caller's
	// stream, so iterating the map directly would make the flip pattern
	// depend on Go's randomized map iteration order.
	order []int
}

// region is the portion of an image that lives in one subarray.
//
// The weak-cell sets are stored in injection-ready form: absBits holds
// the absolute image bit index of every weak cell (Models 0 and 3), so
// the per-flip unit/offset division happens once at Prepare instead of
// on every injection pass; weakBLOff lists, per DRAM column, the weak
// bit offsets within one unit in ascending order (Model1), so injection
// visits only weak bitlines instead of probing a map for every bit; and
// weakRow is a dense per-row flag slice (Model2).
type region struct {
	sub      dram.SubarrayID
	ber      float64
	unitIdx  []int32 // image column units in this subarray (image order)
	bitsPer  int64   // bits per unit
	weakBits []int64 // region-relative weak bit positions (Models 0 and 3)
	absBits  []int64 // weakBits translated to absolute image bit indices
	weakBLOf [][]int32
	weakRow  []bool
	rows     []int32 // per unit: row within subarray (Model2)
	cols     []int32 // per unit: column within row (Model1)
}

// NewInjector returns an injector for the given model kind and profile.
func NewInjector(kind Kind, p *Profile) *Injector {
	return &Injector{
		Kind:    kind,
		Profile: p,
		P1:      1.5, // EDEN-style asymmetry: true-cells fail more often
		P0:      0.5,
		regions: make(map[int]*region),
	}
}

// Placement describes where each column unit of an image resides.
type Placement interface {
	// Units returns the number of column units in the image.
	Units() int
	// CoordOf returns the DRAM coordinate of unit u.
	CoordOf(u int) dram.Coord
	// UnitBytes returns the size of one column unit in bytes.
	UnitBytes() int
}

// Prepare builds (or rebuilds) the weak-cell cache for a placement. It is
// called automatically by Inject when the placement shape changes; calling
// it explicitly lets tests pin deterministic weak-cell sets.
func (in *Injector) Prepare(pl Placement) {
	in.regions = make(map[int]*region)
	in.order = in.order[:0]
	geom := in.Profile.Geom
	bitsPer := int64(pl.UnitBytes()) * 8
	for u := 0; u < pl.Units(); u++ {
		c := pl.CoordOf(u)
		lin := c.SubarrayOf().Linear(geom)
		reg := in.regions[lin]
		if reg == nil {
			reg = &region{
				sub:     c.SubarrayOf(),
				ber:     in.Profile.SubarrayBER[lin],
				bitsPer: bitsPer,
			}
			in.regions[lin] = reg
		}
		reg.unitIdx = append(reg.unitIdx, int32(u))
		reg.rows = append(reg.rows, int32(c.Row))
		reg.cols = append(reg.cols, int32(c.Column))
	}
	for lin := range in.regions {
		in.order = append(in.order, lin)
	}
	sort.Ints(in.order)
	for _, lin := range in.order {
		in.buildWeakSets(in.regions[lin])
	}
}

// buildWeakSets derives the deterministic weak-cell locations of a region
// from the device seed.
func (in *Injector) buildWeakSets(reg *region) {
	if reg.ber <= 0 {
		return
	}
	seedStream := rng.New(in.Profile.DeviceSeed).
		DeriveIndex("weak-cells", reg.sub.Linear(in.Profile.Geom))
	totalBits := int64(len(reg.unitIdx)) * reg.bitsPer
	weakFrac := reg.ber * in.Profile.WeakBoost
	if weakFrac > 0.5 {
		weakFrac = 0.5
	}
	switch in.Kind {
	case Model0, Model3:
		// Sample weak bit positions uniformly over the region, without
		// duplicates (a physical cell is weak once).
		count := seedStream.Binomial(int(totalBits), weakFrac)
		seen := make(map[int64]struct{}, count)
		reg.weakBits = make([]int64, 0, count)
		for len(reg.weakBits) < count {
			b := seedStream.Int63n(totalBits)
			if _, dup := seen[b]; dup {
				continue
			}
			seen[b] = struct{}{}
			reg.weakBits = append(reg.weakBits, b)
		}
		// Resolve each weak bit to its absolute image position once, so
		// Inject's hot loop is a Bernoulli draw and a FlipBit with no
		// division. The sampled order is preserved: draw k of every
		// injection pass maps to the same physical cell as before.
		reg.absBits = make([]int64, len(reg.weakBits))
		for k, wb := range reg.weakBits {
			reg.absBits[k] = in.regionBitIndex(reg, wb)
		}
	case Model1:
		// Weak bitlines: a bitline is one bit offset within the row
		// (column*bitsPerUnit + bitInUnit). Cluster the same BER mass.
		nBitlines := in.Profile.Geom.Columns * int(reg.bitsPer)
		count := seedStream.Binomial(nBitlines, weakFrac)
		weak := make([]bool, nBitlines)
		for i := 0; i < count; i++ {
			weak[seedStream.Intn(nBitlines)] = true
		}
		// Per column, the ascending weak-bit offsets within one unit —
		// injection then visits exactly the weak bitlines, in the same
		// order the full 0..bitsPer scan used to find them.
		reg.weakBLOf = make([][]int32, in.Profile.Geom.Columns)
		for col := range reg.weakBLOf {
			base := col * int(reg.bitsPer)
			var offs []int32
			for b := 0; b < int(reg.bitsPer); b++ {
				if weak[base+b] {
					offs = append(offs, int32(b))
				}
			}
			reg.weakBLOf[col] = offs
		}
	case Model2:
		// Weak wordlines: whole rows of the subarray.
		nRows := in.Profile.Geom.Rows
		count := seedStream.Binomial(nRows, weakFrac)
		reg.weakRow = make([]bool, nRows)
		for i := 0; i < count; i++ {
			reg.weakRow[seedStream.Intn(nRows)] = true
		}
	}
}

// wordlineMaskBytes bounds the stack-local flip mask a weak wordline is
// accumulated into before being XORed into the image word-at-a-time;
// units larger than this fall back to per-bit flips. 512 bytes covers
// every geometry in the repo (units are one DRAM column, typically
// 64–256 bytes).
const wordlineMaskBytes = 512

// Inject flips bits of img in place according to the model, profile, and
// placement, and returns the number of flipped bits. The stream governs
// which weak cells fail on this particular pass; weak-cell locations
// themselves are fixed by the profile's device seed.
//
// The loops consume Bernoulli draws in exactly the order the original
// scan-everything form did — one draw per weak cell visited in region /
// unit / ascending-bit order — so flip patterns are bit-identical to it
// for any given stream. Scratch state is stack-local: one Injector is
// safely shared read-only by concurrent scenario workers.
func (in *Injector) Inject(img []byte, pl Placement, r *rng.Stream) int64 {
	if len(in.regions) == 0 {
		in.Prepare(pl)
	}
	var flipped int64
	actBase := 1.0 / in.Profile.WeakBoost
	for _, lin := range in.order {
		reg := in.regions[lin]
		if reg.ber <= 0 {
			continue
		}
		switch in.Kind {
		case Model0:
			// absBits pre-resolves every weak cell's image position, so
			// this — the paper-default model, run once per scenario per
			// evaluation point — is one draw and at most one XOR per cell.
			for _, bit := range reg.absBits {
				if r.Bernoulli(actBase) {
					quant.FlipBit(img, bit)
					flipped++
				}
			}
		case Model3:
			p1 := actBase * in.P1 * 2 / (in.P1 + in.P0)
			p0 := actBase * in.P0 * 2 / (in.P1 + in.P0)
			for _, bit := range reg.absBits {
				var pAct float64
				if quant.GetBit(img, bit) {
					pAct = p1
				} else {
					pAct = p0
				}
				if r.Bernoulli(pAct) {
					quant.FlipBit(img, bit)
					flipped++
				}
			}
		case Model1:
			for ui := range reg.unitIdx {
				offs := reg.weakBLOf[reg.cols[ui]]
				if len(offs) == 0 {
					continue
				}
				unitBase := int64(reg.unitIdx[ui]) * reg.bitsPer
				for _, b := range offs {
					if r.Bernoulli(actBase) {
						quant.FlipBit(img, unitBase+int64(b))
						flipped++
					}
				}
			}
		case Model2:
			// A weak wordline draws for every bit of the unit — dense
			// enough that flips are accumulated into a stack mask and
			// applied with one word-at-a-time XOR pass per unit.
			unitBytes := int(reg.bitsPer) / 8
			var maskArr [wordlineMaskBytes]byte
			for ui := range reg.unitIdx {
				if !reg.weakRow[reg.rows[ui]] {
					continue
				}
				if unitBytes <= len(maskArr) {
					mask := maskArr[:unitBytes]
					for i := range mask {
						mask[i] = 0
					}
					for b := 0; b < int(reg.bitsPer); b++ {
						if r.Bernoulli(actBase) {
							mask[b>>3] |= 1 << uint(b&7)
						}
					}
					byteBase := int(reg.unitIdx[ui]) * unitBytes
					flipped += quant.XORInto(img[byteBase:byteBase+unitBytes], mask)
				} else {
					unitBase := int64(reg.unitIdx[ui]) * reg.bitsPer
					for b := int64(0); b < reg.bitsPer; b++ {
						if r.Bernoulli(actBase) {
							quant.FlipBit(img, unitBase+b)
							flipped++
						}
					}
				}
			}
		}
	}
	return flipped
}

// regionBitIndex translates a region-relative bit position to an image
// bit index.
func (in *Injector) regionBitIndex(reg *region, regionBit int64) int64 {
	unit := reg.unitIdx[regionBit/reg.bitsPer]
	return int64(unit)*reg.bitsPer + regionBit%reg.bitsPer
}

// ExpectedFlips returns the expected number of flipped bits for an image
// fully resident in subarrays with the profile's rates, given the
// placement — useful for sanity checks and tests.
func (in *Injector) ExpectedFlips(pl Placement) float64 {
	geom := in.Profile.Geom
	bitsPer := float64(pl.UnitBytes()) * 8
	var exp float64
	for u := 0; u < pl.Units(); u++ {
		lin := pl.CoordOf(u).SubarrayOf().Linear(geom)
		exp += bitsPer * in.Profile.SubarrayBER[lin]
	}
	return exp
}
