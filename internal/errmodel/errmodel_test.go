package errmodel

import (
	"math"
	"testing"

	"sparkxd/internal/dram"
	"sparkxd/internal/quant"
	"sparkxd/internal/rng"
	"sparkxd/internal/voltscale"
)

// seqPlacement lays units out linearly across the geometry (bank-sequential),
// the shape of the paper's baseline mapping.
type seqPlacement struct {
	geom  dram.Geometry
	units int
	ub    int
}

func (p seqPlacement) Units() int               { return p.units }
func (p seqPlacement) UnitBytes() int           { return p.ub }
func (p seqPlacement) CoordOf(u int) dram.Coord { return p.geom.Decode(int64(u)) }

func testProfile(t *testing.T, v float64, spread float64) *Profile {
	t.Helper()
	p, err := NewProfile(dram.SmallTestGeometry(), voltscale.Default(), v, spread, 99)
	if err != nil {
		t.Fatalf("NewProfile: %v", err)
	}
	return p
}

func TestKindString(t *testing.T) {
	names := map[Kind]string{
		Model0: "model0-uniform",
		Model1: "model1-bitline",
		Model2: "model2-wordline",
		Model3: "model3-data-dependent",
	}
	for k, want := range names {
		if k.String() != want {
			t.Errorf("String(%v) = %q", k, k.String())
		}
	}
}

func TestProfileZeroAtNominal(t *testing.T) {
	p := testProfile(t, voltscale.VNominal, DefaultSpread)
	if p.MeanBER() != 0 || p.MaxBER() != 0 {
		t.Fatal("nominal-voltage profile must be error-free")
	}
}

func TestProfileMeanNearDeviceBER(t *testing.T) {
	p := testProfile(t, voltscale.V1025, DefaultSpread)
	device := voltscale.Default().BER(voltscale.V1025)
	mean := p.MeanBER()
	// The lognormal factor is mean-1, so profile mean should be within a
	// factor ~2 of the device curve for a few hundred subarrays.
	if mean < device/3 || mean > device*3 {
		t.Errorf("profile mean BER = %.3g, device = %.3g", mean, device)
	}
}

func TestProfileSpreadCreatesSafeAndUnsafeSubarrays(t *testing.T) {
	p := testProfile(t, voltscale.V1100, DefaultSpread)
	device := voltscale.Default().BER(voltscale.V1100)
	safe := p.SafeCount(device)
	total := len(p.SubarrayBER)
	if safe == 0 || safe == total {
		t.Fatalf("spread profile should mix safe (%d) and unsafe of %d at the device BER", safe, total)
	}
	flags := p.SafeSubarrays(device)
	n := 0
	for _, ok := range flags {
		if ok {
			n++
		}
	}
	if n != safe {
		t.Fatal("SafeSubarrays and SafeCount disagree")
	}
}

func TestProfileDeterministic(t *testing.T) {
	a := testProfile(t, voltscale.V1025, DefaultSpread)
	b := testProfile(t, voltscale.V1025, DefaultSpread)
	for i := range a.SubarrayBER {
		if a.SubarrayBER[i] != b.SubarrayBER[i] {
			t.Fatal("same seed must give identical profiles")
		}
	}
}

func TestProfileZeroSpreadUniform(t *testing.T) {
	p := testProfile(t, voltscale.V1025, 0)
	first := p.SubarrayBER[0]
	for _, b := range p.SubarrayBER {
		if b != first {
			t.Fatal("zero spread must give a uniform profile")
		}
	}
}

func TestNewProfileRejectsBadInputs(t *testing.T) {
	if _, err := NewProfile(dram.Geometry{}, voltscale.Default(), 1.1, 1, 1); err == nil {
		t.Error("invalid geometry must error")
	}
	if _, err := NewProfile(dram.SmallTestGeometry(), voltscale.Default(), 1.1, -1, 1); err == nil {
		t.Error("negative spread must error")
	}
}

func TestBEROf(t *testing.T) {
	p := testProfile(t, voltscale.V1025, DefaultSpread)
	id := dram.SubarrayID{Channel: 0, Rank: 0, Chip: 0, Bank: 1, Subarray: 2}
	if p.BEROf(id) != p.SubarrayBER[id.Linear(p.Geom)] {
		t.Fatal("BEROf must index by linear subarray id")
	}
}

func TestModel0FlipCountNearExpectation(t *testing.T) {
	p := testProfile(t, voltscale.V1025, 0) // uniform so expectation is exact
	in := NewInjector(Model0, p)
	pl := seqPlacement{geom: p.Geom, units: 1024, ub: 32}
	img := make([]byte, pl.units*pl.ub)
	want := in.ExpectedFlips(pl)
	var total float64
	const trials = 20
	for i := 0; i < trials; i++ {
		copyImg := append([]byte(nil), img...)
		total += float64(in.Inject(copyImg, pl, rng.New(uint64(i+1))))
	}
	got := total / trials
	if want <= 0 {
		t.Fatalf("expectation must be positive, got %v", want)
	}
	if math.Abs(got-want)/want > 0.35 {
		t.Errorf("mean flips = %.1f, want ~%.1f", got, want)
	}
}

func TestInjectReportsActualFlips(t *testing.T) {
	p := testProfile(t, voltscale.V1025, 0)
	in := NewInjector(Model0, p)
	pl := seqPlacement{geom: p.Geom, units: 256, ub: 32}
	img := make([]byte, pl.units*pl.ub)
	orig := append([]byte(nil), img...)
	n := in.Inject(img, pl, rng.New(5))
	if quant.CountDiffBits(img, orig) != n {
		t.Fatal("returned flip count must equal Hamming distance")
	}
}

func TestWeakCellsCorrelatedAcrossInjections(t *testing.T) {
	p := testProfile(t, voltscale.V1025, 0)
	in := NewInjector(Model0, p)
	pl := seqPlacement{geom: p.Geom, units: 512, ub: 32}
	base := make([]byte, pl.units*pl.ub)

	// Two independent injection passes: flipped locations must overlap far
	// more than two fully-uniform draws would (weak cells are fixed).
	a := append([]byte(nil), base...)
	b := append([]byte(nil), base...)
	na := in.Inject(a, pl, rng.New(1))
	nb := in.Inject(b, pl, rng.New(2))
	if na == 0 || nb == 0 {
		t.Fatal("expected some flips")
	}
	// Count common flipped bits.
	common := 0
	for i := range a {
		diffA := a[i] ^ base[i]
		diffB := b[i] ^ base[i]
		x := diffA & diffB
		for x != 0 {
			x &= x - 1
			common++
		}
	}
	totalBits := float64(len(base) * 8)
	expectedIfUniform := float64(na) * float64(nb) / totalBits
	if float64(common) < 4*expectedIfUniform {
		t.Errorf("weak-cell overlap %d not above uniform expectation %.2f — locations look uncorrelated",
			common, expectedIfUniform)
	}
}

func TestModel3DataDependence(t *testing.T) {
	p := testProfile(t, voltscale.V1025, 0)
	in := NewInjector(Model3, p)
	pl := seqPlacement{geom: p.Geom, units: 512, ub: 32}

	ones := make([]byte, pl.units*pl.ub)
	zeros := make([]byte, pl.units*pl.ub)
	for i := range ones {
		ones[i] = 0xff
	}
	var fOnes, fZeros int64
	const trials = 10
	for i := 0; i < trials; i++ {
		a := append([]byte(nil), ones...)
		b := append([]byte(nil), zeros...)
		fOnes += in.Inject(a, pl, rng.New(uint64(100+i)))
		fZeros += in.Inject(b, pl, rng.New(uint64(200+i)))
	}
	if fOnes <= fZeros {
		t.Errorf("with P1 > P0, all-ones data must flip more: ones=%d zeros=%d", fOnes, fZeros)
	}
}

func TestModel1ClustersOnBitlines(t *testing.T) {
	p := testProfile(t, voltscale.V1025, 0)
	in := NewInjector(Model1, p)
	pl := seqPlacement{geom: p.Geom, units: int(p.Geom.TotalColumns()), ub: 32}
	img := make([]byte, pl.units*pl.ub)
	in.Inject(img, pl, rng.New(7))

	// Histogram flips by bitline (column*bits + bitInUnit): flips must be
	// confined to the weak bitlines, i.e. far fewer distinct bitlines
	// than distinct flipped bits.
	bitsPer := int64(pl.ub) * 8
	bitlines := map[int64]int{}
	flips := 0
	for bit := int64(0); bit < int64(len(img))*8; bit++ {
		if quant.GetBit(img, bit) {
			unit := bit / bitsPer
			col := int64(pl.CoordOf(int(unit)).Column)
			bl := col*bitsPer + bit%bitsPer
			bitlines[bl]++
			flips++
		}
	}
	if flips == 0 {
		t.Skip("no flips at this seed; acceptable for clustered model on a small image")
	}
	if len(bitlines) >= flips {
		t.Errorf("bitline clustering absent: %d bitlines for %d flips", len(bitlines), flips)
	}
}

func TestModel2ClustersOnWordlines(t *testing.T) {
	p := testProfile(t, voltscale.V1025, 0)
	in := NewInjector(Model2, p)
	pl := seqPlacement{geom: p.Geom, units: int(p.Geom.TotalColumns()), ub: 32}
	img := make([]byte, pl.units*pl.ub)
	in.Inject(img, pl, rng.New(11))

	// Flips must concentrate densely on few (subarray, row) pairs: a weak
	// wordline fails across its whole width, so flips-per-touched-row is
	// high, unlike the uniform Model 0.
	bitsPer := int64(pl.ub) * 8
	pairs := map[[2]int]bool{}
	flips := 0
	for bit := int64(0); bit < int64(len(img))*8; bit++ {
		if quant.GetBit(img, bit) {
			c := pl.CoordOf(int(bit / bitsPer))
			pairs[[2]int{c.SubarrayOf().Linear(p.Geom), c.Row}] = true
			flips++
		}
	}
	if flips == 0 {
		t.Skip("no flips at this seed")
	}
	if flips < 20*len(pairs) {
		t.Errorf("wordline clustering absent: %d flips over %d rows", flips, len(pairs))
	}
}

func TestInjectNothingAtNominalVoltage(t *testing.T) {
	p := testProfile(t, voltscale.VNominal, DefaultSpread)
	in := NewInjector(Model0, p)
	pl := seqPlacement{geom: p.Geom, units: 128, ub: 32}
	img := make([]byte, pl.units*pl.ub)
	if n := in.Inject(img, pl, rng.New(1)); n != 0 {
		t.Fatalf("nominal voltage must inject no errors, got %d", n)
	}
}

func TestExpectedFlipsScalesWithImage(t *testing.T) {
	p := testProfile(t, voltscale.V1025, 0)
	in := NewInjector(Model0, p)
	small := seqPlacement{geom: p.Geom, units: 100, ub: 32}
	large := seqPlacement{geom: p.Geom, units: 200, ub: 32}
	if math.Abs(in.ExpectedFlips(large)/in.ExpectedFlips(small)-2) > 1e-9 {
		t.Fatal("expected flips must scale linearly with image size")
	}
}
