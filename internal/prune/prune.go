// Package prune implements magnitude-based weight pruning, the
// state-of-the-art complementary technique the paper combines with
// SparkXD in its Fig. 2(a) motivation study ("our proposed technique can
// be combined with existing techniques, e.g. weight pruning"): reducing
// network connectivity shrinks the number of DRAM accesses, while
// approximate DRAM shrinks the energy of each remaining access.
package prune

import (
	"errors"
	"sort"
)

// Result describes a pruning pass.
type Result struct {
	// Kept is the number of surviving (nonzero) weights.
	Kept int
	// Pruned is the number of weights set to zero.
	Pruned int
	// Threshold is the magnitude cutoff that was applied.
	Threshold float32
}

// Connectivity returns the surviving fraction of weights.
func (r Result) Connectivity() float64 {
	total := r.Kept + r.Pruned
	if total == 0 {
		return 0
	}
	return float64(r.Kept) / float64(total)
}

// ByMagnitude zeroes the smallest-magnitude weights until only
// `connectivity` (0..1] of them survive. It operates in place and
// returns the pass description.
func ByMagnitude(w []float32, connectivity float64) (Result, error) {
	if connectivity <= 0 || connectivity > 1 {
		return Result{}, errors.New("prune: connectivity must be in (0, 1]")
	}
	keep := int(float64(len(w))*connectivity + 0.5)
	if keep >= len(w) {
		return Result{Kept: len(w)}, nil
	}
	mags := make([]float32, len(w))
	for i, v := range w {
		if v < 0 {
			mags[i] = -v
		} else {
			mags[i] = v
		}
	}
	sorted := append([]float32(nil), mags...)
	sort.Slice(sorted, func(a, b int) bool { return sorted[a] < sorted[b] })
	threshold := sorted[len(w)-keep]

	res := Result{Threshold: threshold}
	for i := range w {
		if mags[i] < threshold {
			w[i] = 0
			res.Pruned++
		} else {
			res.Kept++
		}
	}
	return res, nil
}

// NonZeroCount returns the number of nonzero weights.
func NonZeroCount(w []float32) int {
	n := 0
	for _, v := range w {
		if v != 0 {
			n++
		}
	}
	return n
}

// CompactIndices returns the indices of surviving weights, in order —
// the access pattern of a sparse inference pass (only surviving weights
// are fetched from DRAM).
func CompactIndices(w []float32) []int {
	out := make([]int, 0, len(w))
	for i, v := range w {
		if v != 0 {
			out = append(out, i)
		}
	}
	return out
}
