package prune

import (
	"math"
	"testing"
	"testing/quick"
)

func TestByMagnitudeBasic(t *testing.T) {
	w := []float32{0.9, 0.1, 0.5, 0.05, 0.8, 0.01, 0.7, 0.3, 0.6, 0.2}
	res, err := ByMagnitude(w, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if res.Kept != 5 || res.Pruned != 5 {
		t.Fatalf("kept/pruned = %d/%d, want 5/5", res.Kept, res.Pruned)
	}
	// The five largest magnitudes must survive.
	for _, v := range []float32{0.9, 0.8, 0.7, 0.6, 0.5} {
		found := false
		for _, x := range w {
			if x == v {
				found = true
			}
		}
		if !found {
			t.Errorf("large weight %v was pruned", v)
		}
	}
	if math.Abs(res.Connectivity()-0.5) > 1e-9 {
		t.Errorf("connectivity = %v", res.Connectivity())
	}
}

func TestByMagnitudeFullConnectivity(t *testing.T) {
	w := []float32{1, 2, 3}
	res, err := ByMagnitude(w, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Pruned != 0 || res.Kept != 3 {
		t.Fatal("connectivity 1 must prune nothing")
	}
}

func TestByMagnitudeRejectsBadInput(t *testing.T) {
	if _, err := ByMagnitude([]float32{1}, 0); err == nil {
		t.Error("connectivity 0 must error")
	}
	if _, err := ByMagnitude([]float32{1}, 1.5); err == nil {
		t.Error("connectivity > 1 must error")
	}
}

func TestByMagnitudeNegativeWeights(t *testing.T) {
	w := []float32{-0.9, 0.1, -0.05, 0.8}
	_, err := ByMagnitude(w, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if w[0] != -0.9 || w[3] != 0.8 {
		t.Error("large-magnitude negative weights must survive")
	}
	if w[1] != 0 || w[2] != 0 {
		t.Error("small magnitudes must be pruned regardless of sign")
	}
}

func TestNonZeroCount(t *testing.T) {
	if NonZeroCount([]float32{0, 1, 0, 2}) != 2 {
		t.Fatal("NonZeroCount wrong")
	}
	if NonZeroCount(nil) != 0 {
		t.Fatal("empty count wrong")
	}
}

func TestCompactIndices(t *testing.T) {
	idx := CompactIndices([]float32{0, 1, 0, 2, 3})
	want := []int{1, 3, 4}
	if len(idx) != len(want) {
		t.Fatalf("indices = %v", idx)
	}
	for i := range want {
		if idx[i] != want[i] {
			t.Fatalf("indices = %v, want %v", idx, want)
		}
	}
}

// Property: pruning keeps approximately the requested fraction and never
// removes a weight larger than one it keeps.
func TestPruneOrderProperty(t *testing.T) {
	f := func(seed int64) bool {
		if seed < 0 {
			seed = -(seed + 1)
		}
		n := int(seed%50) + 10
		w := make([]float32, n)
		v := uint64(seed)
		for i := range w {
			v = v*6364136223846793005 + 1442695040888963407
			w[i] = float32(v%1000)/1000 - 0.5
		}
		orig := append([]float32(nil), w...)
		res, err := ByMagnitude(w, 0.4)
		if err != nil {
			return false
		}
		if res.Kept+res.Pruned != n {
			return false
		}
		// No kept weight may be smaller in magnitude than the threshold;
		// no pruned original may be >= threshold (modulo exact ties).
		for i := range w {
			mag := orig[i]
			if mag < 0 {
				mag = -mag
			}
			if w[i] != 0 && mag < res.Threshold {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
