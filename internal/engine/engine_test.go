package engine

import (
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"sparkxd/internal/coding"
	"sparkxd/internal/core"
	"sparkxd/internal/dataset"
	"sparkxd/internal/errmodel"
	"sparkxd/internal/rng"
	"sparkxd/internal/snn"
	"sparkxd/internal/voltscale"
)

// testFixture returns a small untrained network and test set — engine
// behaviour (determinism, caching, cancellation) does not depend on
// model quality.
func testFixture(t testing.TB) (*snn.Network, *dataset.Dataset) {
	t.Helper()
	net, err := snn.New(snn.DefaultConfig(20), rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	cfg := dataset.DefaultConfig(dataset.MNISTLike)
	cfg.Train, cfg.Test = 4, 12
	_, test, err := dataset.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return net, test
}

// gridSpec is a 2 voltages x 3 BERs x 2 kinds x 2 policies = 24-scenario
// grid with 4 distinct device points.
func gridSpec(workers int) Spec {
	return Spec{
		Voltages: []float64{voltscale.V1100, voltscale.V1025},
		BERs:     []float64{1e-6, 1e-5, 1e-4},
		Kinds:    []errmodel.Kind{errmodel.Model0, errmodel.Model3},
		Policies: []string{PolicyBaseline, PolicySparkXD},
		Seed:     11,
		EvalSeed: 17,
		Workers:  workers,
	}
}

// TestSweepDeterministicAcrossWorkers is the core determinism contract
// (and, under -race, the shared-stream detector: if any scenario drew
// from a stream owned by another goroutine, the race detector would
// flag the xoshiro state mutation).
func TestSweepDeterministicAcrossWorkers(t *testing.T) {
	net, test := testFixture(t)
	ctx := context.Background()

	one, err := New(core.NewFramework()).Run(ctx, net, test, gridSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	workers := runtime.GOMAXPROCS(0)
	if workers < 8 {
		workers = 8
	}
	many, err := New(core.NewFramework()).Run(ctx, net, test, gridSpec(workers))
	if err != nil {
		t.Fatal(err)
	}

	a, err := json.Marshal(one)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(many)
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatalf("workers=1 and workers=%d diverge:\n%s\n---\n%s", workers, a, b)
	}
	if len(one) != 24 {
		t.Fatalf("got %d results, want 24", len(one))
	}
	for i := 1; i < len(one); i++ {
		if one[i-1].Key >= one[i].Key {
			t.Fatalf("results not sorted by key: %q >= %q", one[i-1].Key, one[i].Key)
		}
	}
}

// TestProfileCacheStats verifies profiles are derived exactly once per
// distinct (voltage, kind) device point: hits == scenarios − points.
func TestProfileCacheStats(t *testing.T) {
	net, test := testFixture(t)
	e := New(core.NewFramework())
	res, err := e.Run(context.Background(), net, test, gridSpec(4))
	if err != nil {
		t.Fatal(err)
	}
	hits, misses := e.ProfileCacheStats()
	const distinct = 4 // 2 voltages x 2 kinds
	if misses != distinct {
		t.Errorf("profile cache misses = %d, want %d (one derivation per device point)", misses, distinct)
	}
	if want := uint64(len(res)) - distinct; hits != want {
		t.Errorf("profile cache hits = %d, want %d (scenarios - device points)", hits, want)
	}

	// A second sweep over the same grid is fully cache-served.
	if _, err := e.Run(context.Background(), net, test, gridSpec(4)); err != nil {
		t.Fatal(err)
	}
	hits2, misses2 := e.ProfileCacheStats()
	if misses2 != distinct {
		t.Errorf("second sweep re-derived profiles: misses %d -> %d", misses, misses2)
	}
	if hits2 != hits+uint64(len(res)) {
		t.Errorf("second sweep hits = %d, want %d", hits2, hits+uint64(len(res)))
	}
}

// TestSweepCancellation: a cancelled sweep stops at scenario boundaries
// with the context's error.
func TestSweepCancellation(t *testing.T) {
	net, test := testFixture(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := New(core.NewFramework()).Run(ctx, net, test, gridSpec(2))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestUniformGrid exercises the Fig. 8/11 regime: uniform profiles at
// each BER, no voltage axis, no energy numbers.
func TestUniformGrid(t *testing.T) {
	net, test := testFixture(t)
	spec := Spec{
		Uniform:  true,
		BERs:     []float64{0, 1e-4, 1e-2},
		Kinds:    []errmodel.Kind{errmodel.Model0},
		Policies: []string{PolicyBaseline},
		Seed:     5,
		EvalSeed: 17,
		Workers:  4,
	}
	res, err := New(core.NewFramework()).Run(context.Background(), net, test, spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 {
		t.Fatalf("got %d results, want 3", len(res))
	}
	var byBER = map[float64]Result{}
	for _, r := range res {
		if r.EnergyMJ != 0 || r.HitRate != 0 {
			t.Errorf("uniform scenario %s must not report energy", r.Key)
		}
		byBER[r.BER] = r
	}
	if byBER[0].FlippedBits != 0 {
		t.Errorf("BER 0 flipped %d bits", byBER[0].FlippedBits)
	}
	if byBER[1e-2].FlippedBits <= byBER[1e-4].FlippedBits {
		t.Errorf("flip counts not increasing with BER: %d @1e-4 vs %d @1e-2",
			byBER[1e-4].FlippedBits, byBER[1e-2].FlippedBits)
	}
}

// TestScenarioStreamsDistinct is the RNG-audit guard: the per-scenario
// streams (scheduler-derived from the scenario key) must differ between
// scenarios, so no two grid points share injection randomness.
func TestScenarioStreamsDistinct(t *testing.T) {
	spec := gridSpec(1)
	seen := map[uint64]string{}
	for _, sc := range spec.Scenarios() {
		v := rng.New(spec.Seed).Derive("job/" + sc.Key()).Derive("inject").Uint64()
		if prev, dup := seen[v]; dup {
			t.Fatalf("scenarios %q and %q derive identical streams", prev, sc.Key())
		}
		seen[v] = sc.Key()
	}
}

func TestSpecValidate(t *testing.T) {
	base := gridSpec(1)
	cases := []struct {
		name   string
		mutate func(*Spec)
	}{
		{"no voltages", func(s *Spec) { s.Voltages = nil }},
		{"no BERs", func(s *Spec) { s.BERs = nil }},
		{"no kinds", func(s *Spec) { s.Kinds = nil }},
		{"no policies", func(s *Spec) { s.Policies = nil }},
		{"negative voltage", func(s *Spec) { s.Voltages = []float64{-1} }},
		{"BER out of range", func(s *Spec) { s.BERs = []float64{0.9} }},
		{"unknown policy", func(s *Spec) { s.Policies = []string{"mystery"} }},
		{"colliding BERs", func(s *Spec) { s.BERs = []float64{1.0000e-5, 1.00004e-5} }},
	}
	for _, tc := range cases {
		spec := base
		tc.mutate(&spec)
		if err := spec.Validate(); err == nil {
			t.Errorf("%s: Validate accepted an invalid spec", tc.name)
		}
	}
	if err := base.Validate(); err != nil {
		t.Errorf("valid spec rejected: %v", err)
	}
}

// uniformSpec matches the second half of the committed scenario-key
// golden: three uniform BER points, no voltage axis.
func uniformSpec() Spec {
	return Spec{
		Uniform:  true,
		BERs:     []float64{0, 1e-4, 1e-2},
		Kinds:    []errmodel.Kind{errmodel.Model0},
		Policies: []string{PolicyBaseline},
		Seed:     5,
		EvalSeed: 17,
	}
}

// TestScenarioKeysGolden pins scenario keys (and therefore cache keys
// and RNG derivation paths) to the committed pre-refactor golden. A
// diff here means existing sweep artifacts and job results silently
// changed identity.
func TestScenarioKeysGolden(t *testing.T) {
	raw, err := os.ReadFile(filepath.Join("testdata", "scenario_keys.json"))
	if err != nil {
		t.Fatal(err)
	}
	var want []string
	if err := json.Unmarshal(raw, &want); err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, sc := range append(gridSpec(1).Scenarios(), uniformSpec().Scenarios()...) {
		got = append(got, sc.Key())
	}
	if len(got) != len(want) {
		t.Fatalf("got %d scenario keys, golden has %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("scenario %d key = %q, golden %q", i, got[i], want[i])
		}
	}
}

// multiAxisSpec extends the legacy grid with every new axis: 24 legacy
// scenarios x 2 bitwidths x 2 prune levels x 2 encoders = 192.
func multiAxisSpec(workers int) Spec {
	spec := gridSpec(workers)
	spec.Bitwidths = []int{0, 16}
	spec.PruneLevels = []float64{0, 0.5}
	spec.Encoders = []EncoderAxis{{}, {Name: "ttfs", Coder: coding.TTFS{}}}
	return spec
}

// TestScenarioKeyAxisElision: default axis values leave the key in its
// legacy 4-segment shape; non-defaults append fixed-format suffixes.
func TestScenarioKeyAxisElision(t *testing.T) {
	base := Scenario{Voltage: 1.1, BER: 1e-5, Kind: errmodel.Model0, Policy: PolicyBaseline}
	if got, want := base.Key(), "v1.1000/ber1.000e-05/model0-uniform/baseline"; got != want {
		t.Fatalf("legacy key = %q, want %q", got, want)
	}
	full := base
	full.Bits = 16
	full.Prune = 0.5
	full.Encoder = EncoderAxis{Name: "ttfs", Coder: coding.TTFS{}}
	want := "v1.1000/ber1.000e-05/model0-uniform/baseline/bw16/pr0.5000/enc-ttfs"
	if got := full.Key(); got != want {
		t.Fatalf("extended key = %q, want %q", got, want)
	}

	// Suffixes are independent: each non-default axis appears alone.
	one := base
	one.Prune = 0.25
	if got, want := one.Key(), base.Key()+"/pr0.2500"; got != want {
		t.Fatalf("prune-only key = %q, want %q", got, want)
	}
}

// TestMultiAxisScenarioEnumeration: the grid is the full cross product
// and every key is distinct (so per-scenario RNG streams stay distinct
// on new axes too).
func TestMultiAxisScenarioEnumeration(t *testing.T) {
	spec := multiAxisSpec(1)
	scs := spec.Scenarios()
	if len(scs) != 192 {
		t.Fatalf("got %d scenarios, want 192 (24 legacy x 2 x 2 x 2)", len(scs))
	}
	seenKey := map[string]bool{}
	seenStream := map[uint64]string{}
	for _, sc := range scs {
		k := sc.Key()
		if seenKey[k] {
			t.Fatalf("duplicate scenario key %q", k)
		}
		seenKey[k] = true
		v := rng.New(spec.Seed).Derive("job/" + k).Derive("inject").Uint64()
		if prev, dup := seenStream[v]; dup {
			t.Fatalf("scenarios %q and %q derive identical streams", prev, k)
		}
		seenStream[v] = k
	}
}

// TestMultiAxisDeterministicAcrossWorkers extends the workers-1-vs-N
// byte-identity contract (DESIGN.md §7) to the bitwidth, pruning, and
// encoder axes.
func TestMultiAxisDeterministicAcrossWorkers(t *testing.T) {
	net, test := testFixture(t)
	ctx := context.Background()

	// Trim the voltage/BER axes to keep the grid small: 1x1x2x2 legacy
	// x 2 bitwidths x 2 prune levels x 2 encoders = 32 scenarios.
	shrink := func(workers int) Spec {
		spec := multiAxisSpec(workers)
		spec.Voltages = spec.Voltages[:1]
		spec.BERs = spec.BERs[:1]
		return spec
	}
	one, err := New(core.NewFramework()).Run(ctx, net, test, shrink(1))
	if err != nil {
		t.Fatal(err)
	}
	many, err := New(core.NewFramework()).Run(ctx, net, test, shrink(8))
	if err != nil {
		t.Fatal(err)
	}
	a, err := json.Marshal(one)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(many)
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatalf("workers=1 and workers=8 diverge on extended axes:\n%s\n---\n%s", a, b)
	}
	if len(one) != 32 {
		t.Fatalf("got %d results, want 32", len(one))
	}
	for _, r := range one {
		if r.Bitwidth != 0 && r.Bitwidth != 16 {
			t.Errorf("result %s echoes bitwidth %d", r.Key, r.Bitwidth)
		}
		if r.Encoder != "" && r.Encoder != "ttfs" {
			t.Errorf("result %s echoes encoder %q", r.Key, r.Encoder)
		}
	}
}

// TestSpecValidateExtendedAxes covers the new-axis rejections.
func TestSpecValidateExtendedAxes(t *testing.T) {
	base := gridSpec(1)
	cases := []struct {
		name   string
		mutate func(*Spec)
	}{
		{"unsupported bitwidth", func(s *Spec) { s.Bitwidths = []int{8} }},
		{"negative prune", func(s *Spec) { s.PruneLevels = []float64{-0.1} }},
		{"prune of everything", func(s *Spec) { s.PruneLevels = []float64{1} }},
		{"encoder name without coder", func(s *Spec) { s.Encoders = []EncoderAxis{{Name: "ttfs"}} }},
		{"encoder coder without name", func(s *Spec) { s.Encoders = []EncoderAxis{{Coder: coding.TTFS{}}} }},
	}
	for _, tc := range cases {
		spec := base
		tc.mutate(&spec)
		if err := spec.Validate(); err == nil {
			t.Errorf("%s: Validate accepted an invalid spec", tc.name)
		}
	}
	valid := multiAxisSpec(1)
	if err := valid.Validate(); err != nil {
		t.Errorf("valid multi-axis spec rejected: %v", err)
	}
}
