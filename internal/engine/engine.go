// Package engine is the batched scenario-sweep evaluation engine: it
// takes a trained SNN and a declarative scenario grid (supply voltages ×
// bit-error rates × EDEN error-model kinds × mapping policies), fans the
// cross-product out over the internal/sched work-stealing pool, and
// returns one deterministic accuracy/energy record per scenario.
//
// The sweep decomposes into independent scenario jobs that share their
// expensive invariants:
//
//   - device error profiles are derived once per device point through a
//     single-flight sched.Cache keyed by (voltage, error-model kind,
//     device seed) — a (2 voltages × 7 BERs × policies) grid derives 2
//     profiles, not 14×;
//   - DRAM layouts and prepared injectors (weak-cell sets) are cached per
//     (profile, policy, threshold), so every baseline-policy scenario of
//     one device point shares a single placement pass;
//   - each worker corrupts weights into its own pooled scratch buffer and
//     evaluates through its own snn.Evaluator, so the hot path allocates
//     nothing per scenario after warm-up.
//
// Determinism contract (same as internal/sched, DESIGN.md §6/§7): every
// scenario draws its injection randomness from a stream derived from the
// scheduler seed and the scenario *key* — never from execution order or
// worker identity — and results are returned sorted by key, so a sweep is
// byte-identical for any worker count. Evaluation uses one shared
// EvalSeed across scenarios (paired evaluation on identical spike
// trains), which every scenario re-expands into its own private stream.
package engine

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"

	"sparkxd/internal/core"
	"sparkxd/internal/dataset"
	"sparkxd/internal/errmodel"
	"sparkxd/internal/mapping"
	"sparkxd/internal/quant"
	"sparkxd/internal/rng"
	"sparkxd/internal/sched"
	"sparkxd/internal/snn"
)

// Mapping policy names accepted by Spec.Policies.
const (
	PolicyBaseline = "baseline"
	PolicySparkXD  = "sparkxd"
)

// Spec declares a scenario grid as the cross-product of its axes.
type Spec struct {
	// Voltages are the supply voltages to characterize the device at.
	// Ignored (may be empty) when Uniform is set.
	Voltages []float64
	// BERs are the per-scenario bit-error-rate points: the mapping
	// threshold (BERth) for the sparkxd policy, and — when Uniform is
	// set — the uniform injection rate itself.
	BERs []float64
	// Kinds are the EDEN error models to inject with.
	Kinds []errmodel.Kind
	// Policies are the mapping policies ("baseline", "sparkxd").
	Policies []string
	// Uniform switches the profile source from voltage-derived device
	// profiles to uniform profiles at exactly the scenario BER — the
	// regime of the paper's Figs. 8 and 11 (rates, not voltages, drive
	// the sweep). The sparkxd policy is not meaningful against a uniform
	// profile (every subarray is equally safe or unsafe).
	Uniform bool
	// Seed roots every per-scenario injection stream (derived from the
	// scenario key, never from execution order).
	Seed uint64
	// EvalSeed drives spike encoding during evaluation; it is shared by
	// every scenario so that accuracies are compared on identical spike
	// trains (paired evaluation).
	EvalSeed uint64
	// Workers bounds the scheduler pool; <= 0 means GOMAXPROCS.
	Workers int
}

// Scenario is one evaluation point of the grid.
type Scenario struct {
	Voltage float64
	BER     float64
	Kind    errmodel.Kind
	Policy  string
}

// Key returns the scenario's canonical identity. It is the seed-
// derivation path of the scenario's injection stream and the sort key of
// the sweep results, so it must be stable across releases.
func (sc Scenario) Key() string {
	return fmt.Sprintf("v%.4f/ber%.3e/%s/%s", sc.Voltage, sc.BER, sc.Kind, sc.Policy)
}

// Result is the outcome of one scenario, deterministic in (spec, model,
// device): identical for any worker count.
type Result struct {
	Key     string  `json:"key"`
	Voltage float64 `json:"voltage"`
	BER     float64 `json:"ber"`
	Kind    string  `json:"error_model"`
	Policy  string  `json:"policy"`
	// EffectiveBERth is the mapping threshold actually used (the sparkxd
	// policy relaxes the scenario BER until the image fits).
	EffectiveBERth float64 `json:"effective_ber_th"`
	// SafeSubarrays counts subarrays at or below the effective threshold.
	SafeSubarrays int `json:"safe_subarrays"`
	// FlippedBits is the number of bit errors this scenario injected.
	FlippedBits int64 `json:"flipped_bits"`
	// Accuracy is the model's accuracy under the scenario's errors.
	Accuracy float64 `json:"accuracy"`
	// EnergyMJ and HitRate describe one weight-streaming inference pass
	// over the scenario's layout at the scenario voltage (voltage-derived
	// grids only; zero when Uniform).
	EnergyMJ float64 `json:"energy_mj,omitempty"`
	HitRate  float64 `json:"hit_rate,omitempty"`
}

// Engine evaluates scenario grids against one framework (device models,
// error-model kind selection happens per scenario). The caches persist
// across Run calls, so repeated sweeps against the same device share
// profiles and placements. An Engine is safe for concurrent use.
type Engine struct {
	fw *core.Framework
	// profiles single-flights device-profile derivation, keyed by
	// (voltage | uniform BER, error-model kind, device seed).
	profiles *sched.Cache
	// prepared single-flights layout construction and injector weak-cell
	// preparation, keyed by (profile key, policy, threshold, image size).
	prepared *sched.Cache
	// encMu/enc cache the encoded test set across Run calls: spike
	// trains depend only on (dataset, encoder, steps, EvalSeed), so
	// repeated sweeps against one system — the serve/fleet steady state —
	// encode the test set once, not once per Run.
	encMu sync.Mutex
	enc   *snn.EncodedSet
}

// New returns an engine over the framework's device models.
func New(fw *core.Framework) *Engine {
	return &Engine{fw: fw, profiles: sched.NewCache(), prepared: sched.NewCache()}
}

// ProfileCacheStats returns the cumulative hit/miss counts of the
// profile cache. After one Run over a grid, misses equals the number of
// distinct device points and hits equals scenarios − distinct points.
func (e *Engine) ProfileCacheStats() (hits, misses uint64) { return e.profiles.Stats() }

// Scenarios expands the spec's cross-product in axis order (voltage,
// BER, kind, policy).
func (s Spec) Scenarios() []Scenario {
	voltages := s.Voltages
	if s.Uniform {
		voltages = []float64{0}
	}
	out := make([]Scenario, 0, len(voltages)*len(s.BERs)*len(s.Kinds)*len(s.Policies))
	for _, v := range voltages {
		for _, ber := range s.BERs {
			for _, k := range s.Kinds {
				for _, pol := range s.Policies {
					out = append(out, Scenario{Voltage: v, BER: ber, Kind: k, Policy: pol})
				}
			}
		}
	}
	return out
}

// Validate reports whether the spec describes a runnable grid.
func (s Spec) Validate() error {
	switch {
	case !s.Uniform && len(s.Voltages) == 0:
		return errors.New("engine: no voltages in sweep spec")
	case len(s.BERs) == 0:
		return errors.New("engine: no BER points in sweep spec")
	case len(s.Kinds) == 0:
		return errors.New("engine: no error models in sweep spec")
	case len(s.Policies) == 0:
		return errors.New("engine: no mapping policies in sweep spec")
	}
	if !s.Uniform {
		for _, v := range s.Voltages {
			if v <= 0 {
				return fmt.Errorf("engine: non-positive voltage %v in sweep spec", v)
			}
		}
	}
	for _, b := range s.BERs {
		if b < 0 || b > 0.5 {
			return fmt.Errorf("engine: BER %v outside [0, 0.5]", b)
		}
	}
	for _, p := range s.Policies {
		if p != PolicyBaseline && p != PolicySparkXD {
			return fmt.Errorf("engine: unknown mapping policy %q", p)
		}
	}
	seen := make(map[string]bool)
	for _, sc := range s.Scenarios() {
		key := sc.Key()
		if seen[key] {
			return fmt.Errorf("engine: duplicate scenario %q (axis values collide at key precision)", key)
		}
		seen[key] = true
	}
	return nil
}

// scratch is the per-worker reusable evaluation state: the injected
// weight copy, its serialized image, and the batched evaluator.
type scratch struct {
	w   []float32
	img []byte
	ev  *snn.Evaluator
}

// prep is one cached (layout, prepared injector) pair. effTh and safe
// are only meaningful for the sparkxd policy, whose cache key includes
// the threshold; the baseline prep is shared across BER points and its
// per-scenario threshold fields are derived by the caller instead.
type prep struct {
	layout *mapping.Layout
	inj    *errmodel.Injector
	effTh  float64
	safe   int
}

// Run evaluates every scenario of the grid against the network and test
// set, and returns the results sorted by scenario key. Cancellation is
// checked at scenario boundaries; a cancelled run returns ctx.Err()
// wrapped in the first failing scenario's error.
func (e *Engine) Run(ctx context.Context, net *snn.Network, test *dataset.Dataset, spec Spec) ([]Result, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if net == nil {
		return nil, errors.New("engine: nil network")
	}
	if test == nil || test.Len() == 0 {
		return nil, errors.New("engine: empty test set")
	}

	weights := net.WeightsFlat() // shared read-only master copy
	scenarios := spec.Scenarios()

	// Parallelism splits across two levels: scenario jobs fan out over
	// the scheduler pool, and each evaluation fans its drive precompute
	// out over evalWorkers. When the grid is wide the scenario level
	// saturates the machine and evaluations stay sequential; when the
	// grid is narrower than the pool (the single-big-job case) the spare
	// workers move inside the evaluation. Results are bit-identical
	// either way (snn.EvaluateEncoded's contract).
	workers := spec.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	evalWorkers := workers / len(scenarios)
	if evalWorkers < 1 {
		evalWorkers = 1
	}

	// Every scenario evaluates on the same spike trains (paired
	// evaluation, one shared EvalSeed), so the test set is encoded once
	// here and shared read-only by all workers.
	es, err := e.encodedTestSet(ctx, net, test, spec, workers)
	if err != nil {
		return nil, fmt.Errorf("engine: encode test set: %w", err)
	}

	pool := sync.Pool{New: func() any {
		return &scratch{ev: snn.NewEvaluatorWorkers(net, evalWorkers)}
	}}

	s, err := sched.New(sched.Config{Workers: spec.Workers, Seed: spec.Seed})
	if err != nil {
		return nil, fmt.Errorf("engine: %w", err)
	}
	for _, sc := range scenarios {
		sc := sc
		err := s.Add(sched.Job{Name: sc.Key(), Run: func(c *sched.Ctx) (any, error) {
			// Scenario-boundary cancellation: a cancelled sweep stops
			// before deriving profiles or corrupting weights.
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			return e.runScenario(ctx, sc, spec, weights, es, &pool, c.RNG)
		}})
		if err != nil {
			return nil, fmt.Errorf("engine: %w", err)
		}
	}

	reports, runErr := s.Run()
	if runErr != nil {
		return nil, fmt.Errorf("engine: %w", runErr)
	}
	out := make([]Result, len(reports)) // name order == key order
	for i, rep := range reports {
		out[i] = rep.Value.(Result)
	}
	return out, nil
}

// runScenario evaluates one grid point. r is the scenario's private
// stream (derived by the scheduler from the scenario key); es is the
// run-wide encoded test set.
func (e *Engine) runScenario(ctx context.Context, sc Scenario, spec Spec,
	weights []float32, es *snn.EncodedSet, pool *sync.Pool, r *rng.Stream) (Result, error) {
	profile, profileKey, err := e.profileFor(sc, spec)
	if err != nil {
		return Result{}, err
	}
	p, err := e.prepFor(sc, profileKey, profile, len(weights))
	if err != nil {
		return Result{}, err
	}
	effTh, safe := p.effTh, p.safe
	if sc.Policy == PolicyBaseline {
		// The baseline prep is shared across BER points (the layout does
		// not depend on the threshold), so the per-scenario threshold
		// fields must be derived here, not read from the cache.
		effTh, safe = sc.BER, profile.SafeCount(sc.BER)
	}

	s := pool.Get().(*scratch)
	defer pool.Put(s)
	flips, err := e.corruptInto(s, weights, p, r.Derive("inject"))
	if err != nil {
		return Result{}, err
	}
	acc, err := s.ev.EvaluateWeightsEncoded(ctx, es, s.w)
	if err != nil {
		return Result{}, err
	}

	res := Result{
		Key:            sc.Key(),
		Voltage:        sc.Voltage,
		BER:            sc.BER,
		Kind:           sc.Kind.String(),
		Policy:         sc.Policy,
		EffectiveBERth: effTh,
		SafeSubarrays:  safe,
		FlippedBits:    flips,
		Accuracy:       acc,
	}
	if !spec.Uniform {
		energy, err := e.fw.EvaluateEnergy(p.layout, sc.Voltage)
		if err != nil {
			return Result{}, err
		}
		res.EnergyMJ = energy.TotalMJ()
		res.HitRate = energy.Stats.HitRate()
	}
	return res, nil
}

// encodedTestSet returns the sweep's pre-encoded spike trains, reusing
// the cached set when the dataset, encoder, steps, and EvalSeed all
// match the previous Run (trains do not depend on the network's weights
// or thresholds). Encoding runs under the mutex, single-flighted.
func (e *Engine) encodedTestSet(ctx context.Context, net *snn.Network, test *dataset.Dataset, spec Spec, workers int) (*snn.EncodedSet, error) {
	e.encMu.Lock()
	defer e.encMu.Unlock()
	r := rng.New(spec.EvalSeed)
	if e.enc != nil && e.enc.Matches(&net.Cfg, test, r) {
		return e.enc, nil
	}
	es, err := net.EncodeDataset(ctx, test, r, workers)
	if err != nil {
		return nil, err
	}
	e.enc = es
	return es, nil
}

// profileFor returns the scenario's device profile through the
// single-flight cache, deriving it at most once per device point.
func (e *Engine) profileFor(sc Scenario, spec Spec) (*errmodel.Profile, string, error) {
	var key string
	if spec.Uniform {
		key = fmt.Sprintf("profile/uniform/ber%.3e/%s/seed%d", sc.BER, sc.Kind, e.fw.DeviceSeed)
	} else {
		key = fmt.Sprintf("profile/v%.4f/%s/seed%d", sc.Voltage, sc.Kind, e.fw.DeviceSeed)
	}
	v, err := e.profiles.GetOrCompute(key, func() (any, error) {
		if spec.Uniform {
			return errmodel.UniformProfile(e.fw.Geom, sc.BER, e.fw.DeviceSeed)
		}
		return e.fw.ProfileAt(sc.Voltage)
	})
	if err != nil {
		return nil, "", err
	}
	return v.(*errmodel.Profile), key, nil
}

// prepFor returns the scenario's (layout, prepared injector) pair through
// the single-flight cache. Prepared injectors are read-only during
// Inject, so concurrent scenarios of the same device point share one
// weak-cell derivation pass.
func (e *Engine) prepFor(sc Scenario, profileKey string, profile *errmodel.Profile, weightCount int) (*prep, error) {
	key := fmt.Sprintf("prep/%s/%s/n%d", profileKey, sc.Policy, weightCount)
	if sc.Policy == PolicySparkXD {
		key = fmt.Sprintf("prep/%s/%s/th%.3e/n%d", profileKey, sc.Policy, sc.BER, weightCount)
	}
	v, err := e.prepared.GetOrCompute(key, func() (any, error) {
		p := &prep{effTh: sc.BER}
		switch sc.Policy {
		case PolicyBaseline:
			layout, err := e.fw.LayoutForWeights(weightCount, nil)
			if err != nil {
				return nil, err
			}
			p.layout = layout
		case PolicySparkXD:
			layout, th, err := e.fw.MapAdaptiveWithProfile(profile, weightCount, sc.BER)
			if err != nil {
				return nil, fmt.Errorf("engine: scenario %s: %w", sc.Key(), err)
			}
			p.layout, p.effTh = layout, th
		}
		p.safe = profile.SafeCount(p.effTh)
		p.inj = errmodel.NewInjector(sc.Kind, profile)
		p.inj.Prepare(p.layout)
		return p, nil
	})
	if err != nil {
		return nil, err
	}
	return v.(*prep), nil
}

// corruptInto serializes the master weights into the scratch image,
// injects the scenario's bit errors, and deserializes into the scratch
// weight buffer — the pooled equivalent of core.CorruptWeights.
func (e *Engine) corruptInto(s *scratch, weights []float32, p *prep, r *rng.Stream) (int64, error) {
	need := e.fw.Format.ImageSize(len(weights), p.layout.UnitBytes())
	if cap(s.img) < need {
		s.img = make([]byte, need)
	}
	s.img = s.img[:need]
	// Serialize leaves padding bytes untouched; zero them so a reused
	// buffer cannot leak the previous scenario's bits into this one
	// (Model3 failure probabilities are data-dependent).
	for i := len(weights) * e.fw.Format.BytesPerWeight(); i < need; i++ {
		s.img[i] = 0
	}
	if err := quant.Serialize(weights, e.fw.Format, s.img); err != nil {
		return 0, fmt.Errorf("engine: serialize: %w", err)
	}
	flips := p.inj.Inject(s.img, p.layout, r)
	if cap(s.w) < len(weights) {
		s.w = make([]float32, len(weights))
	}
	s.w = s.w[:len(weights)]
	if err := quant.Deserialize(s.img, e.fw.Format, s.w); err != nil {
		return 0, fmt.Errorf("engine: deserialize: %w", err)
	}
	return flips, nil
}
