// Package engine is the batched scenario-sweep evaluation engine: it
// takes a trained SNN and a declarative scenario grid (supply voltages ×
// bit-error rates × EDEN error-model kinds × mapping policies, plus the
// optional stored-weight bitwidth, prune-level, and spike-encoder axes),
// fans the cross-product out over the internal/sched work-stealing pool,
// and returns one deterministic accuracy/energy record per scenario.
//
// The sweep decomposes into independent scenario jobs that share their
// expensive invariants:
//
//   - device error profiles are derived once per device point through a
//     single-flight sched.Cache keyed by (voltage, error-model kind,
//     device seed) — a (2 voltages × 7 BERs × policies) grid derives 2
//     profiles, not 14×;
//   - DRAM layouts and prepared injectors (weak-cell sets) are cached per
//     (profile, policy, threshold), so every baseline-policy scenario of
//     one device point shares a single placement pass;
//   - each worker corrupts weights into its own pooled scratch buffer and
//     evaluates through its own snn.Evaluator, so the hot path allocates
//     nothing per scenario after warm-up.
//
// Determinism contract (same as internal/sched, DESIGN.md §6/§7): every
// scenario draws its injection randomness from a stream derived from the
// scheduler seed and the scenario *key* — never from execution order or
// worker identity — and results are returned sorted by key, so a sweep is
// byte-identical for any worker count. Evaluation uses one shared
// EvalSeed across scenarios (paired evaluation on identical spike
// trains), which every scenario re-expands into its own private stream.
package engine

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"

	"sparkxd/internal/coding"
	"sparkxd/internal/core"
	"sparkxd/internal/dataset"
	"sparkxd/internal/errmodel"
	"sparkxd/internal/mapping"
	"sparkxd/internal/prune"
	"sparkxd/internal/quant"
	"sparkxd/internal/rng"
	"sparkxd/internal/sched"
	"sparkxd/internal/snn"
)

// Mapping policy names accepted by Spec.Policies.
const (
	PolicyBaseline = "baseline"
	PolicySparkXD  = "sparkxd"
)

// Spec declares a scenario grid as the cross-product of its axes.
type Spec struct {
	// Voltages are the supply voltages to characterize the device at.
	// Ignored (may be empty) when Uniform is set.
	Voltages []float64
	// BERs are the per-scenario bit-error-rate points: the mapping
	// threshold (BERth) for the sparkxd policy, and — when Uniform is
	// set — the uniform injection rate itself.
	BERs []float64
	// Kinds are the EDEN error models to inject with.
	Kinds []errmodel.Kind
	// Policies are the mapping policies ("baseline", "sparkxd").
	Policies []string
	// Uniform switches the profile source from voltage-derived device
	// profiles to uniform profiles at exactly the scenario BER — the
	// regime of the paper's Figs. 8 and 11 (rates, not voltages, drive
	// the sweep). The sparkxd policy is not meaningful against a uniform
	// profile (every subarray is equally safe or unsafe).
	Uniform bool
	// Seed roots every per-scenario injection stream (derived from the
	// scenario key, never from execution order).
	Seed uint64
	// EvalSeed drives spike encoding during evaluation; it is shared by
	// every scenario so that accuracies are compared on identical spike
	// trains (paired evaluation).
	EvalSeed uint64
	// Workers bounds the scheduler pool; <= 0 means GOMAXPROCS.
	Workers int

	// The axes below extend the paper's 4-axis grid. An empty axis (or a
	// zero element) means "the framework default" and is elided from
	// scenario keys, so grids that do not exercise an axis keep the exact
	// keys — and therefore RNG streams and cache identities — of the
	// 4-axis engine.

	// Bitwidths are stored-weight bitwidths to sweep (16 = FP16,
	// 32 = FP32); 0 means the framework's configured format.
	Bitwidths []int
	// PruneLevels are fractions of weights zeroed by magnitude before
	// storage, each in [0, 1); 0 means no pruning.
	PruneLevels []float64
	// Encoders are spike-encoder axis points; the zero EncoderAxis means
	// the network's own encoder.
	Encoders []EncoderAxis
}

// EncoderAxis is one point of the spike-encoder axis. The zero value
// selects the network's own encoder and is elided from scenario keys.
type EncoderAxis struct {
	// Name is the short stable axis name embedded in scenario keys
	// ("ttfs", "phase", …); it must be non-empty iff Coder is non-nil.
	Name string
	// Coder encodes the test set for this axis point.
	Coder coding.Encoder
}

// Scenario is one evaluation point of the grid.
type Scenario struct {
	Voltage float64
	BER     float64
	Kind    errmodel.Kind
	Policy  string
	// Bits is the stored-weight bitwidth (0 = framework format).
	Bits int
	// Prune is the pruned weight fraction (0 = none).
	Prune float64
	// Encoder is the spike-encoder axis point (zero = network encoder).
	Encoder EncoderAxis
}

// Key returns the scenario's canonical identity. It is the seed-
// derivation path of the scenario's injection stream and the sort key of
// the sweep results, so it must be stable across releases. Default axis
// values (zero bitwidth/prune, zero EncoderAxis) are elided, keeping
// 4-axis keys byte-identical to the pre-N-axis engine.
func (sc Scenario) Key() string {
	key := fmt.Sprintf("v%.4f/ber%.3e/%s/%s", sc.Voltage, sc.BER, sc.Kind, sc.Policy)
	if sc.Bits != 0 {
		key += fmt.Sprintf("/bw%d", sc.Bits)
	}
	if sc.Prune != 0 {
		key += fmt.Sprintf("/pr%.4f", sc.Prune)
	}
	if sc.Encoder.Name != "" {
		key += "/enc-" + sc.Encoder.Name
	}
	return key
}

// Result is the outcome of one scenario, deterministic in (spec, model,
// device): identical for any worker count.
type Result struct {
	Key     string  `json:"key"`
	Voltage float64 `json:"voltage"`
	BER     float64 `json:"ber"`
	Kind    string  `json:"error_model"`
	Policy  string  `json:"policy"`
	// EffectiveBERth is the mapping threshold actually used (the sparkxd
	// policy relaxes the scenario BER until the image fits).
	EffectiveBERth float64 `json:"effective_ber_th"`
	// SafeSubarrays counts subarrays at or below the effective threshold.
	SafeSubarrays int `json:"safe_subarrays"`
	// FlippedBits is the number of bit errors this scenario injected.
	FlippedBits int64 `json:"flipped_bits"`
	// Bitwidth, PruneLevel, and Encoder echo the scenario's extended-axis
	// values; the zero value means the framework default (and the field is
	// omitted, matching pre-N-axis records).
	Bitwidth   int     `json:"bitwidth,omitempty"`
	PruneLevel float64 `json:"prune_level,omitempty"`
	Encoder    string  `json:"encoder,omitempty"`
	// Accuracy is the model's accuracy under the scenario's errors.
	Accuracy float64 `json:"accuracy"`
	// EnergyMJ and HitRate describe one weight-streaming inference pass
	// over the scenario's layout at the scenario voltage (voltage-derived
	// grids only; zero when Uniform).
	EnergyMJ float64 `json:"energy_mj,omitempty"`
	HitRate  float64 `json:"hit_rate,omitempty"`
}

// Engine evaluates scenario grids against one framework (device models,
// error-model kind selection happens per scenario). The caches persist
// across Run calls, so repeated sweeps against the same device share
// profiles and placements. An Engine is safe for concurrent use.
type Engine struct {
	fw *core.Framework
	// profiles single-flights device-profile derivation, keyed by
	// (voltage | uniform BER, error-model kind, device seed).
	profiles *sched.Cache
	// prepared single-flights layout construction and injector weak-cell
	// preparation, keyed by (profile key, policy, threshold, image size,
	// and — when non-default — the scenario bitwidth).
	prepared *sched.Cache
	// encMu/encs cache the encoded test sets across Run calls, one entry
	// per encoder-axis name ("" = the network's own encoder): spike
	// trains depend only on (dataset, encoder, steps, EvalSeed), so
	// repeated sweeps against one system — the serve/fleet steady state —
	// encode each test-set/encoder pair once, not once per Run.
	encMu sync.Mutex
	encs  map[string]*snn.EncodedSet
}

// New returns an engine over the framework's device models.
func New(fw *core.Framework) *Engine {
	return &Engine{fw: fw, profiles: sched.NewCache(), prepared: sched.NewCache()}
}

// ProfileCacheStats returns the cumulative hit/miss counts of the
// profile cache. After one Run over a grid, misses equals the number of
// distinct device points and hits equals scenarios − distinct points.
func (e *Engine) ProfileCacheStats() (hits, misses uint64) { return e.profiles.Stats() }

// Scenarios expands the spec's cross-product in axis order (voltage,
// BER, kind, policy, bitwidth, prune level, encoder). Empty extended
// axes expand to their single default point, so a 4-axis spec yields
// exactly the pre-N-axis grid.
func (s Spec) Scenarios() []Scenario {
	voltages := s.Voltages
	if s.Uniform {
		voltages = []float64{0}
	}
	bits := s.Bitwidths
	if len(bits) == 0 {
		bits = []int{0}
	}
	prunes := s.PruneLevels
	if len(prunes) == 0 {
		prunes = []float64{0}
	}
	encs := s.Encoders
	if len(encs) == 0 {
		encs = []EncoderAxis{{}}
	}
	n := len(voltages) * len(s.BERs) * len(s.Kinds) * len(s.Policies) * len(bits) * len(prunes) * len(encs)
	out := make([]Scenario, 0, n)
	for _, v := range voltages {
		for _, ber := range s.BERs {
			for _, k := range s.Kinds {
				for _, pol := range s.Policies {
					for _, bw := range bits {
						for _, pr := range prunes {
							for _, enc := range encs {
								out = append(out, Scenario{
									Voltage: v, BER: ber, Kind: k, Policy: pol,
									Bits: bw, Prune: pr, Encoder: enc,
								})
							}
						}
					}
				}
			}
		}
	}
	return out
}

// Validate reports whether the spec describes a runnable grid.
func (s Spec) Validate() error {
	switch {
	case !s.Uniform && len(s.Voltages) == 0:
		return errors.New("engine: no voltages in sweep spec")
	case len(s.BERs) == 0:
		return errors.New("engine: no BER points in sweep spec")
	case len(s.Kinds) == 0:
		return errors.New("engine: no error models in sweep spec")
	case len(s.Policies) == 0:
		return errors.New("engine: no mapping policies in sweep spec")
	}
	if !s.Uniform {
		for _, v := range s.Voltages {
			if v <= 0 {
				return fmt.Errorf("engine: non-positive voltage %v in sweep spec", v)
			}
		}
	}
	for _, b := range s.BERs {
		if b < 0 || b > 0.5 {
			return fmt.Errorf("engine: BER %v outside [0, 0.5]", b)
		}
	}
	for _, p := range s.Policies {
		if p != PolicyBaseline && p != PolicySparkXD {
			return fmt.Errorf("engine: unknown mapping policy %q", p)
		}
	}
	for _, bw := range s.Bitwidths {
		if _, err := formatForBits(bw, 0); err != nil {
			return err
		}
	}
	for _, pr := range s.PruneLevels {
		if pr < 0 || pr >= 1 {
			return fmt.Errorf("engine: prune level %v outside [0, 1)", pr)
		}
	}
	for _, enc := range s.Encoders {
		if (enc.Name == "") != (enc.Coder == nil) {
			return fmt.Errorf("engine: encoder axis %q must set Name and Coder together", enc.Name)
		}
	}
	seen := make(map[string]bool)
	for _, sc := range s.Scenarios() {
		key := sc.Key()
		if seen[key] {
			return fmt.Errorf("engine: duplicate scenario %q (axis values collide at key precision)", key)
		}
		seen[key] = true
	}
	return nil
}

// scratch is the per-worker reusable evaluation state: the injected
// weight copy, its serialized image, and the batched evaluator.
type scratch struct {
	w   []float32
	img []byte
	ev  *snn.Evaluator
}

// prep is one cached (layout, prepared injector) pair. effTh and safe
// are only meaningful for the sparkxd policy, whose cache key includes
// the threshold; the baseline prep is shared across BER points and its
// per-scenario threshold fields are derived by the caller instead.
type prep struct {
	layout *mapping.Layout
	inj    *errmodel.Injector
	effTh  float64
	safe   int
}

// Run evaluates every scenario of the grid against the network and test
// set, and returns the results sorted by scenario key. Cancellation is
// checked at scenario boundaries; a cancelled run returns ctx.Err()
// wrapped in the first failing scenario's error.
func (e *Engine) Run(ctx context.Context, net *snn.Network, test *dataset.Dataset, spec Spec) ([]Result, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if net == nil {
		return nil, errors.New("engine: nil network")
	}
	if test == nil || test.Len() == 0 {
		return nil, errors.New("engine: empty test set")
	}

	weights := net.WeightsFlat() // shared read-only master copy
	scenarios := spec.Scenarios()

	// Parallelism splits across two levels: scenario jobs fan out over
	// the scheduler pool, and each evaluation fans its drive precompute
	// out over evalWorkers. When the grid is wide the scenario level
	// saturates the machine and evaluations stay sequential; when the
	// grid is narrower than the pool (the single-big-job case) the spare
	// workers move inside the evaluation. Results are bit-identical
	// either way (snn.EvaluateEncoded's contract).
	workers := spec.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	evalWorkers := workers / len(scenarios)
	if evalWorkers < 1 {
		evalWorkers = 1
	}

	// Every scenario of one encoder-axis point evaluates on the same
	// spike trains (paired evaluation, one shared EvalSeed), so each
	// distinct encoder's test set is encoded once here and shared
	// read-only by all workers.
	encSets, err := e.encodedTestSets(ctx, net, test, spec, workers)
	if err != nil {
		return nil, fmt.Errorf("engine: encode test set: %w", err)
	}

	// Pruned master-weight variants are shared across the scenarios of
	// one prune level, but must NOT outlive this Run: pruning depends on
	// the actual weight values, which may differ between Run calls on a
	// persistent Engine.
	pruned := sched.NewCache()

	pool := sync.Pool{New: func() any {
		return &scratch{ev: snn.NewEvaluatorWorkers(net, evalWorkers)}
	}}

	s, err := sched.New(sched.Config{Workers: spec.Workers, Seed: spec.Seed})
	if err != nil {
		return nil, fmt.Errorf("engine: %w", err)
	}
	for _, sc := range scenarios {
		sc := sc
		err := s.Add(sched.Job{Name: sc.Key(), Run: func(c *sched.Ctx) (any, error) {
			// Scenario-boundary cancellation: a cancelled sweep stops
			// before deriving profiles or corrupting weights.
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			return e.runScenario(ctx, sc, spec, weights, encSets, pruned, &pool, c.RNG)
		}})
		if err != nil {
			return nil, fmt.Errorf("engine: %w", err)
		}
	}

	reports, runErr := s.Run()
	if runErr != nil {
		return nil, fmt.Errorf("engine: %w", runErr)
	}
	out := make([]Result, len(reports)) // name order == key order
	for i, rep := range reports {
		out[i] = rep.Value.(Result)
	}
	return out, nil
}

// runScenario evaluates one grid point. r is the scenario's private
// stream (derived by the scheduler from the scenario key); encSets maps
// encoder-axis names to the run-wide encoded test sets; pruned is the
// run-local pruned-master-weights cache.
func (e *Engine) runScenario(ctx context.Context, sc Scenario, spec Spec,
	weights []float32, encSets map[string]*snn.EncodedSet, pruned *sched.Cache,
	pool *sync.Pool, r *rng.Stream) (Result, error) {
	format, err := formatForBits(sc.Bits, e.fw.Format)
	if err != nil {
		return Result{}, err
	}
	profile, profileKey, err := e.profileFor(sc, spec)
	if err != nil {
		return Result{}, err
	}
	p, err := e.prepFor(sc, profileKey, profile, len(weights), format)
	if err != nil {
		return Result{}, err
	}
	effTh, safe := p.effTh, p.safe
	if sc.Policy == PolicyBaseline {
		// The baseline prep is shared across BER points (the layout does
		// not depend on the threshold), so the per-scenario threshold
		// fields must be derived here, not read from the cache.
		effTh, safe = sc.BER, profile.SafeCount(sc.BER)
	}

	w := weights
	if sc.Prune != 0 {
		if w, err = prunedWeights(pruned, weights, sc.Prune); err != nil {
			return Result{}, err
		}
	}

	s := pool.Get().(*scratch)
	defer pool.Put(s)
	flips, err := e.corruptInto(s, w, p, format, r.Derive("inject"))
	if err != nil {
		return Result{}, err
	}
	es := encSets[sc.Encoder.Name]
	if es == nil {
		return Result{}, fmt.Errorf("engine: no encoded test set for encoder axis %q", sc.Encoder.Name)
	}
	// Point the pooled evaluator at the scenario's encoder so the
	// encoded-set identity check passes; evaluation itself reads only the
	// pre-encoded trains, so results do not depend on which scenario last
	// used this scratch.
	s.ev.SetEncoder(sc.Encoder.Coder)
	acc, err := s.ev.EvaluateWeightsEncoded(ctx, es, s.w)
	if err != nil {
		return Result{}, err
	}

	res := Result{
		Key:            sc.Key(),
		Voltage:        sc.Voltage,
		BER:            sc.BER,
		Kind:           sc.Kind.String(),
		Policy:         sc.Policy,
		EffectiveBERth: effTh,
		SafeSubarrays:  safe,
		FlippedBits:    flips,
		Bitwidth:       sc.Bits,
		PruneLevel:     sc.Prune,
		Encoder:        sc.Encoder.Name,
		Accuracy:       acc,
	}
	if !spec.Uniform {
		energy, err := e.fw.EvaluateEnergy(p.layout, sc.Voltage)
		if err != nil {
			return Result{}, err
		}
		res.EnergyMJ = energy.TotalMJ()
		res.HitRate = energy.Stats.HitRate()
	}
	return res, nil
}

// encodedTestSets returns the sweep's pre-encoded spike trains, one set
// per encoder-axis point, reusing cached sets when the dataset, encoder,
// steps, and EvalSeed all match a previous Run (trains do not depend on
// the network's weights or thresholds). Every encoder expands the same
// EvalSeed root, so accuracies stay paired across the encoder axis.
// Encoding runs under the mutex, single-flighted.
func (e *Engine) encodedTestSets(ctx context.Context, net *snn.Network, test *dataset.Dataset, spec Spec, workers int) (map[string]*snn.EncodedSet, error) {
	e.encMu.Lock()
	defer e.encMu.Unlock()
	if e.encs == nil {
		e.encs = make(map[string]*snn.EncodedSet)
	}
	axes := spec.Encoders
	if len(axes) == 0 {
		axes = []EncoderAxis{{}}
	}
	out := make(map[string]*snn.EncodedSet, len(axes))
	for _, ax := range axes {
		r := rng.New(spec.EvalSeed)
		encName := net.Cfg.Encoder.Name()
		if ax.Coder != nil {
			encName = ax.Coder.Name()
		}
		if cached := e.encs[ax.Name]; cached != nil && cached.MatchesFor(test, r, net.Cfg.Steps, encName) {
			out[ax.Name] = cached
			continue
		}
		es, err := net.EncodeDatasetWith(ctx, test, ax.Coder, r, workers)
		if err != nil {
			return nil, err
		}
		e.encs[ax.Name] = es
		out[ax.Name] = es
	}
	return out, nil
}

// formatForBits resolves a scenario bitwidth to a stored-weight format;
// the 0 default resolves to def (the framework's configured format).
func formatForBits(bits int, def quant.Format) (quant.Format, error) {
	switch bits {
	case 0:
		return def, nil
	case 16:
		return quant.FP16, nil
	case 32:
		return quant.FP32, nil
	default:
		return def, fmt.Errorf("engine: unsupported bitwidth %d (valid: 16, 32)", bits)
	}
}

// prunedWeights returns the master weights with the scenario's prune
// level applied, single-flighted per level through the run-local cache
// (the returned slice is shared read-only by every scenario of that
// level).
func prunedWeights(cache *sched.Cache, weights []float32, level float64) ([]float32, error) {
	v, err := cache.GetOrCompute(fmt.Sprintf("pruned/pr%.4f", level), func() (any, error) {
		w := append([]float32(nil), weights...)
		if _, err := prune.ByMagnitude(w, 1-level); err != nil {
			return nil, fmt.Errorf("engine: prune level %v: %w", level, err)
		}
		return w, nil
	})
	if err != nil {
		return nil, err
	}
	return v.([]float32), nil
}

// profileFor returns the scenario's device profile through the
// single-flight cache, deriving it at most once per device point.
func (e *Engine) profileFor(sc Scenario, spec Spec) (*errmodel.Profile, string, error) {
	var key string
	if spec.Uniform {
		key = fmt.Sprintf("profile/uniform/ber%.3e/%s/seed%d", sc.BER, sc.Kind, e.fw.DeviceSeed)
	} else {
		key = fmt.Sprintf("profile/v%.4f/%s/seed%d", sc.Voltage, sc.Kind, e.fw.DeviceSeed)
	}
	v, err := e.profiles.GetOrCompute(key, func() (any, error) {
		if spec.Uniform {
			return errmodel.UniformProfile(e.fw.Geom, sc.BER, e.fw.DeviceSeed)
		}
		return e.fw.ProfileAt(sc.Voltage)
	})
	if err != nil {
		return nil, "", err
	}
	return v.(*errmodel.Profile), key, nil
}

// prepFor returns the scenario's (layout, prepared injector) pair through
// the single-flight cache. Prepared injectors are read-only during
// Inject, so concurrent scenarios of the same device point share one
// weak-cell derivation pass.
func (e *Engine) prepFor(sc Scenario, profileKey string, profile *errmodel.Profile, weightCount int, format quant.Format) (*prep, error) {
	key := fmt.Sprintf("prep/%s/%s/n%d", profileKey, sc.Policy, weightCount)
	if sc.Policy == PolicySparkXD {
		key = fmt.Sprintf("prep/%s/%s/th%.3e/n%d", profileKey, sc.Policy, sc.BER, weightCount)
	}
	if sc.Bits != 0 {
		// A non-default bitwidth changes the image size and therefore the
		// layout and weak-cell preparation; prune levels do NOT (pruned
		// weights still occupy their cells), so prune is absent here.
		key = fmt.Sprintf("%s/bw%d", key, sc.Bits)
	}
	v, err := e.prepared.GetOrCompute(key, func() (any, error) {
		p := &prep{effTh: sc.BER}
		switch sc.Policy {
		case PolicyBaseline:
			layout, err := e.fw.LayoutForWeightsIn(format, weightCount, nil)
			if err != nil {
				return nil, err
			}
			p.layout = layout
		case PolicySparkXD:
			layout, th, err := e.fw.MapAdaptiveWithProfileIn(format, profile, weightCount, sc.BER)
			if err != nil {
				return nil, fmt.Errorf("engine: scenario %s: %w", sc.Key(), err)
			}
			p.layout, p.effTh = layout, th
		}
		p.safe = profile.SafeCount(p.effTh)
		p.inj = errmodel.NewInjector(sc.Kind, profile)
		p.inj.Prepare(p.layout)
		return p, nil
	})
	if err != nil {
		return nil, err
	}
	return v.(*prep), nil
}

// corruptInto serializes the master weights into the scratch image in
// the scenario's stored-weight format, injects the scenario's bit
// errors, and deserializes into the scratch weight buffer — the pooled
// equivalent of core.CorruptWeights.
func (e *Engine) corruptInto(s *scratch, weights []float32, p *prep, format quant.Format, r *rng.Stream) (int64, error) {
	need := format.ImageSize(len(weights), p.layout.UnitBytes())
	if cap(s.img) < need {
		s.img = make([]byte, need)
	}
	s.img = s.img[:need]
	// Serialize leaves padding bytes untouched; zero them so a reused
	// buffer cannot leak the previous scenario's bits into this one
	// (Model3 failure probabilities are data-dependent).
	for i := len(weights) * format.BytesPerWeight(); i < need; i++ {
		s.img[i] = 0
	}
	if err := quant.Serialize(weights, format, s.img); err != nil {
		return 0, fmt.Errorf("engine: serialize: %w", err)
	}
	flips := p.inj.Inject(s.img, p.layout, r)
	if cap(s.w) < len(weights) {
		s.w = make([]float32, len(weights))
	}
	s.w = s.w[:len(weights)]
	if err := quant.Deserialize(s.img, format, s.w); err != nil {
		return 0, fmt.Errorf("engine: deserialize: %w", err)
	}
	return flips, nil
}
