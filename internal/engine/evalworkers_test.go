package engine

import (
	"context"
	"encoding/json"
	"testing"

	"sparkxd/internal/core"
	"sparkxd/internal/errmodel"
	"sparkxd/internal/voltscale"
)

// TestSingleScenarioEvalWorkersInvariance pins the intra-evaluation
// parallelism path: with one scenario and many workers, Run routes the
// surplus workers into the drive-precompute evaluation pipeline
// (evalWorkers = Workers / scenarios), and the result must be
// byte-identical to the fully sequential sweep. The grid sweep test
// keeps evalWorkers at 1, so this is the only coverage of that path at
// the engine level.
func TestSingleScenarioEvalWorkersInvariance(t *testing.T) {
	net, test := testFixture(t)
	ctx := context.Background()
	spec := Spec{
		Voltages: []float64{voltscale.V1025},
		BERs:     []float64{1e-4},
		Kinds:    []errmodel.Kind{errmodel.Model0},
		Policies: []string{PolicyBaseline},
		Seed:     11,
		EvalSeed: 17,
		Workers:  1,
	}

	one, err := New(core.NewFramework()).Run(ctx, net, test, spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(one) != 1 {
		t.Fatalf("got %d results, want 1", len(one))
	}
	for _, workers := range []int{4, 8} {
		spec.Workers = workers
		many, err := New(core.NewFramework()).Run(ctx, net, test, spec)
		if err != nil {
			t.Fatal(err)
		}
		a, _ := json.Marshal(one)
		b, _ := json.Marshal(many)
		if string(a) != string(b) {
			t.Fatalf("Workers=1 and Workers=%d diverge on a single scenario:\n%s\n---\n%s", workers, a, b)
		}
	}

	// Repeated runs on one engine share the encoded test set; results must
	// not drift across reuse.
	e := New(core.NewFramework())
	spec.Workers = 8
	first, err := e.Run(ctx, net, test, spec)
	if err != nil {
		t.Fatal(err)
	}
	second, err := e.Run(ctx, net, test, spec)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := json.Marshal(first)
	b, _ := json.Marshal(second)
	if string(a) != string(b) {
		t.Fatal("cached encoded set changed results across runs")
	}
}
