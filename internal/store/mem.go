package store

import (
	"fmt"
	"sync"
)

// Mem is the in-memory Store backend: the default for tests and for a
// server run without a -store directory. Safe for concurrent use.
type Mem struct {
	mu   sync.RWMutex
	data map[Key][]byte
}

// NewMem returns an empty in-memory store.
func NewMem() *Mem {
	return &Mem{data: make(map[Key][]byte)}
}

// Put implements Store.
func (s *Mem) Put(kind string, payload any) (Key, error) {
	key, b, err := Encode(kind, payload)
	if err != nil {
		return "", err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.data[key]; !ok {
		s.data[key] = b
	}
	return key, nil
}

// Get implements Store.
func (s *Mem) Get(key Key) (*Envelope, error) {
	if err := key.Validate(); err != nil {
		return nil, err
	}
	s.mu.RLock()
	b, ok := s.data[key]
	s.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, key)
	}
	return DecodeEnvelope(key, b)
}

// Stat implements Store.
func (s *Mem) Stat(key Key) (Info, error) {
	if err := key.Validate(); err != nil {
		return Info{}, err
	}
	s.mu.RLock()
	b, ok := s.data[key]
	s.mu.RUnlock()
	if !ok {
		return Info{}, fmt.Errorf("%w: %s", ErrNotFound, key)
	}
	return Info{Key: key, Kind: key.Kind(), Size: int64(len(b))}, nil
}

// List implements Store.
func (s *Mem) List(kind string) ([]Info, error) {
	if kind != "" {
		if err := ValidateKind(kind); err != nil {
			return nil, err
		}
	}
	s.mu.RLock()
	infos := make([]Info, 0, len(s.data))
	for key, b := range s.data {
		if kind != "" && key.Kind() != kind {
			continue
		}
		infos = append(infos, Info{Key: key, Kind: key.Kind(), Size: int64(len(b))})
	}
	s.mu.RUnlock()
	sortInfos(infos)
	return infos, nil
}
