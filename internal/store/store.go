// Package store is the content-addressed artifact store beneath the
// sparkxd job service. Every artifact is wrapped in a typed envelope
// {kind, schemaVersion, payload} and addressed by a key derived from its
// content:
//
//	<kind>/<sha256-of-canonical-json-payload>
//
// Canonical JSON is the output of encoding/json.Marshal (compact, struct
// fields in declaration order, map keys sorted), so the same artifact
// value always hashes to the same key, across processes and across runs.
// Content addressing makes writes idempotent — storing the same artifact
// twice is a no-op that returns the same key — and lets readers verify
// integrity: Get re-hashes the payload and rejects envelopes whose bytes
// do not match their own address.
package store

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"strings"
)

// SchemaVersion is the envelope schema this package reads and writes.
const SchemaVersion = 1

// Typed failures of store operations. Backends wrap these so callers can
// test with errors.Is regardless of the backend in use.
var (
	// ErrNotFound marks a Get/Stat of a key the store has never seen.
	ErrNotFound = errors.New("store: artifact not found")
	// ErrCorrupt marks an envelope that cannot be trusted: unparseable
	// JSON, a kind that disagrees with the key, a payload whose hash does
	// not match its address, or an unsupported schema version.
	ErrCorrupt = errors.New("store: corrupt artifact envelope")
	// ErrBadKey marks a syntactically invalid key or kind.
	ErrBadKey = errors.New("store: malformed key")
)

// Key is a content address: "<kind>/<64 hex sha256 digits>".
type Key string

// Kind returns the key's artifact kind (the part before the slash).
func (k Key) Kind() string {
	kind, _, _ := strings.Cut(string(k), "/")
	return kind
}

// Hash returns the key's hex content hash (the part after the slash).
func (k Key) Hash() string {
	_, h, _ := strings.Cut(string(k), "/")
	return h
}

// Validate checks the key's syntax.
func (k Key) Validate() error {
	kind, h, ok := strings.Cut(string(k), "/")
	if !ok {
		return fmt.Errorf("%w: %q (want kind/hash)", ErrBadKey, k)
	}
	if err := ValidateKind(kind); err != nil {
		return err
	}
	if len(h) != sha256.Size*2 {
		return fmt.Errorf("%w: %q: hash must be %d hex digits", ErrBadKey, k, sha256.Size*2)
	}
	if _, err := hex.DecodeString(h); err != nil {
		return fmt.Errorf("%w: %q: hash is not hex", ErrBadKey, k)
	}
	return nil
}

// ValidateKind checks that an artifact kind is a safe path segment:
// lowercase letters, digits, and interior dashes.
func ValidateKind(kind string) error {
	if kind == "" {
		return fmt.Errorf("%w: empty kind", ErrBadKey)
	}
	for i, r := range kind {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
		case r == '-' && i > 0 && i < len(kind)-1:
		default:
			return fmt.Errorf("%w: kind %q (want [a-z0-9-], no leading/trailing dash)", ErrBadKey, kind)
		}
	}
	return nil
}

// Envelope is the typed wrapper every stored artifact lives in.
type Envelope struct {
	// Kind names the artifact type ("trained-model", "sweep-report", ...).
	Kind string `json:"kind"`
	// SchemaVersion versions the envelope layout itself.
	SchemaVersion int `json:"schemaVersion"`
	// Payload is the artifact's canonical JSON encoding.
	Payload json.RawMessage `json:"payload"`
}

// Decode unmarshals the envelope's payload into v after checking the
// envelope carries the wanted kind. A kind mismatch or unparseable
// payload satisfies errors.Is(err, ErrCorrupt).
func (e *Envelope) Decode(wantKind string, v any) error {
	if e.Kind != wantKind {
		return fmt.Errorf("%w: envelope holds %q, want %q", ErrCorrupt, e.Kind, wantKind)
	}
	if e.SchemaVersion != SchemaVersion {
		return fmt.Errorf("%w: unsupported schema version %d (want %d)", ErrCorrupt, e.SchemaVersion, SchemaVersion)
	}
	if err := json.Unmarshal(e.Payload, v); err != nil {
		return fmt.Errorf("%w: %q payload: %w", ErrCorrupt, e.Kind, err)
	}
	return nil
}

// Info describes one stored artifact.
type Info struct {
	Key  Key    `json:"key"`
	Kind string `json:"kind"`
	// Size is the size of the envelope encoding in bytes.
	Size int64 `json:"size"`
}

// Store is a content-addressed artifact store. Implementations must be
// safe for concurrent use.
type Store interface {
	// Put stores payload under its content address and returns the key.
	// Storing an identical payload again returns the same key without
	// rewriting anything.
	Put(kind string, payload any) (Key, error)
	// Get returns the verified envelope stored at key, or ErrNotFound.
	Get(key Key) (*Envelope, error)
	// Stat reports whether key exists without decoding its payload.
	Stat(key Key) (Info, error)
	// List enumerates stored artifacts of one kind ("" for all), sorted
	// by key.
	List(kind string) ([]Info, error)
}

// Encode canonicalizes payload and builds its envelope encoding plus
// content-addressed key. The returned bytes end in a newline so envelope
// files are friendly to line-oriented tools.
func Encode(kind string, payload any) (Key, []byte, error) {
	key, canonical, err := keyFor(kind, payload)
	if err != nil {
		return "", nil, err
	}
	b, err := json.Marshal(Envelope{Kind: kind, SchemaVersion: SchemaVersion, Payload: canonical})
	if err != nil {
		return "", nil, fmt.Errorf("store: encode %s envelope: %w", kind, err)
	}
	return key, append(b, '\n'), nil
}

// KeyFor computes the content address payload would be stored under,
// without storing anything.
func KeyFor(kind string, payload any) (Key, error) {
	key, _, err := keyFor(kind, payload)
	return key, err
}

func keyFor(kind string, payload any) (Key, json.RawMessage, error) {
	if err := ValidateKind(kind); err != nil {
		return "", nil, err
	}
	canonical, err := json.Marshal(payload)
	if err != nil {
		return "", nil, fmt.Errorf("store: marshal %s payload: %w", kind, err)
	}
	sum := sha256.Sum256(canonical)
	return Key(kind + "/" + hex.EncodeToString(sum[:])), canonical, nil
}

// DecodeEnvelope parses and verifies the envelope bytes stored at key:
// the JSON must parse, the kind must match the key, and the payload must
// hash back to the key's address. Any violation satisfies
// errors.Is(err, ErrCorrupt).
func DecodeEnvelope(key Key, b []byte) (*Envelope, error) {
	var env Envelope
	if err := json.Unmarshal(b, &env); err != nil {
		return nil, fmt.Errorf("%w: %s: %w", ErrCorrupt, key, err)
	}
	if env.Kind != key.Kind() {
		return nil, fmt.Errorf("%w: %s: envelope claims kind %q", ErrCorrupt, key, env.Kind)
	}
	if env.SchemaVersion != SchemaVersion {
		return nil, fmt.Errorf("%w: %s: unsupported schema version %d", ErrCorrupt, key, env.SchemaVersion)
	}
	sum := sha256.Sum256(env.Payload)
	if hex.EncodeToString(sum[:]) != key.Hash() {
		return nil, fmt.Errorf("%w: %s: payload hash mismatch", ErrCorrupt, key)
	}
	return &env, nil
}

// Get is a generic typed fetch: the artifact at key, decoded into a
// fresh T after kind and integrity checks.
func Get[T any](st Store, key Key) (*T, error) {
	env, err := st.Get(key)
	if err != nil {
		return nil, err
	}
	var v T
	if err := env.Decode(key.Kind(), &v); err != nil {
		return nil, err
	}
	return &v, nil
}

// sortInfos orders a listing by key (the contract of List).
func sortInfos(infos []Info) {
	sort.Slice(infos, func(a, b int) bool { return infos[a].Key < infos[b].Key })
}
