package store

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// gatedStore delegates to an inner store but blocks every Get until the
// gate opens, counting how many Gets reached it.
type gatedStore struct {
	inner Store
	gate  chan struct{}
	gets  atomic.Int64
}

func (g *gatedStore) Put(kind string, payload any) (Key, error) { return g.inner.Put(kind, payload) }
func (g *gatedStore) Stat(key Key) (Info, error)                { return g.inner.Stat(key) }
func (g *gatedStore) List(kind string) ([]Info, error)          { return g.inner.List(kind) }
func (g *gatedStore) Get(key Key) (*Envelope, error) {
	g.gets.Add(1)
	<-g.gate
	return g.inner.Get(key)
}

func TestReadThroughHitMissFill(t *testing.T) {
	local, remote := NewMem(), NewMem()
	rt := NewReadThrough(local, remote)

	key, err := remote.Put("sample", sample{Name: "far"})
	if err != nil {
		t.Fatalf("Put: %v", err)
	}

	// First Get misses locally, fetches remotely, fills the cache.
	if _, err := rt.Get(key); err != nil {
		t.Fatalf("Get: %v", err)
	}
	if h, m, f := rt.Stats(); h != 0 || m != 1 || f != 1 {
		t.Errorf("Stats after miss = (%d, %d, %d), want (0, 1, 1)", h, m, f)
	}
	if _, err := local.Get(key); err != nil {
		t.Errorf("local store not filled: %v", err)
	}

	// Second Get is a pure local hit.
	if _, err := rt.Get(key); err != nil {
		t.Fatalf("Get: %v", err)
	}
	if h, m, f := rt.Stats(); h != 1 || m != 1 || f != 1 {
		t.Errorf("Stats after hit = (%d, %d, %d), want (1, 1, 1)", h, m, f)
	}

	// Puts go to the remote and mirror locally without counting as fills.
	key2, err := rt.Put("sample", sample{Name: "near"})
	if err != nil {
		t.Fatalf("rt.Put: %v", err)
	}
	if _, err := remote.Get(key2); err != nil {
		t.Errorf("remote missing written artifact: %v", err)
	}
	if _, _, f := rt.Stats(); f != 1 {
		t.Errorf("Put counted as fill: fills = %d, want 1", f)
	}

	if _, err := rt.Get(Key("sample/missing")); !errors.Is(err, ErrBadKey) {
		t.Errorf("Get(malformed) = %v, want ErrBadKey", err)
	}
	absent := Key("sample/" + strings.Repeat("aa", 32))
	if _, err := rt.Get(absent); !errors.Is(err, ErrNotFound) {
		t.Errorf("Get(absent) = %v, want ErrNotFound", err)
	}
}

// Concurrent readers of one cold key share a single remote fetch.
func TestReadThroughSingleFlight(t *testing.T) {
	backend := NewMem()
	key, err := backend.Put("sample", sample{Name: "flight", Count: 1})
	if err != nil {
		t.Fatalf("Put: %v", err)
	}
	remote := &gatedStore{inner: backend, gate: make(chan struct{})}
	rt := NewReadThrough(NewMem(), remote)

	const readers = 8
	var wg sync.WaitGroup
	errs := make([]error, readers)
	for i := 0; i < readers; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			env, err := rt.Get(key)
			if err == nil && env == nil {
				err = errors.New("nil envelope")
			}
			errs[i] = err
		}()
	}
	// Give the readers time to pile up behind the single in-flight
	// fetch, then open the gate.
	time.Sleep(50 * time.Millisecond)
	close(remote.gate)
	wg.Wait()

	for i, err := range errs {
		if err != nil {
			t.Errorf("reader %d: %v", i, err)
		}
	}
	if got := remote.gets.Load(); got != 1 {
		t.Errorf("remote saw %d Gets, want 1 (single-flight)", got)
	}
	if _, _, f := rt.Stats(); f != 1 {
		t.Errorf("fills = %d, want 1", f)
	}
}

// A corrupt remote envelope is surfaced as ErrCorrupt and never cached.
func TestReadThroughCorruptRemoteNotCached(t *testing.T) {
	_, tampered, err := Encode("sample", sample{Name: "evil"})
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write(tampered)
	}))
	defer ts.Close()
	remote, err := NewHTTP(ts.URL, WithRetryBackoff(time.Millisecond))
	if err != nil {
		t.Fatalf("NewHTTP: %v", err)
	}

	local := NewMem()
	rt := NewReadThrough(local, remote)
	key := Key("sample/" + strings.Repeat("0f", 32))
	if _, err := rt.Get(key); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Get(corrupt remote) = %v, want ErrCorrupt", err)
	}
	if infos, err := local.List(""); err != nil || len(infos) != 0 {
		t.Errorf("corrupt envelope leaked into the local cache: %v (err %v)", infos, err)
	}
	if _, _, f := rt.Stats(); f != 0 {
		t.Errorf("fills = %d, want 0", f)
	}
}

// A local hit never touches the network.
func TestReadThroughLocalHitSkipsNetwork(t *testing.T) {
	var requests atomic.Int64
	backend := NewMem()
	inner := NewHandler(backend)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		requests.Add(1)
		inner.ServeHTTP(w, r)
	}))
	defer ts.Close()
	remote, err := NewHTTP(ts.URL, WithRetryBackoff(time.Millisecond))
	if err != nil {
		t.Fatalf("NewHTTP: %v", err)
	}

	local := NewMem()
	key, err := local.Put("sample", sample{Name: "home"})
	if err != nil {
		t.Fatalf("Put: %v", err)
	}
	rt := NewReadThrough(local, remote)
	before := requests.Load()
	for i := 0; i < 3; i++ {
		if _, err := rt.Get(key); err != nil {
			t.Fatalf("Get: %v", err)
		}
	}
	if after := requests.Load(); after != before {
		t.Errorf("local hits reached the network: %d extra requests", after-before)
	}
	if h, m, _ := rt.Stats(); h != 3 || m != 0 {
		t.Errorf("Stats = (%d hits, %d misses), want (3, 0)", h, m)
	}
}
