package store

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
)

// MaxUploadBytes bounds one uploaded envelope on the artifact wire
// (trained models for the largest paper configurations are far below
// this). Shared by the job server's artifact routes.
const MaxUploadBytes = 256 << 20

// NewHandler exposes a Store over the artifact wire, making any local
// store a standalone artifact service (`sparkxd store serve`):
//
//	GET  /v1/artifacts?kind=      Info listing of one kind ("" = all)
//	GET  /v1/artifacts/{key...}   canonical envelope bytes (trailing \n)
//	HEAD /v1/artifacts/{key...}   existence probe (Content-Length = size)
//	PUT  /v1/artifacts/{key...}   store an envelope, verified against its
//	                              content address (200/201)
//	GET  /v1/healthz              liveness probe
//
// Error contract (mirrored by the job server's artifact routes and
// mapped back to sentinels by the HTTP store client): malformed keys
// are 400, absent keys 404, oversized uploads 413, and a store-side
// failure 500.
func NewHandler(st Store) http.Handler {
	h := &storeHandler{st: st}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/artifacts", h.handleList)
	mux.HandleFunc("GET /v1/artifacts/{key...}", h.handleGet)
	mux.HandleFunc("PUT /v1/artifacts/{key...}", h.handlePut)
	mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, r *http.Request) {
		writeWireJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	return mux
}

type storeHandler struct {
	st Store
}

// wireError is the JSON error body of every non-2xx artifact response.
type wireError struct {
	Error string `json:"error"`
}

func writeWireJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeWireError(w http.ResponseWriter, code int, format string, args ...any) {
	writeWireJSON(w, code, wireError{Error: fmt.Sprintf(format, args...)})
}

// WriteArtifactError maps a store failure onto the wire's status codes:
// a key the store has never seen is 404, a malformed key 400, anything
// else (IO failure, corrupt stored bytes) 500.
func WriteArtifactError(w http.ResponseWriter, err error) {
	code := http.StatusInternalServerError
	switch {
	case errors.Is(err, ErrNotFound):
		code = http.StatusNotFound
	case errors.Is(err, ErrBadKey):
		code = http.StatusBadRequest
	}
	writeWireError(w, code, "%v", err)
}

func (h *storeHandler) handleGet(w http.ResponseWriter, r *http.Request) {
	key := Key(r.PathValue("key"))
	if key == "" {
		writeWireError(w, http.StatusNotFound, "no artifact key")
		return
	}
	if err := key.Validate(); err != nil {
		writeWireError(w, http.StatusBadRequest, "%v", err)
		return
	}
	env, err := h.st.Get(key)
	if err != nil {
		WriteArtifactError(w, err)
		return
	}
	ServeEnvelope(w, env)
}

func (h *storeHandler) handlePut(w http.ResponseWriter, r *http.Request) {
	key := Key(r.PathValue("key"))
	if err := key.Validate(); err != nil {
		writeWireError(w, http.StatusBadRequest, "%v", err)
		return
	}
	env, code, err := ReadUploadedEnvelope(key, r.Body)
	if err != nil {
		writeWireError(w, code, "%v", err)
		return
	}
	got, err := h.st.Put(env.Kind, env.Payload)
	if err != nil {
		writeWireError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	if got != key {
		// Cannot happen after DecodeEnvelope verified the hash, unless the
		// backend canonicalizes differently — refuse rather than lie.
		writeWireError(w, http.StatusInternalServerError, "stored at %s, expected %s", got, key)
		return
	}
	writeWireJSON(w, http.StatusCreated, map[string]string{"key": string(key)})
}

func (h *storeHandler) handleList(w http.ResponseWriter, r *http.Request) {
	kind := r.URL.Query().Get("kind")
	infos, err := h.st.List(kind)
	if err != nil {
		WriteArtifactError(w, err)
		return
	}
	if infos == nil {
		infos = []Info{}
	}
	writeWireJSON(w, http.StatusOK, infos)
}

// ServeEnvelope writes an envelope's canonical encoding (plus trailing
// newline) with an explicit Content-Length, so HEAD probes — which Go's
// ServeMux routes through GET patterns with the body suppressed — still
// report the envelope size.
func ServeEnvelope(w http.ResponseWriter, env *Envelope) {
	b, err := json.Marshal(env)
	if err != nil {
		writeWireError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	b = append(b, '\n')
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(len(b)))
	w.WriteHeader(http.StatusOK)
	w.Write(b)
}

// ReadUploadedEnvelope reads and verifies one uploaded envelope against
// its claimed key. On failure it returns the HTTP status the wire
// contract assigns: 400 for bytes that do not verify, 413 for an
// oversized upload.
func ReadUploadedEnvelope(key Key, body io.Reader) (*Envelope, int, error) {
	b, err := io.ReadAll(io.LimitReader(body, MaxUploadBytes+1))
	if err != nil {
		return nil, http.StatusBadRequest, fmt.Errorf("read upload: %w", err)
	}
	if len(b) > MaxUploadBytes {
		return nil, http.StatusRequestEntityTooLarge, fmt.Errorf("upload exceeds %d bytes", MaxUploadBytes)
	}
	env, err := DecodeEnvelope(key, bytes.TrimRight(b, "\r\n"))
	if err != nil {
		return nil, http.StatusBadRequest, err
	}
	return env, http.StatusOK, nil
}
