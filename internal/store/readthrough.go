package store

import (
	"sync"
	"sync/atomic"
)

// ReadThrough composes a local cache store over a remote authority.
// Reads try the local store first and fall back to the remote, filling
// the local copy on the way back; writes go to the remote (the shared
// namespace) and are mirrored locally best-effort.
//
// The composition is safe precisely because keys are content addresses:
// a locally cached envelope can never go stale — the bytes at a key are
// the only bytes that can ever live there — so there is no invalidation
// protocol, no TTL, and no coherence traffic. A corrupt local copy is
// simply treated as a miss and refetched.
//
// Concurrent misses on the same key are single-flighted: one remote
// fetch runs, the rest wait for its result.
type ReadThrough struct {
	local  Store
	remote Store

	hits   atomic.Uint64 // Gets served entirely from the local store
	misses atomic.Uint64 // Gets that had to consult the remote
	fills  atomic.Uint64 // remote envelopes copied into the local store

	mu       sync.Mutex
	inflight map[Key]*fetchCall
}

// fetchCall is one in-flight remote fetch shared by concurrent readers.
type fetchCall struct {
	done chan struct{}
	env  *Envelope
	err  error
}

// NewReadThrough builds a read-through composite over local and remote.
func NewReadThrough(local, remote Store) *ReadThrough {
	return &ReadThrough{local: local, remote: remote, inflight: make(map[Key]*fetchCall)}
}

// Stats returns the cumulative hit/miss/fill counters (for /metrics).
func (rt *ReadThrough) Stats() (hits, misses, fills uint64) {
	return rt.hits.Load(), rt.misses.Load(), rt.fills.Load()
}

// Put implements Store: the remote store is the authority, so the write
// goes there first; the local copy is a best-effort cache fill whose
// failure never fails the Put.
func (rt *ReadThrough) Put(kind string, payload any) (Key, error) {
	key, err := rt.remote.Put(kind, payload)
	if err != nil {
		return "", err
	}
	_, _ = rt.local.Put(kind, payload)
	return key, nil
}

// Get implements Store: local first (hit), then a single-flighted
// remote fetch (miss) whose verified envelope is cached locally (fill).
// Any local failure — absent, corrupt, unreadable — is treated as a
// miss; the remote result is authoritative either way.
func (rt *ReadThrough) Get(key Key) (*Envelope, error) {
	if err := key.Validate(); err != nil {
		return nil, err
	}
	if env, err := rt.local.Get(key); err == nil {
		rt.hits.Add(1)
		return env, nil
	}
	rt.misses.Add(1)

	rt.mu.Lock()
	if c, ok := rt.inflight[key]; ok {
		rt.mu.Unlock()
		<-c.done
		return c.env, c.err
	}
	c := &fetchCall{done: make(chan struct{})}
	rt.inflight[key] = c
	rt.mu.Unlock()

	env, err := rt.remote.Get(key)
	if err == nil {
		// The envelope came through a verifying Get, so caching it cannot
		// poison the local store; Put re-derives the same key from the
		// canonical payload bytes.
		if _, perr := rt.local.Put(env.Kind, env.Payload); perr == nil {
			rt.fills.Add(1)
		}
	}
	c.env, c.err = env, err
	rt.mu.Lock()
	delete(rt.inflight, key)
	rt.mu.Unlock()
	close(c.done)
	return env, err
}

// Stat implements Store: local first, then remote. Stat probes do not
// move into the hit/miss counters — they would double-count the Gets
// the counters are meant to explain.
func (rt *ReadThrough) Stat(key Key) (Info, error) {
	if err := key.Validate(); err != nil {
		return Info{}, err
	}
	if info, err := rt.local.Stat(key); err == nil {
		return info, nil
	}
	return rt.remote.Stat(key)
}

// List implements Store against the remote: the shared namespace is the
// authority, and a local cache by construction holds a subset of it.
func (rt *ReadThrough) List(kind string) ([]Info, error) {
	return rt.remote.List(kind)
}
