package store

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
)

// FS is the filesystem Store backend. Envelopes live at
// <root>/<kind>/<hash>.json; writes go through a temp file + rename so a
// crashed writer never leaves a half-written envelope at a valid
// address.
type FS struct {
	root string
}

// NewFS opens (creating if needed) a filesystem store rooted at dir.
func NewFS(dir string) (*FS, error) {
	if dir == "" {
		return nil, errors.New("store: empty store directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: open %s: %w", dir, err)
	}
	return &FS{root: dir}, nil
}

// Root returns the directory the store lives in.
func (s *FS) Root() string { return s.root }

func (s *FS) path(key Key) string {
	return filepath.Join(s.root, key.Kind(), key.Hash()+".json")
}

// Put implements Store.
func (s *FS) Put(kind string, payload any) (Key, error) {
	key, b, err := Encode(kind, payload)
	if err != nil {
		return "", err
	}
	path := s.path(key)
	if _, err := os.Stat(path); err == nil {
		// Content-addressed: an existing file already holds these bytes.
		return key, nil
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return "", fmt.Errorf("store: put %s: %w", key, err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".put-*")
	if err != nil {
		return "", fmt.Errorf("store: put %s: %w", key, err)
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(b); err != nil {
		tmp.Close()
		return "", fmt.Errorf("store: put %s: %w", key, err)
	}
	if err := tmp.Close(); err != nil {
		return "", fmt.Errorf("store: put %s: %w", key, err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return "", fmt.Errorf("store: put %s: %w", key, err)
	}
	return key, nil
}

// Get implements Store.
func (s *FS) Get(key Key) (*Envelope, error) {
	if err := key.Validate(); err != nil {
		return nil, err
	}
	b, err := os.ReadFile(s.path(key))
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, fmt.Errorf("%w: %s", ErrNotFound, key)
		}
		return nil, fmt.Errorf("store: get %s: %w", key, err)
	}
	return DecodeEnvelope(key, b)
}

// Stat implements Store.
func (s *FS) Stat(key Key) (Info, error) {
	if err := key.Validate(); err != nil {
		return Info{}, err
	}
	fi, err := os.Stat(s.path(key))
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return Info{}, fmt.Errorf("%w: %s", ErrNotFound, key)
		}
		return Info{}, fmt.Errorf("store: stat %s: %w", key, err)
	}
	return Info{Key: key, Kind: key.Kind(), Size: fi.Size()}, nil
}

// List implements Store.
func (s *FS) List(kind string) ([]Info, error) {
	if kind != "" {
		if err := ValidateKind(kind); err != nil {
			return nil, err
		}
	}
	var infos []Info
	kinds, err := os.ReadDir(s.root)
	if err != nil {
		return nil, fmt.Errorf("store: list: %w", err)
	}
	for _, kd := range kinds {
		if !kd.IsDir() || (kind != "" && kd.Name() != kind) {
			continue
		}
		if ValidateKind(kd.Name()) != nil {
			continue // stray directory, not ours
		}
		entries, err := os.ReadDir(filepath.Join(s.root, kd.Name()))
		if err != nil {
			return nil, fmt.Errorf("store: list %s: %w", kd.Name(), err)
		}
		for _, e := range entries {
			hash, ok := strings.CutSuffix(e.Name(), ".json")
			if !ok || e.IsDir() {
				continue
			}
			key := Key(kd.Name() + "/" + hash)
			if key.Validate() != nil {
				continue // temp files, strays
			}
			fi, err := e.Info()
			if err != nil {
				return nil, fmt.Errorf("store: list %s: %w", key, err)
			}
			infos = append(infos, Info{Key: key, Kind: kd.Name(), Size: fi.Size()})
		}
	}
	sortInfos(infos)
	return infos, nil
}
