package store

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"strings"
	"time"
)

// HTTP is the remote Store backend: a client for the artifact wire the
// job server and `sparkxd store serve` both speak —
//
//	GET  /v1/artifacts/{key...}   the canonical envelope bytes
//	HEAD /v1/artifacts/{key...}   existence + envelope size
//	PUT  /v1/artifacts/{key...}   upload an envelope (idempotent)
//	GET  /v1/artifacts?kind=      the Info listing of one kind
//
// Reads are integrity-verified end to end: fetched bytes go through
// DecodeEnvelope, so a payload that does not hash back to its address
// is rejected with ErrCorrupt no matter what the remote claims. Writes
// are idempotent by construction (content addressing), so transient
// failures — transport errors, 5xx, 429 — are retried with jittered
// exponential backoff before surfacing.
type HTTP struct {
	base    string
	hc      *http.Client
	retries int           // extra attempts after the first
	backoff time.Duration // first retry delay; doubles per attempt, ±50% jitter
}

// HTTPOption configures an HTTP store client.
type HTTPOption func(*HTTP)

// WithHTTPClient replaces the underlying *http.Client, so the store
// client can share transport configuration (timeouts, connection pools)
// with other clients of the same service.
func WithHTTPClient(hc *http.Client) HTTPOption {
	return func(s *HTTP) {
		if hc != nil {
			s.hc = hc
		}
	}
}

// WithRetries sets how many times a transient failure is retried
// (default 2, i.e. up to 3 attempts; negative disables retries).
func WithRetries(n int) HTTPOption {
	return func(s *HTTP) {
		if n < 0 {
			n = 0
		}
		s.retries = n
	}
}

// WithRetryBackoff sets the first retry delay (default 100ms; the delay
// doubles per attempt and is jittered ±50%).
func WithRetryBackoff(d time.Duration) HTTPOption {
	return func(s *HTTP) {
		if d > 0 {
			s.backoff = d
		}
	}
}

// NewHTTP builds a Store client for the artifact service at baseURL
// (e.g. "http://127.0.0.1:9000").
func NewHTTP(baseURL string, opts ...HTTPOption) (*HTTP, error) {
	base := strings.TrimRight(baseURL, "/")
	u, err := url.Parse(base)
	if err != nil {
		return nil, fmt.Errorf("store: remote url %q: %w", baseURL, err)
	}
	if (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
		return nil, fmt.Errorf("store: remote url %q: want http(s)://host[:port]", baseURL)
	}
	s := &HTTP{
		base:    base,
		hc:      &http.Client{Timeout: 60 * time.Second},
		retries: 2,
		backoff: 100 * time.Millisecond,
	}
	for _, opt := range opts {
		opt(s)
	}
	return s, nil
}

// BaseURL returns the remote store's base URL.
func (s *HTTP) BaseURL() string { return s.base }

// Put implements Store: the payload is encoded locally (which also
// derives the content address) and the canonical envelope bytes are PUT
// to the remote, which re-verifies them against the key. Both 200 and
// 201 are success — the remote may already hold the bytes.
func (s *HTTP) Put(kind string, payload any) (Key, error) {
	key, b, err := Encode(kind, payload)
	if err != nil {
		return "", err
	}
	resp, err := s.doRetry(http.MethodPut, s.keyURL(key), b)
	if err != nil {
		return "", fmt.Errorf("store: put %s: %w", key, err)
	}
	defer drain(resp)
	if resp.StatusCode/100 != 2 {
		return "", s.statusError("put", key, resp)
	}
	return key, nil
}

// Get implements Store. The response bytes are decoded and re-hashed
// against the key, so a corrupt or tampered remote envelope satisfies
// errors.Is(err, ErrCorrupt) instead of being trusted.
func (s *HTTP) Get(key Key) (*Envelope, error) {
	if err := key.Validate(); err != nil {
		return nil, err
	}
	resp, err := s.doRetry(http.MethodGet, s.keyURL(key), nil)
	if err != nil {
		return nil, fmt.Errorf("store: get %s: %w", key, err)
	}
	defer drain(resp)
	if resp.StatusCode != http.StatusOK {
		return nil, s.statusError("get", key, resp)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("store: get %s: read: %w", key, err)
	}
	return DecodeEnvelope(key, bytes.TrimRight(b, "\r\n"))
}

// Stat implements Store via a HEAD round trip (no payload transferred);
// the size comes from the Content-Length the service sets.
func (s *HTTP) Stat(key Key) (Info, error) {
	if err := key.Validate(); err != nil {
		return Info{}, err
	}
	resp, err := s.doRetry(http.MethodHead, s.keyURL(key), nil)
	if err != nil {
		return Info{}, fmt.Errorf("store: stat %s: %w", key, err)
	}
	defer drain(resp)
	if resp.StatusCode != http.StatusOK {
		return Info{}, s.statusError("stat", key, resp)
	}
	size := resp.ContentLength
	if size < 0 {
		size = 0
	}
	return Info{Key: key, Kind: key.Kind(), Size: size}, nil
}

// List implements Store against GET /v1/artifacts?kind=.
func (s *HTTP) List(kind string) ([]Info, error) {
	if kind != "" {
		if err := ValidateKind(kind); err != nil {
			return nil, err
		}
	}
	u := s.base + "/v1/artifacts"
	if kind != "" {
		u += "?kind=" + url.QueryEscape(kind)
	}
	resp, err := s.doRetry(http.MethodGet, u, nil)
	if err != nil {
		return nil, fmt.Errorf("store: list %q: %w", kind, err)
	}
	defer drain(resp)
	if resp.StatusCode != http.StatusOK {
		return nil, s.statusError("list", Key(kind), resp)
	}
	var infos []Info
	if err := json.NewDecoder(resp.Body).Decode(&infos); err != nil {
		return nil, fmt.Errorf("store: list %q: decode: %w", kind, err)
	}
	sortInfos(infos)
	return infos, nil
}

func (s *HTTP) keyURL(key Key) string {
	return s.base + "/v1/artifacts/" + string(key)
}

// doRetry performs one request, replaying it after jittered exponential
// backoff on transient failures (transport errors, 5xx, 429, 408).
// Every request on this wire is idempotent — reads by content address,
// writes of content-addressed bytes — so replaying is always safe.
func (s *HTTP) doRetry(method, url string, body []byte) (*http.Response, error) {
	delay := s.backoff
	var lastErr error
	for attempt := 0; ; attempt++ {
		var rd io.Reader
		if body != nil {
			rd = bytes.NewReader(body)
		}
		req, err := http.NewRequest(method, url, rd)
		if err != nil {
			return nil, err
		}
		if body != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		resp, err := s.hc.Do(req)
		switch {
		case err != nil:
			lastErr = err
		case transientStatus(resp.StatusCode):
			lastErr = fmt.Errorf("server returned %d", resp.StatusCode)
			drain(resp)
		default:
			return resp, nil
		}
		if attempt >= s.retries {
			return nil, lastErr
		}
		// ±50% jitter keeps a fleet of retrying clients from phase-locking
		// onto a recovering service.
		sleep := time.Duration(float64(delay) * (0.5 + rand.Float64()))
		time.Sleep(sleep)
		delay *= 2
	}
}

// transientStatus reports whether a status code is worth retrying.
func transientStatus(code int) bool {
	return code >= 500 || code == http.StatusTooManyRequests || code == http.StatusRequestTimeout
}

// statusError maps a non-2xx artifact-wire response onto the store
// sentinels: 404 is ErrNotFound, 400 is ErrBadKey.
func (s *HTTP) statusError(op string, key Key, resp *http.Response) error {
	msg := resp.Status
	var ae struct {
		Error string `json:"error"`
	}
	if b, err := io.ReadAll(io.LimitReader(resp.Body, 1<<16)); err == nil {
		if json.Unmarshal(b, &ae) == nil && ae.Error != "" {
			msg = ae.Error
		}
	}
	switch resp.StatusCode {
	case http.StatusNotFound:
		return fmt.Errorf("%w: %s", ErrNotFound, key)
	case http.StatusBadRequest:
		return fmt.Errorf("%w: %s: remote: %s", ErrBadKey, key, msg)
	}
	return fmt.Errorf("store: %s %s: remote returned %d: %s", op, key, resp.StatusCode, msg)
}

// drain discards and closes a response body so the connection is reused.
func drain(resp *http.Response) {
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
	resp.Body.Close()
}
