package store

import (
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// newWireServer serves a fresh Mem store over the artifact wire and
// returns an HTTP client pointed at it (fast retries for tests).
func newWireServer(t *testing.T) (Store, *HTTP) {
	t.Helper()
	backend := NewMem()
	ts := httptest.NewServer(NewHandler(backend))
	t.Cleanup(ts.Close)
	cl, err := NewHTTP(ts.URL, WithRetryBackoff(time.Millisecond))
	if err != nil {
		t.Fatalf("NewHTTP: %v", err)
	}
	return backend, cl
}

func TestNewHTTPRejectsBadURLs(t *testing.T) {
	for _, bad := range []string{"", "ftp://host", "host:8080", "http://", ":not a url:"} {
		if _, err := NewHTTP(bad); err == nil {
			t.Errorf("NewHTTP(%q): expected error", bad)
		}
	}
	if _, err := NewHTTP("https://example.com/"); err != nil {
		t.Errorf("NewHTTP(https): %v", err)
	}
}

func TestHTTPRoundTrip(t *testing.T) {
	backend, cl := newWireServer(t)

	in := sample{Name: "remote", Count: 7, Vals: []float64{0.5}}
	key, err := cl.Put("sample", in)
	if err != nil {
		t.Fatalf("Put: %v", err)
	}
	// The remote backend holds the canonical bytes under the same key.
	if _, err := backend.Get(key); err != nil {
		t.Fatalf("backend Get after remote Put: %v", err)
	}
	// Idempotent re-put of identical content.
	if key2, err := cl.Put("sample", in); err != nil || key2 != key {
		t.Fatalf("re-Put = (%s, %v), want (%s, nil)", key2, err, key)
	}

	out, err := Get[sample](cl, key)
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if out.Name != in.Name || out.Count != in.Count {
		t.Errorf("round trip mismatch: got %+v, want %+v", out, in)
	}

	info, err := cl.Stat(key)
	if err != nil {
		t.Fatalf("Stat: %v", err)
	}
	if info.Key != key || info.Kind != "sample" || info.Size <= 0 {
		t.Errorf("Stat = %+v", info)
	}
	// HEAD's Content-Length must agree with the store's own accounting.
	want, err := backend.Stat(key)
	if err != nil {
		t.Fatalf("backend Stat: %v", err)
	}
	if info.Size != want.Size {
		t.Errorf("Stat size = %d over the wire, %d in the backend", info.Size, want.Size)
	}

	infos, err := cl.List("sample")
	if err != nil {
		t.Fatalf("List: %v", err)
	}
	if len(infos) != 1 || infos[0].Key != key {
		t.Errorf("List = %+v, want one entry for %s", infos, key)
	}
	if infos, err := cl.List("absent-kind"); err != nil || len(infos) != 0 {
		t.Errorf("List(absent) = (%v, %v), want empty", infos, err)
	}
}

func TestHTTPSentinelMapping(t *testing.T) {
	_, cl := newWireServer(t)

	missing := Key("sample/" + strings.Repeat("ab", 32))
	if _, err := cl.Get(missing); !errors.Is(err, ErrNotFound) {
		t.Errorf("Get(missing) = %v, want ErrNotFound", err)
	}
	if _, err := cl.Stat(missing); !errors.Is(err, ErrNotFound) {
		t.Errorf("Stat(missing) = %v, want ErrNotFound", err)
	}
	// Malformed keys are rejected locally, before any round trip.
	if _, err := cl.Get(Key("no-slash")); !errors.Is(err, ErrBadKey) {
		t.Errorf("Get(malformed) = %v, want ErrBadKey", err)
	}
	if _, err := cl.List("Not A Kind"); !errors.Is(err, ErrBadKey) {
		t.Errorf("List(bad kind) = %v, want ErrBadKey", err)
	}
}

// A remote 400 (e.g. from a server whose validation is stricter) maps
// to ErrBadKey even when the client-side check passed.
func TestHTTPRemoteBadRequestMapsToErrBadKey(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusBadRequest)
		json.NewEncoder(w).Encode(map[string]string{"error": "server-side reject"})
	}))
	defer ts.Close()
	cl, err := NewHTTP(ts.URL, WithRetryBackoff(time.Millisecond))
	if err != nil {
		t.Fatalf("NewHTTP: %v", err)
	}
	key := Key("sample/" + strings.Repeat("cd", 32))
	if _, err := cl.Get(key); !errors.Is(err, ErrBadKey) {
		t.Errorf("Get = %v, want ErrBadKey", err)
	}
}

// A remote that serves bytes failing integrity verification yields
// ErrCorrupt — the client never trusts the wire.
func TestHTTPGetVerifiesIntegrity(t *testing.T) {
	_, tamperedBytes, err := Encode("sample", sample{Name: "evil"})
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write(tamperedBytes) // valid envelope, but not for the requested key
	}))
	defer ts.Close()
	cl, err := NewHTTP(ts.URL, WithRetryBackoff(time.Millisecond))
	if err != nil {
		t.Fatalf("NewHTTP: %v", err)
	}
	otherKey := Key("sample/" + strings.Repeat("ef", 32))
	if _, err := cl.Get(otherKey); !errors.Is(err, ErrCorrupt) {
		t.Errorf("Get(tampered) = %v, want ErrCorrupt", err)
	}
}

// Transient failures (503) retry until the service recovers; permanent
// ones (404) surface immediately.
func TestHTTPRetriesTransientFailures(t *testing.T) {
	backend := NewMem()
	inner := NewHandler(backend)
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			http.Error(w, "warming up", http.StatusServiceUnavailable)
			return
		}
		inner.ServeHTTP(w, r)
	}))
	defer ts.Close()

	cl, err := NewHTTP(ts.URL, WithRetries(3), WithRetryBackoff(time.Millisecond))
	if err != nil {
		t.Fatalf("NewHTTP: %v", err)
	}
	key, err := cl.Put("sample", sample{Name: "retry"})
	if err != nil {
		t.Fatalf("Put through flaky server: %v", err)
	}
	if _, err := backend.Get(key); err != nil {
		t.Fatalf("backend Get: %v", err)
	}
	if got := calls.Load(); got != 3 {
		t.Errorf("server saw %d requests, want 3 (two 503s + success)", got)
	}
}

func TestHTTPRetryBudgetExhausts(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, "down", http.StatusServiceUnavailable)
	}))
	defer ts.Close()
	cl, err := NewHTTP(ts.URL, WithRetries(1), WithRetryBackoff(time.Millisecond))
	if err != nil {
		t.Fatalf("NewHTTP: %v", err)
	}
	if _, err := cl.Put("sample", sample{Name: "never"}); err == nil {
		t.Fatal("Put against a dead server: expected error")
	}
	if got := calls.Load(); got != 2 {
		t.Errorf("server saw %d requests, want 2 (initial + one retry)", got)
	}
}

// The wire handler's error contract, row by row: malformed keys 400,
// absent keys 404, unverifiable uploads 400, health 200.
func TestHandlerErrorContract(t *testing.T) {
	backend := NewMem()
	goodKey, goodBytes, err := Encode("sample", sample{Name: "stored"})
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	if _, err := backend.Put("sample", sample{Name: "stored"}); err != nil {
		t.Fatalf("Put: %v", err)
	}
	h := NewHandler(backend)

	missing := "sample/" + strings.Repeat("ab", 32)
	tests := []struct {
		name   string
		method string
		path   string
		body   string
		want   int
	}{
		{"get stored", http.MethodGet, "/v1/artifacts/" + string(goodKey), "", http.StatusOK},
		{"head stored", http.MethodHead, "/v1/artifacts/" + string(goodKey), "", http.StatusOK},
		{"get missing", http.MethodGet, "/v1/artifacts/" + missing, "", http.StatusNotFound},
		{"get empty key", http.MethodGet, "/v1/artifacts/", "", http.StatusNotFound},
		{"get malformed key", http.MethodGet, "/v1/artifacts/noslash", "", http.StatusBadRequest},
		{"get bad hash", http.MethodGet, "/v1/artifacts/sample/nothex", "", http.StatusBadRequest},
		{"put malformed key", http.MethodPut, "/v1/artifacts/noslash", string(goodBytes), http.StatusBadRequest},
		{"put mismatched body", http.MethodPut, "/v1/artifacts/" + missing, string(goodBytes), http.StatusBadRequest},
		{"put garbage body", http.MethodPut, "/v1/artifacts/" + string(goodKey), "not json", http.StatusBadRequest},
		{"put verified", http.MethodPut, "/v1/artifacts/" + string(goodKey), string(goodBytes), http.StatusCreated},
		{"list all", http.MethodGet, "/v1/artifacts", "", http.StatusOK},
		{"health", http.MethodGet, "/v1/healthz", "", http.StatusOK},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			var body *strings.Reader
			if tc.body != "" {
				body = strings.NewReader(tc.body)
			} else {
				body = strings.NewReader("")
			}
			req := httptest.NewRequest(tc.method, tc.path, body)
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, req)
			if rec.Code != tc.want {
				t.Fatalf("%s %s = %d, want %d (body: %s)", tc.method, tc.path, rec.Code, tc.want, rec.Body.String())
			}
			if rec.Code >= 400 {
				var we wireError
				if err := json.Unmarshal(rec.Body.Bytes(), &we); err != nil || we.Error == "" {
					t.Errorf("error body %q is not {\"error\": ...}", rec.Body.String())
				}
			}
		})
	}
}
