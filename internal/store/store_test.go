package store

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

type sample struct {
	Name  string    `json:"name"`
	Count int       `json:"count"`
	Vals  []float64 `json:"vals,omitempty"`
}

// backends returns one fresh store per backend, by name.
func backends(t *testing.T) map[string]Store {
	t.Helper()
	fsStore, err := NewFS(t.TempDir())
	if err != nil {
		t.Fatalf("NewFS: %v", err)
	}
	return map[string]Store{"fs": fsStore, "mem": NewMem()}
}

func TestPutGetRoundTrip(t *testing.T) {
	for name, st := range backends(t) {
		t.Run(name, func(t *testing.T) {
			in := sample{Name: "alpha", Count: 3, Vals: []float64{1.25, -0.5}}
			key, err := st.Put("sample", in)
			if err != nil {
				t.Fatalf("Put: %v", err)
			}
			if key.Kind() != "sample" {
				t.Errorf("key kind = %q, want sample", key.Kind())
			}
			out, err := Get[sample](st, key)
			if err != nil {
				t.Fatalf("Get: %v", err)
			}
			if out.Name != in.Name || out.Count != in.Count || len(out.Vals) != 2 || out.Vals[0] != 1.25 || out.Vals[1] != -0.5 {
				t.Errorf("round trip mismatch: got %+v, want %+v", out, in)
			}
			info, err := st.Stat(key)
			if err != nil {
				t.Fatalf("Stat: %v", err)
			}
			if info.Key != key || info.Kind != "sample" || info.Size <= 0 {
				t.Errorf("Stat = %+v", info)
			}
		})
	}
}

// The content address must be a pure function of the payload value:
// stable across repeated puts, across backends, and across runs. The
// pinned golden key catches accidental canonicalization drift (field
// reordering, indent changes, envelope hashing changes).
func TestContentAddressStability(t *testing.T) {
	const golden = "sample/b74bda576403903d3b4123507b84a28add8efc5dd17c5f78b1010e137f3c24c6"
	in := sample{Name: "golden", Count: 7, Vals: []float64{0.125}}
	for name, st := range backends(t) {
		t.Run(name, func(t *testing.T) {
			k1, err := st.Put("sample", in)
			if err != nil {
				t.Fatalf("Put: %v", err)
			}
			k2, err := st.Put("sample", in)
			if err != nil {
				t.Fatalf("Put again: %v", err)
			}
			if k1 != k2 {
				t.Errorf("repeated Put changed the key: %s vs %s", k1, k2)
			}
			kf, err := KeyFor("sample", in)
			if err != nil {
				t.Fatalf("KeyFor: %v", err)
			}
			if kf != k1 {
				t.Errorf("KeyFor = %s, Put = %s", kf, k1)
			}
			if string(k1) != golden {
				t.Errorf("content address drifted:\n got  %s\n want %s", k1, golden)
			}
		})
	}
}

func TestGetNotFound(t *testing.T) {
	missing := Key("sample/" + strings.Repeat("ab", 32))
	for name, st := range backends(t) {
		t.Run(name, func(t *testing.T) {
			if _, err := st.Get(missing); !errors.Is(err, ErrNotFound) {
				t.Errorf("Get missing: want ErrNotFound, got %v", err)
			}
			if _, err := st.Stat(missing); !errors.Is(err, ErrNotFound) {
				t.Errorf("Stat missing: want ErrNotFound, got %v", err)
			}
		})
	}
}

func TestBadKeysRejected(t *testing.T) {
	st := NewMem()
	for _, key := range []Key{"", "no-slash", "Bad-Kind/" + Key(strings.Repeat("ab", 32)), "sample/short", "sample/" + Key(strings.Repeat("zz", 32))} {
		if _, err := st.Get(key); !errors.Is(err, ErrBadKey) {
			t.Errorf("Get(%q): want ErrBadKey, got %v", key, err)
		}
	}
	if _, err := st.Put("../escape", sample{}); !errors.Is(err, ErrBadKey) {
		t.Errorf("Put with path-escaping kind: want ErrBadKey, got %v", err)
	}
}

// A corrupted envelope — truncated JSON, a lying kind field, or a payload
// whose bytes no longer hash to the address — must be rejected with
// ErrCorrupt, never returned as a zero-valued artifact.
func TestCorruptEnvelopeRejected(t *testing.T) {
	fsStore, err := NewFS(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key, err := fsStore.Put("sample", sample{Name: "x", Count: 1})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(fsStore.Root(), key.Kind(), key.Hash()+".json")

	cases := map[string][]byte{
		"truncated":       []byte(`{"kind":"sample","schemaVersion":1,"pay`),
		"wrong-kind":      mustEnvelope(t, "other", sample{Name: "x", Count: 1}),
		"tampered":        mustEnvelope(t, "sample", sample{Name: "tampered", Count: 99}),
		"bad-schema":      []byte(`{"kind":"sample","schemaVersion":99,"payload":{}}`),
		"not-an-envelope": []byte(`[1,2,3]`),
	}
	for name, b := range cases {
		t.Run(name, func(t *testing.T) {
			if err := os.WriteFile(path, b, 0o644); err != nil {
				t.Fatal(err)
			}
			if _, err := fsStore.Get(key); !errors.Is(err, ErrCorrupt) {
				t.Errorf("Get of %s envelope: want ErrCorrupt, got %v", name, err)
			}
		})
	}
}

// mustEnvelope builds envelope bytes claiming the given kind (hash will
// not match the original key unless payload is identical).
func mustEnvelope(t *testing.T, kind string, payload any) []byte {
	t.Helper()
	raw, err := json.Marshal(payload)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(Envelope{Kind: kind, SchemaVersion: SchemaVersion, Payload: raw})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestList(t *testing.T) {
	for name, st := range backends(t) {
		t.Run(name, func(t *testing.T) {
			var want []Key
			for i := 0; i < 3; i++ {
				k, err := st.Put("sample", sample{Name: "n", Count: i})
				if err != nil {
					t.Fatal(err)
				}
				want = append(want, k)
			}
			if _, err := st.Put("other-kind", sample{Name: "o"}); err != nil {
				t.Fatal(err)
			}
			infos, err := st.List("sample")
			if err != nil {
				t.Fatalf("List: %v", err)
			}
			if len(infos) != 3 {
				t.Fatalf("List(sample) = %d entries, want 3", len(infos))
			}
			for i := 1; i < len(infos); i++ {
				if infos[i-1].Key >= infos[i].Key {
					t.Errorf("List not sorted: %s before %s", infos[i-1].Key, infos[i].Key)
				}
			}
			all, err := st.List("")
			if err != nil {
				t.Fatalf("List all: %v", err)
			}
			if len(all) != 4 {
				t.Errorf("List(\"\") = %d entries, want 4", len(all))
			}
			_ = want
		})
	}
}

// The envelope bytes Encode produces must themselves decode cleanly —
// the round trip every backend relies on.
func TestEncodeDecodeEnvelope(t *testing.T) {
	key, b, err := Encode("sample", sample{Name: "env", Count: 2})
	if err != nil {
		t.Fatal(err)
	}
	env, err := DecodeEnvelope(key, b)
	if err != nil {
		t.Fatalf("DecodeEnvelope: %v", err)
	}
	var out sample
	if err := env.Decode("sample", &out); err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if out.Name != "env" || out.Count != 2 {
		t.Errorf("decoded %+v", out)
	}
	if err := env.Decode("wrong", &out); !errors.Is(err, ErrCorrupt) {
		t.Errorf("Decode with wrong kind: want ErrCorrupt, got %v", err)
	}
}
