package trace

import (
	"bytes"
	"strings"
	"testing"

	"sparkxd/internal/dram"
	"sparkxd/internal/memctrl"
	"sparkxd/internal/power"
	"sparkxd/internal/voltscale"
)

func TestWriteReadRoundtrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	in := []Entry{
		{Cycle: 0, Kind: dram.CmdACT, Bank: 0},
		{Cycle: 14, Kind: dram.CmdRD, Bank: 0},
		{Cycle: 18, Kind: dram.CmdRD, Bank: 1},
		{Cycle: 40, Kind: dram.CmdPRE, Bank: 0},
		{Cycle: 90, Kind: dram.CmdREF, Bank: 0},
	}
	for _, e := range in {
		if err := w.Append(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Count() != int64(len(in)) {
		t.Fatalf("Count = %d", w.Count())
	}
	out, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("read %d entries, want %d", len(out), len(in))
	}
	for i := range in {
		if out[i] != in[i] {
			t.Fatalf("entry %d = %+v, want %+v", i, out[i], in[i])
		}
	}
}

func TestAppendRejectsTimeTravel(t *testing.T) {
	w := NewWriter(&bytes.Buffer{})
	if err := w.Append(Entry{Cycle: 10, Kind: dram.CmdACT}); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(Entry{Cycle: 5, Kind: dram.CmdRD}); err == nil {
		t.Fatal("out-of-order cycle must error")
	}
	// Writer stays failed.
	if err := w.Append(Entry{Cycle: 20, Kind: dram.CmdRD}); err == nil {
		t.Fatal("failed writer must stay failed")
	}
}

func TestAppendRejectsNegativeBank(t *testing.T) {
	w := NewWriter(&bytes.Buffer{})
	if err := w.Append(Entry{Cycle: 0, Kind: dram.CmdACT, Bank: -1}); err == nil {
		t.Fatal("negative bank must error")
	}
}

func TestReadSkipsCommentsAndBlank(t *testing.T) {
	src := "# header\n\n0,ACT,0\n  \n5,RD,0\n"
	out, err := Read(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("read %d entries, want 2", len(out))
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	for _, bad := range []string{
		"0,ACT",           // missing field
		"x,ACT,0",         // bad cycle
		"0,NOP,0",         // unknown command
		"0,ACT,-2",        // bad bank
		"5,ACT,0\n1,RD,0", // backwards time
	} {
		if _, err := Read(strings.NewReader(bad)); err == nil {
			t.Errorf("input %q should fail", bad)
		}
	}
}

func TestHookCapturesControllerCommands(t *testing.T) {
	geom := dram.SmallTestGeometry()
	tm := dram.NominalTiming()
	ctl, err := memctrl.New(geom, tm)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	w := NewWriter(&buf)
	ctl.OnCommand = w.Hook(geom, tm.TCK)
	ctl.Do(memctrl.Access{Coord: dram.Coord{Row: 0}})
	ctl.Do(memctrl.Access{Coord: dram.Coord{Row: 1}})
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	entries, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// ACT,RD,PRE,ACT,RD
	if len(entries) != 5 {
		t.Fatalf("trace has %d entries, want 5", len(entries))
	}
	if entries[0].Kind != dram.CmdACT || entries[2].Kind != dram.CmdPRE {
		t.Fatalf("unexpected command sequence: %+v", entries)
	}
}

func TestTallyMatchesLiveController(t *testing.T) {
	geom := dram.SmallTestGeometry()
	tm := dram.NominalTiming()
	ctl, _ := memctrl.New(geom, tm)
	var buf bytes.Buffer
	w := NewWriter(&buf)
	ctl.OnCommand = w.Hook(geom, tm.TCK)

	var stream []memctrl.Access
	for i := 0; i < 200; i++ {
		stream = append(stream, memctrl.Access{Coord: dram.Coord{
			Bank: i % 4, Row: (i / 32) % geom.Rows, Column: i % geom.Columns,
		}})
	}
	live := ctl.Replay(stream)
	_ = w.Flush()
	entries, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	replayed := Tally(entries, tm.TCK)
	if replayed.NACT != live.Tally.NACT || replayed.NPRE != live.Tally.NPRE ||
		replayed.NRD != live.Tally.NRD {
		t.Fatalf("replayed tally %+v != live %+v", replayed, live.Tally)
	}

	// Energy computed from the archived trace must be close to the live
	// energy (background residency differs only by the trailing burst).
	m := power.Default()
	eLive := m.Energy(live.Tally, voltscale.VNominal).TotalNJ()
	eTrace := m.Energy(replayed, voltscale.VNominal).TotalNJ()
	if eTrace <= 0 || eLive <= 0 {
		t.Fatal("energies must be positive")
	}
	rel := (eLive - eTrace) / eLive
	if rel < -0.05 || rel > 0.05 {
		t.Errorf("trace-replayed energy differs %.1f%% from live", rel*100)
	}
}

func TestSummarize(t *testing.T) {
	entries := []Entry{
		{Cycle: 0, Kind: dram.CmdACT, Bank: 0},
		{Cycle: 4, Kind: dram.CmdRD, Bank: 0},
		{Cycle: 8, Kind: dram.CmdRD, Bank: 3},
		{Cycle: 30, Kind: dram.CmdPRE, Bank: 0},
	}
	s := Summarize(entries)
	if s.Entries != 4 || s.Cycles != 30 || s.BanksTouched != 2 {
		t.Fatalf("stats = %+v", s)
	}
	if s.PerKind[dram.CmdRD] != 2 || s.PerKind[dram.CmdACT] != 1 {
		t.Fatalf("per-kind counts wrong: %+v", s.PerKind)
	}
	empty := Summarize(nil)
	if empty.Entries != 0 || empty.Cycles != 0 {
		t.Fatal("empty summarize wrong")
	}
}
