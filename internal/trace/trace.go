// Package trace reads and writes DRAM command traces in the text format
// used by DRAMPower-style tools: one command per line,
//
//	<cycle>,<CMD>,<bank>
//
// where cycle is the issue time in clock cycles, CMD is ACT / RD / WR /
// PRE / REF, and bank is the flat bank index. The memory controller's
// OnCommand hook produces these traces (cmd/dramsim -trace renders a
// human-readable variant); this package provides the machine-readable
// round-trip so traces can be archived and replayed into the energy
// model without re-running the simulation.
package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"sparkxd/internal/dram"
	"sparkxd/internal/power"
)

// Entry is one trace line.
type Entry struct {
	Cycle int64
	Kind  dram.CommandKind
	Bank  int
}

// Writer streams entries to an io.Writer. Entries must be appended in
// non-decreasing cycle order; Append enforces this.
type Writer struct {
	w         *bufio.Writer
	lastCycle int64
	count     int64
	err       error
}

// NewWriter wraps w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriter(w), lastCycle: -1}
}

// Append writes one entry.
func (tw *Writer) Append(e Entry) error {
	if tw.err != nil {
		return tw.err
	}
	if e.Cycle < tw.lastCycle {
		tw.err = fmt.Errorf("trace: cycle %d before previous %d", e.Cycle, tw.lastCycle)
		return tw.err
	}
	if e.Bank < 0 {
		tw.err = fmt.Errorf("trace: negative bank %d", e.Bank)
		return tw.err
	}
	tw.lastCycle = e.Cycle
	tw.count++
	_, tw.err = fmt.Fprintf(tw.w, "%d,%s,%d\n", e.Cycle, e.Kind, e.Bank)
	return tw.err
}

// Count returns how many entries were appended.
func (tw *Writer) Count() int64 { return tw.count }

// Flush flushes the underlying buffer.
func (tw *Writer) Flush() error {
	if tw.err != nil {
		return tw.err
	}
	return tw.w.Flush()
}

// Hook returns a memctrl.Controller OnCommand callback that appends to
// the writer, converting nanosecond timestamps to cycles of the given
// clock period. Geometry is needed to flatten bank IDs.
//
// The controller reports per-bank issue times, which can step backwards
// across banks when row management overlaps a burst elsewhere; the shared
// command bus serializes them in reality, so the hook clamps each entry
// to the previous command's cycle.
func (tw *Writer) Hook(geom dram.Geometry, tckNs float64) func(dram.Command, float64) {
	return func(cmd dram.Command, atNs float64) {
		cycle := int64(atNs / tckNs)
		if cycle < tw.lastCycle {
			cycle = tw.lastCycle
		}
		_ = tw.Append(Entry{
			Cycle: cycle,
			Kind:  cmd.Kind,
			Bank:  cmd.Bank.Linear(geom),
		})
	}
}

// Read parses a full trace.
func Read(r io.Reader) ([]Entry, error) {
	var out []Entry
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		e, err := parseLine(text)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		if len(out) > 0 && e.Cycle < out[len(out)-1].Cycle {
			return nil, fmt.Errorf("trace: line %d: cycle goes backwards", line)
		}
		out = append(out, e)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

func parseLine(text string) (Entry, error) {
	parts := strings.Split(text, ",")
	if len(parts) != 3 {
		return Entry{}, fmt.Errorf("want 3 fields, got %d", len(parts))
	}
	cycle, err := strconv.ParseInt(strings.TrimSpace(parts[0]), 10, 64)
	if err != nil {
		return Entry{}, fmt.Errorf("bad cycle: %w", err)
	}
	kind, err := parseKind(strings.TrimSpace(parts[1]))
	if err != nil {
		return Entry{}, err
	}
	bank, err := strconv.Atoi(strings.TrimSpace(parts[2]))
	if err != nil || bank < 0 {
		return Entry{}, fmt.Errorf("bad bank %q", parts[2])
	}
	return Entry{Cycle: cycle, Kind: kind, Bank: bank}, nil
}

func parseKind(s string) (dram.CommandKind, error) {
	switch s {
	case "ACT":
		return dram.CmdACT, nil
	case "RD":
		return dram.CmdRD, nil
	case "WR":
		return dram.CmdWR, nil
	case "PRE":
		return dram.CmdPRE, nil
	case "REF":
		return dram.CmdREF, nil
	default:
		return 0, fmt.Errorf("unknown command %q", s)
	}
}

// Tally folds a trace into the command counts the energy model consumes,
// attributing the makespan (in ns, from the cycle span and clock period)
// to active-standby residency the way the live controller does.
func Tally(entries []Entry, tckNs float64) power.Tally {
	var t power.Tally
	for _, e := range entries {
		switch e.Kind {
		case dram.CmdACT:
			t.NACT++
		case dram.CmdPRE:
			t.NPRE++
		case dram.CmdRD:
			t.NRD++
		case dram.CmdWR:
			t.NWR++
		case dram.CmdREF:
			t.NREF++
		}
	}
	if n := len(entries); n > 0 {
		span := float64(entries[n-1].Cycle-entries[0].Cycle) * tckNs
		t.ActiveNs = span
	}
	return t
}

// Stats summarizes a trace.
type Stats struct {
	Entries      int64
	Cycles       int64 // span from first to last command
	PerKind      [5]int64
	BanksTouched int
}

// Summarize computes trace statistics.
func Summarize(entries []Entry) Stats {
	s := Stats{Entries: int64(len(entries))}
	banks := map[int]bool{}
	for _, e := range entries {
		if int(e.Kind) < len(s.PerKind) {
			s.PerKind[e.Kind]++
		}
		banks[e.Bank] = true
	}
	if len(entries) > 0 {
		s.Cycles = entries[len(entries)-1].Cycle - entries[0].Cycle
	}
	s.BanksTouched = len(banks)
	return s
}
