package neuron

import (
	"math"
	"testing"
)

func pool(t *testing.T, n int) *Pool {
	t.Helper()
	p, err := NewPool(DefaultLIF(n))
	if err != nil {
		t.Fatalf("NewPool: %v", err)
	}
	return p
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultLIF(10).Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := DefaultLIF(0)
	if bad.Validate() == nil {
		t.Error("N=0 must be invalid")
	}
	bad = DefaultLIF(5)
	bad.VTh = bad.VReset
	if bad.Validate() == nil {
		t.Error("threshold <= reset must be invalid")
	}
	bad = DefaultLIF(5)
	bad.DT = 0
	if bad.Validate() == nil {
		t.Error("zero dt must be invalid")
	}
	bad = DefaultLIF(5)
	bad.RefractorySteps = -1
	if bad.Validate() == nil {
		t.Error("negative refractory must be invalid")
	}
}

func TestNoInputNoSpikes(t *testing.T) {
	p := pool(t, 10)
	input := make([]float32, 10)
	for i := 0; i < 100; i++ {
		if s := p.Step(input, nil); len(s) != 0 {
			t.Fatal("silent input must not spike")
		}
	}
}

func TestStrongInputSpikes(t *testing.T) {
	p := pool(t, 4)
	input := []float32{100, 0, 0, 0}
	s := p.Step(input, nil)
	if len(s) != 1 || s[0] != 0 {
		t.Fatalf("spikes = %v, want [0]", s)
	}
	if p.V[0] != p.Cfg.VReset {
		t.Error("spiking neuron must reset")
	}
}

func TestSubthresholdIntegration(t *testing.T) {
	p := pool(t, 1)
	input := []float32{4} // below the threshold of 10 but integrates up
	spiked := false
	for i := 0; i < 20; i++ {
		if len(p.Step(input, nil)) > 0 {
			spiked = true
			break
		}
	}
	if !spiked {
		t.Fatal("sustained subthreshold input should integrate to a spike")
	}
}

func TestLeakDecay(t *testing.T) {
	p := pool(t, 1)
	p.V[0] = 8
	zero := []float32{0}
	p.Step(zero, nil)
	want := 8 * float32(math.Exp(-p.Cfg.DT/p.Cfg.TauM))
	if math.Abs(float64(p.V[0]-want)) > 1e-5 {
		t.Fatalf("V after leak = %v, want %v", p.V[0], want)
	}
}

func TestRefractoryPeriod(t *testing.T) {
	p := pool(t, 1)
	big := []float32{1000}
	if len(p.Step(big, nil)) != 1 {
		t.Fatal("expected a spike")
	}
	for i := 0; i < p.Cfg.RefractorySteps; i++ {
		if len(p.Step(big, nil)) != 0 {
			t.Fatal("refractory neuron must not spike")
		}
	}
	if len(p.Step(big, nil)) != 1 {
		t.Fatal("neuron should spike again after the refractory period")
	}
}

func TestThetaGrowsWithSpikes(t *testing.T) {
	p := pool(t, 1)
	big := []float32{1000}
	p.Step(big, nil)
	if p.Theta[0] <= 0 {
		t.Fatal("theta must grow after a spike")
	}
	th := p.ThresholdOf(0)
	if th <= p.Cfg.VTh {
		t.Fatal("effective threshold must exceed base after a spike")
	}
}

func TestThetaDecays(t *testing.T) {
	p := pool(t, 1)
	p.Theta[0] = 1
	zero := []float32{0}
	p.Step(zero, nil)
	if p.Theta[0] >= 1 {
		t.Fatal("theta must decay over time")
	}
}

func TestHomeostasisSlowsFiring(t *testing.T) {
	// With constant drive, theta accumulation must stretch inter-spike
	// intervals over time.
	cfg := DefaultLIF(1)
	cfg.ThetaPlus = 2
	p, _ := NewPool(cfg)
	input := []float32{6}
	var spikeTimes []int
	for i := 0; i < 400; i++ {
		if len(p.Step(input, nil)) > 0 {
			spikeTimes = append(spikeTimes, i)
		}
	}
	if len(spikeTimes) < 4 {
		t.Fatalf("expected several spikes, got %d", len(spikeTimes))
	}
	firstGap := spikeTimes[1] - spikeTimes[0]
	lastGap := spikeTimes[len(spikeTimes)-1] - spikeTimes[len(spikeTimes)-2]
	if lastGap <= firstGap {
		t.Errorf("homeostasis should stretch ISIs: first=%d last=%d", firstGap, lastGap)
	}
}

func TestResetStatePreservesTheta(t *testing.T) {
	p := pool(t, 2)
	p.Step([]float32{1000, 0}, nil)
	theta := p.Theta[0]
	p.V[1] = 5
	p.ResetState()
	if p.V[1] != p.Cfg.VRest {
		t.Error("ResetState must reset membranes")
	}
	if p.Theta[0] != theta {
		t.Error("ResetState must keep theta")
	}
}

func TestResetAllClearsTheta(t *testing.T) {
	p := pool(t, 1)
	p.Step([]float32{1000}, nil)
	p.ResetAll()
	if p.Theta[0] != 0 {
		t.Error("ResetAll must clear theta")
	}
}

func TestInhibitSuppressesOthers(t *testing.T) {
	p := pool(t, 3)
	p.V = []float32{5, 5, 5}
	p.Inhibit([]int32{0}, 2)
	if p.V[0] != 5 {
		t.Error("winner must not be inhibited")
	}
	if p.V[1] != 3 || p.V[2] != 3 {
		t.Errorf("losers should drop to 3: %v", p.V)
	}
}

func TestInhibitClampsAtFloor(t *testing.T) {
	p := pool(t, 2)
	p.V = []float32{0, 0}
	p.Inhibit([]int32{0}, 1000)
	if p.V[1] != p.Cfg.VFloor {
		t.Errorf("inhibition must clamp at VFloor, got %v", p.V[1])
	}
}

func TestInhibitNoopCases(t *testing.T) {
	p := pool(t, 2)
	p.V = []float32{5, 5}
	p.Inhibit(nil, 3)
	p.Inhibit([]int32{0}, 0)
	if p.V[0] != 5 || p.V[1] != 5 {
		t.Error("no-op inhibition must not change potentials")
	}
}

func TestVFloorBoundsInput(t *testing.T) {
	p := pool(t, 1)
	p.Step([]float32{-1e6}, nil)
	if p.V[0] < p.Cfg.VFloor {
		t.Fatal("membrane must clamp at VFloor under negative drive")
	}
}

func TestSpikeBufferReuse(t *testing.T) {
	p := pool(t, 3)
	buf := make([]int32, 0, 3)
	s := p.Step([]float32{1000, 1000, 0}, buf)
	if len(s) != 2 {
		t.Fatalf("want 2 spikes, got %v", s)
	}
	if cap(s) != cap(buf) {
		t.Error("Step should reuse the provided buffer")
	}
}

func TestStepPanicsOnBadLength(t *testing.T) {
	p := pool(t, 3)
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch must panic")
		}
	}()
	p.Step(make([]float32, 2), nil)
}
