// Package neuron implements the Leaky Integrate-and-Fire (LIF) neuron
// pool with adaptive thresholds used by the SNN architecture of the paper
// (Fig. 4(b)): the membrane potential rises when presynaptic input
// arrives, decays exponentially otherwise, fires a postsynaptic spike on
// reaching the threshold, then resets and enters a refractory period.
//
// The adaptive threshold (theta) implements the homeostasis of
// Diehl&Cook-style unsupervised SNNs: every spike raises the neuron's own
// threshold by ThetaPlus, and theta decays slowly, forcing neurons to
// take turns and specialize instead of a few neurons dominating.
package neuron

import (
	"errors"
	"math"
)

// LIFConfig parameterizes a pool of LIF neurons. Times are in
// milliseconds; potentials are in arbitrary membrane units.
type LIFConfig struct {
	N               int     // number of neurons
	DT              float64 // simulation timestep (ms)
	TauM            float64 // membrane time constant (ms)
	VRest           float32 // resting potential
	VReset          float32 // post-spike reset potential
	VTh             float32 // base firing threshold
	ThetaPlus       float32 // adaptive threshold increment per spike
	TauTheta        float64 // adaptive threshold decay constant (ms)
	RefractorySteps int     // steps a neuron stays silent after a spike
	VFloor          float32 // lower clamp for inhibition-driven potentials
}

// DefaultLIF returns the configuration used by the experiments.
func DefaultLIF(n int) LIFConfig {
	return LIFConfig{
		N:               n,
		DT:              1.0,
		TauM:            20.0,
		VRest:           0.0,
		VReset:          0.0,
		VTh:             10.0,
		ThetaPlus:       0.25,
		TauTheta:        4000.0,
		RefractorySteps: 2,
		VFloor:          -10.0,
	}
}

// Validate reports whether the configuration is usable.
func (c LIFConfig) Validate() error {
	switch {
	case c.N <= 0:
		return errors.New("neuron: N must be positive")
	case c.DT <= 0 || c.TauM <= 0 || c.TauTheta <= 0:
		return errors.New("neuron: time constants must be positive")
	case c.VTh <= c.VReset:
		return errors.New("neuron: threshold must exceed reset potential")
	case c.RefractorySteps < 0:
		return errors.New("neuron: negative refractory period")
	case c.ThetaPlus < 0:
		return errors.New("neuron: negative theta increment")
	}
	return nil
}

// Pool is a vectorized population of LIF neurons. Create with NewPool.
type Pool struct {
	Cfg LIFConfig

	V      []float32 // membrane potentials
	Theta  []float32 // adaptive threshold offsets
	refrac []int16   // remaining refractory steps

	decayV     float32 // exp(-dt/tauM)
	decayTheta float32 // exp(-dt/tauTheta)
}

// NewPool allocates a pool at resting state.
func NewPool(cfg LIFConfig) (*Pool, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	p := &Pool{
		Cfg:        cfg,
		V:          make([]float32, cfg.N),
		Theta:      make([]float32, cfg.N),
		refrac:     make([]int16, cfg.N),
		decayV:     float32(math.Exp(-cfg.DT / cfg.TauM)),
		decayTheta: float32(math.Exp(-cfg.DT / cfg.TauTheta)),
	}
	for i := range p.V {
		p.V[i] = cfg.VRest
	}
	return p, nil
}

// ResetState returns membranes and refractory counters to rest without
// touching the adaptive thresholds (theta persists across samples, which
// is what makes homeostasis work across a training run).
func (p *Pool) ResetState() {
	for i := range p.V {
		p.V[i] = p.Cfg.VRest
		p.refrac[i] = 0
	}
}

// ResetAll additionally clears the adaptive thresholds.
func (p *Pool) ResetAll() {
	p.ResetState()
	for i := range p.Theta {
		p.Theta[i] = 0
	}
}

// Step advances the pool one timestep. input[j] is the synaptic drive
// accumulated for neuron j this step. spikesOut is an optional reusable
// buffer; the returned slice lists the indices of neurons that fired.
func (p *Pool) Step(input []float32, spikesOut []int32) []int32 {
	if len(input) != p.Cfg.N {
		panic("neuron: input length mismatch")
	}
	spikes := spikesOut[:0]
	rest := p.Cfg.VRest
	for j := range p.V {
		// Theta decays every step regardless of refractory state.
		p.Theta[j] *= p.decayTheta

		if p.refrac[j] > 0 {
			p.refrac[j]--
			p.V[j] = p.Cfg.VReset
			continue
		}
		// Exponential leak toward rest, then integrate input.
		v := rest + (p.V[j]-rest)*p.decayV + input[j]
		if v < p.Cfg.VFloor {
			v = p.Cfg.VFloor
		}
		if v >= p.Cfg.VTh+p.Theta[j] {
			spikes = append(spikes, int32(j))
			v = p.Cfg.VReset
			p.refrac[j] = int16(p.Cfg.RefractorySteps)
			p.Theta[j] += p.Cfg.ThetaPlus
		}
		p.V[j] = v
	}
	return spikes
}

// Inhibit applies lateral inhibition: every neuron except those listed in
// winners has `strength` subtracted from its membrane (clamped at VFloor).
// This is the paper's Fig. 4(a) inhibitory feedback loop, collapsed to
// its effective one-step form (exc -> inh -> exc with one-to-one
// excitation and all-to-others inhibition).
func (p *Pool) Inhibit(winners []int32, strength float32) {
	if len(winners) == 0 || strength == 0 {
		return
	}
	isWinner := func(j int) bool {
		for _, w := range winners {
			if int(w) == j {
				return true
			}
		}
		return false
	}
	for j := range p.V {
		if isWinner(j) {
			continue
		}
		v := p.V[j] - strength*float32(len(winners))
		if v < p.Cfg.VFloor {
			v = p.Cfg.VFloor
		}
		p.V[j] = v
	}
}

// ThresholdOf returns the effective threshold of neuron j.
func (p *Pool) ThresholdOf(j int) float32 { return p.Cfg.VTh + p.Theta[j] }
