// Package neuron implements the Leaky Integrate-and-Fire (LIF) neuron
// pool with adaptive thresholds used by the SNN architecture of the paper
// (Fig. 4(b)): the membrane potential rises when presynaptic input
// arrives, decays exponentially otherwise, fires a postsynaptic spike on
// reaching the threshold, then resets and enters a refractory period.
//
// The adaptive threshold (theta) implements the homeostasis of
// Diehl&Cook-style unsupervised SNNs: every spike raises the neuron's own
// threshold by ThetaPlus, and theta decays slowly, forcing neurons to
// take turns and specialize instead of a few neurons dominating.
package neuron

import (
	"errors"
	"math"
)

// LIFConfig parameterizes a pool of LIF neurons. Times are in
// milliseconds; potentials are in arbitrary membrane units.
type LIFConfig struct {
	N               int     // number of neurons
	DT              float64 // simulation timestep (ms)
	TauM            float64 // membrane time constant (ms)
	VRest           float32 // resting potential
	VReset          float32 // post-spike reset potential
	VTh             float32 // base firing threshold
	ThetaPlus       float32 // adaptive threshold increment per spike
	TauTheta        float64 // adaptive threshold decay constant (ms)
	RefractorySteps int     // steps a neuron stays silent after a spike
	VFloor          float32 // lower clamp for inhibition-driven potentials
}

// DefaultLIF returns the configuration used by the experiments.
func DefaultLIF(n int) LIFConfig {
	return LIFConfig{
		N:               n,
		DT:              1.0,
		TauM:            20.0,
		VRest:           0.0,
		VReset:          0.0,
		VTh:             10.0,
		ThetaPlus:       0.25,
		TauTheta:        4000.0,
		RefractorySteps: 2,
		VFloor:          -10.0,
	}
}

// Validate reports whether the configuration is usable.
func (c LIFConfig) Validate() error {
	switch {
	case c.N <= 0:
		return errors.New("neuron: N must be positive")
	case c.DT <= 0 || c.TauM <= 0 || c.TauTheta <= 0:
		return errors.New("neuron: time constants must be positive")
	case c.VTh <= c.VReset:
		return errors.New("neuron: threshold must exceed reset potential")
	case c.RefractorySteps < 0:
		return errors.New("neuron: negative refractory period")
	case c.ThetaPlus < 0:
		return errors.New("neuron: negative theta increment")
	}
	return nil
}

// Pool is a vectorized population of LIF neurons. Create with NewPool.
type Pool struct {
	Cfg LIFConfig

	V      []float32 // membrane potentials
	Theta  []float32 // adaptive threshold offsets
	refrac []int16   // remaining refractory steps

	decayV     float32 // exp(-dt/tauM)
	decayTheta float32 // exp(-dt/tauTheta)

	// winnerStamp/stampGen implement Inhibit's O(N + winners) winner
	// lookup: winnerStamp[j] == stampGen marks j a winner of the current
	// Inhibit call, so no per-call clearing or allocation is needed.
	winnerStamp []uint64
	stampGen    uint64
}

// NewPool allocates a pool at resting state.
func NewPool(cfg LIFConfig) (*Pool, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	p := &Pool{
		Cfg:         cfg,
		V:           make([]float32, cfg.N),
		Theta:       make([]float32, cfg.N),
		refrac:      make([]int16, cfg.N),
		winnerStamp: make([]uint64, cfg.N),
		decayV:      float32(math.Exp(-cfg.DT / cfg.TauM)),
		decayTheta:  float32(math.Exp(-cfg.DT / cfg.TauTheta)),
	}
	for i := range p.V {
		p.V[i] = cfg.VRest
	}
	return p, nil
}

// ResetState returns membranes and refractory counters to rest without
// touching the adaptive thresholds (theta persists across samples, which
// is what makes homeostasis work across a training run).
func (p *Pool) ResetState() {
	for i := range p.V {
		p.V[i] = p.Cfg.VRest
		p.refrac[i] = 0
	}
}

// ResetAll additionally clears the adaptive thresholds.
func (p *Pool) ResetAll() {
	p.ResetState()
	for i := range p.Theta {
		p.Theta[i] = 0
	}
}

// Step advances the pool one timestep. input[j] is the synaptic drive
// accumulated for neuron j this step. spikesOut is an optional reusable
// buffer; the returned slice lists the indices of neurons that fired.
//
// The loop is written for throughput — state slices and config scalars
// are hoisted into locals so the compiler can keep them in registers and
// elide bounds checks — but every floating-point operation happens in
// the same order as the straightforward scalar form, so results are
// bit-identical to it (TestStepMatchesScalarReference pins this).
func (p *Pool) Step(input []float32, spikesOut []int32) []int32 {
	n := p.Cfg.N
	if len(input) != n {
		panic("neuron: input length mismatch")
	}
	spikes := spikesOut[:0]
	V := p.V
	theta := p.Theta
	refrac := p.refrac
	if len(V) != n || len(theta) != n || len(refrac) != n {
		panic("neuron: state length mismatch")
	}
	var (
		rest       = p.Cfg.VRest
		reset      = p.Cfg.VReset
		vth        = p.Cfg.VTh
		floor      = p.Cfg.VFloor
		thetaPlus  = p.Cfg.ThetaPlus
		refSteps   = int16(p.Cfg.RefractorySteps)
		decayV     = p.decayV
		decayTheta = p.decayTheta
	)
	for j := 0; j < n; j++ {
		// Theta decays every step regardless of refractory state.
		th := theta[j] * decayTheta
		theta[j] = th

		if refrac[j] > 0 {
			refrac[j]--
			V[j] = reset
			continue
		}
		// Exponential leak toward rest, then integrate input.
		v := rest + (V[j]-rest)*decayV + input[j]
		if v < floor {
			v = floor
		}
		if v >= vth+th {
			spikes = append(spikes, int32(j))
			v = reset
			refrac[j] = refSteps
			theta[j] = th + thetaPlus
		}
		V[j] = v
	}
	return spikes
}

// Inhibit applies lateral inhibition: every neuron except those listed in
// winners has `strength` subtracted from its membrane (clamped at VFloor).
// This is the paper's Fig. 4(a) inhibitory feedback loop, collapsed to
// its effective one-step form (exc -> inh -> exc with one-to-one
// excitation and all-to-others inhibition).
//
// Winners are marked in a generation-stamped scratch slice, making the
// pass O(N + len(winners)) instead of O(N * len(winners)); the applied
// arithmetic is unchanged, so membranes stay bit-identical to the
// scalar form.
func (p *Pool) Inhibit(winners []int32, strength float32) {
	if len(winners) == 0 || strength == 0 {
		return
	}
	p.stampGen++
	gen := p.stampGen
	stamp := p.winnerStamp
	for _, w := range winners {
		stamp[w] = gen
	}
	sub := strength * float32(len(winners))
	floor := p.Cfg.VFloor
	V := p.V
	for j := range V {
		if stamp[j] == gen {
			continue
		}
		v := V[j] - sub
		if v < floor {
			v = floor
		}
		V[j] = v
	}
}

// ThresholdOf returns the effective threshold of neuron j.
func (p *Pool) ThresholdOf(j int) float32 { return p.Cfg.VTh + p.Theta[j] }
