package neuron

import (
	"math"
	"testing"

	"sparkxd/internal/rng"
)

// refState is an independent copy of a pool's mutable state, advanced by
// the reference kernels below.
type refState struct {
	V      []float32
	Theta  []float32
	refrac []int16
}

func refStateOf(p *Pool) *refState {
	return &refState{
		V:      append([]float32(nil), p.V...),
		Theta:  append([]float32(nil), p.Theta...),
		refrac: append([]int16(nil), p.refrac...),
	}
}

// stepReference is the seed repo's scalar Pool.Step, kept verbatim as
// the semantics oracle for the hoisted/branch-lean production loop. Any
// change to Step must keep results bit-identical to this.
func stepReference(cfg LIFConfig, s *refState, input []float32) []int32 {
	decayV := float32(math.Exp(-cfg.DT / cfg.TauM))
	decayTheta := float32(math.Exp(-cfg.DT / cfg.TauTheta))
	var spikes []int32
	rest := cfg.VRest
	for j := range s.V {
		s.Theta[j] *= decayTheta
		if s.refrac[j] > 0 {
			s.refrac[j]--
			s.V[j] = cfg.VReset
			continue
		}
		v := rest + (s.V[j]-rest)*decayV + input[j]
		if v < cfg.VFloor {
			v = cfg.VFloor
		}
		if v >= cfg.VTh+s.Theta[j] {
			spikes = append(spikes, int32(j))
			v = cfg.VReset
			s.refrac[j] = int16(cfg.RefractorySteps)
			s.Theta[j] += cfg.ThetaPlus
		}
		s.V[j] = v
	}
	return spikes
}

// inhibitReference is the seed repo's quadratic Inhibit, the oracle for
// the generation-stamped O(N) form.
func inhibitReference(cfg LIFConfig, s *refState, winners []int32, strength float32) {
	if len(winners) == 0 || strength == 0 {
		return
	}
	isWinner := func(j int) bool {
		for _, w := range winners {
			if int(w) == j {
				return true
			}
		}
		return false
	}
	for j := range s.V {
		if isWinner(j) {
			continue
		}
		v := s.V[j] - strength*float32(len(winners))
		if v < cfg.VFloor {
			v = cfg.VFloor
		}
		s.V[j] = v
	}
}

func equalState(t *testing.T, step int, p *Pool, s *refState) {
	t.Helper()
	for j := range s.V {
		if math.Float32bits(p.V[j]) != math.Float32bits(s.V[j]) {
			t.Fatalf("step %d: V[%d] = %v, reference %v", step, j, p.V[j], s.V[j])
		}
		if math.Float32bits(p.Theta[j]) != math.Float32bits(s.Theta[j]) {
			t.Fatalf("step %d: Theta[%d] = %v, reference %v", step, j, p.Theta[j], s.Theta[j])
		}
		if p.refrac[j] != s.refrac[j] {
			t.Fatalf("step %d: refrac[%d] = %d, reference %d", step, j, p.refrac[j], s.refrac[j])
		}
	}
}

// TestStepMatchesScalarReference drives the production Step and the seed
// scalar reference through identical randomized input sequences and
// requires bit-identical membrane, threshold, refractory, and spike
// trajectories — the regression guard for every future Step rewrite.
func TestStepMatchesScalarReference(t *testing.T) {
	cfg := DefaultLIF(97) // odd size exercises unroll tails downstream
	cfg.VTh = 5.0
	cfg.ThetaPlus = 0.5
	p, err := NewPool(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ref := refStateOf(p)
	r := rng.New(42)
	input := make([]float32, cfg.N)
	var spikeBuf []int32
	for step := 0; step < 300; step++ {
		for j := range input {
			// Mostly subthreshold with occasional strong drive, so the
			// trajectory visits spiking, refractory, and floor regimes.
			input[j] = r.Float32() * 2
			if r.Bernoulli(0.03) {
				input[j] = 8 + r.Float32()*4
			}
			if r.Bernoulli(0.02) {
				input[j] = -30 // slam into VFloor
			}
		}
		got := p.Step(input, spikeBuf)
		want := stepReference(cfg, ref, input)
		if len(got) != len(want) {
			t.Fatalf("step %d: %d spikes, reference %d", step, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("step %d: spike[%d] = %d, reference %d", step, i, got[i], want[i])
			}
		}
		equalState(t, step, p, ref)
	}
}

// TestInhibitMatchesScalarReference pins the generation-stamped Inhibit
// against the seed's quadratic winner scan, including repeated calls
// (the stamp generation must not leak winners across calls).
func TestInhibitMatchesScalarReference(t *testing.T) {
	cfg := DefaultLIF(61)
	p, err := NewPool(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ref := refStateOf(p)
	r := rng.New(7)
	input := make([]float32, cfg.N)
	for step := 0; step < 120; step++ {
		for j := range input {
			input[j] = r.Float32() * 3
			if r.Bernoulli(0.05) {
				input[j] = 9
			}
		}
		spikes := p.Step(input, nil)
		refSpikes := stepReference(cfg, ref, input)
		p.Inhibit(spikes, 1.5)
		inhibitReference(cfg, ref, refSpikes, 1.5)
		equalState(t, step, p, ref)
	}
}
