package dataset

import (
	"bytes"
	"compress/gzip"
	"encoding/binary"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// fixtureSet builds a tiny valid 4-file IDX fixture (trainN/testN
// samples) in dir; gz compresses the files.
func fixtureSet(t *testing.T, dir string, trainN, testN int, gz bool) {
	t.Helper()
	writeIDXFixture(t, dir, "train-images-idx3-ubyte", "train-labels-idx1-ubyte", trainN, gz)
	writeIDXFixture(t, dir, "t10k-images-idx3-ubyte", "t10k-labels-idx1-ubyte", testN, gz)
}

func writeIDXFixture(t *testing.T, dir, imgName, lblName string, n int, gz bool) {
	t.Helper()
	images := make([][]byte, n)
	labels := make([]uint8, n)
	for i := range images {
		img := make([]byte, Pixels)
		img[i%Pixels] = byte(100 + i)
		images[i] = img
		labels[i] = uint8(i % NumClasses)
	}
	var imgBuf, lblBuf bytes.Buffer
	if err := WriteIDXImages(&imgBuf, images); err != nil {
		t.Fatal(err)
	}
	if err := WriteIDXLabels(&lblBuf, labels); err != nil {
		t.Fatal(err)
	}
	writeFixtureFile(t, filepath.Join(dir, imgName), imgBuf.Bytes(), gz)
	writeFixtureFile(t, filepath.Join(dir, lblName), lblBuf.Bytes(), gz)
}

func writeFixtureFile(t *testing.T, path string, data []byte, gz bool) {
	t.Helper()
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if gz {
		var buf bytes.Buffer
		zw := gzip.NewWriter(&buf)
		if _, err := zw.Write(data); err != nil {
			t.Fatal(err)
		}
		if err := zw.Close(); err != nil {
			t.Fatal(err)
		}
		data, path = buf.Bytes(), path+".gz"
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestLoadIDXPlainFiles(t *testing.T) {
	dir := t.TempDir()
	fixtureSet(t, dir, 12, 5, false)
	train, test, found, err := LoadIDX(dir, MNISTLike)
	if err != nil {
		t.Fatal(err)
	}
	if !found {
		t.Fatal("complete fixture set not found")
	}
	if train.Len() != 12 || test.Len() != 5 {
		t.Fatalf("got %d/%d samples, want 12/5", train.Len(), test.Len())
	}
	if train.Name != "mnist-idx-train" || test.Name != "mnist-idx-test" {
		t.Errorf("names = %q, %q", train.Name, test.Name)
	}
	if train.Images[3][3%Pixels] != 103 {
		t.Errorf("payload mismatch: image 3 pixel = %d, want 103", train.Images[3][3])
	}
	if train.Labels[7] != 7 {
		t.Errorf("label 7 = %d", train.Labels[7])
	}
}

func TestLoadIDXGzipInFlavorSubdir(t *testing.T) {
	dir := t.TempDir()
	fixtureSet(t, filepath.Join(dir, "fashion"), 6, 4, true)
	train, test, found, err := LoadIDX(dir, FashionLike)
	if err != nil {
		t.Fatal(err)
	}
	if !found {
		t.Fatal("gzipped subdir fixture not found")
	}
	if train.Len() != 6 || test.Len() != 4 {
		t.Fatalf("got %d/%d samples, want 6/4", train.Len(), test.Len())
	}
	if train.Name != "fashion-idx-train" {
		t.Errorf("train name = %q", train.Name)
	}
}

func TestLoadIDXAbsentIsNotAnError(t *testing.T) {
	_, _, found, err := LoadIDX(t.TempDir(), MNISTLike)
	if err != nil {
		t.Fatalf("empty dir must fall back silently, got %v", err)
	}
	if found {
		t.Fatal("found = true in empty dir")
	}
}

func TestLoadIDXPartialSetIsAnError(t *testing.T) {
	dir := t.TempDir()
	writeIDXFixture(t, dir, "train-images-idx3-ubyte", "train-labels-idx1-ubyte", 3, false)
	// The t10k pair is missing.
	_, _, _, err := LoadIDX(dir, MNISTLike)
	if err == nil || !strings.Contains(err.Error(), "missing") {
		t.Fatalf("partial set: err = %v, want missing-file error", err)
	}
}

func TestLoadIDXCorruptFiles(t *testing.T) {
	valid := func(t *testing.T, dir string) { fixtureSet(t, dir, 3, 2, false) }
	cases := []struct {
		name    string
		corrupt func(t *testing.T, dir string)
		want    string
	}{
		{
			name: "bad image magic",
			corrupt: func(t *testing.T, dir string) {
				var buf bytes.Buffer
				for _, v := range [4]uint32{0xdeadbeef, 1, Side, Side} {
					binary.Write(&buf, binary.BigEndian, v)
				}
				writeFixtureFile(t, filepath.Join(dir, "train-images-idx3-ubyte"), buf.Bytes(), false)
			},
			want: "bad image magic",
		},
		{
			name: "truncated image payload",
			corrupt: func(t *testing.T, dir string) {
				var buf bytes.Buffer
				for _, v := range [4]uint32{0x00000803, 2, Side, Side} {
					binary.Write(&buf, binary.BigEndian, v)
				}
				buf.Write(make([]byte, Pixels/2)) // half of image 0
				writeFixtureFile(t, filepath.Join(dir, "t10k-images-idx3-ubyte"), buf.Bytes(), false)
			},
			want: "truncated image",
		},
		{
			name: "label out of range",
			corrupt: func(t *testing.T, dir string) {
				var buf bytes.Buffer
				for _, v := range [2]uint32{0x00000801, 2} {
					binary.Write(&buf, binary.BigEndian, v)
				}
				buf.Write([]byte{1, NumClasses})
				writeFixtureFile(t, filepath.Join(dir, "train-labels-idx1-ubyte"), buf.Bytes(), false)
			},
			want: "label",
		},
		{
			name: "image/label count mismatch",
			corrupt: func(t *testing.T, dir string) {
				var buf bytes.Buffer
				binary.Write(&buf, binary.BigEndian, uint32(0x00000801))
				binary.Write(&buf, binary.BigEndian, uint32(1)) // fixture has 3 images
				buf.WriteByte(0)
				writeFixtureFile(t, filepath.Join(dir, "train-labels-idx1-ubyte"), buf.Bytes(), false)
			},
			want: "count mismatch",
		},
		{
			name: "corrupt gzip stream",
			corrupt: func(t *testing.T, dir string) {
				os.Remove(filepath.Join(dir, "train-images-idx3-ubyte"))
				writeFixtureFile(t, filepath.Join(dir, "train-images-idx3-ubyte.gz"),
					[]byte("not gzip at all"), false)
			},
			want: "train-images",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			valid(t, dir)
			tc.corrupt(t, dir)
			_, _, _, err := LoadIDX(dir, MNISTLike)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want substring %q", err, tc.want)
			}
		})
	}
}
