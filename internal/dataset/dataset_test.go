package dataset

import (
	"bytes"
	"testing"

	"sparkxd/internal/rng"
)

func genSmall(t *testing.T, f Flavor) (*Dataset, *Dataset) {
	t.Helper()
	cfg := DefaultConfig(f)
	cfg.Train, cfg.Test = 100, 50
	train, test, err := Generate(cfg)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	return train, test
}

func TestGenerateShapes(t *testing.T) {
	train, test := genSmall(t, MNISTLike)
	if train.Len() != 100 || test.Len() != 50 {
		t.Fatalf("sizes: %d/%d", train.Len(), test.Len())
	}
	if err := train.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := test.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, _ := genSmall(t, MNISTLike)
	b, _ := genSmall(t, MNISTLike)
	for i := range a.Images {
		if a.Labels[i] != b.Labels[i] || !bytes.Equal(a.Images[i], b.Images[i]) {
			t.Fatal("same config must generate identical data")
		}
	}
}

func TestFlavorsDiffer(t *testing.T) {
	a, _ := genSmall(t, MNISTLike)
	b, _ := genSmall(t, FashionLike)
	same := 0
	for i := range a.Images {
		if bytes.Equal(a.Images[i], b.Images[i]) {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d identical images across flavours", same)
	}
}

func TestClassBalance(t *testing.T) {
	train, _ := genSmall(t, MNISTLike)
	counts := train.ClassCounts()
	for c, n := range counts {
		if n != 10 {
			t.Errorf("class %d has %d samples, want 10", c, n)
		}
	}
}

func TestImagesNonTrivial(t *testing.T) {
	train, _ := genSmall(t, MNISTLike)
	for i, img := range train.Images[:10] {
		var sum int
		for _, p := range img {
			sum += int(p)
		}
		if sum < 255*5 {
			t.Errorf("image %d nearly empty (sum=%d)", i, sum)
		}
		if sum > 255*Pixels/2 {
			t.Errorf("image %d nearly full (sum=%d)", i, sum)
		}
	}
}

// Same-class images must correlate more strongly than cross-class images;
// otherwise an unsupervised learner has nothing to find.
func TestClassSeparability(t *testing.T) {
	cfg := DefaultConfig(MNISTLike)
	cfg.Train, cfg.Test = 200, 10
	train, _, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Average pixel vectors per class.
	var mean [NumClasses][Pixels]float64
	counts := train.ClassCounts()
	for i, img := range train.Images {
		c := train.Labels[i]
		for p, v := range img {
			mean[c][p] += float64(v)
		}
	}
	for c := range mean {
		for p := range mean[c] {
			mean[c][p] /= float64(counts[c])
		}
	}
	cos := func(a, b *[Pixels]float64) float64 {
		var dot, na, nb float64
		for p := 0; p < Pixels; p++ {
			dot += a[p] * b[p]
			na += a[p] * a[p]
			nb += b[p] * b[p]
		}
		return dot / (sqrt(na)*sqrt(nb) + 1e-12)
	}
	var within, between float64
	nb := 0
	for c := 0; c < NumClasses; c++ {
		within += cos(&mean[c], &mean[c]) // == 1, reference
		for d := c + 1; d < NumClasses; d++ {
			between += cos(&mean[c], &mean[d])
			nb++
		}
	}
	between /= float64(nb)
	if between > 0.9 {
		t.Errorf("class means nearly identical (mean cross-cos %.3f)", between)
	}
}

func sqrt(x float64) float64 {
	if x <= 0 {
		return 0
	}
	z := x
	for i := 0; i < 40; i++ {
		z = (z + x/z) / 2
	}
	return z
}

// Fashion flavour must be harder: higher cross-class overlap than MNIST.
func TestFashionHarderThanMNIST(t *testing.T) {
	overlap := func(f Flavor) float64 {
		cfg := DefaultConfig(f)
		cfg.Train, cfg.Test = 200, 10
		train, _, _ := Generate(cfg)
		var mean [NumClasses][Pixels]float64
		counts := train.ClassCounts()
		for i, img := range train.Images {
			c := train.Labels[i]
			for p, v := range img {
				mean[c][p] += float64(v)
			}
		}
		var between float64
		nb := 0
		for c := 0; c < NumClasses; c++ {
			for p := range mean[c] {
				mean[c][p] /= float64(counts[c])
			}
		}
		for c := 0; c < NumClasses; c++ {
			for d := c + 1; d < NumClasses; d++ {
				var dot, na, nbn float64
				for p := 0; p < Pixels; p++ {
					dot += mean[c][p] * mean[d][p]
					na += mean[c][p] * mean[c][p]
					nbn += mean[d][p] * mean[d][p]
				}
				between += dot / (sqrt(na)*sqrt(nbn) + 1e-12)
				nb++
			}
		}
		return between / float64(nb)
	}
	if overlap(FashionLike) <= overlap(MNISTLike) {
		t.Error("fashion flavour should overlap more across classes than MNIST flavour")
	}
}

func TestSubset(t *testing.T) {
	train, _ := genSmall(t, MNISTLike)
	s := train.Subset(7)
	if s.Len() != 7 {
		t.Fatal("Subset wrong length")
	}
	if train.Subset(10_000).Len() != train.Len() {
		t.Fatal("oversized Subset must clamp")
	}
}

func TestShuffledIsPermutation(t *testing.T) {
	train, _ := genSmall(t, MNISTLike)
	sh := train.Shuffled(rng.New(5))
	if sh.Len() != train.Len() {
		t.Fatal("shuffle changed length")
	}
	// Same multiset of labels.
	a, b := train.ClassCounts(), sh.ClassCounts()
	if a != b {
		t.Fatal("shuffle changed label distribution")
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	d := &Dataset{Images: [][]byte{make([]byte, 3)}, Labels: []uint8{0}}
	if d.Validate() == nil {
		t.Fatal("wrong pixel count must fail")
	}
	d2 := &Dataset{Images: [][]byte{make([]byte, Pixels)}, Labels: []uint8{10}}
	if d2.Validate() == nil {
		t.Fatal("out-of-range label must fail")
	}
	d3 := &Dataset{Images: [][]byte{make([]byte, Pixels)}, Labels: []uint8{}}
	if d3.Validate() == nil {
		t.Fatal("count mismatch must fail")
	}
}

func TestIDXImageRoundtrip(t *testing.T) {
	train, _ := genSmall(t, MNISTLike)
	var buf bytes.Buffer
	if err := WriteIDXImages(&buf, train.Images); err != nil {
		t.Fatal(err)
	}
	back, err := ReadIDXImages(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != train.Len() {
		t.Fatal("image count changed")
	}
	for i := range back {
		if !bytes.Equal(back[i], train.Images[i]) {
			t.Fatalf("image %d corrupted", i)
		}
	}
}

func TestIDXLabelRoundtrip(t *testing.T) {
	labels := []uint8{0, 1, 2, 9, 5}
	var buf bytes.Buffer
	if err := WriteIDXLabels(&buf, labels); err != nil {
		t.Fatal(err)
	}
	back, err := ReadIDXLabels(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(labels) {
		t.Fatal("label count changed")
	}
	for i := range back {
		if back[i] != labels[i] {
			t.Fatal("labels corrupted")
		}
	}
}

func TestIDXRejectsBadMagic(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte{0, 0, 8, 1, 0, 0, 0, 0}) // label magic in image reader
	if _, err := ReadIDXImages(&buf); err == nil {
		t.Fatal("bad magic must error")
	}
	var buf2 bytes.Buffer
	buf2.Write([]byte{0, 0, 8, 3, 0, 0, 0, 0})
	if _, err := ReadIDXLabels(&buf2); err == nil {
		t.Fatal("bad magic must error")
	}
}

func TestIDXRejectsTruncated(t *testing.T) {
	var buf bytes.Buffer
	_ = WriteIDXImages(&buf, [][]byte{make([]byte, Pixels)})
	trunc := buf.Bytes()[:buf.Len()-10]
	if _, err := ReadIDXImages(bytes.NewReader(trunc)); err == nil {
		t.Fatal("truncated file must error")
	}
}

func TestIDXRejectsBadLabels(t *testing.T) {
	var buf bytes.Buffer
	_ = WriteIDXLabels(&buf, []uint8{99})
	if _, err := ReadIDXLabels(&buf); err == nil {
		t.Fatal("out-of-range label must error")
	}
}

func TestGenerateRejectsNegative(t *testing.T) {
	cfg := DefaultConfig(MNISTLike)
	cfg.Train = -1
	if _, _, err := Generate(cfg); err == nil {
		t.Fatal("negative count must error")
	}
}

func TestFlavorString(t *testing.T) {
	if MNISTLike.String() == FashionLike.String() {
		t.Fatal("flavour names must differ")
	}
}
