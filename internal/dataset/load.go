package dataset

import (
	"compress/gzip"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// Standard MNIST/Fashion-MNIST distribution filenames (the bases; each
// may also be present gzip-compressed with a ".gz" suffix).
var idxFiles = [4]string{
	"train-images-idx3-ubyte",
	"train-labels-idx1-ubyte",
	"t10k-images-idx3-ubyte",
	"t10k-labels-idx1-ubyte",
}

// publicName maps a flavor to the on-disk directory name LoadIDX probes
// (dir/mnist/, dir/fashion/) and to the loaded Dataset's name.
func publicName(f Flavor) string {
	if f == FashionLike {
		return "fashion"
	}
	return "mnist"
}

// LoadIDX loads a real MNIST-format dataset from dir, probing
// dir/<flavor>/ first and then dir itself for the four standard IDX
// files (plain or .gz). found is false — with no error — when none of
// the files exist, so callers can fall back to the synthetic generator;
// a partially present or malformed file set is an error, never a silent
// fallback.
func LoadIDX(dir string, flavor Flavor) (train, test *Dataset, found bool, err error) {
	name := publicName(flavor)
	for _, base := range []string{filepath.Join(dir, name), dir} {
		train, test, found, err = loadIDXDir(base, name)
		if found || err != nil {
			return train, test, found, err
		}
	}
	return nil, nil, false, nil
}

// loadIDXDir loads the four-file set rooted at base.
func loadIDXDir(base, name string) (train, test *Dataset, found bool, err error) {
	paths := make([]string, len(idxFiles))
	present := 0
	for i, f := range idxFiles {
		for _, p := range []string{filepath.Join(base, f), filepath.Join(base, f+".gz")} {
			if _, statErr := os.Stat(p); statErr == nil {
				paths[i] = p
				present++
				break
			}
		}
	}
	if present == 0 {
		return nil, nil, false, nil
	}
	if present < len(idxFiles) {
		for i, p := range paths {
			if p == "" {
				return nil, nil, false, fmt.Errorf("dataset: %s: missing %s (the IDX file set must be complete)", base, idxFiles[i])
			}
		}
	}
	if train, err = loadIDXPair(paths[0], paths[1], name+"-idx-train"); err != nil {
		return nil, nil, false, err
	}
	if test, err = loadIDXPair(paths[2], paths[3], name+"-idx-test"); err != nil {
		return nil, nil, false, err
	}
	return train, test, true, nil
}

// loadIDXPair reads one (images, labels) file pair into a validated
// Dataset.
func loadIDXPair(imgPath, lblPath, name string) (*Dataset, error) {
	var d Dataset
	d.Name = name
	if err := readIDXFile(imgPath, func(r io.Reader) error {
		images, err := ReadIDXImages(r)
		if err != nil {
			return err
		}
		d.Images = images
		return nil
	}); err != nil {
		return nil, err
	}
	if err := readIDXFile(lblPath, func(r io.Reader) error {
		labels, err := ReadIDXLabels(r)
		if err != nil {
			return err
		}
		d.Labels = labels
		return nil
	}); err != nil {
		return nil, err
	}
	if err := d.Validate(); err != nil {
		return nil, fmt.Errorf("dataset: %s + %s: %w", imgPath, lblPath, err)
	}
	return &d, nil
}

// readIDXFile opens path (transparently gunzipping a .gz suffix) and
// hands the reader to parse, annotating any failure with the path.
func readIDXFile(path string, parse func(io.Reader) error) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("dataset: %w", err)
	}
	defer f.Close()
	var r io.Reader = f
	if filepath.Ext(path) == ".gz" {
		gz, err := gzip.NewReader(f)
		if err != nil {
			return fmt.Errorf("dataset: %s: %w", path, err)
		}
		defer gz.Close()
		r = gz
	}
	if err := parse(r); err != nil {
		return fmt.Errorf("dataset: %s: %w", path, err)
	}
	return nil
}
