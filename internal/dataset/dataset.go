// Package dataset provides the image workloads of the SparkXD evaluation.
//
// The paper trains and tests on MNIST and Fashion-MNIST. Those files are
// not available in this offline environment, so the package provides
// deterministic synthetic substitutes with the same shape — 28x28
// grayscale images, 10 classes — generated from per-class stroke/patch
// prototypes plus structured noise (see DESIGN.md §2 for why this
// preserves the paper's accuracy *shapes*). A real IDX (ubyte) codec is
// also included, so genuine MNIST files can be dropped in unchanged.
//
// Two synthetic flavours mirror the difficulty gap the paper shows
// between its two datasets (MNIST accuracies ~88-92%, Fashion-MNIST
// ~54-62%): SyntheticMNIST uses well-separated stroke prototypes, while
// SyntheticFashion uses overlapping textured patches, which makes classes
// much harder to distinguish for an unsupervised STDP learner.
package dataset

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"sparkxd/internal/rng"
)

// Side is the image edge length; images are Side x Side pixels.
const Side = 28

// Pixels is the number of pixels per image (the SNN input size).
const Pixels = Side * Side

// NumClasses is the number of labels.
const NumClasses = 10

// Dataset is a labeled image collection.
type Dataset struct {
	Name   string
	Images [][]byte // each of length Pixels, values 0..255
	Labels []uint8  // each < NumClasses
}

// Len returns the number of samples.
func (d *Dataset) Len() int { return len(d.Images) }

// Validate checks structural invariants.
func (d *Dataset) Validate() error {
	if len(d.Images) != len(d.Labels) {
		return errors.New("dataset: image/label count mismatch")
	}
	for i, img := range d.Images {
		if len(img) != Pixels {
			return fmt.Errorf("dataset: image %d has %d pixels, want %d", i, len(img), Pixels)
		}
		if d.Labels[i] >= NumClasses {
			return fmt.Errorf("dataset: label %d out of range", d.Labels[i])
		}
	}
	return nil
}

// Subset returns the first n samples (or all if n exceeds the length).
func (d *Dataset) Subset(n int) *Dataset {
	if n > d.Len() {
		n = d.Len()
	}
	return &Dataset{Name: d.Name, Images: d.Images[:n], Labels: d.Labels[:n]}
}

// Shuffled returns a new dataset with deterministically permuted order.
func (d *Dataset) Shuffled(r *rng.Stream) *Dataset {
	perm := r.Perm(d.Len())
	out := &Dataset{Name: d.Name,
		Images: make([][]byte, d.Len()),
		Labels: make([]uint8, d.Len())}
	for i, p := range perm {
		out.Images[i] = d.Images[p]
		out.Labels[i] = d.Labels[p]
	}
	return out
}

// ClassCounts returns the per-class sample counts.
func (d *Dataset) ClassCounts() [NumClasses]int {
	var c [NumClasses]int
	for _, l := range d.Labels {
		c[l]++
	}
	return c
}

// Flavor selects a synthetic dataset family.
type Flavor uint8

const (
	// MNISTLike generates well-separated stroke digits.
	MNISTLike Flavor = iota
	// FashionLike generates overlapping textured garment-like patches.
	FashionLike
)

// String names the flavour.
func (f Flavor) String() string {
	if f == FashionLike {
		return "fashion-mnist-synthetic"
	}
	return "mnist-synthetic"
}

// prototypes builds the ten class templates for a flavour. Templates are
// float intensities in [0,1] that sample generation perturbs.
func prototypes(f Flavor, r *rng.Stream) [NumClasses][]float32 {
	var protos [NumClasses][]float32
	for c := 0; c < NumClasses; c++ {
		p := make([]float32, Pixels)
		cr := r.DeriveIndex("class", c)
		switch f {
		case MNISTLike:
			drawStrokes(p, cr, 3+c%3)
		case FashionLike:
			drawPatches(p, cr, 2+c%2)
		}
		protos[c] = p
	}
	return protos
}

// drawStrokes paints nStrokes random-walk strokes with a soft brush.
func drawStrokes(p []float32, r *rng.Stream, nStrokes int) {
	for s := 0; s < nStrokes; s++ {
		x := float64(4 + r.Intn(Side-8))
		y := float64(4 + r.Intn(Side-8))
		dx := r.Normal(0, 1)
		dy := r.Normal(0, 1)
		steps := 10 + r.Intn(12)
		for i := 0; i < steps; i++ {
			stamp(p, x, y, 1.2, 1.0)
			dx += r.Normal(0, 0.4)
			dy += r.Normal(0, 0.4)
			n := math.Hypot(dx, dy)
			if n < 1e-9 {
				n = 1
			}
			x += dx / n * 1.3
			y += dy / n * 1.3
			if x < 2 || x > Side-3 || y < 2 || y > Side-3 {
				break
			}
		}
	}
}

// drawPatches paints overlapping rectangles with interior texture,
// producing garment-silhouette-like prototypes that share much of their
// support across classes (the source of Fashion-MNIST's difficulty):
// every class occupies a large centered body patch, and only silhouette
// proportions and stripe texture distinguish classes.
func drawPatches(p []float32, r *rng.Stream, nPatches int) {
	// Shared centered body: identical across classes (the overlap source).
	for y := 6; y < 24; y++ {
		for x := 8; x < 20; x++ {
			p[y*Side+x] = 0.40
		}
	}
	for s := 0; s < nPatches; s++ {
		// Class-distinctive patches: position and proportions vary widely
		// by class (sleeves, straps, legs), with strong stripe texture.
		x0 := 2 + r.Intn(14)
		y0 := 2 + r.Intn(12)
		w := 5 + r.Intn(14)
		h := 5 + r.Intn(14)
		period := 2 + r.Intn(3)
		phase := r.Intn(period)
		horizontal := r.Bernoulli(0.5)
		for y := y0; y < y0+h && y < Side; y++ {
			for x := x0; x < x0+w && x < Side; x++ {
				v := float32(0.30)
				stripe := x + phase
				if horizontal {
					stripe = y + phase
				}
				if stripe%period == 0 {
					v = 1.0 // texture stripes distinguish classes
				}
				idx := y*Side + x
				if v > p[idx] {
					p[idx] = v
				}
			}
		}
	}
}

// stamp adds a soft gaussian dot of the given radius and peak intensity.
func stamp(p []float32, cx, cy, radius float64, peak float32) {
	r2 := radius * radius
	lo := func(v float64) int {
		i := int(v - radius - 1)
		if i < 0 {
			i = 0
		}
		return i
	}
	hiX := int(cx + radius + 1)
	if hiX > Side-1 {
		hiX = Side - 1
	}
	hiY := int(cy + radius + 1)
	if hiY > Side-1 {
		hiY = Side - 1
	}
	for y := lo(cy); y <= hiY; y++ {
		for x := lo(cx); x <= hiX; x++ {
			d2 := (float64(x)-cx)*(float64(x)-cx) + (float64(y)-cy)*(float64(y)-cy)
			if d2 > 4*r2 {
				continue
			}
			v := peak * float32(math.Exp(-d2/r2))
			idx := y*Side + x
			if v > p[idx] {
				p[idx] = v
			}
		}
	}
}

// Config controls synthetic dataset generation.
type Config struct {
	Flavor Flavor
	// Train and Test are the sample counts to generate.
	Train, Test int
	// NoiseStd is the additive gaussian pixel noise (0..1 scale).
	NoiseStd float64
	// MaxShift is the maximum absolute translation jitter in pixels.
	MaxShift int
	// BrightnessJitter scales sample intensity by 1 +- U(-j, +j).
	BrightnessJitter float64
	// Seed fixes the generator.
	Seed uint64
}

// DefaultConfig returns the generation settings used by the experiments.
// Noise and jitter are set so that the unsupervised SNN lands in the
// paper's accuracy regimes (high-80s/low-90s for the MNIST flavour,
// mid-50s/low-60s for the Fashion flavour) rather than saturating.
func DefaultConfig(f Flavor) Config {
	cfg := Config{
		Flavor:           f,
		Train:            512,
		Test:             256,
		NoiseStd:         0.30,
		MaxShift:         2,
		BrightnessJitter: 0.25,
		Seed:             2021, // the paper's year; any constant works
	}
	if f == FashionLike {
		// Stripe textures are phase-sensitive: translation jitter would
		// wash them out entirely, so fashion difficulty comes from the
		// shared silhouette and pixel noise instead.
		cfg.NoiseStd = 0.28
		cfg.MaxShift = 0
	}
	return cfg
}

// Generate builds the train and test splits for a config.
func Generate(cfg Config) (train, test *Dataset, err error) {
	if cfg.Train < 0 || cfg.Test < 0 {
		return nil, nil, errors.New("dataset: negative sample count")
	}
	root := rng.New(cfg.Seed).Derive(cfg.Flavor.String())
	protos := prototypes(cfg.Flavor, root.Derive("prototypes"))

	gen := func(name string, n int, r *rng.Stream) *Dataset {
		d := &Dataset{Name: name,
			Images: make([][]byte, n),
			Labels: make([]uint8, n)}
		for i := 0; i < n; i++ {
			c := i % NumClasses // balanced classes
			d.Labels[i] = uint8(c)
			d.Images[i] = sample(protos[c], cfg, r)
		}
		return d.Shuffled(r.Derive("order"))
	}
	train = gen(cfg.Flavor.String()+"-train", cfg.Train, root.Derive("train"))
	test = gen(cfg.Flavor.String()+"-test", cfg.Test, root.Derive("test"))
	return train, test, nil
}

// sample renders one image from a prototype with jitter and noise.
func sample(proto []float32, cfg Config, r *rng.Stream) []byte {
	img := make([]byte, Pixels)
	dx, dy := 0, 0
	if cfg.MaxShift > 0 {
		dx = r.Intn(2*cfg.MaxShift+1) - cfg.MaxShift
		dy = r.Intn(2*cfg.MaxShift+1) - cfg.MaxShift
	}
	bright := 1.0
	if cfg.BrightnessJitter > 0 {
		bright = 1 + (2*r.Float64()-1)*cfg.BrightnessJitter
	}
	for y := 0; y < Side; y++ {
		for x := 0; x < Side; x++ {
			sx, sy := x-dx, y-dy
			var v float64
			if sx >= 0 && sx < Side && sy >= 0 && sy < Side {
				v = float64(proto[sy*Side+sx]) * bright
			}
			v += r.Normal(0, cfg.NoiseStd)
			if v < 0 {
				v = 0
			}
			if v > 1 {
				v = 1
			}
			img[y*Side+x] = byte(v * 255)
		}
	}
	return img
}

// --- IDX (ubyte) codec: the real MNIST file format -----------------------

const (
	idxMagicImages = 0x00000803 // 3 dimensions, ubyte
	idxMagicLabels = 0x00000801 // 1 dimension, ubyte
)

// WriteIDXImages writes images in idx3-ubyte format.
func WriteIDXImages(w io.Writer, images [][]byte) error {
	hdr := [4]uint32{idxMagicImages, uint32(len(images)), Side, Side}
	for _, v := range hdr {
		if err := binary.Write(w, binary.BigEndian, v); err != nil {
			return err
		}
	}
	for i, img := range images {
		if len(img) != Pixels {
			return fmt.Errorf("dataset: image %d wrong size", i)
		}
		if _, err := w.Write(img); err != nil {
			return err
		}
	}
	return nil
}

// WriteIDXLabels writes labels in idx1-ubyte format.
func WriteIDXLabels(w io.Writer, labels []uint8) error {
	hdr := [2]uint32{idxMagicLabels, uint32(len(labels))}
	for _, v := range hdr {
		if err := binary.Write(w, binary.BigEndian, v); err != nil {
			return err
		}
	}
	_, err := w.Write(labels)
	return err
}

// ReadIDXImages parses an idx3-ubyte image file.
func ReadIDXImages(r io.Reader) ([][]byte, error) {
	var hdr [4]uint32
	for i := range hdr {
		if err := binary.Read(r, binary.BigEndian, &hdr[i]); err != nil {
			return nil, err
		}
	}
	if hdr[0] != idxMagicImages {
		return nil, fmt.Errorf("dataset: bad image magic %#x", hdr[0])
	}
	n, rows, cols := int(hdr[1]), int(hdr[2]), int(hdr[3])
	if rows != Side || cols != Side {
		return nil, fmt.Errorf("dataset: unsupported image size %dx%d", rows, cols)
	}
	images := make([][]byte, n)
	for i := range images {
		img := make([]byte, Pixels)
		if _, err := io.ReadFull(r, img); err != nil {
			return nil, fmt.Errorf("dataset: truncated image %d: %w", i, err)
		}
		images[i] = img
	}
	return images, nil
}

// ReadIDXLabels parses an idx1-ubyte label file.
func ReadIDXLabels(r io.Reader) ([]uint8, error) {
	var hdr [2]uint32
	for i := range hdr {
		if err := binary.Read(r, binary.BigEndian, &hdr[i]); err != nil {
			return nil, err
		}
	}
	if hdr[0] != idxMagicLabels {
		return nil, fmt.Errorf("dataset: bad label magic %#x", hdr[0])
	}
	labels := make([]uint8, hdr[1])
	if _, err := io.ReadFull(r, labels); err != nil {
		return nil, fmt.Errorf("dataset: truncated labels: %w", err)
	}
	for i, l := range labels {
		if l >= NumClasses {
			return nil, fmt.Errorf("dataset: label %d out of range at %d", l, i)
		}
	}
	return labels, nil
}
