package coding

import (
	"math"
	"testing"

	"sparkxd/internal/rng"
)

func grad() []byte {
	img := make([]byte, 784)
	for i := range img {
		img[i] = byte(i % 256)
	}
	return img
}

func allEncoders() []Encoder {
	return []Encoder{
		NewRate(),
		NewDeterministicRate(),
		TTFS{Threshold: 10},
		NewRankOrder(),
		Phase{},
		NewBurst(),
	}
}

func TestAllEncodersBasicContract(t *testing.T) {
	img := grad()
	for _, e := range allEncoders() {
		tr := e.Encode(img, 50, rng.New(1))
		if tr.Steps() != 50 {
			t.Errorf("%s: steps = %d, want 50", e.Name(), tr.Steps())
		}
		if tr.TotalSpikes() == 0 {
			t.Errorf("%s: no spikes for a bright image", e.Name())
		}
		for ti, s := range tr {
			for _, idx := range s {
				if idx < 0 || int(idx) >= len(img) {
					t.Fatalf("%s: step %d has out-of-range index %d", e.Name(), ti, idx)
				}
			}
		}
		if len(e.Name()) == 0 {
			t.Errorf("encoder with empty name")
		}
	}
}

func TestAllEncodersSilentOnBlackImage(t *testing.T) {
	img := make([]byte, 784)
	for _, e := range allEncoders() {
		if n := e.Encode(img, 30, rng.New(1)).TotalSpikes(); n != 0 {
			t.Errorf("%s: black image produced %d spikes", e.Name(), n)
		}
	}
}

func TestRateMatchesExpectedCount(t *testing.T) {
	e := NewRate()
	img := make([]byte, 100)
	for i := range img {
		img[i] = 255
	}
	const steps = 400
	tr := e.Encode(img, steps, rng.New(7))
	got := float64(tr.TotalSpikes())
	want := float64(len(img)) * float64(steps) * e.MaxProb
	if math.Abs(got-want)/want > 0.1 {
		t.Errorf("rate spike count = %v, want ~%v", got, want)
	}
}

func TestRateIntensityProportional(t *testing.T) {
	e := NewRate()
	img := make([]byte, 200)
	for i := 0; i < 100; i++ {
		img[i] = 255 // bright half
	}
	for i := 100; i < 200; i++ {
		img[i] = 64 // dim half
	}
	tr := e.Encode(img, 500, rng.New(3))
	var bright, dim int
	for _, s := range tr {
		for _, idx := range s {
			if idx < 100 {
				bright++
			} else {
				dim++
			}
		}
	}
	ratio := float64(bright) / float64(dim+1)
	if ratio < 2.5 || ratio > 6.5 {
		t.Errorf("bright/dim spike ratio = %v, want ~4 (255/64)", ratio)
	}
}

func TestRateDeterministicInSeed(t *testing.T) {
	e := NewRate()
	img := grad()
	a := e.Encode(img, 40, rng.New(42))
	b := e.Encode(img, 40, rng.New(42))
	if a.TotalSpikes() != b.TotalSpikes() {
		t.Fatal("same seed must give identical trains")
	}
	for t2 := range a {
		if len(a[t2]) != len(b[t2]) {
			t.Fatal("same seed must give identical trains")
		}
		for i := range a[t2] {
			if a[t2][i] != b[t2][i] {
				t.Fatal("same seed must give identical trains")
			}
		}
	}
}

func TestTTFSSingleSpikePerPixel(t *testing.T) {
	e := TTFS{Threshold: 10}
	img := grad()
	tr := e.Encode(img, 60, nil)
	count := map[int32]int{}
	for _, s := range tr {
		for _, idx := range s {
			count[idx]++
		}
	}
	for idx, n := range count {
		if n != 1 {
			t.Fatalf("pixel %d spiked %d times, want 1", idx, n)
		}
	}
	// Brighter pixels must fire earlier.
	first := func(idx int32) int {
		for t2, s := range tr {
			for _, i := range s {
				if i == idx {
					return t2
				}
			}
		}
		return -1
	}
	if f255, f100 := first(255), first(100); f255 >= 0 && f100 >= 0 && f255 > f100 {
		t.Error("brighter pixel must not fire later than dimmer pixel")
	}
}

func TestTTFSRespectsThreshold(t *testing.T) {
	e := TTFS{Threshold: 100}
	img := make([]byte, 10)
	img[0] = 99
	img[1] = 101
	tr := e.Encode(img, 20, nil)
	if tr.TotalSpikes() != 1 {
		t.Fatalf("want exactly 1 spike (above threshold), got %d", tr.TotalSpikes())
	}
}

func TestRankOrderBrightestFirst(t *testing.T) {
	e := RankOrder{PerStep: 1, Fraction: 1}
	img := make([]byte, 5)
	img[2] = 200
	img[4] = 100
	img[0] = 50
	tr := e.Encode(img, 10, nil)
	if len(tr[0]) != 1 || tr[0][0] != 2 {
		t.Fatalf("step 0 = %v, want [2]", tr[0])
	}
	if len(tr[1]) != 1 || tr[1][0] != 4 {
		t.Fatalf("step 1 = %v, want [4]", tr[1])
	}
	if len(tr[2]) != 1 || tr[2][0] != 0 {
		t.Fatalf("step 2 = %v, want [0]", tr[2])
	}
}

func TestRankOrderFraction(t *testing.T) {
	e := RankOrder{PerStep: 100, Fraction: 0.5}
	img := make([]byte, 100)
	for i := range img {
		img[i] = byte(i + 1)
	}
	tr := e.Encode(img, 10, nil)
	if tr.TotalSpikes() != 50 {
		t.Fatalf("fraction 0.5 of 100 pixels should fire 50 spikes, got %d", tr.TotalSpikes())
	}
}

func TestPhaseMSBFirst(t *testing.T) {
	e := Phase{}
	img := []byte{0x80, 0x01} // pixel 0 has only MSB, pixel 1 only LSB
	tr := e.Encode(img, 8, nil)
	if len(tr[0]) != 1 || tr[0][0] != 0 {
		t.Fatalf("step 0 should carry the MSB pixel, got %v", tr[0])
	}
	if len(tr[7]) != 1 || tr[7][0] != 1 {
		t.Fatalf("step 7 should carry the LSB pixel, got %v", tr[7])
	}
}

func TestPhasePeriodicity(t *testing.T) {
	e := Phase{}
	img := []byte{0xff}
	tr := e.Encode(img, 16, nil)
	if tr.TotalSpikes() != 16 {
		t.Fatalf("saturated pixel should spike every step, got %d/16", tr.TotalSpikes())
	}
}

func TestBurstLengthProportional(t *testing.T) {
	e := NewBurst()
	bright := []byte{255}
	dim := []byte{64}
	nb := e.Encode(bright, 30, nil).TotalSpikes()
	nd := e.Encode(dim, 30, nil).TotalSpikes()
	if nb != e.MaxBurst {
		t.Fatalf("saturated burst = %d, want %d", nb, e.MaxBurst)
	}
	if nd >= nb {
		t.Fatal("dim pixel must burst shorter")
	}
}

func TestBurstContiguous(t *testing.T) {
	e := NewBurst()
	tr := e.Encode([]byte{255}, 30, nil)
	first, last, n := -1, -1, 0
	for t2, s := range tr {
		if len(s) > 0 {
			if first == -1 {
				first = t2
			}
			last = t2
			n += len(s)
		}
	}
	if n == 0 || last-first+1 != n {
		t.Fatalf("burst not contiguous: first=%d last=%d n=%d", first, last, n)
	}
}

func TestDeterministicRateEvenSpacing(t *testing.T) {
	e := NewDeterministicRate()
	tr := e.Encode([]byte{255}, 100, nil)
	var times []int
	for t2, s := range tr {
		if len(s) > 0 {
			times = append(times, t2)
		}
	}
	if len(times) < 5 {
		t.Fatalf("expected >= 5 spikes, got %d", len(times))
	}
	// Gaps should be nearly equal.
	for i := 2; i < len(times); i++ {
		g1 := times[i] - times[i-1]
		g0 := times[i-1] - times[i-2]
		if g1 < g0-2 || g1 > g0+2 {
			t.Fatalf("uneven spacing: %v", times)
		}
	}
}

func TestTrainHelpers(t *testing.T) {
	tr := Train{{1, 2}, {}, {3}}
	if tr.Steps() != 3 || tr.TotalSpikes() != 3 {
		t.Fatal("Train helpers wrong")
	}
}
