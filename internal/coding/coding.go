// Package coding converts images into spike trains. The paper's
// experiments use rate coding with Poisson-distributed spikes (Sec. V);
// the other encoders implement the alternative schemes the paper's
// background section cites (rank-order, phase, burst, time-to-first-spike)
// so that the SNN substrate covers the design space the paper surveys.
//
// A spike train is represented sparsely: for each timestep, the slice of
// input indices that spike at that step. This is the natural input for an
// event-driven LIF simulation.
package coding

import (
	"fmt"
	"sort"

	"sparkxd/internal/rng"
)

// Train is a spike train: Train[t] lists the input indices spiking at
// timestep t.
type Train [][]int32

// Steps returns the number of timesteps.
func (tr Train) Steps() int { return len(tr) }

// TotalSpikes returns the number of spikes over all steps.
func (tr Train) TotalSpikes() int {
	n := 0
	for _, s := range tr {
		n += len(s)
	}
	return n
}

// Encoder converts one image (byte intensities, 0..255) into a spike
// train of the given number of steps. Encoders must be deterministic in
// (image, steps, r).
type Encoder interface {
	Encode(img []byte, steps int, r *rng.Stream) Train
	Name() string
}

// Rate is the Poisson rate coder used by the paper: each pixel spikes
// each timestep with probability intensity/255 * MaxProb, independently.
type Rate struct {
	// MaxProb is the per-step spike probability of a saturated pixel.
	// 0.12 with 1 ms steps corresponds to a 120 Hz peak rate.
	MaxProb float64
}

// NewRate returns the paper-default Poisson rate coder.
func NewRate() Rate { return Rate{MaxProb: 0.12} }

// Name implements Encoder.
func (e Rate) Name() string { return fmt.Sprintf("rate-poisson(p=%.3g)", e.MaxProb) }

// Encode implements Encoder.
//
// Spikes are accumulated into one flat arena with per-step offsets
// instead of one growing slice per step: the same Bernoulli draws in the
// same order produce the same train, but a 60-step encode performs a
// handful of allocations instead of hundreds — encoding runs once per
// sample per evaluation, so this is directly on the sweep hot path.
func (e Rate) Encode(img []byte, steps int, r *rng.Stream) Train {
	tr := make(Train, steps)
	// Precompute per-pixel probabilities; skip dark pixels entirely.
	type hot struct {
		idx int32
		p   float64
	}
	hots := make([]hot, 0, len(img)/4)
	expected := 0.0
	for i, v := range img {
		if v == 0 {
			continue
		}
		p := float64(v) / 255 * e.MaxProb
		hots = append(hots, hot{int32(i), p})
		expected += p
	}
	offs := make([]int, steps+1)
	arena := make([]int32, 0, int(expected*float64(steps))+16)
	for t := 0; t < steps; t++ {
		for _, h := range hots {
			if r.Bernoulli(h.p) {
				arena = append(arena, h.idx)
			}
		}
		offs[t+1] = len(arena)
	}
	for t := 0; t < steps; t++ {
		if offs[t] == offs[t+1] {
			continue // empty steps stay nil, as in the per-step form
		}
		tr[t] = arena[offs[t]:offs[t+1]:offs[t+1]]
	}
	return tr
}

// DeterministicRate spikes each pixel at evenly spaced intervals
// proportional to its intensity — rate coding without Poisson noise,
// useful for reproducible unit tests and ablations.
type DeterministicRate struct {
	MaxPerSteps float64 // spikes per `steps` for a saturated pixel, as fraction
}

// NewDeterministicRate mirrors NewRate's peak rate.
func NewDeterministicRate() DeterministicRate { return DeterministicRate{MaxPerSteps: 0.12} }

// Name implements Encoder.
func (e DeterministicRate) Name() string { return "rate-deterministic" }

// Encode implements Encoder.
func (e DeterministicRate) Encode(img []byte, steps int, _ *rng.Stream) Train {
	tr := make(Train, steps)
	for i, v := range img {
		if v == 0 {
			continue
		}
		count := float64(v) / 255 * e.MaxPerSteps * float64(steps)
		n := int(count)
		if n == 0 {
			continue
		}
		stride := float64(steps) / float64(n)
		for k := 0; k < n; k++ {
			t := int(float64(k)*stride + stride/2)
			if t < steps {
				tr[t] = append(tr[t], int32(i))
			}
		}
	}
	return tr
}

// TTFS is time-to-first-spike coding: each pixel spikes exactly once, at
// a latency inversely proportional to its intensity; dark pixels do not
// spike at all.
type TTFS struct {
	// Threshold is the minimum intensity that produces a spike.
	Threshold byte
}

// Name implements Encoder.
func (e TTFS) Name() string { return "time-to-first-spike" }

// Encode implements Encoder.
func (e TTFS) Encode(img []byte, steps int, _ *rng.Stream) Train {
	tr := make(Train, steps)
	for i, v := range img {
		if v <= e.Threshold {
			continue
		}
		// intensity 255 -> step 0; intensity just above threshold -> last step.
		frac := 1 - float64(v-e.Threshold)/float64(255-int(e.Threshold))
		t := int(frac * float64(steps-1))
		tr[t] = append(tr[t], int32(i))
	}
	return tr
}

// RankOrder emits one spike per pixel in descending intensity order, K
// pixels per timestep, stopping after the brightest fraction has fired —
// the rank-order coding of Thorpe & Gautrais.
type RankOrder struct {
	// PerStep is how many pixels fire per timestep.
	PerStep int
	// Fraction is the brightest fraction of nonzero pixels that fires.
	Fraction float64
}

// NewRankOrder returns a rank-order coder firing the top 50% of pixels,
// 8 per step.
func NewRankOrder() RankOrder { return RankOrder{PerStep: 8, Fraction: 0.5} }

// Name implements Encoder.
func (e RankOrder) Name() string { return "rank-order" }

// Encode implements Encoder.
func (e RankOrder) Encode(img []byte, steps int, _ *rng.Stream) Train {
	type pix struct {
		idx int32
		v   byte
	}
	px := make([]pix, 0, len(img))
	for i, v := range img {
		if v > 0 {
			px = append(px, pix{int32(i), v})
		}
	}
	sort.Slice(px, func(a, b int) bool {
		if px[a].v != px[b].v {
			return px[a].v > px[b].v
		}
		return px[a].idx < px[b].idx // stable rank for equal intensities
	})
	n := int(float64(len(px)) * e.Fraction)
	tr := make(Train, steps)
	per := e.PerStep
	if per <= 0 {
		per = 1
	}
	for k := 0; k < n; k++ {
		t := k / per
		if t >= steps {
			break
		}
		tr[t] = append(tr[t], px[k].idx)
	}
	return tr
}

// Phase encodes the 8-bit intensity over repeating 8-step phases: at
// phase b the pixel spikes if bit (7-b) of its intensity is set, so early
// phases carry the most significant information (Kim et al. style).
type Phase struct{}

// Name implements Encoder.
func (Phase) Name() string { return "phase" }

// Encode implements Encoder.
func (Phase) Encode(img []byte, steps int, _ *rng.Stream) Train {
	tr := make(Train, steps)
	for t := 0; t < steps; t++ {
		bit := uint(7 - t%8)
		var s []int32
		for i, v := range img {
			if v&(1<<bit) != 0 {
				s = append(s, int32(i))
			}
		}
		tr[t] = s
	}
	return tr
}

// Burst emits a contiguous burst of spikes per pixel whose length is
// proportional to intensity (Park et al., DAC 2019).
type Burst struct {
	// MaxBurst is the burst length of a saturated pixel.
	MaxBurst int
}

// NewBurst returns a burst coder with bursts up to 5 spikes.
func NewBurst() Burst { return Burst{MaxBurst: 5} }

// Name implements Encoder.
func (e Burst) Name() string { return "burst" }

// Encode implements Encoder.
func (e Burst) Encode(img []byte, steps int, _ *rng.Stream) Train {
	tr := make(Train, steps)
	for i, v := range img {
		if v == 0 {
			continue
		}
		n := int(float64(v)/255*float64(e.MaxBurst) + 0.5)
		if n == 0 {
			continue
		}
		// Burst starts earlier for brighter pixels.
		start := int((1 - float64(v)/255) * float64(steps-n))
		for k := 0; k < n && start+k < steps; k++ {
			tr[start+k] = append(tr[start+k], int32(i))
		}
	}
	return tr
}
