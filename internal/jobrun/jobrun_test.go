package jobrun

import (
	"bytes"
	"context"
	"testing"
	"time"

	"sparkxd"
	"sparkxd/internal/store"
)

// tinyConfig is a laptop-fast configuration for tests that build real
// engines; distinct seeds produce distinct fingerprints.
func tinyConfig(seed uint64) sparkxd.ConfigSpec {
	return sparkxd.ConfigSpec{
		Neurons:      20,
		TrainSamples: 20,
		TestSamples:  10,
		BaseEpochs:   1,
		BERSchedule:  []float64{1e-5},
		Seed:         seed,
	}
}

func mustAcquire(t *testing.T, c *Systems, fp string, cfg sparkxd.ConfigSpec) (*sparkxd.System, func()) {
	t.Helper()
	sys, _, release, err := c.Acquire(fp, cfg)
	if err != nil {
		t.Fatalf("Acquire(%s): %v", fp, err)
	}
	return sys, release
}

func assertStats(t *testing.T, c *Systems, hits, misses, evictions uint64) {
	t.Helper()
	h, m, e := c.Stats()
	if h != hits || m != misses || e != evictions {
		t.Fatalf("stats = (hits=%d misses=%d evictions=%d), want (%d %d %d)", h, m, e, hits, misses, evictions)
	}
}

// TestLRUEvictionOrder pins the eviction policy: least recently
// acquired goes first, and a hit refreshes recency.
func TestLRUEvictionOrder(t *testing.T) {
	c := NewSystems(1, 2, nil)
	cfg := tinyConfig(1)

	_, relA := mustAcquire(t, c, "A", cfg)
	relA()
	_, relB := mustAcquire(t, c, "B", cfg)
	relB()
	assertStats(t, c, 0, 2, 0)

	// Touch A so B becomes the LRU entry.
	_, relA = mustAcquire(t, c, "A", cfg)
	relA()
	assertStats(t, c, 1, 2, 0)

	// A third fingerprint evicts B (the LRU), not A.
	_, relC := mustAcquire(t, c, "C", cfg)
	relC()
	assertStats(t, c, 1, 3, 1)
	if n := c.Len(); n != 2 {
		t.Fatalf("Len = %d, want 2", n)
	}

	// A is still warm (hit); B was evicted (miss + another eviction).
	_, relA = mustAcquire(t, c, "A", cfg)
	relA()
	assertStats(t, c, 2, 3, 1)
	_, relB = mustAcquire(t, c, "B", cfg)
	relB()
	assertStats(t, c, 2, 4, 2)
}

// TestPinnedEntriesSurviveEviction pins the pin-while-running contract:
// an entry with a live Acquire is never evicted even when the cache is
// over its bound; the bound is restored on release.
func TestPinnedEntriesSurviveEviction(t *testing.T) {
	c := NewSystems(1, 1, nil)
	cfg := tinyConfig(1)

	sysA, relA := mustAcquire(t, c, "A", cfg)
	// B arrives while A is pinned: the cache exceeds its bound rather
	// than dropping either in-use engine.
	_, relB := mustAcquire(t, c, "B", cfg)
	if n := c.Len(); n != 2 {
		t.Fatalf("Len with pinned overflow = %d, want 2", n)
	}
	assertStats(t, c, 0, 2, 0)

	// A must still be the same engine while pinned.
	sysA2, relA2 := mustAcquire(t, c, "A", cfg)
	if sysA2 != sysA {
		t.Fatal("pinned entry was replaced while held")
	}
	relA2()

	// Unpinning B lets the bound reassert itself: B (the only unpinned
	// entry) is evicted; still-pinned A survives.
	relB()
	if n := c.Len(); n != 1 {
		t.Fatalf("Len after releasing B = %d, want 1", n)
	}
	_, _, evictions := c.Stats()
	if evictions != 1 {
		t.Fatalf("evictions = %d, want 1", evictions)
	}
	sysA3, relA3 := mustAcquire(t, c, "A", cfg)
	if sysA3 != sysA {
		t.Fatal("A was evicted while pinned")
	}
	relA3()
	relA()
	// Double release is a no-op (pins never go negative, no spurious
	// eviction of a later pin's entry).
	relA()
	if n := c.Len(); n != 1 {
		t.Fatalf("Len after double release = %d, want 1", n)
	}
}

// TestEvictedFingerprintRebuildsIdentically is the safety property that
// makes eviction legal at all: rebuilding an evicted fingerprint from
// its ConfigSpec yields a System whose artifacts are byte-identical to
// the first build's.
func TestEvictedFingerprintRebuildsIdentically(t *testing.T) {
	c := NewSystems(1, 1, nil)
	cfg := tinyConfig(7)
	spec := sparkxd.JobSpec{Kind: sparkxd.JobPipeline, Config: cfg, Stage: "train"}
	spec, err := spec.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	fp, err := cfg.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}

	produce := func() map[string][]byte {
		sys, _, release, err := c.Acquire(fp, spec.Config)
		if err != nil {
			t.Fatalf("Acquire: %v", err)
		}
		defer release()
		out, err := Produce(context.Background(), sys, spec, nil)
		if err != nil {
			t.Fatalf("Produce: %v", err)
		}
		enc := make(map[string][]byte, len(out))
		for role, v := range out {
			_, b, err := store.Encode(role, v)
			if err != nil {
				t.Fatalf("Encode(%s): %v", role, err)
			}
			enc[role] = b
		}
		return enc
	}

	first := produce()
	// Force the entry out with a different fingerprint, then rebuild.
	_, relOther := mustAcquire(t, c, "other", tinyConfig(8))
	relOther()
	_, _, evictions := c.Stats()
	if evictions == 0 {
		t.Fatal("expected the first fingerprint to be evicted")
	}

	second := produce()
	if len(first) == 0 || len(first) != len(second) {
		t.Fatalf("artifact sets differ: %d vs %d", len(first), len(second))
	}
	for role, b := range first {
		if !bytes.Equal(b, second[role]) {
			t.Fatalf("artifact %q differs between original and rebuilt System", role)
		}
	}
}

// TestUnboundedKeepsEverything pins the default (-max-warm-systems 0)
// behavior: no evictions, ever.
func TestUnboundedKeepsEverything(t *testing.T) {
	c := NewSystems(1, 0, nil)
	cfg := tinyConfig(1)
	for _, fp := range []string{"A", "B", "C", "D"} {
		_, rel := mustAcquire(t, c, fp, cfg)
		rel()
	}
	if n := c.Len(); n != 4 {
		t.Fatalf("Len = %d, want 4", n)
	}
	assertStats(t, c, 0, 4, 0)
}

// TestProduceStageObserver checks the per-stage timing callback fires
// once per executed stage, in order.
func TestProduceStageObserver(t *testing.T) {
	c := NewSystems(1, 0, nil)
	cfg := tinyConfig(3)
	spec := sparkxd.JobSpec{Kind: sparkxd.JobPipeline, Config: cfg, Stage: "improve"}
	spec, err := spec.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	fp, err := cfg.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	sys, _, release, err := c.Acquire(fp, spec.Config)
	if err != nil {
		t.Fatal(err)
	}
	defer release()

	var stages []string
	observe := func(stage string, d time.Duration) {
		if d < 0 {
			t.Fatalf("negative duration for %s", stage)
		}
		stages = append(stages, stage)
	}
	if _, err := Produce(context.Background(), sys, spec, observe); err != nil {
		t.Fatal(err)
	}
	want := []string{"train", "improve"}
	if len(stages) != len(want) {
		t.Fatalf("observed stages %v, want %v", stages, want)
	}
	for i := range want {
		if stages[i] != want[i] {
			t.Fatalf("observed stages %v, want %v", stages, want)
		}
	}
}
