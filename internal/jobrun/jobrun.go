// Package jobrun executes one job-service JobSpec against a warm
// sparkxd.System and returns the produced artifacts by role. It is the
// single execution path shared by the coordinator's local dispatcher
// (internal/server) and the fleet worker (internal/worker), so a job
// produces byte-identical artifacts no matter which process ran it —
// the property that makes lease requeue after a worker crash safe.
package jobrun

import (
	"context"
	"fmt"
	"sync"
	"time"

	"sparkxd"
)

// Systems is the fingerprint-keyed cache of warm engines both executors
// share: jobs whose ConfigSpecs hash to the same fingerprint run
// against one lazily-built *sparkxd.System, so datasets, device
// profiles, and sweep caches are derived once per configuration per
// process. The observer receives every engine event tagged with the
// owning fingerprint (for per-job fanout).
//
// The cache is optionally bounded: with MaxWarm > 0 it keeps at most
// that many engines, evicting the least-recently-acquired unpinned one
// when a new fingerprint arrives. Entries are pinned while a job runs
// on them (Acquire pins, the returned release unpins), so an engine is
// never dropped out from under live execution — when every entry is
// pinned the cache temporarily exceeds its bound rather than stalling.
// Eviction is safe by construction: a re-acquired fingerprint rebuilds
// the System from the same ConfigSpec, and because construction is
// deterministic in the spec, the rebuilt engine produces byte-identical
// artifacts (pinned by TestEvictedFingerprintRebuildsIdentically).
type Systems struct {
	workers  int
	maxWarm  int // 0 = unbounded (the pre-bound behavior)
	observer func(fp string, ev sparkxd.Event)

	mu      sync.Mutex
	entries map[string]*sysEntry
	order   []string // LRU order: least recently acquired first
	hits    uint64
	misses  uint64
	evicted uint64
}

// sysEntry lazily builds one shared System per config fingerprint.
type sysEntry struct {
	fp   string
	pins int // live Acquires; evictable only at zero
	once sync.Once
	sys  *sparkxd.System
	err  error
}

// NewSystems builds a cache whose engines run sweeps on a pool of
// `workers` and report events through observer. The same budget also
// parallelizes within single evaluations (batched spike encoding and
// drive accumulation), so a lone big job on an idle worker process uses
// every core instead of one; artifacts stay byte-identical for any
// worker count. maxWarm bounds the number of cached engines (0 keeps
// the cache unbounded).
func NewSystems(workers, maxWarm int, observer func(fp string, ev sparkxd.Event)) *Systems {
	if observer == nil {
		observer = func(string, sparkxd.Event) {}
	}
	if maxWarm < 0 {
		maxWarm = 0
	}
	return &Systems{
		workers:  workers,
		maxWarm:  maxWarm,
		observer: observer,
		entries:  make(map[string]*sysEntry),
	}
}

// Acquire returns (building once) the shared System of one
// configuration fingerprint, pinned against eviction until release is
// called. built reports whether this call found the fingerprint cold
// and (with the engine build happening inside the call) paid for the
// System construction — callers use it to attribute warm-build latency
// (e.g. a "warm-system-build" trace span). release is always non-nil
// and safe to call exactly once; callers should defer it around the
// job's execution.
func (c *Systems) Acquire(fp string, cfg sparkxd.ConfigSpec) (sys *sparkxd.System, built bool, release func(), err error) {
	c.mu.Lock()
	ent, ok := c.entries[fp]
	if ok {
		c.hits++
		c.touchLocked(fp)
	} else {
		c.misses++
		ent = &sysEntry{fp: fp}
		c.entries[fp] = ent
		c.order = append(c.order, fp)
	}
	ent.pins++
	if !ok {
		c.evictLocked()
	}
	c.mu.Unlock()

	ent.once.Do(func() {
		opts, err := cfg.Options()
		if err != nil {
			c.setBuiltLocked(ent, nil, err)
			return
		}
		opts = append(opts,
			sparkxd.WithSweepWorkers(c.workers),
			sparkxd.WithObserver(func(ev sparkxd.Event) { c.observer(fp, ev) }),
		)
		s, err := sparkxd.New(opts...)
		c.setBuiltLocked(ent, s, err)
	})

	var relOnce sync.Once
	release = func() {
		relOnce.Do(func() {
			c.mu.Lock()
			ent.pins--
			c.evictLocked()
			c.mu.Unlock()
		})
	}
	return ent.sys, !ok, release, ent.err
}

// setBuiltLocked records a build result under the lock so concurrent
// stats readers (which iterate entries) never race the builder.
func (c *Systems) setBuiltLocked(ent *sysEntry, sys *sparkxd.System, err error) {
	c.mu.Lock()
	ent.sys, ent.err = sys, err
	c.mu.Unlock()
}

// touchLocked moves fp to the most-recently-used end. Caller holds
// c.mu.
func (c *Systems) touchLocked(fp string) {
	for i, f := range c.order {
		if f == fp {
			c.order = append(append(c.order[:i:i], c.order[i+1:]...), fp)
			return
		}
	}
}

// evictLocked drops least-recently-acquired unpinned entries until the
// cache respects its bound (or only pinned entries remain). Caller
// holds c.mu.
func (c *Systems) evictLocked() {
	if c.maxWarm <= 0 {
		return
	}
	for len(c.entries) > c.maxWarm {
		victim := -1
		for i, fp := range c.order {
			if c.entries[fp].pins == 0 {
				victim = i
				break
			}
		}
		if victim < 0 {
			return // everything pinned: exceed the bound rather than stall
		}
		fp := c.order[victim]
		c.order = append(c.order[:victim:victim], c.order[victim+1:]...)
		delete(c.entries, fp)
		c.evicted++
	}
}

// Len returns how many engines are currently cached.
func (c *Systems) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// MaxWarm returns the configured bound (0 = unbounded).
func (c *Systems) MaxWarm() int { return c.maxWarm }

// Stats returns the cumulative acquire hit/miss and eviction counts.
func (c *Systems) Stats() (hits, misses, evictions uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.evicted
}

// SweepCacheStats aggregates the device-profile cache counters of every
// currently cached engine (System.SweepCacheStats). Evicted engines
// take their counts with them, so this tracks the live working set.
func (c *Systems) SweepCacheStats() (hits, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, ent := range c.entries {
		if ent.sys == nil {
			continue
		}
		h, m := ent.sys.SweepCacheStats()
		hits += h
		misses += m
	}
	return hits, misses
}

// StageObserver receives the wall-clock duration of each completed
// pipeline stage a job executes (metrics wiring; nil disables).
type StageObserver func(stage string, d time.Duration)

// Produce runs spec's work on sys and returns the artifact values
// keyed by their result role ("baseline", "improved", "tolerance",
// "placement", "evaluation", "energy", "sweep"). The caller persists
// them (locally or by uploading to the coordinator); every returned
// value is accepted by sparkxd.PutArtifact. observe, when non-nil,
// receives per-stage wall-clock durations.
func Produce(ctx context.Context, sys *sparkxd.System, spec sparkxd.JobSpec, observe StageObserver) (map[string]any, error) {
	timed := func(stage string, run func(context.Context) error) error {
		start := time.Now()
		err := run(ctx)
		if observe != nil && err == nil {
			observe(stage, time.Since(start))
		}
		return err
	}
	p := sys.Pipeline()
	switch spec.Kind {
	case sparkxd.JobSweep:
		if err := timed("train", func(ctx context.Context) error { _, err := p.Train(ctx); return err }); err != nil {
			return nil, err
		}
		if err := timed("improve", func(ctx context.Context) error { _, err := p.ImproveTolerance(ctx); return err }); err != nil {
			return nil, err
		}
		var rep *sparkxd.SweepReport
		err := timed("sweep", func(ctx context.Context) error {
			var err error
			rep, err = p.Sweep(ctx, *spec.Sweep)
			return err
		})
		if err != nil {
			return nil, err
		}
		return map[string]any{"improved": p.Improved, "sweep": rep}, nil

	case sparkxd.JobPipeline:
		target := sparkxd.StageRank(spec.Stage)
		if target < 0 {
			return nil, fmt.Errorf("unknown stage %q", spec.Stage)
		}
		stages := []struct {
			name string
			run  func(context.Context) error
		}{
			{"train", func(ctx context.Context) error { _, err := p.Train(ctx); return err }},
			{"improve", func(ctx context.Context) error { _, err := p.ImproveTolerance(ctx); return err }},
			{"analyze", func(ctx context.Context) error { _, err := p.AnalyzeTolerance(ctx); return err }},
			{"map", func(ctx context.Context) error { _, err := p.Map(ctx); return err }},
			{"evaluate", func(ctx context.Context) error { _, err := p.EvaluateUnderErrors(ctx); return err }},
			{"energy", func(ctx context.Context) error { _, err := p.EnergyReport(ctx); return err }},
		}
		for i, st := range stages {
			if i > target {
				break
			}
			if err := timed(st.name, st.run); err != nil {
				return nil, fmt.Errorf("stage %s: %w", st.name, err)
			}
		}
		produced := map[string]any{}
		if p.Baseline != nil {
			produced["baseline"] = p.Baseline
		}
		if p.Improved != nil {
			produced["improved"] = p.Improved
		}
		if p.Tolerance != nil {
			produced["tolerance"] = p.Tolerance
		}
		if p.Placement != nil {
			produced["placement"] = p.Placement
		}
		if p.Evaluation != nil {
			produced["evaluation"] = p.Evaluation
		}
		if p.Energy != nil {
			produced["energy"] = p.Energy
		}
		return produced, nil

	default:
		return nil, fmt.Errorf("unknown job kind %q", spec.Kind)
	}
}
