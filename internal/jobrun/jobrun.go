// Package jobrun executes one job-service JobSpec against a warm
// sparkxd.System and returns the produced artifacts by role. It is the
// single execution path shared by the coordinator's local dispatcher
// (internal/server) and the fleet worker (internal/worker), so a job
// produces byte-identical artifacts no matter which process ran it —
// the property that makes lease requeue after a worker crash safe.
package jobrun

import (
	"context"
	"fmt"
	"sync"

	"sparkxd"
)

// Systems is the fingerprint-keyed cache of warm engines both executors
// share: jobs whose ConfigSpecs hash to the same fingerprint run
// against one lazily-built *sparkxd.System, so datasets, device
// profiles, and sweep caches are derived once per configuration per
// process. The observer receives every engine event tagged with the
// owning fingerprint (for per-job fanout).
type Systems struct {
	workers  int
	observer func(fp string, ev sparkxd.Event)

	mu      sync.Mutex
	entries map[string]*sysEntry
}

// sysEntry lazily builds one shared System per config fingerprint.
type sysEntry struct {
	once sync.Once
	sys  *sparkxd.System
	err  error
}

// NewSystems builds a cache whose engines run sweeps on a pool of
// `workers` and report events through observer. The same budget also
// parallelizes within single evaluations (batched spike encoding and
// drive accumulation), so a lone big job on an idle worker process uses
// every core instead of one; artifacts stay byte-identical for any
// worker count.
func NewSystems(workers int, observer func(fp string, ev sparkxd.Event)) *Systems {
	if observer == nil {
		observer = func(string, sparkxd.Event) {}
	}
	return &Systems{workers: workers, observer: observer, entries: make(map[string]*sysEntry)}
}

// For returns (building once) the shared System of one configuration
// fingerprint.
func (c *Systems) For(fp string, cfg sparkxd.ConfigSpec) (*sparkxd.System, error) {
	c.mu.Lock()
	ent, ok := c.entries[fp]
	if !ok {
		ent = &sysEntry{}
		c.entries[fp] = ent
	}
	c.mu.Unlock()
	ent.once.Do(func() {
		opts, err := cfg.Options()
		if err != nil {
			ent.err = err
			return
		}
		opts = append(opts,
			sparkxd.WithSweepWorkers(c.workers),
			sparkxd.WithObserver(func(ev sparkxd.Event) { c.observer(fp, ev) }),
		)
		ent.sys, ent.err = sparkxd.New(opts...)
	})
	return ent.sys, ent.err
}

// Produce runs spec's work on sys and returns the artifact values
// keyed by their result role ("baseline", "improved", "tolerance",
// "placement", "evaluation", "energy", "sweep"). The caller persists
// them (locally or by uploading to the coordinator); every returned
// value is accepted by sparkxd.PutArtifact.
func Produce(ctx context.Context, sys *sparkxd.System, spec sparkxd.JobSpec) (map[string]any, error) {
	p := sys.Pipeline()
	switch spec.Kind {
	case sparkxd.JobSweep:
		if _, err := p.Train(ctx); err != nil {
			return nil, err
		}
		if _, err := p.ImproveTolerance(ctx); err != nil {
			return nil, err
		}
		rep, err := p.Sweep(ctx, *spec.Sweep)
		if err != nil {
			return nil, err
		}
		return map[string]any{"improved": p.Improved, "sweep": rep}, nil

	case sparkxd.JobPipeline:
		target := sparkxd.StageRank(spec.Stage)
		if target < 0 {
			return nil, fmt.Errorf("unknown stage %q", spec.Stage)
		}
		stages := []struct {
			name string
			run  func(context.Context) error
		}{
			{"train", func(ctx context.Context) error { _, err := p.Train(ctx); return err }},
			{"improve", func(ctx context.Context) error { _, err := p.ImproveTolerance(ctx); return err }},
			{"analyze", func(ctx context.Context) error { _, err := p.AnalyzeTolerance(ctx); return err }},
			{"map", func(ctx context.Context) error { _, err := p.Map(ctx); return err }},
			{"evaluate", func(ctx context.Context) error { _, err := p.EvaluateUnderErrors(ctx); return err }},
			{"energy", func(ctx context.Context) error { _, err := p.EnergyReport(ctx); return err }},
		}
		for i, st := range stages {
			if i > target {
				break
			}
			if err := st.run(ctx); err != nil {
				return nil, fmt.Errorf("stage %s: %w", st.name, err)
			}
		}
		produced := map[string]any{}
		if p.Baseline != nil {
			produced["baseline"] = p.Baseline
		}
		if p.Improved != nil {
			produced["improved"] = p.Improved
		}
		if p.Tolerance != nil {
			produced["tolerance"] = p.Tolerance
		}
		if p.Placement != nil {
			produced["placement"] = p.Placement
		}
		if p.Evaluation != nil {
			produced["evaluation"] = p.Evaluation
		}
		if p.Energy != nil {
			produced["energy"] = p.Energy
		}
		return produced, nil

	default:
		return nil, fmt.Errorf("unknown job kind %q", spec.Kind)
	}
}
