// Package dram models the organization, addressing, commands, and timing
// of a commodity DRAM device in the way the SparkXD paper needs them:
// channel -> rank -> chip -> bank -> subarray -> row -> column (Fig. 5(a)).
//
// The package is purely structural: geometry and address arithmetic live
// here, voltage-dependent behaviour lives in package voltscale, energy in
// package power, and the row-buffer state machine in package memctrl.
//
// A "column" in this model is one burst-granularity access unit
// (ColumnBytes bytes, default 32 B = one BL8 burst of a x32 LPDDR3 chip).
// Weight tensors are serialized into column-sized units by package mapping.
package dram

import (
	"errors"
	"fmt"
)

// Geometry describes the hierarchical organization of a DRAM system.
type Geometry struct {
	Channels     int // independent channels
	Ranks        int // ranks per channel
	Chips        int // chips per rank (accessed in lock-step)
	Banks        int // banks per chip
	Subarrays    int // subarrays per bank
	Rows         int // rows per subarray
	Columns      int // column units per row
	ColumnBytes  int // bytes per column unit (one burst)
	BurstLength  int // beats per burst (BL8)
	DataWidthBit int // interface width per chip in bits (x16/x32)
}

// Validate reports whether every field of g is positive.
func (g Geometry) Validate() error {
	switch {
	case g.Channels <= 0, g.Ranks <= 0, g.Chips <= 0, g.Banks <= 0,
		g.Subarrays <= 0, g.Rows <= 0, g.Columns <= 0, g.ColumnBytes <= 0,
		g.BurstLength <= 0, g.DataWidthBit <= 0:
		return errors.New("dram: geometry fields must all be positive")
	}
	return nil
}

// RowsPerBank returns the total number of rows in one bank.
func (g Geometry) RowsPerBank() int { return g.Subarrays * g.Rows }

// BytesPerRow returns the capacity of one row in bytes.
func (g Geometry) BytesPerRow() int { return g.Columns * g.ColumnBytes }

// ChipCapacityBytes returns the capacity of one chip in bytes.
func (g Geometry) ChipCapacityBytes() int64 {
	return int64(g.Banks) * int64(g.Subarrays) * int64(g.Rows) *
		int64(g.Columns) * int64(g.ColumnBytes)
}

// TotalColumns returns the total number of column units in the system.
func (g Geometry) TotalColumns() int64 {
	return int64(g.Channels) * int64(g.Ranks) * int64(g.Chips) *
		int64(g.Banks) * int64(g.Subarrays) * int64(g.Rows) * int64(g.Columns)
}

// TotalCapacityBytes returns the capacity of the whole system in bytes.
func (g Geometry) TotalCapacityBytes() int64 {
	return int64(g.Channels) * int64(g.Ranks) * int64(g.Chips) * g.ChipCapacityBytes()
}

// SubarrayCount returns the total number of subarrays in the system.
func (g Geometry) SubarrayCount() int {
	return g.Channels * g.Ranks * g.Chips * g.Banks * g.Subarrays
}

// Coord identifies one column unit in the hierarchy.
type Coord struct {
	Channel, Rank, Chip, Bank, Subarray, Row, Column int
}

// String renders the coordinate in ch/ra/cp/ba/su/ro/co order.
func (c Coord) String() string {
	return fmt.Sprintf("ch%d.ra%d.cp%d.ba%d.su%d.ro%d.co%d",
		c.Channel, c.Rank, c.Chip, c.Bank, c.Subarray, c.Row, c.Column)
}

// GlobalRow returns the row index within the bank (subarray-major).
func (c Coord) GlobalRow(g Geometry) int { return c.Subarray*g.Rows + c.Row }

// Valid reports whether c lies inside geometry g.
func (c Coord) Valid(g Geometry) bool {
	return c.Channel >= 0 && c.Channel < g.Channels &&
		c.Rank >= 0 && c.Rank < g.Ranks &&
		c.Chip >= 0 && c.Chip < g.Chips &&
		c.Bank >= 0 && c.Bank < g.Banks &&
		c.Subarray >= 0 && c.Subarray < g.Subarrays &&
		c.Row >= 0 && c.Row < g.Rows &&
		c.Column >= 0 && c.Column < g.Columns
}

// Encode converts a coordinate to a linear column index. The order is
// channel-major: ch, ra, cp, ba, su, ro, co — i.e. consecutive linear
// indices walk the columns of one row first, then rows, then subarrays,
// then banks, matching the "subsequent address space in a DRAM bank"
// baseline layout of the paper (Sec. IV-B Step-2).
func (g Geometry) Encode(c Coord) int64 {
	if !c.Valid(g) {
		panic(fmt.Sprintf("dram: coordinate %v outside geometry", c))
	}
	idx := int64(c.Channel)
	idx = idx*int64(g.Ranks) + int64(c.Rank)
	idx = idx*int64(g.Chips) + int64(c.Chip)
	idx = idx*int64(g.Banks) + int64(c.Bank)
	idx = idx*int64(g.Subarrays) + int64(c.Subarray)
	idx = idx*int64(g.Rows) + int64(c.Row)
	idx = idx*int64(g.Columns) + int64(c.Column)
	return idx
}

// Decode converts a linear column index back to a coordinate.
func (g Geometry) Decode(idx int64) Coord {
	if idx < 0 || idx >= g.TotalColumns() {
		panic(fmt.Sprintf("dram: linear index %d outside geometry", idx))
	}
	var c Coord
	c.Column = int(idx % int64(g.Columns))
	idx /= int64(g.Columns)
	c.Row = int(idx % int64(g.Rows))
	idx /= int64(g.Rows)
	c.Subarray = int(idx % int64(g.Subarrays))
	idx /= int64(g.Subarrays)
	c.Bank = int(idx % int64(g.Banks))
	idx /= int64(g.Banks)
	c.Chip = int(idx % int64(g.Chips))
	idx /= int64(g.Chips)
	c.Rank = int(idx % int64(g.Ranks))
	idx /= int64(g.Ranks)
	c.Channel = int(idx)
	return c
}

// SubarrayID identifies one subarray in the system.
type SubarrayID struct {
	Channel, Rank, Chip, Bank, Subarray int
}

// SubarrayOf returns the subarray that contains c.
func (c Coord) SubarrayOf() SubarrayID {
	return SubarrayID{c.Channel, c.Rank, c.Chip, c.Bank, c.Subarray}
}

// Linear returns a dense index for the subarray in [0, g.SubarrayCount()).
func (s SubarrayID) Linear(g Geometry) int {
	idx := s.Channel
	idx = idx*g.Ranks + s.Rank
	idx = idx*g.Chips + s.Chip
	idx = idx*g.Banks + s.Bank
	idx = idx*g.Subarrays + s.Subarray
	return idx
}

// SubarrayFromLinear is the inverse of SubarrayID.Linear.
func SubarrayFromLinear(g Geometry, idx int) SubarrayID {
	var s SubarrayID
	s.Subarray = idx % g.Subarrays
	idx /= g.Subarrays
	s.Bank = idx % g.Banks
	idx /= g.Banks
	s.Chip = idx % g.Chips
	idx /= g.Chips
	s.Rank = idx % g.Ranks
	idx /= g.Ranks
	s.Channel = idx
	return s
}

// String renders the subarray identity.
func (s SubarrayID) String() string {
	return fmt.Sprintf("ch%d.ra%d.cp%d.ba%d.su%d",
		s.Channel, s.Rank, s.Chip, s.Bank, s.Subarray)
}

// BankID identifies one bank in the system (the row-buffer granularity).
type BankID struct {
	Channel, Rank, Chip, Bank int
}

// BankOf returns the bank that contains c.
func (c Coord) BankOf() BankID {
	return BankID{c.Channel, c.Rank, c.Chip, c.Bank}
}

// BankOf returns the bank that contains subarray s.
func (s SubarrayID) BankOf() BankID {
	return BankID{s.Channel, s.Rank, s.Chip, s.Bank}
}

// Linear returns a dense index for the bank in [0, total banks).
func (b BankID) Linear(g Geometry) int {
	idx := b.Channel
	idx = idx*g.Ranks + b.Rank
	idx = idx*g.Chips + b.Chip
	idx = idx*g.Banks + b.Bank
	return idx
}

// BankCount returns the total number of banks in the system.
func (g Geometry) BankCount() int { return g.Channels * g.Ranks * g.Chips * g.Banks }

// CommandKind enumerates the DRAM commands the simulator issues (Fig. 5(b)).
type CommandKind uint8

const (
	CmdACT CommandKind = iota // activate a row into the row buffer
	CmdRD                     // read a column burst
	CmdWR                     // write a column burst
	CmdPRE                    // precharge (close) the active row
	CmdREF                    // refresh
)

// String returns the conventional mnemonic.
func (k CommandKind) String() string {
	switch k {
	case CmdACT:
		return "ACT"
	case CmdRD:
		return "RD"
	case CmdWR:
		return "WR"
	case CmdPRE:
		return "PRE"
	case CmdREF:
		return "REF"
	default:
		return fmt.Sprintf("CMD(%d)", uint8(k))
	}
}

// Command is one entry of a command trace.
type Command struct {
	Kind CommandKind
	Bank BankID
	Row  int // global row within the bank (ACT only)
	Col  int // column (RD/WR only)
}

// AccessClass classifies one column access by row-buffer outcome
// (Sec. II-B1 of the paper).
type AccessClass uint8

const (
	// AccessHit: the requested row is already in the row buffer.
	AccessHit AccessClass = iota
	// AccessMiss: no row is open in the bank; an ACT is required.
	AccessMiss
	// AccessConflict: a different row is open; PRE then ACT are required.
	AccessConflict
)

// String names the access class.
func (a AccessClass) String() string {
	switch a {
	case AccessHit:
		return "hit"
	case AccessMiss:
		return "miss"
	case AccessConflict:
		return "conflict"
	default:
		return fmt.Sprintf("AccessClass(%d)", uint8(a))
	}
}

// Timing holds the DRAM timing parameters in nanoseconds. The three
// voltage-sensitive parameters (tRCD, tRAS, tRP) are produced by the
// circuit model in package voltscale; the rest are clock-bound.
type Timing struct {
	TCK    float64 // clock period
	TRCD   float64 // row-address to column-address delay
	TRAS   float64 // row active time
	TRP    float64 // row precharge time
	TCL    float64 // CAS (read) latency
	TBURST float64 // data burst duration (BL/2 * tCK for DDR)
	TRFC   float64 // refresh cycle time
	TREFI  float64 // average refresh interval
	TCCD   float64 // column-to-column delay
	TRRD   float64 // row-to-row (different bank) activation delay
}

// TRC returns the row cycle time tRAS + tRP.
func (t Timing) TRC() float64 { return t.TRAS + t.TRP }

// Validate reports whether the timing parameters are physically coherent.
func (t Timing) Validate() error {
	switch {
	case t.TCK <= 0, t.TRCD <= 0, t.TRAS <= 0, t.TRP <= 0, t.TCL <= 0,
		t.TBURST <= 0, t.TRFC <= 0, t.TREFI <= 0:
		return errors.New("dram: timing fields must be positive")
	case t.TRAS < t.TRCD:
		return fmt.Errorf("dram: tRAS (%.2f) must be >= tRCD (%.2f)", t.TRAS, t.TRCD)
	}
	return nil
}

// LPDDR3_1600_4Gb returns the geometry of the LPDDR3-1600 4Gb x32 device
// used throughout the paper's evaluation: 8 banks, 32 subarrays per bank,
// 1024 rows per subarray (32768 rows/bank), 2 KB rows, 32-byte bursts:
// 8 * 32 * 1024 * 2 KB = 512 MiB = 4 Gb.
// One channel, one rank, one chip keeps the model at the device scale the
// paper reports (a single LPDDR3 package as embedded main memory).
func LPDDR3_1600_4Gb() Geometry {
	return Geometry{
		Channels:     1,
		Ranks:        1,
		Chips:        1,
		Banks:        8,
		Subarrays:    32,
		Rows:         1024,
		Columns:      64, // 64 columns x 32 B = 2 KB per row
		ColumnBytes:  32,
		BurstLength:  8,
		DataWidthBit: 32,
	}
}

// NominalTiming returns the LPDDR3-1600 timing set at the nominal 1.35 V
// supply: tCK = 1.25 ns (800 MHz), tRCD = 18 ns, tRAS = 42 ns, tRP = 18 ns,
// CL = 15 ns, BL8 burst = 5 ns, tRFC = 130 ns, tREFI = 3.9 us.
func NominalTiming() Timing {
	return Timing{
		TCK:    1.25,
		TRCD:   18.0,
		TRAS:   42.0,
		TRP:    18.0,
		TCL:    15.0,
		TBURST: 5.0,
		TRFC:   130.0,
		TREFI:  3900.0,
		TCCD:   5.0,
		TRRD:   10.0,
	}
}

// SmallTestGeometry returns a deliberately tiny geometry used by unit
// tests so that exhaustive address-space walks stay fast.
func SmallTestGeometry() Geometry {
	return Geometry{
		Channels:     2,
		Ranks:        2,
		Chips:        2,
		Banks:        4,
		Subarrays:    4,
		Rows:         8,
		Columns:      16,
		ColumnBytes:  32,
		BurstLength:  8,
		DataWidthBit: 32,
	}
}
