package dram

import (
	"testing"
	"testing/quick"
)

func TestGeometryValidate(t *testing.T) {
	if err := LPDDR3_1600_4Gb().Validate(); err != nil {
		t.Fatalf("preset geometry invalid: %v", err)
	}
	bad := LPDDR3_1600_4Gb()
	bad.Banks = 0
	if bad.Validate() == nil {
		t.Fatal("zero banks should be invalid")
	}
}

func TestPresetCapacity(t *testing.T) {
	g := LPDDR3_1600_4Gb()
	// 8 banks * 32 subarrays * 1024 rows * 2 KB rows = 512 MiB = 4 Gb.
	want := int64(512) << 20
	if g.ChipCapacityBytes() != want {
		t.Fatalf("chip capacity = %d, want %d (4 Gb)", g.ChipCapacityBytes(), want)
	}
	if g.BytesPerRow() != 2048 {
		t.Fatalf("row size = %d, want 2048", g.BytesPerRow())
	}
}

func TestEncodeDecodeRoundtrip(t *testing.T) {
	g := SmallTestGeometry()
	total := g.TotalColumns()
	for idx := int64(0); idx < total; idx++ {
		c := g.Decode(idx)
		if !c.Valid(g) {
			t.Fatalf("decoded coord %v invalid", c)
		}
		back := g.Encode(c)
		if back != idx {
			t.Fatalf("roundtrip failed: %d -> %v -> %d", idx, c, back)
		}
	}
}

func TestEncodeOrderingIsColumnMajorWithinRow(t *testing.T) {
	g := SmallTestGeometry()
	c0 := Coord{0, 0, 0, 0, 0, 0, 0}
	c1 := Coord{0, 0, 0, 0, 0, 0, 1}
	if g.Encode(c1) != g.Encode(c0)+1 {
		t.Fatal("consecutive columns of a row must be consecutive linear indices")
	}
	// Next row starts right after the last column of the previous row.
	rEnd := Coord{0, 0, 0, 0, 0, 0, g.Columns - 1}
	rNext := Coord{0, 0, 0, 0, 0, 1, 0}
	if g.Encode(rNext) != g.Encode(rEnd)+1 {
		t.Fatal("rows must be contiguous in the linear space")
	}
}

func TestDecodePanicsOutOfRange(t *testing.T) {
	g := SmallTestGeometry()
	defer func() {
		if recover() == nil {
			t.Fatal("Decode out of range should panic")
		}
	}()
	g.Decode(g.TotalColumns())
}

func TestEncodePanicsInvalidCoord(t *testing.T) {
	g := SmallTestGeometry()
	defer func() {
		if recover() == nil {
			t.Fatal("Encode of invalid coord should panic")
		}
	}()
	g.Encode(Coord{Channel: g.Channels})
}

func TestSubarrayLinearRoundtrip(t *testing.T) {
	g := SmallTestGeometry()
	n := g.SubarrayCount()
	seen := make([]bool, n)
	for ch := 0; ch < g.Channels; ch++ {
		for ra := 0; ra < g.Ranks; ra++ {
			for cp := 0; cp < g.Chips; cp++ {
				for ba := 0; ba < g.Banks; ba++ {
					for su := 0; su < g.Subarrays; su++ {
						id := SubarrayID{ch, ra, cp, ba, su}
						lin := id.Linear(g)
						if lin < 0 || lin >= n {
							t.Fatalf("linear %d out of range", lin)
						}
						if seen[lin] {
							t.Fatalf("linear %d assigned twice", lin)
						}
						seen[lin] = true
						if SubarrayFromLinear(g, lin) != id {
							t.Fatalf("roundtrip failed for %v", id)
						}
					}
				}
			}
		}
	}
}

func TestCoordSubarrayAndBank(t *testing.T) {
	c := Coord{1, 0, 1, 2, 3, 4, 5}
	sa := c.SubarrayOf()
	if sa != (SubarrayID{1, 0, 1, 2, 3}) {
		t.Fatalf("SubarrayOf = %v", sa)
	}
	if sa.BankOf() != (BankID{1, 0, 1, 2}) || c.BankOf() != (BankID{1, 0, 1, 2}) {
		t.Fatal("BankOf mismatch")
	}
}

func TestGlobalRow(t *testing.T) {
	g := SmallTestGeometry()
	c := Coord{0, 0, 0, 0, 2, 3, 0}
	if c.GlobalRow(g) != 2*g.Rows+3 {
		t.Fatalf("GlobalRow = %d", c.GlobalRow(g))
	}
}

func TestBankLinearDense(t *testing.T) {
	g := SmallTestGeometry()
	n := g.BankCount()
	seen := make([]bool, n)
	for ch := 0; ch < g.Channels; ch++ {
		for ra := 0; ra < g.Ranks; ra++ {
			for cp := 0; cp < g.Chips; cp++ {
				for ba := 0; ba < g.Banks; ba++ {
					lin := BankID{ch, ra, cp, ba}.Linear(g)
					if lin < 0 || lin >= n || seen[lin] {
						t.Fatalf("bank linear %d invalid or duplicate", lin)
					}
					seen[lin] = true
				}
			}
		}
	}
}

func TestTimingValidate(t *testing.T) {
	if err := NominalTiming().Validate(); err != nil {
		t.Fatalf("nominal timing invalid: %v", err)
	}
	bad := NominalTiming()
	bad.TRAS = bad.TRCD - 1
	if bad.Validate() == nil {
		t.Fatal("tRAS < tRCD should be invalid")
	}
	bad2 := NominalTiming()
	bad2.TCK = 0
	if bad2.Validate() == nil {
		t.Fatal("zero tCK should be invalid")
	}
}

func TestTRC(t *testing.T) {
	tm := NominalTiming()
	if tm.TRC() != tm.TRAS+tm.TRP {
		t.Fatal("TRC must be tRAS+tRP")
	}
}

func TestCommandString(t *testing.T) {
	for k, want := range map[CommandKind]string{
		CmdACT: "ACT", CmdRD: "RD", CmdWR: "WR", CmdPRE: "PRE", CmdREF: "REF",
	} {
		if k.String() != want {
			t.Errorf("String(%d) = %q, want %q", k, k.String(), want)
		}
	}
}

func TestCoordString(t *testing.T) {
	c := Coord{1, 2, 3, 4, 5, 6, 7}
	if c.String() != "ch1.ra2.cp3.ba4.su5.ro6.co7" {
		t.Fatalf("String = %q", c.String())
	}
}

// Property: Encode is a bijection on valid coordinates (injectivity checked
// via roundtrip on random indices of the large preset geometry).
func TestEncodeDecodePropertyLargeGeometry(t *testing.T) {
	g := LPDDR3_1600_4Gb()
	total := g.TotalColumns()
	f := func(seed uint64) bool {
		idx := int64(seed % uint64(total))
		return g.Encode(g.Decode(idx)) == idx
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestTotalColumnsConsistent(t *testing.T) {
	g := SmallTestGeometry()
	if g.TotalColumns()*int64(g.ColumnBytes) != g.TotalCapacityBytes() {
		t.Fatal("TotalColumns * ColumnBytes must equal TotalCapacityBytes")
	}
}
