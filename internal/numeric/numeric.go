// Package numeric provides the small set of dense float32 vector and
// matrix kernels used by the SNN simulator and by the analysis code.
//
// The package deliberately stays close to plain loops: the matrices
// involved (up to 784 x 3600 synaptic weights) are small enough that
// cache-friendly row-major loops are fast, and keeping the kernels
// dependency-free makes the numerical behaviour easy to audit.
package numeric

import (
	"fmt"
	"math"
)

// Matrix is a dense row-major float32 matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float32 // len == Rows*Cols
}

// NewMatrix allocates a zeroed Rows x Cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic("numeric: negative matrix dimension")
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float32, rows*cols)}
}

// At returns element (r, c).
func (m *Matrix) At(r, c int) float32 { return m.Data[r*m.Cols+c] }

// Set assigns element (r, c).
func (m *Matrix) Set(r, c int, v float32) { m.Data[r*m.Cols+c] = v }

// Row returns the r-th row as a slice aliasing the matrix storage.
func (m *Matrix) Row(r int) []float32 { return m.Data[r*m.Cols : (r+1)*m.Cols] }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// Fill sets every element to v.
func (m *Matrix) Fill(v float32) {
	for i := range m.Data {
		m.Data[i] = v
	}
}

// Dims returns (rows, cols).
func (m *Matrix) Dims() (int, int) { return m.Rows, m.Cols }

// String implements fmt.Stringer with a compact shape description.
func (m *Matrix) String() string {
	return fmt.Sprintf("Matrix(%dx%d)", m.Rows, m.Cols)
}

// MulVec computes dst = M^T * x when transposed, or dst = M * x otherwise.
// For the SNN the common pattern is y[j] += sum_i x[i] * W[i][j]
// (inputs i, neurons j), i.e. transposed=true with W stored input-major.
func (m *Matrix) MulVec(x, dst []float32, transposed bool) {
	if transposed {
		if len(x) != m.Rows || len(dst) != m.Cols {
			panic("numeric: MulVec transposed dimension mismatch")
		}
		for j := range dst {
			dst[j] = 0
		}
		for i := 0; i < m.Rows; i++ {
			xi := x[i]
			if xi == 0 {
				continue
			}
			row := m.Row(i)
			for j, w := range row {
				dst[j] += xi * w
			}
		}
		return
	}
	if len(x) != m.Cols || len(dst) != m.Rows {
		panic("numeric: MulVec dimension mismatch")
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		var acc float32
		for j, w := range row {
			acc += w * x[j]
		}
		dst[i] = acc
	}
}

// AccumulateSpikes adds, for every active input index i in spikes,
// the weight row W[i] into dst. This is the sparse event-driven form of
// MulVec used on binary spike vectors.
func (m *Matrix) AccumulateSpikes(spikes []int, dst []float32) {
	if len(dst) != m.Cols {
		panic("numeric: AccumulateSpikes dimension mismatch")
	}
	for _, i := range spikes {
		row := m.Row(i)
		for j, w := range row {
			dst[j] += w
		}
	}
}

// Scale multiplies every element by s.
func (m *Matrix) Scale(s float32) {
	for i := range m.Data {
		m.Data[i] *= s
	}
}

// Clamp limits every element into [lo, hi].
func (m *Matrix) Clamp(lo, hi float32) {
	for i, v := range m.Data {
		if v < lo {
			m.Data[i] = lo
		} else if v > hi {
			m.Data[i] = hi
		}
	}
}

// ColumnSums returns the per-column sums of the matrix.
func (m *Matrix) ColumnSums() []float32 {
	sums := make([]float32, m.Cols)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			sums[j] += v
		}
	}
	return sums
}

// NormalizeColumns rescales each column so that its sum equals target.
// Columns whose sum is zero are left untouched. This implements the
// synaptic-weight normalization used by Diehl&Cook-style SNN training to
// keep excitatory drive balanced across neurons.
func (m *Matrix) NormalizeColumns(target float32) {
	sums := m.ColumnSums()
	for j, s := range sums {
		if s == 0 {
			continue
		}
		f := target / s
		for i := 0; i < m.Rows; i++ {
			m.Data[i*m.Cols+j] *= f
		}
	}
}

// Vector helpers ------------------------------------------------------------

// Fill32 sets every element of x to v.
func Fill32(x []float32, v float32) {
	for i := range x {
		x[i] = v
	}
}

// AddTo computes dst[i] += src[i] for every element. It is the inner
// kernel of the SNN's synaptic-drive accumulation (one call per active
// input per timestep), unrolled over four-element blocks with explicit
// capacity slicing so the compiler drops the per-element bounds checks.
// Each dst element receives exactly one addition of the matching src
// element, so results are bit-identical to the plain loop regardless of
// the unroll factor.
func AddTo(dst, src []float32) {
	if len(src) != len(dst) {
		panic("numeric: AddTo length mismatch")
	}
	n := len(dst)
	i := 0
	for ; i+4 <= n; i += 4 {
		d := dst[i : i+4 : i+4]
		s := src[i : i+4 : i+4]
		d[0] += s[0]
		d[1] += s[1]
		d[2] += s[2]
		d[3] += s[3]
	}
	for ; i < n; i++ {
		dst[i] += src[i]
	}
}

// Sum returns the sum of x.
func Sum(x []float32) float64 {
	var s float64
	for _, v := range x {
		s += float64(v)
	}
	return s
}

// Mean returns the arithmetic mean of x (0 for empty input).
func Mean(x []float32) float64 {
	if len(x) == 0 {
		return 0
	}
	return Sum(x) / float64(len(x))
}

// Variance returns the population variance of x (0 for len < 2).
func Variance(x []float32) float64 {
	if len(x) < 2 {
		return 0
	}
	m := Mean(x)
	var acc float64
	for _, v := range x {
		d := float64(v) - m
		acc += d * d
	}
	return acc / float64(len(x))
}

// Stddev returns the population standard deviation of x.
func Stddev(x []float32) float64 { return math.Sqrt(Variance(x)) }

// ArgMax returns the index of the maximum element (-1 for empty input).
// Ties resolve to the lowest index.
func ArgMax(x []float32) int {
	if len(x) == 0 {
		return -1
	}
	best := 0
	for i := 1; i < len(x); i++ {
		if x[i] > x[best] {
			best = i
		}
	}
	return best
}

// ArgMaxInt is ArgMax for int slices.
func ArgMaxInt(x []int) int {
	if len(x) == 0 {
		return -1
	}
	best := 0
	for i := 1; i < len(x); i++ {
		if x[i] > x[best] {
			best = i
		}
	}
	return best
}

// Dot returns the dot product of a and b.
func Dot(a, b []float32) float64 {
	if len(a) != len(b) {
		panic("numeric: Dot length mismatch")
	}
	var s float64
	for i := range a {
		s += float64(a[i]) * float64(b[i])
	}
	return s
}

// AXPY computes y += alpha * x in place.
func AXPY(alpha float32, x, y []float32) {
	if len(x) != len(y) {
		panic("numeric: AXPY length mismatch")
	}
	for i := range x {
		y[i] += alpha * x[i]
	}
}

// DecayExp multiplies every element of x by the factor exp(-dt/tau),
// the exact Euler-exponential decay used by the LIF traces.
func DecayExp(x []float32, dt, tau float64) {
	f := float32(math.Exp(-dt / tau))
	for i := range x {
		x[i] *= f
	}
}

// Clamp32 limits v into [lo, hi].
func Clamp32(v, lo, hi float32) float32 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Percentile returns the p-th percentile (0..100) of x using linear
// interpolation on a sorted copy. Returns NaN for empty input.
func Percentile(x []float32, p float64) float64 {
	if len(x) == 0 {
		return math.NaN()
	}
	s := make([]float64, len(x))
	for i, v := range x {
		s[i] = float64(v)
	}
	insertionSort(s)
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	pos := p / 100 * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

func insertionSort(s []float64) {
	// Shell sort: no allocations, adequate for the analysis-sized slices
	// this package deals with.
	n := len(s)
	gap := 1
	for gap < n/3 {
		gap = gap*3 + 1
	}
	for ; gap > 0; gap /= 3 {
		for i := gap; i < n; i++ {
			v := s[i]
			j := i
			for j >= gap && s[j-gap] > v {
				s[j] = s[j-gap]
				j -= gap
			}
			s[j] = v
		}
	}
}

// ApproxEqual reports whether a and b differ by at most tol.
func ApproxEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

// RelErr returns |a-b| / max(|b|, eps): the relative error of a vs b.
func RelErr(a, b float64) float64 {
	den := math.Abs(b)
	if den < 1e-30 {
		den = 1e-30
	}
	return math.Abs(a-b) / den
}
