package numeric

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMatrixBasics(t *testing.T) {
	m := NewMatrix(3, 4)
	if r, c := m.Dims(); r != 3 || c != 4 {
		t.Fatalf("Dims = (%d,%d)", r, c)
	}
	m.Set(1, 2, 5)
	if m.At(1, 2) != 5 {
		t.Fatal("Set/At roundtrip failed")
	}
	row := m.Row(1)
	if len(row) != 4 || row[2] != 5 {
		t.Fatal("Row aliasing failed")
	}
	row[0] = 9
	if m.At(1, 0) != 9 {
		t.Fatal("Row must alias matrix storage")
	}
}

func TestMatrixClone(t *testing.T) {
	m := NewMatrix(2, 2)
	m.Set(0, 0, 1)
	c := m.Clone()
	c.Set(0, 0, 7)
	if m.At(0, 0) != 1 {
		t.Fatal("Clone must not share storage")
	}
}

func TestMulVec(t *testing.T) {
	// W = [[1 2],[3 4],[5 6]] (3 inputs x 2 neurons)
	m := NewMatrix(3, 2)
	copy(m.Data, []float32{1, 2, 3, 4, 5, 6})
	x := []float32{1, 0, 2}
	dst := make([]float32, 2)
	m.MulVec(x, dst, true)
	if dst[0] != 11 || dst[1] != 14 {
		t.Fatalf("transposed MulVec = %v, want [11 14]", dst)
	}
	y := []float32{1, 1}
	dst2 := make([]float32, 3)
	m.MulVec(y, dst2, false)
	want := []float32{3, 7, 11}
	for i := range want {
		if dst2[i] != want[i] {
			t.Fatalf("MulVec = %v, want %v", dst2, want)
		}
	}
}

func TestAccumulateSpikesMatchesMulVec(t *testing.T) {
	m := NewMatrix(5, 3)
	for i := range m.Data {
		m.Data[i] = float32(i%7) * 0.5
	}
	spikes := []int{0, 2, 4}
	x := make([]float32, 5)
	for _, s := range spikes {
		x[s] = 1
	}
	want := make([]float32, 3)
	m.MulVec(x, want, true)
	got := make([]float32, 3)
	m.AccumulateSpikes(spikes, got)
	for i := range want {
		if math.Abs(float64(want[i]-got[i])) > 1e-6 {
			t.Fatalf("AccumulateSpikes = %v, want %v", got, want)
		}
	}
}

func TestClamp(t *testing.T) {
	m := NewMatrix(1, 3)
	copy(m.Data, []float32{-5, 0.5, 5})
	m.Clamp(0, 1)
	if m.Data[0] != 0 || m.Data[1] != 0.5 || m.Data[2] != 1 {
		t.Fatalf("Clamp = %v", m.Data)
	}
}

func TestNormalizeColumns(t *testing.T) {
	m := NewMatrix(2, 2)
	copy(m.Data, []float32{1, 0, 3, 0})
	m.NormalizeColumns(8)
	sums := m.ColumnSums()
	if math.Abs(float64(sums[0]-8)) > 1e-5 {
		t.Errorf("column 0 sum = %v, want 8", sums[0])
	}
	// Zero column must be left untouched, not NaN.
	if sums[1] != 0 {
		t.Errorf("zero column sum = %v, want 0", sums[1])
	}
	for _, v := range m.Data {
		if math.IsNaN(float64(v)) {
			t.Fatal("NormalizeColumns produced NaN")
		}
	}
}

func TestArgMax(t *testing.T) {
	if ArgMax(nil) != -1 {
		t.Error("ArgMax(nil) should be -1")
	}
	if ArgMax([]float32{1, 3, 3, 2}) != 1 {
		t.Error("ArgMax tie should resolve to lowest index")
	}
	if ArgMaxInt([]int{5, 1, 9}) != 2 {
		t.Error("ArgMaxInt failed")
	}
	if ArgMaxInt(nil) != -1 {
		t.Error("ArgMaxInt(nil) should be -1")
	}
}

func TestSumMeanVariance(t *testing.T) {
	x := []float32{1, 2, 3, 4}
	if Sum(x) != 10 {
		t.Error("Sum failed")
	}
	if Mean(x) != 2.5 {
		t.Error("Mean failed")
	}
	if math.Abs(Variance(x)-1.25) > 1e-9 {
		t.Errorf("Variance = %v, want 1.25", Variance(x))
	}
	if math.Abs(Stddev(x)-math.Sqrt(1.25)) > 1e-9 {
		t.Error("Stddev failed")
	}
	if Mean(nil) != 0 || Variance([]float32{1}) != 0 {
		t.Error("degenerate stats failed")
	}
}

func TestDotAXPY(t *testing.T) {
	a := []float32{1, 2, 3}
	b := []float32{4, 5, 6}
	if Dot(a, b) != 32 {
		t.Errorf("Dot = %v", Dot(a, b))
	}
	y := []float32{1, 1, 1}
	AXPY(2, a, y)
	want := []float32{3, 5, 7}
	for i := range want {
		if y[i] != want[i] {
			t.Fatalf("AXPY = %v", y)
		}
	}
}

func TestDecayExp(t *testing.T) {
	x := []float32{1, 2}
	DecayExp(x, 1, 1)
	f := float32(math.Exp(-1))
	if math.Abs(float64(x[0]-f)) > 1e-6 || math.Abs(float64(x[1]-2*f)) > 1e-6 {
		t.Fatalf("DecayExp = %v", x)
	}
}

func TestPercentile(t *testing.T) {
	x := []float32{4, 1, 3, 2}
	if v := Percentile(x, 0); v != 1 {
		t.Errorf("P0 = %v", v)
	}
	if v := Percentile(x, 100); v != 4 {
		t.Errorf("P100 = %v", v)
	}
	if v := Percentile(x, 50); math.Abs(v-2.5) > 1e-9 {
		t.Errorf("P50 = %v, want 2.5", v)
	}
	if !math.IsNaN(Percentile(nil, 50)) {
		t.Error("Percentile of empty should be NaN")
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	x := []float32{3, 1, 2}
	Percentile(x, 50)
	if x[0] != 3 || x[1] != 1 || x[2] != 2 {
		t.Fatal("Percentile must not reorder its input")
	}
}

func TestClamp32(t *testing.T) {
	if Clamp32(-1, 0, 1) != 0 || Clamp32(2, 0, 1) != 1 || Clamp32(0.5, 0, 1) != 0.5 {
		t.Fatal("Clamp32 failed")
	}
}

func TestRelErr(t *testing.T) {
	if RelErr(1.1, 1.0) > 0.11 || RelErr(1.1, 1.0) < 0.09 {
		t.Errorf("RelErr = %v", RelErr(1.1, 1.0))
	}
	if RelErr(0, 0) != 0 {
		t.Errorf("RelErr(0,0) = %v", RelErr(0, 0))
	}
}

func TestApproxEqual(t *testing.T) {
	if !ApproxEqual(1.0, 1.05, 0.1) || ApproxEqual(1.0, 1.2, 0.1) {
		t.Fatal("ApproxEqual failed")
	}
}

// Property: NormalizeColumns makes every nonzero column sum to the target.
func TestNormalizeColumnsProperty(t *testing.T) {
	f := func(seed int64) bool {
		if seed < 0 {
			seed = -(seed + 1)
		}
		rows := int(seed%7) + 2
		cols := int(seed%5) + 2
		m := NewMatrix(rows, cols)
		v := uint64(seed)
		for i := range m.Data {
			v = v*6364136223846793005 + 1442695040888963407
			m.Data[i] = float32(v%1000) / 100
		}
		m.NormalizeColumns(10)
		for _, s := range m.ColumnSums() {
			if s != 0 && math.Abs(float64(s)-10) > 1e-3 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: Clamp then bounds hold for all elements.
func TestClampProperty(t *testing.T) {
	f := func(vals []float32) bool {
		m := &Matrix{Rows: 1, Cols: len(vals), Data: append([]float32(nil), vals...)}
		m.Clamp(-1, 1)
		for _, v := range m.Data {
			if v < -1 || v > 1 {
				// NaN stays NaN; treat as pass-through (documented behaviour
				// is only defined for finite inputs).
				if !math.IsNaN(float64(v)) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkMulVecTransposed(b *testing.B) {
	m := NewMatrix(784, 900)
	for i := range m.Data {
		m.Data[i] = float32(i%13) * 0.01
	}
	x := make([]float32, 784)
	for i := range x {
		if i%3 == 0 {
			x[i] = 1
		}
	}
	dst := make([]float32, 900)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.MulVec(x, dst, true)
	}
}
