// Package fleetapi defines the wire types of the coordinator ↔ worker
// lease protocol (DESIGN.md §9). Both sides — the lease endpoints in
// internal/server and the lease client in internal/worker — marshal
// exactly these structs, so the protocol has one source of truth.
//
// The protocol is four verbs over plain HTTP/JSON:
//
//	POST   /v1/workers              register (idempotent presence ping)
//	POST   /v1/leases               lease up to `capacity` queued jobs
//	POST   /v1/leases/{id}/renew    heartbeat: extend the lease TTL
//	POST   /v1/leases/{id}/events   forward engine events for SSE bridging
//	POST   /v1/leases/{id}/complete finish the job (artifacts or error)
//	DELETE /v1/leases/{id}          release: requeue without completing
//
// A lost lease (expired, replaced, or unknown) answers 410 Gone; the
// worker must abandon the job — another worker may already own it.
package fleetapi

import "sparkxd"

// RegisterRequest announces a worker to the coordinator.
type RegisterRequest struct {
	// Name identifies the worker across requests; lease exclusion after
	// a crash is keyed by it, so restarts should reuse the name only if
	// the operator wants the restart to inherit those exclusions.
	Name string `json:"name"`
	// Slots is how many jobs the worker executes concurrently.
	Slots int `json:"slots"`
}

// RegisterResponse acknowledges a registration.
type RegisterResponse struct {
	Name string `json:"name"`
	// LeaseTTLMillis is the coordinator's lease TTL; workers heartbeat
	// a few times per TTL window.
	LeaseTTLMillis int64 `json:"lease_ttl_ms"`
	// Dispatch echoes the coordinator's dispatch mode ("local" means
	// this worker will never be handed work).
	Dispatch string `json:"dispatch"`
}

// LeaseRequest asks for up to Capacity queued jobs.
type LeaseRequest struct {
	Worker   string `json:"worker"`
	Capacity int    `json:"capacity"`
}

// Grant is one leased job: the worker owns it until the lease expires,
// is released, or is completed.
type Grant struct {
	LeaseID string `json:"lease_id"`
	JobID   string `json:"job_id"`
	// Spec is the normalized job spec to execute.
	Spec sparkxd.JobSpec `json:"spec"`
	// TTLMillis is how long the lease lives without a renewal.
	TTLMillis int64 `json:"ttl_ms"`
	// Traceparent carries the job's trace context (the lease span, W3C
	// encoded) so worker-side spans nest under the coordinator's lease
	// span. It rides the lease payload — out-of-band, never inside Spec —
	// so job IDs stay content hashes of the spec alone. Empty when the
	// job has no trace.
	Traceparent string `json:"traceparent,omitempty"`
}

// LeaseResponse carries zero or more grants (zero = nothing leasable
// for this worker right now).
type LeaseResponse struct {
	Leases []Grant `json:"leases"`
	// QueueDepth is how many jobs remain queued on the coordinator
	// after these grants — a backlog signal workers surface on their
	// own /metrics endpoints.
	QueueDepth int `json:"queue_depth"`
}

// RenewResponse acknowledges a heartbeat with the refreshed TTL.
type RenewResponse struct {
	TTLMillis int64 `json:"ttl_ms"`
}

// CompleteRequest finishes a leased job. Exactly one of Artifacts or
// Error is set: Artifacts maps result roles to store keys the worker
// has already uploaded (PUT /v1/artifacts/{key}), Error marks the job
// failed.
type CompleteRequest struct {
	Artifacts map[string]sparkxd.ArtifactKey `json:"artifacts,omitempty"`
	Error     string                         `json:"error,omitempty"`
	// Spans carries the worker's final spans (artifact upload, the
	// execution envelope) that only finish at completion time, when no
	// further event batch will be flushed. Earlier spans (stages, warm
	// builds) ride the ordinary event batches instead.
	Spans []sparkxd.TraceSpan `json:"spans,omitempty"`
}

// WorkerStatus is one row of GET /v1/workers.
type WorkerStatus struct {
	Name string `json:"name"`
	// Slots is the concurrency the worker registered with.
	Slots int `json:"slots"`
	// ActiveLeases counts the worker's live leases.
	ActiveLeases int `json:"active_leases"`
	// LastSeenMillisAgo is how long ago the worker last talked to the
	// coordinator (registration, lease request, or heartbeat).
	LastSeenMillisAgo int64 `json:"last_seen_ms_ago"`
}
