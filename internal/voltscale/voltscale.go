// Package voltscale is the reduced-voltage DRAM circuit model of the
// SparkXD reproduction. It stands in for the SPICE simulations the paper
// runs on the DRAM circuit model of Chang et al. (POMACS 2017, ref [10]):
// it produces (1) the DRAM array-voltage waveform Varray(t) during
// activation and precharge, (2) the voltage-dependent timing parameters
// tRCD / tRAS / tRP, and (3) the bit-error-rate curve BER(Vsupply).
//
// Circuit model. During activation the sense amplifier restores the cell
// and bitline from the precharge level Vsupply/2 toward Vsupply along a
// first-order RC charging curve; during precharge the bitline is equalized
// back to Vsupply/2 along an RC discharge curve. The paper's own timing
// definitions (Sec. II-B2) are applied verbatim:
//
//   - ready-to-access    : Varray reaches 75% of Vsupply      -> minimum tRCD
//   - ready-to-precharge : Varray reaches 98% of Vsupply      -> minimum tRAS
//   - ready-to-activate  : Varray within 2% of Vsupply/2      -> minimum tRP
//
// At reduced supply voltage the sense-amplifier drive current shrinks, so
// the effective RC constant grows; we model tau(V) = tau_nom * (Vnom/V)^Gamma
// with Gamma fitted so the timing stretch at 1.025 V matches the reported
// reduced-voltage characterization (~20% slower restore at -24% Vdd).
//
// Error model. Below a guardband voltage, cells begin to fail with a rate
// that grows exponentially as the supply drops (Fig. 2(c) of the paper):
// log10 BER is linear in V, spanning ~1e-8 near 1.325 V to ~1e-2 near
// 1.025 V, and is exactly zero at or above the guardband (1.34 V).
package voltscale

import (
	"errors"
	"fmt"
	"math"

	"sparkxd/internal/dram"
)

// Supply voltages evaluated throughout the paper.
const (
	VNominal = 1.350 // accurate DRAM
	V1325    = 1.325
	V1250    = 1.250
	V1175    = 1.175
	V1100    = 1.100
	V1025    = 1.025 // most aggressive approximate DRAM point
)

// PaperVoltages returns the supply-voltage sweep used by Figs. 6, 12 and
// Table I, from nominal down to the most aggressive point.
func PaperVoltages() []float64 {
	return []float64{VNominal, V1325, V1250, V1175, V1100, V1025}
}

// ReducedVoltages returns only the approximate-DRAM points.
func ReducedVoltages() []float64 {
	return []float64{V1325, V1250, V1175, V1100, V1025}
}

// Model holds the calibrated circuit-model parameters.
type Model struct {
	// VNom is the nominal supply voltage (1.35 V for LPDDR3).
	VNom float64
	// TauAct is the nominal activation RC constant in ns, calibrated so
	// that tRCD(VNom) equals the datasheet 18 ns (tau = tRCD/ln 2).
	TauAct float64
	// TauRestore is the nominal full-restore RC constant in ns, calibrated
	// so that tRAS(VNom) equals the datasheet 42 ns (tau = tRAS/ln 50).
	TauRestore float64
	// TauPre is the nominal precharge RC constant in ns, calibrated so
	// that tRP(VNom) equals the datasheet 18 ns (tau = tRP/ln 50).
	TauPre float64
	// Gamma is the exponent of the tau(V) voltage dependence.
	Gamma float64
	// GuardbandV is the voltage at or above which no bit errors occur.
	GuardbandV float64
	// BERAtMinV is the bit error rate at MinV (the curve's anchor point).
	BERAtMinV float64
	// MinV is the lowest characterized supply voltage.
	MinV float64
	// LogSlope is d(log10 BER)/dV; negative (errors grow as V drops).
	LogSlope float64
}

// Thresholds of the paper's timing definitions.
const (
	readyToAccessFrac    = 0.75 // of Vsupply          -> tRCD
	readyToPrechargeFrac = 0.98 // of Vsupply          -> tRAS
	readyToActivateFrac  = 0.02 // within 2% of Vdd/2  -> tRP
)

// Default returns the calibrated model for LPDDR3-1600 at 1.35 V nominal.
func Default() Model {
	nom := dram.NominalTiming()
	return Model{
		VNom:       VNominal,
		TauAct:     nom.TRCD / math.Log(2),                    // 75% from half-swing: ln((1-0.5)/(1-0.75)) = ln 2
		TauRestore: nom.TRAS / math.Log(25),                   // 98%: ln(0.5/0.02) = ln 25
		TauPre:     nom.TRP / math.Log(1/readyToActivateFrac), // within 2%: ln 50
		Gamma:      0.65,
		GuardbandV: 1.340,
		BERAtMinV:  1e-2,
		MinV:       V1025,
		LogSlope:   -20, // spans 1e-2 @1.025V to 1e-8 @1.325V, ~5e-9 at the guardband
	}
}

// Validate reports whether the model parameters are coherent.
func (m Model) Validate() error {
	switch {
	case m.VNom <= 0, m.TauAct <= 0, m.TauRestore <= 0, m.TauPre <= 0:
		return errors.New("voltscale: nominal parameters must be positive")
	case m.Gamma < 0:
		return errors.New("voltscale: Gamma must be non-negative")
	case m.GuardbandV <= m.MinV:
		return errors.New("voltscale: guardband must exceed MinV")
	case m.BERAtMinV <= 0 || m.BERAtMinV >= 1:
		return errors.New("voltscale: BERAtMinV must be in (0,1)")
	}
	return nil
}

// tauScale returns the RC slowdown factor at supply voltage v.
func (m Model) tauScale(v float64) float64 {
	if v <= 0 {
		panic("voltscale: non-positive supply voltage")
	}
	return math.Pow(m.VNom/v, m.Gamma)
}

// ArrayVoltageActivate returns Varray at time t (ns) after an ACT command
// at supply voltage v: an RC rise from v/2 toward v.
func (m Model) ArrayVoltageActivate(v, t float64) float64 {
	if t <= 0 {
		return v / 2
	}
	tau := m.TauAct * m.tauScale(v)
	return v - (v/2)*math.Exp(-t/tau)
}

// ArrayVoltagePrecharge returns Varray at time t (ns) after a PRE command
// issued when the array was fully restored to v: an RC decay toward v/2.
func (m Model) ArrayVoltagePrecharge(v, t float64) float64 {
	if t <= 0 {
		return v
	}
	tau := m.TauPre * m.tauScale(v)
	return v/2 + (v/2)*math.Exp(-t/tau)
}

// TRCD returns the minimum reliable tRCD (ns) at supply voltage v:
// the time for Varray to rise from v/2 to 75% of v.
func (m Model) TRCD(v float64) float64 {
	// Solve v - (v/2) e^{-t/tau} = 0.75 v  =>  e^{-t/tau} = 0.5  (per unit v)
	tau := m.TauAct * m.tauScale(v)
	return tau * math.Log((1-0.5)/(1-readyToAccessFrac))
}

// TRAS returns the minimum reliable tRAS (ns) at supply voltage v:
// the time for Varray to rise from v/2 to 98% of v.
func (m Model) TRAS(v float64) float64 {
	tau := m.TauRestore * m.tauScale(v)
	return tau * math.Log(0.5/(1-readyToPrechargeFrac))
}

// TRP returns the minimum reliable tRP (ns) at supply voltage v:
// the time for Varray to fall from v to within 2% of v/2.
func (m Model) TRP(v float64) float64 {
	tau := m.TauPre * m.tauScale(v)
	return tau * math.Log(1/readyToActivateFrac)
}

// Timing returns the full DRAM timing set at supply voltage v: the three
// voltage-sensitive parameters come from the circuit model, everything
// else (clock-bound parameters) is inherited from the nominal set.
func (m Model) Timing(v float64) dram.Timing {
	t := dram.NominalTiming()
	t.TRCD = m.TRCD(v)
	t.TRAS = m.TRAS(v)
	t.TRP = m.TRP(v)
	return t
}

// BER returns the raw bit error rate of cells operated at supply voltage v
// (uniform across the device; per-subarray variation is added by package
// errmodel). It is exactly 0 at or above the guardband voltage.
func (m Model) BER(v float64) float64 {
	if v >= m.GuardbandV {
		return 0
	}
	// log10 BER is linear in V, anchored at (MinV, BERAtMinV).
	log10 := math.Log10(m.BERAtMinV) + m.LogSlope*(v-m.MinV)
	ber := math.Pow(10, log10)
	if ber > 0.5 {
		ber = 0.5
	}
	return ber
}

// VoltageForBER returns the supply voltage at which the raw BER equals the
// requested rate (the inverse of BER on its exponential segment). It
// returns an error for rates outside the characterized range.
func (m Model) VoltageForBER(ber float64) (float64, error) {
	if ber <= 0 {
		return m.GuardbandV, nil
	}
	maxBER := m.BER(m.MinV)
	if ber > maxBER {
		return 0, fmt.Errorf("voltscale: BER %.3g above maximum characterized %.3g", ber, maxBER)
	}
	v := m.MinV + (math.Log10(ber)-math.Log10(m.BERAtMinV))/m.LogSlope
	return v, nil
}

// WaveformPoint is one sample of a Varray(t) waveform.
type WaveformPoint struct {
	TimeNs float64
	Varray float64
}

// ActivatePrechargeWaveform samples the Fig. 2(d) / Fig. 6 experiment:
// an ACT at t=0 followed by a PRE at t=preAt, sampled every dt ns until
// total ns. The precharge segment decays from whatever level activation
// reached, which reproduces the incomplete-restore behaviour visible at
// very low supply voltages.
func (m Model) ActivatePrechargeWaveform(v, preAt, dt, total float64) []WaveformPoint {
	if dt <= 0 || total <= 0 {
		panic("voltscale: waveform sampling step and span must be positive")
	}
	var out []WaveformPoint
	vAtPre := m.ArrayVoltageActivate(v, preAt)
	tauPre := m.TauPre * m.tauScale(v)
	for t := 0.0; t <= total+1e-9; t += dt {
		var va float64
		if t < preAt {
			va = m.ArrayVoltageActivate(v, t)
		} else {
			// decay from the level reached at preAt toward v/2
			va = v/2 + (vAtPre-v/2)*math.Exp(-(t-preAt)/tauPre)
		}
		out = append(out, WaveformPoint{TimeNs: t, Varray: va})
	}
	return out
}

// TimingTable summarizes timing vs voltage for reporting (Fig. 6).
type TimingTable struct {
	Voltage               []float64
	TRCDNs, TRASNs, TRPNs []float64
}

// TimingSweep evaluates the timing parameters across the given voltages.
func (m Model) TimingSweep(voltages []float64) TimingTable {
	tt := TimingTable{}
	for _, v := range voltages {
		tt.Voltage = append(tt.Voltage, v)
		tt.TRCDNs = append(tt.TRCDNs, m.TRCD(v))
		tt.TRASNs = append(tt.TRASNs, m.TRAS(v))
		tt.TRPNs = append(tt.TRPNs, m.TRP(v))
	}
	return tt
}
