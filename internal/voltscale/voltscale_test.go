package voltscale

import (
	"math"
	"testing"
	"testing/quick"

	"sparkxd/internal/dram"
)

func TestDefaultValid(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatalf("default model invalid: %v", err)
	}
}

func TestValidateRejectsBadModels(t *testing.T) {
	m := Default()
	m.TauAct = 0
	if m.Validate() == nil {
		t.Error("zero TauAct must be invalid")
	}
	m = Default()
	m.GuardbandV = m.MinV
	if m.Validate() == nil {
		t.Error("guardband <= MinV must be invalid")
	}
	m = Default()
	m.BERAtMinV = 2
	if m.Validate() == nil {
		t.Error("BER >= 1 must be invalid")
	}
}

func TestNominalTimingMatchesDatasheet(t *testing.T) {
	m := Default()
	nom := dram.NominalTiming()
	if math.Abs(m.TRCD(VNominal)-nom.TRCD) > 1e-9 {
		t.Errorf("tRCD at nominal = %v, want %v", m.TRCD(VNominal), nom.TRCD)
	}
	if math.Abs(m.TRAS(VNominal)-nom.TRAS) > 1e-9 {
		t.Errorf("tRAS at nominal = %v, want %v", m.TRAS(VNominal), nom.TRAS)
	}
	if math.Abs(m.TRP(VNominal)-nom.TRP) > 1e-9 {
		t.Errorf("tRP at nominal = %v, want %v", m.TRP(VNominal), nom.TRP)
	}
}

func TestTimingStretchesAtLowVoltage(t *testing.T) {
	m := Default()
	for _, v := range ReducedVoltages() {
		if m.TRCD(v) <= m.TRCD(VNominal) {
			t.Errorf("tRCD at %.3fV should exceed nominal", v)
		}
		if m.TRAS(v) <= m.TRAS(VNominal) {
			t.Errorf("tRAS at %.3fV should exceed nominal", v)
		}
		if m.TRP(v) <= m.TRP(VNominal) {
			t.Errorf("tRP at %.3fV should exceed nominal", v)
		}
	}
	// Stretch at the most aggressive point should be moderate (~15-25%),
	// matching the reduced-voltage characterization.
	stretch := m.TRCD(V1025) / m.TRCD(VNominal)
	if stretch < 1.10 || stretch > 1.35 {
		t.Errorf("tRCD stretch at 1.025V = %.3f, want within [1.10, 1.35]", stretch)
	}
}

func TestTimingMonotoneInVoltage(t *testing.T) {
	m := Default()
	vs := PaperVoltages() // descending
	for i := 1; i < len(vs); i++ {
		if m.TRCD(vs[i]) < m.TRCD(vs[i-1]) {
			t.Fatal("tRCD must grow as voltage decreases")
		}
	}
}

func TestActivationWaveformShape(t *testing.T) {
	m := Default()
	v := VNominal
	if got := m.ArrayVoltageActivate(v, 0); math.Abs(got-v/2) > 1e-12 {
		t.Errorf("Varray(0) = %v, want Vdd/2", got)
	}
	// Monotone rise toward v.
	prev := m.ArrayVoltageActivate(v, 0)
	for ti := 1; ti <= 80; ti++ {
		cur := m.ArrayVoltageActivate(v, float64(ti))
		if cur < prev {
			t.Fatal("activation waveform must be monotone non-decreasing")
		}
		if cur > v {
			t.Fatal("activation waveform must not overshoot Vsupply")
		}
		prev = cur
	}
	// Eventually approaches v.
	if m.ArrayVoltageActivate(v, 500) < 0.999*v {
		t.Error("activation should converge to Vsupply")
	}
}

func TestPrechargeWaveformShape(t *testing.T) {
	m := Default()
	v := VNominal
	if got := m.ArrayVoltagePrecharge(v, 0); got != v {
		t.Errorf("precharge waveform must start at Vsupply, got %v", got)
	}
	if m.ArrayVoltagePrecharge(v, 500) > v/2*1.001 {
		t.Error("precharge should converge to Vsupply/2")
	}
}

func TestTimingDefinitionsConsistentWithWaveform(t *testing.T) {
	m := Default()
	for _, v := range PaperVoltages() {
		// At t = tRCD the activation waveform must be at 75% of Vsupply.
		va := m.ArrayVoltageActivate(v, m.TRCD(v))
		if math.Abs(va-0.75*v) > 1e-9 {
			t.Errorf("V=%.3f: Varray(tRCD) = %v, want %v", v, va, 0.75*v)
		}
		// At t = tRP the precharge waveform must be within 2% of Vsupply/2.
		vp := m.ArrayVoltagePrecharge(v, m.TRP(v))
		if math.Abs(vp-v/2) > 0.02*v/2+1e-9 {
			t.Errorf("V=%.3f: Varray(tRP) = %v, not within 2%% of Vdd/2", v, vp)
		}
	}
}

func TestBERZeroAtNominal(t *testing.T) {
	m := Default()
	if m.BER(VNominal) != 0 {
		t.Fatal("BER at nominal voltage must be exactly 0")
	}
	if m.BER(1.345) != 0 {
		t.Fatal("BER above guardband must be 0")
	}
}

func TestBERMonotoneDecreasingInVoltage(t *testing.T) {
	m := Default()
	prev := math.Inf(1)
	for v := 1.0; v <= 1.36; v += 0.005 {
		b := m.BER(v)
		if b > prev+1e-18 {
			t.Fatalf("BER must not increase with voltage (V=%.3f)", v)
		}
		prev = b
	}
}

func TestBERSpansPaperRange(t *testing.T) {
	m := Default()
	bMin := m.BER(V1025)
	if bMin < 1e-3 || bMin > 1e-1 {
		t.Errorf("BER at 1.025V = %.3g, want ~1e-2 (Fig. 2(c))", bMin)
	}
	b1325 := m.BER(V1325)
	if b1325 < 1e-9 || b1325 > 1e-6 {
		t.Errorf("BER at 1.325V = %.3g, want ~1e-8..1e-7", b1325)
	}
}

func TestVoltageForBERInvertsBER(t *testing.T) {
	m := Default()
	for _, ber := range []float64{1e-8, 1e-6, 1e-4, 1e-3, 1e-2} {
		v, err := m.VoltageForBER(ber)
		if err != nil {
			t.Fatalf("VoltageForBER(%g): %v", ber, err)
		}
		got := m.BER(v)
		if math.Abs(math.Log10(got)-math.Log10(ber)) > 1e-6 {
			t.Errorf("BER(VoltageForBER(%g)) = %g", ber, got)
		}
	}
	if _, err := m.VoltageForBER(0.4); err == nil {
		t.Error("BER above characterized max must error")
	}
	v, err := m.VoltageForBER(0)
	if err != nil || v != m.GuardbandV {
		t.Error("BER 0 must map to the guardband voltage")
	}
}

func TestWaveformSamplerSegments(t *testing.T) {
	m := Default()
	wf := m.ActivatePrechargeWaveform(VNominal, 40, 1, 80)
	if len(wf) != 81 {
		t.Fatalf("want 81 samples, got %d", len(wf))
	}
	// Rising before PRE, falling after.
	if wf[10].Varray <= wf[0].Varray {
		t.Error("waveform should rise after ACT")
	}
	if wf[60].Varray >= wf[41].Varray {
		t.Error("waveform should fall after PRE")
	}
	// Continuity at the PRE boundary.
	if math.Abs(wf[40].Varray-m.ArrayVoltageActivate(VNominal, 40)) > 1e-9 {
		t.Error("waveform discontinuous at PRE")
	}
}

func TestLowerVoltageLowersWaveform(t *testing.T) {
	m := Default()
	hi := m.ActivatePrechargeWaveform(VNominal, 40, 5, 80)
	lo := m.ActivatePrechargeWaveform(V1025, 40, 5, 80)
	for i := range hi {
		if lo[i].Varray > hi[i].Varray+1e-12 {
			t.Fatalf("reduced-voltage waveform must lie below nominal at t=%v", hi[i].TimeNs)
		}
	}
}

func TestTimingSweep(t *testing.T) {
	m := Default()
	tt := m.TimingSweep(PaperVoltages())
	if len(tt.Voltage) != 6 || len(tt.TRCDNs) != 6 {
		t.Fatal("sweep must cover all requested voltages")
	}
	for i := range tt.Voltage {
		if tt.TRASNs[i] < tt.TRCDNs[i] {
			t.Error("tRAS must exceed tRCD at every voltage")
		}
	}
}

func TestTimingValidAcrossVoltages(t *testing.T) {
	m := Default()
	for _, v := range PaperVoltages() {
		if err := m.Timing(v).Validate(); err != nil {
			t.Errorf("timing at %.3fV invalid: %v", v, err)
		}
	}
}

// Property: the activation waveform never exceeds Vsupply and never drops
// below Vsupply/2 for any voltage/time in the practical range.
func TestActivationBoundsProperty(t *testing.T) {
	m := Default()
	f := func(vRaw, tRaw uint16) bool {
		v := 1.0 + float64(vRaw%400)/1000 // 1.000 .. 1.399
		tm := float64(tRaw % 2000)        // 0 .. 2000 ns
		va := m.ArrayVoltageActivate(v, tm)
		return va >= v/2-1e-12 && va <= v+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
