// Package rng provides deterministic, splittable pseudo-random number
// generation for the SparkXD simulators.
//
// Every stochastic component in the repository (spike encoders, weight
// initialization, weak-cell placement, error injection) draws from an
// explicit *Stream so that experiments are reproducible bit-for-bit and
// independent sub-experiments do not perturb each other's randomness.
//
// The core generator is xoshiro256**, seeded through SplitMix64 as
// recommended by its authors. Sub-streams are derived by hashing a label
// into the parent seed, which gives statistically independent streams
// without any shared mutable state.
package rng

import "math"

// splitMix64 advances a SplitMix64 state and returns the next output.
// It is used for seeding and for deriving sub-stream seeds.
func splitMix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Stream is a deterministic pseudo-random stream (xoshiro256**).
// The zero value is not usable; construct with New or Derive.
type Stream struct {
	s0, s1, s2, s3 uint64

	// cached second normal variate for the Box-Muller transform
	haveGauss bool
	gauss     float64
}

// New returns a Stream seeded from the given 64-bit seed.
func New(seed uint64) *Stream {
	st := seed
	r := &Stream{}
	r.s0 = splitMix64(&st)
	r.s1 = splitMix64(&st)
	r.s2 = splitMix64(&st)
	r.s3 = splitMix64(&st)
	return r
}

// fnv1a hashes a label into 64 bits (FNV-1a), used for sub-stream derivation.
func fnv1a(label string) uint64 {
	const (
		offset = 0xcbf29ce484222325
		prime  = 0x100000001b3
	)
	h := uint64(offset)
	for i := 0; i < len(label); i++ {
		h ^= uint64(label[i])
		h *= prime
	}
	return h
}

// Derive returns a new independent Stream obtained by mixing the given
// label into this stream's identity. Deriving the same label twice yields
// identical streams; different labels yield statistically independent ones.
// Derive does not advance the parent stream.
func (r *Stream) Derive(label string) *Stream {
	seed := r.s0 ^ (r.s1 << 1) ^ fnv1a(label)
	return New(seed)
}

// DeriveIndex is Derive for integer labels, convenient in loops.
func (r *Stream) DeriveIndex(label string, idx int) *Stream {
	seed := r.s0 ^ (r.s1 << 1) ^ fnv1a(label) ^ (0x9e3779b97f4a7c15 * uint64(idx+1))
	return New(seed)
}

// SeedIdentity returns the two state words Derive and DeriveIndex mix
// into sub-stream seeds. Two streams with equal SeedIdentity derive
// identical sub-streams for every (label, index), so callers can use it
// to key caches of derivation-only work — e.g. spike trains encoded from
// per-sample derived streams — without consuming any stream state.
func (r *Stream) SeedIdentity() [2]uint64 { return [2]uint64{r.s0, r.s1} }

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *Stream) Uint64() uint64 {
	result := rotl(r.s1*5, 7) * 9
	t := r.s1 << 17
	r.s2 ^= r.s0
	r.s3 ^= r.s1
	r.s1 ^= r.s2
	r.s0 ^= r.s3
	r.s2 ^= t
	r.s3 = rotl(r.s3, 45)
	return result
}

// Uint32 returns the next 32 uniformly distributed bits.
func (r *Stream) Uint32() uint32 { return uint32(r.Uint64() >> 32) }

// Intn returns a uniformly distributed int in [0, n). It panics if n <= 0.
func (r *Stream) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Lemire's multiply-shift rejection method for unbiased bounded ints.
	bound := uint64(n)
	for {
		x := r.Uint64()
		hi, lo := mul128(x, bound)
		if lo >= bound || lo >= (-bound)%bound {
			return int(hi)
		}
	}
}

// mul128 returns the 128-bit product of a and b as (hi, lo).
func mul128(a, b uint64) (hi, lo uint64) {
	const mask = 0xffffffff
	aLo, aHi := a&mask, a>>32
	bLo, bHi := b&mask, b>>32
	t := aLo * bLo
	lo = t & mask
	c := t >> 32
	t = aHi*bLo + c
	mid := t & mask
	hiPart := t >> 32
	t = aLo*bHi + mid
	lo |= (t & mask) << 32
	hi = aHi*bHi + hiPart + (t >> 32)
	return hi, lo
}

// Int63n returns a uniformly distributed int64 in [0, n). It panics if n <= 0.
func (r *Stream) Int63n(n int64) int64 {
	if n <= 0 {
		panic("rng: Int63n with non-positive n")
	}
	for {
		v := int64(r.Uint64() >> 1)
		if v < (1<<62)/n*n || n&(n-1) == 0 {
			return v % n
		}
	}
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Stream) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Float32 returns a uniform float32 in [0, 1).
func (r *Stream) Float32() float32 {
	return float32(r.Uint64()>>40) / (1 << 24)
}

// Bernoulli returns true with probability p.
func (r *Stream) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// NormFloat64 returns a standard normal variate (Box-Muller).
func (r *Stream) NormFloat64() float64 {
	if r.haveGauss {
		r.haveGauss = false
		return r.gauss
	}
	var u, v, s float64
	for {
		u = 2*r.Float64() - 1
		v = 2*r.Float64() - 1
		s = u*u + v*v
		if s > 0 && s < 1 {
			break
		}
	}
	f := math.Sqrt(-2 * math.Log(s) / s)
	r.gauss = v * f
	r.haveGauss = true
	return u * f
}

// Normal returns a normal variate with the given mean and stddev.
func (r *Stream) Normal(mean, stddev float64) float64 {
	return mean + stddev*r.NormFloat64()
}

// ExpFloat64 returns an exponential variate with rate 1.
func (r *Stream) ExpFloat64() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}

// Poisson returns a Poisson variate with the given mean lambda.
// For small lambda it uses Knuth's product method; for large lambda it
// uses the PTRS transformed-rejection method of Hörmann (1993), which is
// O(1) per sample.
func (r *Stream) Poisson(lambda float64) int {
	switch {
	case lambda <= 0:
		return 0
	case lambda < 30:
		l := math.Exp(-lambda)
		k := 0
		p := 1.0
		for {
			p *= r.Float64()
			if p <= l {
				return k
			}
			k++
		}
	default:
		return r.poissonPTRS(lambda)
	}
}

// poissonPTRS implements Hörmann's PTRS algorithm for lambda >= 10.
func (r *Stream) poissonPTRS(lambda float64) int {
	b := 0.931 + 2.53*math.Sqrt(lambda)
	a := -0.059 + 0.02483*b
	invAlpha := 1.1239 + 1.1328/(b-3.4)
	vr := 0.9277 - 3.6224/(b-2)
	for {
		u := r.Float64() - 0.5
		v := r.Float64()
		us := 0.5 - math.Abs(u)
		k := math.Floor((2*a/us+b)*u + lambda + 0.43)
		if us >= 0.07 && v <= vr {
			return int(k)
		}
		if k < 0 || (us < 0.013 && v > us) {
			continue
		}
		lg, _ := math.Lgamma(k + 1)
		if math.Log(v*invAlpha/(a/(us*us)+b)) <= k*math.Log(lambda)-lambda-lg {
			return int(k)
		}
	}
}

// Perm returns a pseudo-random permutation of [0, n) (Fisher-Yates).
func (r *Stream) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle pseudo-randomizes the order of n elements using the given swap.
func (r *Stream) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// SampleK returns k distinct indices uniformly drawn from [0, n) using
// Floyd's algorithm; order is unspecified but deterministic.
// It panics if k > n or k < 0.
func (r *Stream) SampleK(n, k int) []int {
	if k < 0 || k > n {
		panic("rng: SampleK with k out of range")
	}
	seen := make(map[int]struct{}, k)
	out := make([]int, 0, k)
	for j := n - k; j < n; j++ {
		t := r.Intn(j + 1)
		if _, dup := seen[t]; dup {
			t = j
		}
		seen[t] = struct{}{}
		out = append(out, t)
	}
	return out
}

// Binomial returns a binomial variate Bin(n, p). It uses direct Bernoulli
// summation for small n*min(p,1-p) and a normal approximation with
// continuity correction plus clamping for large counts, which is accurate
// enough for the error-count use here (picking the number of weak cells to
// fail in a region) and O(1).
func (r *Stream) Binomial(n int, p float64) int {
	if n <= 0 || p <= 0 {
		return 0
	}
	if p >= 1 {
		return n
	}
	mean := float64(n) * p
	if mean < 64 || float64(n)*(1-p) < 64 {
		// Exact-ish via waiting-time (geometric skips) — O(np) expected.
		count := 0
		i := 0
		logq := math.Log1p(-p)
		for {
			u := r.Float64()
			if u <= 0 {
				u = math.SmallestNonzeroFloat64
			}
			skip := int(math.Floor(math.Log(u) / logq))
			i += skip + 1
			if i > n {
				return count
			}
			count++
		}
	}
	sd := math.Sqrt(mean * (1 - p))
	v := math.Round(r.Normal(mean, sd))
	if v < 0 {
		v = 0
	}
	if v > float64(n) {
		v = float64(n)
	}
	return int(v)
}
