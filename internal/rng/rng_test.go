package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams with same seed diverged at step %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("streams with different seeds matched %d/100 outputs", same)
	}
}

func TestDeriveIndependence(t *testing.T) {
	parent := New(7)
	a := parent.Derive("weights")
	b := parent.Derive("errors")
	c := parent.Derive("weights")
	if a.Uint64() != c.Uint64() {
		t.Fatal("same label must derive identical streams")
	}
	if a.Uint64() == b.Uint64() {
		t.Error("different labels should almost surely differ")
	}
}

func TestDeriveDoesNotAdvanceParent(t *testing.T) {
	p1 := New(9)
	p2 := New(9)
	_ = p1.Derive("x")
	if p1.Uint64() != p2.Uint64() {
		t.Fatal("Derive must not advance the parent stream")
	}
}

func TestDeriveIndex(t *testing.T) {
	p := New(5)
	a := p.DeriveIndex("epoch", 0)
	b := p.DeriveIndex("epoch", 1)
	if a.Uint64() == b.Uint64() {
		t.Error("DeriveIndex with different indices should differ")
	}
	c := p.DeriveIndex("epoch", 0)
	a2 := p.DeriveIndex("epoch", 0)
	if c.Uint64() != a2.Uint64() {
		t.Error("DeriveIndex must be deterministic")
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(11)
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Errorf("uniform mean = %v, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(13)
	for _, n := range []int{1, 2, 3, 7, 10, 100, 1 << 20} {
		for i := 0; i < 1000; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnUniformity(t *testing.T) {
	r := New(17)
	const n, trials = 10, 100000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(trials) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d: count %d deviates too far from %v", i, c, want)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) should panic")
		}
	}()
	New(1).Intn(0)
}

func TestBernoulliEdges(t *testing.T) {
	r := New(19)
	for i := 0; i < 100; i++ {
		if r.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !r.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
	}
}

func TestBernoulliRate(t *testing.T) {
	r := New(23)
	const p, n = 0.3, 100000
	hits := 0
	for i := 0; i < n; i++ {
		if r.Bernoulli(p) {
			hits++
		}
	}
	rate := float64(hits) / n
	if math.Abs(rate-p) > 0.01 {
		t.Errorf("Bernoulli rate = %v, want ~%v", rate, p)
	}
}

func TestNormalMoments(t *testing.T) {
	r := New(29)
	const n = 200000
	var sum, sq float64
	for i := 0; i < n; i++ {
		v := r.Normal(2, 3)
		sum += v
		sq += v * v
	}
	mean := sum / n
	variance := sq/n - mean*mean
	if math.Abs(mean-2) > 0.05 {
		t.Errorf("normal mean = %v, want ~2", mean)
	}
	if math.Abs(variance-9) > 0.3 {
		t.Errorf("normal variance = %v, want ~9", variance)
	}
}

func TestPoissonSmallLambda(t *testing.T) {
	r := New(31)
	const lambda, n = 3.5, 100000
	var sum, sq float64
	for i := 0; i < n; i++ {
		v := float64(r.Poisson(lambda))
		sum += v
		sq += v * v
	}
	mean := sum / n
	variance := sq/n - mean*mean
	if math.Abs(mean-lambda) > 0.05 {
		t.Errorf("poisson mean = %v, want ~%v", mean, lambda)
	}
	if math.Abs(variance-lambda) > 0.15 {
		t.Errorf("poisson variance = %v, want ~%v", variance, lambda)
	}
}

func TestPoissonLargeLambda(t *testing.T) {
	r := New(37)
	const lambda, n = 120.0, 50000
	var sum, sq float64
	for i := 0; i < n; i++ {
		v := float64(r.Poisson(lambda))
		sum += v
		sq += v * v
	}
	mean := sum / n
	variance := sq/n - mean*mean
	if math.Abs(mean-lambda) > 0.5 {
		t.Errorf("poisson mean = %v, want ~%v", mean, lambda)
	}
	if math.Abs(variance-lambda) > 5 {
		t.Errorf("poisson variance = %v, want ~%v", variance, lambda)
	}
}

func TestPoissonZero(t *testing.T) {
	r := New(41)
	if r.Poisson(0) != 0 || r.Poisson(-1) != 0 {
		t.Fatal("Poisson of non-positive lambda must be 0")
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(43)
	for _, n := range []int{0, 1, 2, 10, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) length = %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) not a permutation: %v", n, p)
			}
			seen[v] = true
		}
	}
}

func TestSampleKDistinct(t *testing.T) {
	r := New(47)
	for trial := 0; trial < 100; trial++ {
		s := r.SampleK(50, 10)
		if len(s) != 10 {
			t.Fatalf("SampleK returned %d values", len(s))
		}
		seen := map[int]bool{}
		for _, v := range s {
			if v < 0 || v >= 50 || seen[v] {
				t.Fatalf("SampleK produced invalid/duplicate value %d in %v", v, s)
			}
			seen[v] = true
		}
	}
}

func TestSampleKFull(t *testing.T) {
	r := New(53)
	s := r.SampleK(10, 10)
	seen := make([]bool, 10)
	for _, v := range s {
		seen[v] = true
	}
	for i, ok := range seen {
		if !ok {
			t.Fatalf("SampleK(10,10) missing %d", i)
		}
	}
}

func TestBinomialMoments(t *testing.T) {
	r := New(59)
	const n, p, trials = 1000, 0.01, 20000
	var sum, sq float64
	for i := 0; i < trials; i++ {
		v := float64(r.Binomial(n, p))
		sum += v
		sq += v * v
	}
	mean := sum / trials
	variance := sq/trials - mean*mean
	if math.Abs(mean-10) > 0.3 {
		t.Errorf("binomial mean = %v, want ~10", mean)
	}
	if math.Abs(variance-9.9) > 1.0 {
		t.Errorf("binomial variance = %v, want ~9.9", variance)
	}
}

func TestBinomialLarge(t *testing.T) {
	r := New(61)
	const n, p, trials = 1 << 20, 0.5, 2000
	var sum float64
	for i := 0; i < trials; i++ {
		v := r.Binomial(n, p)
		if v < 0 || v > n {
			t.Fatalf("Binomial out of range: %d", v)
		}
		sum += float64(v)
	}
	mean := sum / trials
	want := float64(n) * p
	if math.Abs(mean-want)/want > 0.01 {
		t.Errorf("binomial mean = %v, want ~%v", mean, want)
	}
}

func TestBinomialEdges(t *testing.T) {
	r := New(67)
	if r.Binomial(0, 0.5) != 0 {
		t.Error("Binomial(0, p) must be 0")
	}
	if r.Binomial(10, 0) != 0 {
		t.Error("Binomial(n, 0) must be 0")
	}
	if r.Binomial(10, 1) != 10 {
		t.Error("Binomial(n, 1) must be n")
	}
}

func TestMul128(t *testing.T) {
	cases := []struct {
		a, b, hi, lo uint64
	}{
		{0, 0, 0, 0},
		{1, 1, 0, 1},
		{math.MaxUint64, 2, 1, math.MaxUint64 - 1},
		{1 << 32, 1 << 32, 1, 0},
		{math.MaxUint64, math.MaxUint64, math.MaxUint64 - 1, 1},
	}
	for _, c := range cases {
		hi, lo := mul128(c.a, c.b)
		if hi != c.hi || lo != c.lo {
			t.Errorf("mul128(%d,%d) = (%d,%d), want (%d,%d)", c.a, c.b, hi, lo, c.hi, c.lo)
		}
	}
}

func TestMul128Property(t *testing.T) {
	// hi*2^64 + lo == a*b (mod 2^64) must hold for the low part:
	// lo == a*b with wrapping multiplication.
	f := func(a, b uint64) bool {
		_, lo := mul128(a, b)
		return lo == a*b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestExpFloat64Positive(t *testing.T) {
	r := New(71)
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		v := r.ExpFloat64()
		if v < 0 {
			t.Fatalf("ExpFloat64 negative: %v", v)
		}
		sum += v
	}
	if math.Abs(sum/n-1) > 0.02 {
		t.Errorf("exponential mean = %v, want ~1", sum/n)
	}
}

func TestFloat32Range(t *testing.T) {
	r := New(73)
	for i := 0; i < 10000; i++ {
		v := r.Float32()
		if v < 0 || v >= 1 {
			t.Fatalf("Float32 out of [0,1): %v", v)
		}
	}
}

func TestInt63n(t *testing.T) {
	r := New(79)
	for _, n := range []int64{1, 5, 1 << 40} {
		for i := 0; i < 1000; i++ {
			v := r.Int63n(n)
			if v < 0 || v >= n {
				t.Fatalf("Int63n(%d) = %d", n, v)
			}
		}
	}
}
