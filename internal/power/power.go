// Package power is the DRAM energy model of the SparkXD reproduction.
// It stands in for the DRAMPower simulator (ref [8] of the paper): energy
// is computed at command granularity from IDD current specifications, the
// supply voltage, and the (voltage-dependent) timing parameters, exactly
// the structure of DRAMPower's equations:
//
//	E(ACT)  = (IDD0  - IDD3N) * V * tRAS
//	E(PRE)  = (IDD0  - IDD2N) * V * tRP
//	E(RD)   = (IDD4R - IDD3N) * V * tBURST + P_IO * tBURST
//	E(WR)   = (IDD4W - IDD3N) * V * tBURST + P_IO * tBURST
//	E(REF)  = (IDD5  - IDD3N) * V * tRFC
//	E(BG)   = IDD3N * V * t_active  +  IDD2N * V * t_idle
//
// Reduced-voltage operation affects the model twice, as in the paper's
// tool flow (Fig. 10): the supply voltage V itself drops and the IDD
// currents shrink with it (I ~ (V/Vnom)^CurrentExponent, fitted to the
// reduced-voltage characterization so that per-access savings reproduce
// Table I: 3.92/14.29/24.33/33.59/42.40% at 1.325..1.025 V), while the
// circuit model stretches tRCD/tRAS/tRP, which is why row misses and
// conflicts save less energy than row hits (the 31%-42% range of
// Fig. 2(b)).
package power

import (
	"errors"
	"math"

	"sparkxd/internal/dram"
	"sparkxd/internal/voltscale"
)

// Currents holds the IDD current specification in amperes at the nominal
// supply voltage. Names follow the JEDEC/DRAMPower convention.
type Currents struct {
	IDD0  float64 // one-bank ACT-PRE cycling current
	IDD2N float64 // precharge standby current
	IDD3N float64 // active standby current
	IDD4R float64 // burst read current
	IDD4W float64 // burst write current
	IDD5  float64 // refresh current
}

// Validate checks the internal ordering constraints of an IDD set.
func (c Currents) Validate() error {
	switch {
	case c.IDD0 <= 0, c.IDD2N <= 0, c.IDD3N <= 0, c.IDD4R <= 0, c.IDD4W <= 0, c.IDD5 <= 0:
		return errors.New("power: IDD currents must be positive")
	case c.IDD3N <= c.IDD2N:
		return errors.New("power: IDD3N (active standby) must exceed IDD2N")
	case c.IDD4R <= c.IDD3N, c.IDD4W <= c.IDD3N:
		return errors.New("power: burst currents must exceed active standby")
	case c.IDD0 <= c.IDD2N:
		return errors.New("power: IDD0 must exceed IDD2N")
	}
	return nil
}

// Model is a command-level DRAM energy model.
type Model struct {
	Currents Currents
	// VNom is the nominal supply voltage the currents are specified at.
	VNom float64
	// CurrentExponent is the exponent of the current-vs-voltage scaling
	// I(V) = I_nom * (V/VNom)^CurrentExponent. 1.01 fits Table I.
	CurrentExponent float64
	// IOReadPowerW / IOWritePowerW model the I/O + on-die-termination
	// power burned during a data burst (scales with V^2 like CMOS I/O).
	IOReadPowerW  float64
	IOWritePowerW float64
	// Circuit supplies the voltage-dependent timing parameters.
	Circuit voltscale.Model
}

// Default returns the LPDDR3-1600 4Gb energy model calibrated so that the
// per-condition access energies at 1.35 V match Fig. 2(b) of the paper
// (hit ~2 nJ, miss ~5.3 nJ, conflict ~7.2 nJ).
func Default() Model {
	return Model{
		Currents: Currents{
			IDD0:  0.093, // 93 mA
			IDD2N: 0.015,
			IDD3N: 0.035,
			IDD4R: 0.260,
			IDD4W: 0.240,
			IDD5:  0.180,
		},
		VNom:            voltscale.VNominal,
		CurrentExponent: 1.01,
		IOReadPowerW:    0.100,
		IOWritePowerW:   0.090,
		Circuit:         voltscale.Default(),
	}
}

// Validate reports whether the model is coherent.
func (m Model) Validate() error {
	if err := m.Currents.Validate(); err != nil {
		return err
	}
	if m.VNom <= 0 {
		return errors.New("power: nominal voltage must be positive")
	}
	if m.CurrentExponent < 0 {
		return errors.New("power: current exponent must be non-negative")
	}
	return m.Circuit.Validate()
}

// currentScale returns I(V)/I(VNom).
func (m Model) currentScale(v float64) float64 {
	return math.Pow(v/m.VNom, m.CurrentExponent)
}

// ioScale returns P_IO(V)/P_IO(VNom); I/O power is CMOS-like (~V^2 * f,
// with the same slight superlinearity as the core currents).
func (m Model) ioScale(v float64) float64 {
	return math.Pow(v/m.VNom, 1+m.CurrentExponent)
}

// deltaEnergyNJ returns (I_hi - I_lo) * V * t in nanojoules with currents
// scaled to the supply voltage v and t in nanoseconds.
func (m Model) deltaEnergyNJ(iHi, iLo, v, tNs float64) float64 {
	return (iHi - iLo) * m.currentScale(v) * v * tNs
}

// ActEnergyNJ returns the energy of one ACT command at supply voltage v.
// The row restore occupies tRAS(v), which stretches at reduced voltage.
func (m Model) ActEnergyNJ(v float64) float64 {
	t := m.Circuit.TRAS(v)
	return m.deltaEnergyNJ(m.Currents.IDD0, m.Currents.IDD3N, v, t)
}

// PreEnergyNJ returns the energy of one PRE command at supply voltage v.
func (m Model) PreEnergyNJ(v float64) float64 {
	t := m.Circuit.TRP(v)
	return m.deltaEnergyNJ(m.Currents.IDD0, m.Currents.IDD2N, v, t)
}

// ReadEnergyNJ returns the energy of one RD burst at supply voltage v.
func (m Model) ReadEnergyNJ(v float64) float64 {
	tb := dram.NominalTiming().TBURST // clock-bound, voltage-independent
	core := m.deltaEnergyNJ(m.Currents.IDD4R, m.Currents.IDD3N, v, tb)
	io := m.IOReadPowerW * m.ioScale(v) * tb
	return core + io
}

// WriteEnergyNJ returns the energy of one WR burst at supply voltage v.
func (m Model) WriteEnergyNJ(v float64) float64 {
	tb := dram.NominalTiming().TBURST
	core := m.deltaEnergyNJ(m.Currents.IDD4W, m.Currents.IDD3N, v, tb)
	io := m.IOWritePowerW * m.ioScale(v) * tb
	return core + io
}

// RefreshEnergyNJ returns the energy of one REF command at supply voltage v.
func (m Model) RefreshEnergyNJ(v float64) float64 {
	t := dram.NominalTiming().TRFC
	return m.deltaEnergyNJ(m.Currents.IDD5, m.Currents.IDD3N, v, t)
}

// BackgroundPowerW returns the standby power draw at supply voltage v:
// active standby when a row is open, precharge standby otherwise.
func (m Model) BackgroundPowerW(active bool, v float64) float64 {
	i := m.Currents.IDD2N
	if active {
		i = m.Currents.IDD3N
	}
	return i * m.currentScale(v) * v
}

// AccessEnergyNJ returns the energy of one column read access under the
// given row-buffer outcome (Fig. 2(b) of the paper):
//
//	hit      = RD
//	miss     = ACT + RD
//	conflict = PRE + ACT + RD
func (m Model) AccessEnergyNJ(class dram.AccessClass, v float64) float64 {
	e := m.ReadEnergyNJ(v)
	switch class {
	case dram.AccessHit:
	case dram.AccessMiss:
		e += m.ActEnergyNJ(v)
	case dram.AccessConflict:
		e += m.PreEnergyNJ(v) + m.ActEnergyNJ(v)
	default:
		panic("power: unknown access class")
	}
	return e
}

// WriteAccessEnergyNJ is AccessEnergyNJ for write accesses.
func (m Model) WriteAccessEnergyNJ(class dram.AccessClass, v float64) float64 {
	e := m.WriteEnergyNJ(v)
	switch class {
	case dram.AccessHit:
	case dram.AccessMiss:
		e += m.ActEnergyNJ(v)
	case dram.AccessConflict:
		e += m.PreEnergyNJ(v) + m.ActEnergyNJ(v)
	default:
		panic("power: unknown access class")
	}
	return e
}

// AccessSavings returns the fractional energy-per-access saving of
// operating at voltage v relative to the nominal voltage, for the given
// access class: 1 - E(v)/E(VNom).
func (m Model) AccessSavings(class dram.AccessClass, v float64) float64 {
	return 1 - m.AccessEnergyNJ(class, v)/m.AccessEnergyNJ(class, m.VNom)
}

// Tally counts commands and state residency for a simulation interval.
// It is produced by the memory controller and consumed by Energy.
type Tally struct {
	NACT, NPRE, NRD, NWR, NREF int64
	// ActiveNs / IdleNs is time spent with at least one row open vs all
	// banks precharged, for background energy.
	ActiveNs, IdleNs float64
}

// Add accumulates another tally into t.
func (t *Tally) Add(o Tally) {
	t.NACT += o.NACT
	t.NPRE += o.NPRE
	t.NRD += o.NRD
	t.NWR += o.NWR
	t.NREF += o.NREF
	t.ActiveNs += o.ActiveNs
	t.IdleNs += o.IdleNs
}

// Breakdown is the energy decomposition of a simulation interval, in nJ.
type Breakdown struct {
	ActNJ, PreNJ, RdNJ, WrNJ, RefNJ, BgNJ float64
}

// TotalNJ returns the sum of all components.
func (b Breakdown) TotalNJ() float64 {
	return b.ActNJ + b.PreNJ + b.RdNJ + b.WrNJ + b.RefNJ + b.BgNJ
}

// TotalMJ returns the total in millijoules (the unit of Fig. 12(a)).
func (b Breakdown) TotalMJ() float64 { return b.TotalNJ() * 1e-6 }

// Energy evaluates the full DRAMPower-style energy of a command tally at
// supply voltage v.
func (m Model) Energy(t Tally, v float64) Breakdown {
	return Breakdown{
		ActNJ: float64(t.NACT) * m.ActEnergyNJ(v),
		PreNJ: float64(t.NPRE) * m.PreEnergyNJ(v),
		RdNJ:  float64(t.NRD) * m.ReadEnergyNJ(v),
		WrNJ:  float64(t.NWR) * m.WriteEnergyNJ(v),
		RefNJ: float64(t.NREF) * m.RefreshEnergyNJ(v),
		BgNJ:  m.backgroundNJ(t, v),
	}
}

// backgroundNJ computes background energy: P[W] * t[ns] = nJ directly.
func (m Model) backgroundNJ(t Tally, v float64) float64 {
	return m.BackgroundPowerW(true, v)*t.ActiveNs + m.BackgroundPowerW(false, v)*t.IdleNs
}

// PaperTableISavings returns the per-access energy savings reported in
// Table I of the paper, used as the calibration reference by tests and by
// EXPERIMENTS.md comparisons. Keys are supply voltages.
func PaperTableISavings() map[float64]float64 {
	return map[float64]float64{
		voltscale.V1325: 0.0392,
		voltscale.V1250: 0.1429,
		voltscale.V1175: 0.2433,
		voltscale.V1100: 0.3359,
		voltscale.V1025: 0.4240,
	}
}
