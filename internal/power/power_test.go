package power

import (
	"math"
	"testing"

	"sparkxd/internal/dram"
	"sparkxd/internal/voltscale"
)

func TestDefaultValid(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatalf("default model invalid: %v", err)
	}
}

func TestCurrentsValidation(t *testing.T) {
	c := Default().Currents
	c.IDD3N = c.IDD2N
	if c.Validate() == nil {
		t.Error("IDD3N <= IDD2N must be invalid")
	}
	c = Default().Currents
	c.IDD4R = c.IDD3N
	if c.Validate() == nil {
		t.Error("IDD4R <= IDD3N must be invalid")
	}
	c = Default().Currents
	c.IDD0 = 0
	if c.Validate() == nil {
		t.Error("zero current must be invalid")
	}
}

// Fig. 2(b): at nominal voltage, hit < miss < conflict, with magnitudes in
// the few-nJ range shown by the paper (axis 0..8 nJ).
func TestAccessConditionOrderingAndMagnitude(t *testing.T) {
	m := Default()
	v := voltscale.VNominal
	hit := m.AccessEnergyNJ(dram.AccessHit, v)
	miss := m.AccessEnergyNJ(dram.AccessMiss, v)
	conflict := m.AccessEnergyNJ(dram.AccessConflict, v)
	if !(hit < miss && miss < conflict) {
		t.Fatalf("ordering violated: hit=%v miss=%v conflict=%v", hit, miss, conflict)
	}
	if hit < 1 || hit > 3.5 {
		t.Errorf("hit energy = %.2f nJ, want ~2 nJ", hit)
	}
	if miss < 4 || miss > 6.5 {
		t.Errorf("miss energy = %.2f nJ, want ~5.3 nJ", miss)
	}
	if conflict < 6 || conflict > 8 {
		t.Errorf("conflict energy = %.2f nJ, want ~7.2 nJ (axis tops at 8)", conflict)
	}
}

// Fig. 2(b): reduced voltage saves 31%-42% per access across conditions.
func TestReducedVoltageSavingsRange(t *testing.T) {
	m := Default()
	for _, class := range []dram.AccessClass{dram.AccessHit, dram.AccessMiss, dram.AccessConflict} {
		s := m.AccessSavings(class, voltscale.V1025)
		if s < 0.30 || s > 0.44 {
			t.Errorf("%v savings at 1.025V = %.1f%%, want within 31-42%%", class, s*100)
		}
	}
	// Hits (no ACT/PRE stretch) must save the most.
	sHit := m.AccessSavings(dram.AccessHit, voltscale.V1025)
	sConf := m.AccessSavings(dram.AccessConflict, voltscale.V1025)
	if sHit <= sConf {
		t.Errorf("hit savings (%.3f) should exceed conflict savings (%.3f)", sHit, sConf)
	}
}

// Table I: per-access (row-hit) savings must match the paper within 0.5 pp.
func TestTableISavings(t *testing.T) {
	m := Default()
	for v, want := range PaperTableISavings() {
		got := m.AccessSavings(dram.AccessHit, v)
		if math.Abs(got-want) > 0.005 {
			t.Errorf("per-access savings at %.3fV = %.2f%%, paper says %.2f%% (tol 0.5pp)",
				v, got*100, want*100)
		}
	}
}

func TestSavingsMonotoneInVoltage(t *testing.T) {
	m := Default()
	vs := voltscale.PaperVoltages()
	prev := -1.0
	for i := len(vs) - 1; i >= 0; i-- { // ascending voltage
		s := m.AccessSavings(dram.AccessHit, vs[i])
		if prev >= 0 && s > prev {
			t.Fatal("savings must shrink as voltage rises")
		}
		prev = s
	}
	if s := m.AccessSavings(dram.AccessHit, voltscale.VNominal); s != 0 {
		t.Errorf("savings at nominal voltage = %v, want 0", s)
	}
}

func TestCommandEnergiesPositive(t *testing.T) {
	m := Default()
	for _, v := range voltscale.PaperVoltages() {
		for name, e := range map[string]float64{
			"ACT": m.ActEnergyNJ(v),
			"PRE": m.PreEnergyNJ(v),
			"RD":  m.ReadEnergyNJ(v),
			"WR":  m.WriteEnergyNJ(v),
			"REF": m.RefreshEnergyNJ(v),
		} {
			if e <= 0 {
				t.Errorf("%s energy at %.3fV = %v, want > 0", name, v, e)
			}
		}
	}
}

func TestWriteAccessEnergy(t *testing.T) {
	m := Default()
	v := voltscale.VNominal
	wHit := m.WriteAccessEnergyNJ(dram.AccessHit, v)
	wConf := m.WriteAccessEnergyNJ(dram.AccessConflict, v)
	if wHit >= wConf {
		t.Error("write conflict must cost more than write hit")
	}
	if wHit != m.WriteEnergyNJ(v) {
		t.Error("write hit must equal pure burst energy")
	}
}

func TestBackgroundPower(t *testing.T) {
	m := Default()
	v := voltscale.VNominal
	pa := m.BackgroundPowerW(true, v)
	pi := m.BackgroundPowerW(false, v)
	if pa <= pi {
		t.Error("active standby must draw more than precharge standby")
	}
	if m.BackgroundPowerW(true, voltscale.V1025) >= pa {
		t.Error("background power must drop at reduced voltage")
	}
}

func TestEnergyBreakdown(t *testing.T) {
	m := Default()
	tally := Tally{NACT: 10, NPRE: 8, NRD: 100, NWR: 5, NREF: 2, ActiveNs: 1000, IdleNs: 500}
	b := m.Energy(tally, voltscale.VNominal)
	if b.ActNJ <= 0 || b.PreNJ <= 0 || b.RdNJ <= 0 || b.WrNJ <= 0 || b.RefNJ <= 0 || b.BgNJ <= 0 {
		t.Fatalf("all components must be positive: %+v", b)
	}
	want := b.ActNJ + b.PreNJ + b.RdNJ + b.WrNJ + b.RefNJ + b.BgNJ
	if math.Abs(b.TotalNJ()-want) > 1e-12 {
		t.Error("TotalNJ must sum the components")
	}
	if math.Abs(b.TotalMJ()-b.TotalNJ()*1e-6) > 1e-18 {
		t.Error("TotalMJ conversion wrong")
	}
	// Linearity: doubling the tally doubles every component.
	double := tally
	double.Add(tally)
	b2 := m.Energy(double, voltscale.VNominal)
	if math.Abs(b2.TotalNJ()-2*b.TotalNJ()) > 1e-9 {
		t.Error("energy must be linear in the tally")
	}
}

func TestTallyAdd(t *testing.T) {
	a := Tally{NACT: 1, NPRE: 2, NRD: 3, NWR: 4, NREF: 5, ActiveNs: 6, IdleNs: 7}
	b := Tally{NACT: 10, NPRE: 20, NRD: 30, NWR: 40, NREF: 50, ActiveNs: 60, IdleNs: 70}
	a.Add(b)
	if a.NACT != 11 || a.NPRE != 22 || a.NRD != 33 || a.NWR != 44 || a.NREF != 55 ||
		a.ActiveNs != 66 || a.IdleNs != 77 {
		t.Fatalf("Add result wrong: %+v", a)
	}
}

func TestZeroTallyZeroEnergy(t *testing.T) {
	m := Default()
	if m.Energy(Tally{}, voltscale.VNominal).TotalNJ() != 0 {
		t.Fatal("zero tally must cost zero energy")
	}
}

func TestAccessEnergyComposition(t *testing.T) {
	m := Default()
	v := voltscale.V1175
	missExtra := m.AccessEnergyNJ(dram.AccessMiss, v) - m.AccessEnergyNJ(dram.AccessHit, v)
	if math.Abs(missExtra-m.ActEnergyNJ(v)) > 1e-12 {
		t.Error("miss - hit must equal one ACT")
	}
	confExtra := m.AccessEnergyNJ(dram.AccessConflict, v) - m.AccessEnergyNJ(dram.AccessMiss, v)
	if math.Abs(confExtra-m.PreEnergyNJ(v)) > 1e-12 {
		t.Error("conflict - miss must equal one PRE")
	}
}
