// Package benchfmt parses `go test -bench` output and maintains the
// repo's committed benchmark baseline (BENCH_kernel.json). It backs the
// bench-record / bench-check scripts and the CI tolerance gate: record
// normalizes raw benchmark output into a stable JSON trajectory point,
// and Compare flags ns/op regressions beyond a tolerance.
//
// Aggregation is min-of-runs: benchmarks are run with fixed iteration
// counts (-benchtime=Nx) and -count>1, and the fastest run is kept per
// benchmark. On a noisy shared runner the minimum is the least-polluted
// estimate of the kernel's true cost; means and maxima drift with
// co-tenant load and would make the CI gate flaky.
package benchfmt

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Result is one benchmark's normalized measurement.
type Result struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// Baseline is the committed trajectory point: one Result per benchmark,
// keyed by the bare benchmark name (GOMAXPROCS suffix stripped).
type Baseline struct {
	// Note documents how to regenerate the file.
	Note       string            `json:"note"`
	Benchmarks map[string]Result `json:"benchmarks"`
}

// Parse reads `go test -bench` output and returns the min-of-runs Result
// per benchmark. Lines that are not benchmark measurements are ignored.
// A measurement line looks like:
//
//	BenchmarkLIFStep-4    2000    11426 ns/op    0 B/op    0 allocs/op
//
// The -4 procs suffix is stripped so baselines compare across machines.
func Parse(r io.Reader) (map[string]Result, error) {
	out := make(map[string]Result)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		name, res, ok := parseLine(sc.Text())
		if !ok {
			continue
		}
		prev, seen := out[name]
		if !seen || res.NsPerOp < prev.NsPerOp {
			out[name] = res
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

func parseLine(line string) (string, Result, bool) {
	f := strings.Fields(line)
	if len(f) < 4 || !strings.HasPrefix(f[0], "Benchmark") {
		return "", Result{}, false
	}
	name := f[0]
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	var res Result
	var haveNs bool
	// Fields come in "<value> <unit>" pairs after the iteration count.
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return "", Result{}, false
		}
		switch f[i+1] {
		case "ns/op":
			res.NsPerOp = v
			haveNs = true
		case "B/op":
			res.BytesPerOp = int64(v)
		case "allocs/op":
			res.AllocsPerOp = int64(v)
		}
	}
	if !haveNs {
		return "", Result{}, false
	}
	return name, res, true
}

// WriteBaseline serializes a baseline with stable key order and a
// trailing newline, suitable for committing.
func WriteBaseline(w io.Writer, b *Baseline) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(b)
}

// ReadBaseline parses a committed baseline file.
func ReadBaseline(r io.Reader) (*Baseline, error) {
	var b Baseline
	if err := json.NewDecoder(r).Decode(&b); err != nil {
		return nil, fmt.Errorf("benchfmt: baseline: %w", err)
	}
	if len(b.Benchmarks) == 0 {
		return nil, fmt.Errorf("benchfmt: baseline has no benchmarks")
	}
	return &b, nil
}

// Delta is one benchmark's comparison against the baseline.
type Delta struct {
	Name      string
	Base      Result
	Current   Result
	Ratio     float64 // current ns/op divided by baseline ns/op
	Regress   bool    // ratio exceeds 1 + tolerance
	Missing   bool    // present in baseline, absent from current run
	Untracked bool    // present in current run, absent from baseline
}

// Compare checks current results against a baseline with the given
// ns/op tolerance (0.25 = fail on >25% slowdown). Every baseline entry
// must appear in the current run; extra current benchmarks are reported
// as untracked but never fail the gate. Deltas are sorted by name.
func Compare(base *Baseline, current map[string]Result, tolerance float64) (deltas []Delta, ok bool) {
	ok = true
	for name, b := range base.Benchmarks {
		d := Delta{Name: name, Base: b}
		cur, found := current[name]
		if !found {
			d.Missing = true
			ok = false
		} else {
			d.Current = cur
			if b.NsPerOp > 0 {
				d.Ratio = cur.NsPerOp / b.NsPerOp
			}
			if d.Ratio > 1+tolerance {
				d.Regress = true
				ok = false
			}
		}
		deltas = append(deltas, d)
	}
	for name, cur := range current {
		if _, tracked := base.Benchmarks[name]; !tracked {
			deltas = append(deltas, Delta{Name: name, Current: cur, Untracked: true})
		}
	}
	sort.Slice(deltas, func(i, j int) bool { return deltas[i].Name < deltas[j].Name })
	return deltas, ok
}

// Format renders one delta as a fixed-width report line.
func (d Delta) Format() string {
	switch {
	case d.Missing:
		return fmt.Sprintf("%-28s MISSING (in baseline, not in current run)", d.Name)
	case d.Untracked:
		return fmt.Sprintf("%-28s %12.0f ns/op  (untracked: not in baseline)", d.Name, d.Current.NsPerOp)
	default:
		status := "ok"
		if d.Regress {
			status = "REGRESSION"
		}
		return fmt.Sprintf("%-28s %12.0f -> %12.0f ns/op  %+6.1f%%  %s",
			d.Name, d.Base.NsPerOp, d.Current.NsPerOp, (d.Ratio-1)*100, status)
	}
}
