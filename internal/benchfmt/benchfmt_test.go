package benchfmt

import (
	"bytes"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: sparkxd
cpu: some shared runner
BenchmarkLIFStep-4          	    2000	     11426 ns/op	       0 B/op	       0 allocs/op
BenchmarkLIFStep-4          	    2000	     11120 ns/op	       0 B/op	       0 allocs/op
BenchmarkLIFStep-4          	    2000	     11893 ns/op	       0 B/op	       0 allocs/op
BenchmarkEvaluate-4         	      20	  14200000 ns/op	   99500 B/op	      28 allocs/op
BenchmarkEvaluate-4         	      20	  14800000 ns/op	   99500 B/op	      28 allocs/op
PASS
ok  	sparkxd	12.3s
`

func TestParseMinOfRuns(t *testing.T) {
	got, err := Parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2", len(got))
	}
	lif := got["BenchmarkLIFStep"]
	if lif.NsPerOp != 11120 {
		t.Errorf("LIFStep min ns/op = %v, want 11120", lif.NsPerOp)
	}
	ev := got["BenchmarkEvaluate"]
	if ev.NsPerOp != 14200000 || ev.BytesPerOp != 99500 || ev.AllocsPerOp != 28 {
		t.Errorf("Evaluate = %+v", ev)
	}
}

func TestParseIgnoresNonBenchmarkLines(t *testing.T) {
	got, err := Parse(strings.NewReader("PASS\nok sparkxd 1s\nBenchmarkBroken-4 oops\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("parsed %d benchmarks from garbage, want 0", len(got))
	}
}

func TestBaselineRoundtrip(t *testing.T) {
	results, err := Parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	b := &Baseline{Note: "regen with scripts/bench-record.sh", Benchmarks: results}
	var buf bytes.Buffer
	if err := WriteBaseline(&buf, b); err != nil {
		t.Fatal(err)
	}
	back, err := ReadBaseline(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Note != b.Note || len(back.Benchmarks) != len(b.Benchmarks) {
		t.Fatalf("roundtrip mismatch: %+v", back)
	}
	if back.Benchmarks["BenchmarkLIFStep"] != b.Benchmarks["BenchmarkLIFStep"] {
		t.Fatal("roundtrip changed a result")
	}

	// Serialization must be deterministic for clean diffs.
	var buf2 bytes.Buffer
	if err := WriteBaseline(&buf2, b); err != nil {
		t.Fatal(err)
	}
	if buf2.String() == "" || buf2.String() != bytesOf(b) {
		t.Fatal("WriteBaseline not deterministic")
	}
}

func bytesOf(b *Baseline) string {
	var buf bytes.Buffer
	_ = WriteBaseline(&buf, b)
	return buf.String()
}

func TestReadBaselineRejectsEmpty(t *testing.T) {
	if _, err := ReadBaseline(strings.NewReader(`{"note":"x"}`)); err == nil {
		t.Fatal("empty baseline must error")
	}
	if _, err := ReadBaseline(strings.NewReader("not json")); err == nil {
		t.Fatal("bad JSON must error")
	}
}

func TestCompareGate(t *testing.T) {
	base := &Baseline{Benchmarks: map[string]Result{
		"BenchmarkA": {NsPerOp: 1000},
		"BenchmarkB": {NsPerOp: 1000},
		"BenchmarkC": {NsPerOp: 1000},
	}}
	current := map[string]Result{
		"BenchmarkA": {NsPerOp: 1200}, // +20%: inside 25% tolerance
		"BenchmarkB": {NsPerOp: 1300}, // +30%: regression
		// BenchmarkC missing
		"BenchmarkNew": {NsPerOp: 50}, // untracked, must not fail gate
	}
	deltas, ok := Compare(base, current, 0.25)
	if ok {
		t.Fatal("gate passed despite regression and missing benchmark")
	}
	byName := map[string]Delta{}
	for _, d := range deltas {
		byName[d.Name] = d
	}
	if byName["BenchmarkA"].Regress {
		t.Error("A within tolerance flagged as regression")
	}
	if !byName["BenchmarkB"].Regress {
		t.Error("B +30% not flagged")
	}
	if !byName["BenchmarkC"].Missing {
		t.Error("C not flagged missing")
	}
	if !byName["BenchmarkNew"].Untracked {
		t.Error("new benchmark not flagged untracked")
	}

	// Ratios and formatting sanity.
	if r := byName["BenchmarkB"].Ratio; r < 1.29 || r > 1.31 {
		t.Errorf("B ratio = %v", r)
	}
	if !strings.Contains(byName["BenchmarkB"].Format(), "REGRESSION") {
		t.Errorf("B format = %q", byName["BenchmarkB"].Format())
	}

	// Improvement-only run passes.
	good := map[string]Result{
		"BenchmarkA": {NsPerOp: 900},
		"BenchmarkB": {NsPerOp: 1000},
		"BenchmarkC": {NsPerOp: 1249},
	}
	if _, ok := Compare(base, good, 0.25); !ok {
		t.Fatal("gate failed a within-tolerance run")
	}
}
