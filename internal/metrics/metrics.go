// Package metrics is a dependency-free metrics registry for the
// sparkxd serving layers (DESIGN.md §11): counters, gauges, and
// fixed-bucket histograms, exposed in the Prometheus text format over
// a plain http.Handler.
//
// Two properties shape the design:
//
//   - No dependencies. The module is stdlib-only; this package keeps it
//     that way while staying scrape-compatible with any Prometheus
//     collector (text format 0.0.4).
//   - Deterministic exposition. Families are emitted sorted by name and
//     series sorted by label values, so tests can assert on exact output
//     and two scrapes of the same state are byte-identical.
//
// Instruments are cheap enough for hot paths: counters and gauges are
// single atomics, histogram observation takes one short mutex. Func
// variants (NewGaugeFunc, NewCounterFunc) read through to state owned
// elsewhere — e.g. a queue length or a cache's hit counter — at scrape
// time instead of mirroring it on every update.
package metrics

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// DefLatencyBuckets is the default histogram bucket ladder for
// job/stage latencies, in seconds: 5ms to 60s, roughly 2.5x per step.
// Jobs in this service run milliseconds (served from a warm record) to
// tens of seconds (cold sweep on a loaded worker), so the ladder covers
// both tails with 13 buckets.
var DefLatencyBuckets = []float64{
	0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60,
}

// Registry holds a set of named metric families and renders them in
// the Prometheus text format. The zero value is not usable; call
// NewRegistry.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// family is one named metric family: a fixed type, help text, label
// names, and its series keyed by joined label values.
type family struct {
	name   string
	help   string
	typ    string // "counter", "gauge", "histogram"
	labels []string

	mu       sync.Mutex
	series   map[string]metric // key: label values joined with 0xff
	valuesOf map[string][]string
}

// metric is anything a family can hold a series of.
type metric interface {
	// write emits the series' sample lines. labelStr is the rendered
	// {a="b",...} block ("" when unlabeled).
	write(w io.Writer, name, labelStr string)
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// register adds a family, panicking on a duplicate name: metric names
// are program constants, so a collision is a programming error best
// caught at startup rather than silently merged.
func (r *Registry) register(name, help, typ string, labels []string) *family {
	if name == "" {
		panic("metrics: empty metric name")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.families[name]; dup {
		panic(fmt.Sprintf("metrics: duplicate registration of %q", name))
	}
	f := &family{
		name:     name,
		help:     help,
		typ:      typ,
		labels:   labels,
		series:   make(map[string]metric),
		valuesOf: make(map[string][]string),
	}
	r.families[name] = f
	return f
}

// child returns (creating once) the series of one label-value tuple.
func (f *family) child(values []string, mk func() metric) metric {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("metrics: %s wants %d label values, got %d", f.name, len(f.labels), len(values)))
	}
	key := strings.Join(values, "\xff")
	f.mu.Lock()
	defer f.mu.Unlock()
	m, ok := f.series[key]
	if !ok {
		m = mk()
		f.series[key] = m
		f.valuesOf[key] = append([]string(nil), values...)
	}
	return m
}

// Counter is a monotonically increasing integer.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add increases the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

func (c *Counter) write(w io.Writer, name, labelStr string) {
	fmt.Fprintf(w, "%s%s %d\n", name, labelStr, c.v.Load())
}

// NewCounter registers an unlabeled counter.
func (r *Registry) NewCounter(name, help string) *Counter {
	f := r.register(name, help, "counter", nil)
	return f.child(nil, func() metric { return &Counter{} }).(*Counter)
}

// CounterVec is a counter family with labels.
type CounterVec struct{ f *family }

// NewCounterVec registers a labeled counter family.
func (r *Registry) NewCounterVec(name, help string, labels ...string) *CounterVec {
	if len(labels) == 0 {
		panic("metrics: NewCounterVec without labels; use NewCounter")
	}
	return &CounterVec{f: r.register(name, help, "counter", labels)}
}

// With returns (creating once) the counter of one label-value tuple.
func (v *CounterVec) With(values ...string) *Counter {
	return v.f.child(values, func() metric { return &Counter{} }).(*Counter)
}

// counterFunc reads an externally-owned cumulative count at scrape
// time.
type counterFunc struct{ fn func() uint64 }

func (c counterFunc) write(w io.Writer, name, labelStr string) {
	fmt.Fprintf(w, "%s%s %d\n", name, labelStr, c.fn())
}

// NewCounterFunc registers a counter whose value is read from fn at
// scrape time. Use it to expose counts already maintained elsewhere
// (cache hit totals, eviction counts) without double bookkeeping; fn
// must be safe to call concurrently and monotone non-decreasing.
func (r *Registry) NewCounterFunc(name, help string, fn func() uint64) {
	f := r.register(name, help, "counter", nil)
	f.child(nil, func() metric { return counterFunc{fn} })
}

// Gauge is an integer that can go up and down.
type Gauge struct{ v atomic.Int64 }

// Set replaces the gauge value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add increments the gauge by n (negative to decrement).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

func (g *Gauge) write(w io.Writer, name, labelStr string) {
	fmt.Fprintf(w, "%s%s %d\n", name, labelStr, g.v.Load())
}

// NewGauge registers an unlabeled gauge.
func (r *Registry) NewGauge(name, help string) *Gauge {
	f := r.register(name, help, "gauge", nil)
	return f.child(nil, func() metric { return &Gauge{} }).(*Gauge)
}

// gaugeFunc reads an externally-owned value at scrape time.
type gaugeFunc struct{ fn func() float64 }

func (g gaugeFunc) write(w io.Writer, name, labelStr string) {
	fmt.Fprintf(w, "%s%s %s\n", name, labelStr, formatFloat(g.fn()))
}

// NewGaugeFunc registers a gauge whose value is read from fn at scrape
// time; fn must be safe to call concurrently.
func (r *Registry) NewGaugeFunc(name, help string, fn func() float64) {
	f := r.register(name, help, "gauge", nil)
	f.child(nil, func() metric { return gaugeFunc{fn} })
}

// Histogram counts observations into fixed cumulative buckets, plus a
// running sum and count, Prometheus-style.
type Histogram struct {
	upper []float64 // sorted bucket upper bounds (exclusive of +Inf)

	mu     sync.Mutex
	counts []uint64 // one per upper bound
	sum    float64
	count  uint64
}

func newHistogram(buckets []float64) *Histogram {
	upper := append([]float64(nil), buckets...)
	sort.Float64s(upper)
	return &Histogram{upper: upper, counts: make([]uint64, len(upper))}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	for i, ub := range h.upper {
		if v <= ub {
			h.counts[i]++
		}
	}
	h.sum += v
	h.count++
	h.mu.Unlock()
}

// Count returns how many samples were observed.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

func (h *Histogram) write(w io.Writer, name, labelStr string) {
	h.mu.Lock()
	counts := append([]uint64(nil), h.counts...)
	total := h.count
	sumv := h.sum
	h.mu.Unlock()
	for i, ub := range h.upper {
		fmt.Fprintf(w, "%s_bucket%s %d\n", name, withLE(labelStr, formatFloat(ub)), counts[i])
	}
	fmt.Fprintf(w, "%s_bucket%s %d\n", name, withLE(labelStr, "+Inf"), total)
	fmt.Fprintf(w, "%s_sum%s %s\n", name, labelStr, formatFloat(sumv))
	fmt.Fprintf(w, "%s_count%s %d\n", name, labelStr, total)
}

// withLE splices le="bound" into an existing label block (or starts
// one).
func withLE(labelStr, bound string) string {
	le := `le="` + bound + `"`
	if labelStr == "" {
		return "{" + le + "}"
	}
	return labelStr[:len(labelStr)-1] + "," + le + "}"
}

// NewHistogram registers an unlabeled histogram with the given bucket
// upper bounds (+Inf is implicit).
func (r *Registry) NewHistogram(name, help string, buckets []float64) *Histogram {
	f := r.register(name, help, "histogram", nil)
	return f.child(nil, func() metric { return newHistogram(buckets) }).(*Histogram)
}

// HistogramVec is a histogram family with labels; every series shares
// one bucket ladder.
type HistogramVec struct {
	f       *family
	buckets []float64
}

// NewHistogramVec registers a labeled histogram family.
func (r *Registry) NewHistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	if len(labels) == 0 {
		panic("metrics: NewHistogramVec without labels; use NewHistogram")
	}
	return &HistogramVec{
		f:       r.register(name, help, "histogram", labels),
		buckets: append([]float64(nil), buckets...),
	}
}

// With returns (creating once) the histogram of one label-value tuple.
func (v *HistogramVec) With(values ...string) *Histogram {
	return v.f.child(values, func() metric { return newHistogram(v.buckets) }).(*Histogram)
}

// WritePrometheus renders every registered family in the Prometheus
// text exposition format, families sorted by name and series by label
// values, so output is deterministic for a given state.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(a, b int) bool { return fams[a].name < fams[b].name })

	for _, f := range fams {
		f.mu.Lock()
		keys := make([]string, 0, len(f.series))
		for k := range f.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		type row struct {
			m        metric
			labelStr string
		}
		rows := make([]row, 0, len(keys))
		for _, k := range keys {
			rows = append(rows, row{f.series[k], renderLabels(f.labels, f.valuesOf[k])})
		}
		f.mu.Unlock()
		if len(rows) == 0 {
			continue
		}
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, escapeHelp(f.help)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ); err != nil {
			return err
		}
		for _, rw := range rows {
			rw.m.write(w, f.name, rw.labelStr)
		}
	}
	return nil
}

// Handler serves the registry as a Prometheus scrape target.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		w.WriteHeader(http.StatusOK)
		_ = r.WritePrometheus(w)
	})
}

// renderLabels builds the {a="x",b="y"} block ("" when unlabeled).
func renderLabels(names, values []string) string {
	if len(names) == 0 {
		return ""
	}
	var sb strings.Builder
	sb.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(n)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabel(values[i]))
		sb.WriteByte('"')
	}
	sb.WriteByte('}')
	return sb.String()
}

// escapeLabel escapes a label value per the text format (backslash,
// quote, newline).
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

// escapeHelp escapes help text (backslash, newline).
func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// formatFloat renders a float the shortest way that round-trips, with
// +Inf spelled the Prometheus way.
func formatFloat(v float64) string {
	if math.IsInf(v, +1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
