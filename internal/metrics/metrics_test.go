package metrics

import (
	"io"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func render(t *testing.T, r *Registry) string {
	t.Helper()
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	return sb.String()
}

func TestCounterAndGauge(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("jobs_total", "jobs")
	g := r.NewGauge("queue_depth", "depth")
	c.Inc()
	c.Add(4)
	g.Set(7)
	g.Add(-2)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	if g.Value() != 5 {
		t.Fatalf("gauge = %d, want 5", g.Value())
	}
	out := render(t, r)
	want := "# HELP jobs_total jobs\n# TYPE jobs_total counter\njobs_total 5\n" +
		"# HELP queue_depth depth\n# TYPE queue_depth gauge\nqueue_depth 5\n"
	if out != want {
		t.Fatalf("exposition mismatch:\n got: %q\nwant: %q", out, want)
	}
}

// TestDeterministicOrdering pins the sort contract: families by name,
// series by label values — two scrapes of the same state are
// byte-identical.
func TestDeterministicOrdering(t *testing.T) {
	r := NewRegistry()
	v := r.NewCounterVec("ops_total", "ops", "op", "outcome")
	// Create children in a deliberately scrambled order.
	v.With("put", "ok").Add(2)
	v.With("get", "err").Inc()
	v.With("get", "ok").Add(9)
	r.NewGauge("a_first", "sorts before ops_total")
	out1 := render(t, r)
	out2 := render(t, r)
	if out1 != out2 {
		t.Fatalf("two scrapes differ:\n%s\nvs\n%s", out1, out2)
	}
	want := "# HELP a_first sorts before ops_total\n# TYPE a_first gauge\na_first 0\n" +
		"# HELP ops_total ops\n# TYPE ops_total counter\n" +
		`ops_total{op="get",outcome="err"} 1` + "\n" +
		`ops_total{op="get",outcome="ok"} 9` + "\n" +
		`ops_total{op="put",outcome="ok"} 2` + "\n"
	if out1 != want {
		t.Fatalf("exposition mismatch:\n got: %q\nwant: %q", out1, want)
	}
}

func TestVecReturnsSameChild(t *testing.T) {
	r := NewRegistry()
	v := r.NewCounterVec("x_total", "", "k")
	a, b := v.With("v"), v.With("v")
	if a != b {
		t.Fatal("With with equal labels returned distinct counters")
	}
}

func TestHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("lat_seconds", "latency", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	out := render(t, r)
	want := "# HELP lat_seconds latency\n# TYPE lat_seconds histogram\n" +
		`lat_seconds_bucket{le="0.1"} 1` + "\n" +
		`lat_seconds_bucket{le="1"} 3` + "\n" +
		`lat_seconds_bucket{le="10"} 4` + "\n" +
		`lat_seconds_bucket{le="+Inf"} 5` + "\n" +
		"lat_seconds_sum 56.05\nlat_seconds_count 5\n"
	if out != want {
		t.Fatalf("exposition mismatch:\n got: %q\nwant: %q", out, want)
	}
}

func TestHistogramVecSharesBuckets(t *testing.T) {
	r := NewRegistry()
	v := r.NewHistogramVec("stage_seconds", "", []float64{1}, "stage")
	v.With("train").Observe(0.5)
	v.With("sweep").Observe(2)
	out := render(t, r)
	for _, want := range []string{
		`stage_seconds_bucket{stage="sweep",le="1"} 0`,
		`stage_seconds_bucket{stage="train",le="1"} 1`,
		`stage_seconds_count{stage="sweep"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestFuncInstruments(t *testing.T) {
	r := NewRegistry()
	depth := 3
	r.NewGaugeFunc("depth", "", func() float64 { return float64(depth) })
	hits := uint64(41)
	r.NewCounterFunc("hits_total", "", func() uint64 { return hits })
	out := render(t, r)
	if !strings.Contains(out, "depth 3\n") || !strings.Contains(out, "hits_total 41\n") {
		t.Fatalf("func instruments not read at scrape time:\n%s", out)
	}
	depth, hits = 5, 42
	out = render(t, r)
	if !strings.Contains(out, "depth 5\n") || !strings.Contains(out, "hits_total 42\n") {
		t.Fatalf("func instruments stale:\n%s", out)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	v := r.NewCounterVec("esc_total", "", "msg")
	v.With("a\"b\\c\nd").Inc()
	out := render(t, r)
	want := `esc_total{msg="a\"b\\c\nd"} 1`
	if !strings.Contains(out, want) {
		t.Fatalf("escaping mismatch: want %q in:\n%s", want, out)
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("dup", "")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	r.NewGauge("dup", "")
}

func TestHandler(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("ok_total", "").Inc()
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET: %v", err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("Content-Type = %q", ct)
	}
	b, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(b), "ok_total 1") {
		t.Fatalf("body missing series:\n%s", b)
	}
}

// TestConcurrentUse drives every instrument from many goroutines while
// scraping; run under -race this pins the locking discipline.
func TestConcurrentUse(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("c_total", "")
	g := r.NewGauge("g", "")
	h := r.NewHistogram("h_seconds", "", DefLatencyBuckets)
	v := r.NewCounterVec("v_total", "", "k")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(j) / 100)
				v.With([]string{"a", "b"}[i%2]).Inc()
				if j%100 == 0 {
					_ = r.WritePrometheus(io.Discard)
				}
			}
		}(i)
	}
	wg.Wait()
	if c.Value() != 4000 {
		t.Fatalf("counter = %d, want 4000", c.Value())
	}
	if h.Count() != 4000 {
		t.Fatalf("histogram count = %d, want 4000", h.Count())
	}
	if v.With("a").Value()+v.With("b").Value() != 4000 {
		t.Fatalf("vec sum = %d, want 4000", v.With("a").Value()+v.With("b").Value())
	}
}
