// Package logging resolves the serving stack's logging configuration
// into a *slog.Logger. Every serving component (coordinator, worker,
// store server, CLI) logs through slog; this package provides the
// shared plumbing: a JSON logger factory for the binaries, a bridge
// from structured records to legacy printf-style callbacks (tests pass
// t.Logf), a discard logger, and level-name parsing for -log-level
// flags.
package logging

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// New resolves a component's logging fields: an explicit Logger wins, a
// legacy printf callback is bridged through logfHandler (one formatted
// line per record), and with neither the logger discards.
func New(logger *slog.Logger, logf func(string, ...any)) *slog.Logger {
	switch {
	case logger != nil:
		return logger
	case logf != nil:
		return slog.New(logfHandler{logf: logf})
	default:
		return Discard()
	}
}

// JSON builds the binaries' structured logger: one JSON object per line
// to w, filtered at level. Every record carries its level and time; the
// serving components attach job/lease/trace IDs as attributes.
func JSON(w io.Writer, level slog.Level) *slog.Logger {
	return slog.New(slog.NewJSONHandler(w, &slog.HandlerOptions{Level: level}))
}

// Discard returns a logger that drops everything.
func Discard() *slog.Logger { return slog.New(discardHandler{}) }

// ParseLevel maps a -log-level flag value ("debug", "info", "warn",
// "error", case-insensitive; slog's "warn+2" offsets also work) to a
// slog.Level.
func ParseLevel(s string) (slog.Level, error) {
	var l slog.Level
	if err := l.UnmarshalText([]byte(strings.TrimSpace(s))); err != nil {
		return 0, fmt.Errorf("unknown log level %q (valid: debug, info, warn, error)", s)
	}
	return l, nil
}

// logfHandler renders structured records as single "msg key=value ..."
// lines into a printf-style callback — the bridge from the structured
// logging core to legacy Logf consumers.
type logfHandler struct {
	logf  func(string, ...any)
	attrs []slog.Attr
}

func (h logfHandler) Enabled(_ context.Context, level slog.Level) bool {
	return level >= slog.LevelInfo
}

func (h logfHandler) Handle(_ context.Context, r slog.Record) error {
	var b strings.Builder
	b.WriteString(r.Message)
	for _, a := range h.attrs {
		fmt.Fprintf(&b, " %s=%v", a.Key, a.Value.Any())
	}
	r.Attrs(func(a slog.Attr) bool {
		fmt.Fprintf(&b, " %s=%v", a.Key, a.Value.Any())
		return true
	})
	h.logf("%s", b.String())
	return nil
}

func (h logfHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	return logfHandler{logf: h.logf, attrs: append(append([]slog.Attr(nil), h.attrs...), attrs...)}
}

func (h logfHandler) WithGroup(string) slog.Handler { return h }

// discardHandler drops everything (slog.DiscardHandler predates this
// module's Go floor).
type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (discardHandler) WithAttrs([]slog.Attr) slog.Handler        { return discardHandler{} }
func (discardHandler) WithGroup(string) slog.Handler             { return discardHandler{} }
