package report

import (
	"bytes"
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tb := NewTable("Demo", "name", "value")
	tb.AddRow("alpha", 1.5)
	tb.AddRow("beta", 42)
	var buf bytes.Buffer
	tb.Render(&buf)
	out := buf.String()
	for _, want := range []string{"Demo", "name", "alpha", "1.5", "beta", "42"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// Title + header + separator + 2 rows = 5 lines.
	if len(lines) != 5 {
		t.Errorf("rendered %d lines, want 5:\n%s", len(lines), out)
	}
	// All table lines equal width.
	w := len(lines[1])
	for _, l := range lines[1:] {
		if len(l) != w {
			t.Errorf("ragged table:\n%s", out)
		}
	}
}

func TestTableFloatFormatting(t *testing.T) {
	tb := NewTable("", "v")
	tb.AddRow(0.0)
	tb.AddRow(1e-9)
	tb.AddRow(123456789.0)
	tb.AddRow(float32(2.5))
	var buf bytes.Buffer
	tb.Render(&buf)
	out := buf.String()
	if !strings.Contains(out, "0") || !strings.Contains(out, "e-09") ||
		!strings.Contains(out, "e+08") || !strings.Contains(out, "2.5") {
		t.Errorf("float formatting wrong:\n%s", out)
	}
}

func TestCSV(t *testing.T) {
	tb := NewTable("", "a", "b")
	tb.AddRow("x,y", "plain")
	tb.AddRow("q\"uote", 3)
	var buf bytes.Buffer
	tb.CSV(&buf)
	out := buf.String()
	if !strings.HasPrefix(out, "a,b\n") {
		t.Errorf("CSV header wrong:\n%s", out)
	}
	if !strings.Contains(out, "\"x,y\"") {
		t.Error("comma cell must be quoted")
	}
	if !strings.Contains(out, "\"q\"\"uote\"") {
		t.Error("quote cell must be escaped")
	}
}

func TestChartRender(t *testing.T) {
	c := NewChart("Accuracy vs BER", "BER", "acc")
	c.LogX = true
	c.Add("baseline", []float64{1e-9, 1e-7, 1e-5, 1e-3}, []float64{0.9, 0.89, 0.87, 0.8})
	c.Add("improved", []float64{1e-9, 1e-7, 1e-5, 1e-3}, []float64{0.9, 0.9, 0.89, 0.89})
	var buf bytes.Buffer
	c.Render(&buf)
	out := buf.String()
	if !strings.Contains(out, "Accuracy vs BER") {
		t.Error("title missing")
	}
	if !strings.Contains(out, "*=baseline") || !strings.Contains(out, "o=improved") {
		t.Errorf("legend missing:\n%s", out)
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Error("markers missing from grid")
	}
}

func TestChartEmpty(t *testing.T) {
	c := NewChart("Empty", "x", "y")
	var buf bytes.Buffer
	c.Render(&buf)
	if !strings.Contains(buf.String(), "no data") {
		t.Error("empty chart should say so")
	}
}

func TestChartDegenerateRanges(t *testing.T) {
	// A constant-valued series: both ranges are zero-width and must be
	// clamped, with the marker landing inside the grid.
	c := NewChart("Flat", "x", "y")
	c.Add("s", []float64{1, 1, 1}, []float64{2, 2, 2})
	var buf bytes.Buffer
	c.Render(&buf) // must not panic or divide by zero
	if !strings.Contains(buf.String(), "*") {
		t.Errorf("constant series lost its markers:\n%s", buf.String())
	}
}

func TestChartSinglePoint(t *testing.T) {
	c := NewChart("One", "x", "y")
	c.Add("s", []float64{3}, []float64{0.5})
	var buf bytes.Buffer
	c.Render(&buf)
	if !strings.Contains(buf.String(), "*") {
		t.Errorf("single-point series lost its marker:\n%s", buf.String())
	}
}

func TestChartEmptySeries(t *testing.T) {
	// A series with no points must not poison the range math of a real
	// series rendered next to it (±Inf ranges previously produced
	// garbage column/row projections for every marker).
	c := NewChart("Mixed", "x", "y")
	c.Add("empty", nil, nil)
	c.Add("real", []float64{0, 1, 2}, []float64{1, 2, 3})
	var buf bytes.Buffer
	c.Render(&buf)
	if !strings.Contains(buf.String(), "o") {
		t.Errorf("real series lost its markers next to an empty one:\n%s", buf.String())
	}

	// Only empty series: no finite point at all, so say "no data"
	// instead of rendering a grid from infinite ranges.
	c2 := NewChart("AllEmpty", "x", "y")
	c2.Add("empty", nil, nil)
	buf.Reset()
	c2.Render(&buf)
	if !strings.Contains(buf.String(), "no data") {
		t.Errorf("all-empty chart should say no data:\n%s", buf.String())
	}
}

func TestChartLogXNonPositive(t *testing.T) {
	// log10(0) is -Inf: the zero-x point must be skipped, not drag xmin
	// to -Inf and blank the whole chart.
	c := NewChart("Log", "x", "y")
	c.LogX = true
	c.Add("s", []float64{0, 1e-6, 1e-3}, []float64{1, 2, 3})
	var buf bytes.Buffer
	c.Render(&buf)
	if !strings.Contains(buf.String(), "*") {
		t.Errorf("LogX chart with a zero x lost its finite markers:\n%s", buf.String())
	}
}

func TestPct(t *testing.T) {
	if Pct(0.394) != "39.40%" {
		t.Errorf("Pct = %q", Pct(0.394))
	}
}

func TestChartMarkerPlacementMonotone(t *testing.T) {
	// A strictly increasing series should place its leftmost marker lower
	// than its rightmost marker (rows count downward).
	c := NewChart("mono", "x", "y")
	c.Width, c.Height = 20, 10
	c.Add("s", []float64{0, 1}, []float64{0, 1})
	var buf bytes.Buffer
	c.Render(&buf)
	lines := strings.Split(buf.String(), "\n")
	var firstRow, lastRow int = -1, -1
	for i, l := range lines {
		if strings.Contains(l, "*") {
			if firstRow == -1 {
				firstRow = i
			}
			lastRow = i
		}
	}
	if firstRow == -1 || firstRow == lastRow {
		t.Fatalf("markers not found in:\n%s", buf.String())
	}
	// y=1 (top of range) must appear above y=0.
	top := lines[firstRow]
	if !strings.Contains(top, "*") {
		t.Fatal("top marker missing")
	}
	if strings.Index(lines[firstRow], "*") < strings.Index(lines[lastRow], "*") {
		t.Error("increasing series should have its high-y point to the right")
	}
}
