// Package report renders experiment results as fixed-width tables, CSV,
// and ASCII line charts, so that every figure and table of the paper can
// be regenerated as terminal output by cmd/experiments.
package report

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Table is a simple fixed-width table builder.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; values are formatted with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = formatFloat(v)
		case float32:
			row[i] = formatFloat(float64(v))
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

func formatFloat(v float64) string {
	switch {
	case v == 0:
		return "0"
	case math.Abs(v) >= 1e5 || math.Abs(v) < 1e-3:
		return fmt.Sprintf("%.3e", v)
	default:
		return fmt.Sprintf("%.4g", v)
	}
}

// Render writes the table to w.
func (t *Table) Render(w io.Writer) {
	cols := len(t.Headers)
	widths := make([]int, cols)
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < cols && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintf(w, "%s\n", t.Title)
	}
	sep := make([]string, cols)
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	printRow := func(cells []string) {
		parts := make([]string, cols)
		for i := 0; i < cols; i++ {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintf(w, "| %s |\n", strings.Join(parts, " | "))
	}
	printRow(t.Headers)
	printRow(sep)
	for _, row := range t.Rows {
		printRow(row)
	}
}

// CSV writes the table as comma-separated values (quoting cells that
// contain commas or quotes).
func (t *Table) CSV(w io.Writer) {
	writeLine := func(cells []string) {
		out := make([]string, len(cells))
		for i, c := range cells {
			if strings.ContainsAny(c, ",\"\n") {
				c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
			}
			out[i] = c
		}
		fmt.Fprintln(w, strings.Join(out, ","))
	}
	writeLine(t.Headers)
	for _, row := range t.Rows {
		writeLine(row)
	}
}

// Series is one named line of a chart.
type Series struct {
	Name   string
	X, Y   []float64
	Marker byte
}

// Chart renders one or more series as an ASCII scatter/line chart —
// enough to see the *shape* of a paper figure in terminal output.
type Chart struct {
	Title         string
	XLabel        string
	YLabel        string
	Width, Height int
	LogX          bool
	Series        []Series
}

// NewChart creates a chart with sensible terminal dimensions.
func NewChart(title, xlabel, ylabel string) *Chart {
	return &Chart{Title: title, XLabel: xlabel, YLabel: ylabel, Width: 64, Height: 16}
}

// Add appends a series; markers cycle through a fixed set if zero.
func (c *Chart) Add(name string, x, y []float64) {
	markers := []byte{'*', 'o', '+', 'x', '#', '@'}
	m := markers[len(c.Series)%len(markers)]
	c.Series = append(c.Series, Series{Name: name, X: x, Y: y, Marker: m})
}

// Render draws the chart to w.
func (c *Chart) Render(w io.Writer) {
	if len(c.Series) == 0 {
		fmt.Fprintf(w, "%s\n(no data)\n", c.Title)
		return
	}
	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	tx := func(x float64) float64 {
		if c.LogX {
			return math.Log10(x)
		}
		return x
	}
	finite := func(v float64) bool { return !math.IsInf(v, 0) && !math.IsNaN(v) }
	for _, s := range c.Series {
		for i := range s.X {
			// Non-finite coordinates (empty series leave the ranges at
			// ±Inf; LogX of a non-positive x is -Inf/NaN) must not poison
			// the range math below.
			x, y := tx(s.X[i]), s.Y[i]
			if !finite(x) || !finite(y) {
				continue
			}
			if x < xmin {
				xmin = x
			}
			if x > xmax {
				xmax = x
			}
			if y < ymin {
				ymin = y
			}
			if y > ymax {
				ymax = y
			}
		}
	}
	if xmin > xmax { // no finite point anywhere
		fmt.Fprintf(w, "%s\n(no data)\n", c.Title)
		return
	}
	// Clamp degenerate ranges (a single point, or a constant-valued
	// series) so the column/row projection below never divides by zero.
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}
	// Pad the y range slightly so extremes are visible.
	pad := (ymax - ymin) * 0.05
	ymin -= pad
	ymax += pad

	grid := make([][]byte, c.Height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", c.Width))
	}
	for _, s := range c.Series {
		for i := range s.X {
			x, y := tx(s.X[i]), s.Y[i]
			if !finite(x) || !finite(y) {
				continue
			}
			col := int((x - xmin) / (xmax - xmin) * float64(c.Width-1))
			row := int((ymax - y) / (ymax - ymin) * float64(c.Height-1))
			if col >= 0 && col < c.Width && row >= 0 && row < c.Height {
				grid[row][col] = s.Marker
			}
		}
	}
	fmt.Fprintf(w, "%s\n", c.Title)
	for r, line := range grid {
		label := "        "
		switch r {
		case 0:
			label = fmt.Sprintf("%8.3g", ymax)
		case c.Height - 1:
			label = fmt.Sprintf("%8.3g", ymin)
		case c.Height / 2:
			label = fmt.Sprintf("%8.3g", (ymax+ymin)/2)
		}
		fmt.Fprintf(w, "%s |%s|\n", label, string(line))
	}
	lo, hi := xmin, xmax
	unit := ""
	if c.LogX {
		unit = " (log10)"
	}
	fmt.Fprintf(w, "%9s %-*s\n", "", c.Width, fmt.Sprintf("%.3g%s -> %.3g%s  [%s]", lo, unit, hi, unit, c.XLabel))
	legend := make([]string, len(c.Series))
	for i, s := range c.Series {
		legend[i] = fmt.Sprintf("%c=%s", s.Marker, s.Name)
	}
	fmt.Fprintf(w, "%9s y: %s  |  %s\n", "", c.YLabel, strings.Join(legend, "  "))
}

// Pct formats a fraction as a percentage string.
func Pct(v float64) string { return fmt.Sprintf("%.2f%%", v*100) }

// FirstLine truncates a (possibly multi-line) message to its first line,
// used to keep contained panic stacks out of one-line error records.
func FirstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}
