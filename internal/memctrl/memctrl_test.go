package memctrl

import (
	"testing"

	"sparkxd/internal/dram"
)

func newCtl(t *testing.T) *Controller {
	t.Helper()
	c, err := New(dram.SmallTestGeometry(), dram.NominalTiming())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return c
}

func TestNewRejectsBadInputs(t *testing.T) {
	g := dram.SmallTestGeometry()
	g.Banks = 0
	if _, err := New(g, dram.NominalTiming()); err == nil {
		t.Error("invalid geometry must be rejected")
	}
	tm := dram.NominalTiming()
	tm.TRCD = 0
	if _, err := New(dram.SmallTestGeometry(), tm); err == nil {
		t.Error("invalid timing must be rejected")
	}
}

func TestFirstAccessIsMiss(t *testing.T) {
	c := newCtl(t)
	class := c.Do(Access{Coord: dram.Coord{}})
	if class != dram.AccessMiss {
		t.Fatalf("first access = %v, want miss", class)
	}
}

func TestSameRowHits(t *testing.T) {
	c := newCtl(t)
	c.Do(Access{Coord: dram.Coord{Column: 0}})
	for col := 1; col < 8; col++ {
		if class := c.Do(Access{Coord: dram.Coord{Column: col}}); class != dram.AccessHit {
			t.Fatalf("same-row access col %d = %v, want hit", col, class)
		}
	}
	s := c.Stats()
	if s.Hits != 7 || s.Misses != 1 || s.Conflicts != 0 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestDifferentRowSameBankConflicts(t *testing.T) {
	c := newCtl(t)
	c.Do(Access{Coord: dram.Coord{Row: 0}})
	class := c.Do(Access{Coord: dram.Coord{Row: 1}})
	if class != dram.AccessConflict {
		t.Fatalf("row switch = %v, want conflict", class)
	}
}

func TestDifferentSubarraySameBankConflicts(t *testing.T) {
	// Subarrays share the bank's row buffer in commodity DRAM, so moving
	// between subarrays of one bank is still a conflict.
	c := newCtl(t)
	c.Do(Access{Coord: dram.Coord{Subarray: 0}})
	if class := c.Do(Access{Coord: dram.Coord{Subarray: 1}}); class != dram.AccessConflict {
		t.Fatalf("subarray switch = %v, want conflict", class)
	}
}

func TestDifferentBankMisses(t *testing.T) {
	c := newCtl(t)
	c.Do(Access{Coord: dram.Coord{Bank: 0}})
	if class := c.Do(Access{Coord: dram.Coord{Bank: 1}}); class != dram.AccessMiss {
		t.Fatal("first access to a fresh bank must be a miss")
	}
	// Returning to bank 0's open row is still a hit.
	if class := c.Do(Access{Coord: dram.Coord{Bank: 0}}); class != dram.AccessHit {
		t.Fatal("open row in the other bank must still hit")
	}
}

func TestClassifyDoesNotMutate(t *testing.T) {
	c := newCtl(t)
	a := Access{Coord: dram.Coord{}}
	if c.Classify(a) != dram.AccessMiss {
		t.Fatal("classify of fresh bank should be miss")
	}
	if c.Classify(a) != dram.AccessMiss {
		t.Fatal("classify must not open the row")
	}
	s := c.Stats()
	if s.Accesses() != 0 {
		t.Fatal("classify must not count accesses")
	}
}

func TestCommandTallyMatchesClasses(t *testing.T) {
	c := newCtl(t)
	// miss (ACT), hit, conflict (PRE+ACT), hit, bank switch miss (ACT)
	c.Do(Access{Coord: dram.Coord{Row: 0, Column: 0}})
	c.Do(Access{Coord: dram.Coord{Row: 0, Column: 1}})
	c.Do(Access{Coord: dram.Coord{Row: 1, Column: 0}})
	c.Do(Access{Coord: dram.Coord{Row: 1, Column: 1}})
	c.Do(Access{Coord: dram.Coord{Bank: 1}})
	s := c.Stats()
	if s.Tally.NACT != 3 {
		t.Errorf("NACT = %d, want 3", s.Tally.NACT)
	}
	if s.Tally.NPRE != 1 {
		t.Errorf("NPRE = %d, want 1", s.Tally.NPRE)
	}
	if s.Tally.NRD != 5 {
		t.Errorf("NRD = %d, want 5", s.Tally.NRD)
	}
	if s.Tally.NWR != 0 {
		t.Errorf("NWR = %d, want 0", s.Tally.NWR)
	}
}

func TestWritesCounted(t *testing.T) {
	c := newCtl(t)
	c.Do(Access{Coord: dram.Coord{}, Write: true})
	s := c.Stats()
	if s.Writes != 1 || s.Tally.NWR != 1 || s.Tally.NRD != 0 {
		t.Fatalf("write accounting wrong: %+v", s)
	}
}

func TestOnCommandObservesTrace(t *testing.T) {
	c := newCtl(t)
	var cmds []dram.Command
	var times []float64
	c.OnCommand = func(cmd dram.Command, atNs float64) {
		cmds = append(cmds, cmd)
		times = append(times, atNs)
	}
	c.Do(Access{Coord: dram.Coord{Row: 0}})
	c.Do(Access{Coord: dram.Coord{Row: 1}})
	// Expect ACT,RD, PRE,ACT,RD.
	kinds := []dram.CommandKind{dram.CmdACT, dram.CmdRD, dram.CmdPRE, dram.CmdACT, dram.CmdRD}
	if len(cmds) != len(kinds) {
		t.Fatalf("got %d commands, want %d", len(cmds), len(kinds))
	}
	for i, k := range kinds {
		if cmds[i].Kind != k {
			t.Errorf("command %d = %v, want %v", i, cmds[i].Kind, k)
		}
	}
	// Times must be non-decreasing per bank and PRE->ACT spaced by tRP.
	if times[3]-times[2] < dram.NominalTiming().TRP {
		t.Error("ACT after PRE must wait at least tRP")
	}
}

func TestHitStreamFasterThanConflictStream(t *testing.T) {
	g := dram.SmallTestGeometry()
	tm := dram.NominalTiming()
	hitCtl, _ := New(g, tm)
	confCtl, _ := New(g, tm)

	var hits, confs []Access
	for i := 0; i < 64; i++ {
		hits = append(hits, Access{Coord: dram.Coord{Column: i % g.Columns}})
		confs = append(confs, Access{Coord: dram.Coord{Row: i % g.Rows}})
	}
	hs := hitCtl.Replay(hits)
	cs := confCtl.Replay(confs)
	if hs.TotalNs >= cs.TotalNs {
		t.Fatalf("hit stream (%v ns) must be faster than conflict stream (%v ns)",
			hs.TotalNs, cs.TotalNs)
	}
	if hs.HitRate() < 0.9 {
		t.Errorf("hit stream hit rate = %v", hs.HitRate())
	}
}

// Bank interleaving must hide row-transition latency: streaming the same
// number of bursts across 4 banks with per-bank row switches is faster
// than the same stream confined to one bank.
func TestMultiBankOverlapHidesRowSwitches(t *testing.T) {
	g := dram.SmallTestGeometry()
	tm := dram.NominalTiming()

	var oneBank, interleaved []Access
	n := 128
	for i := 0; i < n; i++ {
		// one bank: new row every 4 accesses -> frequent conflicts, no overlap
		oneBank = append(oneBank, Access{Coord: dram.Coord{
			Row:    (i / 4) % g.Rows,
			Column: i % 4,
		}})
		// interleaved: same row-switch cadence but spread over 4 banks
		interleaved = append(interleaved, Access{Coord: dram.Coord{
			Bank:   i % 4,
			Row:    (i / 16) % g.Rows,
			Column: (i / 4) % 4,
		}})
	}
	c1, _ := New(g, tm)
	c2, _ := New(g, tm)
	s1 := c1.Replay(oneBank)
	s2 := c2.Replay(interleaved)
	if s2.TotalNs >= s1.TotalNs {
		t.Fatalf("interleaved stream (%v ns) should beat single-bank stream (%v ns)",
			s2.TotalNs, s1.TotalNs)
	}
	if s2.BusUtilization() <= s1.BusUtilization() {
		t.Error("interleaving should raise bus utilization")
	}
}

func TestResetClearsState(t *testing.T) {
	c := newCtl(t)
	c.Do(Access{Coord: dram.Coord{}})
	c.Reset()
	s := c.Stats()
	if s.Accesses() != 0 || s.TotalNs != 0 {
		t.Fatal("Reset must clear stats")
	}
	if c.Do(Access{Coord: dram.Coord{}}) != dram.AccessMiss {
		t.Fatal("after Reset the first access must miss again")
	}
}

func TestReplayReads(t *testing.T) {
	c := newCtl(t)
	coords := []dram.Coord{{}, {Column: 1}, {Column: 2}}
	s := c.ReplayReads(coords)
	if s.Reads != 3 || s.Writes != 0 {
		t.Fatalf("ReplayReads stats = %+v", s)
	}
}

func TestRefreshAccounting(t *testing.T) {
	g := dram.SmallTestGeometry()
	tm := dram.NominalTiming()
	c, _ := New(g, tm)
	// Enough bursts to exceed a few tREFI (3900 ns): 1000 bursts * 5 ns.
	var stream []Access
	for i := 0; i < 1000; i++ {
		stream = append(stream, Access{Coord: dram.Coord{Column: i % g.Columns}})
	}
	s := c.Replay(stream)
	if s.Tally.NREF == 0 {
		t.Error("long stream must incur refreshes")
	}
	wantRef := int64(s.TotalNs / tm.TREFI)
	if s.Tally.NREF != wantRef {
		t.Errorf("NREF = %d, want %d", s.Tally.NREF, wantRef)
	}
}

func TestStatsAccessorsAndString(t *testing.T) {
	s := Stats{Hits: 3, Misses: 1, Conflicts: 0, TotalNs: 100, BusBusyNs: 50}
	if s.Accesses() != 4 {
		t.Error("Accesses wrong")
	}
	if s.HitRate() != 0.75 {
		t.Error("HitRate wrong")
	}
	if s.BusUtilization() != 0.5 {
		t.Error("BusUtilization wrong")
	}
	if (Stats{}).HitRate() != 0 || (Stats{}).BusUtilization() != 0 {
		t.Error("degenerate stats must be 0")
	}
	if len(s.String()) == 0 {
		t.Error("String empty")
	}
}

func TestDoPanicsOutsideGeometry(t *testing.T) {
	c := newCtl(t)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-geometry access")
		}
	}()
	c.Do(Access{Coord: dram.Coord{Channel: 99}})
}

func TestCensus(t *testing.T) {
	g := dram.SmallTestGeometry()
	stream := []Access{
		{Coord: dram.Coord{Row: 0}},
		{Coord: dram.Coord{Row: 0, Column: 1}},
		{Coord: dram.Coord{Row: 1}},
	}
	cc, err := Census(g, dram.NominalTiming(), stream)
	if err != nil {
		t.Fatal(err)
	}
	if cc.Hits != 1 || cc.Misses != 1 || cc.Conflicts != 1 {
		t.Fatalf("census = %+v", cc)
	}
}

func TestActiveResidencyEqualsTotal(t *testing.T) {
	c := newCtl(t)
	s := c.Replay([]Access{{Coord: dram.Coord{}}, {Coord: dram.Coord{Column: 1}}})
	if s.Tally.ActiveNs != s.TotalNs || s.Tally.IdleNs != 0 {
		t.Fatalf("residency accounting wrong: %+v", s.Tally)
	}
}
