// Package memctrl simulates the DRAM memory controller of the SparkXD
// evaluation platform: an open-page controller with per-bank row buffers,
// FR-FCFS-style in-order replay of an access stream, and the multi-bank
// burst behaviour the paper's mapping exploits (Fig. 9(b)).
//
// The controller does three jobs:
//
//  1. classify every access as row-buffer hit, miss, or conflict
//     (Sec. II-B1), which determines its energy (package power);
//  2. produce the command tally (ACT/PRE/RD/WR/REF counts plus active and
//     idle residency) that the energy model integrates, playing the role
//     of the "DRAM access traces & statistics" box of Fig. 10;
//  3. account cycles with bank-level overlap, so that mappings which
//     interleave across banks hide tRCD/tRP behind data bursts of other
//     banks — this is what yields SparkXD's ~1.02x speed-up (Fig. 12(b)).
//
// The timing model is bank-accurate rather than cycle-accurate: each bank
// tracks when its row buffer becomes usable, and the shared data bus
// serializes bursts. That level of detail is exactly what the paper's
// energy and throughput numbers depend on (row-buffer outcomes and burst
// overlap), while remaining fast enough to replay hundreds of thousands
// of accesses per benchmark iteration.
package memctrl

import (
	"fmt"

	"sparkxd/internal/dram"
	"sparkxd/internal/power"
)

// Access is one element of a memory access stream.
type Access struct {
	Coord dram.Coord
	Write bool
}

// Stats aggregates the outcome of replaying an access stream.
type Stats struct {
	Hits, Misses, Conflicts int64
	Reads, Writes           int64
	Tally                   power.Tally
	// TotalNs is the makespan of the stream (last data beat).
	TotalNs float64
	// BusBusyNs is the time the data bus spent transferring bursts.
	BusBusyNs float64
}

// Accesses returns the total number of accesses replayed.
func (s Stats) Accesses() int64 { return s.Hits + s.Misses + s.Conflicts }

// HitRate returns the fraction of accesses that hit the row buffer.
func (s Stats) HitRate() float64 {
	n := s.Accesses()
	if n == 0 {
		return 0
	}
	return float64(s.Hits) / float64(n)
}

// BusUtilization returns the fraction of the makespan the data bus was busy.
func (s Stats) BusUtilization() float64 {
	if s.TotalNs == 0 {
		return 0
	}
	return s.BusBusyNs / s.TotalNs
}

// String summarizes the stats.
func (s Stats) String() string {
	return fmt.Sprintf("accesses=%d hit=%.1f%% (h=%d m=%d c=%d) t=%.0fns bus=%.1f%%",
		s.Accesses(), s.HitRate()*100, s.Hits, s.Misses, s.Conflicts,
		s.TotalNs, s.BusUtilization()*100)
}

// bankState tracks one bank's row buffer and readiness.
type bankState struct {
	openRow int     // global row index, -1 if closed
	readyNs float64 // when the bank can issue its next column command
}

// Controller is an open-page DRAM controller simulator. Create with New;
// the zero value is not usable.
type Controller struct {
	geom   dram.Geometry
	timing dram.Timing
	banks  []bankState
	busNs  float64 // earliest time the next column command may issue
	endNs  float64 // makespan: end of the last data burst
	stats  Stats

	// OnCommand, when non-nil, observes every DRAM command with its issue
	// time — the hook used to export DRAMPower-style command traces.
	OnCommand func(cmd dram.Command, atNs float64)
}

// New returns a controller for the given geometry and timing, with all
// banks precharged.
func New(geom dram.Geometry, timing dram.Timing) (*Controller, error) {
	if err := geom.Validate(); err != nil {
		return nil, fmt.Errorf("memctrl: geometry: %w", err)
	}
	if err := timing.Validate(); err != nil {
		return nil, fmt.Errorf("memctrl: timing: %w", err)
	}
	banks := make([]bankState, geom.BankCount())
	for i := range banks {
		banks[i].openRow = -1
	}
	return &Controller{geom: geom, timing: timing, banks: banks}, nil
}

// Reset returns the controller to the all-banks-precharged initial state
// and clears statistics.
func (c *Controller) Reset() {
	for i := range c.banks {
		c.banks[i] = bankState{openRow: -1}
	}
	c.busNs = 0
	c.endNs = 0
	c.stats = Stats{}
}

// Stats returns a snapshot of the accumulated statistics, completing the
// derived fields (refresh count, active/idle residency).
func (c *Controller) Stats() Stats {
	s := c.stats
	s.TotalNs = c.endNs
	// Refresh: one REF per tREFI of elapsed time.
	if c.timing.TREFI > 0 {
		s.Tally.NREF = int64(s.TotalNs / c.timing.TREFI)
	}
	// Background residency: banks hold rows open while streaming, so the
	// makespan counts as active standby; idle time is what the bus didn't
	// use but rows were still open — already inside the makespan. Idle
	// (all-precharged) residency outside the stream is zero by definition
	// of a per-inference replay.
	s.Tally.ActiveNs = s.TotalNs
	s.Tally.IdleNs = 0
	return s
}

// Classify returns the row-buffer outcome the access would see, without
// executing it.
func (c *Controller) Classify(a Access) dram.AccessClass {
	b := &c.banks[a.Coord.BankOf().Linear(c.geom)]
	row := a.Coord.GlobalRow(c.geom)
	switch {
	case b.openRow == row:
		return dram.AccessHit
	case b.openRow == -1:
		return dram.AccessMiss
	default:
		return dram.AccessConflict
	}
}

func (c *Controller) emit(kind dram.CommandKind, bank dram.BankID, row, col int, atNs float64) {
	if c.OnCommand != nil {
		c.OnCommand(dram.Command{Kind: kind, Bank: bank, Row: row, Col: col}, atNs)
	}
}

// Do executes one access: classifies it, issues the implied commands,
// advances bank and bus timing, and updates statistics. It returns the
// access class.
func (c *Controller) Do(a Access) dram.AccessClass {
	if !a.Coord.Valid(c.geom) {
		panic(fmt.Sprintf("memctrl: access outside geometry: %v", a.Coord))
	}
	bankID := a.Coord.BankOf()
	b := &c.banks[bankID.Linear(c.geom)]
	row := a.Coord.GlobalRow(c.geom)
	class := c.Classify(a)

	// Row management: PRE/ACT run inside the target bank and overlap with
	// column bursts of *other* banks — the multi-bank burst overlap of
	// Fig. 9(b). They are scheduled as soon as the bank itself is free.
	switch class {
	case dram.AccessHit:
		c.stats.Hits++
	case dram.AccessMiss:
		c.stats.Misses++
		start := b.readyNs
		c.emit(dram.CmdACT, bankID, row, 0, start)
		c.stats.Tally.NACT++
		b.readyNs = start + c.timing.TRCD
		b.openRow = row
	case dram.AccessConflict:
		c.stats.Conflicts++
		start := b.readyNs
		c.emit(dram.CmdPRE, bankID, 0, 0, start)
		c.stats.Tally.NPRE++
		actAt := start + c.timing.TRP
		c.emit(dram.CmdACT, bankID, row, 0, actAt)
		c.stats.Tally.NACT++
		b.readyNs = actAt + c.timing.TRCD
		b.openRow = row
	}

	// Column command: waits for the bank's row to be ready and for the
	// shared data bus slot; consecutive bursts are tCCD apart, which for
	// BL8 keeps the bus saturated when no bank stalls.
	issue := maxf(b.readyNs, c.busNs)
	dataEnd := issue + c.timing.TCL + c.timing.TBURST
	if a.Write {
		c.emit(dram.CmdWR, bankID, 0, a.Coord.Column, issue)
		c.stats.Tally.NWR++
		c.stats.Writes++
	} else {
		c.emit(dram.CmdRD, bankID, 0, a.Coord.Column, issue)
		c.stats.Tally.NRD++
		c.stats.Reads++
	}
	c.busNs = issue + c.timing.TCCD
	b.readyNs = maxf(b.readyNs, issue+c.timing.TCCD)
	if dataEnd > c.endNs {
		c.endNs = dataEnd
	}
	c.stats.BusBusyNs += c.timing.TBURST

	return class
}

// Replay resets the controller, executes the whole stream, and returns
// the resulting stats.
func (c *Controller) Replay(stream []Access) Stats {
	c.Reset()
	for _, a := range stream {
		c.Do(a)
	}
	return c.Stats()
}

// ReplayReads is Replay for a read-only stream of coordinates (the
// common case: streaming weights during inference).
func (c *Controller) ReplayReads(coords []dram.Coord) Stats {
	c.Reset()
	for _, co := range coords {
		c.Do(Access{Coord: co})
	}
	return c.Stats()
}

// ClassCounts is the per-class access census used by energy accounting
// when integrating access-condition energies directly (Fig. 2(b) style).
type ClassCounts struct {
	Hits, Misses, Conflicts int64
}

// Census classifies a stream without mutating the controller's public
// stats (it runs on a scratch controller).
func Census(geom dram.Geometry, timing dram.Timing, stream []Access) (ClassCounts, error) {
	ctl, err := New(geom, timing)
	if err != nil {
		return ClassCounts{}, err
	}
	for _, a := range stream {
		ctl.Do(a)
	}
	s := ctl.Stats()
	return ClassCounts{Hits: s.Hits, Misses: s.Misses, Conflicts: s.Conflicts}, nil
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
