// Package core implements the SparkXD framework itself — the paper's
// contribution (Sec. IV, Fig. 7). It wires the substrates together:
//
//	reduced supply voltage ─┐
//	DRAM error modeling ────┼─> Improving the SNN Error Tolerance (IV-B)
//	SNN model ──────────────┘        │ improved model
//	                                 v
//	                     Analyzing the Error Tolerance (IV-C)
//	                                 │ maximum tolerable BER (BERth)
//	                                 v
//	                     DRAM Mapping (IV-D, Algorithm 2)
//	                                 │
//	                                 v
//	          improved SNN + safe-subarray, row-hit-maximizing mapping
//
// The three public phases are ImproveErrorTolerance (Algorithm 1),
// AnalyzeErrorTolerance (the linear BER search), and MapModel
// (Algorithm 2 via package mapping), with Evaluate* helpers that measure
// accuracy, DRAM energy, and throughput for the experiment harness.
package core

import (
	"context"
	"errors"
	"fmt"

	"sparkxd/internal/dataset"
	"sparkxd/internal/dram"
	"sparkxd/internal/errmodel"
	"sparkxd/internal/mapping"
	"sparkxd/internal/memctrl"
	"sparkxd/internal/power"
	"sparkxd/internal/quant"
	"sparkxd/internal/rng"
	"sparkxd/internal/snn"
	"sparkxd/internal/voltscale"
)

// Framework bundles the device models SparkXD operates against.
type Framework struct {
	Geom    dram.Geometry
	Circuit voltscale.Model
	Power   power.Model
	// ErrKind selects the EDEN error model (the paper uses Model 0).
	ErrKind errmodel.Kind
	// Spread is the per-subarray BER lognormal sigma for voltage-derived
	// profiles (0 = uniform device).
	Spread float64
	// DeviceSeed pins weak-cell locations of the simulated device.
	DeviceSeed uint64
	// Format is the stored weight representation (FP32 in the paper).
	Format quant.Format
	// EvalWorkers parallelizes accuracy evaluations within one call
	// (spike encoding and synaptic-drive accumulation fan out across
	// goroutines; the theta-coupled neuron updates stay sequential).
	// Accuracy is bit-identical for any value; <= 0 means GOMAXPROCS.
	EvalWorkers int
	// Observer, when non-nil, receives structured progress events from
	// the training and analysis loops.
	Observer Observer
}

// NewFramework returns the paper's experimental setup: LPDDR3-1600 4Gb,
// calibrated circuit and power models, EDEN error model 0, FP32 weights.
func NewFramework() *Framework {
	return &Framework{
		Geom:       dram.LPDDR3_1600_4Gb(),
		Circuit:    voltscale.Default(),
		Power:      power.Default(),
		ErrKind:    errmodel.Model0,
		Spread:     errmodel.DefaultSpread,
		DeviceSeed: 0xD0C5EED,
		Format:     quant.FP32,
	}
}

// Validate reports whether the framework is coherent.
func (f *Framework) Validate() error {
	if err := f.Geom.Validate(); err != nil {
		return err
	}
	if err := f.Circuit.Validate(); err != nil {
		return err
	}
	if err := f.Power.Validate(); err != nil {
		return err
	}
	if f.Spread < 0 {
		return errors.New("core: spread must be non-negative")
	}
	return nil
}

// LayoutForWeights places an image of weightCount weights with the given
// policy: nil safe flags select the baseline sequential mapping, a
// safe-flag set selects Algorithm 2.
func (f *Framework) LayoutForWeights(weightCount int, safe []bool) (*mapping.Layout, error) {
	return f.LayoutForWeightsIn(f.Format, weightCount, safe)
}

// LayoutForWeightsIn is LayoutForWeights with an explicit stored-weight
// format — the sweep engine's bitwidth axis overrides the framework
// format per scenario, which changes the image size and therefore the
// placement.
func (f *Framework) LayoutForWeightsIn(format quant.Format, weightCount int, safe []bool) (*mapping.Layout, error) {
	units := mapping.UnitsFor(format.ImageSize(weightCount, f.Geom.ColumnBytes), f.Geom.ColumnBytes)
	if safe == nil {
		return mapping.Baseline(f.Geom, units)
	}
	return mapping.SparkXD(f.Geom, units, safe)
}

// LayoutFor places a network's weight image with the given policy
// ("baseline" or a SparkXD safe-flag set).
func (f *Framework) LayoutFor(net *snn.Network, safe []bool) (*mapping.Layout, error) {
	return f.LayoutForWeights(net.WeightCount(), safe)
}

// CorruptWeights serializes weights through the layout, injects errors
// from the profile, and returns the corrupted weights plus the number of
// flipped bits. The input slice is not modified.
func (f *Framework) CorruptWeights(w []float32, layout *mapping.Layout,
	profile *errmodel.Profile, r *rng.Stream) ([]float32, int64) {
	img := make([]byte, f.Format.ImageSize(len(w), layout.UnitBytes()))
	if err := quant.Serialize(w, f.Format, img); err != nil {
		panic("core: serialize: " + err.Error()) // sizes are internally consistent
	}
	inj := errmodel.NewInjector(f.ErrKind, profile)
	flips := inj.Inject(img, layout, r)
	out := make([]float32, len(w))
	if err := quant.Deserialize(img, f.Format, out); err != nil {
		panic("core: deserialize: " + err.Error())
	}
	return out, flips
}

// EvaluateUnderErrors measures a network's accuracy when its weights pass
// through approximate DRAM: weights are corrupted via (layout, profile),
// loaded into a clone (with on-load sanitization), and evaluated.
// The eval stream is derived deterministically from evalSeed so that
// different corruption conditions are compared on identical spike trains
// (paired evaluation, which removes encoder noise from the comparison).
func (f *Framework) EvaluateUnderErrors(net *snn.Network, test *dataset.Dataset,
	layout *mapping.Layout, profile *errmodel.Profile, injectSeed, evalSeed uint64) float64 {
	acc, _ := f.EvaluateUnderErrorsCtx(context.Background(), net, test, layout, profile, injectSeed, evalSeed)
	return acc
}

// EvaluateUnderErrorsCtx is EvaluateUnderErrors with cooperative
// cancellation (checked between test samples); a cancelled evaluation
// returns ctx.Err().
func (f *Framework) EvaluateUnderErrorsCtx(ctx context.Context, net *snn.Network,
	test *dataset.Dataset, layout *mapping.Layout, profile *errmodel.Profile,
	injectSeed, evalSeed uint64) (float64, error) {
	// Check before the corruption pass, not only inside the sample loop:
	// a caller sweeping many evaluation points must be able to stop at a
	// point boundary without paying for another full injection pass.
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	w, _ := f.CorruptWeights(net.WeightsFlat(), layout, profile, rng.New(injectSeed))
	clone := net.Clone()
	if err := clone.SetWeightsFlat(w); err != nil {
		panic("core: " + err.Error())
	}
	return clone.EvaluateBatch(ctx, test, rng.New(evalSeed), f.EvalWorkers)
}

// TrainConfig parameterizes Algorithm 1 (fault-aware training).
type TrainConfig struct {
	// Rates is the increasing BER schedule (e.g. 1e-9, 1e-8, ..., 1e-3:
	// "the next error rate is 10x of the previous one").
	Rates []float64
	// EpochsPerRate is Nepoch in Algorithm 1.
	EpochsPerRate int
	// AccBound is the tolerated accuracy drop versus the error-free
	// baseline (the paper uses 1% = 0.01).
	AccBound float64
	// Seed drives error injection and spike encoding during training.
	Seed uint64
}

// DefaultTrainConfig mirrors the paper's schedule.
func DefaultTrainConfig() TrainConfig {
	return TrainConfig{
		Rates:         []float64{1e-9, 1e-8, 1e-7, 1e-6, 1e-5, 1e-4, 1e-3},
		EpochsPerRate: 1,
		AccBound:      0.01,
		Seed:          7,
	}
}

// TrainResult is the outcome of Algorithm 1.
type TrainResult struct {
	// Model is the improved (fault-aware trained) network.
	Model *snn.Network
	// BaselineAcc is the error-free accuracy of the input model (acc0).
	BaselineAcc float64
	// BERth is the highest BER whose accuracy met the bound during
	// training (refined further by AnalyzeErrorTolerance).
	BERth float64
	// PerRate records accuracy after training at each schedule rate.
	PerRate []RatePoint
}

// RatePoint is one (BER, accuracy) observation.
type RatePoint struct {
	BER float64
	Acc float64
}

// ImproveErrorTolerance implements Algorithm 1: starting from a trained
// baseline model, it walks the increasing BER schedule; at each rate it
// injects bit errors into the stored weights (baseline mapping, fixed
// weak cells), retrains for EpochsPerRate epochs, and evaluates under the
// same error rate. The last rate whose accuracy stays within AccBound of
// the baseline defines the provisional BERth. The input network is not
// modified; the improved model is returned. The context is checked
// inside the per-sample training and evaluation loops, so cancellation
// takes effect promptly.
func (f *Framework) ImproveErrorTolerance(ctx context.Context, baseline *snn.Network,
	train, test *dataset.Dataset, cfg TrainConfig) (*TrainResult, error) {
	if len(cfg.Rates) == 0 {
		return nil, errors.New("core: empty BER schedule")
	}
	for i := 1; i < len(cfg.Rates); i++ {
		if cfg.Rates[i] <= cfg.Rates[i-1] {
			return nil, errors.New("core: BER schedule must be strictly increasing")
		}
	}
	if cfg.EpochsPerRate <= 0 {
		return nil, errors.New("core: EpochsPerRate must be positive")
	}

	layout, err := f.LayoutFor(baseline, nil) // training assumes baseline mapping
	if err != nil {
		return nil, fmt.Errorf("core: improve-tolerance layout: %w", err)
	}
	root := rng.New(cfg.Seed)
	evalSeed := root.Derive("eval").Uint64()
	acc0, err := baseline.EvaluateBatch(ctx, test, rng.New(evalSeed), f.EvalWorkers)
	if err != nil {
		return nil, fmt.Errorf("core: baseline evaluation: %w", err)
	}
	f.emit(Event{Stage: "improve", Phase: "start", Epochs: len(cfg.Rates) * cfg.EpochsPerRate, Acc: acc0})

	modelTemp := baseline.Clone()
	res := &TrainResult{BaselineAcc: acc0, BERth: 0}
	best := baseline.Clone() // fall back to the input if nothing passes

	for i, rate := range cfg.Rates {
		if err := ctx.Err(); err != nil {
			return nil, err // stop at a rate boundary, not mid-epoch only
		}
		profile, err := errmodel.UniformProfile(f.Geom, rate, f.DeviceSeed)
		if err != nil {
			return nil, fmt.Errorf("core: profile at BER %.0e: %w", rate, err)
		}
		for e := 0; e < cfg.EpochsPerRate; e++ {
			// Inject errors into the stored weights, load (sanitized),
			// then train: the network adapts around the corrupted cells.
			w, _ := f.CorruptWeights(modelTemp.WeightsFlat(), layout, profile,
				root.DeriveIndex("inject", i*cfg.EpochsPerRate+e))
			if err := modelTemp.SetWeightsFlat(w); err != nil {
				return nil, fmt.Errorf("core: load corrupted weights: %w", err)
			}
			if err := modelTemp.TrainEpochCtx(ctx, train, root.DeriveIndex("train", i*cfg.EpochsPerRate+e)); err != nil {
				return nil, fmt.Errorf("core: fault-aware epoch at BER %.0e: %w", rate, err)
			}
			f.emit(Event{Stage: "improve", Phase: "progress",
				Epoch: i*cfg.EpochsPerRate + e + 1, Epochs: len(cfg.Rates) * cfg.EpochsPerRate, BER: rate})
		}
		if err := modelTemp.AssignLabelsCtx(ctx, train, root.DeriveIndex("assign", i)); err != nil {
			return nil, fmt.Errorf("core: label assignment at BER %.0e: %w", rate, err)
		}
		acc, err := f.EvaluateUnderErrorsCtx(ctx, modelTemp, test, layout, profile,
			root.DeriveIndex("evalinject", i).Uint64(), evalSeed)
		if err != nil {
			return nil, fmt.Errorf("core: evaluation at BER %.0e: %w", rate, err)
		}
		res.PerRate = append(res.PerRate, RatePoint{BER: rate, Acc: acc})
		if acc >= acc0-cfg.AccBound {
			best = modelTemp.Clone()
			res.BERth = rate
		}
	}
	res.Model = best
	f.emit(Event{Stage: "improve", Phase: "done", BER: res.BERth, Acc: acc0})
	return res, nil
}

// AnalyzeErrorTolerance implements Sec. IV-C: a linear search over the
// given increasing BER values, evaluating the (already improved) model
// under error injection at each rate, returning the maximum tolerable
// BER — the largest rate whose accuracy stays within accBound of
// baselineAcc — together with the full tolerance curve. The paper relies
// on the curve being generally decreasing (Fig. 8), so the search keeps
// the last passing rate. The context is checked inside the per-sample
// evaluation loops.
func (f *Framework) AnalyzeErrorTolerance(ctx context.Context, model *snn.Network,
	test *dataset.Dataset, rates []float64, baselineAcc, accBound float64,
	seed uint64) (float64, []RatePoint, error) {
	if len(rates) == 0 {
		return 0, nil, errors.New("core: no BER values to analyze")
	}
	layout, err := f.LayoutFor(model, nil)
	if err != nil {
		return 0, nil, fmt.Errorf("core: analyze-tolerance layout: %w", err)
	}
	f.emit(Event{Stage: "analyze", Phase: "start", Epochs: len(rates)})
	root := rng.New(seed)
	evalSeed := root.Derive("eval").Uint64()
	berTh := 0.0
	var curve []RatePoint
	// The model and the eval stream are fixed across the whole search —
	// only the injected corruption changes per point — so one batched
	// evaluator serves every rate: spike trains encode once and each
	// point is a weight swap plus the neuron-dynamics pass. Bit-identical
	// to evaluating a fresh clone per point (the Evaluator contract).
	ev := snn.NewEvaluatorWorkers(model, f.EvalWorkers)
	master := model.WeightsFlat()
	for i, rate := range rates {
		if err := ctx.Err(); err != nil {
			return 0, nil, err // stop at a point boundary
		}
		profile, err := errmodel.UniformProfile(f.Geom, rate, f.DeviceSeed)
		if err != nil {
			return 0, nil, fmt.Errorf("core: profile at BER %.0e: %w", rate, err)
		}
		w, _ := f.CorruptWeights(master, layout, profile, rng.New(root.DeriveIndex("inject", i).Uint64()))
		acc, err := ev.EvaluateWeights(ctx, test, w, rng.New(evalSeed))
		if err != nil {
			return 0, nil, fmt.Errorf("core: tolerance evaluation at BER %.0e: %w", rate, err)
		}
		curve = append(curve, RatePoint{BER: rate, Acc: acc})
		f.emit(Event{Stage: "analyze", Phase: "progress", Epoch: i + 1, Epochs: len(rates), BER: rate, Acc: acc})
		if acc >= baselineAcc-accBound {
			berTh = rate
		}
	}
	f.emit(Event{Stage: "analyze", Phase: "done", BER: berTh})
	return berTh, curve, nil
}

// ProfileAt characterizes the simulated device at a supply voltage
// (per-subarray BERs with the framework's spread and device seed).
func (f *Framework) ProfileAt(v float64) (*errmodel.Profile, error) {
	return errmodel.NewProfile(f.Geom, f.Circuit, v, f.Spread, f.DeviceSeed)
}

// MapModel performs the Sec. IV-D step: at supply voltage v, mark the
// subarrays whose error rate exceeds berTh as unsafe and place the
// model's weights with Algorithm 2. It returns the layout and profile.
func (f *Framework) MapModel(net *snn.Network, v, berTh float64) (*mapping.Layout, *errmodel.Profile, error) {
	profile, err := f.ProfileAt(v)
	if err != nil {
		return nil, nil, fmt.Errorf("core: device profile at %.3f V: %w", v, err)
	}
	safe := profile.SafeSubarrays(berTh)
	layout, err := f.LayoutFor(net, safe)
	if err != nil {
		return nil, nil, fmt.Errorf("core: map at %.3f V, BERth %.0e: %w", v, berTh, err)
	}
	return layout, profile, nil
}

// MapWeightsAdaptive maps a weight image of the given size at supply
// voltage v, relaxing the BER threshold (doubling it) until the safe
// subarrays can hold the image. It returns the layout, the profile, and
// the effective threshold actually used. This mirrors what a deployment
// would do when the tolerance analysis yields a threshold stricter than
// the device can satisfy for the required capacity.
func (f *Framework) MapWeightsAdaptive(weightCount int, v, berTh float64) (*mapping.Layout, *errmodel.Profile, float64, error) {
	profile, err := f.ProfileAt(v)
	if err != nil {
		return nil, nil, 0, fmt.Errorf("core: device profile at %.3f V: %w", v, err)
	}
	layout, th, err := f.MapAdaptiveWithProfile(profile, weightCount, berTh)
	if err != nil {
		return nil, nil, 0, err
	}
	return layout, profile, th, nil
}

// MapAdaptiveWithProfile is the relaxation kernel of MapWeightsAdaptive
// against an already-derived profile (the sweep engine shares one
// profile across many thresholds): the threshold doubles until the safe
// subarrays can hold the image, for at most 64 attempts.
func (f *Framework) MapAdaptiveWithProfile(profile *errmodel.Profile, weightCount int, berTh float64) (*mapping.Layout, float64, error) {
	return f.MapAdaptiveWithProfileIn(f.Format, profile, weightCount, berTh)
}

// MapAdaptiveWithProfileIn is MapAdaptiveWithProfile with an explicit
// stored-weight format (see LayoutForWeightsIn).
func (f *Framework) MapAdaptiveWithProfileIn(format quant.Format, profile *errmodel.Profile, weightCount int, berTh float64) (*mapping.Layout, float64, error) {
	th := berTh
	if th <= 0 {
		th = 1e-12
	}
	for attempt := 0; attempt < 64; attempt++ {
		layout, err := f.LayoutForWeightsIn(format, weightCount, profile.SafeSubarrays(th))
		if err == nil {
			return layout, th, nil
		}
		if !errors.Is(err, mapping.ErrInsufficientSafeCapacity) {
			return nil, 0, err
		}
		th *= 2
	}
	return nil, 0, fmt.Errorf("core: device cannot hold %d weights even with a relaxed threshold", weightCount)
}

// EnergyResult is the outcome of one energy/performance evaluation.
type EnergyResult struct {
	Voltage   float64
	Policy    string
	Stats     memctrl.Stats
	Breakdown power.Breakdown
}

// TotalMJ returns the DRAM energy of the replayed inference in mJ.
func (e EnergyResult) TotalMJ() float64 { return e.Breakdown.TotalMJ() }

// String summarizes the result.
func (e EnergyResult) String() string {
	return fmt.Sprintf("%s @ %.3fV: %.4f mJ, %s", e.Policy, e.Voltage, e.TotalMJ(), e.Stats)
}

// EvaluateEnergy replays one inference weight-streaming pass over the
// layout at supply voltage v and integrates DRAM energy: the controller
// classifies accesses and counts commands with the voltage-stretched
// timing, and the power model integrates the tally at the reduced
// voltage — the Fig. 10 tool-flow (traces + statistics -> DRAMPower).
func (f *Framework) EvaluateEnergy(layout *mapping.Layout, v float64) (EnergyResult, error) {
	ctl, err := memctrl.New(f.Geom, f.Circuit.Timing(v))
	if err != nil {
		return EnergyResult{}, fmt.Errorf("core: controller at %.3f V: %w", v, err)
	}
	stats := ctl.ReplayReads(layout.AccessStream())
	return EnergyResult{
		Voltage:   v,
		Policy:    layout.Policy,
		Stats:     stats,
		Breakdown: f.Power.Energy(stats.Tally, v),
	}, nil
}

// The end-to-end pipeline composition that used to live here as
// Framework.Run (train -> improve -> analyze -> map -> evaluate ->
// energy) moved to the public SDK at the repository root: package
// sparkxd's staged Pipeline API composes these kernel phases with
// cancellation, progress events, and persistable artifacts.
