// Package core implements the SparkXD framework itself — the paper's
// contribution (Sec. IV, Fig. 7). It wires the substrates together:
//
//	reduced supply voltage ─┐
//	DRAM error modeling ────┼─> Improving the SNN Error Tolerance (IV-B)
//	SNN model ──────────────┘        │ improved model
//	                                 v
//	                     Analyzing the Error Tolerance (IV-C)
//	                                 │ maximum tolerable BER (BERth)
//	                                 v
//	                     DRAM Mapping (IV-D, Algorithm 2)
//	                                 │
//	                                 v
//	          improved SNN + safe-subarray, row-hit-maximizing mapping
//
// The three public phases are ImproveErrorTolerance (Algorithm 1),
// AnalyzeErrorTolerance (the linear BER search), and MapModel
// (Algorithm 2 via package mapping), with Evaluate* helpers that measure
// accuracy, DRAM energy, and throughput for the experiment harness.
package core

import (
	"errors"
	"fmt"

	"sparkxd/internal/dataset"
	"sparkxd/internal/dram"
	"sparkxd/internal/errmodel"
	"sparkxd/internal/mapping"
	"sparkxd/internal/memctrl"
	"sparkxd/internal/power"
	"sparkxd/internal/quant"
	"sparkxd/internal/rng"
	"sparkxd/internal/snn"
	"sparkxd/internal/voltscale"
)

// Framework bundles the device models SparkXD operates against.
type Framework struct {
	Geom    dram.Geometry
	Circuit voltscale.Model
	Power   power.Model
	// ErrKind selects the EDEN error model (the paper uses Model 0).
	ErrKind errmodel.Kind
	// Spread is the per-subarray BER lognormal sigma for voltage-derived
	// profiles (0 = uniform device).
	Spread float64
	// DeviceSeed pins weak-cell locations of the simulated device.
	DeviceSeed uint64
	// Format is the stored weight representation (FP32 in the paper).
	Format quant.Format
}

// NewFramework returns the paper's experimental setup: LPDDR3-1600 4Gb,
// calibrated circuit and power models, EDEN error model 0, FP32 weights.
func NewFramework() *Framework {
	return &Framework{
		Geom:       dram.LPDDR3_1600_4Gb(),
		Circuit:    voltscale.Default(),
		Power:      power.Default(),
		ErrKind:    errmodel.Model0,
		Spread:     errmodel.DefaultSpread,
		DeviceSeed: 0xD0C5EED,
		Format:     quant.FP32,
	}
}

// Validate reports whether the framework is coherent.
func (f *Framework) Validate() error {
	if err := f.Geom.Validate(); err != nil {
		return err
	}
	if err := f.Circuit.Validate(); err != nil {
		return err
	}
	if err := f.Power.Validate(); err != nil {
		return err
	}
	if f.Spread < 0 {
		return errors.New("core: spread must be non-negative")
	}
	return nil
}

// LayoutForWeights places an image of weightCount weights with the given
// policy: nil safe flags select the baseline sequential mapping, a
// safe-flag set selects Algorithm 2.
func (f *Framework) LayoutForWeights(weightCount int, safe []bool) (*mapping.Layout, error) {
	units := mapping.UnitsFor(f.Format.ImageSize(weightCount, f.Geom.ColumnBytes), f.Geom.ColumnBytes)
	if safe == nil {
		return mapping.Baseline(f.Geom, units)
	}
	return mapping.SparkXD(f.Geom, units, safe)
}

// LayoutFor places a network's weight image with the given policy
// ("baseline" or a SparkXD safe-flag set).
func (f *Framework) LayoutFor(net *snn.Network, safe []bool) (*mapping.Layout, error) {
	return f.LayoutForWeights(net.WeightCount(), safe)
}

// CorruptWeights serializes weights through the layout, injects errors
// from the profile, and returns the corrupted weights plus the number of
// flipped bits. The input slice is not modified.
func (f *Framework) CorruptWeights(w []float32, layout *mapping.Layout,
	profile *errmodel.Profile, r *rng.Stream) ([]float32, int64) {
	img := make([]byte, f.Format.ImageSize(len(w), layout.UnitBytes()))
	if err := quant.Serialize(w, f.Format, img); err != nil {
		panic("core: serialize: " + err.Error()) // sizes are internally consistent
	}
	inj := errmodel.NewInjector(f.ErrKind, profile)
	flips := inj.Inject(img, layout, r)
	out := make([]float32, len(w))
	if err := quant.Deserialize(img, f.Format, out); err != nil {
		panic("core: deserialize: " + err.Error())
	}
	return out, flips
}

// EvaluateUnderErrors measures a network's accuracy when its weights pass
// through approximate DRAM: weights are corrupted via (layout, profile),
// loaded into a clone (with on-load sanitization), and evaluated.
// The eval stream is derived deterministically from evalSeed so that
// different corruption conditions are compared on identical spike trains
// (paired evaluation, which removes encoder noise from the comparison).
func (f *Framework) EvaluateUnderErrors(net *snn.Network, test *dataset.Dataset,
	layout *mapping.Layout, profile *errmodel.Profile, injectSeed, evalSeed uint64) float64 {
	w, _ := f.CorruptWeights(net.WeightsFlat(), layout, profile, rng.New(injectSeed))
	clone := net.Clone()
	if err := clone.SetWeightsFlat(w); err != nil {
		panic("core: " + err.Error())
	}
	return clone.Evaluate(test, rng.New(evalSeed))
}

// TrainConfig parameterizes Algorithm 1 (fault-aware training).
type TrainConfig struct {
	// Rates is the increasing BER schedule (e.g. 1e-9, 1e-8, ..., 1e-3:
	// "the next error rate is 10x of the previous one").
	Rates []float64
	// EpochsPerRate is Nepoch in Algorithm 1.
	EpochsPerRate int
	// AccBound is the tolerated accuracy drop versus the error-free
	// baseline (the paper uses 1% = 0.01).
	AccBound float64
	// Seed drives error injection and spike encoding during training.
	Seed uint64
}

// DefaultTrainConfig mirrors the paper's schedule.
func DefaultTrainConfig() TrainConfig {
	return TrainConfig{
		Rates:         []float64{1e-9, 1e-8, 1e-7, 1e-6, 1e-5, 1e-4, 1e-3},
		EpochsPerRate: 1,
		AccBound:      0.01,
		Seed:          7,
	}
}

// TrainResult is the outcome of Algorithm 1.
type TrainResult struct {
	// Model is the improved (fault-aware trained) network.
	Model *snn.Network
	// BaselineAcc is the error-free accuracy of the input model (acc0).
	BaselineAcc float64
	// BERth is the highest BER whose accuracy met the bound during
	// training (refined further by AnalyzeErrorTolerance).
	BERth float64
	// PerRate records accuracy after training at each schedule rate.
	PerRate []RatePoint
}

// RatePoint is one (BER, accuracy) observation.
type RatePoint struct {
	BER float64
	Acc float64
}

// ImproveErrorTolerance implements Algorithm 1: starting from a trained
// baseline model, it walks the increasing BER schedule; at each rate it
// injects bit errors into the stored weights (baseline mapping, fixed
// weak cells), retrains for EpochsPerRate epochs, and evaluates under the
// same error rate. The last rate whose accuracy stays within AccBound of
// the baseline defines the provisional BERth. The input network is not
// modified; the improved model is returned.
func (f *Framework) ImproveErrorTolerance(baseline *snn.Network,
	train, test *dataset.Dataset, cfg TrainConfig) (*TrainResult, error) {
	if len(cfg.Rates) == 0 {
		return nil, errors.New("core: empty BER schedule")
	}
	for i := 1; i < len(cfg.Rates); i++ {
		if cfg.Rates[i] <= cfg.Rates[i-1] {
			return nil, errors.New("core: BER schedule must be strictly increasing")
		}
	}
	if cfg.EpochsPerRate <= 0 {
		return nil, errors.New("core: EpochsPerRate must be positive")
	}

	layout, err := f.LayoutFor(baseline, nil) // training assumes baseline mapping
	if err != nil {
		return nil, err
	}
	root := rng.New(cfg.Seed)
	evalSeed := root.Derive("eval").Uint64()
	acc0 := baseline.Evaluate(test, rng.New(evalSeed))

	modelTemp := baseline.Clone()
	res := &TrainResult{BaselineAcc: acc0, BERth: 0}
	best := baseline.Clone() // fall back to the input if nothing passes

	for i, rate := range cfg.Rates {
		profile, err := errmodel.UniformProfile(f.Geom, rate, f.DeviceSeed)
		if err != nil {
			return nil, err
		}
		for e := 0; e < cfg.EpochsPerRate; e++ {
			// Inject errors into the stored weights, load (sanitized),
			// then train: the network adapts around the corrupted cells.
			w, _ := f.CorruptWeights(modelTemp.WeightsFlat(), layout, profile,
				root.DeriveIndex("inject", i*cfg.EpochsPerRate+e))
			if err := modelTemp.SetWeightsFlat(w); err != nil {
				return nil, err
			}
			modelTemp.TrainEpoch(train, root.DeriveIndex("train", i*cfg.EpochsPerRate+e))
		}
		modelTemp.AssignLabels(train, root.DeriveIndex("assign", i))
		acc := f.EvaluateUnderErrors(modelTemp, test, layout, profile,
			root.DeriveIndex("evalinject", i).Uint64(), evalSeed)
		res.PerRate = append(res.PerRate, RatePoint{BER: rate, Acc: acc})
		if acc >= acc0-cfg.AccBound {
			best = modelTemp.Clone()
			res.BERth = rate
		}
	}
	res.Model = best
	return res, nil
}

// AnalyzeErrorTolerance implements Sec. IV-C: a linear search over the
// given increasing BER values, evaluating the (already improved) model
// under error injection at each rate, returning the maximum tolerable
// BER — the largest rate whose accuracy stays within accBound of
// baselineAcc — together with the full tolerance curve. The paper relies
// on the curve being generally decreasing (Fig. 8), so the search keeps
// the last passing rate.
func (f *Framework) AnalyzeErrorTolerance(model *snn.Network,
	test *dataset.Dataset, rates []float64, baselineAcc, accBound float64,
	seed uint64) (float64, []RatePoint, error) {
	if len(rates) == 0 {
		return 0, nil, errors.New("core: no BER values to analyze")
	}
	layout, err := f.LayoutFor(model, nil)
	if err != nil {
		return 0, nil, err
	}
	root := rng.New(seed)
	evalSeed := root.Derive("eval").Uint64()
	berTh := 0.0
	var curve []RatePoint
	for i, rate := range rates {
		profile, err := errmodel.UniformProfile(f.Geom, rate, f.DeviceSeed)
		if err != nil {
			return 0, nil, err
		}
		acc := f.EvaluateUnderErrors(model, test, layout, profile,
			root.DeriveIndex("inject", i).Uint64(), evalSeed)
		curve = append(curve, RatePoint{BER: rate, Acc: acc})
		if acc >= baselineAcc-accBound {
			berTh = rate
		}
	}
	return berTh, curve, nil
}

// ProfileAt characterizes the simulated device at a supply voltage
// (per-subarray BERs with the framework's spread and device seed).
func (f *Framework) ProfileAt(v float64) (*errmodel.Profile, error) {
	return errmodel.NewProfile(f.Geom, f.Circuit, v, f.Spread, f.DeviceSeed)
}

// MapModel performs the Sec. IV-D step: at supply voltage v, mark the
// subarrays whose error rate exceeds berTh as unsafe and place the
// model's weights with Algorithm 2. It returns the layout and profile.
func (f *Framework) MapModel(net *snn.Network, v, berTh float64) (*mapping.Layout, *errmodel.Profile, error) {
	profile, err := f.ProfileAt(v)
	if err != nil {
		return nil, nil, err
	}
	safe := profile.SafeSubarrays(berTh)
	layout, err := f.LayoutFor(net, safe)
	if err != nil {
		return nil, nil, err
	}
	return layout, profile, nil
}

// MapWeightsAdaptive maps a weight image of the given size at supply
// voltage v, relaxing the BER threshold (doubling it) until the safe
// subarrays can hold the image. It returns the layout, the profile, and
// the effective threshold actually used. This mirrors what a deployment
// would do when the tolerance analysis yields a threshold stricter than
// the device can satisfy for the required capacity.
func (f *Framework) MapWeightsAdaptive(weightCount int, v, berTh float64) (*mapping.Layout, *errmodel.Profile, float64, error) {
	profile, err := f.ProfileAt(v)
	if err != nil {
		return nil, nil, 0, err
	}
	th := berTh
	if th <= 0 {
		th = 1e-12
	}
	for attempt := 0; attempt < 64; attempt++ {
		layout, err := f.LayoutForWeights(weightCount, profile.SafeSubarrays(th))
		if err == nil {
			return layout, profile, th, nil
		}
		if !errors.Is(err, mapping.ErrInsufficientSafeCapacity) {
			return nil, nil, 0, err
		}
		th *= 2
	}
	return nil, nil, 0, fmt.Errorf("core: device cannot hold %d weights even with a relaxed threshold", weightCount)
}

// EnergyResult is the outcome of one energy/performance evaluation.
type EnergyResult struct {
	Voltage   float64
	Policy    string
	Stats     memctrl.Stats
	Breakdown power.Breakdown
}

// TotalMJ returns the DRAM energy of the replayed inference in mJ.
func (e EnergyResult) TotalMJ() float64 { return e.Breakdown.TotalMJ() }

// String summarizes the result.
func (e EnergyResult) String() string {
	return fmt.Sprintf("%s @ %.3fV: %.4f mJ, %s", e.Policy, e.Voltage, e.TotalMJ(), e.Stats)
}

// EvaluateEnergy replays one inference weight-streaming pass over the
// layout at supply voltage v and integrates DRAM energy: the controller
// classifies accesses and counts commands with the voltage-stretched
// timing, and the power model integrates the tally at the reduced
// voltage — the Fig. 10 tool-flow (traces + statistics -> DRAMPower).
func (f *Framework) EvaluateEnergy(layout *mapping.Layout, v float64) (EnergyResult, error) {
	ctl, err := memctrl.New(f.Geom, f.Circuit.Timing(v))
	if err != nil {
		return EnergyResult{}, err
	}
	stats := ctl.ReplayReads(layout.AccessStream())
	return EnergyResult{
		Voltage:   v,
		Policy:    layout.Policy,
		Stats:     stats,
		Breakdown: f.Power.Energy(stats.Tally, v),
	}, nil
}

// RunConfig drives the end-to-end pipeline for one network size and
// dataset (everything Fig. 7 takes as input).
type RunConfig struct {
	Neurons     int
	Flavor      dataset.Flavor
	TrainN      int
	TestN       int
	BaseEpochs  int
	Train       TrainConfig
	Voltage     float64 // approximate-DRAM supply voltage
	NetworkSeed uint64
}

// DefaultRunConfig returns a laptop-fast end-to-end configuration.
func DefaultRunConfig(neurons int) RunConfig {
	return RunConfig{
		Neurons:     neurons,
		Flavor:      dataset.MNISTLike,
		TrainN:      300,
		TestN:       128,
		BaseEpochs:  2,
		Train:       DefaultTrainConfig(),
		Voltage:     voltscale.V1025,
		NetworkSeed: 1,
	}
}

// RunResult is the outcome of the full pipeline.
type RunResult struct {
	Baseline    *snn.Network
	Improved    *snn.Network
	BaselineAcc float64
	ImprovedAcc float64 // under errors at the run voltage, SparkXD mapping
	BERth       float64
	Curve       []RatePoint
	// Energy at nominal voltage with baseline mapping vs run voltage
	// with SparkXD mapping (the Fig. 12(a) comparison).
	EnergyBaseline EnergyResult
	EnergySparkXD  EnergyResult
	// Speedup is baseline makespan / SparkXD makespan (Fig. 12(b)).
	Speedup float64
}

// EnergySavings returns the fractional DRAM energy saving of SparkXD.
func (r *RunResult) EnergySavings() float64 {
	base := r.EnergyBaseline.TotalMJ()
	if base == 0 {
		return 0
	}
	return 1 - r.EnergySparkXD.TotalMJ()/base
}

// Run executes the whole SparkXD pipeline: train a baseline SNN, improve
// its error tolerance (Algorithm 1), analyze the maximum tolerable BER,
// map the improved model with Algorithm 2 at the requested voltage, and
// evaluate accuracy, energy, and throughput.
func (f *Framework) Run(cfg RunConfig) (*RunResult, error) {
	if err := f.Validate(); err != nil {
		return nil, err
	}
	dcfg := dataset.DefaultConfig(cfg.Flavor)
	dcfg.Train, dcfg.Test = cfg.TrainN, cfg.TestN
	train, test, err := dataset.Generate(dcfg)
	if err != nil {
		return nil, err
	}

	// Baseline SNN trained without DRAM errors.
	netCfg := snn.DefaultConfig(cfg.Neurons)
	baseline, err := snn.New(netCfg, rng.New(cfg.NetworkSeed))
	if err != nil {
		return nil, err
	}
	root := rng.New(cfg.NetworkSeed).Derive("run")
	for e := 0; e < cfg.BaseEpochs; e++ {
		baseline.TrainEpoch(train, root.DeriveIndex("base-epoch", e))
	}
	baseline.AssignLabels(train, root.Derive("base-assign"))

	// Phase 1: fault-aware training (Algorithm 1).
	tr, err := f.ImproveErrorTolerance(baseline, train, test, cfg.Train)
	if err != nil {
		return nil, err
	}

	// Phase 2: tolerance analysis on the improved model.
	berTh, curve, err := f.AnalyzeErrorTolerance(tr.Model, test, cfg.Train.Rates,
		tr.BaselineAcc, cfg.Train.AccBound, cfg.Train.Seed+1)
	if err != nil {
		return nil, err
	}

	// Phase 3: DRAM mapping at the target voltage.
	layout, profile, err := f.MapModel(tr.Model, cfg.Voltage, berTh)
	if err != nil {
		return nil, err
	}
	baseLayout, err := f.LayoutFor(baseline, nil)
	if err != nil {
		return nil, err
	}

	// Evaluations.
	improvedAcc := f.EvaluateUnderErrors(tr.Model, test, layout, profile,
		cfg.Train.Seed+2, cfg.Train.Seed+3)
	eBase, err := f.EvaluateEnergy(baseLayout, voltscale.VNominal)
	if err != nil {
		return nil, err
	}
	eSpark, err := f.EvaluateEnergy(layout, cfg.Voltage)
	if err != nil {
		return nil, err
	}
	speedup := 1.0
	if eSpark.Stats.TotalNs > 0 {
		// Throughput comparison at matched (nominal) timing isolates the
		// mapping effect, as in Fig. 12(b).
		eSparkNominal, err := f.EvaluateEnergy(layout, voltscale.VNominal)
		if err != nil {
			return nil, err
		}
		speedup = eBase.Stats.TotalNs / eSparkNominal.Stats.TotalNs
	}

	return &RunResult{
		Baseline:       baseline,
		Improved:       tr.Model,
		BaselineAcc:    tr.BaselineAcc,
		ImprovedAcc:    improvedAcc,
		BERth:          berTh,
		Curve:          curve,
		EnergyBaseline: eBase,
		EnergySparkXD:  eSpark,
		Speedup:        speedup,
	}, nil
}
