package core

import (
	"context"
	"math"
	"testing"

	"sparkxd/internal/dataset"
	"sparkxd/internal/errmodel"
	"sparkxd/internal/rng"
	"sparkxd/internal/snn"
	"sparkxd/internal/voltscale"
)

func framework(t *testing.T) *Framework {
	t.Helper()
	f := NewFramework()
	if err := f.Validate(); err != nil {
		t.Fatalf("framework invalid: %v", err)
	}
	return f
}

func tinyNet(t *testing.T, neurons int) *snn.Network {
	t.Helper()
	n, err := snn.New(snn.DefaultConfig(neurons), rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func tinyData(t *testing.T, trainN, testN int) (*dataset.Dataset, *dataset.Dataset) {
	t.Helper()
	cfg := dataset.DefaultConfig(dataset.MNISTLike)
	cfg.Train, cfg.Test = trainN, testN
	tr, te, err := dataset.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return tr, te
}

func TestLayoutForBaselineAndSparkXD(t *testing.T) {
	f := framework(t)
	net := tinyNet(t, 50)
	base, err := f.LayoutFor(net, nil)
	if err != nil {
		t.Fatal(err)
	}
	if base.Policy != "baseline" {
		t.Error("nil safe flags must give the baseline layout")
	}
	wantBytes := net.WeightCount() * 4
	if base.Units()*base.UnitBytes() < wantBytes {
		t.Errorf("layout too small: %d units * %d B < %d B",
			base.Units(), base.UnitBytes(), wantBytes)
	}
	profile, err := f.ProfileAt(voltscale.V1100)
	if err != nil {
		t.Fatal(err)
	}
	spark, err := f.LayoutFor(net, profile.SafeSubarrays(1e-4))
	if err != nil {
		t.Fatal(err)
	}
	if spark.Policy != "sparkxd" {
		t.Error("safe flags must give the sparkxd layout")
	}
}

func TestCorruptWeightsZeroBERIsIdentity(t *testing.T) {
	f := framework(t)
	net := tinyNet(t, 30)
	layout, _ := f.LayoutFor(net, nil)
	profile, err := errmodel.UniformProfile(f.Geom, 0, f.DeviceSeed)
	if err != nil {
		t.Fatal(err)
	}
	w := net.WeightsFlat()
	out, flips := f.CorruptWeights(w, layout, profile, rng.New(2))
	if flips != 0 {
		t.Fatalf("zero BER flipped %d bits", flips)
	}
	for i := range w {
		if out[i] != w[i] {
			t.Fatal("zero-BER corruption must be the identity")
		}
	}
}

func TestCorruptWeightsFlipsAtHighBER(t *testing.T) {
	f := framework(t)
	net := tinyNet(t, 30)
	layout, _ := f.LayoutFor(net, nil)
	profile, _ := errmodel.UniformProfile(f.Geom, 1e-3, f.DeviceSeed)
	w := net.WeightsFlat()
	out, flips := f.CorruptWeights(w, layout, profile, rng.New(2))
	if flips == 0 {
		t.Fatal("BER 1e-3 must flip some bits in a 94 KB image")
	}
	diff := 0
	for i := range w {
		if out[i] != w[i] {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("flipped bits must change some weights")
	}
	// Input must be untouched.
	w2 := net.WeightsFlat()
	for i := range w {
		if w[i] != w2[i] {
			t.Fatal("CorruptWeights must not modify the network")
		}
	}
}

func TestEvaluateUnderErrorsPairedDeterminism(t *testing.T) {
	f := framework(t)
	net := tinyNet(t, 30)
	_, test := tinyData(t, 10, 30)
	layout, _ := f.LayoutFor(net, nil)
	profile, _ := errmodel.UniformProfile(f.Geom, 1e-5, f.DeviceSeed)
	a := f.EvaluateUnderErrors(net, test, layout, profile, 5, 9)
	b := f.EvaluateUnderErrors(net, test, layout, profile, 5, 9)
	if a != b {
		t.Fatal("evaluation must be deterministic in its seeds")
	}
}

func TestImproveErrorToleranceRejectsBadSchedules(t *testing.T) {
	f := framework(t)
	net := tinyNet(t, 20)
	train, test := tinyData(t, 10, 10)
	cfg := DefaultTrainConfig()
	cfg.Rates = nil
	if _, err := f.ImproveErrorTolerance(context.Background(), net, train, test, cfg); err == nil {
		t.Error("empty schedule must error")
	}
	cfg = DefaultTrainConfig()
	cfg.Rates = []float64{1e-5, 1e-5}
	if _, err := f.ImproveErrorTolerance(context.Background(), net, train, test, cfg); err == nil {
		t.Error("non-increasing schedule must error")
	}
	cfg = DefaultTrainConfig()
	cfg.EpochsPerRate = 0
	if _, err := f.ImproveErrorTolerance(context.Background(), net, train, test, cfg); err == nil {
		t.Error("zero epochs must error")
	}
}

func TestImproveErrorToleranceSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("training pipeline skipped in -short mode")
	}
	f := framework(t)
	train, test := tinyData(t, 120, 60)
	baseline := tinyNet(t, 60)
	baseline.TrainEpoch(train, rng.New(3))
	baseline.AssignLabels(train, rng.New(4))

	cfg := DefaultTrainConfig()
	cfg.Rates = []float64{1e-6, 1e-4, 1e-3}
	res, err := f.ImproveErrorTolerance(context.Background(), baseline, train, test, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Model == nil {
		t.Fatal("no model returned")
	}
	if len(res.PerRate) != len(cfg.Rates) {
		t.Fatalf("PerRate has %d entries, want %d", len(res.PerRate), len(cfg.Rates))
	}
	if res.BaselineAcc <= 0.2 {
		t.Fatalf("baseline accuracy %.2f unexpectedly low", res.BaselineAcc)
	}
	// The improved model must itself stay near the baseline accuracy when
	// evaluated under the BERth errors it was accepted at.
	if res.BERth > 0 {
		layout, _ := f.LayoutFor(res.Model, nil)
		profile, _ := errmodel.UniformProfile(f.Geom, res.BERth, f.DeviceSeed)
		acc := f.EvaluateUnderErrors(res.Model, test, layout, profile, 11, 12)
		if acc < res.BaselineAcc-0.15 {
			t.Errorf("improved model at BERth: %.2f, baseline %.2f", acc, res.BaselineAcc)
		}
	}
}

func TestAnalyzeErrorTolerance(t *testing.T) {
	if testing.Short() {
		t.Skip("skipped in -short mode")
	}
	f := framework(t)
	train, test := tinyData(t, 100, 50)
	net := tinyNet(t, 60)
	net.TrainEpoch(train, rng.New(3))
	net.AssignLabels(train, rng.New(4))
	acc0 := net.Evaluate(test, rng.New(5))

	rates := []float64{1e-8, 1e-6, 1e-4, 1e-3}
	berTh, curve, err := f.AnalyzeErrorTolerance(context.Background(), net, test, rates, acc0, 0.05, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(curve) != len(rates) {
		t.Fatalf("curve has %d points", len(curve))
	}
	// BERth must be one of the rates (or zero).
	if berTh != 0 {
		found := false
		for _, r := range rates {
			if r == berTh {
				found = true
			}
		}
		if !found {
			t.Fatalf("BERth %v not in the analyzed set", berTh)
		}
	}
	if _, _, err := f.AnalyzeErrorTolerance(context.Background(), net, test, nil, acc0, 0.05, 7); err == nil {
		t.Error("empty rate list must error")
	}
}

func TestMapModelRespectsSafety(t *testing.T) {
	f := framework(t)
	net := tinyNet(t, 60)
	layout, profile, err := f.MapModel(net, voltscale.V1100, 1e-4)
	if err != nil {
		t.Fatal(err)
	}
	safe := profile.SafeSubarrays(1e-4)
	for u := 0; u < layout.Units(); u++ {
		lin := layout.CoordOf(u).SubarrayOf().Linear(f.Geom)
		if !safe[lin] {
			t.Fatalf("unit %d placed in unsafe subarray", u)
		}
	}
}

func TestEvaluateEnergyVoltageOrdering(t *testing.T) {
	f := framework(t)
	net := tinyNet(t, 100)
	layout, _ := f.LayoutFor(net, nil)
	eHi, err := f.EvaluateEnergy(layout, voltscale.VNominal)
	if err != nil {
		t.Fatal(err)
	}
	eLo, err := f.EvaluateEnergy(layout, voltscale.V1025)
	if err != nil {
		t.Fatal(err)
	}
	if eLo.TotalMJ() >= eHi.TotalMJ() {
		t.Fatalf("reduced voltage must save energy: %.4g >= %.4g",
			eLo.TotalMJ(), eHi.TotalMJ())
	}
	saving := 1 - eLo.TotalMJ()/eHi.TotalMJ()
	// End-to-end savings should be in the vicinity of the paper's ~40%
	// (Fig. 12(a)); same mapping here, so expect close to Table I's 42%.
	if saving < 0.30 || saving > 0.50 {
		t.Errorf("savings at 1.025V = %.1f%%, want ~40%%", saving*100)
	}
}

func TestEvaluateEnergyHitRateHigherForSparkXD(t *testing.T) {
	f := framework(t)
	net := tinyNet(t, 200)
	base, _ := f.LayoutFor(net, nil)
	profile, _ := f.ProfileAt(voltscale.V1100)
	spark, err := f.LayoutFor(net, profile.SafeSubarrays(profile.MeanBER()*2))
	if err != nil {
		t.Skip("not enough safe capacity at this profile; acceptable")
	}
	eb, _ := f.EvaluateEnergy(base, voltscale.VNominal)
	es, _ := f.EvaluateEnergy(spark, voltscale.VNominal)
	if es.Stats.HitRate() < eb.Stats.HitRate()-1e-9 {
		t.Errorf("sparkxd hit rate %.3f below baseline %.3f",
			es.Stats.HitRate(), eb.Stats.HitRate())
	}
	if es.Stats.TotalNs > eb.Stats.TotalNs*1.001 {
		t.Errorf("sparkxd slower: %v vs %v ns", es.Stats.TotalNs, eb.Stats.TotalNs)
	}
}

func TestEnergyResultHelpers(t *testing.T) {
	f := framework(t)
	net := tinyNet(t, 30)
	layout, _ := f.LayoutFor(net, nil)
	e, err := f.EvaluateEnergy(layout, voltscale.VNominal)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(e.TotalMJ()-e.Breakdown.TotalMJ()) > 1e-18 {
		t.Error("TotalMJ helper wrong")
	}
	if len(e.String()) == 0 {
		t.Error("String empty")
	}
}

func TestDefaultTrainConfigSchedule(t *testing.T) {
	cfg := DefaultTrainConfig()
	for i := 1; i < len(cfg.Rates); i++ {
		if math.Abs(cfg.Rates[i]/cfg.Rates[i-1]-10) > 1e-9 {
			t.Fatal("default schedule must be 10x steps (the paper's example)")
		}
	}
	if cfg.AccBound != 0.01 {
		t.Fatal("default accuracy bound must be 1%")
	}
}
