package core

import "sparkxd/internal/tracing"

// Event is one structured progress notification from the framework
// kernel. Servers and CLIs subscribe to the stream through an Observer
// instead of polling; every field is a plain value so events can be
// logged, serialized, or forwarded as-is.
type Event struct {
	// Stage names the pipeline phase emitting the event: "train",
	// "improve", "analyze", "map", "evaluate", "energy".
	Stage string `json:"stage"`
	// Phase is "start", "progress", or "done".
	Phase string `json:"phase"`
	// Epoch/Epochs report training progress within the stage (1-based;
	// zero when not applicable).
	Epoch  int `json:"epoch,omitempty"`
	Epochs int `json:"epochs,omitempty"`
	// BER is the bit error rate the stage is currently working at.
	BER float64 `json:"ber,omitempty"`
	// Acc is the most recent accuracy observation.
	Acc float64 `json:"acc,omitempty"`
	// Message carries free-form detail.
	Message string `json:"message,omitempty"`
	// Span, when set, marks this event as a finished-span record riding
	// the existing worker→coordinator event batches (DESIGN.md §14). The
	// coordinator routes span events into the job's trace instead of its
	// SSE stream; the kernel itself never sets this field, so ordinary
	// progress events serialize exactly as before.
	Span *tracing.SpanData `json:"span,omitempty"`
}

// Observer receives progress events. Observers must be fast and must not
// mutate the framework; they are called synchronously from the training
// and analysis loops.
type Observer func(Event)

// emit delivers an event to the framework's observer, if any.
func (f *Framework) emit(ev Event) {
	if f.Observer != nil {
		f.Observer(ev)
	}
}
