package tracing

import (
	"context"
	"net/http"
	"strings"
	"testing"
	"time"
)

func TestTraceparentRoundTrip(t *testing.T) {
	sc := NewContext()
	tp := sc.Traceparent()
	if len(tp) != 55 || !strings.HasPrefix(tp, "00-") {
		t.Fatalf("bad traceparent form: %q", tp)
	}
	got, err := ParseTraceparent(tp)
	if err != nil {
		t.Fatalf("ParseTraceparent(%q): %v", tp, err)
	}
	if got != sc {
		t.Fatalf("round trip mismatch: sent %+v got %+v", sc, got)
	}
}

func TestParseTraceparentRejectsMalformed(t *testing.T) {
	bad := []string{
		"",
		"00-abc",
		"01-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01",                   // unknown version
		"00-00000000000000000000000000000000-b7ad6b7169203331-01",                   // zero trace id
		"00-0af7651916cd43dd8448eb211c80319c-0000000000000000-01",                   // zero span id
		"00-0af7651916cd43dd8448eb211c80319cZZ-b7ad6b7169203331-01",                 // wrong length
		"00-zaf7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01",                   // non-hex
		"00+0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01",                   // wrong separator
		"00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-zz",                   // bad flags
		"00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01-extradatahereoops", // trailing junk
	}
	for _, s := range bad {
		if _, err := ParseTraceparent(s); err == nil {
			t.Errorf("ParseTraceparent(%q) accepted malformed input", s)
		}
	}
}

func TestParseTraceparentAccepted(t *testing.T) {
	sc, err := ParseTraceparent("00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01")
	if err != nil {
		t.Fatal(err)
	}
	if sc.TraceID.String() != "0af7651916cd43dd8448eb211c80319c" {
		t.Fatalf("trace id = %s", sc.TraceID)
	}
	if sc.SpanID.String() != "b7ad6b7169203331" {
		t.Fatalf("span id = %s", sc.SpanID)
	}
	if sc.Flags != FlagSampled {
		t.Fatalf("flags = %02x", sc.Flags)
	}
}

func TestNewIDsAreDistinctAndNonZero(t *testing.T) {
	a, b := NewTraceID(), NewTraceID()
	if a.IsZero() || b.IsZero() {
		t.Fatal("zero trace id minted")
	}
	if a == b {
		t.Fatal("two NewTraceID calls collided")
	}
	if NewSpanID().IsZero() {
		t.Fatal("zero span id minted")
	}
}

func TestSpanParentingAndDuration(t *testing.T) {
	root := Start(SpanContext{}, "coordinator", "job")
	if !root.Context().Valid() {
		t.Fatal("root span has invalid context")
	}
	child := Start(root.Context(), "worker-1", "train")
	if child.Context().TraceID != root.Context().TraceID {
		t.Fatal("child left the trace")
	}
	time.Sleep(5 * time.Millisecond)
	cd := child.End()
	if cd.Parent != root.Context().SpanID.String() {
		t.Fatalf("child parent = %q, want %q", cd.Parent, root.Context().SpanID)
	}
	if cd.DurationNanos < (2 * time.Millisecond).Nanoseconds() {
		t.Fatalf("child duration %dns, want >= 2ms (monotonic measurement)", cd.DurationNanos)
	}
	rd := root.End()
	if rd.Parent != "" {
		t.Fatalf("root has parent %q", rd.Parent)
	}
	if rd.DurationNanos < cd.DurationNanos {
		t.Fatalf("root (%dns) shorter than its child (%dns)", rd.DurationNanos, cd.DurationNanos)
	}
	if cd.StartUnixNano < rd.StartUnixNano {
		t.Fatal("child started before its parent")
	}
}

func TestEndWithDurationBackdates(t *testing.T) {
	s := Start(NewContext(), "w", "sweep")
	d := 250 * time.Millisecond
	sd := s.EndWithDuration(d)
	if sd.DurationNanos != d.Nanoseconds() {
		t.Fatalf("duration %d, want %d", sd.DurationNanos, d.Nanoseconds())
	}
	end := sd.EndUnixNano()
	now := time.Now().UnixNano()
	if diff := now - end; diff < 0 || diff > (5*time.Second).Nanoseconds() {
		t.Fatalf("backdated span should end about now (end %d, now %d)", end, now)
	}
}

func TestCompletedSpan(t *testing.T) {
	parent := NewContext()
	start := time.Now().Add(-time.Second)
	sd := Completed(parent, "coordinator", "queue-wait", start, time.Second, map[string]string{"episode": "1"})
	if sd.Parent != parent.SpanID.String() {
		t.Fatalf("parent = %q", sd.Parent)
	}
	if sd.DurationNanos != time.Second.Nanoseconds() {
		t.Fatalf("duration = %d", sd.DurationNanos)
	}
	if sd.Attrs["episode"] != "1" {
		t.Fatalf("attrs = %v", sd.Attrs)
	}
	neg := Completed(parent, "p", "n", start, -time.Second, nil)
	if neg.DurationNanos != 0 {
		t.Fatalf("negative duration not clamped: %d", neg.DurationNanos)
	}
}

func TestContextPlumbing(t *testing.T) {
	sc := NewContext()
	ctx := ContextWith(context.Background(), sc)
	got, ok := FromContext(ctx)
	if !ok || got != sc {
		t.Fatalf("FromContext = %+v, %v", got, ok)
	}
	if _, ok := FromContext(context.Background()); ok {
		t.Fatal("FromContext on empty context reported a value")
	}
}

func TestHeaderInjectExtract(t *testing.T) {
	h := make(http.Header)
	sc := NewContext()
	Inject(h, sc)
	got, ok := Extract(h)
	if !ok || got != sc {
		t.Fatalf("Extract = %+v, %v", got, ok)
	}
	Inject(h, SpanContext{}) // invalid context must not clobber anything into the header
	if _, ok := Extract(make(http.Header)); ok {
		t.Fatal("Extract on empty headers succeeded")
	}
}
