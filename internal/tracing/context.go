package tracing

import (
	"context"
	"net/http"
)

type ctxKey struct{}

// ContextWith returns a context carrying sc, for in-process propagation
// (e.g. a caller handing its span context to client.Submit).
func ContextWith(ctx context.Context, sc SpanContext) context.Context {
	return context.WithValue(ctx, ctxKey{}, sc)
}

// FromContext extracts a span context stored by ContextWith.
func FromContext(ctx context.Context) (SpanContext, bool) {
	sc, ok := ctx.Value(ctxKey{}).(SpanContext)
	return sc, ok && sc.Valid()
}

// Header is the HTTP header carrying trace context between processes.
const Header = "traceparent"

// Inject stamps sc onto an outgoing request's headers.
func Inject(h http.Header, sc SpanContext) {
	if sc.Valid() {
		h.Set(Header, sc.Traceparent())
	}
}

// Extract reads the trace context from incoming headers; false when
// absent or malformed.
func Extract(h http.Header) (SpanContext, bool) {
	sc, err := ParseTraceparent(h.Get(Header))
	return sc, err == nil
}
