// Package tracing is the dependency-free distributed-tracing kernel of
// the sparkxd serving stack (DESIGN.md §14): 128-bit trace IDs, 64-bit
// span IDs, W3C `traceparent` encoding for out-of-band propagation over
// HTTP headers and lease payloads, context plumbing, and a span builder
// whose durations come from Go's monotonic clock.
//
// Trace context is ALWAYS carried out-of-band — never inside a JobSpec —
// so content-hashed job IDs and every artifact stay byte-identical
// whether tracing is on or off. The serializable SpanData records are
// what the coordinator assembles into a KindJobTrace artifact once a
// job reaches a terminal state.
package tracing

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"time"
)

// TraceID identifies one end-to-end request (a job's whole lifetime,
// across every process that touched it).
type TraceID [16]byte

// SpanID identifies one span within a trace.
type SpanID [8]byte

// String returns the 32-char lowercase-hex form.
func (t TraceID) String() string { return hex.EncodeToString(t[:]) }

// IsZero reports whether the ID is the invalid all-zero value.
func (t TraceID) IsZero() bool { return t == TraceID{} }

// String returns the 16-char lowercase-hex form.
func (s SpanID) String() string { return hex.EncodeToString(s[:]) }

// IsZero reports whether the ID is the invalid all-zero value.
func (s SpanID) IsZero() bool { return s == SpanID{} }

// NewTraceID returns a random non-zero trace ID.
func NewTraceID() TraceID {
	var t TraceID
	fill(t[:])
	return t
}

// NewSpanID returns a random non-zero span ID.
func NewSpanID() SpanID {
	var s SpanID
	fill(s[:])
	return s
}

// fill randomizes b, guaranteeing it is not all zero (the W3C invalid
// value). crypto/rand never fails on the supported platforms; if it
// somehow does, fall back to a fixed non-zero pattern rather than
// minting an invalid ID.
func fill(b []byte) {
	for {
		if _, err := rand.Read(b); err != nil {
			for i := range b {
				b[i] = 0xff
			}
			return
		}
		for _, c := range b {
			if c != 0 {
				return
			}
		}
	}
}

// FlagSampled is the traceparent flag bit marking a sampled trace.
// sparkxd records every span of every traced job, so contexts minted
// here always carry it.
const FlagSampled = 0x01

// SpanContext is the propagated identity of one span: enough to parent
// a child span in another process.
type SpanContext struct {
	TraceID TraceID
	SpanID  SpanID
	Flags   byte
}

// Valid reports whether both IDs are non-zero.
func (sc SpanContext) Valid() bool { return !sc.TraceID.IsZero() && !sc.SpanID.IsZero() }

// NewContext mints a fresh root span context (new trace).
func NewContext() SpanContext {
	return SpanContext{TraceID: NewTraceID(), SpanID: NewSpanID(), Flags: FlagSampled}
}

// Child returns a context in the same trace with a fresh span ID.
func (sc SpanContext) Child() SpanContext {
	return SpanContext{TraceID: sc.TraceID, SpanID: NewSpanID(), Flags: sc.Flags}
}

// Traceparent encodes the context in the W3C trace-context form:
// "00-<32 hex trace-id>-<16 hex span-id>-<2 hex flags>".
func (sc SpanContext) Traceparent() string {
	return fmt.Sprintf("00-%s-%s-%02x", sc.TraceID, sc.SpanID, sc.Flags)
}

// ParseTraceparent decodes a W3C traceparent header. Unknown versions
// are rejected conservatively (the caller should then mint a fresh
// context), as are all-zero trace or span IDs.
func ParseTraceparent(s string) (SpanContext, error) {
	var sc SpanContext
	if len(s) != 55 || s[2] != '-' || s[35] != '-' || s[52] != '-' {
		return sc, fmt.Errorf("tracing: malformed traceparent %q", s)
	}
	if s[0] != '0' || s[1] != '0' {
		return sc, fmt.Errorf("tracing: unsupported traceparent version %q", s[:2])
	}
	if _, err := hex.Decode(sc.TraceID[:], []byte(s[3:35])); err != nil {
		return sc, fmt.Errorf("tracing: bad trace id in %q", s)
	}
	if _, err := hex.Decode(sc.SpanID[:], []byte(s[36:52])); err != nil {
		return sc, fmt.Errorf("tracing: bad span id in %q", s)
	}
	var flags [1]byte
	if _, err := hex.Decode(flags[:], []byte(s[53:55])); err != nil {
		return sc, fmt.Errorf("tracing: bad flags in %q", s)
	}
	sc.Flags = flags[0]
	if !sc.Valid() {
		return SpanContext{}, fmt.Errorf("tracing: all-zero ids in %q", s)
	}
	return sc, nil
}

// SpanData is the serializable record of one finished span — the unit
// the coordinator assembles into a job's trace artifact. Start is a
// wall-clock anchor (for cross-process waterfall alignment); Duration
// was measured on the emitting process's monotonic clock, so it is
// immune to wall-clock steps.
type SpanData struct {
	// SpanID is the span's 16-hex-char identity within its trace.
	SpanID string `json:"span_id"`
	// Parent is the parent span's ID ("" for the root).
	Parent string `json:"parent_span_id,omitempty"`
	// Name is what the span measures ("queue-wait", "lease", "train"...).
	Name string `json:"name"`
	// Process names the process that emitted the span (the coordinator,
	// or a worker's fleet name).
	Process string `json:"process"`
	// StartUnixNano is the span's wall-clock start.
	StartUnixNano int64 `json:"start_unix_nano"`
	// DurationNanos is the monotonic-clock duration.
	DurationNanos int64 `json:"duration_nanos"`
	// Attrs carries span-scoped key/value detail.
	Attrs map[string]string `json:"attrs,omitempty"`
}

// EndUnixNano is the span's wall-clock end (start + duration).
func (d SpanData) EndUnixNano() int64 { return d.StartUnixNano + d.DurationNanos }

// Span is an in-flight measurement. Start one with Start (or the
// retroactive Completed), attach attributes, then End it to obtain the
// serializable SpanData.
type Span struct {
	sc      SpanContext
	parent  SpanID
	name    string
	process string
	start   time.Time // carries the monotonic reading
	attrs   map[string]string
}

// Start opens a span as a child of parent. An invalid parent starts a
// new trace with the span as root.
func Start(parent SpanContext, process, name string) *Span {
	sc := parent.Child()
	if !parent.Valid() {
		sc = NewContext()
		parent.SpanID = SpanID{}
	}
	return &Span{
		sc:      sc,
		parent:  parent.SpanID,
		name:    name,
		process: process,
		start:   time.Now(),
	}
}

// Context returns the span's own context, for parenting children
// (possibly in another process, via Traceparent).
func (s *Span) Context() SpanContext { return s.sc }

// SetAttr attaches one key/value attribute.
func (s *Span) SetAttr(k, v string) {
	if s.attrs == nil {
		s.attrs = make(map[string]string)
	}
	s.attrs[k] = v
}

// End closes the span, measuring its duration on the monotonic clock.
func (s *Span) End() SpanData { return s.end(time.Since(s.start)) }

// EndWithDuration closes the span with an externally measured duration
// (e.g. a StageObserver callback that only learns the stage's elapsed
// time after the fact). The span's start is back-dated so that
// start+duration lands at now.
func (s *Span) EndWithDuration(d time.Duration) SpanData {
	if d < 0 {
		d = 0
	}
	s.start = time.Now().Add(-d)
	return s.end(d)
}

func (s *Span) end(d time.Duration) SpanData {
	if d < 0 {
		d = 0
	}
	data := SpanData{
		SpanID:        s.sc.SpanID.String(),
		Name:          s.name,
		Process:       s.process,
		StartUnixNano: s.start.UnixNano(),
		DurationNanos: d.Nanoseconds(),
		Attrs:         s.attrs,
	}
	if !s.parent.IsZero() {
		data.Parent = s.parent.String()
	}
	return data
}

// Completed builds a SpanData for an interval measured elsewhere:
// started at start, lasting d. Used for retro-fitted spans like queue
// wait, whose endpoints are lifecycle timestamps rather than a live
// *Span.
func Completed(parent SpanContext, process, name string, start time.Time, d time.Duration, attrs map[string]string) SpanData {
	if d < 0 {
		d = 0
	}
	data := SpanData{
		SpanID:        NewSpanID().String(),
		Name:          name,
		Process:       process,
		StartUnixNano: start.UnixNano(),
		DurationNanos: d.Nanoseconds(),
		Attrs:         attrs,
	}
	if parent.Valid() {
		data.Parent = parent.SpanID.String()
	}
	return data
}
