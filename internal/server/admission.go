package server

import (
	"math"
	"net"
	"net/http"
	"sync"
	"time"
)

// SubmitterHeader names the request header a client may set to identify
// itself for per-submitter admission control. Without it, submissions
// are bucketed by remote IP.
const SubmitterHeader = "X-Sparkxd-Submitter"

// admitterPruneAt bounds the bucket table: past this many submitters
// the admit path drops every bucket that has fully refilled (an idle
// submitter's bucket carries no state worth keeping — a fresh bucket
// behaves identically).
const admitterPruneAt = 1024

// admitter is a per-submitter token bucket: each POST /v1/jobs spends
// one token, tokens refill at rate per second up to burst. A drained
// bucket means 429 with a Retry-After telling the client when the next
// token arrives.
type admitter struct {
	rate  float64 // tokens per second
	burst float64

	mu      sync.Mutex
	buckets map[string]*bucket
	now     func() time.Time // test seam
}

type bucket struct {
	tokens float64
	last   time.Time
}

// newAdmitter returns nil (admission disabled) unless rate is positive.
// burst <= 0 defaults to max(1, rate): one second of traffic.
func newAdmitter(rate float64, burst int) *admitter {
	if rate <= 0 {
		return nil
	}
	b := float64(burst)
	if b <= 0 {
		b = math.Max(1, rate)
	}
	return &admitter{
		rate:    rate,
		burst:   b,
		buckets: make(map[string]*bucket),
		now:     time.Now,
	}
}

// admit spends one token from key's bucket. When the bucket is dry it
// returns ok=false and how long until a full token has refilled.
func (a *admitter) admit(key string) (ok bool, retryAfter time.Duration) {
	now := a.now()
	a.mu.Lock()
	defer a.mu.Unlock()
	b, found := a.buckets[key]
	if !found {
		b = &bucket{tokens: a.burst, last: now}
		a.buckets[key] = b
		if len(a.buckets) > admitterPruneAt {
			a.pruneLocked(now)
		}
	}
	elapsed := now.Sub(b.last).Seconds()
	if elapsed > 0 {
		b.tokens = math.Min(a.burst, b.tokens+elapsed*a.rate)
		b.last = now
	}
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	deficit := 1 - b.tokens
	return false, time.Duration(deficit / a.rate * float64(time.Second))
}

// pruneLocked drops buckets that have refilled completely; their state
// is indistinguishable from a fresh bucket. Caller holds a.mu.
func (a *admitter) pruneLocked(now time.Time) {
	for key, b := range a.buckets {
		if b.tokens+now.Sub(b.last).Seconds()*a.rate >= a.burst {
			delete(a.buckets, key)
		}
	}
}

// submitterKey identifies the client a submission is billed to: the
// explicit SubmitterHeader when present, otherwise the remote IP.
func submitterKey(r *http.Request) string {
	if v := r.Header.Get(SubmitterHeader); v != "" {
		return v
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

// retryAfterSeconds renders a Retry-After header value: whole seconds,
// rounded up so clients never retry early, floored at 1.
func retryAfterSeconds(d time.Duration) int {
	secs := int(math.Ceil(d.Seconds()))
	if secs < 1 {
		secs = 1
	}
	return secs
}
