package server

import (
	"time"

	"sparkxd"
	"sparkxd/internal/metrics"
	"sparkxd/internal/store"
)

// serverMetrics is the coordinator's instrument set, exposed at
// GET /metrics in Prometheus text format. Naming follows DESIGN.md §11:
// everything under the sparkxd_ prefix, _total counters, _seconds
// histograms on the shared DefLatencyBuckets ladder.
type serverMetrics struct {
	reg *metrics.Registry

	// submitted counts POST /v1/jobs outcomes by result:
	// created | duplicate | throttled | invalid | error.
	submitted *metrics.CounterVec
	// completed counts jobs reaching a terminal state, by outcome
	// (done | failed) and executor (local | fleet).
	completed *metrics.CounterVec
	requeued  *metrics.Counter
	// jobLatency is submit-to-terminal wall time by job kind. Requeues
	// do not reset the clock: the latency a client sees is measured
	// from first submission.
	jobLatency *metrics.HistogramVec
	// stageDur times individual pipeline stages (jobrun.Produce).
	stageDur *metrics.HistogramVec
	// leaseOps counts lease-protocol transitions:
	// grant | renew | expire | release | complete.
	leaseOps *metrics.CounterVec
	sse      *metrics.Gauge
	storeOps *metrics.CounterVec
	// misdirected counts jobs refused with 421 because their ID hashes
	// to another federation shard.
	misdirected *metrics.Counter
	// sweepAxis accumulates, per scenario axis, the resolved axis
	// cardinality of every created (non-duplicate) sweep job — the
	// operator's view of which axes the scenario space is actually being
	// swept along.
	sweepAxis *metrics.CounterVec
}

// newServerMetrics builds the registry and binds the read-through
// instruments (queue depth, warm-engine cache, fleet size) to live
// server state; they are sampled at scrape time under s.mu.
func newServerMetrics(s *Server) *serverMetrics {
	r := metrics.NewRegistry()
	m := &serverMetrics{
		reg: r,
		submitted: r.NewCounterVec("sparkxd_jobs_submitted_total",
			"Job submissions by result.", "result"),
		completed: r.NewCounterVec("sparkxd_jobs_completed_total",
			"Jobs reaching a terminal state, by outcome and executor.", "outcome", "executor"),
		requeued: r.NewCounter("sparkxd_jobs_requeued_total",
			"Jobs returned to the queue (lease expiry, release, drain, shutdown)."),
		jobLatency: r.NewHistogramVec("sparkxd_job_latency_seconds",
			"Submit-to-terminal latency by job kind.", metrics.DefLatencyBuckets, "kind"),
		stageDur: r.NewHistogramVec("sparkxd_job_stage_duration_seconds",
			"Wall time of locally executed pipeline stages.", metrics.DefLatencyBuckets, "stage"),
		leaseOps: r.NewCounterVec("sparkxd_leases_total",
			"Lease-protocol operations.", "op"),
		sse: r.NewGauge("sparkxd_sse_subscribers",
			"Live server-sent-event subscriber connections."),
		storeOps: r.NewCounterVec("sparkxd_store_ops_total",
			"Artifact store operations through the server.", "op"),
		misdirected: r.NewCounter("sparkxd_jobs_misdirected_total",
			"Jobs refused with 421 because another federation shard owns them."),
		sweepAxis: r.NewCounterVec("sparkxd_sweep_axis_scenarios_total",
			"Resolved axis cardinalities of created sweep jobs, by axis.", "axis"),
	}
	r.NewGaugeFunc("sparkxd_queue_depth",
		"Jobs queued and not yet claimed by any executor.",
		func() float64 { return float64(s.QueueDepth()) })
	r.NewGaugeFunc("sparkxd_jobs_inflight",
		"Jobs executing right now (local pool slots plus live leases).",
		func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return float64(s.inflight + len(s.leases))
		})
	r.NewGaugeFunc("sparkxd_workers_registered",
		"Fleet workers that have ever registered with this coordinator.",
		func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return float64(len(s.fleet))
		})
	r.NewGaugeFunc("sparkxd_warm_systems",
		"Warm System engines currently cached (bounded by -max-warm-systems).",
		func() float64 { return float64(s.systems.Len()) })
	r.NewCounterFunc("sparkxd_warm_systems_hits_total",
		"Warm-System cache acquisitions served by an existing engine.",
		func() uint64 { h, _, _ := s.systems.Stats(); return h })
	r.NewCounterFunc("sparkxd_warm_systems_misses_total",
		"Warm-System cache acquisitions that built a new engine.",
		func() uint64 { _, m, _ := s.systems.Stats(); return m })
	r.NewCounterFunc("sparkxd_warm_systems_evictions_total",
		"Warm System engines evicted by the LRU bound.",
		func() uint64 { _, _, e := s.systems.Stats(); return e })
	r.NewCounterFunc("sparkxd_sweep_profile_cache_hits_total",
		"Device-profile sweep cache hits across cached engines (SweepCacheStats).",
		func() uint64 { h, _ := s.systems.SweepCacheStats(); return h })
	r.NewCounterFunc("sparkxd_sweep_profile_cache_misses_total",
		"Device-profile sweep cache misses across cached engines (SweepCacheStats).",
		func() uint64 { _, m := s.systems.SweepCacheStats(); return m })
	// A coordinator backed by a read-through composite (remote store +
	// local cache) surfaces the cache's counters; s.st is still the raw
	// configured store here (the metered wrap happens after metrics).
	if rt, ok := s.st.(*store.ReadThrough); ok {
		registerReadThrough(r, rt)
	}
	return m
}

// registerReadThrough binds a read-through store's hit/miss/fill
// counters into a registry (shared by the server and worker endpoints).
func registerReadThrough(r *metrics.Registry, rt *store.ReadThrough) {
	r.NewCounterFunc("sparkxd_store_cache_hits_total",
		"Read-through store Gets served entirely from the local cache.",
		func() uint64 { h, _, _ := rt.Stats(); return h })
	r.NewCounterFunc("sparkxd_store_cache_misses_total",
		"Read-through store Gets that consulted the remote store.",
		func() uint64 { _, m, _ := rt.Stats(); return m })
	r.NewCounterFunc("sparkxd_store_cache_fills_total",
		"Remote envelopes copied into the read-through local cache.",
		func() uint64 { _, _, f := rt.Stats(); return f })
}

// observeStage is the jobrun.StageObserver of locally executed jobs.
func (m *serverMetrics) observeStage(stage string, d time.Duration) {
	m.stageDur.With(stage).Observe(d.Seconds())
}

// observeTerminal records a terminal transition: outcome counter plus
// submit-to-terminal latency (skipped for jobs restored from persisted
// records, whose queuedAt is unknown).
func (m *serverMetrics) observeTerminal(rec *jobRec, outcome, executor string) {
	m.completed.With(outcome, executor).Inc()
	if !rec.queuedAt.IsZero() {
		m.jobLatency.With(rec.status.Spec.Kind).Observe(time.Since(rec.queuedAt).Seconds())
	}
}

// observeSweepAxes records a created sweep job's resolved per-axis
// scenario cardinalities. The spec is normalized, so the legacy axes are
// always filled in and the extended axes are nil whenever they sit at
// the configured default (cardinality 1).
func (m *serverMetrics) observeSweepAxes(sw *sparkxd.SweepSpec) {
	if sw == nil {
		return
	}
	card := func(n int) uint64 {
		if n == 0 {
			return 1
		}
		return uint64(n)
	}
	m.sweepAxis.With("voltages").Add(card(len(sw.Voltages)))
	m.sweepAxis.With("bers").Add(card(len(sw.BERs)))
	m.sweepAxis.With("error_models").Add(card(len(sw.ErrorModels)))
	m.sweepAxis.With("policies").Add(card(len(sw.Policies)))
	m.sweepAxis.With("bitwidths").Add(card(len(sw.Bitwidths)))
	m.sweepAxis.With("prune_levels").Add(card(len(sw.PruneLevels)))
	m.sweepAxis.With("encoders").Add(card(len(sw.Encoders)))
}

// meteredStore wraps the server's artifact store, counting gets and
// puts (including job-record persistence and worker uploads).
type meteredStore struct {
	sparkxd.ArtifactStore
	ops *metrics.CounterVec
}

func (m meteredStore) Put(kind string, payload any) (store.Key, error) {
	m.ops.With("put").Inc()
	return m.ArtifactStore.Put(kind, payload)
}

func (m meteredStore) Get(key store.Key) (*store.Envelope, error) {
	m.ops.With("get").Inc()
	return m.ArtifactStore.Get(key)
}
