package server

import (
	"strconv"
	"time"

	"sparkxd"
	"sparkxd/internal/tracing"
	"sparkxd/internal/version"
)

// Coordinator-side span collection (DESIGN.md §14). Every job carries a
// jobTraceState from submission: the root "job" span context (a child
// of the client's traceparent when one arrived, a fresh trace
// otherwise) plus the spans recorded so far. The coordinator emits
// queue-wait, admission, lease-lifecycle, and local-execution spans;
// worker spans arrive through the lease event batches and the
// completion payload. At the terminal transition the whole set is
// assembled, sorted, and persisted as a content-addressed KindJobTrace
// artifact.
//
// Trace context is strictly out-of-band: it lives on jobRec, the lease
// table, HTTP headers, and the Grant payload — never inside a JobSpec —
// so job IDs and all result artifacts are byte-identical with tracing
// on or off.

// maxTraceSpans bounds one job's retained span set. A sweep job emits a
// handful of spans per process, so the bound exists only to keep a
// pathological worker from growing coordinator memory; overflow is
// counted and reported on the root span instead of retained.
const maxTraceSpans = 2048

// jobTraceState is the per-job trace accumulator. All fields are
// guarded by Server.mu.
type jobTraceState struct {
	// root is the job root span's own context: worker- and
	// coordinator-side child spans parent onto root.SpanID, and
	// root.TraceID is the whole trace's identity.
	root tracing.SpanContext
	// clientSpan is the submitting client's span ID (the root span's
	// parent), "" when the submission carried no traceparent.
	clientSpan string
	// start anchors the root span (and carries the monotonic clock the
	// root duration is measured on).
	start time.Time
	// queueStart is the current queue episode's start; zero while the
	// job is claimed. episodes counts closed queue-wait spans.
	queueStart time.Time
	episodes   int
	spans      []sparkxd.TraceSpan
	dropped    int  // spans discarded past maxTraceSpans
	finalized  bool // the terminal assembly ran (at most once)
}

// newJobTraceState opens a job's trace at submission time. A valid
// traceparent continues the client's trace (the client span becomes the
// root span's parent); anything else starts a fresh trace.
func newJobTraceState(traceparent string) *jobTraceState {
	now := time.Now()
	tr := &jobTraceState{start: now, queueStart: now}
	if sc, err := tracing.ParseTraceparent(traceparent); err == nil {
		tr.root = sc.Child()
		tr.clientSpan = sc.SpanID.String()
	} else {
		tr.root = tracing.NewContext()
	}
	return tr
}

// traceID returns the job's 32-hex trace ID.
func (tr *jobTraceState) traceID() string { return tr.root.TraceID.String() }

// procName is the span Process of coordinator-emitted spans: plain
// "coordinator", or "coordinator-<shard>" on a federation member so a
// trace spanning shards attributes spans to the right process.
func (s *Server) procName() string {
	if s.shard.enabled() {
		return "coordinator-" + strconv.Itoa(s.shard.index)
	}
	return "coordinator"
}

// addSpan records one finished span on a job (locking wrapper).
func (s *Server) addSpan(rec *jobRec, sd sparkxd.TraceSpan) {
	s.mu.Lock()
	s.addSpanLocked(rec, sd)
	s.mu.Unlock()
}

// addSpanLocked records one finished span on a job. Caller holds s.mu.
func (s *Server) addSpanLocked(rec *jobRec, sd sparkxd.TraceSpan) {
	tr := rec.trace
	if tr == nil || tr.finalized {
		return
	}
	if len(tr.spans) >= maxTraceSpans {
		tr.dropped++
		return
	}
	tr.spans = append(tr.spans, sd)
}

// closeQueueSpanLocked ends the job's current queue episode with a
// queue-wait span naming who claimed it. Caller holds s.mu.
func (s *Server) closeQueueSpanLocked(rec *jobRec, claimedBy string) {
	tr := rec.trace
	if tr == nil || tr.queueStart.IsZero() {
		return
	}
	tr.episodes++
	s.addSpanLocked(rec, tracing.Completed(tr.root, s.procName(), "queue-wait",
		tr.queueStart, time.Since(tr.queueStart), map[string]string{
			"episode":    strconv.Itoa(tr.episodes),
			"claimed_by": claimedBy,
		}))
	tr.queueStart = time.Time{}
}

// reopenQueueSpanLocked starts a fresh queue episode (requeue after a
// lease expiry, release, revocation, or shutdown). Caller holds s.mu.
func (s *Server) reopenQueueSpanLocked(rec *jobRec) {
	if rec.trace != nil {
		rec.trace.queueStart = time.Now()
	}
}

// noteAdmission records the HTTP admission span of a freshly created
// job: decode + admission control + Submit, measured from handler
// entry. Root-relative, coordinator-side.
func (s *Server) noteAdmission(jobID string, start time.Time) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rec, ok := s.jobs[jobID]
	if !ok || rec.trace == nil {
		return
	}
	s.addSpanLocked(rec, tracing.Completed(rec.trace.root, s.procName(), "admit",
		start, time.Since(start), nil))
}

// closeLeaseSpanLocked ends a lease's lifecycle span with its outcome
// (completed | failed | expired | released | revoked). Caller holds
// s.mu (and has already removed the lease from the table).
func (s *Server) closeLeaseSpanLocked(l *lease, outcome string) {
	if l.span == nil {
		return
	}
	l.span.SetAttr("worker", l.worker)
	l.span.SetAttr("lease_id", l.id)
	l.span.SetAttr("outcome", outcome)
	l.span.SetAttr("renews", strconv.Itoa(l.renews))
	s.addSpanLocked(l.rec, l.span.End())
	l.span = nil
}

// finalizeTrace assembles and persists a terminal job's trace: the root
// "job" span is closed over the whole submit→terminal interval, the
// collected spans are sorted, and the JobTrace artifact is written to
// the store (IO outside the lock). Runs at most once per job; the
// resulting key is what GET /v1/jobs/{id}/trace serves.
func (s *Server) finalizeTrace(rec *jobRec) {
	s.mu.Lock()
	tr := rec.trace
	if tr == nil || tr.finalized || !rec.status.State.Terminal() {
		s.mu.Unlock()
		return
	}
	tr.finalized = true
	attrs := map[string]string{
		"job_id":          rec.status.ID,
		"kind":            string(rec.status.Spec.Kind),
		"state":           string(rec.status.State),
		"service.version": version.String(),
	}
	if tr.dropped > 0 {
		attrs["dropped_spans"] = strconv.Itoa(tr.dropped)
	}
	root := sparkxd.TraceSpan{
		SpanID:        tr.root.SpanID.String(),
		Parent:        tr.clientSpan,
		Name:          "job",
		Process:       s.procName(),
		StartUnixNano: tr.start.UnixNano(),
		DurationNanos: time.Since(tr.start).Nanoseconds(),
		Attrs:         attrs,
	}
	trace := &sparkxd.JobTrace{
		Version: sparkxd.JobTraceVersion,
		TraceID: tr.traceID(),
		JobID:   rec.status.ID,
		State:   rec.status.State,
		Spans:   append(append([]sparkxd.TraceSpan(nil), tr.spans...), root),
	}
	tr.spans = nil // the artifact owns them now
	s.mu.Unlock()

	trace.Sort()
	key, err := sparkxd.PutArtifact(s.st, trace)
	if err != nil {
		s.log.Warn("trace persist failed", "job", trace.JobID, "trace", trace.TraceID, "err", err)
		return
	}
	s.mu.Lock()
	rec.traceKey = key
	s.mu.Unlock()
	s.log.Debug("trace assembled", "job", trace.JobID, "trace", trace.TraceID,
		"spans", len(trace.Spans), "key", string(key))
}

// TraceFor returns a terminal job's assembled trace. known reports
// whether the job exists at all; a known job whose trace has not been
// assembled yet (still running, or restored from a pre-tracing record)
// returns (nil, true, nil).
func (s *Server) TraceFor(id string) (trace *sparkxd.JobTrace, known bool, err error) {
	s.mu.Lock()
	rec, ok := s.jobs[id]
	var key sparkxd.ArtifactKey
	if ok {
		key = rec.traceKey
	}
	s.mu.Unlock()
	if !ok {
		return nil, false, nil
	}
	if key == "" {
		return nil, true, nil
	}
	tr, err := sparkxd.GetJobTrace(s.st, key)
	if err != nil {
		return nil, true, err
	}
	return tr, true, nil
}
