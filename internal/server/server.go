// Package server is the sparkxd job service: an HTTP/JSON API that
// accepts pipeline-stage and scenario-sweep jobs, executes them
// asynchronously on the internal/sched work-stealing pool, and persists
// every result into a content-addressed artifact store.
//
// Three properties shape the design (DESIGN.md §8):
//
//   - Deterministic identity. A job's ID is the hash of its normalized
//     spec, so submitting the same work twice — from one client or many —
//     addresses the same job: the second submission returns the first
//     job's status without re-executing anything.
//   - Shared warm engines. Jobs whose specs share a configuration
//     fingerprint run against one shared *sparkxd.System, so device
//     profiles, datasets, and sweep caches derived for an earlier job are
//     reused by later ones instead of re-derived per request.
//   - Content-addressed results. Artifacts are stored under
//     <kind>/<sha256-of-canonical-json>; because execution is
//     deterministic in the spec, re-running an identical job reproduces
//     identical artifact keys.
//
// Progress events stream over GET /v1/jobs/{id}/events as server-sent
// events, backed by the SDK's Observer hook. Because the observer is
// attached to the shared System, events are scoped to the configuration
// fingerprint: two jobs with identical configurations running at the
// same time each see the merged event stream of that engine.
package server

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"

	"sparkxd"
	"sparkxd/internal/sched"
)

// Config parameterizes a Server.
type Config struct {
	// Store receives every job artifact; nil means an in-memory store.
	Store sparkxd.ArtifactStore
	// Workers sizes the job execution pool (<= 0: GOMAXPROCS).
	Workers int
	// Logf, when non-nil, receives one line per job state transition.
	Logf func(format string, args ...any)
}

// Server owns the job table, the execution pool, and the artifact store.
// Create with New, serve its Handler, and Close it to stop the pool.
type Server struct {
	st      sparkxd.ArtifactStore
	workers int
	logf    func(string, ...any)

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	mu      sync.Mutex
	jobs    map[string]*jobRec
	queue   []*jobRec
	wake    chan struct{}
	closed  bool
	systems map[string]*sysEntry
	running map[string]map[*jobRec]struct{} // config fingerprint -> jobs executing now

	// cache persists across execution batches so sched jobs can share
	// single-flight artifacts the way the experiment suite does.
	cache *sched.Cache
}

// maxJobEvents bounds one job's retained event history. Engine events
// of a busy shared System fan out to every job running on it, so an
// unbounded log would grow for the server's lifetime; once the cap is
// hit the oldest events are dropped (SSE subscribers that have already
// read them are unaffected, late subscribers miss the trimmed prefix).
const maxJobEvents = 1024

// jobRec is the server-side state of one job. Records themselves are
// kept for the server's lifetime — the job table IS the dedup index
// that makes submission idempotent — but their event logs are bounded.
type jobRec struct {
	status  sparkxd.JobStatus
	fp      string // config fingerprint (the System-sharing key)
	cost    float64
	events  []sparkxd.Event
	dropped int           // events trimmed off the front of the log
	notify  chan struct{} // closed and replaced on every update
}

// sysEntry lazily builds one shared System per config fingerprint.
type sysEntry struct {
	once sync.Once
	sys  *sparkxd.System
	err  error
}

// New builds a Server and starts its dispatcher.
func New(cfg Config) (*Server, error) {
	st := cfg.Store
	if st == nil {
		st = sparkxd.MemoryStore()
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		st:      st,
		workers: workers,
		logf:    logf,
		ctx:     ctx,
		cancel:  cancel,
		jobs:    make(map[string]*jobRec),
		wake:    make(chan struct{}, 1),
		systems: make(map[string]*sysEntry),
		running: make(map[string]map[*jobRec]struct{}),
		cache:   sched.NewCache(),
	}
	s.wg.Add(1)
	go s.dispatch()
	return s, nil
}

// Store returns the artifact store the server persists into.
func (s *Server) Store() sparkxd.ArtifactStore { return s.st }

// Close stops accepting work, cancels running jobs, and waits for the
// dispatcher to drain.
func (s *Server) Close() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.cancel()
	select {
	case s.wake <- struct{}{}:
	default:
	}
	s.wg.Wait()
}

// Submit registers a job (idempotently) and returns its status plus
// whether this submission created it. An identical spec — same job ID —
// returns the existing job, whatever its state.
func (s *Server) Submit(spec sparkxd.JobSpec) (sparkxd.JobStatus, bool, error) {
	norm, err := spec.Normalized()
	if err != nil {
		return sparkxd.JobStatus{}, false, err
	}
	id, err := norm.ID()
	if err != nil {
		return sparkxd.JobStatus{}, false, err
	}
	fp, err := norm.Config.Fingerprint()
	if err != nil {
		return sparkxd.JobStatus{}, false, err
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if rec, ok := s.jobs[id]; ok {
		return copyStatus(rec.status), false, nil
	}
	if s.closed {
		return sparkxd.JobStatus{}, false, fmt.Errorf("server closed")
	}
	rec := &jobRec{
		status: sparkxd.JobStatus{ID: id, State: sparkxd.JobQueued, Spec: norm},
		fp:     fp,
		cost:   float64(norm.Config.Neurons),
		notify: make(chan struct{}),
	}
	s.jobs[id] = rec
	s.queue = append(s.queue, rec)
	s.appendEventLocked(rec, sparkxd.Event{Stage: "job", Phase: "queued", Message: id})
	select {
	case s.wake <- struct{}{}:
	default:
	}
	s.logf("job %s queued (%s)", id, norm.Kind)
	return copyStatus(rec.status), true, nil
}

// Job returns the status of a job by ID.
func (s *Server) Job(id string) (sparkxd.JobStatus, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rec, ok := s.jobs[id]
	if !ok {
		return sparkxd.JobStatus{}, false
	}
	return copyStatus(rec.status), true
}

// Jobs lists every known job, sorted by ID.
func (s *Server) Jobs() []sparkxd.JobStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]sparkxd.JobStatus, 0, len(s.jobs))
	for _, rec := range s.jobs {
		out = append(out, copyStatus(rec.status))
	}
	sortStatuses(out)
	return out
}

// eventsSince returns the job's events from absolute index `from` on
// (indices count all events ever recorded, including any trimmed off
// the bounded log), whether the job has reached a terminal state, and a
// channel closed on the next update. The returned next index is `from`
// plus the delivered events plus any trimmed gap.
func (s *Server) eventsSince(id string, from int) (evs []sparkxd.Event, next int, terminal bool, notify <-chan struct{}, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rec, found := s.jobs[id]
	if !found {
		return nil, from, false, nil, false
	}
	start := from - rec.dropped
	if start < 0 {
		start = 0 // the subscriber's position was trimmed away
	}
	if start < len(rec.events) {
		evs = append(evs, rec.events[start:]...)
	}
	return evs, rec.dropped + len(rec.events), rec.status.State.Terminal(), rec.notify, true
}

// dispatch runs queued jobs in batches on a fresh sched pool per batch
// (sharing one cache), so concurrent submissions fan out across workers
// with the scheduler's cost-aware work stealing.
func (s *Server) dispatch() {
	defer s.wg.Done()
	for {
		select {
		case <-s.ctx.Done():
			s.failQueued("server shut down before execution")
			return
		case <-s.wake:
		}
		for {
			batch := s.takeQueued()
			if len(batch) == 0 {
				break
			}
			s.runBatch(batch)
		}
	}
}

// takeQueued claims the current queue.
func (s *Server) takeQueued() []*jobRec {
	s.mu.Lock()
	defer s.mu.Unlock()
	batch := s.queue
	s.queue = nil
	return batch
}

// failQueued marks every not-yet-started job failed (shutdown path).
func (s *Server) failQueued(msg string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, rec := range s.queue {
		rec.status.State = sparkxd.JobFailed
		rec.status.Error = msg
		s.appendEventLocked(rec, sparkxd.Event{Stage: "job", Phase: "failed", Message: msg})
	}
	s.queue = nil
}

// runBatch executes one claimed batch on the work-stealing pool. Job IDs
// are the sched job names and the neuron count is the cost hint, so big
// configurations start first and idle workers steal small ones.
func (s *Server) runBatch(batch []*jobRec) {
	sch, err := sched.New(sched.Config{Workers: s.workers, Seed: 1, Cache: s.cache})
	if err != nil {
		for _, rec := range batch {
			s.finish(rec, nil, err)
		}
		return
	}
	for _, rec := range batch {
		rec := rec
		err := sch.Add(sched.Job{
			Name: rec.status.ID,
			Cost: rec.cost,
			Run: func(*sched.Ctx) (any, error) {
				s.execute(rec)
				return nil, nil
			},
		})
		if err != nil {
			s.finish(rec, nil, err)
		}
	}
	sch.Run() // job failures are recorded on the recs, not here
}

// execute runs one job end to end and records its outcome. Panics are
// contained here (not just in sched) so a crashed job reaches JobFailed
// instead of sticking in JobRunning.
func (s *Server) execute(rec *jobRec) {
	s.setRunning(rec)
	var (
		arts map[string]sparkxd.ArtifactKey
		err  error
	)
	func() {
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("panic: %v", r)
			}
		}()
		arts, err = s.run(rec)
	}()
	s.finish(rec, arts, err)
}

// run performs the job's work and returns the artifact role map.
func (s *Server) run(rec *jobRec) (map[string]sparkxd.ArtifactKey, error) {
	sys, err := s.systemFor(rec.fp, rec.status.Spec.Config)
	if err != nil {
		return nil, err
	}
	s.markRunningOn(rec)
	defer s.unmarkRunningOn(rec)

	p := sys.Pipeline()
	spec := rec.status.Spec
	arts := make(map[string]sparkxd.ArtifactKey)

	switch spec.Kind {
	case sparkxd.JobSweep:
		if _, err := p.Train(s.ctx); err != nil {
			return nil, err
		}
		if _, err := p.ImproveTolerance(s.ctx); err != nil {
			return nil, err
		}
		rep, err := p.Sweep(s.ctx, *spec.Sweep)
		if err != nil {
			return nil, err
		}
		if err := s.putAll(arts, map[string]any{"improved": p.Improved, "sweep": rep}); err != nil {
			return nil, err
		}
		return arts, nil

	case sparkxd.JobPipeline:
		target := sparkxd.StageRank(spec.Stage)
		if target < 0 {
			return nil, fmt.Errorf("unknown stage %q", spec.Stage)
		}
		stages := []struct {
			name string
			run  func(context.Context) error
		}{
			{"train", func(ctx context.Context) error { _, err := p.Train(ctx); return err }},
			{"improve", func(ctx context.Context) error { _, err := p.ImproveTolerance(ctx); return err }},
			{"analyze", func(ctx context.Context) error { _, err := p.AnalyzeTolerance(ctx); return err }},
			{"map", func(ctx context.Context) error { _, err := p.Map(ctx); return err }},
			{"evaluate", func(ctx context.Context) error { _, err := p.EvaluateUnderErrors(ctx); return err }},
			{"energy", func(ctx context.Context) error { _, err := p.EnergyReport(ctx); return err }},
		}
		for i, st := range stages {
			if i > target {
				break
			}
			if err := st.run(s.ctx); err != nil {
				return nil, fmt.Errorf("stage %s: %w", st.name, err)
			}
		}
		produced := map[string]any{}
		if p.Baseline != nil {
			produced["baseline"] = p.Baseline
		}
		if p.Improved != nil {
			produced["improved"] = p.Improved
		}
		if p.Tolerance != nil {
			produced["tolerance"] = p.Tolerance
		}
		if p.Placement != nil {
			produced["placement"] = p.Placement
		}
		if p.Evaluation != nil {
			produced["evaluation"] = p.Evaluation
		}
		if p.Energy != nil {
			produced["energy"] = p.Energy
		}
		if err := s.putAll(arts, produced); err != nil {
			return nil, err
		}
		return arts, nil

	default:
		return nil, fmt.Errorf("unknown job kind %q", spec.Kind)
	}
}

// putAll stores every produced artifact and fills the role map.
func (s *Server) putAll(arts map[string]sparkxd.ArtifactKey, produced map[string]any) error {
	for role, v := range produced {
		key, err := sparkxd.PutArtifact(s.st, v)
		if err != nil {
			return fmt.Errorf("store %s: %w", role, err)
		}
		arts[role] = key
	}
	return nil
}

// systemFor returns (building once) the shared System of one config
// fingerprint, its observer wired into the server's event fanout.
func (s *Server) systemFor(fp string, cfg sparkxd.ConfigSpec) (*sparkxd.System, error) {
	s.mu.Lock()
	ent, ok := s.systems[fp]
	if !ok {
		ent = &sysEntry{}
		s.systems[fp] = ent
	}
	s.mu.Unlock()
	ent.once.Do(func() {
		opts, err := cfg.Options()
		if err != nil {
			ent.err = err
			return
		}
		opts = append(opts,
			sparkxd.WithSweepWorkers(s.workers),
			sparkxd.WithObserver(func(ev sparkxd.Event) { s.fanout(fp, ev) }),
		)
		ent.sys, ent.err = sparkxd.New(opts...)
	})
	return ent.sys, ent.err
}

// fanout delivers an engine event to every job currently executing on
// that engine (configuration fingerprint).
func (s *Server) fanout(fp string, ev sparkxd.Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for rec := range s.running[fp] {
		s.appendEventLocked(rec, ev)
	}
}

func (s *Server) markRunningOn(rec *jobRec) {
	s.mu.Lock()
	defer s.mu.Unlock()
	set := s.running[rec.fp]
	if set == nil {
		set = make(map[*jobRec]struct{})
		s.running[rec.fp] = set
	}
	set[rec] = struct{}{}
}

func (s *Server) unmarkRunningOn(rec *jobRec) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.running[rec.fp], rec)
}

// setRunning transitions a job to JobRunning.
func (s *Server) setRunning(rec *jobRec) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rec.status.State = sparkxd.JobRunning
	s.appendEventLocked(rec, sparkxd.Event{Stage: "job", Phase: "running", Message: rec.status.ID})
	s.logf("job %s running", rec.status.ID)
}

// finish records a job's terminal state.
func (s *Server) finish(rec *jobRec, arts map[string]sparkxd.ArtifactKey, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if rec.status.State.Terminal() {
		return
	}
	if err != nil {
		rec.status.State = sparkxd.JobFailed
		rec.status.Error = err.Error()
		s.appendEventLocked(rec, sparkxd.Event{Stage: "job", Phase: "failed", Message: err.Error()})
		s.logf("job %s failed: %v", rec.status.ID, err)
		return
	}
	rec.status.State = sparkxd.JobDone
	rec.status.Artifacts = arts
	s.appendEventLocked(rec, sparkxd.Event{Stage: "job", Phase: "done",
		Message: fmt.Sprintf("%d artifacts", len(arts))})
	s.logf("job %s done (%d artifacts)", rec.status.ID, len(arts))
}

// appendEventLocked records an event on a job (trimming the log's
// front beyond maxJobEvents) and wakes its SSE subscribers. Caller
// holds s.mu.
func (s *Server) appendEventLocked(rec *jobRec, ev sparkxd.Event) {
	rec.events = append(rec.events, ev)
	if excess := len(rec.events) - maxJobEvents; excess > 0 {
		rec.events = append(rec.events[:0:0], rec.events[excess:]...)
		rec.dropped += excess
	}
	close(rec.notify)
	rec.notify = make(chan struct{})
}

// copyStatus deep-copies the mutable parts of a status.
func copyStatus(st sparkxd.JobStatus) sparkxd.JobStatus {
	if st.Artifacts != nil {
		arts := make(map[string]sparkxd.ArtifactKey, len(st.Artifacts))
		for k, v := range st.Artifacts {
			arts[k] = v
		}
		st.Artifacts = arts
	}
	return st
}

// sortStatuses orders statuses by ID.
func sortStatuses(sts []sparkxd.JobStatus) {
	sort.Slice(sts, func(a, b int) bool { return sts[a].ID < sts[b].ID })
}
