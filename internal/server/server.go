// Package server is the sparkxd job service: an HTTP/JSON API that
// accepts pipeline-stage and scenario-sweep jobs, executes them
// asynchronously — on its own internal/sched pool, on a fleet of
// lease-holding remote workers, or both — and persists every result
// into a content-addressed artifact store.
//
// Three properties shape the design (DESIGN.md §8/§9):
//
//   - Deterministic identity. A job's ID is the hash of its normalized
//     spec, so submitting the same work twice — from one client or many —
//     addresses the same job: the second submission returns the first
//     job's status without re-executing anything.
//   - Shared warm engines. Jobs whose specs share a configuration
//     fingerprint run against one shared *sparkxd.System, so device
//     profiles, datasets, and sweep caches derived for an earlier job are
//     reused by later ones instead of re-derived per request.
//   - Content-addressed results. Artifacts are stored under
//     <kind>/<sha256-of-canonical-json>; because execution is
//     deterministic in the spec, re-running an identical job reproduces
//     identical artifact keys. That makes lease requeue after a worker
//     crash safe (the re-run provably reproduces the same bytes), and it
//     makes completed jobs durable: every JobDone persists a
//     KindJobRecord into the store, and a restarted server preloads those
//     records so repeat submissions are served from the store instead of
//     recomputed.
//
// Progress events stream over GET /v1/jobs/{id}/events as server-sent
// events, backed by the SDK's Observer hook; events forwarded by fleet
// workers are bridged into the same per-job streams.
package server

import (
	"context"
	"fmt"
	"log/slog"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"time"

	"sparkxd"
	"sparkxd/internal/jobrun"
	"sparkxd/internal/logging"
	"sparkxd/internal/sched"
	"sparkxd/internal/tracing"
)

// Dispatch selects who executes queued jobs.
type Dispatch string

const (
	// DispatchLocal: the server's own sched pool runs everything; lease
	// requests from workers return no work.
	DispatchLocal Dispatch = "local"
	// DispatchFleet: only lease-holding remote workers execute; the
	// server is a pure coordinator.
	DispatchFleet Dispatch = "fleet"
	// DispatchHybrid: the local pool executes jobs in bounded batches
	// while remote workers lease whatever is queued between batches.
	DispatchHybrid Dispatch = "hybrid"
)

// ParseDispatch canonicalizes a dispatch-mode name.
func ParseDispatch(s string) (Dispatch, error) {
	switch Dispatch(s) {
	case "", DispatchLocal:
		return DispatchLocal, nil
	case DispatchFleet:
		return DispatchFleet, nil
	case DispatchHybrid:
		return DispatchHybrid, nil
	default:
		return "", fmt.Errorf("unknown dispatch mode %q (valid: %s, %s, %s)",
			s, DispatchLocal, DispatchFleet, DispatchHybrid)
	}
}

// DefaultLeaseTTL is the lease lifetime when Config.LeaseTTL is zero.
const DefaultLeaseTTL = 15 * time.Second

// Config parameterizes a Server.
type Config struct {
	// Store receives every job artifact; nil means an in-memory store.
	Store sparkxd.ArtifactStore
	// Workers sizes the local job execution pool (<= 0: GOMAXPROCS).
	Workers int
	// Dispatch selects local, fleet, or hybrid execution (zero: local).
	Dispatch Dispatch
	// LeaseTTL bounds how long a worker may go silent before its leases
	// expire and their jobs requeue (zero: DefaultLeaseTTL).
	LeaseTTL time.Duration
	// MaxWarmSystems bounds the warm-System engine cache; 0 keeps it
	// unbounded (every configuration fingerprint stays warm forever).
	MaxWarmSystems int
	// Rate enables per-submitter admission control on POST /v1/jobs:
	// each submitter may sustain Rate submissions per second (bursting
	// to Burst) before receiving 429 + Retry-After. 0 disables it.
	Rate float64
	// Burst is the admission token-bucket capacity (<= 0: max(1, Rate)).
	Burst int
	// ShardIndex/ShardCount split the job-ID space across a federation of
	// coordinators sharing one artifact store: with ShardCount m > 1 this
	// coordinator owns only job IDs hashing to slice ShardIndex (1-based),
	// and submissions of the rest answer 421 Misdirected Request plus the
	// owner's address. Zero ShardCount disables sharding.
	ShardIndex int
	ShardCount int
	// Peers lists every shard's advertised base URL (len == ShardCount;
	// Peers[ShardIndex-1] is this coordinator). Required when sharding.
	Peers []string
	// Logger, when non-nil, receives structured logs (one record per job,
	// lease, and trace transition, with job/lease/trace IDs as attrs).
	// Takes precedence over Logf.
	Logger *slog.Logger
	// Logf, when non-nil and Logger is nil, receives the same records
	// flattened to single printf-style lines (legacy hook; tests pass
	// t.Logf here).
	Logf func(format string, args ...any)
}

// Server owns the job table, the execution pool, the lease table, and
// the artifact store. Create with New, serve its Handler, optionally
// Drain it on shutdown, and Close it to stop the pool.
type Server struct {
	st       sparkxd.ArtifactStore
	workers  int
	dispatch Dispatch
	leaseTTL time.Duration
	shard    shardInfo
	log      *slog.Logger

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	mu       sync.Mutex
	jobs     map[string]*jobRec
	queue    []*jobRec
	wake     chan struct{}
	closed   bool
	draining bool
	inflight int                             // jobs executing on the local pool right now
	systems  *jobrun.Systems                 // shared warm engines, one per config fingerprint
	running  map[string]map[*jobRec]struct{} // config fingerprint -> jobs executing now
	leases   map[string]*lease
	leaseSeq uint64
	jobSeq   uint64                 // submission order (priority tiebreak)
	fleet    map[string]*workerInfo // worker name -> registration/presence

	metrics *serverMetrics
	admit   *admitter // nil: admission control disabled

	// cache persists across execution batches so sched jobs can share
	// single-flight artifacts the way the experiment suite does.
	cache *sched.Cache
}

// maxJobEvents bounds one job's retained event history. Engine events
// of a busy shared System fan out to every job running on it, so an
// unbounded log would grow for the server's lifetime; once the cap is
// hit the oldest events are dropped (SSE subscribers that have already
// read them are unaffected, late subscribers miss the trimmed prefix).
const maxJobEvents = 1024

// jobRec is the server-side state of one job. Records themselves are
// kept for the server's lifetime — the job table IS the dedup index
// that makes submission idempotent — but their event logs are bounded.
type jobRec struct {
	status  sparkxd.JobStatus
	fp      string // config fingerprint (the System-sharing key)
	cost    float64
	events  []sparkxd.Event
	dropped int           // events trimmed off the front of the log
	notify  chan struct{} // closed and replaced on every update

	// seq is the submission order (priority tiebreak); queuedAt is the
	// first submission time — requeues keep it, so waiting jobs age
	// upward in priority and the latency histogram measures what the
	// client actually waited. Zero for jobs restored from records.
	seq      uint64
	queuedAt time.Time

	leaseID  string          // active lease ("" when unleased)
	excluded map[string]bool // workers whose lease on this job expired

	// trace accumulates the job's distributed spans (nil only for jobs
	// restored as done from persisted records); traceKey is the assembled
	// KindJobTrace artifact once the job is terminal.
	trace    *jobTraceState
	traceKey sparkxd.ArtifactKey
}

// lease is one worker's time-bounded claim on one job. At most one
// lease per job is live at any time: grants pop jobs off the queue, and
// a job only re-enters the queue after its lease is removed.
type lease struct {
	id      string
	worker  string
	rec     *jobRec
	expires time.Time

	// span is the open lease-lifecycle span; its context rides the Grant
	// as a traceparent so worker spans nest under it. renews counts
	// heartbeats (reported as a span attribute at close).
	span   *tracing.Span
	renews int
}

// workerInfo tracks one registered fleet worker for observability.
type workerInfo struct {
	name     string
	slots    int
	lastSeen time.Time
}

// New builds a Server, preloads persisted job records from the store,
// and starts its dispatcher and lease reaper.
func New(cfg Config) (*Server, error) {
	st := cfg.Store
	if st == nil {
		st = sparkxd.MemoryStore()
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	dispatch, err := ParseDispatch(string(cfg.Dispatch))
	if err != nil {
		return nil, err
	}
	leaseTTL := cfg.LeaseTTL
	if leaseTTL <= 0 {
		leaseTTL = DefaultLeaseTTL
	}
	shard := shardInfo{index: cfg.ShardIndex, count: cfg.ShardCount, peers: cfg.Peers}
	if err := shard.validate(); err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		st:       st,
		workers:  workers,
		dispatch: dispatch,
		leaseTTL: leaseTTL,
		shard:    shard,
		log:      logging.New(cfg.Logger, cfg.Logf),
		ctx:      ctx,
		cancel:   cancel,
		jobs:     make(map[string]*jobRec),
		wake:     make(chan struct{}, 1),
		running:  make(map[string]map[*jobRec]struct{}),
		leases:   make(map[string]*lease),
		fleet:    make(map[string]*workerInfo),
		cache:    sched.NewCache(),
	}
	s.systems = jobrun.NewSystems(workers, cfg.MaxWarmSystems, s.fanout)
	s.metrics = newServerMetrics(s)
	// Meter the store after metrics exist; every Get/Put from here on
	// (job records, artifacts, worker uploads) is counted.
	s.st = meteredStore{ArtifactStore: s.st, ops: s.metrics.storeOps}
	s.admit = newAdmitter(cfg.Rate, cfg.Burst)
	s.loadRecords()
	if dispatch != DispatchFleet {
		s.wg.Add(1)
		go s.dispatchLoop()
	}
	if dispatch != DispatchLocal {
		s.wg.Add(1)
		go s.reapLoop()
	}
	return s, nil
}

// Store returns the artifact store the server persists into.
func (s *Server) Store() sparkxd.ArtifactStore { return s.st }

// DispatchMode returns the server's dispatch mode.
func (s *Server) DispatchMode() Dispatch { return s.dispatch }

// Close stops accepting work, cancels running jobs, and waits for the
// dispatcher and reaper to drain. Jobs interrupted mid-execution are
// requeued (not failed) — see finish — so a Ctrl-C'd server never
// strands a job in "running"; call Drain first to give in-flight work a
// bounded chance to complete.
func (s *Server) Close() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.cancel()
	select {
	case s.wake <- struct{}{}:
	default:
	}
	s.wg.Wait()
}

// Drain stops handing out work — no new leases, no new local batches —
// and waits up to timeout for in-flight jobs (local and leased) to
// complete. Whatever is still outstanding afterwards is requeued:
// active leases are revoked so their jobs go back to queued state
// immediately rather than waiting for TTL expiry.
func (s *Server) Drain(timeout time.Duration) {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return
	}
	s.draining = true
	s.mu.Unlock()
	s.log.Info("draining", "timeout", timeout)

	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		s.mu.Lock()
		busy := s.inflight + len(s.leases)
		s.mu.Unlock()
		if busy == 0 {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for id, l := range s.leases {
		delete(s.leases, id)
		s.closeLeaseSpanLocked(l, "revoked")
		s.requeueLocked(l.rec, fmt.Sprintf("drain timeout: lease %s on worker %s revoked", id, l.worker))
	}
}

// Submit registers a job (idempotently) and returns its status plus
// whether this submission created it. An identical spec — same job ID —
// returns the existing job, whatever its state; a job completed in an
// earlier server lifetime against the same store is served from its
// persisted record without re-executing.
//
// On a sharded coordinator, a spec whose job ID hashes to another shard
// is refused with a *MisdirectError naming the owner (jobs already in
// the local table — e.g. leased before a reshard — are still served).
// Every accepted job also persists a queued-state record into the
// store before Submit returns, so a coordinator killed with a backlog
// can be replaced by a fresh process that resumes the queue from the
// shared store (see loadRecords).
func (s *Server) Submit(spec sparkxd.JobSpec) (sparkxd.JobStatus, bool, error) {
	return s.SubmitTraced(spec, "")
}

// SubmitTraced is Submit carrying the submission's W3C traceparent
// (from the HTTP header; "" when the client sent none). The trace
// context is held out-of-band on the job record — it never enters the
// spec, so job identity is byte-identical with tracing on or off. A
// valid traceparent continues the client's trace; otherwise the job
// roots a fresh one.
func (s *Server) SubmitTraced(spec sparkxd.JobSpec, traceparent string) (sparkxd.JobStatus, bool, error) {
	norm, err := spec.Normalized()
	if err != nil {
		return sparkxd.JobStatus{}, false, err
	}
	id, err := norm.ID()
	if err != nil {
		return sparkxd.JobStatus{}, false, err
	}
	fp, err := norm.Config.Fingerprint()
	if err != nil {
		return sparkxd.JobStatus{}, false, err
	}

	s.mu.Lock()
	if rec, ok := s.jobs[id]; ok {
		status := copyStatus(rec.status)
		s.mu.Unlock()
		s.metrics.submitted.With("duplicate").Inc()
		return status, false, nil
	}
	if !s.shard.owns(id) {
		owner := s.shard.ownerOf(id)
		s.mu.Unlock()
		s.metrics.misdirected.Inc()
		return sparkxd.JobStatus{}, false, &MisdirectError{JobID: id, Owner: owner}
	}
	if s.closed {
		s.mu.Unlock()
		return sparkxd.JobStatus{}, false, fmt.Errorf("server closed")
	}
	s.jobSeq++
	rec := &jobRec{
		status:   sparkxd.JobStatus{ID: id, State: sparkxd.JobQueued, Spec: norm},
		fp:       fp,
		cost:     float64(norm.Config.Neurons),
		notify:   make(chan struct{}),
		seq:      s.jobSeq,
		queuedAt: time.Now(),
		trace:    newJobTraceState(traceparent),
	}
	rec.status.TraceID = rec.trace.traceID()
	s.metrics.submitted.With("created").Inc()
	if norm.Kind == sparkxd.JobSweep {
		s.metrics.observeSweepAxes(norm.Sweep)
	}
	s.jobs[id] = rec
	s.queue = append(s.queue, rec)
	s.appendEventLocked(rec, sparkxd.Event{Stage: "job", Phase: "queued", Message: id})
	select {
	case s.wake <- struct{}{}:
	default:
	}
	status := copyStatus(rec.status)
	s.mu.Unlock()
	// Persist the queued-state record outside the lock (store writes do
	// IO). The spec is content-addressed and queued records carry no
	// trace fields, so duplicate submissions across coordinator lifetimes
	// write the same record — an idempotent no-op.
	s.persistRecord(status, "")
	s.log.Info("job queued", "job", id, "kind", norm.Kind, "trace", status.TraceID)
	return status, true, nil
}

// Owner reports which federation peer owns a job ID, and whether that
// peer is another coordinator (false on an unsharded server or for the
// shard's own IDs). The HTTP layer uses it to answer 421 for unknown
// jobs that live on a peer.
func (s *Server) Owner(jobID string) (string, bool) {
	if !s.shard.enabled() || s.shard.owns(jobID) {
		return "", false
	}
	return s.shard.ownerOf(jobID), true
}

// Job returns the status of a job by ID.
func (s *Server) Job(id string) (sparkxd.JobStatus, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rec, ok := s.jobs[id]
	if !ok {
		return sparkxd.JobStatus{}, false
	}
	return copyStatus(rec.status), true
}

// Jobs lists every known job, sorted by ID.
func (s *Server) Jobs() []sparkxd.JobStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]sparkxd.JobStatus, 0, len(s.jobs))
	for _, rec := range s.jobs {
		out = append(out, copyStatus(rec.status))
	}
	sortStatuses(out)
	return out
}

// QueueDepth reports how many jobs are queued and unclaimed.
func (s *Server) QueueDepth() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.queue)
}

// eventsSince returns the job's events from absolute index `from` on
// (indices count all events ever recorded, including any trimmed off
// the bounded log), whether the job has reached a terminal state, and a
// channel closed on the next update. The returned next index is `from`
// plus the delivered events plus any trimmed gap.
func (s *Server) eventsSince(id string, from int) (evs []sparkxd.Event, next int, terminal bool, notify <-chan struct{}, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rec, found := s.jobs[id]
	if !found {
		return nil, from, false, nil, false
	}
	start := from - rec.dropped
	if start < 0 {
		start = 0 // the subscriber's position was trimmed away
	}
	if start < len(rec.events) {
		evs = append(evs, rec.events[start:]...)
	}
	return evs, rec.dropped + len(rec.events), rec.status.State.Terminal(), rec.notify, true
}

// loadRecords preloads persisted job records (KindJobRecord) from the
// store. Two record states matter:
//
//   - JobDone: submissions of previously-completed jobs are answered
//     from the durable cache. A done record is only trusted if every
//     artifact it references is still present; otherwise the job simply
//     re-executes (and, by determinism, re-derives identical keys).
//   - JobQueued: jobs a previous coordinator accepted but never
//     finished. They re-enter the queue, so a replacement coordinator
//     pointed at the same store resumes the backlog of one that was
//     killed — the federation's failover path.
//
// Both record states coexist for a completed job (queued was written at
// accept time, done at completion); the verified done record wins. On a
// sharded coordinator, records owned by other shards are skipped — each
// federation member restores only its slice of the ID space.
func (s *Server) loadRecords() {
	infos, err := s.st.List(sparkxd.KindJobRecord)
	if err != nil {
		s.log.Warn("job records list failed", "err", err)
		return
	}
	type candidate struct {
		done   *sparkxd.JobRecord
		queued *sparkxd.JobRecord
	}
	cands := make(map[string]*candidate)
	var order []string // List is key-sorted; keep restore order deterministic
	for _, info := range infos {
		rec, err := sparkxd.GetJobRecord(s.st, info.Key)
		if err != nil {
			s.log.Warn("job record unreadable", "key", string(info.Key), "err", err)
			continue
		}
		if rec.Version > sparkxd.JobRecordVersion || rec.JobID == "" {
			continue
		}
		if !s.shard.owns(rec.JobID) {
			continue
		}
		c := cands[rec.JobID]
		if c == nil {
			c = &candidate{}
			cands[rec.JobID] = c
			order = append(order, rec.JobID)
		}
		switch rec.State {
		case sparkxd.JobDone:
			complete := true
			for _, key := range rec.Artifacts {
				if _, err := s.st.Stat(key); err != nil {
					complete = false
					break
				}
			}
			if complete {
				c.done = rec
			}
		case sparkxd.JobQueued:
			c.queued = rec
		}
		// JobFailed records are never persisted today; a job that failed
		// in a previous lifetime keeps only its queued record and re-runs.
	}
	loaded, requeued := 0, 0
	for _, id := range order {
		c := cands[id]
		rec := c.done
		if rec == nil {
			rec = c.queued
		}
		if rec == nil {
			continue
		}
		fp, err := rec.Spec.Config.Fingerprint()
		if err != nil {
			continue
		}
		if c.done != nil {
			jr := &jobRec{
				status: sparkxd.JobStatus{
					ID:        rec.JobID,
					State:     sparkxd.JobDone,
					Spec:      rec.Spec,
					Artifacts: rec.Artifacts,
					TraceID:   rec.TraceID,
				},
				fp:       fp,
				notify:   make(chan struct{}),
				traceKey: rec.TraceKey,
			}
			s.jobs[rec.JobID] = jr
			s.appendEventLocked(jr, sparkxd.Event{Stage: "job", Phase: "done",
				Message: fmt.Sprintf("served from persisted record (%d artifacts)", len(rec.Artifacts))})
			loaded++
			continue
		}
		s.jobSeq++
		jr := &jobRec{
			status:   sparkxd.JobStatus{ID: rec.JobID, State: sparkxd.JobQueued, Spec: rec.Spec},
			fp:       fp,
			cost:     float64(rec.Spec.Config.Neurons),
			notify:   make(chan struct{}),
			seq:      s.jobSeq,
			queuedAt: time.Now(),
			// The original submission's trace died with the previous
			// coordinator; the takeover lifetime roots a fresh one.
			trace: newJobTraceState(""),
		}
		jr.status.TraceID = jr.trace.traceID()
		s.jobs[rec.JobID] = jr
		s.queue = append(s.queue, jr)
		s.appendEventLocked(jr, sparkxd.Event{Stage: "job", Phase: "queued",
			Message: "requeued from durable record (coordinator takeover)"})
		requeued++
	}
	if requeued > 0 {
		select {
		case s.wake <- struct{}{}:
		default:
		}
	}
	if loaded > 0 || requeued > 0 {
		s.log.Info("job records restored", "completed", loaded, "requeued", requeued)
	}
}

// persistRecord writes a job's durable record to the store: a
// queued-state record at accept time (so a replacement coordinator can
// resume the queue) and a done-state record at completion. Trace fields
// ride only the done record (traceKey != ""): queued records must stay
// deterministic in the spec so resubmissions across coordinator
// lifetimes remain idempotent store writes. Called without s.mu held
// (store writes do IO).
func (s *Server) persistRecord(status sparkxd.JobStatus, traceKey sparkxd.ArtifactKey) {
	rec := &sparkxd.JobRecord{
		Version:   sparkxd.JobRecordVersion,
		JobID:     status.ID,
		State:     status.State,
		Spec:      status.Spec,
		Artifacts: status.Artifacts,
	}
	if traceKey != "" {
		rec.TraceID = status.TraceID
		rec.TraceKey = traceKey
	}
	if _, err := sparkxd.PutArtifact(s.st, rec); err != nil {
		s.log.Warn("persist record failed", "job", status.ID, "err", err)
	}
}

// dispatchLoop runs queued jobs in batches on a fresh sched pool per
// batch (sharing one cache), so concurrent submissions fan out across
// workers with the scheduler's cost-aware work stealing. Not started in
// fleet mode.
func (s *Server) dispatchLoop() {
	defer s.wg.Done()
	for {
		select {
		case <-s.ctx.Done():
			return
		case <-s.wake:
		}
		for {
			batch := s.takeQueued()
			if len(batch) == 0 {
				break
			}
			s.runBatch(batch)
		}
	}
}

// agingQuantum is how much queue wait buys one priority step: a
// priority-0 job that has waited 5 quanta dispatches ahead of a fresh
// priority-4 job, so a heavy high-priority submitter cannot starve the
// rest of the queue indefinitely.
const agingQuantum = 5 * time.Second

// effPriority is a job's aged dispatch priority at time now.
func effPriority(rec *jobRec, now time.Time) int {
	p := rec.status.Spec.Priority
	if !rec.queuedAt.IsZero() {
		p += int(now.Sub(rec.queuedAt) / agingQuantum)
	}
	return p
}

// sortQueueLocked orders the queue for dispatch: aged priority
// descending, then submission order. Sorting happens at claim time (not
// insert time) because age shifts effective priorities while jobs wait.
// Caller holds s.mu.
func (s *Server) sortQueueLocked(now time.Time) {
	sort.SliceStable(s.queue, func(a, b int) bool {
		pa, pb := effPriority(s.queue[a], now), effPriority(s.queue[b], now)
		if pa != pb {
			return pa > pb
		}
		return s.queue[a].seq < s.queue[b].seq
	})
}

// takeQueued claims jobs for local execution in aged-priority order.
// Batches are bounded by the pool size — in hybrid mode so queued work
// stays leasable by fleet workers between batches, and in local mode so
// later-arriving high-priority jobs sort ahead of the backlog at the
// next batch boundary instead of waiting out the whole queue.
func (s *Server) takeQueued() []*jobRec {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || s.draining {
		return nil
	}
	s.sortQueueLocked(time.Now())
	n := len(s.queue)
	if n > s.workers {
		n = s.workers
	}
	batch := s.queue[:n:n]
	s.queue = append([]*jobRec(nil), s.queue[n:]...)
	s.inflight += len(batch)
	for _, rec := range batch {
		s.closeQueueSpanLocked(rec, "local")
	}
	return batch
}

// runBatch executes one claimed batch on the work-stealing pool. Job IDs
// are the sched job names and the neuron count is the cost hint, so big
// configurations start first and idle workers steal small ones.
func (s *Server) runBatch(batch []*jobRec) {
	sch, err := sched.New(sched.Config{Workers: s.workers, Seed: 1, Cache: s.cache})
	if err != nil {
		for _, rec := range batch {
			s.finish(rec, nil, err)
		}
		return
	}
	for _, rec := range batch {
		rec := rec
		err := sch.Add(sched.Job{
			Name: rec.status.ID,
			Cost: rec.cost,
			Run: func(*sched.Ctx) (any, error) {
				s.execute(rec)
				return nil, nil
			},
		})
		if err != nil {
			s.finish(rec, nil, err)
		}
	}
	sch.Run() // job failures are recorded on the recs, not here
}

// execute runs one job end to end and records its outcome. Panics are
// contained here (not just in sched) so a crashed job reaches JobFailed
// instead of sticking in JobRunning.
func (s *Server) execute(rec *jobRec) {
	s.setRunning(rec)
	var (
		arts map[string]sparkxd.ArtifactKey
		err  error
	)
	func() {
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("panic: %v", r)
			}
		}()
		arts, err = s.run(rec)
	}()
	s.finish(rec, arts, err)
}

// run performs the job's work and returns the artifact role map. The
// whole local execution is wrapped in an "execute" span (a child of the
// job root) with warm-build, per-stage, and artifact-store child spans —
// the local-dispatch mirror of what a fleet worker emits.
func (s *Server) run(rec *jobRec) (map[string]sparkxd.ArtifactKey, error) {
	proc := s.procName()
	s.mu.Lock()
	var parent tracing.SpanContext
	if rec.trace != nil {
		parent = rec.trace.root
	}
	s.mu.Unlock()
	exec := tracing.Start(parent, proc, "execute")
	exec.SetAttr("executor", "local")
	fail := func(err error) (map[string]sparkxd.ArtifactKey, error) {
		exec.SetAttr("outcome", "failed")
		s.addSpan(rec, exec.End())
		return nil, err
	}

	acqStart := time.Now()
	sys, built, release, err := s.systems.Acquire(rec.fp, rec.status.Spec.Config)
	if err != nil {
		release()
		return fail(err)
	}
	defer release()
	if built {
		s.addSpan(rec, tracing.Completed(exec.Context(), proc, "warm-system-build",
			acqStart, time.Since(acqStart), map[string]string{"fingerprint": rec.fp}))
	}
	s.markRunningOn(rec)
	defer s.unmarkRunningOn(rec)

	observe := func(stage string, d time.Duration) {
		s.metrics.observeStage(stage, d)
		s.addSpan(rec, tracing.Completed(exec.Context(), proc, "stage:"+stage,
			time.Now().Add(-d), d, nil))
	}
	produced, err := jobrun.Produce(s.ctx, sys, rec.status.Spec, observe)
	if err != nil {
		return fail(err)
	}
	storeStart := time.Now()
	arts := make(map[string]sparkxd.ArtifactKey, len(produced))
	for role, v := range produced {
		key, err := sparkxd.PutArtifact(s.st, v)
		if err != nil {
			return fail(fmt.Errorf("store %s: %w", role, err))
		}
		arts[role] = key
	}
	s.addSpan(rec, tracing.Completed(exec.Context(), proc, "store-artifacts",
		storeStart, time.Since(storeStart), map[string]string{"artifacts": strconv.Itoa(len(arts))}))
	exec.SetAttr("outcome", "done")
	s.addSpan(rec, exec.End())
	return arts, nil
}

// fanout delivers an engine event to every job currently executing on
// that engine (configuration fingerprint).
func (s *Server) fanout(fp string, ev sparkxd.Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for rec := range s.running[fp] {
		s.appendEventLocked(rec, ev)
	}
}

func (s *Server) markRunningOn(rec *jobRec) {
	s.mu.Lock()
	defer s.mu.Unlock()
	set := s.running[rec.fp]
	if set == nil {
		set = make(map[*jobRec]struct{})
		s.running[rec.fp] = set
	}
	set[rec] = struct{}{}
}

func (s *Server) unmarkRunningOn(rec *jobRec) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.running[rec.fp], rec)
}

// setRunning transitions a job to JobRunning.
func (s *Server) setRunning(rec *jobRec) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rec.status.State = sparkxd.JobRunning
	s.appendEventLocked(rec, sparkxd.Event{Stage: "job", Phase: "running", Message: rec.status.ID})
	s.log.Info("job running", "job", rec.status.ID, "trace", rec.status.TraceID)
}

// finish records a local job's terminal state — or requeues it when the
// failure is the server's own shutdown cancellation, so Ctrl-C never
// strands (or spuriously fails) a job that merely had the bad luck of
// being in flight.
func (s *Server) finish(rec *jobRec, arts map[string]sparkxd.ArtifactKey, err error) {
	s.mu.Lock()
	if s.inflight > 0 {
		s.inflight--
	}
	if rec.status.State.Terminal() {
		s.mu.Unlock()
		return
	}
	if err != nil && s.ctx.Err() != nil {
		// Shutdown cancellation, not a real failure of the job.
		s.requeueLocked(rec, "server shutting down")
		s.mu.Unlock()
		return
	}
	if err != nil {
		rec.status.State = sparkxd.JobFailed
		rec.status.Error = err.Error()
		s.appendEventLocked(rec, sparkxd.Event{Stage: "job", Phase: "failed", Message: err.Error()})
		s.metrics.observeTerminal(rec, "failed", "local")
		s.log.Warn("job failed", "job", rec.status.ID, "trace", rec.status.TraceID, "err", err)
		s.mu.Unlock()
		s.finalizeTrace(rec)
		return
	}
	rec.status.State = sparkxd.JobDone
	rec.status.Artifacts = arts
	s.metrics.observeTerminal(rec, "done", "local")
	s.appendEventLocked(rec, sparkxd.Event{Stage: "job", Phase: "done",
		Message: fmt.Sprintf("%d artifacts", len(arts))})
	s.log.Info("job done", "job", rec.status.ID, "trace", rec.status.TraceID, "artifacts", len(arts))
	s.mu.Unlock()
	s.finalizeTrace(rec)
	s.mu.Lock()
	status := copyStatus(rec.status)
	traceKey := rec.traceKey
	s.mu.Unlock()
	s.persistRecord(status, traceKey)
}

// requeueLocked returns a non-terminal job to the front of the queue.
// Caller holds s.mu (and has already removed any lease on the job).
func (s *Server) requeueLocked(rec *jobRec, msg string) {
	rec.leaseID = ""
	rec.status.State = sparkxd.JobQueued
	s.metrics.requeued.Inc()
	s.reopenQueueSpanLocked(rec)
	s.appendEventLocked(rec, sparkxd.Event{Stage: "job", Phase: "requeued", Message: msg})
	s.queue = append([]*jobRec{rec}, s.queue...)
	select {
	case s.wake <- struct{}{}:
	default:
	}
	s.log.Info("job requeued", "job", rec.status.ID, "trace", rec.status.TraceID, "reason", msg)
}

// appendEventLocked records an event on a job (trimming the log's
// front beyond maxJobEvents) and wakes its SSE subscribers. Caller
// holds s.mu.
func (s *Server) appendEventLocked(rec *jobRec, ev sparkxd.Event) {
	rec.events = append(rec.events, ev)
	if excess := len(rec.events) - maxJobEvents; excess > 0 {
		rec.events = append(rec.events[:0:0], rec.events[excess:]...)
		rec.dropped += excess
	}
	close(rec.notify)
	rec.notify = make(chan struct{})
}

// copyStatus deep-copies the mutable parts of a status.
func copyStatus(st sparkxd.JobStatus) sparkxd.JobStatus {
	if st.Artifacts != nil {
		arts := make(map[string]sparkxd.ArtifactKey, len(st.Artifacts))
		for k, v := range st.Artifacts {
			arts[k] = v
		}
		st.Artifacts = arts
	}
	return st
}

// sortStatuses orders statuses by ID.
func sortStatuses(sts []sparkxd.JobStatus) {
	sort.Slice(sts, func(a, b int) bool { return sts[a].ID < sts[b].ID })
}
