package server

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"sparkxd"
	"sparkxd/internal/fleetapi"
	"sparkxd/internal/tracing"
)

// Lease protocol failures (mapped onto HTTP status codes in http.go).
var (
	// ErrLeaseLost: the lease expired, was revoked, or never existed.
	// The worker must abandon the job — another worker may own it.
	ErrLeaseLost = errors.New("server: lease lost")
	// ErrBadComplete: a completion request referenced artifacts that
	// were never uploaded, or carried neither artifacts nor an error.
	ErrBadComplete = errors.New("server: invalid completion")
)

// RegisterWorker records a fleet worker's presence and returns the
// lease parameters it should heartbeat under. Registration is
// idempotent — workers may re-register on every reconnect.
func (s *Server) RegisterWorker(name string, slots int) (fleetapi.RegisterResponse, error) {
	if name == "" {
		return fleetapi.RegisterResponse{}, fmt.Errorf("empty worker name")
	}
	if slots <= 0 {
		slots = 1
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.touchWorkerLocked(name, slots)
	s.log.Info("worker registered", "worker", name, "slots", slots)
	return fleetapi.RegisterResponse{
		Name:           name,
		LeaseTTLMillis: s.leaseTTL.Milliseconds(),
		Dispatch:       string(s.dispatch),
	}, nil
}

// Workers lists the registered fleet workers, sorted by name.
func (s *Server) Workers() []fleetapi.WorkerStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	active := make(map[string]int)
	for _, l := range s.leases {
		active[l.worker]++
	}
	now := time.Now()
	out := make([]fleetapi.WorkerStatus, 0, len(s.fleet))
	for _, w := range s.fleet {
		out = append(out, fleetapi.WorkerStatus{
			Name:              w.name,
			Slots:             w.slots,
			ActiveLeases:      active[w.name],
			LastSeenMillisAgo: now.Sub(w.lastSeen).Milliseconds(),
		})
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Name < out[b].Name })
	return out
}

// AcquireLeases hands up to capacity queued jobs to a worker. Jobs
// whose earlier lease expired on this same worker are skipped (the
// worker is excluded — it already demonstrated it cannot finish them),
// and each granted job carries exactly one live lease. In local
// dispatch mode, and while draining, no work is handed out.
func (s *Server) AcquireLeases(worker string, capacity int) ([]fleetapi.Grant, error) {
	if worker == "" {
		return nil, fmt.Errorf("empty worker name")
	}
	if capacity <= 0 {
		return nil, nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.touchWorkerLocked(worker, 0)
	if s.dispatch == DispatchLocal || s.draining || s.closed {
		return nil, nil
	}
	var (
		grants []fleetapi.Grant
		keep   []*jobRec
	)
	// Grants follow the same aged-priority order as local dispatch.
	s.sortQueueLocked(time.Now())
	// Exclusion must never starve a job: if every worker seen alive
	// recently has an expired lease on it, the exclusion set has lost its
	// meaning (nobody else will come) and is wiped so the fleet retries.
	liveCutoff := time.Now().Add(-excludedRetryTTLs * s.leaseTTL)
	for _, rec := range s.queue {
		// rec.leaseID != "" should be impossible for a queued job (leases
		// pop jobs off the queue); the check is the at-most-one-lease
		// invariant spelled defensively.
		if len(grants) >= capacity || rec.leaseID != "" {
			keep = append(keep, rec)
			continue
		}
		if rec.excluded[worker] {
			if s.hasLiveAlternativeLocked(rec, liveCutoff) {
				keep = append(keep, rec)
				continue
			}
			s.log.Warn("every live worker excluded; clearing exclusions", "job", rec.status.ID)
			rec.excluded = nil
		}
		s.leaseSeq++
		l := &lease{
			id:      fmt.Sprintf("lease-%06d", s.leaseSeq),
			worker:  worker,
			rec:     rec,
			expires: time.Now().Add(s.leaseTTL),
		}
		// The queue episode ends with the grant; the lease span stays open
		// until the lease completes, releases, expires, or is revoked, and
		// its context rides the grant so worker spans nest under it.
		s.closeQueueSpanLocked(rec, worker)
		var traceparent string
		if rec.trace != nil {
			l.span = tracing.Start(rec.trace.root, s.procName(), "lease")
			traceparent = l.span.Context().Traceparent()
		}
		s.leases[l.id] = l
		rec.leaseID = l.id
		rec.status.State = sparkxd.JobRunning
		s.appendEventLocked(rec, sparkxd.Event{Stage: "job", Phase: "leased",
			Message: fmt.Sprintf("worker %s (lease %s)", worker, l.id)})
		s.log.Info("job leased", "job", rec.status.ID, "trace", rec.status.TraceID,
			"worker", worker, "lease", l.id)
		s.metrics.leaseOps.With("grant").Inc()
		grants = append(grants, fleetapi.Grant{
			LeaseID:     l.id,
			JobID:       rec.status.ID,
			Spec:        rec.status.Spec,
			TTLMillis:   s.leaseTTL.Milliseconds(),
			Traceparent: traceparent,
		})
	}
	s.queue = keep
	return grants, nil
}

// RenewLease extends a live lease's TTL (the worker heartbeat). A lost
// lease returns ErrLeaseLost: the worker must stop working on the job.
func (s *Server) RenewLease(id string) (time.Duration, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	l, ok := s.leases[id]
	if !ok {
		return 0, ErrLeaseLost
	}
	l.expires = time.Now().Add(s.leaseTTL)
	l.renews++
	s.touchWorkerLocked(l.worker, 0)
	s.metrics.leaseOps.With("renew").Inc()
	return s.leaseTTL, nil
}

// ReleaseLease returns a leased job to the queue without penalty (the
// graceful half of worker shutdown: drained-but-unfinished jobs are
// handed back instead of left to expire).
func (s *Server) ReleaseLease(id string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	l, ok := s.leases[id]
	if !ok {
		return ErrLeaseLost
	}
	delete(s.leases, id)
	s.touchWorkerLocked(l.worker, 0)
	s.metrics.leaseOps.With("release").Inc()
	s.closeLeaseSpanLocked(l, "released")
	s.requeueLocked(l.rec, fmt.Sprintf("released by worker %s", l.worker))
	return nil
}

// IngestEvents bridges a worker's forwarded engine events into the
// job's SSE stream. Span-bearing events are routed into the job's trace
// instead of the event log — they are telemetry, not progress. Events
// on a lost lease are dropped (ErrLeaseLost) so a zombie worker cannot
// pollute a job that moved on.
func (s *Server) IngestEvents(id string, evs []sparkxd.Event) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	l, ok := s.leases[id]
	if !ok {
		return ErrLeaseLost
	}
	for _, ev := range evs {
		if ev.Span != nil {
			s.addSpanLocked(l.rec, *ev.Span)
			continue
		}
		s.appendEventLocked(l.rec, ev)
	}
	return nil
}

// CompleteLease finishes a leased job: either with an artifact role map
// the worker has already uploaded to the store, or with a failure
// message. Artifact keys are verified present before the job is marked
// done — a completion must never dangle. spans carries the worker's
// completion-time spans (artifact upload, the execution envelope) that
// no further event batch could have delivered; they join the job's
// trace, which is assembled and persisted here at the terminal
// transition.
func (s *Server) CompleteLease(id string, arts map[string]sparkxd.ArtifactKey, failure string, spans []sparkxd.TraceSpan) error {
	if failure == "" && len(arts) == 0 {
		return fmt.Errorf("%w: neither artifacts nor an error", ErrBadComplete)
	}
	// Verify uploads outside the lock (store reads do IO); the lease is
	// re-checked under the lock afterwards.
	if failure == "" {
		for role, key := range arts {
			if _, err := s.st.Stat(key); err != nil {
				return fmt.Errorf("%w: artifact %q (%s) not in store: %v", ErrBadComplete, role, key, err)
			}
		}
	}
	s.mu.Lock()
	l, ok := s.leases[id]
	if !ok {
		s.mu.Unlock()
		return ErrLeaseLost
	}
	delete(s.leases, id)
	s.touchWorkerLocked(l.worker, 0)
	s.metrics.leaseOps.With("complete").Inc()
	rec := l.rec
	rec.leaseID = ""
	if rec.status.State.Terminal() {
		s.closeLeaseSpanLocked(l, "stale")
		s.mu.Unlock()
		return nil
	}
	for _, sd := range spans {
		s.addSpanLocked(rec, sd)
	}
	if failure != "" {
		rec.status.State = sparkxd.JobFailed
		rec.status.Error = failure
		s.appendEventLocked(rec, sparkxd.Event{Stage: "job", Phase: "failed", Message: failure})
		s.metrics.observeTerminal(rec, "failed", "fleet")
		s.closeLeaseSpanLocked(l, "failed")
		s.log.Warn("job failed on worker", "job", rec.status.ID, "trace", rec.status.TraceID,
			"worker", l.worker, "err", failure)
		s.mu.Unlock()
		s.finalizeTrace(rec)
		return nil
	}
	rec.status.State = sparkxd.JobDone
	rec.status.Artifacts = arts
	s.metrics.observeTerminal(rec, "done", "fleet")
	s.appendEventLocked(rec, sparkxd.Event{Stage: "job", Phase: "done",
		Message: fmt.Sprintf("%d artifacts (worker %s)", len(arts), l.worker)})
	s.closeLeaseSpanLocked(l, "completed")
	s.log.Info("job done on worker", "job", rec.status.ID, "trace", rec.status.TraceID,
		"worker", l.worker, "artifacts", len(arts))
	s.mu.Unlock()
	s.finalizeTrace(rec)
	s.mu.Lock()
	status := copyStatus(rec.status)
	traceKey := rec.traceKey
	s.mu.Unlock()
	s.persistRecord(status, traceKey)
	return nil
}

// PutUploadedArtifact stores an envelope a worker uploaded, after
// verifying the bytes hash back to the claimed key. Content addressing
// makes this idempotent and race-free: two workers (or a zombie and its
// replacement) uploading the same deterministic result write the same
// bytes to the same address.
func (s *Server) PutUploadedArtifact(key sparkxd.ArtifactKey, env *sparkxd.ArtifactEnvelope) error {
	got, err := s.st.Put(env.Kind, env.Payload)
	if err != nil {
		return err
	}
	if got != key {
		// Unreachable when the envelope was decoded against the key, but
		// guard the store's integrity anyway.
		return fmt.Errorf("uploaded envelope stored at %s, claimed %s", got, key)
	}
	return nil
}

// reapLoop expires overdue leases, requeueing their jobs with the dead
// worker excluded. Runs for the server's lifetime in fleet and hybrid
// modes.
func (s *Server) reapLoop() {
	defer s.wg.Done()
	interval := s.leaseTTL / 4
	if interval < 25*time.Millisecond {
		interval = 25 * time.Millisecond
	}
	if interval > 2*time.Second {
		interval = 2 * time.Second
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-s.ctx.Done():
			return
		case now := <-tick.C:
			s.expireLeases(now)
		}
	}
}

// expireLeases requeues every job whose lease deadline has passed,
// excluding the silent worker from re-leasing that job.
func (s *Server) expireLeases(now time.Time) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for id, l := range s.leases {
		if now.Before(l.expires) {
			continue
		}
		delete(s.leases, id)
		s.metrics.leaseOps.With("expire").Inc()
		rec := l.rec
		if rec.excluded == nil {
			rec.excluded = make(map[string]bool)
		}
		rec.excluded[l.worker] = true
		s.closeLeaseSpanLocked(l, "expired")
		s.requeueLocked(rec, fmt.Sprintf("lease %s expired on worker %s", id, l.worker))
	}
}

// excludedRetryTTLs is how many lease TTLs of silence demote a worker
// from "live alternative" when deciding whether a job's exclusion set
// still leaves anyone eligible to run it.
const excludedRetryTTLs = 5

// hasLiveAlternativeLocked reports whether some recently-seen worker is
// not excluded from rec. Caller holds s.mu.
func (s *Server) hasLiveAlternativeLocked(rec *jobRec, cutoff time.Time) bool {
	for name, w := range s.fleet {
		if !rec.excluded[name] && w.lastSeen.After(cutoff) {
			return true
		}
	}
	return false
}

// touchWorkerLocked refreshes a worker's presence entry. Caller holds
// s.mu. slots == 0 keeps the registered slot count.
func (s *Server) touchWorkerLocked(name string, slots int) {
	w, ok := s.fleet[name]
	if !ok {
		w = &workerInfo{name: name, slots: 1}
		s.fleet[name] = w
	}
	if slots > 0 {
		w.slots = slots
	}
	w.lastSeen = time.Now()
}
