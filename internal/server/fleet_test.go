package server

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"sparkxd"
	"sparkxd/internal/store"
	"sparkxd/internal/worker"
)

// tinySweepJob is a laptop-fast 2-scenario sweep job spec.
func tinySweepJob() sparkxd.JobSpec {
	return sparkxd.JobSpec{
		Kind:   sparkxd.JobSweep,
		Config: tinyConfig(),
		Sweep: &sparkxd.SweepSpec{
			Voltages:    []float64{1.1},
			BERs:        []float64{1e-5, 1e-4},
			ErrorModels: []sparkxd.ErrorModel{sparkxd.ErrorModelUniform},
			Policies:    []sparkxd.Policy{sparkxd.PolicySparkXD},
		},
	}
}

// waitState polls a job until pred holds.
func waitState(t *testing.T, srv *Server, id string, what string, pred func(sparkxd.JobStatus) bool) sparkxd.JobStatus {
	t.Helper()
	deadline := time.Now().Add(3 * time.Minute)
	for time.Now().Before(deadline) {
		status, ok := srv.Job(id)
		if !ok {
			t.Fatalf("job %s vanished", id)
		}
		if pred(status) {
			return status
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("job %s never reached %s", id, what)
	return sparkxd.JobStatus{}
}

// The full lease lifecycle under a worker crash: the job is leased
// exactly once (double-lease rejection), the silent worker's lease
// expires and the job requeues with that worker excluded, a second
// worker completes it, and the artifact is byte-identical to an
// in-process run of the same spec — the re-execution-safety property
// that content-addressed job IDs buy.
func TestLeaseCrashRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("training skipped in -short mode")
	}
	srv, err := New(Config{
		Workers:  2,
		Dispatch: DispatchFleet,
		// Short enough that crash expiry keeps the test fast, long enough
		// that a race-detector-slowed heartbeat round trip never expires a
		// healthy worker's lease.
		LeaseTTL: time.Second,
		Logf:     t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	spec := tinySweepJob()
	status, created, err := srv.Submit(spec)
	if err != nil || !created {
		t.Fatalf("submit: created=%v err=%v", created, err)
	}

	// "crashy" leases the job... and dies without ever heartbeating.
	grants, err := srv.AcquireLeases("crashy", 4)
	if err != nil || len(grants) != 1 {
		t.Fatalf("AcquireLeases = %v, %v; want one grant", grants, err)
	}
	if grants[0].JobID != status.ID {
		t.Fatalf("leased job %s, want %s", grants[0].JobID, status.ID)
	}

	// At-most-one active lease: the leased job is not re-grantable.
	if g2, _ := srv.AcquireLeases("bystander", 4); len(g2) != 0 {
		t.Fatalf("double lease granted: %v", g2)
	}

	// The lease expires; the job requeues with crashy excluded.
	waitState(t, srv, status.ID, "requeued", func(st sparkxd.JobStatus) bool {
		return st.State == sparkxd.JobQueued
	})
	if _, err := srv.RenewLease(grants[0].LeaseID); !errors.Is(err, ErrLeaseLost) {
		t.Errorf("renew of expired lease: err = %v, want ErrLeaseLost", err)
	}
	if g3, _ := srv.AcquireLeases("crashy", 4); len(g3) != 0 {
		t.Errorf("excluded worker re-leased its failed job: %v", g3)
	}

	// A healthy replacement worker picks the job up and completes it.
	w, err := worker.New(worker.Config{
		Coordinator:   ts.URL,
		Name:          "medic",
		Slots:         2,
		Poll:          30 * time.Millisecond,
		FlushInterval: 30 * time.Millisecond,
		DrainTimeout:  time.Second,
		Logf:          t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	wctx, stopWorker := context.WithCancel(context.Background())
	workerDone := make(chan struct{})
	go func() { defer close(workerDone); _ = w.Run(wctx) }()
	t.Cleanup(func() { stopWorker(); <-workerDone })

	final := waitState(t, srv, status.ID, "done", func(st sparkxd.JobStatus) bool {
		return st.State.Terminal()
	})
	if final.State != sparkxd.JobDone {
		t.Fatalf("job failed: %s", final.Error)
	}

	// Byte-identity with the in-process run: the artifact key IS the
	// content address, so matching keys proves matching bytes.
	opts, err := spec.Config.Options()
	if err != nil {
		t.Fatal(err)
	}
	sys, err := sparkxd.New(opts...)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	p := sys.Pipeline()
	if _, err := p.Train(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := p.ImproveTolerance(ctx); err != nil {
		t.Fatal(err)
	}
	direct, err := p.Sweep(ctx, *spec.Sweep)
	if err != nil {
		t.Fatal(err)
	}
	wantKey, err := store.KeyFor(sparkxd.KindSweepReport, direct)
	if err != nil {
		t.Fatal(err)
	}
	gotKey, ok := final.Artifacts["sweep"]
	if !ok {
		t.Fatalf("no sweep artifact (have %v)", final.Artifacts)
	}
	if string(gotKey) != string(wantKey) {
		t.Errorf("fleet artifact %s != in-process content address %s", gotKey, wantKey)
	}
	if _, err := srv.Store().Get(gotKey); err != nil {
		t.Errorf("uploaded artifact unreadable: %v", err)
	}
}

// Exclusion must not starve a job: when the only live worker is the
// one whose lease expired, the exclusion set is cleared and the worker
// gets a second chance instead of the job sitting queued forever.
func TestSoloWorkerExclusionEscape(t *testing.T) {
	srv, err := New(Config{
		Workers:  1,
		Dispatch: DispatchFleet,
		LeaseTTL: 50 * time.Millisecond,
		Logf:     t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	status, _, err := srv.Submit(tinySweepJob())
	if err != nil {
		t.Fatal(err)
	}
	grants, err := srv.AcquireLeases("solo", 1)
	if err != nil || len(grants) != 1 {
		t.Fatalf("AcquireLeases = %v, %v", grants, err)
	}
	waitState(t, srv, status.ID, "requeued", func(st sparkxd.JobStatus) bool {
		return st.State == sparkxd.JobQueued
	})
	// solo is excluded, but it is also the only worker alive — the
	// exclusion is wiped and the job re-leased.
	again, err := srv.AcquireLeases("solo", 1)
	if err != nil || len(again) != 1 {
		t.Fatalf("solo worker never got its second chance: %v, %v", again, err)
	}
	if again[0].JobID != status.ID {
		t.Errorf("re-leased %s, want %s", again[0].JobID, status.ID)
	}
}

// Completing a lost lease is rejected, and a completion referencing
// never-uploaded artifacts is invalid.
func TestLeaseCompletionValidation(t *testing.T) {
	srv, err := New(Config{
		Workers:  1,
		Dispatch: DispatchFleet,
		LeaseTTL: time.Minute,
		Logf:     t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)

	if err := srv.CompleteLease("lease-999999", nil, "boom", nil); !errors.Is(err, ErrLeaseLost) {
		t.Errorf("completing an unknown lease: err = %v, want ErrLeaseLost", err)
	}
	status, _, err := srv.Submit(tinySweepJob())
	if err != nil {
		t.Fatal(err)
	}
	grants, err := srv.AcquireLeases("w", 1)
	if err != nil || len(grants) != 1 {
		t.Fatalf("AcquireLeases = %v, %v", grants, err)
	}
	missing := sparkxd.ArtifactKey(sparkxd.KindSweepReport + "/0123456789abcdef0123456789abcdef0123456789abcdef0123456789abcdef")
	err = srv.CompleteLease(grants[0].LeaseID, map[string]sparkxd.ArtifactKey{"sweep": missing}, "", nil)
	if !errors.Is(err, ErrBadComplete) {
		t.Errorf("completion with missing artifact: err = %v, want ErrBadComplete", err)
	}
	if err := srv.CompleteLease(grants[0].LeaseID, nil, "", nil); !errors.Is(err, ErrBadComplete) {
		t.Errorf("empty completion: err = %v, want ErrBadComplete", err)
	}
	// The lease survives rejected completions; releasing requeues.
	if err := srv.ReleaseLease(grants[0].LeaseID); err != nil {
		t.Errorf("release: %v", err)
	}
	st, _ := srv.Job(status.ID)
	if st.State != sparkxd.JobQueued {
		t.Errorf("released job state = %s, want queued", st.State)
	}
}

// A server restarted over the same store serves a previously-completed
// submission from its persisted job record: terminal immediately, same
// artifact keys, nothing re-executed.
func TestRestartServedFromPersistedRecord(t *testing.T) {
	if testing.Short() {
		t.Skip("training skipped in -short mode")
	}
	dir := t.TempDir()
	st1, err := sparkxd.OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	srv1, err := New(Config{Store: st1, Workers: 2, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	spec := sparkxd.JobSpec{Kind: sparkxd.JobPipeline, Stage: "train", Config: tinyConfig()}
	status, _, err := srv1.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	final := waitDone(t, srv1, status.ID)
	if final.State != sparkxd.JobDone {
		t.Fatalf("job failed: %s", final.Error)
	}
	srv1.Close()

	st2, err := sparkxd.OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	srv2, err := New(Config{Store: st2, Workers: 2, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv2.Close)
	// No waiting: the resubmission must be answered terminal on the spot.
	again, created, err := srv2.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if created {
		t.Error("resubmission after restart created a fresh job instead of hitting the record")
	}
	if again.ID != status.ID {
		t.Errorf("restarted server assigned ID %s, want %s", again.ID, status.ID)
	}
	if again.State != sparkxd.JobDone {
		t.Fatalf("state after restart = %s, want done (no recompute)", again.State)
	}
	if len(again.Artifacts) != len(final.Artifacts) {
		t.Fatalf("artifacts %v != %v", again.Artifacts, final.Artifacts)
	}
	for role, key := range final.Artifacts {
		if again.Artifacts[role] != key {
			t.Errorf("artifact %q: %s != %s", role, again.Artifacts[role], key)
		}
		if _, err := st2.Stat(key); err != nil {
			t.Errorf("artifact %s missing after restart: %v", key, err)
		}
	}

	// Event indices reset with the rebuilt job table; an SSE consumer
	// resuming with a stale (too-large) Last-Event-ID must still see the
	// terminal event, not an empty clean EOF.
	ts := httptest.NewServer(srv2.Handler())
	defer ts.Close()
	req, err := http.NewRequest(http.MethodGet, ts.URL+"/v1/jobs/"+status.ID+"/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Last-Event-ID", "50")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sawDone := false
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		data, ok := strings.CutPrefix(sc.Text(), "data: ")
		if !ok {
			continue
		}
		var ev sparkxd.Event
		if err := json.Unmarshal([]byte(data), &ev); err != nil {
			t.Fatalf("bad event %q: %v", data, err)
		}
		if ev.Stage == "job" && ev.Phase == "done" {
			sawDone = true
		}
	}
	if !sawDone {
		t.Error("stale Last-Event-ID after restart hid the terminal event (empty clean EOF)")
	}
}

// Shutting down mid-execution requeues the in-flight job instead of
// stranding it in "running" or spuriously failing it.
func TestCloseRequeuesInFlightJob(t *testing.T) {
	if testing.Short() {
		t.Skip("training skipped in -short mode")
	}
	srv, err := New(Config{Workers: 1, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	status, _, err := srv.Submit(tinySweepJob())
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, srv, status.ID, "running", func(st sparkxd.JobStatus) bool {
		return st.State == sparkxd.JobRunning
	})
	srv.Close()
	st, _ := srv.Job(status.ID)
	if st.State != sparkxd.JobQueued {
		t.Errorf("state after shutdown = %s (error %q), want queued", st.State, st.Error)
	}
}
