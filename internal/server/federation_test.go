// Federation tests: job-ID-space sharding with 421 misdirect answers,
// and coordinator takeover from durable queued-state job records.
package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"sparkxd"
	"sparkxd/internal/store"
)

// seededSweepJob varies tinySweepJob's deterministic job ID via the
// seed, so tests can hunt for specs landing on a chosen shard.
func seededSweepJob(seed uint64) sparkxd.JobSpec {
	spec := tinySweepJob()
	spec.Config.Seed = seed
	return spec
}

// specOwnedBy returns a spec whose job ID hashes to the given shard.
func specOwnedBy(t *testing.T, index, count int) (sparkxd.JobSpec, string) {
	t.Helper()
	for seed := uint64(1); seed < 200; seed++ {
		spec := seededSweepJob(seed)
		norm, err := spec.Normalized()
		if err != nil {
			t.Fatal(err)
		}
		id, err := norm.ID()
		if err != nil {
			t.Fatal(err)
		}
		if shardOf(id, count) == index {
			return spec, id
		}
	}
	t.Fatalf("no seed under 200 hashes to shard %d/%d", index, count)
	return sparkxd.JobSpec{}, ""
}

func TestShardOfIsStableAndUniform(t *testing.T) {
	if a, b := shardOf("job-a", 4), shardOf("job-a", 4); a != b {
		t.Errorf("shardOf not deterministic: %d != %d", a, b)
	}
	seen := map[int]bool{}
	for seed := uint64(0); seed < 64; seed++ {
		spec := seededSweepJob(seed)
		norm, _ := spec.Normalized()
		id, _ := norm.ID()
		got := shardOf(id, 3)
		if got < 1 || got > 3 {
			t.Fatalf("shardOf = %d, want 1..3", got)
		}
		seen[got] = true
	}
	if len(seen) != 3 {
		t.Errorf("64 IDs only reached shards %v of 3 — suspiciously non-uniform", seen)
	}
}

func TestShardConfigValidation(t *testing.T) {
	bad := []Config{
		{ShardIndex: 3, ShardCount: 2, Peers: []string{"a", "b"}},
		{ShardIndex: 0, ShardCount: 2, Peers: []string{"a", "b"}},
		{ShardIndex: 1, ShardCount: 2, Peers: []string{"a"}},
		{ShardIndex: 1, ShardCount: 2, Peers: []string{"a", " "}},
		{ShardIndex: 1, ShardCount: 2},
	}
	for i, cfg := range bad {
		if srv, err := New(cfg); err == nil {
			srv.Close()
			t.Errorf("config %d: New accepted invalid shard %d/%d peers=%v",
				i, cfg.ShardIndex, cfg.ShardCount, cfg.Peers)
		}
	}
	srv, err := New(Config{ShardIndex: 1, ShardCount: 1})
	if err != nil {
		t.Fatalf("unsharded config rejected: %v", err)
	}
	srv.Close()
}

// A sharded coordinator accepts its own slice of the ID space and
// answers the rest with a MisdirectError naming the owner, rendered as
// 421 over HTTP on the submit, status, and events routes.
func TestShardedSubmitMisdirected(t *testing.T) {
	peers := []string{"http://peer-one.internal", "http://peer-two.internal"}
	srv, err := New(Config{
		Dispatch:   DispatchFleet, // nothing executes; routing only
		ShardIndex: 1,
		ShardCount: 2,
		Peers:      peers,
		Logf:       t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	owned, ownedID := specOwnedBy(t, 1, 2)
	foreign, foreignID := specOwnedBy(t, 2, 2)

	status, created, err := srv.Submit(owned)
	if err != nil || !created {
		t.Fatalf("owned submit: created=%v err=%v", created, err)
	}
	if status.ID != ownedID {
		t.Fatalf("owned job ID %s, want %s", status.ID, ownedID)
	}

	_, _, err = srv.Submit(foreign)
	var mis *MisdirectError
	if !errors.As(err, &mis) {
		t.Fatalf("foreign submit err = %v, want MisdirectError", err)
	}
	if mis.Owner != peers[1] || mis.JobID != foreignID {
		t.Errorf("MisdirectError = %+v, want owner %s for %s", mis, peers[1], foreignID)
	}

	// The same refusal over HTTP: 421 with the owner in the body.
	body, _ := json.Marshal(foreign)
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusMisdirectedRequest {
		t.Fatalf("POST foreign spec = %d, want 421", resp.StatusCode)
	}
	var ae struct {
		Error string `json:"error"`
		Owner string `json:"owner"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&ae); err != nil {
		t.Fatal(err)
	}
	if ae.Owner != peers[1] || ae.Error == "" {
		t.Errorf("421 body = %+v, want owner %s", ae, peers[1])
	}

	// Status and event lookups of foreign jobs are misdirected too, so a
	// client can reach the owner knowing only the job ID.
	for _, path := range []string{"/v1/jobs/" + foreignID, "/v1/jobs/" + foreignID + "/events"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMisdirectedRequest {
			t.Errorf("GET %s = %d, want 421", path, resp.StatusCode)
		}
	}
	// Unknown-but-owned IDs stay plain 404s.
	resp2, err := http.Get(ts.URL + "/v1/jobs/" + ownedID + "ff")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if want := chooseStatus(srv, ownedID+"ff"); resp2.StatusCode != want {
		t.Errorf("GET unknown job = %d, want %d", resp2.StatusCode, want)
	}
}

// chooseStatus returns the status an unknown job ID should yield on
// this server: 404 when owned, 421 when another shard's.
func chooseStatus(srv *Server, id string) int {
	if _, mis := srv.Owner(id); mis {
		return http.StatusMisdirectedRequest
	}
	return http.StatusNotFound
}

// A replacement coordinator over the same store restores queued-state
// job records into its queue — only those its shard owns.
func TestTakeoverRestoresQueuedJobs(t *testing.T) {
	shared := store.NewMem()
	srv1, err := New(Config{Store: shared, Dispatch: DispatchFleet, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	var ids []string
	for seed := uint64(1); seed <= 6; seed++ {
		status, created, err := srv1.Submit(seededSweepJob(seed))
		if err != nil || !created {
			t.Fatalf("seed %d: created=%v err=%v", seed, created, err)
		}
		ids = append(ids, status.ID)
	}
	srv1.Close() // dies with 6 jobs queued; the records outlive it

	// An unsharded replacement restores all of them.
	srv2, err := New(Config{Store: shared, Dispatch: DispatchFleet, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv2.Close)
	for _, id := range ids {
		status, ok := srv2.Job(id)
		if !ok {
			t.Errorf("job %s not restored", id)
			continue
		}
		if status.State != sparkxd.JobQueued {
			t.Errorf("job %s restored as %s, want queued", id, status.State)
		}
	}
	if depth := srv2.QueueDepth(); depth != len(ids) {
		t.Errorf("queue depth = %d, want %d", depth, len(ids))
	}
	// The restored queue is leasable — takeover, not just bookkeeping.
	grants, err := srv2.AcquireLeases("successor", len(ids))
	if err != nil || len(grants) != len(ids) {
		t.Fatalf("AcquireLeases = %d grants, %v; want %d", len(grants), err, len(ids))
	}

	// A sharded replacement restores only its own slice.
	peers := []string{"http://peer-one.internal", "http://peer-two.internal"}
	srv3, err := New(Config{
		Store: shared, Dispatch: DispatchFleet,
		ShardIndex: 1, ShardCount: 2, Peers: peers, Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv3.Close)
	owned := 0
	for _, id := range ids {
		_, ok := srv3.Job(id)
		if shardOf(id, 2) == 1 {
			owned++
			if !ok {
				t.Errorf("sharded takeover dropped owned job %s", id)
			}
		} else if ok {
			t.Errorf("sharded takeover restored foreign job %s", id)
		}
	}
	if depth := srv3.QueueDepth(); depth != owned {
		t.Errorf("sharded queue depth = %d, want %d", depth, owned)
	}
}

// End-to-end failover: a coordinator dies with work queued; its
// replacement re-executes that work to completion from the durable
// records alone, and a completed job's record survives takeover as a
// served-from-store terminal answer.
func TestFailoverCompletesRequeuedWork(t *testing.T) {
	if testing.Short() {
		t.Skip("training skipped in -short mode")
	}
	shared := store.NewMem()
	srv1, err := New(Config{Store: shared, Dispatch: DispatchFleet, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	spec := tinySweepJob()
	status, created, err := srv1.Submit(spec)
	if err != nil || !created {
		t.Fatalf("submit: created=%v err=%v", created, err)
	}
	srv1.Close() // the job never ran

	srv2, err := New(Config{Store: shared, Workers: 2, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv2.Close)
	final := waitDone(t, srv2, status.ID)
	if final.State != sparkxd.JobDone {
		t.Fatalf("requeued job = %s (%s), want done", final.State, final.Error)
	}
	if len(final.Artifacts) == 0 {
		t.Fatal("no artifacts on the failed-over job")
	}
	for role, key := range final.Artifacts {
		if _, err := shared.Stat(key); err != nil {
			t.Errorf("artifact %q (%s): %v", role, key, err)
		}
	}

	// Third lifetime: the done-state record now wins over the stale
	// queued-state record — terminal immediately, nothing re-executed.
	srv3, err := New(Config{Store: shared, Dispatch: DispatchFleet, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv3.Close)
	again, ok := srv3.Job(status.ID)
	if !ok {
		t.Fatal("job missing after second takeover")
	}
	if again.State != sparkxd.JobDone {
		t.Fatalf("state after second takeover = %s, want done", again.State)
	}
	if depth := srv3.QueueDepth(); depth != 0 {
		t.Errorf("queue depth = %d, want 0 (done record wins)", depth)
	}
}

// The server-side artifact routes share the wire contract of
// store.NewHandler: malformed keys 400, absent keys 404, listings 200.
func TestArtifactRouteErrorContract(t *testing.T) {
	srv, ts := newTestServer(t)
	key, err := srv.Store().Put("sample-note", map[string]int{"n": 1})
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		path string
		want int
	}{
		{"/v1/artifacts/" + string(key), http.StatusOK},
		{"/v1/artifacts/", http.StatusNotFound},
		{"/v1/artifacts/noslash", http.StatusBadRequest},
		{"/v1/artifacts/sample-note/nothex", http.StatusBadRequest},
		{"/v1/artifacts/sample-note/" + status64("ab"), http.StatusNotFound},
		{"/v1/artifacts", http.StatusOK},
		{"/v1/artifacts?kind=sample-note", http.StatusOK},
	}
	for _, tc := range tests {
		resp, err := http.Get(ts.URL + tc.path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("GET %s = %d, want %d", tc.path, resp.StatusCode, tc.want)
		}
	}
}

// status64 repeats a hex pair to a 64-char pseudo-hash.
func status64(pair string) string {
	out := ""
	for i := 0; i < 32; i++ {
		out += pair
	}
	return out
}

// The remote store backend composes with the job server: a coordinator
// over an HTTP store (as in a federation) behaves like one over a
// local store, including record persistence through the wire.
func TestServerOverRemoteStore(t *testing.T) {
	backend := store.NewMem()
	storeSrv := httptest.NewServer(store.NewHandler(backend))
	t.Cleanup(storeSrv.Close)
	remote, err := store.NewHTTP(storeSrv.URL, store.WithRetryBackoff(time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(Config{Store: remote, Dispatch: DispatchFleet, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)

	status, created, err := srv.Submit(tinySweepJob())
	if err != nil || !created {
		t.Fatalf("submit: created=%v err=%v", created, err)
	}
	// The queued-state record reached the backend through the wire.
	infos, err := backend.List(sparkxd.KindJobRecord)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, info := range infos {
		rec, err := sparkxd.GetJobRecord(backend, info.Key)
		if err != nil {
			t.Fatal(err)
		}
		if rec.JobID == status.ID && rec.State == sparkxd.JobQueued {
			found = true
		}
	}
	if !found {
		t.Errorf("no queued record for %s behind the remote store", status.ID)
	}
}
