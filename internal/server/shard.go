package server

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"strings"
)

// shardInfo is a coordinator's slice of the job-ID space: with -shard
// i/m, this coordinator owns exactly the job IDs hashing to slice i,
// and answers submissions of the rest with 421 + the owner's address
// from the static peer list. Job IDs are content hashes of normalized
// specs, so every coordinator computes the same owner for the same spec
// without any coordination beyond agreeing on m and the peer list.
type shardInfo struct {
	index int      // 1-based, like sched.Shard
	count int      // 1 means "no sharding" (own everything)
	peers []string // peers[i-1] is shard i's advertised base URL
}

// enabled reports whether the shard actually partitions the ID space.
func (sh shardInfo) enabled() bool { return sh.count > 1 }

// validate checks the shard arithmetic and the peer list shape.
func (sh shardInfo) validate() error {
	if !sh.enabled() {
		return nil
	}
	if sh.index < 1 || sh.index > sh.count {
		return fmt.Errorf("server: invalid shard %d/%d (want 1 <= i <= m)", sh.index, sh.count)
	}
	if len(sh.peers) != sh.count {
		return fmt.Errorf("server: shard %d/%d needs %d peer addresses, got %d",
			sh.index, sh.count, sh.count, len(sh.peers))
	}
	for i, p := range sh.peers {
		if strings.TrimSpace(p) == "" {
			return fmt.Errorf("server: empty peer address for shard %d/%d", i+1, sh.count)
		}
	}
	return nil
}

// owns reports whether this coordinator's shard owns jobID.
func (sh shardInfo) owns(jobID string) bool {
	if !sh.enabled() {
		return true
	}
	return shardOf(jobID, sh.count) == sh.index
}

// ownerOf returns the advertised address of the shard owning jobID.
func (sh shardInfo) ownerOf(jobID string) string {
	if !sh.enabled() {
		return ""
	}
	return sh.peers[shardOf(jobID, sh.count)-1]
}

// shardOf maps a job ID onto a 1-based shard index. The ID is already a
// content hash, but it is re-hashed here so the mapping stays uniform
// even if the ID derivation ever truncates differently; the first 8
// bytes of the digest mod m are stable across processes and platforms.
func shardOf(jobID string, m int) int {
	sum := sha256.Sum256([]byte(jobID))
	return int(binary.BigEndian.Uint64(sum[:8])%uint64(m)) + 1
}

// MisdirectError reports a job whose ID hashes to another coordinator's
// shard. The HTTP layer renders it as 421 Misdirected Request with the
// owner's address, which clients follow transparently.
type MisdirectError struct {
	JobID string
	Owner string
}

func (e *MisdirectError) Error() string {
	return fmt.Sprintf("server: job %s belongs to shard peer %s", e.JobID, e.Owner)
}
