package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"sparkxd"
	"sparkxd/internal/tracing"
	"sparkxd/internal/version"
)

// findSpans returns every span with the given name.
func findSpans(tr *sparkxd.JobTrace, name string) []sparkxd.TraceSpan {
	var out []sparkxd.TraceSpan
	for _, sp := range tr.Spans {
		if sp.Name == name {
			out = append(out, sp)
		}
	}
	return out
}

// Trace context must never leak into job identity: the same spec
// submitted with and without a client traceparent hashes to the same
// job ID, and the queued-state JobRecord persisted to the store is
// byte-identical either way (no trace fields), preserving the
// cross-lifetime idempotency of duplicate submissions.
func TestTraceparentDoesNotAffectJobIdentity(t *testing.T) {
	spec := tinySweepJob()
	wantID, err := spec.ID()
	if err != nil {
		t.Fatal(err)
	}

	recordBytes := func(traceparent string) []byte {
		st := sparkxd.MemoryStore()
		srv, err := New(Config{Dispatch: DispatchFleet, Store: st, Logf: t.Logf})
		if err != nil {
			t.Fatal(err)
		}
		defer srv.Close()
		status, created, err := srv.SubmitTraced(spec, traceparent)
		if err != nil || !created {
			t.Fatalf("submit: created=%v err=%v", created, err)
		}
		if status.ID != wantID {
			t.Fatalf("job ID %s, want %s (traceparent %q)", status.ID, wantID, traceparent)
		}
		infos, err := st.List(sparkxd.KindJobRecord)
		if err != nil || len(infos) != 1 {
			t.Fatalf("job records = %v, %v; want exactly one", infos, err)
		}
		env, err := st.Get(infos[0].Key)
		if err != nil {
			t.Fatal(err)
		}
		return env.Payload
	}

	plain := recordBytes("")
	traced := recordBytes(tracing.NewContext().Traceparent())
	if string(plain) != string(traced) {
		t.Errorf("queued job record differs with tracing:\n  plain:  %s\n  traced: %s", plain, traced)
	}

	// The submission status still reports the (out-of-band) trace ID.
	srv, err := New(Config{Dispatch: DispatchFleet, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	sc := tracing.NewContext()
	status, _, err := srv.SubmitTraced(spec, sc.Traceparent())
	if err != nil {
		t.Fatal(err)
	}
	if status.TraceID != sc.TraceID.String() {
		t.Errorf("status.TraceID = %q, want the client's %q", status.TraceID, sc.TraceID.String())
	}
}

// A job that survives a worker crash carries one trace across both
// lease attempts: the assembled trace shows the first lease expiring,
// a second queue-wait episode, the replacement worker's lease
// completing, and the worker-side spans shipped through events and the
// completion payload — all under the trace ID the client submitted.
func TestTraceAcrossLeaseHandoff(t *testing.T) {
	srv, err := New(Config{
		Dispatch: DispatchFleet,
		LeaseTTL: 50 * time.Millisecond,
		Logf:     t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)

	client := tracing.NewContext()
	status, _, err := srv.SubmitTraced(tinySweepJob(), client.Traceparent())
	if err != nil {
		t.Fatal(err)
	}

	// First worker leases the job and dies silently (never heartbeats).
	g1, err := srv.AcquireLeases("crashy", 1)
	if err != nil || len(g1) != 1 {
		t.Fatalf("AcquireLeases = %v, %v", g1, err)
	}
	sc1, err := tracing.ParseTraceparent(g1[0].Traceparent)
	if err != nil {
		t.Fatalf("grant carries no valid traceparent: %v", err)
	}
	if sc1.TraceID != client.TraceID {
		t.Fatalf("grant trace %s, want the client's %s", sc1.TraceID, client.TraceID)
	}
	waitState(t, srv, status.ID, "requeued", func(st sparkxd.JobStatus) bool {
		return st.State == sparkxd.JobQueued
	})

	// The replacement worker executes "remotely": it parents its spans
	// onto the new grant's lease span, streams a stage span through the
	// event channel, and completes with its envelope spans.
	g2, err := srv.AcquireLeases("medic", 1)
	if err != nil || len(g2) != 1 {
		t.Fatalf("second AcquireLeases = %v, %v", g2, err)
	}
	sc2, err := tracing.ParseTraceparent(g2[0].Traceparent)
	if err != nil {
		t.Fatal(err)
	}
	exec := tracing.Start(sc2, "medic", "execute")
	stage := tracing.Completed(exec.Context(), "medic", "stage:sweep",
		time.Now(), time.Millisecond, nil)
	if err := srv.IngestEvents(g2[0].LeaseID, []sparkxd.Event{{Span: &stage}}); err != nil {
		t.Fatal(err)
	}
	key, err := sparkxd.PutArtifact(srv.Store(), &sparkxd.SweepReport{})
	if err != nil {
		t.Fatal(err)
	}
	err = srv.CompleteLease(g2[0].LeaseID,
		map[string]sparkxd.ArtifactKey{"sweep": key}, "",
		[]sparkxd.TraceSpan{exec.End()})
	if err != nil {
		t.Fatal(err)
	}

	tr, known, err := srv.TraceFor(status.ID)
	if err != nil || !known || tr == nil {
		t.Fatalf("TraceFor = %v, known=%v, err=%v", tr, known, err)
	}
	if tr.TraceID != client.TraceID.String() {
		t.Errorf("trace ID %s, want %s", tr.TraceID, client.TraceID)
	}
	if tr.State != sparkxd.JobDone {
		t.Errorf("trace state %s, want done", tr.State)
	}

	// Root span: child of the client's span, stamped with the version.
	root := tr.Span("job")
	if root == nil {
		t.Fatal("no job root span")
	}
	if root.Parent != client.SpanID.String() {
		t.Errorf("root parent %q, want the client span %q", root.Parent, client.SpanID)
	}
	if root.Attrs["service.version"] != version.String() {
		t.Errorf("root service.version = %q, want %q", root.Attrs["service.version"], version.String())
	}

	// Both lease attempts show, with their outcomes, parented on root.
	leases := findSpans(tr, "lease")
	if len(leases) != 2 {
		t.Fatalf("lease spans = %d, want 2 (expired + completed):\n%s", len(leases), dumpTrace(tr))
	}
	outcomes := map[string]string{}
	for _, l := range leases {
		outcomes[l.Attrs["outcome"]] = l.Attrs["worker"]
		if l.Parent != root.SpanID {
			t.Errorf("lease span parent %q, want root %q", l.Parent, root.SpanID)
		}
	}
	if outcomes["expired"] != "crashy" || outcomes["completed"] != "medic" {
		t.Errorf("lease outcomes = %v, want expired:crashy completed:medic", outcomes)
	}

	// Two queue episodes: initial queue-wait plus the post-expiry one.
	queues := findSpans(tr, "queue-wait")
	if len(queues) != 2 {
		t.Errorf("queue-wait spans = %d, want 2:\n%s", len(queues), dumpTrace(tr))
	}

	// The worker-side spans arrived over both channels and nest under
	// the completed lease span.
	var completedLease sparkxd.TraceSpan
	for _, l := range leases {
		if l.Attrs["outcome"] == "completed" {
			completedLease = l
		}
	}
	execs := findSpans(tr, "execute")
	if len(execs) != 1 || execs[0].Process != "medic" || execs[0].Parent != completedLease.SpanID {
		t.Errorf("worker execute span missing or mis-parented:\n%s", dumpTrace(tr))
	}
	stages := findSpans(tr, "stage:sweep")
	if len(stages) != 1 || stages[0].Parent != execs[0].SpanID {
		t.Errorf("event-channel stage span missing or mis-parented:\n%s", dumpTrace(tr))
	}

	// The trace involves both processes.
	procs := tr.Processes()
	if len(procs) < 2 {
		t.Errorf("trace processes = %v, want coordinator and worker", procs)
	}
}

// A locally-executed job's trace nests and sums consistently: stage
// spans under the local execute span, execute and queue-wait under the
// root, and every child interval inside its parent's.
func TestTraceLocalExecutionNesting(t *testing.T) {
	if testing.Short() {
		t.Skip("training skipped in -short mode")
	}
	srv, err := New(Config{Workers: 2, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	status, _, err := srv.Submit(sparkxd.JobSpec{
		Kind: sparkxd.JobPipeline, Stage: "train", Config: tinyConfig(),
	})
	if err != nil {
		t.Fatal(err)
	}
	final := waitDone(t, srv, status.ID)
	if final.State != sparkxd.JobDone {
		t.Fatalf("job failed: %s", final.Error)
	}
	if final.TraceID == "" {
		t.Error("terminal status carries no trace ID")
	}

	tr, known, err := srv.TraceFor(status.ID)
	if err != nil || !known || tr == nil {
		t.Fatalf("TraceFor = %v, known=%v, err=%v", tr, known, err)
	}
	root := tr.Span("job")
	if root == nil {
		t.Fatalf("no job root span:\n%s", dumpTrace(tr))
	}
	execs := findSpans(tr, "execute")
	if len(execs) != 1 || execs[0].Attrs["executor"] != "local" || execs[0].Parent != root.SpanID {
		t.Fatalf("local execute span missing or mis-parented:\n%s", dumpTrace(tr))
	}
	stages := findSpans(tr, "stage:train")
	if len(stages) != 1 || stages[0].Parent != execs[0].SpanID {
		t.Errorf("stage:train span missing or not nested under execute:\n%s", dumpTrace(tr))
	}
	queues := findSpans(tr, "queue-wait")
	if len(queues) != 1 || queues[0].Parent != root.SpanID {
		t.Errorf("queue-wait span missing or mis-parented:\n%s", dumpTrace(tr))
	}

	// Interval consistency: every non-root span inside the root's
	// interval, every stage span inside the execute interval. Stage
	// spans are retro-dated from monotonic durations while the root uses
	// wall-clock nanos, so allow a small tolerance.
	const slack = int64(50 * time.Millisecond)
	within := func(inner, outer sparkxd.TraceSpan) bool {
		return inner.StartUnixNano >= outer.StartUnixNano-slack &&
			inner.EndUnixNano() <= outer.EndUnixNano()+slack
	}
	for _, sp := range tr.Spans {
		if sp.SpanID == root.SpanID {
			continue
		}
		if !within(sp, *root) {
			t.Errorf("span %s %q outside the root interval", sp.SpanID, sp.Name)
		}
	}
	if !within(stages[0], execs[0]) {
		t.Error("stage span outside its execute parent's interval")
	}
}

// The trace endpoint and healthz version are wired through HTTP: a 404
// with a hint before assembly, the artifact JSON after, and healthz
// reports the build version.
func TestTraceAndVersionOverHTTP(t *testing.T) {
	srv, err := New(Config{Dispatch: DispatchFleet, LeaseTTL: time.Minute, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	var hz map[string]any
	resp, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&hz); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if hz["version"] != version.String() {
		t.Errorf("healthz version = %v, want %q", hz["version"], version.String())
	}

	status, _, err := srv.Submit(tinySweepJob())
	if err != nil {
		t.Fatal(err)
	}
	// Queued: known job, no assembled trace yet.
	resp, err = http.Get(ts.URL + "/v1/jobs/" + status.ID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("trace of a queued job: status %d, want 404", resp.StatusCode)
	}

	// Complete it through the lease path, then fetch the trace.
	g, err := srv.AcquireLeases("w", 1)
	if err != nil || len(g) != 1 {
		t.Fatalf("AcquireLeases = %v, %v", g, err)
	}
	key, err := sparkxd.PutArtifact(srv.Store(), &sparkxd.SweepReport{})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.CompleteLease(g[0].LeaseID, map[string]sparkxd.ArtifactKey{"sweep": key}, "", nil); err != nil {
		t.Fatal(err)
	}
	resp, err = http.Get(ts.URL + "/v1/jobs/" + status.ID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace fetch: status %d, want 200", resp.StatusCode)
	}
	var tr sparkxd.JobTrace
	if err := json.NewDecoder(resp.Body).Decode(&tr); err != nil {
		t.Fatal(err)
	}
	if tr.JobID != status.ID || tr.Span("job") == nil || tr.Span("lease") == nil {
		t.Errorf("served trace incomplete:\n%s", dumpTrace(&tr))
	}
}

// dumpTrace renders a trace's spans for failure messages.
func dumpTrace(tr *sparkxd.JobTrace) string {
	out := ""
	for _, sp := range tr.Spans {
		out += fmt.Sprintf("  %s parent=%s %s %s %v\n", sp.SpanID, sp.Parent, sp.Process, sp.Name, sp.Attrs)
	}
	return out
}
