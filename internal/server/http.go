package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"sparkxd"
	"sparkxd/internal/store"
)

// Handler returns the server's HTTP API:
//
//	POST /v1/jobs                submit a JobSpec (idempotent; 202 on
//	                             creation, 200 when the job already exists)
//	GET  /v1/jobs                list job statuses
//	GET  /v1/jobs/{id}           one job's status
//	GET  /v1/jobs/{id}/events    server-sent progress events, replayed
//	                             from the start and streamed until the job
//	                             reaches a terminal state
//	GET  /v1/artifacts/{key...}  the stored envelope of one artifact key
//	GET  /v1/healthz             liveness probe
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /v1/artifacts/{key...}", s.handleArtifact)
	mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	return mux
}

// apiError is the JSON error body of every non-2xx response.
type apiError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, apiError{Error: fmt.Sprintf(format, args...)})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec sparkxd.JobSpec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, "decode job spec: %v", err)
		return
	}
	status, created, err := s.Submit(spec)
	if err != nil {
		code := http.StatusInternalServerError
		if errors.Is(err, sparkxd.ErrInvalidJobSpec) {
			code = http.StatusBadRequest
		}
		writeError(w, code, "%v", err)
		return
	}
	code := http.StatusOK
	if created {
		code = http.StatusAccepted
	}
	writeJSON(w, code, status)
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Jobs())
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	status, ok := s.Job(id)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", id)
		return
	}
	writeJSON(w, http.StatusOK, status)
}

// handleEvents streams a job's progress as server-sent events: every
// recorded event is replayed first, then new events stream live until
// the job reaches a terminal state (or the client goes away).
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, ok := s.Job(id); !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", id)
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	sent := 0
	for {
		evs, next, terminal, notify, ok := s.eventsSince(id, sent)
		if !ok {
			return
		}
		for _, ev := range evs {
			b, err := json.Marshal(ev)
			if err != nil {
				return
			}
			fmt.Fprintf(w, "data: %s\n\n", b)
		}
		sent = next
		flusher.Flush()
		// terminal is snapshotted under the same lock as the events, so a
		// true value means every event has been delivered.
		if terminal {
			return
		}
		select {
		case <-notify:
		case <-r.Context().Done():
			return
		case <-s.ctx.Done():
			return
		}
	}
}

func (s *Server) handleArtifact(w http.ResponseWriter, r *http.Request) {
	key := sparkxd.ArtifactKey(r.PathValue("key"))
	env, err := s.st.Get(key)
	switch {
	case err == nil:
	case errors.Is(err, store.ErrNotFound):
		writeError(w, http.StatusNotFound, "%v", err)
		return
	case errors.Is(err, store.ErrBadKey):
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	default:
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	// Serve the canonical envelope encoding, so what a client fetches
	// hashes back to the key it asked for.
	b, err := json.Marshal(env)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(append(b, '\n'))
}
