package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"sparkxd"
	"sparkxd/internal/fleetapi"
	"sparkxd/internal/metrics"
	"sparkxd/internal/store"
	"sparkxd/internal/tracing"
	"sparkxd/internal/version"
)

// Handler returns the server's HTTP API:
//
//	POST   /v1/jobs                 submit a JobSpec (idempotent; 202 on
//	                                creation, 200 when the job already exists)
//	GET    /v1/jobs                 list job statuses
//	GET    /v1/jobs/{id}            one job's status
//	GET    /v1/jobs/{id}/events     server-sent progress events, replayed
//	                                from the start (or from Last-Event-ID)
//	                                and streamed until the job reaches a
//	                                terminal state
//	GET    /v1/jobs/{id}/trace      the assembled distributed trace of a
//	                                terminal job (404 until assembly)
//	GET    /v1/artifacts            Info listing of one artifact kind
//	                                (?kind=; federation peers preload job
//	                                records through it)
//	GET    /v1/artifacts/{key...}   the stored envelope of one artifact key
//	PUT    /v1/artifacts/{key...}   upload an envelope (fleet workers;
//	                                verified against its content address)
//	POST   /v1/workers              register a fleet worker
//	GET    /v1/workers              list registered workers
//	POST   /v1/leases               lease queued jobs (fleet/hybrid)
//	POST   /v1/leases/{id}/renew    heartbeat a lease
//	POST   /v1/leases/{id}/events   bridge worker events into the SSE feed
//	POST   /v1/leases/{id}/complete finish a leased job
//	DELETE /v1/leases/{id}          release a lease (requeue the job)
//	GET    /v1/healthz              liveness probe (dispatch mode, queue
//	                                depth, registered-worker count)
//	GET    /metrics                 Prometheus text-format metrics
//
// When admission control is enabled (Config.Rate > 0), POST /v1/jobs
// may answer 429 with a Retry-After header; all other routes are never
// throttled.
//
// On a sharded coordinator (Config.ShardCount > 1), the job routes
// answer 421 Misdirected Request — with the owning peer's address in
// the error body — for job IDs hashing to another shard; the artifact,
// worker, and lease routes are shard-agnostic (one shared namespace).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /v1/jobs/{id}/trace", s.handleTrace)
	mux.HandleFunc("GET /v1/artifacts", s.handleArtifactList)
	mux.HandleFunc("GET /v1/artifacts/{key...}", s.handleArtifact)
	mux.HandleFunc("PUT /v1/artifacts/{key...}", s.handleArtifactPut)
	mux.HandleFunc("POST /v1/workers", s.handleWorkerRegister)
	mux.HandleFunc("GET /v1/workers", s.handleWorkerList)
	mux.HandleFunc("POST /v1/leases", s.handleLeaseAcquire)
	mux.HandleFunc("POST /v1/leases/{id}/renew", s.handleLeaseRenew)
	mux.HandleFunc("POST /v1/leases/{id}/events", s.handleLeaseEvents)
	mux.HandleFunc("POST /v1/leases/{id}/complete", s.handleLeaseComplete)
	mux.HandleFunc("DELETE /v1/leases/{id}", s.handleLeaseRelease)
	mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	mux.Handle("GET /metrics", s.metrics.reg.Handler())
	return mux
}

// Metrics exposes the server's registry (worker-side and test use).
func (s *Server) Metrics() *metrics.Registry { return s.metrics.reg }

// apiError is the JSON error body of every non-2xx response. Owner is
// set only on 421 Misdirected Request: the base URL of the federation
// peer owning the job, which clients follow transparently.
type apiError struct {
	Error string `json:"error"`
	Owner string `json:"owner,omitempty"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, apiError{Error: fmt.Sprintf(format, args...)})
}

// writeMisdirect answers 421 with the owning peer's address, the
// federation's redirect: the client re-issues the request against
// Owner.
func (s *Server) writeMisdirect(w http.ResponseWriter, jobID, owner string) {
	s.metrics.misdirected.Inc()
	writeJSON(w, http.StatusMisdirectedRequest, apiError{
		Error: fmt.Sprintf("job %s belongs to shard peer %s", jobID, owner),
		Owner: owner,
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":      "ok",
		"version":     version.String(),
		"dispatch":    string(s.dispatch),
		"workers":     len(s.Workers()),
		"queue_depth": s.QueueDepth(),
	})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	if s.admit != nil {
		if ok, retry := s.admit.admit(submitterKey(r)); !ok {
			s.metrics.submitted.With("throttled").Inc()
			w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(retry)))
			writeError(w, http.StatusTooManyRequests, "submission rate limit exceeded; retry in %ds", retryAfterSeconds(retry))
			return
		}
	}
	var spec sparkxd.JobSpec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		s.metrics.submitted.With("invalid").Inc()
		writeError(w, http.StatusBadRequest, "decode job spec: %v", err)
		return
	}
	status, created, err := s.SubmitTraced(spec, r.Header.Get(tracing.Header))
	if err != nil {
		var mis *MisdirectError
		if errors.As(err, &mis) {
			// Submit already counted the misdirect.
			writeJSON(w, http.StatusMisdirectedRequest, apiError{Error: mis.Error(), Owner: mis.Owner})
			return
		}
		code := http.StatusInternalServerError
		result := "error"
		if errors.Is(err, sparkxd.ErrInvalidJobSpec) {
			code = http.StatusBadRequest
			result = "invalid"
		}
		s.metrics.submitted.With(result).Inc()
		writeError(w, code, "%v", err)
		return
	}
	code := http.StatusOK
	if created {
		code = http.StatusAccepted
		s.noteAdmission(status.ID, start)
	}
	writeJSON(w, code, status)
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Jobs())
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	status, ok := s.Job(id)
	if !ok {
		if owner, mis := s.Owner(id); mis {
			s.writeMisdirect(w, id, owner)
			return
		}
		writeError(w, http.StatusNotFound, "unknown job %q", id)
		return
	}
	writeJSON(w, http.StatusOK, status)
}

// handleEvents streams a job's progress as server-sent events: every
// recorded event is replayed first — from the absolute index after the
// request's Last-Event-ID, when present, so reconnecting consumers
// neither lose nor duplicate events — then new events stream live until
// the job reaches a terminal state (or the client goes away).
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, ok := s.Job(id); !ok {
		if owner, mis := s.Owner(id); mis {
			s.writeMisdirect(w, id, owner)
			return
		}
		writeError(w, http.StatusNotFound, "unknown job %q", id)
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	sent := 0
	if last := r.Header.Get("Last-Event-ID"); last != "" {
		n, err := strconv.Atoi(last)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, "bad Last-Event-ID %q", last)
			return
		}
		sent = n + 1
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	s.metrics.sse.Add(1)
	defer s.metrics.sse.Add(-1)

	for {
		evs, next, terminal, notify, ok := s.eventsSince(id, sent)
		if !ok {
			return
		}
		if next < sent {
			// The client's cursor points beyond the log: its Last-Event-ID
			// is from a previous server lifetime (indices reset when the
			// job table is rebuilt from persisted records). Replay the
			// retained log — duplicates across a restart beat an empty
			// stream that hides the terminal event.
			sent = 0
			continue
		}
		// evs[i] sits at absolute index next-len(evs)+i; emit it as the
		// SSE event id so Last-Event-ID resume is exact.
		base := next - len(evs)
		for i, ev := range evs {
			b, err := json.Marshal(ev)
			if err != nil {
				return
			}
			fmt.Fprintf(w, "id: %d\ndata: %s\n\n", base+i, b)
		}
		sent = next
		flusher.Flush()
		// terminal is snapshotted under the same lock as the events, so a
		// true value means every event has been delivered.
		if terminal {
			return
		}
		select {
		case <-notify:
		case <-r.Context().Done():
			return
		case <-s.ctx.Done():
			return
		}
	}
}

// handleTrace serves a job's assembled distributed trace. The trace
// only exists once the job is terminal (it is assembled at the terminal
// transition), so a running job answers 404 with a hint; unknown jobs
// follow the same 421-on-peer contract as the other job routes.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	trace, known, err := s.TraceFor(id)
	if !known {
		if owner, mis := s.Owner(id); mis {
			s.writeMisdirect(w, id, owner)
			return
		}
		writeError(w, http.StatusNotFound, "unknown job %q", id)
		return
	}
	if err != nil {
		writeError(w, http.StatusInternalServerError, "load trace: %v", err)
		return
	}
	if trace == nil {
		writeError(w, http.StatusNotFound, "job %q has no assembled trace yet (traces assemble when the job reaches a terminal state)", id)
		return
	}
	writeJSON(w, http.StatusOK, trace)
}

// handleArtifact serves one stored envelope. The error contract is the
// artifact wire's (shared with `sparkxd store serve` and relied on by
// the HTTP store client's sentinel mapping): a missing key path or an
// absent artifact is 404, a malformed key 400, a store-side failure
// 500. The key is validated before touching the store, so every
// backend — including a remote one — reports malformed keys uniformly.
func (s *Server) handleArtifact(w http.ResponseWriter, r *http.Request) {
	key := sparkxd.ArtifactKey(r.PathValue("key"))
	if key == "" {
		writeError(w, http.StatusNotFound, "no artifact key")
		return
	}
	if err := key.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	env, err := s.st.Get(key)
	if err != nil {
		store.WriteArtifactError(w, err)
		return
	}
	// Serve the canonical envelope encoding, so what a client fetches
	// hashes back to the key it asked for.
	store.ServeEnvelope(w, env)
}

// handleArtifactList enumerates stored artifacts of one kind (?kind=,
// empty for all). Federation peers use it to preload job records from a
// coordinator-backed store the same way they would from `store serve`.
func (s *Server) handleArtifactList(w http.ResponseWriter, r *http.Request) {
	infos, err := s.st.List(r.URL.Query().Get("kind"))
	if err != nil {
		store.WriteArtifactError(w, err)
		return
	}
	if infos == nil {
		infos = []sparkxd.ArtifactInfo{}
	}
	writeJSON(w, http.StatusOK, infos)
}

// handleArtifactPut accepts a worker-uploaded envelope. The bytes must
// decode and hash back to the claimed key (store.DecodeEnvelope), so a
// corrupt or tampered upload can never land at a valid address.
func (s *Server) handleArtifactPut(w http.ResponseWriter, r *http.Request) {
	key := sparkxd.ArtifactKey(r.PathValue("key"))
	if err := key.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	env, code, err := store.ReadUploadedEnvelope(store.Key(key), r.Body)
	if err != nil {
		writeError(w, code, "%v", err)
		return
	}
	if err := s.PutUploadedArtifact(key, env); err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]string{"key": string(key)})
}

func (s *Server) handleWorkerRegister(w http.ResponseWriter, r *http.Request) {
	var req fleetapi.RegisterRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "decode registration: %v", err)
		return
	}
	resp, err := s.RegisterWorker(req.Name, req.Slots)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleWorkerList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Workers())
}

func (s *Server) handleLeaseAcquire(w http.ResponseWriter, r *http.Request) {
	var req fleetapi.LeaseRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "decode lease request: %v", err)
		return
	}
	grants, err := s.AcquireLeases(req.Worker, req.Capacity)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, fleetapi.LeaseResponse{Leases: grants, QueueDepth: s.QueueDepth()})
}

func (s *Server) handleLeaseRenew(w http.ResponseWriter, r *http.Request) {
	ttl, err := s.RenewLease(r.PathValue("id"))
	if err != nil {
		writeLeaseError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, fleetapi.RenewResponse{TTLMillis: ttl.Milliseconds()})
}

func (s *Server) handleLeaseEvents(w http.ResponseWriter, r *http.Request) {
	var evs []sparkxd.Event
	if err := json.NewDecoder(r.Body).Decode(&evs); err != nil {
		writeError(w, http.StatusBadRequest, "decode events: %v", err)
		return
	}
	if err := s.IngestEvents(r.PathValue("id"), evs); err != nil {
		writeLeaseError(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleLeaseComplete(w http.ResponseWriter, r *http.Request) {
	var req fleetapi.CompleteRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "decode completion: %v", err)
		return
	}
	if err := s.CompleteLease(r.PathValue("id"), req.Artifacts, req.Error, req.Spans); err != nil {
		writeLeaseError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleLeaseRelease(w http.ResponseWriter, r *http.Request) {
	if err := s.ReleaseLease(r.PathValue("id")); err != nil {
		writeLeaseError(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// writeLeaseError maps lease-protocol failures onto HTTP codes: a lost
// lease is 410 Gone (the worker must abandon the job), anything else a
// 400.
func writeLeaseError(w http.ResponseWriter, err error) {
	code := http.StatusBadRequest
	if errors.Is(err, ErrLeaseLost) {
		code = http.StatusGone
	}
	writeError(w, code, "%v", err)
}
