package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"sparkxd"
)

func scrape(t *testing.T, ts *httptest.Server) string {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", resp.StatusCode)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func submitJSON(t *testing.T, ts *httptest.Server, spec sparkxd.JobSpec, hdr map[string]string) *http.Response {
	t.Helper()
	b, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/jobs", strings.NewReader(string(b)))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// A completed local job must leave its trace across the whole
// instrument set: submission counters, job latency, stage durations,
// warm-System cache counters, store puts, and queue depth at zero.
func TestMetricsEndToEnd(t *testing.T) {
	srv, ts := newTestServer(t)
	spec := sparkxd.JobSpec{Kind: sparkxd.JobPipeline, Stage: "train", Config: tinyConfig()}
	status, created, err := srv.Submit(spec)
	if err != nil || !created {
		t.Fatalf("Submit: created=%v err=%v", created, err)
	}
	waitDone(t, srv, status.ID)
	if _, _, err := srv.Submit(spec); err != nil {
		t.Fatal(err)
	}

	out := scrape(t, ts)
	for _, want := range []string{
		`sparkxd_jobs_submitted_total{result="created"} 1`,
		`sparkxd_jobs_submitted_total{result="duplicate"} 1`,
		`sparkxd_jobs_completed_total{outcome="done",executor="local"} 1`,
		`sparkxd_job_latency_seconds_count{kind="pipeline"} 1`,
		`sparkxd_job_stage_duration_seconds_count{stage="train"} 1`,
		`sparkxd_warm_systems_misses_total 1`,
		`sparkxd_warm_systems 1`,
		`sparkxd_queue_depth 0`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	// Job-record persistence goes through the metered store.
	if !strings.Contains(out, `sparkxd_store_ops_total{op="put"}`) {
		t.Errorf("/metrics missing store put counter:\n%s", out)
	}
}

// Admission control: past the burst, submissions answer 429 with a
// Retry-After header, and the throttle shows up in the metrics.
func TestAdmissionControl(t *testing.T) {
	srv, err := New(Config{Dispatch: DispatchFleet, Rate: 0.001, Burst: 2, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	hdr := map[string]string{SubmitterHeader: "alice"}
	for i := 0; i < 2; i++ {
		spec := sparkxd.JobSpec{Kind: sparkxd.JobPipeline, Stage: "train",
			Config: sparkxd.ConfigSpec{Neurons: 40, Seed: uint64(i + 1)}}
		resp := submitJSON(t, ts, spec, hdr)
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d: status %d, want 202", i, resp.StatusCode)
		}
	}
	resp := submitJSON(t, ts, sparkxd.JobSpec{Kind: sparkxd.JobPipeline, Stage: "train",
		Config: sparkxd.ConfigSpec{Neurons: 40, Seed: 3}}, hdr)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("third submit: status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After header")
	}

	// A different submitter has its own bucket.
	resp = submitJSON(t, ts, sparkxd.JobSpec{Kind: sparkxd.JobPipeline, Stage: "train",
		Config: sparkxd.ConfigSpec{Neurons: 40, Seed: 4}}, map[string]string{SubmitterHeader: "bob"})
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("other submitter: status %d, want 202", resp.StatusCode)
	}

	if !strings.Contains(scrape(t, ts), `sparkxd_jobs_submitted_total{result="throttled"} 1`) {
		t.Error("throttled submission not counted")
	}
}

// The admitter refills at its configured rate and prunes idle buckets.
func TestAdmitterRefillAndPrune(t *testing.T) {
	a := newAdmitter(10, 1) // 10 tokens/s, burst 1
	now := time.Unix(0, 0)
	a.now = func() time.Time { return now }

	ok, _ := a.admit("k")
	if !ok {
		t.Fatal("first token denied")
	}
	ok, retry := a.admit("k")
	if ok {
		t.Fatal("drained bucket admitted")
	}
	if retry <= 0 || retry > 100*time.Millisecond {
		t.Fatalf("retry = %s, want (0, 100ms]", retry)
	}
	now = now.Add(retry)
	if ok, _ := a.admit("k"); !ok {
		t.Fatal("bucket did not refill after the advertised Retry-After")
	}

	now = now.Add(time.Hour)
	a.mu.Lock()
	a.pruneLocked(now)
	n := len(a.buckets)
	a.mu.Unlock()
	if n != 0 {
		t.Fatalf("%d idle buckets survived pruning", n)
	}
}

// Lease grants follow aged priority: higher priority first, FIFO within
// a priority, and a long-waiting low-priority job overtakes fresher
// higher-priority work once its age has bought enough steps.
func TestPriorityLeaseOrder(t *testing.T) {
	srv, err := New(Config{Dispatch: DispatchFleet, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)

	submit := func(prio int, seed uint64) string {
		status, created, err := srv.Submit(sparkxd.JobSpec{Kind: sparkxd.JobPipeline, Stage: "train",
			Priority: prio, Config: sparkxd.ConfigSpec{Neurons: 40, Seed: seed}})
		if err != nil || !created {
			t.Fatalf("submit: created=%v err=%v", created, err)
		}
		return status.ID
	}
	low := submit(-5, 1)
	mid := submit(0, 2)
	high := submit(50, 3)

	grants, err := srv.AcquireLeases("w1", 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(grants) != 3 {
		t.Fatalf("granted %d leases, want 3", len(grants))
	}
	got := []string{grants[0].JobID, grants[1].JobID, grants[2].JobID}
	want := []string{high, mid, low}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("grant order %v, want %v", got, want)
		}
	}

	// Aging: a job queued long ago outranks a fresh higher-priority one.
	aged := &jobRec{status: sparkxd.JobStatus{Spec: sparkxd.JobSpec{Priority: 0}},
		queuedAt: time.Now().Add(-10 * agingQuantum)}
	fresh := &jobRec{status: sparkxd.JobStatus{Spec: sparkxd.JobSpec{Priority: 5}},
		queuedAt: time.Now()}
	now := time.Now()
	if effPriority(aged, now) <= effPriority(fresh, now) {
		t.Fatalf("aged priority %d did not overtake fresh priority %d",
			effPriority(aged, now), effPriority(fresh, now))
	}
}

// healthz reports the cheap triage numbers: dispatch mode, queue depth,
// and registered workers.
func TestHealthzReportsQueueState(t *testing.T) {
	srv, err := New(Config{Dispatch: DispatchFleet, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	if _, err := srv.RegisterWorker("w1", 2); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, _, err := srv.Submit(sparkxd.JobSpec{Kind: sparkxd.JobPipeline, Stage: "train",
			Config: sparkxd.ConfigSpec{Neurons: 40, Seed: uint64(i + 1)}}); err != nil {
			t.Fatal(err)
		}
	}
	resp, err := ts.Client().Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body struct {
		Status     string `json:"status"`
		Dispatch   string `json:"dispatch"`
		Workers    int    `json:"workers"`
		QueueDepth int    `json:"queue_depth"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.Status != "ok" || body.Dispatch != "fleet" || body.Workers != 1 || body.QueueDepth != 3 {
		t.Fatalf("healthz = %+v, want ok/fleet/1 worker/depth 3", body)
	}
}

// An out-of-range priority is rejected at submission, not clamped
// (clamping would silently merge distinct specs into one job ID).
func TestSubmitRejectsOutOfRangePriority(t *testing.T) {
	srv, _ := newTestServer(t)
	_, _, err := srv.Submit(sparkxd.JobSpec{Kind: sparkxd.JobPipeline,
		Priority: sparkxd.MaxPriority + 1, Config: tinyConfig()})
	if err == nil {
		t.Fatal("out-of-range priority accepted")
	}
	if msg := fmt.Sprint(err); !strings.Contains(msg, "priority") {
		t.Fatalf("error %q does not mention priority", msg)
	}
}
