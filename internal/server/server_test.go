package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"sparkxd"
	"sparkxd/internal/store"
)

// tinyConfig is a laptop-fast configuration shared by the job tests.
func tinyConfig() sparkxd.ConfigSpec {
	return sparkxd.ConfigSpec{
		Neurons:      40,
		TrainSamples: 50,
		TestSamples:  25,
		BaseEpochs:   1,
		BERSchedule:  []float64{1e-5, 1e-3},
	}
}

func newTestServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	srv, err := New(Config{Workers: 2, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

// waitDone polls a job to a terminal state.
func waitDone(t *testing.T, srv *Server, id string) sparkxd.JobStatus {
	t.Helper()
	deadline := time.Now().Add(3 * time.Minute)
	for time.Now().Before(deadline) {
		status, ok := srv.Job(id)
		if !ok {
			t.Fatalf("job %s vanished", id)
		}
		if status.State.Terminal() {
			return status
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish in time", id)
	return sparkxd.JobStatus{}
}

// The full lifecycle of a pipeline job: queued -> running -> done with
// one stored artifact per stage, plus idempotent resubmission.
func TestPipelineJobLifecycle(t *testing.T) {
	if testing.Short() {
		t.Skip("training skipped in -short mode")
	}
	srv, _ := newTestServer(t)
	spec := sparkxd.JobSpec{Kind: sparkxd.JobPipeline, Config: tinyConfig()}

	status, created, err := srv.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !created {
		t.Fatal("first submission must create the job")
	}
	again, created2, err := srv.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if created2 {
		t.Error("resubmission must not create a second job")
	}
	if again.ID != status.ID {
		t.Errorf("resubmission returned a different ID: %s vs %s", again.ID, status.ID)
	}

	final := waitDone(t, srv, status.ID)
	if final.State != sparkxd.JobDone {
		t.Fatalf("job failed: %s", final.Error)
	}
	for _, role := range []string{"baseline", "improved", "tolerance", "placement", "evaluation", "energy"} {
		key, ok := final.Artifacts[role]
		if !ok {
			t.Errorf("missing %q artifact (have %v)", role, final.Artifacts)
			continue
		}
		if _, err := srv.Store().Stat(key); err != nil {
			t.Errorf("artifact %s not in store: %v", key, err)
		}
	}
	// The stored improved model decodes into a usable checkpoint.
	if key, ok := final.Artifacts["improved"]; ok {
		m, err := sparkxd.GetTrainedModel(srv.Store(), key)
		if err != nil {
			t.Fatalf("GetTrainedModel: %v", err)
		}
		if m.Neurons != 40 || m.WeightCount() == 0 {
			t.Errorf("decoded model looks wrong: neurons=%d weights=%d", m.Neurons, m.WeightCount())
		}
	}
}

// A stage-limited pipeline job runs only its prefix: stage "train"
// stores a baseline model and nothing downstream.
func TestStageLimitedPipelineJob(t *testing.T) {
	if testing.Short() {
		t.Skip("training skipped in -short mode")
	}
	srv, _ := newTestServer(t)
	status, _, err := srv.Submit(sparkxd.JobSpec{
		Kind: sparkxd.JobPipeline, Stage: "train", Config: tinyConfig(),
	})
	if err != nil {
		t.Fatal(err)
	}
	final := waitDone(t, srv, status.ID)
	if final.State != sparkxd.JobDone {
		t.Fatalf("job failed: %s", final.Error)
	}
	if _, ok := final.Artifacts["baseline"]; !ok {
		t.Errorf("train-stage job must store a baseline model (have %v)", final.Artifacts)
	}
	for _, role := range []string{"improved", "tolerance", "placement", "evaluation", "energy"} {
		if _, ok := final.Artifacts[role]; ok {
			t.Errorf("train-stage job must not produce %q", role)
		}
	}
}

func TestHTTPValidation(t *testing.T) {
	_, ts := newTestServer(t)

	post := func(body string) *http.Response {
		t.Helper()
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}
	// Unknown kind -> 400 with a JSON error body.
	resp := post(`{"kind":"compile"}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("invalid kind: status %d, want 400", resp.StatusCode)
	}
	var ae struct {
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&ae); err != nil || ae.Error == "" {
		t.Errorf("error body missing: %v %q", err, ae.Error)
	}
	resp.Body.Close()

	// Unknown fields are rejected rather than silently dropped — a typo'd
	// axis must not run a different grid than the client intended.
	resp = post(`{"kind":"sweep","voltagez":[1.1]}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown field: status %d, want 400", resp.StatusCode)
	}
	resp.Body.Close()

	// Unknown job -> 404.
	for _, path := range []string{"/v1/jobs/deadbeef", "/v1/jobs/deadbeef/events"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s: status %d, want 404", path, resp.StatusCode)
		}
		resp.Body.Close()
	}

	// Artifact endpoint: bad key -> 400, missing key -> 404.
	resp, err := http.Get(ts.URL + "/v1/artifacts/not-a-key")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad artifact key: status %d, want 400", resp.StatusCode)
	}
	resp.Body.Close()
	missing := sparkxd.KindSweepReport + "/" + strings.Repeat("ab", 32)
	resp, err = http.Get(ts.URL + "/v1/artifacts/" + missing)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("missing artifact: status %d, want 404", resp.StatusCode)
	}
	resp.Body.Close()

	// Health probe.
	resp, err = http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz: status %d", resp.StatusCode)
	}
	resp.Body.Close()
}

// The artifact endpoint serves the canonical envelope: the bytes a
// client fetches hash back to the key it asked for.
func TestArtifactEndpointIntegrity(t *testing.T) {
	srv, ts := newTestServer(t)
	rep := &sparkxd.ToleranceReport{BaselineAcc: 0.9, AccBound: 0.01, BERth: 1e-5}
	key, err := sparkxd.PutArtifact(srv.Store(), rep)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(ts.URL + "/v1/artifacts/" + string(key))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	env, err := store.DecodeEnvelope(store.Key(key), bytes.TrimRight(buf.Bytes(), "\n"))
	if err != nil {
		t.Fatalf("served envelope fails integrity check: %v", err)
	}
	var got sparkxd.ToleranceReport
	if err := env.Decode(sparkxd.KindToleranceReport, &got); err != nil {
		t.Fatal(err)
	}
	if got.BERth != 1e-5 || got.BaselineAcc != 0.9 {
		t.Errorf("decoded %+v", got)
	}
}

// SSE: a finished job's event stream replays lifecycle (and stage)
// events and then terminates.
func TestEventStream(t *testing.T) {
	if testing.Short() {
		t.Skip("training skipped in -short mode")
	}
	srv, ts := newTestServer(t)
	status, _, err := srv.Submit(sparkxd.JobSpec{
		Kind: sparkxd.JobPipeline, Stage: "train", Config: tinyConfig(),
	})
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, srv, status.ID)

	resp, err := http.Get(ts.URL + "/v1/jobs/" + status.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Errorf("Content-Type = %q", ct)
	}
	var phases []string
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		data, ok := strings.CutPrefix(sc.Text(), "data: ")
		if !ok {
			continue
		}
		var ev sparkxd.Event
		if err := json.Unmarshal([]byte(data), &ev); err != nil {
			t.Fatalf("bad event %q: %v", data, err)
		}
		if ev.Stage == "job" {
			phases = append(phases, ev.Phase)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	want := []string{"queued", "running", "done"}
	if len(phases) != len(want) {
		t.Fatalf("job lifecycle phases = %v, want %v", phases, want)
	}
	for i := range want {
		if phases[i] != want[i] {
			t.Fatalf("job lifecycle phases = %v, want %v", phases, want)
		}
	}

	// Resume: a reconnect with Last-Event-ID skips the already-seen
	// prefix (event 0 is the "queued" lifecycle marker).
	req, err := http.NewRequest(http.MethodGet, ts.URL+"/v1/jobs/"+status.ID+"/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Last-Event-ID", "0")
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var resumed []string
	sc2 := bufio.NewScanner(resp2.Body)
	for sc2.Scan() {
		data, ok := strings.CutPrefix(sc2.Text(), "data: ")
		if !ok {
			continue
		}
		var ev sparkxd.Event
		if err := json.Unmarshal([]byte(data), &ev); err != nil {
			t.Fatalf("bad event %q: %v", data, err)
		}
		if ev.Stage == "job" {
			resumed = append(resumed, ev.Phase)
		}
	}
	if len(resumed) == 0 || resumed[0] == "queued" {
		t.Errorf("Last-Event-ID resume replayed the seen prefix: %v", resumed)
	}
}
