package quant

import (
	"math"
	"testing"
	"testing/quick"
)

func TestFormatMetadata(t *testing.T) {
	if FP32.BytesPerWeight() != 4 || FP16.BytesPerWeight() != 2 || Q88.BytesPerWeight() != 2 {
		t.Fatal("BytesPerWeight wrong")
	}
	if FP32.String() != "fp32" || FP16.String() != "fp16" || Q88.String() != "q8.8" {
		t.Fatal("String wrong")
	}
}

func TestImageSizePadding(t *testing.T) {
	if FP32.ImageSize(10, 0) != 40 {
		t.Error("unpadded size wrong")
	}
	if FP32.ImageSize(10, 32) != 64 {
		t.Error("padded size should round up to 64")
	}
	if FP32.ImageSize(8, 32) != 32 {
		t.Error("exact multiple should not pad")
	}
}

func TestFP32Roundtrip(t *testing.T) {
	w := []float32{0, 1, -1, 0.5, 1e-20, 3.14159, float32(math.MaxFloat32)}
	img := make([]byte, FP32.ImageSize(len(w), 0))
	if err := Serialize(w, FP32, img); err != nil {
		t.Fatal(err)
	}
	out := make([]float32, len(w))
	if err := Deserialize(img, FP32, out); err != nil {
		t.Fatal(err)
	}
	for i := range w {
		if w[i] != out[i] {
			t.Errorf("fp32 roundtrip [%d]: %v != %v", i, w[i], out[i])
		}
	}
}

func TestFP16RoundtripApprox(t *testing.T) {
	w := []float32{0, 1, -1, 0.5, 0.25, 0.333, 100, -7.75}
	img := make([]byte, FP16.ImageSize(len(w), 0))
	if err := Serialize(w, FP16, img); err != nil {
		t.Fatal(err)
	}
	out := make([]float32, len(w))
	if err := Deserialize(img, FP16, out); err != nil {
		t.Fatal(err)
	}
	for i := range w {
		rel := math.Abs(float64(out[i] - w[i]))
		if w[i] != 0 {
			rel /= math.Abs(float64(w[i]))
		}
		if rel > 1e-3 {
			t.Errorf("fp16 roundtrip [%d]: %v -> %v (rel %v)", i, w[i], out[i], rel)
		}
	}
}

func TestFP16Special(t *testing.T) {
	w := []float32{float32(math.Inf(1)), float32(math.Inf(-1))}
	img := make([]byte, 4)
	if err := Serialize(w, FP16, img); err != nil {
		t.Fatal(err)
	}
	out := make([]float32, 2)
	if err := Deserialize(img, FP16, out); err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(float64(out[0]), 1) || !math.IsInf(float64(out[1]), -1) {
		t.Errorf("fp16 infinities lost: %v", out)
	}
}

func TestQ88Roundtrip(t *testing.T) {
	w := []float32{0, 1, -1, 0.5, 0.00390625 /* 1/256 */, 127.99, -128}
	img := make([]byte, Q88.ImageSize(len(w), 0))
	if err := Serialize(w, Q88, img); err != nil {
		t.Fatal(err)
	}
	out := make([]float32, len(w))
	if err := Deserialize(img, Q88, out); err != nil {
		t.Fatal(err)
	}
	for i := range w {
		if math.Abs(float64(out[i]-w[i])) > 1.0/256+1e-6 {
			t.Errorf("q8.8 roundtrip [%d]: %v -> %v", i, w[i], out[i])
		}
	}
}

func TestQ88Saturates(t *testing.T) {
	w := []float32{1e6, -1e6}
	img := make([]byte, 4)
	if err := Serialize(w, Q88, img); err != nil {
		t.Fatal(err)
	}
	out := make([]float32, 2)
	_ = Deserialize(img, Q88, out)
	if out[0] < 127 || out[1] > -127 {
		t.Errorf("q8.8 saturation failed: %v", out)
	}
}

func TestSerializeSizeChecks(t *testing.T) {
	if Serialize([]float32{1, 2}, FP32, make([]byte, 4)) == nil {
		t.Error("undersized dst must error")
	}
	if Deserialize(make([]byte, 4), FP32, make([]float32, 2)) == nil {
		t.Error("undersized src must error")
	}
}

func TestFlipGetBit(t *testing.T) {
	img := make([]byte, 4)
	FlipBit(img, 0)
	if img[0] != 1 || !GetBit(img, 0) {
		t.Fatal("bit 0 flip failed")
	}
	FlipBit(img, 9)
	if img[1] != 2 || !GetBit(img, 9) {
		t.Fatal("bit 9 flip failed")
	}
	FlipBit(img, 9)
	if GetBit(img, 9) {
		t.Fatal("double flip must restore")
	}
}

func TestFlipBitChangesDeserializedWeight(t *testing.T) {
	w := []float32{1.0}
	img := make([]byte, 4)
	_ = Serialize(w, FP32, img)
	FlipBit(img, 30) // exponent MSB of a little-endian float32
	out := make([]float32, 1)
	_ = Deserialize(img, FP32, out)
	if out[0] == 1.0 {
		t.Fatal("exponent bit flip must change the value")
	}
	if math.Abs(float64(out[0])) <= 1 {
		t.Errorf("exponent MSB flip of 1.0 should be huge, got %v", out[0])
	}
}

func TestCountDiffBits(t *testing.T) {
	a := []byte{0x00, 0xff}
	b := []byte{0x01, 0xff}
	if CountDiffBits(a, b) != 1 {
		t.Fatal("CountDiffBits wrong")
	}
	if CountDiffBits(a, a) != 0 {
		t.Fatal("identical images must have distance 0")
	}
}

func TestCountDiffBitsPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch should panic")
		}
	}()
	CountDiffBits([]byte{1}, []byte{1, 2})
}

func TestSanitize(t *testing.T) {
	w := []float32{0.5, -2, 3, float32(math.NaN()), float32(math.Inf(1))}
	n := Sanitize(w, 0, 1)
	if n != 4 {
		t.Errorf("repaired = %d, want 4", n)
	}
	want := []float32{0.5, 0, 1, 0, 0}
	for i := range want {
		if w[i] != want[i] {
			t.Errorf("sanitized[%d] = %v, want %v", i, w[i], want[i])
		}
	}
}

func TestSanitizeNoopOnCleanWeights(t *testing.T) {
	w := []float32{0, 0.5, 1}
	if n := Sanitize(w, 0, 1); n != 0 {
		t.Errorf("clean weights repaired %d times", n)
	}
}

// Property: FP32 serialize/deserialize is the identity for finite values.
func TestFP32RoundtripProperty(t *testing.T) {
	f := func(v float32) bool {
		if math.IsNaN(float64(v)) {
			return true
		}
		img := make([]byte, 4)
		_ = Serialize([]float32{v}, FP32, img)
		out := make([]float32, 1)
		_ = Deserialize(img, FP32, out)
		return out[0] == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: flipping the same bit twice restores the image exactly.
func TestFlipInvolutionProperty(t *testing.T) {
	f := func(data []byte, idx uint16) bool {
		if len(data) == 0 {
			return true
		}
		img := append([]byte(nil), data...)
		bit := int64(idx) % int64(len(img)*8)
		FlipBit(img, bit)
		FlipBit(img, bit)
		return CountDiffBits(img, data) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: a single flip changes the Hamming distance by exactly one.
func TestSingleFlipDistanceProperty(t *testing.T) {
	f := func(data []byte, idx uint16) bool {
		if len(data) == 0 {
			return true
		}
		img := append([]byte(nil), data...)
		FlipBit(img, int64(idx)%int64(len(img)*8))
		return CountDiffBits(img, data) == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: FP16 roundtrip is monotone-ish — sign is always preserved.
func TestFP16SignPreservedProperty(t *testing.T) {
	f := func(v float32) bool {
		if math.IsNaN(float64(v)) {
			return true
		}
		img := make([]byte, 2)
		_ = Serialize([]float32{v}, FP16, img)
		out := make([]float32, 1)
		_ = Deserialize(img, FP16, out)
		if out[0] == 0 {
			return true // underflow keeps magnitude info out of scope
		}
		return (v < 0) == (out[0] < 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
