package quant

import (
	"math/bits"
	"testing"
)

func naiveDiffBits(a, b []byte) int64 {
	var n int64
	for i := range a {
		n += int64(bits.OnesCount8(a[i] ^ b[i]))
	}
	return n
}

// TestCountDiffBitsMatchesNaive sweeps lengths around the 8-byte word
// boundary so both the word loop and the byte tail are exercised.
func TestCountDiffBitsMatchesNaive(t *testing.T) {
	for _, n := range []int{0, 1, 7, 8, 9, 15, 16, 17, 63, 64, 100} {
		a := make([]byte, n)
		b := make([]byte, n)
		for i := 0; i < n; i++ {
			a[i] = byte(i*31 + 7)
			b[i] = byte(i*17 + 3)
		}
		if got, want := CountDiffBits(a, b), naiveDiffBits(a, b); got != want {
			t.Errorf("len %d: CountDiffBits = %d, naive = %d", n, got, want)
		}
	}
}

func TestCountDiffBitsPanicsOnLengthMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	CountDiffBits(make([]byte, 3), make([]byte, 4))
}

// TestXORIntoMatchesFlipBit checks the word-at-a-time mask application
// against per-bit FlipBit calls: same resulting image, returned count
// equal to the mask popcount, at lengths covering word and tail paths.
func TestXORIntoMatchesFlipBit(t *testing.T) {
	for _, n := range []int{0, 1, 7, 8, 9, 16, 33, 100} {
		dst := make([]byte, n)
		ref := make([]byte, n)
		mask := make([]byte, n)
		for i := 0; i < n; i++ {
			dst[i] = byte(i * 41)
			ref[i] = dst[i]
			mask[i] = byte(i*13 + 5)
			if i%3 == 0 {
				mask[i] = 0 // exercise the zero-word skip
			}
		}
		want := naiveDiffBits(mask, make([]byte, n))
		got := XORInto(dst, mask)
		if got != want {
			t.Errorf("len %d: XORInto returned %d, mask popcount %d", n, got, want)
		}
		for bit := int64(0); bit < int64(n)*8; bit++ {
			if GetBit(mask, bit) {
				FlipBit(ref, bit)
			}
		}
		for i := range dst {
			if dst[i] != ref[i] {
				t.Fatalf("len %d: byte %d: XORInto %#x, FlipBit reference %#x", n, i, dst[i], ref[i])
			}
		}
	}
}

func TestXORIntoShorterMask(t *testing.T) {
	dst := make([]byte, 10)
	mask := []byte{0xff, 0x01}
	if got := XORInto(dst, mask); got != 9 {
		t.Fatalf("XORInto = %d, want 9", got)
	}
	if dst[0] != 0xff || dst[1] != 0x01 || dst[2] != 0 {
		t.Fatal("XORInto must only touch the mask-covered prefix")
	}
}
