// Package quant converts synaptic weight tensors to and from the byte
// images that are stored in (approximate) DRAM, and provides the bit-level
// manipulation that error injection needs.
//
// The paper stores FP32 weights (Sec. V: "Python-based simulation with
// FP32 precision"); this package also offers FP16 and Q8.8 fixed-point
// formats, which the paper lists as complementary state-of-the-art
// techniques (quantization) that SparkXD can be combined with.
//
// Bit errors in stored weights can produce NaN, infinities, or huge
// magnitudes (a flipped exponent MSB). Sanitize implements the standard
// on-load clipping used by fault-tolerant inference systems: corrupted
// values are clamped into the legal weight range and non-finite values
// are zeroed, so a single flipped MSB cannot dominate the whole network
// (the paper's label-2 observation in Sec. VI-A is exactly about MSB
// flips being the damaging ones).
package quant

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"math/bits"
)

// Format selects the stored representation of one weight.
type Format uint8

const (
	// FP32 is IEEE-754 binary32, 4 bytes per weight (the paper's format).
	FP32 Format = iota
	// FP16 is IEEE-754 binary16, 2 bytes per weight.
	FP16
	// Q88 is signed 8.8 fixed point, 2 bytes per weight.
	Q88
)

// String names the format.
func (f Format) String() string {
	switch f {
	case FP32:
		return "fp32"
	case FP16:
		return "fp16"
	case Q88:
		return "q8.8"
	default:
		return fmt.Sprintf("Format(%d)", uint8(f))
	}
}

// BytesPerWeight returns the storage footprint of one weight.
func (f Format) BytesPerWeight() int {
	switch f {
	case FP32:
		return 4
	case FP16, Q88:
		return 2
	default:
		panic("quant: unknown format")
	}
}

// ImageSize returns the byte-image size for n weights, padded up to pad
// bytes (pass the DRAM column size so images tile whole column units;
// pad <= 0 means no padding).
func (f Format) ImageSize(n, pad int) int {
	size := n * f.BytesPerWeight()
	if pad > 0 && size%pad != 0 {
		size += pad - size%pad
	}
	return size
}

// Serialize encodes weights into dst, which must be at least
// ImageSize(len(w), 0) long. Padding bytes are left untouched.
func Serialize(w []float32, f Format, dst []byte) error {
	need := len(w) * f.BytesPerWeight()
	if len(dst) < need {
		return fmt.Errorf("quant: dst too small: %d < %d", len(dst), need)
	}
	switch f {
	case FP32:
		for i, v := range w {
			binary.LittleEndian.PutUint32(dst[i*4:], math.Float32bits(v))
		}
	case FP16:
		for i, v := range w {
			binary.LittleEndian.PutUint16(dst[i*2:], f32ToF16(v))
		}
	case Q88:
		for i, v := range w {
			binary.LittleEndian.PutUint16(dst[i*2:], uint16(f32ToQ88(v)))
		}
	default:
		return errors.New("quant: unknown format")
	}
	return nil
}

// Deserialize decodes n weights from src into out (len(out) == n).
func Deserialize(src []byte, f Format, out []float32) error {
	need := len(out) * f.BytesPerWeight()
	if len(src) < need {
		return fmt.Errorf("quant: src too small: %d < %d", len(src), need)
	}
	switch f {
	case FP32:
		for i := range out {
			out[i] = math.Float32frombits(binary.LittleEndian.Uint32(src[i*4:]))
		}
	case FP16:
		for i := range out {
			out[i] = f16ToF32(binary.LittleEndian.Uint16(src[i*2:]))
		}
	case Q88:
		for i := range out {
			out[i] = q88ToF32(int16(binary.LittleEndian.Uint16(src[i*2:])))
		}
	default:
		return errors.New("quant: unknown format")
	}
	return nil
}

// FlipBit inverts bit idx (0 = LSB of byte 0) of the image.
func FlipBit(img []byte, idx int64) {
	img[idx>>3] ^= 1 << uint(idx&7)
}

// GetBit returns bit idx of the image.
func GetBit(img []byte, idx int64) bool {
	return img[idx>>3]&(1<<uint(idx&7)) != 0
}

// CountDiffBits returns the Hamming distance between two equal-length
// images; it panics on length mismatch. The comparison runs eight bytes
// at a time with a hardware popcount, which matters because the sweep
// engine diffs full multi-megabyte weight images once per scenario.
func CountDiffBits(a, b []byte) int64 {
	if len(a) != len(b) {
		panic("quant: CountDiffBits length mismatch")
	}
	var n int64
	i := 0
	for ; i+8 <= len(a); i += 8 {
		n += int64(bits.OnesCount64(binary.LittleEndian.Uint64(a[i:]) ^ binary.LittleEndian.Uint64(b[i:])))
	}
	for ; i < len(a); i++ {
		n += int64(bits.OnesCount8(a[i] ^ b[i]))
	}
	return n
}

// XORInto flips dst ^= mask word-at-a-time and returns the number of
// bits set in mask — i.e. the number of bits it flipped in dst. It is
// the batch form of FlipBit used by dense error injection (a weak
// wordline flips many bits of one column unit in one pass). It panics if
// dst is shorter than mask.
func XORInto(dst, mask []byte) int64 {
	if len(dst) < len(mask) {
		panic("quant: XORInto dst shorter than mask")
	}
	var n int64
	i := 0
	for ; i+8 <= len(mask); i += 8 {
		m := binary.LittleEndian.Uint64(mask[i:])
		if m == 0 {
			continue
		}
		n += int64(bits.OnesCount64(m))
		binary.LittleEndian.PutUint64(dst[i:], binary.LittleEndian.Uint64(dst[i:])^m)
	}
	for ; i < len(mask); i++ {
		m := mask[i]
		if m == 0 {
			continue
		}
		n += int64(bits.OnesCount8(m))
		dst[i] ^= m
	}
	return n
}

// Sanitize clamps every weight into [lo, hi] and replaces non-finite
// values with zero. It returns the number of values it had to repair,
// which is a useful observability signal for error-injection experiments.
func Sanitize(w []float32, lo, hi float32) int {
	repaired := 0
	for i, v := range w {
		f64 := float64(v)
		switch {
		case math.IsNaN(f64) || math.IsInf(f64, 0):
			w[i] = 0
			repaired++
		case v < lo:
			w[i] = lo
			repaired++
		case v > hi:
			w[i] = hi
			repaired++
		}
	}
	return repaired
}

// f32ToF16 converts float32 to IEEE binary16 with round-to-nearest-even,
// flushing values below the subnormal range to zero and overflowing to Inf.
func f32ToF16(v float32) uint16 {
	bits := math.Float32bits(v)
	sign := uint16(bits>>16) & 0x8000
	exp := int32(bits>>23&0xff) - 127 + 15
	mant := bits & 0x7fffff
	switch {
	case exp <= 0:
		if exp < -10 {
			return sign // underflow to signed zero
		}
		// subnormal half
		mant |= 0x800000
		shift := uint32(14 - exp)
		half := uint16(mant >> shift)
		if mant>>(shift-1)&1 != 0 { // round half up (adequate here)
			half++
		}
		return sign | half
	case exp >= 0x1f:
		if exp == 0x1f+112 && mant != 0 { // NaN passthrough
			return sign | 0x7e00
		}
		return sign | 0x7c00 // Inf
	default:
		half := sign | uint16(exp)<<10 | uint16(mant>>13)
		if mant&0x1000 != 0 {
			half++
		}
		return half
	}
}

// f16ToF32 converts IEEE binary16 to float32.
func f16ToF32(h uint16) float32 {
	sign := uint32(h&0x8000) << 16
	exp := uint32(h >> 10 & 0x1f)
	mant := uint32(h & 0x3ff)
	switch exp {
	case 0:
		if mant == 0 {
			return math.Float32frombits(sign)
		}
		// subnormal: normalize
		e := uint32(127 - 15 + 1)
		for mant&0x400 == 0 {
			mant <<= 1
			e--
		}
		mant &= 0x3ff
		return math.Float32frombits(sign | e<<23 | mant<<13)
	case 0x1f:
		if mant == 0 {
			return math.Float32frombits(sign | 0x7f800000)
		}
		return float32(math.NaN())
	default:
		return math.Float32frombits(sign | (exp-15+127)<<23 | mant<<13)
	}
}

// f32ToQ88 converts to signed Q8.8 with saturation.
func f32ToQ88(v float32) int16 {
	x := math.Round(float64(v) * 256)
	if x > math.MaxInt16 {
		return math.MaxInt16
	}
	if x < math.MinInt16 {
		return math.MinInt16
	}
	return int16(x)
}

// q88ToF32 converts signed Q8.8 to float32.
func q88ToF32(q int16) float32 { return float32(q) / 256 }
