package experiments

import (
	"fmt"
	"io"

	"sparkxd/internal/coding"
	"sparkxd/internal/dataset"
	"sparkxd/internal/errmodel"
	"sparkxd/internal/mapping"
	"sparkxd/internal/report"
	"sparkxd/internal/rng"
	"sparkxd/internal/snn"
	"sparkxd/internal/voltscale"
)

// The ablations below cover the design choices DESIGN.md calls out beyond
// the paper's own figures: which EDEN error model is used (the paper
// argues Model 0 approximates the others), how much of the mapping gain
// comes from bank interleaving vs the safety filter, and how the spike
// coding scheme interacts with error tolerance.

func init() {
	register(Entry{Name: "ablation-errmodels", Seq: 130, Cost: 4,
		Desc: "EDEN error models 0-3 at a fixed BER",
		Run:  func(r *Runner) (Result, error) { return r.AblationErrModels(1e-3) }})
	register(Entry{Name: "ablation-mapping", Seq: 140, Cost: 1,
		Desc: "mapping policy decomposition (interleaving vs safety)",
		Run:  func(r *Runner) (Result, error) { return r.AblationMapping() }})
	register(Entry{Name: "ablation-coding", Seq: 150, Cost: 5,
		Desc: "spike coding schemes under error injection",
		Run:  func(r *Runner) (Result, error) { return r.AblationCoding() }})
}

// AblationErrModelResult compares the accuracy impact of EDEN error
// models 0-3 at a fixed BER.
type AblationErrModelResult struct {
	BER      float64
	Models   []string
	Accuracy []float64
	CleanAcc float64
}

// AblationErrModels injects errors with each EDEN model into the same
// trained network and measures accuracy (paper Sec. III: Model 0 is a
// reasonable approximation of the others).
func (r *Runner) AblationErrModels(ber float64) (AblationErrModelResult, error) {
	size := 100
	if !r.Opts.Quick {
		size = 400
	}
	pair, err := r.Pair(size, dataset.MNISTLike)
	if err != nil {
		return AblationErrModelResult{}, err
	}
	_, test, err := r.Data(dataset.MNISTLike)
	if err != nil {
		return AblationErrModelResult{}, err
	}
	layout, err := r.F.LayoutFor(pair.Baseline, nil)
	if err != nil {
		return AblationErrModelResult{}, err
	}
	res := AblationErrModelResult{BER: ber}
	evalSeed := rng.New(r.Opts.Seed).Derive("ablation-eval").Uint64()
	zero, err := errmodel.UniformProfile(r.F.Geom, 0, r.F.DeviceSeed)
	if err != nil {
		return res, err
	}
	res.CleanAcc = r.F.EvaluateUnderErrors(pair.Baseline, test, layout, zero, 1, evalSeed)
	for _, kind := range []errmodel.Kind{errmodel.Model0, errmodel.Model1, errmodel.Model2, errmodel.Model3} {
		profile, err := errmodel.UniformProfile(r.F.Geom, ber, r.F.DeviceSeed)
		if err != nil {
			return res, err
		}
		fw := *r.F // shallow copy with a different error model kind
		fw.ErrKind = kind
		acc := fw.EvaluateUnderErrors(pair.Baseline, test, layout, profile, 7, evalSeed)
		res.Models = append(res.Models, kind.String())
		res.Accuracy = append(res.Accuracy, acc)
	}
	return res, nil
}

// Render writes the comparison.
func (res AblationErrModelResult) Render(w io.Writer) {
	tb := report.NewTable(
		fmt.Sprintf("ablation: EDEN error models at BER %.0e (clean %.1f%%)",
			res.BER, res.CleanAcc*100),
		"error model", "accuracy", "delta vs clean")
	for i := range res.Models {
		tb.AddRow(res.Models[i], report.Pct(res.Accuracy[i]),
			fmt.Sprintf("%+.1f pp", (res.Accuracy[i]-res.CleanAcc)*100))
	}
	tb.Render(w)
}

// AblationMappingResult decomposes the mapping gain: baseline sequential,
// bank-interleaved without a safety filter, and full SparkXD.
type AblationMappingResult struct {
	Policies  []string
	HitRate   []float64
	Makespan  []float64 // ns
	EnergyMJ  []float64
	UnsafeHit []int64 // accesses landing in unsafe subarrays
}

// AblationMapping compares the three layouts at 1.025 V for an N900
// image, counting how many accesses land in subarrays whose error rate
// exceeds the threshold (the safety property Algorithm 2 buys).
func (r *Runner) AblationMapping() (AblationMappingResult, error) {
	const weights = 784 * 900
	const berTh = 1e-3
	v := voltscale.V1025
	profile, err := r.F.ProfileAt(v)
	if err != nil {
		return AblationMappingResult{}, err
	}
	safe := profile.SafeSubarrays(berTh)

	base, err := r.F.LayoutForWeights(weights, nil)
	if err != nil {
		return AblationMappingResult{}, err
	}
	inter, err := r.F.LayoutForWeights(weights, allTrue(len(safe)))
	if err != nil {
		return AblationMappingResult{}, err
	}
	spark, _, _, err := r.F.MapWeightsAdaptive(weights, v, berTh)
	if err != nil {
		return AblationMappingResult{}, err
	}

	res := AblationMappingResult{}
	layouts := []struct {
		name string
		l    *mapping.Layout
	}{
		{"baseline (sequential)", base},
		{"interleaved (no safety)", inter},
		{"sparkxd (Algorithm 2)", spark},
	}
	for _, it := range layouts {
		e, err := r.F.EvaluateEnergy(it.l, v)
		if err != nil {
			return res, err
		}
		var unsafeHits int64
		for _, c := range it.l.AccessStream() {
			if !safe[c.SubarrayOf().Linear(r.F.Geom)] {
				unsafeHits++
			}
		}
		res.Policies = append(res.Policies, it.name)
		res.HitRate = append(res.HitRate, e.Stats.HitRate())
		res.Makespan = append(res.Makespan, e.Stats.TotalNs)
		res.EnergyMJ = append(res.EnergyMJ, e.TotalMJ())
		res.UnsafeHit = append(res.UnsafeHit, unsafeHits)
	}
	return res, nil
}

// Render writes the decomposition table.
func (res AblationMappingResult) Render(w io.Writer) {
	tb := report.NewTable("ablation: mapping policy decomposition (N900 @ 1.025V, BERth 1e-3)",
		"policy", "hit rate", "makespan [us]", "energy [mJ]", "accesses in unsafe subarrays")
	for i := range res.Policies {
		tb.AddRow(res.Policies[i], report.Pct(res.HitRate[i]),
			res.Makespan[i]/1000, res.EnergyMJ[i], res.UnsafeHit[i])
	}
	tb.Render(w)
}

// AblationCodingResult compares spike encodings under error injection.
type AblationCodingResult struct {
	Encoders []string
	CleanAcc []float64
	ErrAcc   []float64 // at BER 1e-3
}

// AblationCoding trains a small network with each of the paper's surveyed
// coding schemes and measures clean and corrupted accuracy.
func (r *Runner) AblationCoding() (AblationCodingResult, error) {
	train, test, err := r.Data(dataset.MNISTLike)
	if err != nil {
		return AblationCodingResult{}, err
	}
	encoders := []coding.Encoder{
		coding.NewRate(),
		coding.NewDeterministicRate(),
		coding.TTFS{Threshold: 20},
		coding.NewRankOrder(),
		coding.NewBurst(),
	}
	res := AblationCodingResult{
		Encoders: make([]string, len(encoders)),
		CleanAcc: make([]float64, len(encoders)),
		ErrAcc:   make([]float64, len(encoders)),
	}
	profile, err := errmodel.UniformProfile(r.F.Geom, 1e-3, r.F.DeviceSeed)
	if err != nil {
		return res, err
	}
	err = r.parallelFor(len(encoders), func(i int) error {
		cfg := snn.DefaultConfig(80)
		cfg.Encoder = encoders[i]
		net, err := snn.New(cfg, rng.New(r.Opts.Seed))
		if err != nil {
			return err
		}
		root := rng.New(r.Opts.Seed).DeriveIndex("coding", i)
		for e := 0; e < 2; e++ {
			net.TrainEpoch(train, root.DeriveIndex("epoch", e))
		}
		net.AssignLabels(train, root.Derive("assign"))
		layout, err := r.F.LayoutFor(net, nil)
		if err != nil {
			return err
		}
		evalSeed := root.Derive("eval").Uint64()
		zero, err := errmodel.UniformProfile(r.F.Geom, 0, r.F.DeviceSeed)
		if err != nil {
			return err
		}
		res.Encoders[i] = encoders[i].Name()
		res.CleanAcc[i] = r.F.EvaluateUnderErrors(net, test, layout, zero, 1, evalSeed)
		res.ErrAcc[i] = r.F.EvaluateUnderErrors(net, test, layout, profile, 9, evalSeed)
		return nil
	})
	return res, err
}

// Render writes the coding comparison.
func (res AblationCodingResult) Render(w io.Writer) {
	tb := report.NewTable("ablation: spike coding schemes (N80, clean vs BER 1e-3)",
		"encoder", "clean accuracy", "accuracy @1e-3")
	for i := range res.Encoders {
		tb.AddRow(res.Encoders[i], report.Pct(res.CleanAcc[i]), report.Pct(res.ErrAcc[i]))
	}
	tb.Render(w)
}

// allTrue returns n true flags (every subarray considered safe).
func allTrue(n int) []bool {
	s := make([]bool, n)
	for i := range s {
		s[i] = true
	}
	return s
}
