package experiments

import (
	"fmt"
	"io"
	"sort"
	"sync"

	"sparkxd/internal/sched"
)

// Result is what every experiment produces: a structured value that can
// render itself as terminal tables/charts.
type Result interface {
	Render(w io.Writer)
}

// Entry describes one registered experiment (a figure, table, or
// ablation). Each exp_*.go file registers its entries from init, so the
// suite is assembled at link time and cmd/experiments, bench_test.go,
// and the CI shards all iterate the same index.
type Entry struct {
	// Name is the job name ("fig8", "table1", "ablation-coding", ...).
	Name string
	// Seq orders entries for human-facing listings and rendering
	// (paper figure order); sharding and scheduling use Name instead.
	Seq int
	// Desc is a one-line description for -list.
	Desc string
	// Cost is the relative expense hint forwarded to the scheduler
	// (training-heavy experiments dwarf the analytic ones).
	Cost float64
	// Run executes the experiment against a runner.
	Run func(r *Runner) (Result, error)
}

var (
	regMu    sync.Mutex
	registry = make(map[string]Entry)
)

// register adds an entry to the suite index; duplicate names are a
// programming error.
func register(e Entry) {
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[e.Name]; dup {
		panic(fmt.Sprintf("experiments: duplicate registration of %q", e.Name))
	}
	if e.Run == nil {
		panic(fmt.Sprintf("experiments: entry %q has no Run function", e.Name))
	}
	registry[e.Name] = e
}

// Entries returns every registered experiment in suite (Seq) order.
func Entries() []Entry {
	regMu.Lock()
	defer regMu.Unlock()
	out := make([]Entry, 0, len(registry))
	for _, e := range registry {
		out = append(out, e)
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Seq != out[b].Seq {
			return out[a].Seq < out[b].Seq
		}
		return out[a].Name < out[b].Name
	})
	return out
}

// Lookup finds an entry by name.
func Lookup(name string) (Entry, bool) {
	regMu.Lock()
	defer regMu.Unlock()
	e, ok := registry[name]
	return e, ok
}

// Jobs wraps every registered experiment as a sched.Job bound to this
// runner. The jobs share the runner's artifact cache, so e.g. fig8,
// fig11, and the ablations train each (size, flavour) model pair once
// between them no matter which workers pick them up.
func (r *Runner) Jobs() []sched.Job {
	entries := Entries()
	jobs := make([]sched.Job, 0, len(entries))
	for _, e := range entries {
		e := e
		jobs = append(jobs, sched.Job{
			Name: e.Name,
			Cost: e.Cost,
			Run: func(*sched.Ctx) (any, error) {
				return e.Run(r)
			},
		})
	}
	return jobs
}
