// Package experiments regenerates every table and figure of the paper's
// evaluation (see DESIGN.md §4 for the experiment index). Each Fig*/Table*
// function returns a structured result and can render itself as terminal
// tables/charts. Every entry also registers itself (from its exp_*.go
// file's init) as a job of the internal/sched work-stealing scheduler;
// cmd/experiments is the CLI front-end — `experiments run` executes the
// whole registered suite in parallel with shard support — and
// bench_test.go at the repository root wraps each entry as a testing.B
// benchmark.
//
// Results are *shape-level* reproductions: the DRAM-side numbers
// (Figs. 2, 6, 12, Table I) track the paper closely because the energy
// and circuit models are calibrated against it, while the SNN-side
// numbers (Figs. 1a, 8, 11) use synthetic datasets and scaled-down
// training budgets, so absolute accuracies differ but orderings and
// trends are preserved (EXPERIMENTS.md records both).
package experiments

import (
	"context"
	"fmt"
	"io"

	"sparkxd/internal/core"
	"sparkxd/internal/dataset"
	"sparkxd/internal/engine"
	"sparkxd/internal/rng"
	"sparkxd/internal/sched"
	"sparkxd/internal/snn"
)

// Options configures an experiment run.
type Options struct {
	// Quick shrinks network sizes and sample counts so the whole suite
	// runs in tens of seconds (used by tests and benchmarks). Full mode
	// uses the paper's network sizes.
	Quick bool
	// Seed drives every stochastic component.
	Seed uint64
	// Workers bounds the intra-experiment parallelism (panel sweeps,
	// encoder comparisons); <= 0 means GOMAXPROCS. Results are
	// bit-identical for any value because every random stream is
	// derived from labels, never from execution order.
	Workers int
	// Log receives progress lines (nil = silent).
	Log io.Writer

	// Overrides, used by benchmarks to pin extra-small budgets; zero/nil
	// values fall back to the Quick/full defaults.
	OverrideSizes  []int
	OverrideTrainN int
	OverrideTestN  int
	OverrideBERs   []float64
}

// DefaultOptions returns quick-mode options.
func DefaultOptions() Options { return Options{Quick: true, Seed: 2021} }

// BenchOptions returns the minimal budgets used by the root benchmark
// harness: tiny networks and sample counts so each benchmark iteration
// still exercises the full experiment path.
func BenchOptions() Options {
	return Options{
		Quick:          true,
		Seed:           2021,
		OverrideSizes:  []int{50, 100},
		OverrideTrainN: 80,
		OverrideTestN:  40,
		OverrideBERs:   []float64{1e-5, 1e-3},
	}
}

func (o Options) logf(format string, args ...interface{}) {
	if o.Log != nil {
		fmt.Fprintf(o.Log, format+"\n", args...)
	}
}

// Sizes returns the network-size sweep for the accuracy/energy figures.
func (o Options) Sizes() []int {
	if len(o.OverrideSizes) > 0 {
		return o.OverrideSizes
	}
	if o.Quick {
		return []int{400, 900}
	}
	return snn.PaperSizes()
}

// TrainN returns the training-set size.
func (o Options) TrainN() int {
	if o.OverrideTrainN > 0 {
		return o.OverrideTrainN
	}
	if o.Quick {
		return 200
	}
	return 400
}

// TestN returns the test-set size.
func (o Options) TestN() int {
	if o.OverrideTestN > 0 {
		return o.OverrideTestN
	}
	if o.Quick {
		return 100
	}
	return 200
}

// BaseEpochs returns the number of error-free training epochs.
func (o Options) BaseEpochs() int {
	if o.Quick {
		return 1
	}
	return 2
}

// BERs returns the bit-error-rate sweep of Figs. 8 and 11.
func (o Options) BERs() []float64 {
	if len(o.OverrideBERs) > 0 {
		return o.OverrideBERs
	}
	if o.Quick {
		return []float64{1e-9, 1e-7, 1e-5, 1e-3}
	}
	return []float64{1e-9, 1e-8, 1e-7, 1e-6, 1e-5, 1e-4, 1e-3}
}

// Runner caches trained models across experiments (Figs. 8, 11, 12 share
// them) and owns the framework instance. The cache is a sched.Cache, so
// scheduler jobs running concurrently share single-flight artifact
// computation: the first job to need a (size, flavour, seed) model pair
// trains it and every other job blocks on — then reuses — that result.
type Runner struct {
	Opts  Options
	F     *core.Framework
	cache *sched.Cache
	eng   *engine.Engine
}

// ModelPair is a baseline network and its fault-aware-trained counterpart.
type ModelPair struct {
	Size     int
	Flavor   dataset.Flavor
	Baseline *snn.Network
	Improved *snn.Network
	// BaselineAcc is the error-free baseline accuracy (acc0 in Alg. 1).
	BaselineAcc float64
	// TrainCurve is the per-rate accuracy observed during Algorithm 1.
	TrainCurve []core.RatePoint
	// BERth is the provisional maximum tolerable BER from training.
	BERth float64
}

// NewRunner builds a runner over the paper's framework with its own
// artifact cache; callers that schedule the suite pass Cache() to
// sched.Config so jobs and runner share one cache.
func NewRunner(opts Options) *Runner {
	f := core.NewFramework()
	return &Runner{
		Opts:  opts,
		F:     f,
		cache: sched.NewCache(),
		eng:   engine.New(f),
	}
}

// Cache exposes the runner's artifact cache (shared with the scheduler).
func (r *Runner) Cache() *sched.Cache { return r.cache }

// Engine exposes the runner's batched scenario-sweep engine; the
// accuracy-grid experiments (Figs. 8, 11) fan their BER points out
// through it, sharing derived profiles and prepared injectors across
// experiments and workers.
func (r *Runner) Engine() *engine.Engine { return r.eng }

// Data returns (train, test) for a flavour, cached by
// flavour+budgets+seed.
func (r *Runner) Data(fl dataset.Flavor) (*dataset.Dataset, *dataset.Dataset, error) {
	key := fmt.Sprintf("dset/%s/train%d/test%d/seed%d", fl, r.Opts.TrainN(), r.Opts.TestN(), r.Opts.Seed)
	v, err := r.cache.GetOrCompute(key, func() (any, error) {
		cfg := dataset.DefaultConfig(fl)
		cfg.Train, cfg.Test = r.Opts.TrainN(), r.Opts.TestN()
		cfg.Seed = r.Opts.Seed
		train, test, err := dataset.Generate(cfg)
		if err != nil {
			return nil, err
		}
		return [2]*dataset.Dataset{train, test}, nil
	})
	if err != nil {
		return nil, nil, err
	}
	d := v.([2]*dataset.Dataset)
	return d[0], d[1], nil
}

// trainCfg returns the Algorithm-1 schedule for this run.
func (r *Runner) trainCfg() core.TrainConfig {
	cfg := core.DefaultTrainConfig()
	cfg.Rates = r.Opts.BERs()
	cfg.Seed = r.Opts.Seed + 13
	return cfg
}

// Pair returns the trained (baseline, improved) pair for a size and
// flavour, training on first use and caching by size+flavour+seed.
// Training seeds derive from the pair's label, so the result is
// bit-identical no matter which experiment (or worker) triggers it.
func (r *Runner) Pair(size int, fl dataset.Flavor) (*ModelPair, error) {
	label := fmt.Sprintf("%s/N%d", fl, size)
	key := fmt.Sprintf("pair/%s/N%d/seed%d", fl, size, r.Opts.Seed)
	v, err := r.cache.GetOrCompute(key, func() (any, error) {
		train, test, err := r.Data(fl)
		if err != nil {
			return nil, err
		}
		r.Opts.logf("training %s ...", label)
		baseline, err := snn.New(snn.DefaultConfig(size), rng.New(r.Opts.Seed))
		if err != nil {
			return nil, err
		}
		// The baseline gets the same total training budget as the improved
		// model (base epochs + one epoch per BER schedule rate); otherwise
		// the fault-aware model's extra epochs would confound the Fig. 8/11
		// comparison, which isolates the effect of error awareness.
		root := rng.New(r.Opts.Seed).Derive(label)
		epochs := r.Opts.BaseEpochs() + len(r.Opts.BERs())*r.trainCfg().EpochsPerRate
		for e := 0; e < epochs; e++ {
			baseline.TrainEpoch(train, root.DeriveIndex("epoch", e))
		}
		baseline.AssignLabels(train, root.Derive("assign"))

		res, err := r.F.ImproveErrorTolerance(context.Background(), baseline, train, test, r.trainCfg())
		if err != nil {
			return nil, err
		}
		p := &ModelPair{
			Size:        size,
			Flavor:      fl,
			Baseline:    baseline,
			Improved:    res.Model,
			BaselineAcc: res.BaselineAcc,
			TrainCurve:  res.PerRate,
			BERth:       res.BERth,
		}
		r.Opts.logf("trained  %s: acc0=%.1f%% BERth=%.0e", label, p.BaselineAcc*100, p.BERth)
		return p, nil
	})
	if err != nil {
		return nil, err
	}
	return v.(*ModelPair), nil
}

// parallelFor runs fn(i) for i in [0, n) on up to Opts.Workers workers
// (GOMAXPROCS when unset) and returns the lowest-index error.
func (r *Runner) parallelFor(n int, fn func(i int) error) error {
	return sched.ParallelFor(r.Opts.Workers, n, fn)
}
