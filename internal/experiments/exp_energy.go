package experiments

import (
	"fmt"
	"io"

	"sparkxd/internal/dataset"
	"sparkxd/internal/dram"
	"sparkxd/internal/power"
	"sparkxd/internal/report"
	"sparkxd/internal/voltscale"
)

func init() {
	register(Entry{Name: "fig12a", Seq: 100, Cost: 2,
		Desc: "DRAM access energy per inference (voltage x size matrix)",
		Run:  func(r *Runner) (Result, error) { return r.Fig12a() }})
	register(Entry{Name: "fig12b", Seq: 110, Cost: 1,
		Desc: "speed-up of the SparkXD mapping over the baseline",
		Run:  func(r *Runner) (Result, error) { return r.Fig12b() }})
	register(Entry{Name: "table1", Seq: 120, Cost: 0.1,
		Desc: "DRAM energy-per-access savings vs supply voltage",
		Run:  func(r *Runner) (Result, error) { return r.TableI(), nil }})
}

// Fig12aResult is the DRAM access energy per inference across supply
// voltages and network sizes (Fig. 12(a)).
type Fig12aResult struct {
	Sizes    []int
	Voltages []float64 // reduced voltages (SparkXD points)
	// BaselineMJ[i] is the baseline SNN + accurate DRAM energy of size i.
	BaselineMJ []float64
	// SparkXDMJ[i][j] is the improved SNN + approximate DRAM energy of
	// size i at voltage j.
	SparkXDMJ [][]float64
	// MeanSavings[j] is the average saving across sizes at voltage j.
	MeanSavings []float64
	// PaperMeanSavings are the values the paper reports for the same
	// voltages (3.84, 13.33, 22.69, 31.12, 39.46 %).
	PaperMeanSavings []float64
}

// fig12BERth is the tolerable BER assumed for mapping in the energy
// experiments (the improved models tolerate ~1e-3, Fig. 11).
const fig12BERth = 1e-3

// Fig12a evaluates the energy matrix.
func (r *Runner) Fig12a() (Fig12aResult, error) {
	res := Fig12aResult{
		Sizes:            r.Opts.Sizes(),
		Voltages:         voltscale.ReducedVoltages(),
		PaperMeanSavings: []float64{0.0384, 0.1333, 0.2269, 0.3112, 0.3946},
	}
	sums := make([]float64, len(res.Voltages))
	for _, size := range res.Sizes {
		weights := dataset.Pixels * size
		baseLayout, err := r.F.LayoutForWeights(weights, nil)
		if err != nil {
			return res, err
		}
		eBase, err := r.F.EvaluateEnergy(baseLayout, voltscale.VNominal)
		if err != nil {
			return res, err
		}
		res.BaselineMJ = append(res.BaselineMJ, eBase.TotalMJ())
		var row []float64
		for j, v := range res.Voltages {
			layout, _, _, err := r.F.MapWeightsAdaptive(weights, v, fig12BERth)
			if err != nil {
				return res, err
			}
			e, err := r.F.EvaluateEnergy(layout, v)
			if err != nil {
				return res, err
			}
			row = append(row, e.TotalMJ())
			sums[j] += 1 - e.TotalMJ()/eBase.TotalMJ()
		}
		res.SparkXDMJ = append(res.SparkXDMJ, row)
	}
	for _, s := range sums {
		res.MeanSavings = append(res.MeanSavings, s/float64(len(res.Sizes)))
	}
	return res, nil
}

// Render writes the energy matrix and the savings summary.
func (res Fig12aResult) Render(w io.Writer) {
	headers := []string{"network", "1.350V base [mJ]"}
	for _, v := range res.Voltages {
		headers = append(headers, formatV(v)+" [mJ]")
	}
	tb := report.NewTable("Fig. 12(a): DRAM access energy per inference", headers...)
	for i, size := range res.Sizes {
		cells := []interface{}{fmt.Sprintf("N%d", size), res.BaselineMJ[i]}
		for _, e := range res.SparkXDMJ[i] {
			cells = append(cells, e)
		}
		tb.AddRow(cells...)
	}
	tb.Render(w)

	sm := report.NewTable("mean DRAM energy savings vs baseline (accurate DRAM)",
		"Vsupply", "this repro", "paper")
	for j, v := range res.Voltages {
		sm.AddRow(formatV(v), report.Pct(res.MeanSavings[j]), report.Pct(res.PaperMeanSavings[j]))
	}
	sm.Render(w)
}

// Fig12bResult is the throughput comparison of Fig. 12(b): SparkXD
// mapping vs baseline mapping, same timing, per network size.
type Fig12bResult struct {
	Sizes      []int
	BaselineNs []float64
	SparkXDNs  []float64
	Speedup    []float64
}

// Fig12b measures the speed-up of the SparkXD mapping.
func (r *Runner) Fig12b() (Fig12bResult, error) {
	res := Fig12bResult{Sizes: r.Opts.Sizes()}
	for _, size := range res.Sizes {
		weights := dataset.Pixels * size
		baseLayout, err := r.F.LayoutForWeights(weights, nil)
		if err != nil {
			return res, err
		}
		sparkLayout, _, _, err := r.F.MapWeightsAdaptive(weights, voltscale.V1025, fig12BERth)
		if err != nil {
			return res, err
		}
		eb, err := r.F.EvaluateEnergy(baseLayout, voltscale.VNominal)
		if err != nil {
			return res, err
		}
		es, err := r.F.EvaluateEnergy(sparkLayout, voltscale.VNominal)
		if err != nil {
			return res, err
		}
		res.BaselineNs = append(res.BaselineNs, eb.Stats.TotalNs)
		res.SparkXDNs = append(res.SparkXDNs, es.Stats.TotalNs)
		res.Speedup = append(res.Speedup, eb.Stats.TotalNs/es.Stats.TotalNs)
	}
	return res, nil
}

// Render writes the speed-up table.
func (res Fig12bResult) Render(w io.Writer) {
	tb := report.NewTable("Fig. 12(b): speed-up of the SparkXD mapping over the baseline mapping",
		"network", "baseline [us]", "SparkXD [us]", "speed-up")
	var mean float64
	for i, size := range res.Sizes {
		tb.AddRow(fmt.Sprintf("N%d", size),
			res.BaselineNs[i]/1000, res.SparkXDNs[i]/1000,
			fmt.Sprintf("%.3fx", res.Speedup[i]))
		mean += res.Speedup[i]
	}
	tb.Render(w)
	fmt.Fprintf(w, "mean speed-up: %.3fx (paper: 1.02x)\n", mean/float64(len(res.Sizes)))
}

// TableIResult compares per-access energy savings against Table I.
type TableIResult struct {
	Voltages []float64
	Model    []float64
	Paper    []float64
}

// TableI evaluates the per-access (row-hit) savings at each voltage.
func (r *Runner) TableI() TableIResult {
	paper := power.PaperTableISavings()
	res := TableIResult{}
	for _, v := range voltscale.ReducedVoltages() {
		res.Voltages = append(res.Voltages, v)
		res.Model = append(res.Model, r.F.Power.AccessSavings(dram.AccessHit, v))
		res.Paper = append(res.Paper, paper[v])
	}
	return res
}

// Render writes the comparison table.
func (res TableIResult) Render(w io.Writer) {
	tb := report.NewTable("Table I: DRAM energy-per-access savings vs supply voltage",
		"Vsupply", "this repro", "paper")
	for i := range res.Voltages {
		tb.AddRow(formatV(res.Voltages[i]), report.Pct(res.Model[i]), report.Pct(res.Paper[i]))
	}
	tb.Render(w)
}
