package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestAblationMapping(t *testing.T) {
	r := tinyRunner()
	res, err := r.AblationMapping()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Policies) != 3 {
		t.Fatal("expected three policies")
	}
	// Only SparkXD avoids unsafe subarrays entirely.
	if res.UnsafeHit[2] != 0 {
		t.Errorf("sparkxd placed %d accesses in unsafe subarrays", res.UnsafeHit[2])
	}
	// The unfiltered layouts necessarily touch unsafe subarrays at 1.025V
	// (most of the device is above BERth there).
	if res.UnsafeHit[0] == 0 && res.UnsafeHit[1] == 0 {
		t.Error("baseline/interleaved should touch unsafe subarrays at 1.025V")
	}
	// Interleaving (with or without safety) must not be slower than the
	// sequential baseline.
	if res.Makespan[1] > res.Makespan[0] || res.Makespan[2] > res.Makespan[0] {
		t.Error("interleaved layouts must not be slower than sequential")
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "Algorithm 2") {
		t.Error("render missing policies")
	}
}

func TestAblationErrModels(t *testing.T) {
	if testing.Short() {
		t.Skip("training ablation skipped in -short mode")
	}
	r := tinyRunner()
	res, err := r.AblationErrModels(1e-3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Models) != 4 {
		t.Fatal("expected four EDEN models")
	}
	for i, acc := range res.Accuracy {
		if acc < 0 || acc > 1 {
			t.Fatalf("model %s accuracy %v out of range", res.Models[i], acc)
		}
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "model0-uniform") {
		t.Error("render missing model names")
	}
}

func TestAblationCoding(t *testing.T) {
	if testing.Short() {
		t.Skip("training ablation skipped in -short mode")
	}
	r := tinyRunner()
	res, err := r.AblationCoding()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Encoders) != 5 {
		t.Fatal("expected five encoders")
	}
	// The paper's choice (Poisson rate coding) must be competitive: within
	// 20pp of the best encoder on clean data.
	best := 0.0
	for _, a := range res.CleanAcc {
		if a > best {
			best = a
		}
	}
	if res.CleanAcc[0] < best-0.20 {
		t.Errorf("rate coding (%.2f) far below best encoder (%.2f)", res.CleanAcc[0], best)
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "rate-poisson") {
		t.Error("render missing encoder names")
	}
}
