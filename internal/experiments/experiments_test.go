package experiments

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"sparkxd/internal/dataset"
	"sparkxd/internal/sched"
)

// tinyRunner returns a runner with deliberately minimal budgets for tests.
func tinyRunner() *Runner {
	r := NewRunner(Options{Quick: true, Seed: 5})
	return r
}

func TestOptionsScaling(t *testing.T) {
	q := Options{Quick: true}
	f := Options{Quick: false}
	if len(q.Sizes()) >= len(f.Sizes()) {
		t.Error("quick mode must sweep fewer sizes")
	}
	if len(f.Sizes()) != 5 {
		t.Error("full mode must use the paper's five sizes")
	}
	if q.TrainN() >= f.TrainN() {
		t.Error("quick mode must train on fewer samples")
	}
	if len(f.BERs()) != 7 {
		t.Error("full mode must sweep seven BER decades")
	}
}

func TestDataCaching(t *testing.T) {
	r := tinyRunner()
	a1, b1, err := r.Data(dataset.MNISTLike)
	if err != nil {
		t.Fatal(err)
	}
	a2, b2, _ := r.Data(dataset.MNISTLike)
	if a1 != a2 || b1 != b2 {
		t.Error("datasets must be cached (same pointers)")
	}
	if a1.Len() != r.Opts.TrainN() || b1.Len() != r.Opts.TestN() {
		t.Error("dataset sizes must follow the options")
	}
}

func TestFig2bShape(t *testing.T) {
	r := tinyRunner()
	res := r.Fig2b()
	if len(res.Conditions) != 3 {
		t.Fatal("Fig 2(b) must cover hit/miss/conflict")
	}
	if !(res.At1350[0] < res.At1350[1] && res.At1350[1] < res.At1350[2]) {
		t.Error("hit < miss < conflict ordering violated")
	}
	for i, s := range res.Savings {
		if s < 0.30 || s > 0.44 {
			t.Errorf("condition %s saving %.1f%% outside the paper's 31-42%% band",
				res.Conditions[i], s*100)
		}
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "conflict") {
		t.Error("render missing rows")
	}
}

func TestFig2cShape(t *testing.T) {
	r := tinyRunner()
	res := r.Fig2c()
	if len(res.Voltage) < 10 {
		t.Fatal("sweep too sparse")
	}
	// Monotone non-increasing BER as voltage rises.
	for i := 1; i < len(res.BER); i++ {
		if res.BER[i] > res.BER[i-1]+1e-18 {
			t.Fatal("BER must fall as voltage rises")
		}
	}
	if res.BER[0] < 1e-3 {
		t.Error("BER at 1.025V should be ~1e-2")
	}
	if res.BER[len(res.BER)-1] != 0 {
		t.Error("BER at 1.35V must be 0")
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if buf.Len() == 0 {
		t.Error("render empty")
	}
}

func TestFig2dShape(t *testing.T) {
	r := tinyRunner()
	res := r.Fig2d()
	if len(res.TimeNs) != len(res.VNominal) || len(res.TimeNs) != len(res.VReduced) {
		t.Fatal("waveform lengths mismatch")
	}
	for i := range res.TimeNs {
		if res.VReduced[i] > res.VNominal[i]+1e-12 {
			t.Fatal("reduced-voltage waveform must lie below nominal")
		}
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "1.025V") {
		t.Error("render missing legend")
	}
}

func TestFig6Shape(t *testing.T) {
	r := tinyRunner()
	res := r.Fig6()
	if len(res.Voltages) != 6 {
		t.Fatal("Fig 6 must cover the six paper voltages")
	}
	// Timing grows as voltage falls (voltages are descending).
	for i := 1; i < len(res.Voltages); i++ {
		if res.TRCD[i] < res.TRCD[i-1] {
			t.Fatal("tRCD must grow as voltage falls")
		}
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "tRCD") {
		t.Error("render missing timing table")
	}
}

func TestTableIMatchesPaper(t *testing.T) {
	r := tinyRunner()
	res := r.TableI()
	if len(res.Voltages) != 5 {
		t.Fatal("Table I must cover five voltages")
	}
	for i := range res.Voltages {
		if math.Abs(res.Model[i]-res.Paper[i]) > 0.005 {
			t.Errorf("at %.3fV: model %.2f%% vs paper %.2f%% (tol 0.5pp)",
				res.Voltages[i], res.Model[i]*100, res.Paper[i]*100)
		}
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "Table I") {
		t.Error("render missing title")
	}
}

func TestFig1bShape(t *testing.T) {
	r := tinyRunner()
	res := r.Fig1b()
	if len(res.Platforms) != 3 {
		t.Fatal("Fig 1(b) must cover three platforms")
	}
	for i, p := range res.Platforms {
		f := res.Fractions[i]
		sum := f[0] + f[1] + f[2]
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("%s: fractions sum to %v", p, sum)
		}
		if f[2] < 0.50 || f[2] > 0.75 {
			t.Errorf("%s: memory share %.1f%% outside the 50-75%% band", p, f[2]*100)
		}
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "TrueNorth") {
		t.Error("render missing platforms")
	}
}

func TestFig12aShape(t *testing.T) {
	r := tinyRunner()
	res, err := r.Fig12a()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Sizes) != len(r.Opts.Sizes()) || len(res.Voltages) != 5 {
		t.Fatal("matrix shape wrong")
	}
	for i := range res.Sizes {
		// Energy falls monotonically with voltage for every size.
		prev := res.BaselineMJ[i]
		for j := range res.Voltages {
			if res.SparkXDMJ[i][j] >= prev {
				t.Fatalf("N%d: energy must fall with voltage", res.Sizes[i])
			}
			prev = res.SparkXDMJ[i][j]
		}
	}
	// Larger networks must cost more energy.
	for i := 1; i < len(res.Sizes); i++ {
		if res.BaselineMJ[i] <= res.BaselineMJ[i-1] {
			t.Error("baseline energy must grow with network size")
		}
	}
	// Mean savings within a few points of the paper's (the calibration
	// claim of Fig. 12(a): ~39.5% at 1.025V).
	for j := range res.Voltages {
		if math.Abs(res.MeanSavings[j]-res.PaperMeanSavings[j]) > 0.06 {
			t.Errorf("at %.3fV: savings %.1f%% vs paper %.1f%% (tol 6pp)",
				res.Voltages[j], res.MeanSavings[j]*100, res.PaperMeanSavings[j]*100)
		}
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "Fig. 12(a)") {
		t.Error("render missing title")
	}
}

func TestFig12bShape(t *testing.T) {
	r := tinyRunner()
	res, err := r.Fig12b()
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range res.Speedup {
		if s < 0.99 {
			t.Errorf("N%d: SparkXD mapping slower than baseline (%.3fx)", res.Sizes[i], s)
		}
		if s > 1.5 {
			t.Errorf("N%d: speed-up %.3fx implausibly high (paper: ~1.02x)", res.Sizes[i], s)
		}
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "speed-up") {
		t.Error("render missing")
	}
}

func TestFig2aShape(t *testing.T) {
	r := tinyRunner()
	res, err := r.Fig2a()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Connectivity) != 6 {
		t.Fatal("connectivity sweep must have 6 points")
	}
	if math.Abs(res.Accurate[0]-1) > 1e-9 {
		t.Error("accurate @100% must normalize to 1")
	}
	for i := range res.Connectivity {
		// Approximate DRAM always beats accurate at equal connectivity.
		if res.Approximate[i] >= res.Accurate[i] {
			t.Errorf("at %.0f%%: approx (%.3f) must beat accurate (%.3f)",
				res.Connectivity[i]*100, res.Approximate[i], res.Accurate[i])
		}
		// Energy falls with connectivity.
		if i > 0 && res.Accurate[i] >= res.Accurate[i-1] {
			t.Error("pruning must reduce energy")
		}
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if buf.Len() == 0 {
		t.Error("render empty")
	}
}

func TestFig1aTrendAndFig8(t *testing.T) {
	if testing.Short() {
		t.Skip("training experiments skipped in -short mode")
	}
	r := tinyRunner()
	res, err := r.Fig1a()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Neurons) != 2 {
		t.Fatal("Fig 1(a) must compare two sizes")
	}
	if res.Accuracy[1] < res.Accuracy[0]-0.05 {
		t.Errorf("large net (%.2f) should not be much worse than small (%.2f)",
			res.Accuracy[1], res.Accuracy[0])
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "neurons") {
		t.Error("render missing")
	}
}

func TestCurveSetAndFig8Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("training experiments skipped in -short mode")
	}
	// Use a truly tiny configuration to keep the test fast.
	r := NewRunner(Options{Quick: true, Seed: 5})
	cs, err := r.curveSet(60, dataset.MNISTLike)
	if err != nil {
		t.Fatal(err)
	}
	if len(cs.BaselineApprox) != len(cs.BERs) || len(cs.Improved) != len(cs.BERs) {
		t.Fatal("curve lengths wrong")
	}
	if cs.BaselineAcc < 0.3 {
		t.Errorf("baseline accuracy %.2f too low for the MNIST flavour", cs.BaselineAcc)
	}
	var buf bytes.Buffer
	cs.Render(&buf)
	if !strings.Contains(buf.String(), "SparkXD") {
		t.Error("render missing")
	}
}

func TestPairCaching(t *testing.T) {
	if testing.Short() {
		t.Skip("training skipped in -short mode")
	}
	r := tinyRunner()
	a, err := r.Pair(60, dataset.MNISTLike)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := r.Pair(60, dataset.MNISTLike)
	if a != b {
		t.Error("pairs must be cached")
	}
}

func TestParallelFor(t *testing.T) {
	r := tinyRunner()
	n := 50
	hit := make([]bool, n)
	err := r.parallelFor(n, func(i int) error {
		hit[i] = true
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, h := range hit {
		if !h {
			t.Fatalf("index %d not visited", i)
		}
	}
	sentinel := r.parallelFor(10, func(i int) error {
		if i == 3 {
			return errSentinel
		}
		return nil
	})
	if sentinel != errSentinel {
		t.Errorf("lowest-index error must propagate, got %v", sentinel)
	}
}

var errSentinel = &sentinelError{}

type sentinelError struct{}

func (*sentinelError) Error() string { return "sentinel" }

func TestRegistryComplete(t *testing.T) {
	want := []string{"fig1a", "fig1b", "fig2a", "fig2b", "fig2c", "fig2d",
		"fig6", "fig8", "fig11", "fig12a", "fig12b", "table1",
		"ablation-errmodels", "ablation-mapping", "ablation-coding"}
	entries := Entries()
	if len(entries) != len(want) {
		t.Fatalf("registry has %d entries, want %d", len(entries), len(want))
	}
	for i, e := range entries {
		if e.Name != want[i] {
			t.Errorf("entry %d = %q, want %q (suite order)", i, e.Name, want[i])
		}
		if e.Cost <= 0 {
			t.Errorf("entry %q has no cost hint", e.Name)
		}
		if e.Desc == "" {
			t.Errorf("entry %q has no description", e.Name)
		}
		if _, ok := Lookup(e.Name); !ok {
			t.Errorf("Lookup(%q) failed", e.Name)
		}
	}
	r := tinyRunner()
	if jobs := r.Jobs(); len(jobs) != len(entries) {
		t.Fatalf("Jobs() wraps %d jobs, want %d", len(jobs), len(entries))
	}
}

// The non-training experiment jobs must render byte-identically whether
// the scheduler runs them on one worker or eight (the training-heavy
// jobs are covered by the CI determinism cross-check, which diffs the
// full suite's JSON records across worker counts).
func TestScheduledJobsDeterministicAcrossWorkers(t *testing.T) {
	cheap := map[string]bool{"fig1b": true, "fig2b": true, "fig2c": true,
		"fig2d": true, "fig6": true, "table1": true, "ablation-mapping": true}
	render := func(workers int) map[string]string {
		r := NewRunner(Options{Quick: true, Seed: 5, Workers: workers})
		s, err := sched.New(sched.Config{Workers: workers, Seed: 5, Cache: r.Cache()})
		if err != nil {
			t.Fatal(err)
		}
		for _, j := range r.Jobs() {
			if cheap[j.Name] {
				if err := s.Add(j); err != nil {
					t.Fatal(err)
				}
			}
		}
		reports, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		out := make(map[string]string, len(reports))
		for _, rep := range reports {
			var buf bytes.Buffer
			rep.Value.(Result).Render(&buf)
			out[rep.Name] = buf.String()
		}
		return out
	}
	serial := render(1)
	if len(serial) != len(cheap) {
		t.Fatalf("ran %d jobs, want %d", len(serial), len(cheap))
	}
	parallel := render(8)
	for name, text := range serial {
		if parallel[name] != text {
			t.Errorf("job %q rendered differently at workers=8", name)
		}
	}
}

func TestCacheAccounting(t *testing.T) {
	r := tinyRunner()
	if _, _, err := r.Data(dataset.MNISTLike); err != nil {
		t.Fatal(err)
	}
	if _, _, err := r.Data(dataset.MNISTLike); err != nil {
		t.Fatal(err)
	}
	hits, misses := r.CacheStats()
	if hits != 1 || misses != 1 {
		t.Fatalf("after two identical Data calls: hits=%d misses=%d, want 1/1", hits, misses)
	}
}
