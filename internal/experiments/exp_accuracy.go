package experiments

import (
	"context"
	"fmt"
	"io"

	"sparkxd/internal/dataset"
	"sparkxd/internal/engine"
	"sparkxd/internal/errmodel"
	"sparkxd/internal/report"
	"sparkxd/internal/rng"
	"sparkxd/internal/snn"
)

func init() {
	register(Entry{Name: "fig8", Seq: 80, Cost: 5,
		Desc: "error-tolerance analysis for devising the DRAM mapping",
		Run:  func(r *Runner) (Result, error) { return r.Fig8() }})
	register(Entry{Name: "fig11", Seq: 90, Cost: 8,
		Desc: "accuracy across BER values, network sizes, and datasets",
		Run:  func(r *Runner) (Result, error) { return r.Fig11() }})
}

// CurveSet is one panel of Fig. 11 (and the whole of Fig. 8): the
// accuracy of the three configurations across the BER sweep for one
// network size and dataset.
type CurveSet struct {
	Size   int
	Flavor dataset.Flavor
	// BaselineAcc is the baseline SNN with accurate DRAM (flat line).
	BaselineAcc float64
	// MinTarget is the user constraint: BaselineAcc - 1%.
	MinTarget float64
	BERs      []float64
	// BaselineApprox is the baseline SNN evaluated under approximate-DRAM
	// errors at each BER.
	BaselineApprox []float64
	// Improved is the SparkXD fault-aware-trained SNN under the same errors.
	Improved []float64
	// BERth is the maximum tolerable BER of the improved model.
	BERth float64
}

// curveSet evaluates the three Fig. 11 curves for one (size, flavour).
// The BER points run as independent scenarios of the batched sweep
// engine (uniform profiles, baseline mapping — the paper's Fig. 8/11
// regime), so the points of one panel evaluate in parallel while the
// shared EvalSeed keeps every configuration paired on identical spike
// trains. Results are deterministic for any worker count: each scenario
// draws its injection stream from its scenario key.
func (r *Runner) curveSet(size int, fl dataset.Flavor) (CurveSet, error) {
	pair, err := r.Pair(size, fl)
	if err != nil {
		return CurveSet{}, err
	}
	_, test, err := r.Data(fl)
	if err != nil {
		return CurveSet{}, err
	}
	cs := CurveSet{
		Size:   size,
		Flavor: fl,
		BERs:   r.Opts.BERs(),
	}
	evalSeed := rng.New(r.Opts.Seed).Derive("curve-eval").Uint64()
	// BER 0 rides along as the accurate-DRAM flat line: no injected
	// errors, same spike trains.
	bers := make([]float64, 0, len(cs.BERs)+1)
	bers = append(bers, 0)
	bers = append(bers, cs.BERs...)
	spec := engine.Spec{
		Uniform:  true,
		BERs:     bers,
		Kinds:    []errmodel.Kind{r.F.ErrKind},
		Policies: []string{engine.PolicyBaseline},
		Seed:     r.Opts.Seed + 17,
		EvalSeed: evalSeed,
		Workers:  r.Opts.Workers,
	}
	accByBER := func(net *snn.Network) (map[float64]float64, error) {
		results, err := r.Engine().Run(context.Background(), net, test, spec)
		if err != nil {
			return nil, err
		}
		out := make(map[float64]float64, len(results))
		for _, res := range results {
			out[res.BER] = res.Accuracy
		}
		return out, nil
	}
	baseAcc, err := accByBER(pair.Baseline)
	if err != nil {
		return cs, err
	}
	impAcc, err := accByBER(pair.Improved)
	if err != nil {
		return cs, err
	}
	cs.BaselineAcc = baseAcc[0]
	cs.MinTarget = cs.BaselineAcc - 0.01
	for _, ber := range cs.BERs {
		cs.BaselineApprox = append(cs.BaselineApprox, baseAcc[ber])
		cs.Improved = append(cs.Improved, impAcc[ber])
	}
	berTh, _, err := r.F.AnalyzeErrorTolerance(context.Background(), pair.Improved, test, cs.BERs,
		cs.BaselineAcc, 0.01, r.Opts.Seed+99)
	if err != nil {
		return cs, err
	}
	cs.BERth = berTh
	return cs, nil
}

// Render writes one curve set as a table plus chart.
func (cs CurveSet) Render(w io.Writer) {
	title := fmt.Sprintf("N%d on %s: accuracy vs BER (baseline acc %.1f%%, BERth %.0e)",
		cs.Size, cs.Flavor, cs.BaselineAcc*100, cs.BERth)
	tb := report.NewTable(title, "BER",
		"baseline + accurate DRAM", "baseline + approx DRAM", "improved + approx DRAM (SparkXD)")
	for i, ber := range cs.BERs {
		tb.AddRow(fmt.Sprintf("%.0e", ber),
			report.Pct(cs.BaselineAcc),
			report.Pct(cs.BaselineApprox[i]),
			report.Pct(cs.Improved[i]))
	}
	tb.Render(w)
	ch := report.NewChart(title, "BER", "accuracy")
	ch.LogX = true
	flat := make([]float64, len(cs.BERs))
	target := make([]float64, len(cs.BERs))
	for i := range flat {
		flat[i] = cs.BaselineAcc
		target[i] = cs.MinTarget
	}
	ch.Add("baseline accurate", cs.BERs, flat)
	ch.Add("baseline approx", cs.BERs, cs.BaselineApprox)
	ch.Add("improved approx", cs.BERs, cs.Improved)
	ch.Add("min target", cs.BERs, target)
	ch.Render(w)
}

// Fig8Result is the error-tolerance analysis of Fig. 8 (N900 on the
// Fashion flavour): the tolerance curve and the selected BERth.
type Fig8Result struct {
	Curve CurveSet
}

// Fig8 runs the N900 Fashion tolerance analysis (N400 in quick mode).
func (r *Runner) Fig8() (Fig8Result, error) {
	size := 900
	if r.Opts.Quick {
		size = 400
	}
	if s := r.Opts.OverrideSizes; len(s) > 0 {
		size = s[len(s)-1]
	}
	cs, err := r.curveSet(size, dataset.FashionLike)
	if err != nil {
		return Fig8Result{}, err
	}
	return Fig8Result{Curve: cs}, nil
}

// Render writes the figure.
func (res Fig8Result) Render(w io.Writer) {
	fmt.Fprintln(w, "Fig. 8: error-tolerance analysis for devising the DRAM mapping")
	res.Curve.Render(w)
	fmt.Fprintf(w, "maximum tolerable BER (BERth) = %.0e; errors at or below this rate keep accuracy within 1%%\n",
		res.Curve.BERth)
}

// Fig11Result is the full accuracy grid of Fig. 11: all network sizes,
// both datasets, three configurations per panel.
type Fig11Result struct {
	Panels []CurveSet
}

// Fig11 evaluates every (size, flavour) panel, in parallel.
func (r *Runner) Fig11() (Fig11Result, error) {
	sizes := r.Opts.Sizes()
	flavors := []dataset.Flavor{dataset.MNISTLike, dataset.FashionLike}
	panels := make([]CurveSet, len(sizes)*len(flavors))
	err := r.parallelFor(len(panels), func(i int) error {
		size := sizes[i%len(sizes)]
		fl := flavors[i/len(sizes)]
		cs, err := r.curveSet(size, fl)
		if err != nil {
			return err
		}
		panels[i] = cs
		return nil
	})
	if err != nil {
		return Fig11Result{}, err
	}
	return Fig11Result{Panels: panels}, nil
}

// Render writes every panel plus a compliance summary.
func (res Fig11Result) Render(w io.Writer) {
	fmt.Fprintln(w, "Fig. 11: accuracy across BER values, network sizes, and datasets")
	ok, total := 0, 0
	for _, cs := range res.Panels {
		cs.Render(w)
		for _, acc := range cs.Improved {
			total++
			if acc >= cs.MinTarget {
				ok++
			}
		}
	}
	fmt.Fprintf(w, "improved-SNN points meeting the 1%% target: %d/%d\n", ok, total)
}
