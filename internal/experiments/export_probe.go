package experiments

import "sparkxd/internal/dataset"

// CurveSetPublic exposes curveSet for calibration probes and the
// fault-aware training example; it is part of the public surface because
// downstream users plot exactly these curves for their own models.
func (r *Runner) CurveSetPublic(size int, fl dataset.Flavor) (CurveSet, error) {
	return r.curveSet(size, fl)
}

// CacheStats exposes the runner's artifact-cache hit/miss counters so
// callers (CLI --json mode, CI probes) can verify that shared artifacts
// — datasets and trained model pairs — are computed once per key.
func (r *Runner) CacheStats() (hits, misses uint64) {
	return r.cache.Stats()
}
