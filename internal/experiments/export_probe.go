package experiments

import "sparkxd/internal/dataset"

// CurveSetPublic exposes curveSet for calibration probes and the
// fault-aware training example; it is part of the public surface because
// downstream users plot exactly these curves for their own models.
func (r *Runner) CurveSetPublic(size int, fl dataset.Flavor) (CurveSet, error) {
	return r.curveSet(size, fl)
}
