package experiments

import (
	"fmt"
	"io"
	"math"

	"sparkxd/internal/dataset"
	"sparkxd/internal/dram"
	"sparkxd/internal/prune"
	"sparkxd/internal/report"
	"sparkxd/internal/rng"
	"sparkxd/internal/snn"
	"sparkxd/internal/voltscale"
)

func log10(x float64) float64 { return math.Log10(x) }

func formatV(v float64) string { return fmt.Sprintf("%.3fV", v) }

func init() {
	register(Entry{Name: "fig1a", Seq: 10, Cost: 3,
		Desc: "accuracy of small vs large SNN (motivation)",
		Run:  func(r *Runner) (Result, error) { return r.Fig1a() }})
	register(Entry{Name: "fig1b", Seq: 20, Cost: 0.1,
		Desc: "energy breakdown of SNN hardware platforms",
		Run:  func(r *Runner) (Result, error) { return r.Fig1b(), nil }})
	register(Entry{Name: "fig2a", Seq: 30, Cost: 2,
		Desc: "normalized DRAM energy: pruning x approximate DRAM",
		Run:  func(r *Runner) (Result, error) { return r.Fig2a() }})
	register(Entry{Name: "fig2b", Seq: 40, Cost: 0.1,
		Desc: "DRAM access energy per access condition",
		Run:  func(r *Runner) (Result, error) { return r.Fig2b(), nil }})
}

// Fig1aResult compares the accuracy of a small and a large SNN
// (Fig. 1(a): 200 neurons ~1 MB vs 9800 neurons ~200 MB on MNIST).
type Fig1aResult struct {
	Neurons  []int
	SizeMB   []float64
	Accuracy []float64
}

// Fig1a trains networks of the two sizes on the MNIST flavour.
// Quick mode shrinks the sizes (the trend, small < large, is the claim).
func (r *Runner) Fig1a() (Fig1aResult, error) {
	sizes := []int{200, 9800}
	if r.Opts.Quick {
		sizes = []int{50, 400}
	}
	if len(r.Opts.OverrideSizes) >= 2 {
		sizes = r.Opts.OverrideSizes[:2]
	}
	train, test, err := r.Data(dataset.MNISTLike)
	if err != nil {
		return Fig1aResult{}, err
	}
	res := Fig1aResult{}
	accs := make([]float64, len(sizes))
	err = r.parallelFor(len(sizes), func(i int) error {
		n, err := snn.New(snn.DefaultConfig(sizes[i]), rng.New(r.Opts.Seed))
		if err != nil {
			return err
		}
		root := rng.New(r.Opts.Seed).DeriveIndex("fig1a", i)
		for e := 0; e < r.Opts.BaseEpochs(); e++ {
			n.TrainEpoch(train, root.DeriveIndex("epoch", e))
		}
		n.AssignLabels(train, root.Derive("assign"))
		accs[i] = n.Evaluate(test, root.Derive("eval"))
		return nil
	})
	if err != nil {
		return res, err
	}
	for i, s := range sizes {
		res.Neurons = append(res.Neurons, s)
		res.SizeMB = append(res.SizeMB, float64(s)*dataset.Pixels*4/(1<<20))
		res.Accuracy = append(res.Accuracy, accs[i])
	}
	return res, nil
}

// Render writes the accuracy-vs-size table.
func (res Fig1aResult) Render(w io.Writer) {
	tb := report.NewTable("Fig. 1(a): accuracy of small vs large SNN (MNIST flavour)",
		"neurons", "model size [MB]", "accuracy")
	for i := range res.Neurons {
		tb.AddRow(res.Neurons[i], res.SizeMB[i], report.Pct(res.Accuracy[i]))
	}
	tb.Render(w)
}

// Platform describes one SNN hardware platform for the Fig. 1(b) energy
// breakdown. Compute and communication energies per spike-event are
// platform constants taken from the cited studies; memory energy comes
// from our DRAM access-energy model, which is why the breakdown is a
// re-derivation rather than a copy of the bar chart.
type Platform struct {
	Name string
	// ComputeNJPerEvent / CommNJPerEvent are per-synaptic-event energies.
	ComputeNJPerEvent float64
	CommNJPerEvent    float64
	// MemBytesPerEvent is how many weight bytes each event fetches
	// (platforms with small on-chip buffers refetch more).
	MemBytesPerEvent float64
}

// Fig1bResult is the energy breakdown per platform.
type Fig1bResult struct {
	Platforms []string
	// Fractions[i] = {compute, communication, memory} of platform i.
	Fractions [][3]float64
}

// Fig1b reconstructs the energy breakdown of TrueNorth, PEASE, and SNNAP
// processing one inference, with the memory column driven by our DRAM
// energy-per-access model (row-miss dominated streaming).
func (r *Runner) Fig1b() Fig1bResult {
	platforms := []Platform{
		// Constants chosen from the ISLPED'19 study [5] the paper adapts:
		// memory dominates at 50-75% across platforms.
		{Name: "TrueNorth", ComputeNJPerEvent: 0.30, CommNJPerEvent: 0.50, MemBytesPerEvent: 12},
		{Name: "PEASE", ComputeNJPerEvent: 0.55, CommNJPerEvent: 0.40, MemBytesPerEvent: 16},
		{Name: "SNNAP", ComputeNJPerEvent: 0.70, CommNJPerEvent: 0.25, MemBytesPerEvent: 10},
	}
	perByte := r.F.Power.AccessEnergyNJ(dram.AccessMiss, voltscale.VNominal) /
		float64(r.F.Geom.ColumnBytes)
	res := Fig1bResult{}
	for _, p := range platforms {
		mem := p.MemBytesPerEvent * perByte
		total := p.ComputeNJPerEvent + p.CommNJPerEvent + mem
		res.Platforms = append(res.Platforms, p.Name)
		res.Fractions = append(res.Fractions, [3]float64{
			p.ComputeNJPerEvent / total,
			p.CommNJPerEvent / total,
			mem / total,
		})
	}
	return res
}

// Render writes the breakdown table.
func (res Fig1bResult) Render(w io.Writer) {
	tb := report.NewTable("Fig. 1(b): energy breakdown of SNN hardware platforms",
		"platform", "computation", "communication", "memory accesses")
	for i, p := range res.Platforms {
		f := res.Fractions[i]
		tb.AddRow(p, report.Pct(f[0]), report.Pct(f[1]), report.Pct(f[2]))
	}
	tb.Render(w)
}

// Fig2aResult combines weight pruning with approximate DRAM (Fig. 2(a)):
// normalized DRAM energy across connectivity for accurate (1.35 V,
// baseline mapping) and approximate (1.025 V, SparkXD mapping) DRAM.
type Fig2aResult struct {
	Connectivity []float64
	Accurate     []float64 // normalized to accurate @ 100%
	Approximate  []float64
}

// Fig2a sweeps connectivity 100%..50% for a 4900-neuron network
// (quick: 900) and evaluates the DRAM energy of streaming the surviving
// weights.
func (r *Runner) Fig2a() (Fig2aResult, error) {
	neurons := 4900
	if r.Opts.Quick {
		neurons = 900
	}
	weights := make([]float32, dataset.Pixels*neurons)
	wr := rng.New(r.Opts.Seed).Derive("fig2a")
	for i := range weights {
		weights[i] = wr.Float32()
	}
	res := Fig2aResult{}
	var baseNorm float64
	for _, conn := range []float64{1.0, 0.9, 0.8, 0.7, 0.6, 0.5} {
		wcopy := append([]float32(nil), weights...)
		pr, err := prune.ByMagnitude(wcopy, conn)
		if err != nil {
			return res, err
		}
		kept := pr.Kept

		// Accurate DRAM: baseline mapping at nominal voltage.
		baseLayout, err := r.F.LayoutForWeights(kept, nil)
		if err != nil {
			return res, err
		}
		eAcc, err := r.F.EvaluateEnergy(baseLayout, voltscale.VNominal)
		if err != nil {
			return res, err
		}
		// Approximate DRAM: SparkXD mapping at 1.025 V.
		sparkLayout, _, _, err := r.F.MapWeightsAdaptive(kept, voltscale.V1025, 1e-3)
		if err != nil {
			return res, err
		}
		eApp, err := r.F.EvaluateEnergy(sparkLayout, voltscale.V1025)
		if err != nil {
			return res, err
		}
		if baseNorm == 0 {
			baseNorm = eAcc.TotalMJ()
		}
		res.Connectivity = append(res.Connectivity, conn)
		res.Accurate = append(res.Accurate, eAcc.TotalMJ()/baseNorm)
		res.Approximate = append(res.Approximate, eApp.TotalMJ()/baseNorm)
	}
	return res, nil
}

// Render writes the normalized-energy table and chart.
func (res Fig2aResult) Render(w io.Writer) {
	tb := report.NewTable("Fig. 2(a): normalized DRAM energy — pruning x approximate DRAM",
		"connectivity", "accurate DRAM (1.35V)", "approximate DRAM (1.025V)")
	for i := range res.Connectivity {
		tb.AddRow(report.Pct(res.Connectivity[i]), res.Accurate[i], res.Approximate[i])
	}
	tb.Render(w)
	ch := report.NewChart("combined benefit of pruning + approximate DRAM",
		"connectivity", "normalized DRAM energy")
	ch.Add("accurate 1.35V", res.Connectivity, res.Accurate)
	ch.Add("approx 1.025V", res.Connectivity, res.Approximate)
	ch.Render(w)
}

// Fig2bResult is the DRAM access energy per row-buffer condition
// (Fig. 2(b)) at nominal and reduced voltage.
type Fig2bResult struct {
	Conditions []string
	At1350     []float64
	At1025     []float64
	Savings    []float64
}

// Fig2b evaluates the access-condition energies.
func (r *Runner) Fig2b() Fig2bResult {
	res := Fig2bResult{}
	for _, c := range []dram.AccessClass{dram.AccessHit, dram.AccessMiss, dram.AccessConflict} {
		hi := r.F.Power.AccessEnergyNJ(c, voltscale.VNominal)
		lo := r.F.Power.AccessEnergyNJ(c, voltscale.V1025)
		res.Conditions = append(res.Conditions, c.String())
		res.At1350 = append(res.At1350, hi)
		res.At1025 = append(res.At1025, lo)
		res.Savings = append(res.Savings, 1-lo/hi)
	}
	return res
}

// Render writes the per-condition energy table.
func (res Fig2bResult) Render(w io.Writer) {
	tb := report.NewTable("Fig. 2(b): DRAM access energy per access condition",
		"condition", "1.350V [nJ]", "1.025V [nJ]", "saving")
	for i := range res.Conditions {
		tb.AddRow(res.Conditions[i], res.At1350[i], res.At1025[i], report.Pct(res.Savings[i]))
	}
	tb.Render(w)
}
