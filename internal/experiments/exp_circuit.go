package experiments

import (
	"io"

	"sparkxd/internal/report"
	"sparkxd/internal/voltscale"
)

func init() {
	register(Entry{Name: "fig2c", Seq: 50, Cost: 0.1,
		Desc: "bit error rate vs DRAM supply voltage",
		Run:  func(r *Runner) (Result, error) { return r.Fig2c(), nil }})
	register(Entry{Name: "fig2d", Seq: 60, Cost: 0.1,
		Desc: "DRAM array voltage dynamics (ACT/PRE waveforms)",
		Run:  func(r *Runner) (Result, error) { return r.Fig2d(), nil }})
	register(Entry{Name: "fig6", Seq: 70, Cost: 0.2,
		Desc: "voltage-dependent DRAM timing characterization",
		Run:  func(r *Runner) (Result, error) { return r.Fig6(), nil }})
}

// Fig2cResult is the BER-vs-supply-voltage characterization (Fig. 2(c)).
type Fig2cResult struct {
	Voltage []float64
	BER     []float64
}

// Fig2c sweeps the supply voltage and reports the raw device BER.
func (r *Runner) Fig2c() Fig2cResult {
	var res Fig2cResult
	for v := 1.025; v <= 1.3501; v += 0.025 {
		res.Voltage = append(res.Voltage, v)
		res.BER = append(res.BER, r.F.Circuit.BER(v))
	}
	return res
}

// Render writes the figure as a table and chart.
func (res Fig2cResult) Render(w io.Writer) {
	tb := report.NewTable("Fig. 2(c): bit error rate vs DRAM supply voltage", "Vsupply [V]", "BER")
	var xs, ys []float64
	for i := range res.Voltage {
		tb.AddRow(res.Voltage[i], res.BER[i])
		if res.BER[i] > 0 {
			xs = append(xs, res.Voltage[i])
			ys = append(ys, log10(res.BER[i]))
		}
	}
	tb.Render(w)
	ch := report.NewChart("BER grows as supply voltage decreases", "Vsupply [V]", "log10(BER)")
	ch.Add("BER", xs, ys)
	ch.Render(w)
}

// Fig2dResult is the array-voltage dynamics comparison (Fig. 2(d)):
// nominal vs most-aggressive supply voltage.
type Fig2dResult struct {
	TimeNs   []float64
	VNominal []float64
	VReduced []float64
}

// Fig2d samples Varray(t) for an ACT at t=0 and PRE at t=40 ns.
func (r *Runner) Fig2d() Fig2dResult {
	const preAt, dt, total = 40.0, 2.0, 80.0
	hi := r.F.Circuit.ActivatePrechargeWaveform(voltscale.VNominal, preAt, dt, total)
	lo := r.F.Circuit.ActivatePrechargeWaveform(voltscale.V1025, preAt, dt, total)
	var res Fig2dResult
	for i := range hi {
		res.TimeNs = append(res.TimeNs, hi[i].TimeNs)
		res.VNominal = append(res.VNominal, hi[i].Varray)
		res.VReduced = append(res.VReduced, lo[i].Varray)
	}
	return res
}

// Render writes the waveform chart.
func (res Fig2dResult) Render(w io.Writer) {
	ch := report.NewChart("Fig. 2(d): DRAM array voltage dynamics (ACT @0ns, PRE @40ns)",
		"time [ns]", "Varray [V]")
	ch.Add("1.350V", res.TimeNs, res.VNominal)
	ch.Add("1.025V", res.TimeNs, res.VReduced)
	ch.Render(w)
}

// Fig6Result characterizes Varray and the timing parameters across the
// paper's six supply voltages (Fig. 6).
type Fig6Result struct {
	Voltages  []float64
	TRCD      []float64
	TRAS      []float64
	TRP       []float64
	Waveforms [][]voltscale.WaveformPoint
}

// Fig6 runs the timing characterization.
func (r *Runner) Fig6() Fig6Result {
	var res Fig6Result
	// The paper's Fig. 6 sweeps 1.35V down to 1.10V; include 1.025V too
	// since the rest of the evaluation uses it.
	voltages := voltscale.PaperVoltages()
	for _, v := range voltages {
		res.Voltages = append(res.Voltages, v)
		res.TRCD = append(res.TRCD, r.F.Circuit.TRCD(v))
		res.TRAS = append(res.TRAS, r.F.Circuit.TRAS(v))
		res.TRP = append(res.TRP, r.F.Circuit.TRP(v))
		res.Waveforms = append(res.Waveforms,
			r.F.Circuit.ActivatePrechargeWaveform(v, 50, 2, 80))
	}
	return res
}

// Render writes the timing table and a combined waveform chart.
func (res Fig6Result) Render(w io.Writer) {
	tb := report.NewTable("Fig. 6: voltage-dependent DRAM timing parameters",
		"Vsupply [V]", "tRCD [ns]", "tRAS [ns]", "tRP [ns]")
	for i := range res.Voltages {
		tb.AddRow(res.Voltages[i], res.TRCD[i], res.TRAS[i], res.TRP[i])
	}
	tb.Render(w)
	ch := report.NewChart("Varray(t) across supply voltages (ACT @0ns, PRE @50ns)",
		"time [ns]", "Varray [V]")
	for i, wf := range res.Waveforms {
		var xs, ys []float64
		for _, p := range wf {
			xs = append(xs, p.TimeNs)
			ys = append(ys, p.Varray)
		}
		ch.Add(formatV(res.Voltages[i]), xs, ys)
	}
	ch.Render(w)
}
