// Package version derives the build's version string from the Go
// runtime's embedded build information, so every binary, the /v1/healthz
// probe, and every trace root span agree on what is running without a
// linker-flag stamping step.
package version

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
)

var once = sync.OnceValue(compute)

// String returns the build's version: the main module's version when it
// was built as a versioned dependency, otherwise the VCS revision
// (+dirty marker) when built from a checkout, otherwise "devel". The Go
// toolchain version is always appended.
func String() string { return once() }

func compute() string {
	v := "devel"
	if bi, ok := debug.ReadBuildInfo(); ok {
		if mv := bi.Main.Version; mv != "" && mv != "(devel)" {
			v = mv
		} else if rev, dirty := vcsInfo(bi); rev != "" {
			if len(rev) > 12 {
				rev = rev[:12]
			}
			v = rev
			if dirty {
				v += "-dirty"
			}
		}
	}
	return fmt.Sprintf("%s (%s)", v, runtime.Version())
}

// vcsInfo extracts the VCS revision and dirty flag from build settings.
func vcsInfo(bi *debug.BuildInfo) (rev string, dirty bool) {
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			dirty = s.Value == "true"
		}
	}
	return rev, dirty
}
