package sched

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
)

// ParallelFor runs fn(i) for i in [0, n) on up to workers goroutines
// (workers <= 0 means GOMAXPROCS) and returns the error of the
// lowest-failing index, which makes the returned error independent of
// scheduling order. Panics inside fn are contained and reported as
// errors. Remaining iterations are abandoned once any iteration fails.
func ParallelFor(workers, n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := runIteration(i, fn); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		wg     sync.WaitGroup
		mu     sync.Mutex
		next   = 0
		errAt  = n // lowest failing index
		outErr error
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				if errAt < n || next >= n {
					mu.Unlock()
					return
				}
				i := next
				next++
				mu.Unlock()
				if err := runIteration(i, fn); err != nil {
					mu.Lock()
					if i < errAt {
						errAt, outErr = i, err
					}
					mu.Unlock()
					return
				}
			}
		}()
	}
	wg.Wait()
	return outErr
}

// runIteration invokes fn(i) with panic containment.
func runIteration(i int, fn func(i int) error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("sched: panic in parallel iteration %d: %v\n%s", i, r, debug.Stack())
		}
	}()
	return fn(i)
}
