package sched

import (
	"fmt"
	"runtime/debug"
	"sort"
	"sync"
)

// Cache is a concurrency-safe memoizing cache for expensive shared
// artifacts (generated datasets, trained model pairs). Computation is
// single-flight: when several jobs ask for the same key at once, exactly
// one computes and the rest block on its result, so e.g. the Fig. 8,
// Fig. 11, and ablation jobs never re-train the same network.
//
// Errors are cached alongside values: the suite is deterministic, so a
// failed computation would fail identically on retry.
type Cache struct {
	mu      sync.Mutex
	entries map[string]*cacheEntry
	hits    uint64
	misses  uint64
}

type cacheEntry struct {
	done chan struct{}
	val  any
	err  error
}

// NewCache returns an empty cache.
func NewCache() *Cache {
	return &Cache{entries: make(map[string]*cacheEntry)}
}

// GetOrCompute returns the cached value for key, computing it with fn on
// first use. Concurrent callers of the same key share one computation
// (the waiters count as hits). Panics inside fn are contained and
// returned as errors to every caller.
func (c *Cache) GetOrCompute(key string, fn func() (any, error)) (any, error) {
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		c.hits++
		c.mu.Unlock()
		<-e.done
		return e.val, e.err
	}
	e := &cacheEntry{done: make(chan struct{})}
	c.entries[key] = e
	c.misses++
	c.mu.Unlock()

	e.val, e.err = runProtected(key, fn)
	close(e.done)
	return e.val, e.err
}

// runProtected invokes fn with panic containment.
func runProtected(key string, fn func() (any, error)) (val any, err error) {
	defer func() {
		if r := recover(); r != nil {
			val, err = nil, fmt.Errorf("sched: panic computing cache key %q: %v\n%s", key, r, debug.Stack())
		}
	}()
	return fn()
}

// Stats returns the cumulative hit and miss counts.
func (c *Cache) Stats() (hits, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// Len returns the number of cached keys (including in-flight ones).
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Keys returns the sorted cached keys (diagnostics).
func (c *Cache) Keys() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	keys := make([]string, 0, len(c.entries))
	for k := range c.entries {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
