package sched

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// suiteNames builds a deterministic set of job names for shard tests.
func suiteNames(n int) []string {
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("job-%02d", i)
	}
	return names
}

func TestParseShard(t *testing.T) {
	cases := []struct {
		in   string
		want Shard
		err  bool
	}{
		{"", Shard{}, false},
		{"1/1", Shard{1, 1}, false},
		{"2/4", Shard{2, 4}, false},
		{"0/4", Shard{}, true},
		{"5/4", Shard{}, true},
		{"x/y", Shard{}, true},
		{"3", Shard{}, true},
		{"1/2x", Shard{}, true},
		{"1x/2", Shard{}, true},
		{" 1/2", Shard{}, true},
		{"1/2/3", Shard{}, true},
	}
	for _, c := range cases {
		got, err := ParseShard(c.in)
		if c.err {
			if err == nil {
				t.Errorf("ParseShard(%q): expected error", c.in)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseShard(%q): %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("ParseShard(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestRunsAllJobsAndReportsInNameOrder(t *testing.T) {
	s, err := New(Config{Workers: 4, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	var ran sync.Map
	// Register in reverse order to prove reports come back name-sorted.
	names := suiteNames(20)
	for i := len(names) - 1; i >= 0; i-- {
		name := names[i]
		if err := s.Add(Job{Name: name, Run: func(*Ctx) (any, error) {
			ran.Store(name, true)
			return name + "-value", nil
		}}); err != nil {
			t.Fatal(err)
		}
	}
	reports, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != len(names) {
		t.Fatalf("got %d reports, want %d", len(reports), len(names))
	}
	for i, rep := range reports {
		if rep.Name != names[i] {
			t.Errorf("report %d = %q, want %q (name order)", i, rep.Name, names[i])
		}
		if rep.Value != rep.Name+"-value" {
			t.Errorf("report %q carries value %v", rep.Name, rep.Value)
		}
		if _, ok := ran.Load(rep.Name); !ok {
			t.Errorf("job %q never ran", rep.Name)
		}
	}
}

// Determinism: the per-job RNG stream depends only on (seed, name), so
// any worker count produces identical values.
func TestDeterminismAcrossWorkerCounts(t *testing.T) {
	run := func(workers int) map[string]uint64 {
		s, err := New(Config{Workers: workers, Seed: 42})
		if err != nil {
			t.Fatal(err)
		}
		for _, name := range suiteNames(24) {
			if err := s.Add(Job{Name: name, Run: func(ctx *Ctx) (any, error) {
				// Consume the job stream in a few different ways; the
				// result must not depend on scheduling.
				v := ctx.RNG.Uint64() ^ ctx.RNG.Derive("sub").Uint64()
				return v, nil
			}}); err != nil {
				t.Fatal(err)
			}
		}
		reports, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		out := make(map[string]uint64, len(reports))
		for _, rep := range reports {
			out[rep.Name] = rep.Value.(uint64)
		}
		return out
	}
	serial := run(1)
	for _, workers := range []int{2, 8} {
		parallel := run(workers)
		if len(parallel) != len(serial) {
			t.Fatalf("workers=%d: %d results vs %d serial", workers, len(parallel), len(serial))
		}
		for name, v := range serial {
			if parallel[name] != v {
				t.Errorf("workers=%d: job %q diverged: %d vs %d", workers, name, parallel[name], v)
			}
		}
	}
}

// Shard union: 1/m .. m/m together cover the full suite exactly once.
func TestShardUnionCompleteness(t *testing.T) {
	names := suiteNames(17)
	for _, m := range []int{2, 3, 5} {
		seen := make(map[string]int)
		for i := 1; i <= m; i++ {
			s, err := New(Config{Workers: 2, Shard: Shard{Index: i, Count: m}})
			if err != nil {
				t.Fatal(err)
			}
			for _, name := range names {
				if err := s.Add(Job{Name: name, Run: func(*Ctx) (any, error) { return nil, nil }}); err != nil {
					t.Fatal(err)
				}
			}
			members := s.Members()
			reports, err := s.Run()
			if err != nil {
				t.Fatal(err)
			}
			if len(reports) != len(members) {
				t.Fatalf("shard %d/%d: %d reports vs %d members", i, m, len(reports), len(members))
			}
			for _, n := range members {
				seen[n]++
			}
		}
		if len(seen) != len(names) {
			t.Fatalf("m=%d: union covers %d jobs, want %d", m, len(seen), len(names))
		}
		for n, count := range seen {
			if count != 1 {
				t.Errorf("m=%d: job %q assigned to %d shards", m, n, count)
			}
		}
	}
}

// Shard assignment must not depend on registration order.
func TestShardAssignmentOrderIndependent(t *testing.T) {
	names := suiteNames(9)
	reversed := append([]string(nil), names...)
	sort.Sort(sort.Reverse(sort.StringSlice(reversed)))
	for _, order := range [][]string{names, reversed} {
		s, err := New(Config{Shard: Shard{Index: 2, Count: 3}})
		if err != nil {
			t.Fatal(err)
		}
		for _, n := range order {
			if err := s.Add(Job{Name: n, Run: func(*Ctx) (any, error) { return nil, nil }}); err != nil {
				t.Fatal(err)
			}
		}
		got := s.Members()
		want := []string{"job-01", "job-04", "job-07"}
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Errorf("members for order %v = %v, want %v", order[:2], got, want)
		}
	}
}

func TestCacheHitAccountingAndSingleFlight(t *testing.T) {
	c := NewCache()
	var computes atomic.Int64
	const callers = 8
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, err := c.GetOrCompute("model/N60", func() (any, error) {
				computes.Add(1)
				time.Sleep(10 * time.Millisecond) // widen the race window
				return 99, nil
			})
			if err != nil || v.(int) != 99 {
				t.Errorf("GetOrCompute = %v, %v", v, err)
			}
		}()
	}
	wg.Wait()
	if n := computes.Load(); n != 1 {
		t.Fatalf("computed %d times, want single-flight 1", n)
	}
	hits, misses := c.Stats()
	if misses != 1 || hits != callers-1 {
		t.Fatalf("hits=%d misses=%d, want %d/1", hits, misses, callers-1)
	}
	if c.Len() != 1 || len(c.Keys()) != 1 {
		t.Fatal("cache must hold exactly one key")
	}
	// Errors are cached too.
	sentinel := errors.New("boom")
	if _, err := c.GetOrCompute("bad", func() (any, error) { return nil, sentinel }); !errors.Is(err, sentinel) {
		t.Fatal("error not returned")
	}
	if _, err := c.GetOrCompute("bad", func() (any, error) {
		t.Error("error entry recomputed")
		return nil, nil
	}); !errors.Is(err, sentinel) {
		t.Fatal("cached error not returned")
	}
}

func TestCachePanicContainment(t *testing.T) {
	c := NewCache()
	_, err := c.GetOrCompute("explodes", func() (any, error) { panic("kaboom") })
	if err == nil || !strings.Contains(err.Error(), "kaboom") {
		t.Fatalf("panic must surface as error, got %v", err)
	}
}

// A panicking job must not take down the run: the other jobs complete,
// the panic surfaces as that job's error, and dependents are skipped.
func TestPanicContainmentAndDependentSkip(t *testing.T) {
	s, err := New(Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	var survivors atomic.Int64
	jobs := []Job{
		{Name: "bomber", Run: func(*Ctx) (any, error) { panic("fuse lit") }},
		{Name: "dependent", Deps: []string{"bomber"}, Run: func(*Ctx) (any, error) {
			t.Error("dependent of a panicked job must not run")
			return nil, nil
		}},
		{Name: "transitive", Deps: []string{"dependent"}, Run: func(*Ctx) (any, error) {
			t.Error("transitive dependent must not run")
			return nil, nil
		}},
	}
	for i := 0; i < 6; i++ {
		jobs = append(jobs, Job{Name: fmt.Sprintf("survivor-%d", i), Run: func(*Ctx) (any, error) {
			survivors.Add(1)
			return nil, nil
		}})
	}
	if err := s.Add(jobs...); err != nil {
		t.Fatal(err)
	}
	reports, err := s.Run()
	if err == nil {
		t.Fatal("run with a panicking job must report an error")
	}
	if survivors.Load() != 6 {
		t.Fatalf("%d survivors ran, want 6", survivors.Load())
	}
	byName := make(map[string]Report)
	for _, rep := range reports {
		byName[rep.Name] = rep
	}
	if rep := byName["bomber"]; rep.Err == nil || !strings.Contains(rep.Err.Error(), "fuse lit") {
		t.Errorf("bomber error = %v, want contained panic", rep.Err)
	}
	for _, skipped := range []string{"dependent", "transitive"} {
		if rep := byName[skipped]; rep.Err == nil || !strings.Contains(rep.Err.Error(), "dependency") {
			t.Errorf("%s error = %v, want dependency failure", skipped, rep.Err)
		}
	}
	for i := 0; i < 6; i++ {
		if rep := byName[fmt.Sprintf("survivor-%d", i)]; rep.Err != nil {
			t.Errorf("survivor-%d failed: %v", i, rep.Err)
		}
	}
}

func TestDependencyOrdering(t *testing.T) {
	s, err := New(Config{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	finished := make(map[string]bool)
	mark := func(name string, deps ...string) func(*Ctx) (any, error) {
		return func(*Ctx) (any, error) {
			mu.Lock()
			defer mu.Unlock()
			for _, d := range deps {
				if !finished[d] {
					return nil, fmt.Errorf("%s started before dependency %s finished", name, d)
				}
			}
			finished[name] = true
			return nil, nil
		}
	}
	// Diamond: a -> (b, c) -> d, plus an independent chain.
	if err := s.Add(
		Job{Name: "d", Deps: []string{"b", "c"}, Run: mark("d", "b", "c")},
		Job{Name: "c", Deps: []string{"a"}, Run: mark("c", "a")},
		Job{Name: "b", Deps: []string{"a"}, Run: mark("b", "a")},
		Job{Name: "a", Run: mark("a")},
		Job{Name: "z2", Deps: []string{"z1"}, Run: mark("z2", "z1")},
		Job{Name: "z1", Run: mark("z1")},
	); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(finished) != 6 {
		t.Fatalf("%d jobs finished, want 6", len(finished))
	}
}

func TestDependencyCycleDetected(t *testing.T) {
	s, err := New(Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Add(
		Job{Name: "a", Deps: []string{"b"}, Run: func(*Ctx) (any, error) { return nil, nil }},
		Job{Name: "b", Deps: []string{"a"}, Run: func(*Ctx) (any, error) { return nil, nil }},
		Job{Name: "free", Run: func(*Ctx) (any, error) { return "ok", nil }},
	); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	var reports []Report
	var runErr error
	go func() {
		reports, runErr = s.Run()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("cycle deadlocked the scheduler")
	}
	if runErr == nil {
		t.Fatal("cycle must surface as an error")
	}
	for _, rep := range reports {
		if rep.Name == "free" && rep.Err != nil {
			t.Errorf("independent job failed: %v", rep.Err)
		}
		if (rep.Name == "a" || rep.Name == "b") && rep.Err == nil {
			t.Errorf("cycle member %q reported no error", rep.Name)
		}
	}
}

func TestAddValidation(t *testing.T) {
	s, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Add(Job{Name: "", Run: func(*Ctx) (any, error) { return nil, nil }}); err == nil {
		t.Error("empty name must be rejected")
	}
	if err := s.Add(Job{Name: "x"}); err == nil {
		t.Error("nil Run must be rejected")
	}
	if err := s.Add(Job{Name: "x", Run: func(*Ctx) (any, error) { return nil, nil }}); err != nil {
		t.Fatal(err)
	}
	if err := s.Add(Job{Name: "x", Run: func(*Ctx) (any, error) { return nil, nil }}); err == nil {
		t.Error("duplicate name must be rejected")
	}
	if _, err := New(Config{Shard: Shard{Index: 9, Count: 2}}); err == nil {
		t.Error("invalid shard must be rejected")
	}
	s2, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s2.Add(Job{Name: "orphan", Deps: []string{"ghost"}, Run: func(*Ctx) (any, error) { return nil, nil }}); err != nil {
		t.Fatal(err)
	}
	if _, err := s2.Run(); err == nil || !strings.Contains(err.Error(), "unknown job") {
		t.Errorf("unknown dependency must fail the run, got %v", err)
	}
}

func TestParallelForBasics(t *testing.T) {
	for _, workers := range []int{0, 1, 4} {
		n := 37
		hit := make([]atomic.Bool, n)
		if err := ParallelFor(workers, n, func(i int) error {
			hit[i].Store(true)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		for i := range hit {
			if !hit[i].Load() {
				t.Fatalf("workers=%d: index %d not visited", workers, i)
			}
		}
	}
	if err := ParallelFor(4, 0, func(int) error { t.Error("no iterations expected"); return nil }); err != nil {
		t.Fatal(err)
	}
	// The lowest failing index wins regardless of worker count.
	for _, workers := range []int{1, 8} {
		err := ParallelFor(workers, 40, func(i int) error {
			if i == 11 || i == 30 {
				return fmt.Errorf("fail-%d", i)
			}
			return nil
		})
		if err == nil || err.Error() != "fail-11" {
			t.Errorf("workers=%d: error = %v, want fail-11", workers, err)
		}
	}
	// Panics are contained.
	err := ParallelFor(4, 8, func(i int) error {
		if i == 2 {
			panic("loop bomb")
		}
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "loop bomb") {
		t.Errorf("panic must surface as error, got %v", err)
	}
}
