// Package sched is a deterministic work-stealing scheduler for the
// experiment suite. A Job names one unit of work (a figure, a table, an
// ablation, a pipeline configuration); the scheduler runs all registered
// jobs on a bounded worker pool, respecting declared dependencies,
// distributing ready jobs across per-worker deques and letting idle
// workers steal from busy ones.
//
// Determinism contract (see DESIGN.md §6): results must be bit-identical
// regardless of worker count or shard split. The scheduler enforces the
// half it can: every job receives a private rng.Stream derived from the
// scheduler seed and the job's *name* — never from execution order — and
// per-job reports are returned in name order. Jobs must hold up the other
// half by drawing randomness only from their Ctx (or from streams they
// derive from labels themselves).
//
// Sharding: a Shard{i, m} run executes the jobs whose rank in the
// name-sorted full suite is congruent to i-1 mod m. The assignment
// depends only on the set of job names, so the union of shards 1/m..m/m
// is exactly the full suite with no overlap, no matter how jobs were
// registered.
package sched

import (
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"sparkxd/internal/rng"
)

// Job is one schedulable unit of work.
type Job struct {
	// Name is the unique identity of the job. It is also the job's
	// seed-derivation path: the run context's RNG is Derive(Name) from
	// the scheduler root, so renaming a job changes its random stream
	// but reordering or resharding the suite does not.
	Name string
	// Deps lists names of jobs that must complete before this one runs.
	// A dependency assigned to a different shard is considered satisfied
	// (its artifacts are recomputed on demand through the shared Cache).
	Deps []string
	// Cost is a relative expense hint; ready jobs are ordered
	// largest-cost-first within each worker deque to shorten makespan.
	Cost float64
	// Run performs the work. The returned value lands in the job's
	// Report. Panics are contained and converted to errors.
	Run func(ctx *Ctx) (any, error)
}

// Ctx is handed to every running job.
type Ctx struct {
	// RNG is the job's private random stream, derived from the scheduler
	// seed and the job name.
	RNG *rng.Stream
	// Cache is the run-wide memoizing cache for expensive shared
	// artifacts (datasets, trained model pairs).
	Cache *Cache
	// Workers is the size of the pool executing the run.
	Workers int
	// Seed is the scheduler root seed.
	Seed uint64
}

// Shard selects a 1-based slice i/m of the suite. The zero value means
// "no sharding" (run everything).
type Shard struct {
	Index, Count int
}

// Enabled reports whether the shard actually partitions the suite.
func (s Shard) Enabled() bool { return s.Count > 1 }

func (s Shard) String() string {
	if !s.Enabled() {
		return "1/1"
	}
	return fmt.Sprintf("%d/%d", s.Index, s.Count)
}

// Validate checks the shard arithmetic.
func (s Shard) Validate() error {
	if s.Count == 0 && s.Index == 0 {
		return nil
	}
	if s.Count < 1 || s.Index < 1 || s.Index > s.Count {
		return fmt.Errorf("sched: invalid shard %d/%d (want 1 <= i <= m)", s.Index, s.Count)
	}
	return nil
}

// ParseShard parses "i/m" (e.g. "2/4"). The empty string means no
// sharding. The whole spec must be consumed: trailing garbage ("1/2x")
// is rejected rather than silently running a different slice.
func ParseShard(spec string) (Shard, error) {
	if spec == "" {
		return Shard{}, nil
	}
	idx, count, ok := strings.Cut(spec, "/")
	if !ok {
		return Shard{}, fmt.Errorf("sched: malformed shard %q (want i/m)", spec)
	}
	var s Shard
	var err error
	if s.Index, err = strconv.Atoi(idx); err != nil {
		return Shard{}, fmt.Errorf("sched: malformed shard %q (want i/m)", spec)
	}
	if s.Count, err = strconv.Atoi(count); err != nil {
		return Shard{}, fmt.Errorf("sched: malformed shard %q (want i/m)", spec)
	}
	if err := s.Validate(); err != nil {
		return Shard{}, err
	}
	return s, nil
}

// Config parameterizes a scheduler.
type Config struct {
	// Workers is the pool size; <= 0 means GOMAXPROCS.
	Workers int
	// Shard restricts the run to a slice of the suite.
	Shard Shard
	// Seed is the root of every per-job RNG derivation.
	Seed uint64
	// Cache is the shared artifact cache; a fresh one is created if nil.
	Cache *Cache
}

// Report is the per-job outcome of a run.
type Report struct {
	Name    string
	Value   any
	Err     error
	Elapsed time.Duration
	// Worker is the pool slot that executed the job (timing diagnostics
	// only; it varies between runs and must not influence results).
	Worker int
	// Stolen records whether the job ran on a worker other than its home
	// deque (work-stealing diagnostics).
	Stolen bool
}

// Scheduler accumulates jobs and runs them.
type Scheduler struct {
	cfg    Config
	jobs   []Job
	byName map[string]int
}

// New returns an empty scheduler.
func New(cfg Config) (*Scheduler, error) {
	if err := cfg.Shard.Validate(); err != nil {
		return nil, err
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.Cache == nil {
		cfg.Cache = NewCache()
	}
	return &Scheduler{cfg: cfg, byName: make(map[string]int)}, nil
}

// Workers returns the resolved pool size.
func (s *Scheduler) Workers() int { return s.cfg.Workers }

// Add registers jobs. Names must be unique and non-empty.
func (s *Scheduler) Add(jobs ...Job) error {
	for _, j := range jobs {
		if j.Name == "" {
			return errors.New("sched: job with empty name")
		}
		if strings.ContainsAny(j.Name, "\n") {
			return fmt.Errorf("sched: job name %q contains a newline", j.Name)
		}
		if _, dup := s.byName[j.Name]; dup {
			return fmt.Errorf("sched: duplicate job %q", j.Name)
		}
		if j.Run == nil {
			return fmt.Errorf("sched: job %q has no Run function", j.Name)
		}
		s.byName[j.Name] = len(s.jobs)
		s.jobs = append(s.jobs, j)
	}
	return nil
}

// Members returns the name-sorted set of jobs this scheduler's shard
// will execute.
func (s *Scheduler) Members() []string {
	names := make([]string, 0, len(s.jobs))
	for _, j := range s.jobs {
		names = append(names, j.Name)
	}
	sort.Strings(names)
	if !s.cfg.Shard.Enabled() {
		return names
	}
	var mine []string
	for rank, n := range names {
		if rank%s.cfg.Shard.Count == s.cfg.Shard.Index-1 {
			mine = append(mine, n)
		}
	}
	return mine
}

// runState is the shared mutable state of one Run.
type runState struct {
	mu   sync.Mutex
	cond *sync.Cond

	jobs []Job
	home map[int]int // job index -> home worker

	// deques[w] holds ready job indices for worker w, highest cost last
	// so that the owner pops from the back and thieves steal from the
	// front (cheap jobs migrate, expensive ones stay home).
	deques [][]int

	waiting map[int]int   // job index -> unmet in-shard dependency count
	blocked map[int][]int // job index -> dependents waiting on it
	skipped map[int]error // jobs that will never run (failed dependency)
	running int
	done    int
	total   int
}

// Run executes the shard's jobs and returns their reports in name order.
// The returned error is the first job error in name order (nil if every
// job succeeded). Jobs whose in-shard dependencies failed are reported
// with a dependency error and are not executed; panics inside jobs are
// contained and surfaced as errors.
func (s *Scheduler) Run() ([]Report, error) {
	member := make(map[string]bool, len(s.jobs))
	for _, n := range s.Members() {
		member[n] = true
	}
	var selected []int
	for i, j := range s.jobs {
		if !member[j.Name] {
			continue
		}
		for _, d := range j.Deps {
			if _, ok := s.byName[d]; !ok {
				return nil, fmt.Errorf("sched: job %q depends on unknown job %q", j.Name, d)
			}
			if d == j.Name {
				return nil, fmt.Errorf("sched: job %q depends on itself", j.Name)
			}
		}
		selected = append(selected, i)
	}
	sort.Slice(selected, func(a, b int) bool { return s.jobs[selected[a]].Name < s.jobs[selected[b]].Name })

	st := &runState{
		jobs:    s.jobs,
		home:    make(map[int]int, len(selected)),
		deques:  make([][]int, s.cfg.Workers),
		waiting: make(map[int]int),
		blocked: make(map[int][]int),
		skipped: make(map[int]error),
		total:   len(selected),
	}
	st.cond = sync.NewCond(&st.mu)

	// Seed the deques: each ready job goes to its deterministic home
	// worker (rank in the name-sorted selection, modulo pool size).
	var ready []int
	for rank, idx := range selected {
		st.home[idx] = rank % s.cfg.Workers
		unmet := 0
		for _, d := range s.jobs[idx].Deps {
			di := s.byName[d]
			if member[s.jobs[di].Name] {
				unmet++
				st.blocked[di] = append(st.blocked[di], idx)
			}
		}
		if unmet > 0 {
			st.waiting[idx] = unmet
		} else {
			ready = append(ready, idx)
		}
	}
	sort.Slice(ready, func(a, b int) bool {
		ja, jb := s.jobs[ready[a]], s.jobs[ready[b]]
		if ja.Cost != jb.Cost {
			return ja.Cost < jb.Cost // owner pops from the back: highest cost first
		}
		return ja.Name > jb.Name
	})
	for _, idx := range ready {
		w := st.home[idx]
		st.deques[w] = append(st.deques[w], idx)
	}

	reports := make(map[int]Report, len(selected))
	var rmu sync.Mutex

	var wg sync.WaitGroup
	for w := 0; w < s.cfg.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				idx, stolen, ok := st.next(w)
				if !ok {
					return
				}
				rep := s.runOne(idx, w, stolen)
				rmu.Lock()
				reports[idx] = rep
				rmu.Unlock()
				st.complete(idx, rep.Err)
			}
		}(w)
	}
	wg.Wait()

	out := make([]Report, 0, len(selected))
	for _, idx := range selected {
		rep, ok := reports[idx]
		if !ok {
			if err := st.skipped[idx]; err != nil {
				rep = Report{Name: s.jobs[idx].Name, Err: err}
			} else {
				rep = Report{
					Name: s.jobs[idx].Name,
					Err:  fmt.Errorf("sched: job %q never became runnable (dependency cycle?)", s.jobs[idx].Name),
				}
			}
		}
		out = append(out, rep)
	}
	var first error
	for _, rep := range out {
		if rep.Err != nil {
			first = fmt.Errorf("sched: job %q: %w", rep.Name, rep.Err)
			break
		}
	}
	return out, first
}

// runOne executes a single job with panic containment.
func (s *Scheduler) runOne(idx, worker int, stolen bool) (rep Report) {
	job := s.jobs[idx]
	rep = Report{Name: job.Name, Worker: worker, Stolen: stolen}
	ctx := &Ctx{
		RNG:     rng.New(s.cfg.Seed).Derive("job/" + job.Name),
		Cache:   s.cfg.Cache,
		Workers: s.cfg.Workers,
		Seed:    s.cfg.Seed,
	}
	start := time.Now()
	defer func() {
		rep.Elapsed = time.Since(start)
		if r := recover(); r != nil {
			rep.Err = fmt.Errorf("sched: panic in job %q: %v\n%s", job.Name, r, debug.Stack())
		}
	}()
	rep.Value, rep.Err = job.Run(ctx)
	return rep
}

// next blocks until worker w has a job to run or the run is over.
func (st *runState) next(w int) (idx int, stolen bool, ok bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	for {
		// Own deque: pop from the back (highest-cost ready job).
		if q := st.deques[w]; len(q) > 0 {
			idx = q[len(q)-1]
			st.deques[w] = q[:len(q)-1]
			st.running++
			return idx, false, true
		}
		// Steal: scan the other deques round-robin from w+1 and take
		// from the front (the victim's cheapest ready job).
		for off := 1; off < len(st.deques); off++ {
			v := (w + off) % len(st.deques)
			if q := st.deques[v]; len(q) > 0 {
				idx = q[0]
				st.deques[v] = q[1:]
				st.running++
				return idx, true, true
			}
		}
		if st.done >= st.total {
			st.cond.Broadcast()
			return 0, false, false
		}
		if st.running == 0 {
			// Quiescent but unfinished: the remaining jobs form a
			// dependency cycle and will never be released.
			st.cond.Broadcast()
			return 0, false, false
		}
		st.cond.Wait()
	}
}

// complete marks a job finished, releases its dependents (or skips them
// transitively if the job failed), and wakes idle workers.
func (st *runState) complete(idx int, err error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.running--
	st.done++
	st.settle(idx, err)
	st.cond.Broadcast()
}

// settle releases or transitively skips the dependents of a job that has
// finished (or been skipped). Caller holds st.mu.
func (st *runState) settle(idx int, err error) {
	for _, dep := range st.blocked[idx] {
		if _, already := st.skipped[dep]; already {
			continue
		}
		if err != nil {
			depErr := fmt.Errorf("sched: dependency %q failed: %w", st.jobs[idx].Name, err)
			st.skipped[dep] = depErr
			st.done++ // it will never run
			st.settle(dep, depErr)
			continue
		}
		st.waiting[dep]--
		if st.waiting[dep] == 0 {
			delete(st.waiting, dep)
			w := st.home[dep]
			st.deques[w] = append(st.deques[w], dep)
		}
	}
}
